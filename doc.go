// Package gpuddt reproduces "GPU-Aware Non-contiguous Data Movement In
// Open MPI" (Wu, Jeaugey, Bosilca, Dongarra, vandeVaart — HPDC 2016) as
// a pure-Go library over a deterministic simulated GPU cluster.
//
// The paper's contribution — a GPU datatype engine that re-encodes MPI
// derived datatypes into warp-sized work units, packs and unpacks with
// GPU kernels, and pipelines those kernels with PCIe/InfiniBand
// transfers inside Open MPI's BTL layer — lives in internal/core and
// internal/mpi. The substrates it needs (a CUDA-like runtime, a GPU
// performance model, PCIe and InfiniBand fabrics, an MPI datatype
// engine) are implemented from scratch in the sibling internal packages;
// see DESIGN.md for the full inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// The benchmarks in bench_test.go regenerate every figure of the
// paper's evaluation; the same runners back the cmd/ddtbench CLI.
package gpuddt
