# gpuddt — build/test/benchmark entry points (stdlib-only Go, no deps)

GO ?= go

.PHONY: all test race check trace-check chaos-check scale-check megascale-check vcoll-check app-check tune-check fuzz golden bench bench-smoke figures examples tools clean

all: test

test:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full CI gate: build, vet, race-enabled tests (includes the
# differential oracle, channel round-trips, golden traces, cmd smoke
# tests and example builds), then a short fuzz smoke on both targets.
check: trace-check chaos-check
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzPackUnpack -fuzztime 10s
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzDEVSplit -fuzztime 10s

# Tracing gate: the span recorder under -race, conformance round-trips
# with tracing asserted (short matrix), and the golden-identical /
# Chrome-schema checks.
trace-check:
	$(GO) test -race ./internal/sim -run TestRecorder
	$(GO) test -short ./internal/conformance -run TestChannelRoundTrips
	$(GO) test ./internal/bench -run 'TestGoldenFiguresTraced|TestPingPongChromeTrace'
	$(GO) test ./internal/trace

# Chaos gate: the fault subsystem's pinned-seed conformance sweep (pack
# ∘ unpack identity, no leaks, bounded retries across every channel),
# the persistent-P2P downgrade proof, race-enabled PML recovery tests,
# and the golden-figure gate re-asserting that a nil fault plan leaves
# the virtual-time figures byte-identical.
chaos-check:
	$(GO) test ./internal/conformance -run 'TestChaos'
	$(GO) test -race ./internal/mpi -run 'TestChaos'
	$(GO) test ./internal/core -run 'TestPackerSeek'
	$(GO) test ./internal/bench -run TestGoldenFigures
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzChaosPackUnpack -fuzztime 10s

# Scale-out gate: fat-tree topology tests, hierarchical-collective
# flat-identity and chaos sweeps, the pinned >= 2x alltoall speedup at
# 128 ranks, then the CI smoke sweep run twice — the two JSON reports
# must be byte-identical (the sweep is a pure function of its inputs).
scale-check:
	$(GO) test ./internal/ib -run 'TestFatTree|TestFlatFabric'
	$(GO) test ./internal/cluster
	$(GO) test ./internal/mpi -run 'TestHier'
	$(GO) test ./internal/bench -run 'TestScale'
	$(GO) test ./cmd/scalebench
	$(GO) run ./cmd/scalebench -quick -out /tmp/scale-a.json
	$(GO) run ./cmd/scalebench -quick -out /tmp/scale-b.json
	cmp /tmp/scale-a.json /tmp/scale-b.json

# Mega-scale gate: the sharded-engine determinism suite under -race
# (serial-vs-sharded byte identity, lookahead violation, chaos world),
# the modelled-payload digest equivalence against the real protocol
# stack at 64 ranks, the 50x flyweight memory reduction at 256 ranks,
# the quick modelled sweep with its serial-identity gate, the
# 16384-rank alltoall smoke, and the scalebench smoke run.
megascale-check:
	$(GO) test -race ./internal/sim -run TestSharded
	$(GO) test -race ./internal/model
	$(GO) test ./internal/mem -run 'TestSynthetic|TestSpaceRetired|TestPoolStats'
	$(GO) test ./internal/mpi -run TestPayload
	$(GO) test ./internal/bench -run 'TestMega|TestModelReal|TestFlyweight'
	GPUDDT_MEGA=1 $(GO) test ./internal/bench -run TestMegaSmoke16k -v
	$(GO) run ./cmd/scalebench -quick -out /tmp/megascale.json

# Irregular/nonblocking collective gate: the v-variant conformance
# oracle (irregular counts vs the reference walker across CPU/GPU ×
# hier/flat × eager/rendezvous), the race-enabled v-variant +
# nonblocking-request tests (concurrent I*, Waitall, chaos recovery,
# quiescent staging), the pinned >= 30% overlap fraction with its
# golden figure and Chrome trace, and a fuzz smoke on the count-matrix
# target.
vcoll-check:
	$(GO) test ./internal/conformance -run 'TestVColl'
	$(GO) test -race ./internal/mpi -run 'TestVColl|TestAlltoallv|TestAllgatherv|TestGathervScatterv|TestIcoll'
	$(GO) test ./internal/trace -run TestComputeOverlap
	$(GO) test ./internal/bench -run 'TestOverlapFractionPinned|TestOverlapGoldenTrace|TestGoldenFigures$$'
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzAlltoallvCounts -fuzztime 10s

# Application-workload gate: the group-collective oracle (ring/tree vs
# the native allreduce, group-scoped alltoallv/barrier), the typed
# co-scheduling validation table, the grouped Chrome-export schema, the
# race-enabled workload suite (family verification, subarray halo
# spans, the interference smoke and its byte-identical determinism
# re-run), the MoE count-matrix fuzz smoke, and the quick appbench
# sweep run twice — the two JSON reports must be byte-identical.
app-check:
	$(GO) test ./internal/mpi -run 'TestGroup|TestNewGroup'
	$(GO) test ./internal/cluster -run 'TestValidate|TestCoSchedule'
	$(GO) test ./internal/trace -run TestWriteChromeGrouped
	$(GO) test ./internal/mpiio -run TestGroupScopedBarrier
	$(GO) test ./internal/shapes -run TestHaloFace
	$(GO) test -race ./internal/workload
	$(GO) test ./internal/bench -run 'TestAppGrid|TestQuickAppSweep'
	$(GO) test ./cmd/appbench
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzMoECounts -fuzztime 10s
	$(GO) run ./cmd/appbench -quick -out /tmp/apps-a.json
	$(GO) run ./cmd/appbench -quick -out /tmp/apps-b.json
	cmp /tmp/apps-a.json /tmp/apps-b.json

# Auto-tuning gate: the Tuning API resolution tests (pointer-or-
# sentinel eager semantics, legacy ProtoOptions equivalence), the
# in-network reduction oracle (switch vs flat bit-identity under
# -race), the tuner determinism + table round-trip + version/corruption
# rejection suite, the pinned >= 1.2x tuned-vs-default speedup on an
# oversubscribed fat-tree point, the in-network curve digest gate, and
# a tunebench smoke run twice — the two JSON reports must be
# byte-identical (the search is an exhaustive grid over virtual time).
tune-check:
	$(GO) test ./internal/mpi -run 'TestTuning|TestEagerZeroSentinel|TestCollModeRoundTrip'
	$(GO) test -race ./internal/mpi -run 'TestSwitch'
	$(GO) test ./internal/tune
	$(GO) test ./internal/bench -run 'TestScale|TestQuickAppSweep'
	$(GO) run ./cmd/tunebench -quick -out /tmp/tune-a.json
	$(GO) run ./cmd/tunebench -quick -out /tmp/tune-b.json
	cmp /tmp/tune-a.json /tmp/tune-b.json

# Longer fuzzing session against the differential oracle.
fuzz:
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzPackUnpack -fuzztime 2m
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzDEVSplit -fuzztime 2m
	$(GO) test ./internal/conformance -run '^$$' -fuzz FuzzChaosPackUnpack -fuzztime 2m

# Re-record golden traces after an explained behavioural change.
golden:
	$(GO) test ./internal/bench -run TestGoldenFigures -update
	$(GO) test ./internal/conformance -run TestGoldenTrees -update

# Host-performance benchmarks: Go microbenchmarks plus the
# machine-readable report (seek/cache-hit ns/op, serial-vs-parallel
# sweep wall clock) consumed by CI.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/benchhost -out BENCH_host.json

# Quick bench smoke for CI: compile and run every benchmark once.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

# Regenerate every paper figure (writes to stdout; ~3 minutes).
figures:
	$(GO) run ./cmd/ddtbench

# Run every example end to end (each verifies its own bytes).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stencil2d
	$(GO) run ./examples/particles
	$(GO) run ./examples/transpose
	$(GO) run ./examples/fftreshape
	$(GO) run ./examples/dtranspose
	$(GO) run ./examples/onesided

tools:
	$(GO) build -o bin/ddtbench ./cmd/ddtbench
	$(GO) build -o bin/pingpong ./cmd/pingpong
	$(GO) build -o bin/kernels ./cmd/kernels
	$(GO) build -o bin/topo ./cmd/topo

clean:
	rm -rf bin
