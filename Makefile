# gpuddt — build/test/benchmark entry points (stdlib-only Go, no deps)

GO ?= go

.PHONY: all test race bench figures examples tools clean

all: test

test:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure (writes to stdout; ~3 minutes).
figures:
	$(GO) run ./cmd/ddtbench

# Run every example end to end (each verifies its own bytes).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stencil2d
	$(GO) run ./examples/particles
	$(GO) run ./examples/transpose
	$(GO) run ./examples/fftreshape
	$(GO) run ./examples/dtranspose
	$(GO) run ./examples/onesided

tools:
	$(GO) build -o bin/ddtbench ./cmd/ddtbench
	$(GO) build -o bin/pingpong ./cmd/pingpong
	$(GO) build -o bin/kernels ./cmd/kernels
	$(GO) build -o bin/topo ./cmd/topo

clean:
	rm -rf bin
