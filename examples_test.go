package gpuddt_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamples builds and executes every example program, asserting it
// exits 0 and prints its self-verification marker. Each example checks
// its own transfer byte-for-byte, so a pass means the documented usage
// actually works end to end.
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example builds in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	bindir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name)
			build := exec.Command("go", "build", "-o", bin, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			var stdout, stderr bytes.Buffer
			run := exec.Command(bin)
			run.Stdout = &stdout
			run.Stderr = &stderr
			if err := run.Run(); err != nil {
				t.Fatalf("run failed: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
			}
			if !strings.Contains(stdout.String(), "verified:") {
				t.Errorf("no verification marker in output:\n%s", stdout.String())
			}
		})
	}
}
