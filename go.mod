module gpuddt

go 1.22
