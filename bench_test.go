package gpuddt_test

// One testing.B benchmark per experiment in DESIGN.md's per-experiment
// index. Each iteration regenerates the figure (or its key slice) on the
// simulated cluster; the reported custom metrics are virtual-time
// results, which are deterministic — the wall-clock ns/op merely
// measures the simulator.
//
// Run all:  go test -bench=. -benchmem
// One:      go test -bench=BenchmarkFig9 -benchtime=1x

import (
	"strings"
	"testing"

	"gpuddt/internal/baseline"
	"gpuddt/internal/bench"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// benchSizes keeps -bench=. runs tractable while exercising the real
// sweep machinery; cmd/ddtbench runs the full-size sweeps.
var benchSizes = []int{1024, 2048}

func reportSeries(b *testing.B, f *bench.Figure, unit string) {
	b.Helper()
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			continue
		}
		last := s.Points[len(s.Points)-1]
		name := strings.ReplaceAll(s.Name, " ", "_")
		b.ReportMetric(last.Y, name+"_"+unit)
	}
}

func BenchmarkFig1Solutions(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.Fig1Solutions([]int{512})
	}
	reportSeries(b, f, "ms")
}

func BenchmarkFig6PackBandwidth(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.Fig6(benchSizes)
	}
	reportSeries(b, f, "GBps")
}

func BenchmarkFig7PackUnpack(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.Fig7(benchSizes)
	}
	reportSeries(b, f, "ms")
}

func BenchmarkFig8VectorVsMemcpy2D(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.Fig8([]int64{1024}, []int64{200, 1024, 4096})
	}
	reportSeries(b, f, "ms")
}

func BenchmarkFig9PingpongPCIe(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.Fig9([]int{2048})
	}
	reportSeries(b, f, "GBps")
}

func benchFig10(b *testing.B, topo bench.Topology) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.Fig10(topo, []int{1024})
	}
	reportSeries(b, f, "ms")
}

func BenchmarkFig10aSMIntraGPU(b *testing.B) { benchFig10(b, bench.OneGPU) }
func BenchmarkFig10bSMInterGPU(b *testing.B) { benchFig10(b, bench.TwoGPU) }
func BenchmarkFig10cIB(b *testing.B)         { benchFig10(b, bench.TwoNode) }

func BenchmarkFig11VecContig(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.Fig11([]int{1024})
	}
	reportSeries(b, f, "ms")
}

func BenchmarkFig12Transpose(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.Fig12([]int{512})
	}
	reportSeries(b, f, "ms")
}

func BenchmarkSec53MinResources(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.Sec53(1024, []int{1, 4, 30})
	}
	reportSeries(b, f, "ms")
}

func BenchmarkSec54SharedGPU(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.Sec54(1024, []float64{0, 0.5, 0.9})
	}
	reportSeries(b, f, "ms")
}

func BenchmarkAblationUnitSize(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.AblationUnitSize(1024, []int64{256, 1024, 4096})
	}
	reportSeries(b, f, "GBps")
}

func BenchmarkAblationPipelineDepth(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.AblationPipeline(1024, []int64{256 << 10, 1 << 20, 4 << 20})
	}
	reportSeries(b, f, "ms")
}

func BenchmarkAblationRemoteUnpack(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.AblationRemoteUnpack([]int{1024})
	}
	reportSeries(b, f, "ms")
}

func BenchmarkApps(b *testing.B) {
	var f *bench.Figure
	for i := 0; i < b.N; i++ {
		f = bench.Apps()
	}
	reportSeries(b, f, "ms")
}

// BenchmarkPingPongSingle measures one representative transfer end to
// end (the paper's headline configuration: triangular matrix between
// two GPUs) and reports the virtual round-trip and achieved bandwidth.
func BenchmarkPingPongSingle(b *testing.B) {
	var rt sim.Time
	dt := shapes.LowerTriangular(2048)
	for i := 0; i < b.N; i++ {
		rt = bench.PingPong(bench.PingPongSpec{Topo: bench.TwoGPU, Dt0: dt, Count: 1})
	}
	b.ReportMetric(rt.Millis(), "virt_rt_ms")
	b.ReportMetric(sim.GBps(dt.Size(), rt/2), "GBps")
}

// BenchmarkMVAPICHGap reports the headline comparison factor.
func BenchmarkMVAPICHGap(b *testing.B) {
	dt := shapes.LowerTriangular(1024)
	var gap float64
	for i := 0; i < b.N; i++ {
		ours := bench.PingPong(bench.PingPongSpec{Topo: bench.TwoGPU, Dt0: dt, Count: 1})
		mv := bench.PingPong(bench.PingPongSpec{
			Topo: bench.TwoGPU, Dt0: dt, Count: 1, Tuning: &mpi.Tuning{Strategy: &baseline.MVAPICHStrategy{}},
		})
		gap = float64(mv) / float64(ours)
	}
	b.ReportMetric(gap, "speedup_x")
}
