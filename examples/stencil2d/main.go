// Stencil2d: the SHOC-style 2D stencil halo exchange from the paper's
// motivation (§3): each rank owns a (n+2) x (n+2) row-major grid with a
// one-cell halo. North/south boundaries are contiguous rows; east/west
// boundaries are non-contiguous columns described by a vector datatype —
// exactly the case where GPU-aware datatypes replace hand-written
// packing.
//
//	go run ./examples/stencil2d
package main

import (
	"fmt"
	"log"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
)

const (
	n     = 1024        // interior cells per dimension
	rows  = n + 2       // grid rows including halo
	pitch = (n + 2) * 8 // row pitch in bytes
	steps = 3           // halo-exchange iterations
)

// offset returns the byte offset of grid cell (r, c).
func offset(r, c int) int64 { return int64(r)*int64(pitch) + int64(c)*8 }

func main() {
	// A 1x2 process grid: rank 0 west, rank 1 east, one GPU each.
	world := mpi.NewWorld(mpi.Config{
		Ranks: []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}},
	})

	// The east/west boundary column: n doubles strided by the grid pitch.
	column := shapes.HaloColumn(n)
	fmt.Printf("halo column type: %d blocks of 8 bytes, stride %d (non-contiguous)\n",
		column.NumBlocks(), pitch)

	ok := true
	world.Run(func(m *mpi.Rank) {
		grid := m.Malloc(int64(rows) * int64(pitch))
		mem.FillPattern(grid, uint64(m.Rank()+1))
		peer := 1 - m.Rank()

		for step := 0; step < steps; step++ {
			// Send my interior east/west edge; receive into my halo.
			var sendCol, recvCol int
			if m.Rank() == 0 {
				sendCol, recvCol = n, n+1 // east edge, east halo
			} else {
				sendCol, recvCol = 1, 0 // west edge, west halo
			}
			sendView := grid.Slice(offset(1, sendCol), int64(rows-2)*int64(pitch))
			recvView := grid.Slice(offset(1, recvCol), int64(rows-2)*int64(pitch))
			m.SendRecv(
				sendView, column, 1, peer, step,
				recvView, column, 1, peer, step,
			)

			// Verify the halo now mirrors the peer's edge pattern.
			if !verifyHalo(m, grid, recvCol, peer, step) {
				ok = false
			}
		}
		if m.Rank() == 0 {
			fmt.Printf("rank 0: %d halo exchanges done at %v (virtual)\n", steps, m.Now())
		}
	})
	if !ok {
		log.Fatal("halo verification failed")
	}
	fmt.Println("verified: halo columns match the peer's edge bytes after every step")
}

// verifyHalo checks the received halo column against what the peer sent
// (both ranks fill deterministically and never modify the interior, so
// the expected bytes are recomputable).
func verifyHalo(m *mpi.Rank, grid mem.Buffer, recvCol, peer, step int) bool {
	// Rebuild the peer's grid pattern locally.
	ref := make([]byte, rows*pitch)
	tmp := mem.NewSpace("ref", mem.Host, int64(len(ref)))
	rb := tmp.Alloc(int64(len(ref)), 1)
	mem.FillPattern(rb, uint64(peer+1))
	var sendCol int
	if peer == 0 {
		sendCol = n
	} else {
		sendCol = 1
	}
	c := datatype.NewConverter(shapes.HaloColumn(n), 1)
	want := make([]byte, c.Total())
	c.Pack(want, rb.Bytes()[offset(1, sendCol):])

	c2 := datatype.NewConverter(shapes.HaloColumn(n), 1)
	got := make([]byte, c2.Total())
	c2.Pack(got, grid.Bytes()[offset(1, recvCol):])
	for i := range want {
		if want[i] != got[i] {
			fmt.Printf("rank %d step %d: halo byte %d mismatch\n", m.Rank(), step, i)
			return false
		}
	}
	return true
}
