// One-sided halo exchange: instead of matched Send/Recv pairs, each
// rank Puts its boundary column straight into the neighbour's halo
// through an RMA window — the "one-sided functions" consumers the paper
// lists for committed datatypes. The GPU datatype engine packs the
// strided column at the origin and scatters it into the target's
// strided halo with no application code running on the target.
//
//	go run ./examples/onesided
package main

import (
	"fmt"
	"log"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
)

const (
	n     = 512
	pitch = (n + 2) * 8
	steps = 3
)

func offset(r, c int) int64 { return int64(r)*pitch + int64(c)*8 }

func main() {
	world := mpi.NewWorld(mpi.Config{
		Ranks: []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}},
	})
	column := shapes.HaloColumn(n)

	ok := true
	world.Run(func(m *mpi.Rank) {
		grid := m.Malloc(int64(n+2) * pitch)
		mem.FillPattern(grid, uint64(m.Rank()+1))
		win := m.WinCreate(grid)
		peer := 1 - m.Rank()

		var sendCol, haloCol int
		if m.Rank() == 0 {
			sendCol, haloCol = n, 0 // my east edge -> peer's west halo
		} else {
			sendCol, haloCol = 1, n+1 // my west edge -> peer's east halo
		}
		for step := 0; step < steps; step++ {
			win.Put(
				grid.Slice(offset(1, sendCol), int64(n)*pitch), column, 1,
				peer, offset(1, haloCol), column, 1,
			)
			win.Fence()
			// My own halo (written by the peer) must now mirror the
			// peer's edge pattern.
			myHalo := 0
			peerEdge := n
			if m.Rank() == 0 {
				myHalo = n + 1
				peerEdge = 1
			}
			if !haloMatches(grid, myHalo, peer, peerEdge) {
				ok = false
			}
		}
		if m.Rank() == 0 {
			fmt.Printf("%d one-sided halo exchanges done at %v (virtual)\n", steps, m.Now())
		}
	})
	if !ok {
		log.Fatal("one-sided halo verification failed")
	}
	fmt.Println("verified: Put scattered each boundary column into the neighbour's halo")
}

// haloMatches checks the received halo column against the peer's
// deterministic edge pattern.
func haloMatches(grid mem.Buffer, haloCol, peer, peerEdgeCol int) bool {
	ref := mem.NewSpace("ref", mem.Host, int64(n+2)*pitch)
	rb := ref.Alloc(int64(n+2)*pitch, 1)
	mem.FillPattern(rb, uint64(peer+1))
	pack := func(buf []byte, col int) []byte {
		c := datatype.NewConverter(shapes.HaloColumn(n), 1)
		out := make([]byte, c.Total())
		c.Pack(out, buf[offset(1, col):])
		return out
	}
	want := pack(rb.Bytes(), peerEdgeCol)
	got := pack(grid.Bytes(), haloCol)
	for i := range want {
		if want[i] != got[i] {
			return false
		}
	}
	return true
}
