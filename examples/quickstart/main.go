// Quickstart: send a non-contiguous GPU-resident sub-matrix between two
// MPI ranks with a derived datatype, and verify the bytes arrived.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

func main() {
	const n = 2048 // the big matrix is n x n doubles, column-major

	// Two ranks on one node, each bound to its own GPU.
	world := mpi.NewWorld(mpi.Config{
		Ranks: []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}},
	})

	// An (n/2 x n/2) sub-matrix in the middle of the big matrix: columns
	// are contiguous, the type as a whole is strided (an MPI vector).
	sub := shapes.SubMatrix(n/2, n/2, n)

	var sent, received []byte
	world.Run(func(m *mpi.Rank) {
		// Each rank owns a full matrix in device memory.
		matrix := m.Malloc(shapes.MatrixBytes(n))
		switch m.Rank() {
		case 0:
			mem.FillPattern(matrix, 42)
			sent = packedImage(sub, matrix)
			start := m.Now()
			m.Send(matrix, sub, 1, 1, 0)
			fmt.Printf("rank 0: sent %d KB sub-matrix in %v (virtual time)\n",
				sub.Size()>>10, m.Now()-start)
		case 1:
			m.Recv(matrix, sub, 1, 0, 0)
			received = packedImage(sub, matrix)
			fmt.Printf("rank 1: received at %v\n", m.Now())
		}
	})

	for i := range sent {
		if sent[i] != received[i] {
			log.Fatalf("byte %d differs: %x != %x", i, sent[i], received[i])
		}
	}
	fmt.Printf("verified: %d bytes byte-identical after GPU pack -> PCIe -> GPU unpack\n", len(sent))
	_ = sim.Time(0)
}

// packedImage linearizes the datatype's bytes for comparison.
func packedImage(dt *datatype.Datatype, buf mem.Buffer) []byte {
	c := datatype.NewConverter(dt, 1)
	out := make([]byte, c.Total())
	c.Pack(out, buf.Bytes())
	return out
}
