// Particles: a LAMMPS-style molecular-dynamics exchange (§3 of the
// paper): each rank keeps an array of particle records in GPU memory and
// an index list of the particles that migrated out of its sub-domain.
// The indexed datatype gathers exactly those records — scattered,
// variable-position blocks — without any hand-written packing kernel.
//
//	go run ./examples/particles
package main

import (
	"fmt"
	"log"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
)

const (
	nParticles  = 100000
	recordElems = 8 // x,y,z, vx,vy,vz, charge, type -> 64 bytes
	recordBytes = recordElems * 8
)

// migrating deterministically selects ~5% of particles as leaving the
// domain (every 19th slot), the paper's "array of indices of local
// particles that need to be communicated".
func migrating() []int {
	var idx []int
	for i := 0; i < nParticles; i += 19 {
		idx = append(idx, i)
	}
	return idx
}

func main() {
	world := mpi.NewWorld(mpi.Config{
		Ranks: []mpi.Placement{{Node: 0, GPU: 0}, {Node: 1, GPU: 0}}, // across InfiniBand
	})

	idx := migrating()
	ddt := shapes.ParticleIndices(idx, recordElems)
	fmt.Printf("exchanging %d of %d particles (%d KB) as an indexed datatype with %d blocks\n",
		len(idx), nParticles, ddt.Size()>>10, ddt.NumBlocks())

	var sentImg, recvImg []byte
	world.Run(func(m *mpi.Rank) {
		particles := m.Malloc(int64(nParticles) * recordBytes)
		switch m.Rank() {
		case 0:
			mem.FillPattern(particles, 7)
			sentImg = image(ddt, particles)
			t0 := m.Now()
			m.Send(particles, ddt, 1, 1, 0)
			fmt.Printf("rank 0: indexed send over IB took %v (virtual)\n", m.Now()-t0)
		case 1:
			// The receiver appends the immigrants at the tail of its
			// array: a contiguous receive of the same signature.
			incoming := datatype.Contiguous(len(idx)*recordElems, datatype.Float64)
			tail := particles.Slice(int64(nParticles-len(idx))*recordBytes, int64(len(idx))*recordBytes)
			m.Recv(tail, incoming, 1, 0, 0)
			recvImg = append([]byte(nil), tail.Bytes()...)
		}
	})

	if len(sentImg) != len(recvImg) {
		log.Fatalf("size mismatch: %d vs %d", len(sentImg), len(recvImg))
	}
	for i := range sentImg {
		if sentImg[i] != recvImg[i] {
			log.Fatalf("particle byte %d differs", i)
		}
	}
	fmt.Printf("verified: %d migrated particle records arrived intact (indexed -> contiguous)\n", len(idx))
}

func image(dt *datatype.Datatype, buf mem.Buffer) []byte {
	c := datatype.NewConverter(dt, 1)
	out := make([]byte, c.Total())
	c.Pack(out, buf.Bytes())
	return out
}
