// Distributed transpose: four ranks each own a column slab of a global
// column-major matrix; one Alltoall with asymmetric datatypes (strided
// sub-matrix out, contiguous in) plus a local datatype-engine reshuffle
// transposes the whole matrix — the communication pattern behind
// distributed FFTs, with all packing done by the GPU datatype engine.
//
//	go run ./examples/dtranspose
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
)

const (
	n = 256 // global matrix is n x n doubles
	p = 4   // ranks
	w = n / p
)

func main() {
	world := mpi.NewWorld(mpi.Config{
		Ranks: []mpi.Placement{
			{Node: 0, GPU: 0}, {Node: 0, GPU: 1}, {Node: 1, GPU: 0}, {Node: 1, GPU: 1},
		},
	})

	// Each rank owns columns [rank*w, rank*w+w) as an n x w column-major
	// slab. For the transpose, the piece destined for rank j is the
	// w x w sub-matrix at rows [j*w, j*w+w): a strided vector.
	piece := shapes.SubMatrix(w, w, n)                    // w x w block inside the slab
	pieceIn := datatype.Contiguous(w*w, datatype.Float64) // arrives packed

	ok := true
	world.Run(func(m *mpi.Rank) {
		slab := m.Malloc(int64(n*w) * 8)
		bs := slab.Bytes()
		// Global A[r,c] = 1000*r + c; this slab holds c in my range.
		for lc := 0; lc < w; lc++ {
			c := m.Rank()*w + lc
			for r := 0; r < n; r++ {
				binary.LittleEndian.PutUint64(bs[(lc*n+r)*8:], math.Float64bits(float64(1000*r+c)))
			}
		}

		// Alltoall: send block j (rows j*w..) to rank j; receive packed
		// w x w blocks. Send slots are strided views spaced w rows apart,
		// so resize the piece type to the slot stride.
		sendType := datatype.Resized(piece, 0, int64(w)*8)
		recv := m.Malloc(int64(p*w*w) * 8)
		m.Alltoall(slab, sendType, 1, recv, pieceIn, 1)

		// Block i arrived packed from rank i's slab: its sub-matrix rows
		// [rank*w, rank*w+w) x its columns [i*w, i*w+w), column-major.
		// So packed entry (a, b) of block i is A[rank*w+a, i*w+b] — every
		// element of global rows [rank*w, rank*w+w) now lives here, which
		// is exactly this rank's slab of A^T.
		rb := recv.Bytes()
		for i := 0; i < p && ok; i++ {
			for b := 0; b < w && ok; b++ {
				for a := 0; a < w; a++ {
					got := math.Float64frombits(binary.LittleEndian.Uint64(rb[((i*w+b)*w+a)*8:]))
					r := m.Rank()*w + a
					c := i*w + b
					if want := float64(1000*r + c); got != want {
						fmt.Printf("rank %d block %d (%d,%d): got %v want %v\n", m.Rank(), i, a, b, got, want)
						ok = false
						break
					}
				}
			}
		}
		if m.Rank() == 0 {
			fmt.Printf("alltoall transpose of %dx%d over %d ranks done at %v (virtual)\n", n, n, p, m.Now())
		}
	})
	if !ok {
		log.Fatal("distributed transpose verification failed")
	}
	fmt.Println("verified: every rank holds its transposed blocks (A[r,c] routed to owner of row r)")
}
