// Transpose: the paper's stress test (§5.2.3) as an application —
// transpose a column-major matrix "on the fly" by sending it with the
// transposed-view datatype and receiving contiguous. No transpose kernel
// is ever written: the datatype engine does the reshuffle during
// communication.
//
//	go run ./examples/transpose
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
)

const n = 256

func main() {
	world := mpi.NewWorld(mpi.Config{
		Ranks: []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}},
	})

	trans := shapes.Transpose(n)   // A^T as a view over A
	contig := shapes.FullMatrix(n) // receiver stores plainly

	var out mem.Buffer
	world.Run(func(m *mpi.Rank) {
		a := m.Malloc(shapes.MatrixBytes(n))
		if m.Rank() == 0 {
			// A[r,c] = 1000*r + c, column-major.
			bs := a.Bytes()
			for c := 0; c < n; c++ {
				for r := 0; r < n; r++ {
					v := float64(1000*r + c)
					binary.LittleEndian.PutUint64(bs[(c*n+r)*8:], math.Float64bits(v))
				}
			}
			t0 := m.Now()
			m.Send(a, trans, 1, 1, 0)
			fmt.Printf("rank 0: transpose-send of %dx%d took %v (virtual)\n", n, n, m.Now()-t0)
		} else {
			m.Recv(a, contig, 1, 0, 0)
			out = a
		}
	})

	// out, column-major, must now hold A^T: out[r,c] = A[c,r] = 1000*c + r.
	bs := out.Bytes()
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			got := math.Float64frombits(binary.LittleEndian.Uint64(bs[(c*n+r)*8:]))
			if want := float64(1000*c + r); got != want {
				log.Fatalf("out[%d,%d] = %v, want %v", r, c, got, want)
			}
		}
	}
	fmt.Printf("verified: received matrix is exactly A^T (%d elements)\n", n*n)
}
