// FFT reshape (Fig. 11's scenario): in a distributed FFT one side views
// its slab as a strided vector while the other receives contiguous. The
// handshake in the pipelined RDMA protocol notices the contiguous
// receiver and lets the sender's pack kernels write straight into the
// receive buffer — no unpack, no staging.
//
//	go run ./examples/fftreshape
package main

import (
	"fmt"
	"log"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

const n = 2048

func main() {
	vec := shapes.SubMatrix(n, n/2, n)                     // half the columns, strided view
	contig := datatype.Contiguous(n*n/2, datatype.Float64) // packed slab

	run := func(topo string, ranks []mpi.Placement) sim.Time {
		world := mpi.NewWorld(mpi.Config{Ranks: ranks})
		var sent, recv []byte
		var dur sim.Time
		world.Run(func(m *mpi.Rank) {
			if m.Rank() == 0 {
				a := m.Malloc(shapes.MatrixBytes(n))
				mem.FillPattern(a, 3)
				c := datatype.NewConverter(vec, 1)
				sent = make([]byte, c.Total())
				c.Pack(sent, a.Bytes())
				t0 := m.Now()
				m.Send(a, vec, 1, 1, 0)
				dur = m.Now() - t0
			} else {
				slab := m.Malloc(contig.Size())
				m.Recv(slab, contig, 1, 0, 0)
				recv = append([]byte(nil), slab.Bytes()...)
			}
		})
		for i := range sent {
			if sent[i] != recv[i] {
				log.Fatalf("%s: byte %d differs", topo, i)
			}
		}
		return dur
	}

	sm := run("2GPU", []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}})
	ib := run("IB", []mpi.Placement{{Node: 0, GPU: 0}, {Node: 1, GPU: 0}})
	size := vec.Size()
	fmt.Printf("vector->contiguous reshape of %d MB:\n", size>>20)
	fmt.Printf("  2 GPUs (pack direct into receiver): %v  (%.2f GB/s)\n", sm, sim.GBps(size, sm))
	fmt.Printf("  2 nodes over IB:                    %v  (%.2f GB/s)\n", ib, sim.GBps(size, ib))
	fmt.Println("verified: packed slab identical to the sender's strided view")
}
