// Command kernels runs the kernel-level microbenchmarks (Figs. 6-8 and
// the CUDA-DEV unit-size ablation) without the MPI runtime.
//
// Example:
//
//	kernels -bench fig6 -sizes 2048,4096,8192
//	kernels -bench unitsize -n 4096
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpuddt/internal/bench"
)

func main() {
	which := flag.String("bench", "fig6", "fig6, fig7, fig8, unitsize")
	sizesFlag := flag.String("sizes", "1024,2048,4096,8192", "matrix sizes")
	n := flag.Int("n", 2048, "matrix size for the unit-size ablation")
	flag.Parse()

	var sizes []int
	for _, f := range strings.Split(*sizesFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "kernels: bad size %q\n", f)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}

	switch *which {
	case "fig6":
		bench.Fig6(sizes).Print(os.Stdout)
	case "fig7":
		bench.Fig7(sizes).Print(os.Stdout)
	case "fig8":
		bench.Fig8([]int64{1024, 8192}, bench.Fig8BlockSizes).Print(os.Stdout)
	case "unitsize":
		bench.AblationUnitSize(*n, []int64{256, 512, 1024, 2048, 4096}).Print(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "kernels: unknown bench %q\n", *which)
		os.Exit(2)
	}
}
