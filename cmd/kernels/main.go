// Command kernels runs the kernel-level microbenchmarks (Figs. 6-8 and
// the CUDA-DEV unit-size ablation) without the MPI runtime.
//
// Example:
//
//	kernels -bench fig6 -sizes 2048,4096,8192
//	kernels -bench unitsize -n 4096
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpuddt/internal/bench"
	"gpuddt/internal/bench/cli"
)

// Run executes the command against args (without the program name) and
// returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("kernels", flag.ContinueOnError)
	fs.SetOutput(errOut)
	which := fs.String("bench", "fig6", "fig6, fig7, fig8, unitsize")
	sizesFlag := fs.String("sizes", "1024,2048,4096,8192", "matrix sizes")
	n := fs.Int("n", 2048, "matrix size for the unit-size ablation")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sizes, ok := cli.ParseSizes(*sizesFlag, "kernels", errOut)
	if !ok {
		return 2
	}

	switch *which {
	case "fig6":
		bench.Fig6(sizes).Print(out)
	case "fig7":
		bench.Fig7(sizes).Print(out)
	case "fig8":
		bench.Fig8([]int64{1024, 8192}, bench.Fig8BlockSizes).Print(out)
	case "unitsize":
		bench.AblationUnitSize(*n, []int64{256, 512, 1024, 2048, 4096}).Print(out)
	default:
		fmt.Fprintf(errOut, "kernels: unknown bench %q\n", *which)
		return 2
	}
	return 0
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}
