package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBenches(t *testing.T) {
	for _, b := range []string{"fig6", "fig7"} {
		var out, errOut bytes.Buffer
		if code := Run([]string{"-bench", b, "-sizes", "512"}, &out, &errOut); code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", b, code, errOut.String())
		}
		if !strings.Contains(out.String(), b) {
			t.Errorf("%s output does not mention the figure:\n%s", b, out.String())
		}
	}
}

func TestRunUnitSize(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-bench", "unitsize", "-n", "512"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if out.Len() == 0 {
		t.Error("no output")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-bench", "fig99"}, &out, &errOut); code != 2 {
		t.Errorf("unknown bench: exit %d, want 2", code)
	}
	if code := Run([]string{"-sizes", "x"}, &out, &errOut); code != 2 {
		t.Errorf("bad size: exit %d, want 2", code)
	}
}
