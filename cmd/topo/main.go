// Command topo prints the simulated cluster's hardware calibration: the
// GPU profile, PCIe topology and InfiniBand fabric parameters that every
// benchmark runs against, with the paper-reported numbers they are
// calibrated to.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpuddt/internal/gpu"
	"gpuddt/internal/ib"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

// Run executes the command against args (without the program name) and
// returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("topo", flag.ContinueOnError)
	fs.SetOutput(errOut)
	gpus := fs.Int("gpus", 2, "GPUs per node")
	nodes := fs.Int("nodes", 2, "nodes in the cluster")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	g := gpu.KeplerK40()
	p := pcie.DefaultParams()
	f := ib.DefaultParams()

	fmt.Fprintf(out, "Simulated cluster: %d node(s) x %d %s GPU(s)\n\n", *nodes, *gpus, g.Name)

	fmt.Fprintf(out, "GPU (%s):\n", g.Name)
	fmt.Fprintf(out, "  SMs                      %d (default grid %d blocks)\n", g.SMCount, g.DefaultBlocks)
	fmt.Fprintf(out, "  raw DRAM bandwidth       %.0f GB/s (cudaMemcpy D2D ~%.0f GB/s effective)\n",
		g.DRAMRawGBps, g.DRAMRawGBps/2*g.MemcpyD2DEff)
	fmt.Fprintf(out, "  per-block raw rate       %.0f GB/s\n", g.PerBlockRawGBps)
	fmt.Fprintf(out, "  kernel launch            %v, memcpy call %v\n", g.KernelLaunch, g.MemcpyOverhead)
	fmt.Fprintf(out, "  vector kernel eff        %.0f%% of peak (paper: 94%%)\n", 100*g.VectorKernelEff)
	fmt.Fprintf(out, "  DEV kernel eff           %.0f%% base; penalties: misaligned +%dB, partial +%dB raw/unit\n",
		100*g.DEVKernelEff, g.MisalignPenaltyRaw, g.PartialPenaltyRaw)
	fmt.Fprintf(out, "  memcpy2d pitch cliff     %.0f%% aligned / %.0f%% misaligned, %v per row\n",
		100*g.Memcpy2DAlignedEff, 100*g.Memcpy2DMisalignedEff, g.Memcpy2DPerRow)
	fmt.Fprintf(out, "  device memory            %.1f GiB simulated\n\n", float64(g.MemBytes)/(1<<30))

	fmt.Fprintf(out, "PCIe (per node):\n")
	fmt.Fprintf(out, "  root complex             %.1f GB/s per direction, %v per hop\n", p.RootGBps, p.HopLatency)
	fmt.Fprintf(out, "  GPU slots                %.1f GB/s per direction (P2P bypasses the root)\n", p.SlotGBps)
	fmt.Fprintf(out, "  host memory bus          %.0f GB/s raw (memcpy ~%.0f GB/s)\n", p.HostBusRawGBps, p.HostBusRawGBps/2)
	fmt.Fprintf(out, "  CUDA IPC map             %v one-time per handle\n\n", p.IPCMapCost)

	fmt.Fprintf(out, "InfiniBand (FDR):\n")
	fmt.Fprintf(out, "  wire                     %.1f GB/s per direction, %v latency\n", f.WireGBps, f.Latency)
	fmt.Fprintf(out, "  message post             %v; registration %v (cached)\n", f.PerMsgOverhead, f.RegCost)
	fmt.Fprintf(out, "  GPUDirect RDMA (large)   %.1f GB/s (why large transfers stage through host)\n\n", f.GPUDirectReadGBps)

	fmt.Fprintf(out, "Derived sanity numbers:\n")
	oneMB := int64(1 << 20)
	fmt.Fprintf(out, "  1 MiB over PCIe root     %v\n", sim.TimeForBytes(oneMB, p.RootGBps))
	fmt.Fprintf(out, "  1 MiB over IB wire       %v\n", sim.TimeForBytes(oneMB, f.WireGBps))
	fmt.Fprintf(out, "  1 MiB cudaMemcpy D2D     %v\n", sim.TimeForBytes(2*oneMB, g.DRAMRawGBps))
	return 0
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}
