// Command topo prints the simulated cluster's hardware calibration: the
// GPU profile, PCIe topology and InfiniBand fabric parameters that every
// benchmark runs against, with the paper-reported numbers they are
// calibrated to.
package main

import (
	"flag"
	"fmt"

	"gpuddt/internal/gpu"
	"gpuddt/internal/ib"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

func main() {
	gpus := flag.Int("gpus", 2, "GPUs per node")
	nodes := flag.Int("nodes", 2, "nodes in the cluster")
	flag.Parse()

	g := gpu.KeplerK40()
	p := pcie.DefaultParams()
	f := ib.DefaultParams()

	fmt.Printf("Simulated cluster: %d node(s) x %d %s GPU(s)\n\n", *nodes, *gpus, g.Name)

	fmt.Printf("GPU (%s):\n", g.Name)
	fmt.Printf("  SMs                      %d (default grid %d blocks)\n", g.SMCount, g.DefaultBlocks)
	fmt.Printf("  raw DRAM bandwidth       %.0f GB/s (cudaMemcpy D2D ~%.0f GB/s effective)\n",
		g.DRAMRawGBps, g.DRAMRawGBps/2*g.MemcpyD2DEff)
	fmt.Printf("  per-block raw rate       %.0f GB/s\n", g.PerBlockRawGBps)
	fmt.Printf("  kernel launch            %v, memcpy call %v\n", g.KernelLaunch, g.MemcpyOverhead)
	fmt.Printf("  vector kernel eff        %.0f%% of peak (paper: 94%%)\n", 100*g.VectorKernelEff)
	fmt.Printf("  DEV kernel eff           %.0f%% base; penalties: misaligned +%dB, partial +%dB raw/unit\n",
		100*g.DEVKernelEff, g.MisalignPenaltyRaw, g.PartialPenaltyRaw)
	fmt.Printf("  memcpy2d pitch cliff     %.0f%% aligned / %.0f%% misaligned, %v per row\n",
		100*g.Memcpy2DAlignedEff, 100*g.Memcpy2DMisalignedEff, g.Memcpy2DPerRow)
	fmt.Printf("  device memory            %.1f GiB simulated\n\n", float64(g.MemBytes)/(1<<30))

	fmt.Printf("PCIe (per node):\n")
	fmt.Printf("  root complex             %.1f GB/s per direction, %v per hop\n", p.RootGBps, p.HopLatency)
	fmt.Printf("  GPU slots                %.1f GB/s per direction (P2P bypasses the root)\n", p.SlotGBps)
	fmt.Printf("  host memory bus          %.0f GB/s raw (memcpy ~%.0f GB/s)\n", p.HostBusRawGBps, p.HostBusRawGBps/2)
	fmt.Printf("  CUDA IPC map             %v one-time per handle\n\n", p.IPCMapCost)

	fmt.Printf("InfiniBand (FDR):\n")
	fmt.Printf("  wire                     %.1f GB/s per direction, %v latency\n", f.WireGBps, f.Latency)
	fmt.Printf("  message post             %v; registration %v (cached)\n", f.PerMsgOverhead, f.RegCost)
	fmt.Printf("  GPUDirect RDMA (large)   %.1f GB/s (why large transfers stage through host)\n\n", f.GPUDirectReadGBps)

	fmt.Printf("Derived sanity numbers:\n")
	oneMB := int64(1 << 20)
	fmt.Printf("  1 MiB over PCIe root     %v\n", sim.TimeForBytes(oneMB, p.RootGBps))
	fmt.Printf("  1 MiB over IB wire       %v\n", sim.TimeForBytes(oneMB, f.WireGBps))
	fmt.Printf("  1 MiB cudaMemcpy D2D     %v\n", sim.TimeForBytes(2*oneMB, g.DRAMRawGBps))
}
