package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPrintsCalibration(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"GPU", "PCIe", "InfiniBand", "1 MiB over IB wire"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
