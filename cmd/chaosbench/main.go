// Command chaosbench measures how the recovery layer degrades under
// injected faults: for each topology it sweeps the fault rate and
// reports the achieved bandwidth and completion time of a fixed
// non-contiguous rendezvous transfer, in simulated (virtual) time,
// alongside the fault/retry/fallback counters that explain the slope.
// The rate-0 row of every sweep doubles as the clean baseline — with a
// nil plan the protocol code paths are untouched, so those figures are
// byte-identical to the pre-fault-subsystem simulator.
//
// Usage:
//
//	chaosbench                   # JSON to stdout
//	chaosbench -out BENCH_chaos.json
//	chaosbench -seed 3 -count 8
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"gpuddt/internal/bench/cli"
	"gpuddt/internal/cluster"
	"gpuddt/internal/datatype"
	"gpuddt/internal/fault"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// Point is one (topology, fault rate) measurement.
type Point struct {
	Topo          string  `json:"topo"`
	Rate          float64 `json:"rate"`
	Seed          uint64  `json:"seed"`
	Bytes         int64   `json:"bytes"`
	CompletionUs  float64 `json:"completion_us"`
	BandwidthGBps float64 `json:"bandwidth_gbps"`
	Slowdown      float64 `json:"slowdown_vs_clean"`
	Faults        int64   `json:"faults_injected"`
	Retries       int64   `json:"retries"`
	LaunchRetries int64   `json:"launch_retries"`
	Aborts        int64   `json:"protocol_aborts"`
	Fallbacks     int64   `json:"fallbacks"`
}

// Report is the BENCH_chaos.json schema. The header mirrors
// BENCH_host.json so downstream tooling parses both the same way.
type Report struct {
	GeneratedBy string  `json:"generated_by"`
	GoVersion   string  `json:"go_version"`
	GoMaxProcs  int     `json:"go_maxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Datatype    string  `json:"datatype"`
	Count       int     `json:"count"`
	FragBytes   int64   `json:"frag_bytes"`
	Chaos       []Point `json:"chaos"`
}

func span(dt *datatype.Datatype, count int) int64 {
	return int64(count-1)*dt.Extent() + dt.TrueLB() + dt.TrueExtent()
}

func cpuPack(dt *datatype.Datatype, count int, src []byte) []byte {
	c := datatype.NewConverter(dt, count)
	out := make([]byte, c.Total())
	c.Pack(out, src)
	return out
}

// measure runs one GPU-to-GPU rendezvous transfer of (dt, count) under
// the given fault rate and returns the receive completion time (virtual)
// plus the recovery counters. It verifies the payload on every run: a
// benchmark that silently corrupted data would be measuring garbage.
func measure(topo string, dt *datatype.Datatype, count int, seed uint64, rate float64, frag int64) (Point, error) {
	var plan *fault.Plan
	if rate > 0 {
		plan = fault.NewPlan(seed, rate)
	}
	spec := cluster.ByName(topo).Tuned(&mpi.Tuning{Eager: mpi.Eager(1), FragBytes: frag})
	cfg := spec.Config()
	cfg.Faults = plan
	w := mpi.NewWorld(cfg)
	rec := sim.NewRecorder(w.Engine())

	var sent, got []byte
	var elapsed sim.Time
	w.Run(func(m *mpi.Rank) {
		switch m.Rank() {
		case 0:
			buf := m.Malloc(span(dt, count))
			mem.FillPattern(buf, 42)
			sent = cpuPack(dt, count, buf.Bytes())
			m.Barrier()
			m.Send(buf, dt, count, 1, 5)
		case 1:
			buf := m.Malloc(span(dt, count))
			m.Barrier()
			t0 := m.Now()
			m.Recv(buf, dt, count, 0, 5)
			elapsed = m.Now() - t0
			got = cpuPack(dt, count, buf.Bytes())
		}
	})
	if !bytes.Equal(sent, got) {
		return Point{}, fmt.Errorf("%s rate %g seed %d: payload corrupted", topo, rate, seed)
	}
	total := int64(len(sent))
	return Point{
		Topo:          topo,
		Rate:          rate,
		Seed:          seed,
		Bytes:         total,
		CompletionUs:  elapsed.Micros(),
		BandwidthGBps: sim.GBps(total, elapsed),
		Faults:        w.Faults().Total(),
		Retries:       rec.Counter("mpi.retry"),
		LaunchRetries: rec.Counter("gpu.launch.retry"),
		Aborts:        rec.Counter("mpi.protocol.abort"),
		Fallbacks:     rec.Counter("mpi.fallback"),
	}, nil
}

// Run executes the command and returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("chaosbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	outPath := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	seed := fs.Uint64("seed", 1, "fault plan seed")
	count := fs.Int("count", 8, "datatype count per transfer")
	frag := fs.Int64("frag", 16<<10, "pipeline fragment size in bytes")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *count < 1 {
		fmt.Fprintf(errOut, "chaosbench: -count must be >= 1\n")
		return 2
	}

	dt := shapes.SubMatrix(128, 128, 256)
	rep := Report{
		GeneratedBy: "cmd/chaosbench",
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Datatype:    "submatrix_128x128_ld256",
		Count:       *count,
		FragBytes:   *frag,
	}

	rates := []float64{0, 0.01, 0.05, 0.1, 0.2}
	for _, topo := range []string{"1gpu", "2gpu", "ib"} {
		var clean float64
		for _, rate := range rates {
			pt, err := measure(topo, dt, *count, *seed, rate, *frag)
			if err != nil {
				fmt.Fprintf(errOut, "chaosbench: %v\n", err)
				return 1
			}
			if rate == 0 {
				clean = pt.CompletionUs
			}
			if clean > 0 {
				pt.Slowdown = pt.CompletionUs / clean
			}
			rep.Chaos = append(rep.Chaos, pt)
		}
	}

	return cli.WriteJSON(rep, *outPath, "chaos benchmark report", "chaosbench", out, errOut)
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}
