package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-count", "0"}, &out, &errOut); code != 2 {
		t.Errorf("bad count: exit %d, want 2", code)
	}
	if code := Run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}

func TestReportShape(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-count", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.GeneratedBy != "cmd/chaosbench" {
		t.Fatalf("generated_by = %q", rep.GeneratedBy)
	}
	if len(rep.Chaos) != 15 { // 3 topologies x 5 rates
		t.Fatalf("got %d sweep points, want 15", len(rep.Chaos))
	}
	for _, pt := range rep.Chaos {
		if pt.Rate == 0 {
			if pt.Faults != 0 {
				t.Errorf("%s: clean run injected %d faults", pt.Topo, pt.Faults)
			}
			if pt.Slowdown != 1 {
				t.Errorf("%s: clean run slowdown %g, want 1", pt.Topo, pt.Slowdown)
			}
		}
		if pt.BandwidthGBps <= 0 {
			t.Errorf("%s rate %g: non-positive bandwidth", pt.Topo, pt.Rate)
		}
	}
}

// TestSweepDeterministic pins the bench itself: two runs with the same
// seed must emit byte-identical reports.
func TestSweepDeterministic(t *testing.T) {
	var a, b, errOut bytes.Buffer
	if code := Run([]string{"-count", "2", "-seed", "9"}, &a, &errOut); code != 0 {
		t.Fatalf("first run: exit %d: %s", code, errOut.String())
	}
	if code := Run([]string{"-count", "2", "-seed", "9"}, &b, &errOut); code != 0 {
		t.Fatalf("second run: exit %d: %s", code, errOut.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different reports")
	}
}
