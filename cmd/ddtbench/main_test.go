package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-quick", "-figure", "fig9", "-sizes", "512"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "fig9") {
		t.Errorf("output does not mention fig9:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "512") {
		t.Errorf("output does not include the requested size:\n%s", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-figure", "fig6", "-sizes", "512", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), ",") {
		t.Errorf("CSV output has no commas:\n%s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-figure", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("unknown figure: exit %d, want 2", code)
	}
	if code := Run([]string{"-sizes", "banana"}, &out, &errOut); code != 2 {
		t.Errorf("bad size: exit %d, want 2", code)
	}
}
