package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-quick", "-figure", "fig9", "-sizes", "512"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "fig9") {
		t.Errorf("output does not mention fig9:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "512") {
		t.Errorf("output does not include the requested size:\n%s", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-figure", "fig6", "-sizes", "512", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), ",") {
		t.Errorf("CSV output has no commas:\n%s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-figure", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("unknown figure: exit %d, want 2", code)
	}
	if code := Run([]string{"-sizes", "banana"}, &out, &errOut); code != 2 {
		t.Errorf("bad size: exit %d, want 2", code)
	}
	if code := Run([]string{"-parallel", "0"}, &out, &errOut); code != 2 {
		t.Errorf("bad parallelism: exit %d, want 2", code)
	}
}

func TestRunAblationsAlias(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-quick", "-figure", "ablations", "-sizes", "512"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, id := range []string{"ablation-unitsize", "ablation-fragsize", "ablation-remoteunpack"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-figure ablations output is missing %s", id)
		}
	}
}

// TestRunParallelMatchesSerial checks the -parallel flag changes nothing
// but wall clock: byte-identical stdout.
func TestRunParallelMatchesSerial(t *testing.T) {
	args := []string{"-quick", "-figure", "fig10b", "-sizes", "512,1024", "-csv"}
	var serial, par, errOut bytes.Buffer
	if code := Run(args, &serial, &errOut); code != 0 {
		t.Fatalf("serial: exit %d, stderr: %s", code, errOut.String())
	}
	if code := Run(append([]string{"-parallel", "4"}, args...), &par, &errOut); code != 0 {
		t.Fatalf("parallel: exit %d, stderr: %s", code, errOut.String())
	}
	if serial.String() != par.String() {
		t.Fatalf("-parallel 4 output differs from serial\nserial:\n%s\nparallel:\n%s", serial.String(), par.String())
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	heap := filepath.Join(dir, "heap.pprof")
	var out, errOut bytes.Buffer
	code := Run([]string{
		"-quick", "-figure", "fig9", "-sizes", "512",
		"-cpuprofile", cpu, "-memprofile", heap,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, p := range []string{cpu, heap} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// BenchmarkDdtbenchParallel times a reduced sweep serially and with the
// parallel driver; compare the two sub-benchmarks to see the speedup on
// multi-core hosts (on a single-core host they coincide).
func BenchmarkDdtbenchParallel(b *testing.B) {
	args := []string{"-quick", "-figure", "fig10b", "-sizes", "512,1024"}
	for _, cfg := range []struct {
		name string
		pre  []string
	}{
		{"serial", nil},
		{"parallel4", []string{"-parallel", "4"}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var out, errOut bytes.Buffer
				if code := Run(append(append([]string{}, cfg.pre...), args...), &out, &errOut); code != 0 {
					b.Fatalf("exit %d, stderr: %s", code, errOut.String())
				}
			}
		})
	}
}
