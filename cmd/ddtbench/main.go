// Command ddtbench regenerates the paper's evaluation figures on the
// simulated substrate and prints each as an aligned table.
//
// Usage:
//
//	ddtbench                  # every figure at the default sweep
//	ddtbench -figure fig10b   # one figure
//	ddtbench -quick           # smaller sweeps (CI-friendly)
//	ddtbench -sizes 1024,4096 # explicit matrix sizes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gpuddt/internal/bench"
	"gpuddt/internal/trace"
)

func parseSizes(s string, errOut io.Writer) ([]int, bool) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			fmt.Fprintf(errOut, "ddtbench: bad size %q\n", f)
			return nil, false
		}
		out = append(out, n)
	}
	return out, true
}

// Run executes the command against args (without the program name) and
// returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("ddtbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	figure := fs.String("figure", "all", "figure to regenerate: fig1, fig6..fig12 (a/b/c for fig10), sec5.3, sec5.4, apps, whatif-gpu, ablations, all")
	sizesFlag := fs.String("sizes", "", "comma-separated matrix sizes (default: figure-specific sweep)")
	quick := fs.Bool("quick", false, "small sweeps for a fast smoke run")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON of every run (chrome://tracing, Perfetto) to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var traceRuns *[]trace.Run
	if *traceOut != "" {
		runs, stop := bench.CollectTraces()
		traceRuns = runs
		defer stop()
	}
	emit := func(f *bench.Figure) {
		if *csv {
			f.PrintCSV(out)
		} else {
			f.Print(out)
		}
	}

	sizes := bench.DefaultSizes
	ppSizes := bench.DefaultSizes
	trSizes := []int{512, 1024, 2048}
	blockCounts := []int64{1024, 8192}
	if *quick {
		sizes = []int{1024, 2048}
		ppSizes = []int{1024, 2048}
		trSizes = []int{256, 512}
		blockCounts = []int64{1024}
	}
	if *sizesFlag != "" {
		var ok bool
		sizes, ok = parseSizes(*sizesFlag, errOut)
		if !ok {
			return 2
		}
		ppSizes = sizes
		trSizes = sizes
	}

	runners := []struct {
		id string
		fn func() *bench.Figure
	}{
		{"fig1", func() *bench.Figure { return bench.Fig1Solutions(trSizes) }},
		{"fig6", func() *bench.Figure { return bench.Fig6(sizes) }},
		{"fig7", func() *bench.Figure { return bench.Fig7(sizes) }},
		{"fig8", func() *bench.Figure { return bench.Fig8(blockCounts, bench.Fig8BlockSizes) }},
		{"fig9", func() *bench.Figure { return bench.Fig9(ppSizes) }},
		{"fig10a", func() *bench.Figure { return bench.Fig10(bench.OneGPU, ppSizes) }},
		{"fig10b", func() *bench.Figure { return bench.Fig10(bench.TwoGPU, ppSizes) }},
		{"fig10c", func() *bench.Figure { return bench.Fig10(bench.TwoNode, ppSizes) }},
		{"fig11", func() *bench.Figure { return bench.Fig11(ppSizes) }},
		{"fig12", func() *bench.Figure { return bench.Fig12(trSizes) }},
		{"sec5.3", func() *bench.Figure { return bench.Sec53(2048, []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 30}) }},
		{"sec5.4", func() *bench.Figure { return bench.Sec54(2048, []float64{0, 0.25, 0.5, 0.75, 0.9}) }},
		{"apps", func() *bench.Figure { return bench.Apps() }},
		{"whatif-gpu", func() *bench.Figure { return bench.WhatIfGPU(4096) }},
		{"ablations", nil}, // expanded below
	}

	ablations := []func() *bench.Figure{
		func() *bench.Figure { return bench.AblationUnitSize(2048, []int64{256, 512, 1024, 2048, 4096}) },
		func() *bench.Figure {
			return bench.AblationPipeline(2048, []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20})
		},
		func() *bench.Figure { return bench.AblationRemoteUnpack(ppSizes) },
	}

	ran := false
	for _, r := range runners {
		if *figure != "all" && *figure != r.id {
			continue
		}
		ran = true
		if r.id == "ablations" {
			for _, fn := range ablations {
				emit(fn())
			}
			continue
		}
		emit(r.fn())
	}
	if !ran {
		fmt.Fprintf(errOut, "ddtbench: unknown figure %q\n", *figure)
		return 2
	}
	if traceRuns != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(errOut, "ddtbench: %v\n", err)
			return 1
		}
		werr := trace.WriteChrome(f, *traceRuns...)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(errOut, "ddtbench: %v\n", werr)
			return 1
		}
		fmt.Fprintf(out, "trace of %d runs written to %s\n", len(*traceRuns), *traceOut)
	}
	return 0
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}
