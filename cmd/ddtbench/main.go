// Command ddtbench regenerates the paper's evaluation figures on the
// simulated substrate and prints each as an aligned table.
//
// Usage:
//
//	ddtbench                  # every figure at the default sweep
//	ddtbench -figure fig10b   # one figure
//	ddtbench -quick           # smaller sweeps (CI-friendly)
//	ddtbench -sizes 1024,4096 # explicit matrix sizes
//	ddtbench -parallel 4      # sweep points on up to 4 goroutines
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpuddt/internal/bench"
	"gpuddt/internal/bench/cli"
	"gpuddt/internal/trace"
)

// Run executes the command against args (without the program name) and
// returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("ddtbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	figure := fs.String("figure", "all", "figure to regenerate: fig1, fig6..fig12 (a/b/c for fig10), sec5.3, sec5.4, apps, whatif-gpu, overlap, ablations, all")
	sizesFlag := fs.String("sizes", "", "comma-separated matrix sizes (default: figure-specific sweep)")
	quick := fs.Bool("quick", false, "small sweeps for a fast smoke run")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	traceFlag := cli.Trace(fs)
	parallel := fs.Int("parallel", 1, "run figure runners and sweep points on up to N goroutines (figures are identical at any setting; with -trace, run order follows completion)")
	prof := cli.Profiles(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(errOut, "ddtbench: -parallel must be >= 1\n")
		return 2
	}
	stopProf, ok := prof.Start(errOut)
	defer stopProf()
	if !ok {
		return 1
	}
	var traceRuns *[]trace.Run
	if traceFlag.Enabled() {
		runs, stop := bench.CollectTraces()
		traceRuns = runs
		defer stop()
	}

	cfg := bench.DefaultSweep()
	if *quick {
		cfg = bench.QuickSweep()
	}
	if *sizesFlag != "" {
		sizes, ok := cli.ParseSizes(*sizesFlag, "ddtbench", errOut)
		if !ok {
			return 2
		}
		cfg.Sizes = sizes
		cfg.TrSizes = sizes
	}

	var selected []bench.Runner
	for _, r := range bench.Runners() {
		if r.Matches(*figure) {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(errOut, "ddtbench: unknown figure %q\n", *figure)
		return 2
	}

	bench.SetParallelism(*parallel)
	defer bench.SetParallelism(1)
	for _, f := range bench.RunAll(selected, cfg) {
		if *csv {
			f.PrintCSV(out)
		} else {
			f.Print(out)
		}
	}

	if traceRuns != nil {
		if err := traceFlag.WriteRuns(*traceRuns...); err != nil {
			fmt.Fprintf(errOut, "ddtbench: %v\n", err)
			return 1
		}
		if code := traceFlag.Flush(fmt.Sprintf("trace of %d runs", len(*traceRuns)), out, errOut); code != 0 {
			return code
		}
	}
	return 0
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}
