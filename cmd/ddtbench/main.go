// Command ddtbench regenerates the paper's evaluation figures on the
// simulated substrate and prints each as an aligned table.
//
// Usage:
//
//	ddtbench                  # every figure at the default sweep
//	ddtbench -figure fig10b   # one figure
//	ddtbench -quick           # smaller sweeps (CI-friendly)
//	ddtbench -sizes 1024,4096 # explicit matrix sizes
//	ddtbench -parallel 4      # sweep points on up to 4 goroutines
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"gpuddt/internal/bench"
	"gpuddt/internal/trace"
)

func parseSizes(s string, errOut io.Writer) ([]int, bool) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			fmt.Fprintf(errOut, "ddtbench: bad size %q\n", f)
			return nil, false
		}
		out = append(out, n)
	}
	return out, true
}

// Run executes the command against args (without the program name) and
// returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("ddtbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	figure := fs.String("figure", "all", "figure to regenerate: fig1, fig6..fig12 (a/b/c for fig10), sec5.3, sec5.4, apps, whatif-gpu, ablations, all")
	sizesFlag := fs.String("sizes", "", "comma-separated matrix sizes (default: figure-specific sweep)")
	quick := fs.Bool("quick", false, "small sweeps for a fast smoke run")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON of every run (chrome://tracing, Perfetto) to this file")
	parallel := fs.Int("parallel", 1, "run figure runners and sweep points on up to N goroutines (figures are identical at any setting; with -trace, run order follows completion)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(errOut, "ddtbench: -parallel must be >= 1\n")
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(errOut, "ddtbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(errOut, "ddtbench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(errOut, "ddtbench: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(errOut, "ddtbench: %v\n", err)
			}
			f.Close()
		}()
	}
	var traceRuns *[]trace.Run
	if *traceOut != "" {
		runs, stop := bench.CollectTraces()
		traceRuns = runs
		defer stop()
	}

	cfg := bench.DefaultSweep()
	if *quick {
		cfg = bench.QuickSweep()
	}
	if *sizesFlag != "" {
		sizes, ok := parseSizes(*sizesFlag, errOut)
		if !ok {
			return 2
		}
		cfg.Sizes = sizes
		cfg.TrSizes = sizes
	}

	var selected []bench.Runner
	for _, r := range bench.Runners() {
		if r.Matches(*figure) {
			selected = append(selected, r)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(errOut, "ddtbench: unknown figure %q\n", *figure)
		return 2
	}

	bench.SetParallelism(*parallel)
	defer bench.SetParallelism(1)
	for _, f := range bench.RunAll(selected, cfg) {
		if *csv {
			f.PrintCSV(out)
		} else {
			f.Print(out)
		}
	}

	if traceRuns != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(errOut, "ddtbench: %v\n", err)
			return 1
		}
		werr := trace.WriteChrome(f, *traceRuns...)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(errOut, "ddtbench: %v\n", werr)
			return 1
		}
		fmt.Fprintf(out, "trace of %d runs written to %s\n", len(*traceRuns), *traceOut)
	}
	return 0
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}
