package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestQuickRun(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-quick"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep.GeneratedBy != "cmd/scalebench" {
		t.Errorf("generated_by = %q", rep.GeneratedBy)
	}
	if len(rep.Scale) == 0 {
		t.Fatal("no sweep points")
	}
	for _, pt := range rep.Scale {
		if pt.HierUs <= 0 || pt.FlatUs <= 0 {
			t.Errorf("%s %d ranks: non-positive time", pt.Coll, pt.Ranks)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	var a, b, errOut bytes.Buffer
	if code := Run([]string{"-quick"}, &a, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if code := Run([]string{"-quick"}, &b, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two -quick runs differ: the sweep is not deterministic")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
