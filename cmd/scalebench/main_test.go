package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestQuickRun(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-quick"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep.GeneratedBy != "cmd/scalebench" {
		t.Errorf("generated_by = %q", rep.GeneratedBy)
	}
	if len(rep.Scale) == 0 {
		t.Fatal("no sweep points")
	}
	var modelled int
	for _, pt := range rep.Scale {
		if pt.HierUs <= 0 || pt.FlatUs <= 0 {
			t.Errorf("%s %d ranks: non-positive time", pt.Coll, pt.Ranks)
		}
		if pt.Mode == "modelled" {
			modelled++
			if !pt.SerialIdentical {
				t.Errorf("%s %d ranks: quick modelled point without serial identity", pt.Coll, pt.Ranks)
			}
			if pt.Ranks > 256 && pt.MemPerRank > 64<<10 {
				t.Errorf("%s %d ranks: %d B/rank is not flyweight", pt.Coll, pt.Ranks, pt.MemPerRank)
			}
		}
	}
	if modelled == 0 {
		t.Fatal("no modelled mega-scale points in the report")
	}
	if rep.Shards <= 0 || rep.SampleRanks <= 0 {
		t.Errorf("report header missing shards/sample_ranks: %d/%d", rep.Shards, rep.SampleRanks)
	}
}

// TestShardsFlag: the -shards override must reach the modelled sweep
// without perturbing virtual times (engine determinism).
func TestShardsFlag(t *testing.T) {
	var a, b, errOut bytes.Buffer
	if code := Run([]string{"-quick", "-shards", "1"}, &a, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if code := Run([]string{"-quick", "-shards", "4"}, &b, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var ra, rb Report
	if err := json.Unmarshal(a.Bytes(), &ra); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b.Bytes(), &rb); err != nil {
		t.Fatal(err)
	}
	if ra.Shards != 1 || rb.Shards != 4 {
		t.Fatalf("shards flag not honored: %d/%d", ra.Shards, rb.Shards)
	}
	for i := range ra.Scale {
		pa, pb := ra.Scale[i], rb.Scale[i]
		if pa.Mode != "modelled" {
			continue
		}
		if pa.HierUs != pb.HierUs || pa.FlatUs != pb.FlatUs {
			t.Errorf("%s %d ranks: virtual times depend on shard count", pa.Coll, pa.Ranks)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	var a, b, errOut bytes.Buffer
	if code := Run([]string{"-quick"}, &a, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if code := Run([]string{"-quick"}, &b, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two -quick runs differ: the sweep is not deterministic")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
