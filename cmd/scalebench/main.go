// Command scalebench sweeps the topology-aware collectives against
// their flat counterparts on simulated fat-tree clusters — collective x
// world size x oversubscription — and emits a machine-readable
// BENCH_scale.json. Both algorithms run on the same fabric and must
// produce byte-identical buffers on every rank; the reported times are
// virtual (simulated), so the sweep is deterministic: two runs of the
// same binary produce the same measurements.
//
// The report has two sections in one array: real-payload points
// (2..256 ranks, full protocol stack) and modelled-payload points
// (mode "modelled": flyweight ranks on the sharded event engine,
// 32..16384 ranks). Modelled points are digest-verified against the
// schedules' expected payload movement, and the smaller ones re-run on
// the serial engine to prove the sharded virtual times byte-identical.
//
// Usage:
//
//	scalebench                   # JSON to stdout (full sweep, up to 16384 ranks)
//	scalebench -out BENCH_scale.json
//	scalebench -quick            # CI smoke sweep
//	scalebench -shards 4         # sharded-engine partitions for modelled points
//	scalebench -sample 128       # verified ranks per modelled point
//	scalebench -tuning TUNING.json  # tuned third arm from a tuning table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"gpuddt/internal/bench"
	"gpuddt/internal/bench/cli"
	"gpuddt/internal/tune"
)

// Report is the BENCH_scale.json schema. The header mirrors
// BENCH_chaos.json so downstream tooling parses both the same way.
type Report struct {
	GeneratedBy  string             `json:"generated_by"`
	GoVersion    string             `json:"go_version"`
	GoMaxProcs   int                `json:"go_maxprocs"`
	NumCPU       int                `json:"num_cpu"`
	Datatype     string             `json:"datatype"`
	RanksPerNode int                `json:"ranks_per_node"`
	Shards       int                `json:"shards"`
	SampleRanks  int                `json:"sample_ranks"`
	Scale        []bench.ScalePoint `json:"scale"`
}

// Run executes the command and returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("scalebench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	outPath := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	quick := fs.Bool("quick", false, "small sweep for a fast smoke run")
	shards := fs.Int("shards", 0, "sharded-engine partitions for modelled points (0: sweep default)")
	sample := fs.Int("sample", 0, "content-verified ranks per modelled point (0: sweep default)")
	tuning := fs.String("tuning", "", "tuning table (TUNING.json) adding a tuned arm per real-payload point")
	prof := cli.Profiles(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, ok := prof.Start(errOut)
	defer stopProf()
	if !ok {
		return 1
	}

	sw := bench.DefaultScaleSweep()
	msw := bench.DefaultMegaSweep()
	if *quick {
		sw = bench.QuickScaleSweep()
		msw = bench.QuickMegaSweep()
	}
	if *shards > 0 {
		msw.Shards = *shards
	}
	if *sample > 0 {
		msw.SampleRanks = *sample
	}
	if *tuning != "" {
		tbl, err := tune.Load(*tuning)
		if err != nil {
			fmt.Fprintf(errOut, "scalebench: %v\n", err)
			return 1
		}
		sw.Tune = tbl.TuneFunc()
	}
	pts, err := bench.RunScale(sw)
	if err != nil {
		fmt.Fprintf(errOut, "scalebench: %v\n", err)
		return 1
	}
	mpts, err := bench.RunMega(msw)
	if err != nil {
		fmt.Fprintf(errOut, "scalebench: %v\n", err)
		return 1
	}
	pts = append(pts, mpts...)
	rep := Report{
		GeneratedBy:  "cmd/scalebench",
		GoVersion:    runtime.Version(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Datatype:     "submatrix_16x8_ld12",
		RanksPerNode: sw.RanksPerNode,
		Shards:       msw.Shards,
		SampleRanks:  msw.SampleRanks,
		Scale:        pts,
	}
	return cli.WriteJSON(rep, *outPath, "scale benchmark report", "scalebench", out, errOut)
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}
