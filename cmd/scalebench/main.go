// Command scalebench sweeps the topology-aware collectives against
// their flat counterparts on simulated fat-tree clusters — collective x
// world size x oversubscription — and emits a machine-readable
// BENCH_scale.json. Both algorithms run on the same fabric and must
// produce byte-identical buffers on every rank; the reported times are
// virtual (simulated), so the sweep is deterministic: two runs of the
// same binary produce the same measurements.
//
// Usage:
//
//	scalebench                   # JSON to stdout (full sweep, 2..256 ranks)
//	scalebench -out BENCH_scale.json
//	scalebench -quick            # CI smoke sweep
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"gpuddt/internal/bench"
	"gpuddt/internal/bench/cli"
)

// Report is the BENCH_scale.json schema. The header mirrors
// BENCH_chaos.json so downstream tooling parses both the same way.
type Report struct {
	GeneratedBy  string             `json:"generated_by"`
	GoVersion    string             `json:"go_version"`
	GoMaxProcs   int                `json:"go_maxprocs"`
	NumCPU       int                `json:"num_cpu"`
	Datatype     string             `json:"datatype"`
	RanksPerNode int                `json:"ranks_per_node"`
	Scale        []bench.ScalePoint `json:"scale"`
}

// Run executes the command and returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("scalebench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	outPath := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	quick := fs.Bool("quick", false, "small sweep for a fast smoke run")
	prof := cli.Profiles(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, ok := prof.Start(errOut)
	defer stopProf()
	if !ok {
		return 1
	}

	sw := bench.DefaultScaleSweep()
	if *quick {
		sw = bench.QuickScaleSweep()
	}
	pts, err := bench.RunScale(sw)
	if err != nil {
		fmt.Fprintf(errOut, "scalebench: %v\n", err)
		return 1
	}
	rep := Report{
		GeneratedBy:  "cmd/scalebench",
		GoVersion:    runtime.Version(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Datatype:     "submatrix_16x8_ld12",
		RanksPerNode: sw.RanksPerNode,
		Scale:        pts,
	}
	return cli.WriteJSON(rep, *outPath, "scale benchmark report", "scalebench", out, errOut)
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}
