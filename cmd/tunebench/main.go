// Command tunebench runs the adaptive protocol auto-tuner: it searches
// the knob space (eager threshold, pipeline fragment size, collective
// algorithm family) against simulated virtual time on a fixed point set
// — point-to-point traffic, reductions on oversubscribed fat trees, and
// whole application workloads — persists the winning configurations as
// a versioned tuning table, and emits a tuned-vs-default report plus
// the in-network-reduction curve (flat vs hierarchical vs switch).
//
// Everything is deterministic: the search is an exhaustive grid over
// virtual time, so two runs of the same binary produce byte-identical
// tables and reports. Every tuned configuration is digest-verified
// against the defaults — a tuning may change when bytes move, never
// which bytes arrive.
//
// Usage:
//
//	tunebench                          # report JSON to stdout
//	tunebench -table TUNING.json       # also persist the tuning table
//	tunebench -out BENCH_tune.json     # write the report to a file
//	tunebench -quick                   # CI smoke point set
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"gpuddt/internal/bench/cli"
	"gpuddt/internal/tune"
)

// tunerSeed ties the committed table to the app-workload seeds used by
// the application objectives (the same seed BENCH_apps.json runs under).
const tunerSeed = 0xA5

// Report is the BENCH_tune.json schema.
type Report struct {
	GeneratedBy string            `json:"generated_by"`
	GoVersion   string            `json:"go_version"`
	Seed        uint64            `json:"seed"`
	Space       string            `json:"space"`
	TableDigest string            `json:"table_digest"`
	Bench       []tune.BenchPoint `json:"bench"`
	Curve       []tune.CurvePoint `json:"curve"`
}

// Run executes the command and returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("tunebench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	outPath := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	tablePath := fs.String("table", "", "persist the sealed tuning table to this file")
	quick := fs.Bool("quick", false, "small point set for a fast smoke run")
	prof := cli.Profiles(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, ok := prof.Start(errOut)
	defer stopProf()
	if !ok {
		return 1
	}

	cfg := tune.Config{Space: tune.DefaultSpace(), Points: tune.DefaultPoints(tunerSeed), Seed: tunerSeed}
	curve := tune.DefaultCurveShapes()
	if *quick {
		cfg = tune.Config{Space: tune.QuickSpace(), Points: tune.QuickPoints(tunerSeed), Seed: tunerSeed}
		curve = []tune.CurveShape{{Nodes: 8, RPN: 2, Oversub: 4, Elems: 1 << 13}}
	}
	tbl, err := tune.Run(cfg)
	if err != nil {
		fmt.Fprintf(errOut, "tunebench: %v\n", err)
		return 1
	}
	if *tablePath != "" {
		if err := tbl.Save(*tablePath); err != nil {
			fmt.Fprintf(errOut, "tunebench: %v\n", err)
			return 1
		}
		fmt.Fprintf(errOut, "tunebench: wrote tuning table (%d entries) to %s\n", len(tbl.Entries), *tablePath)
	}
	bpts, err := tune.RunBench(tbl, cfg.Points)
	if err != nil {
		fmt.Fprintf(errOut, "tunebench: %v\n", err)
		return 1
	}
	cpts, err := tune.RunCurve(curve)
	if err != nil {
		fmt.Fprintf(errOut, "tunebench: %v\n", err)
		return 1
	}
	rep := Report{
		GeneratedBy: "cmd/tunebench",
		GoVersion:   runtime.Version(),
		Seed:        cfg.Seed,
		Space:       cfg.Space.String(),
		TableDigest: tbl.Digest,
		Bench:       bpts,
		Curve:       cpts,
	}
	return cli.WriteJSON(rep, *outPath, "tuning benchmark report", "tunebench", out, errOut)
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}
