package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestQuickRun(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-quick"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep.GeneratedBy != "cmd/appbench" {
		t.Errorf("generated_by = %q", rep.GeneratedBy)
	}
	families := map[string]bool{}
	for _, pt := range rep.Apps {
		families[pt.Family] = true
		if pt.ElapsedUs <= 0 || pt.Digest == "" {
			t.Errorf("%s/%d ranks: unverified point %+v", pt.Family, pt.Ranks, pt)
		}
		if (pt.Family == "stencil2d" || pt.Family == "stencil3d") && pt.SubarraySpans == 0 {
			t.Errorf("%s/%d ranks: no subarray halo spans", pt.Family, pt.Ranks)
		}
	}
	for _, fam := range []string{"ml-ring", "ml-tree", "stencil2d", "stencil3d", "checkpoint"} {
		if !families[fam] {
			t.Errorf("family %s missing from report", fam)
		}
	}
	if len(rep.Interference) != 3 {
		t.Fatalf("interference policies = %d, want 3", len(rep.Interference))
	}
	for _, st := range rep.Interference {
		for _, j := range st.Jobs {
			if !j.DigestMatch {
				t.Errorf("%s/%s: digest changed under contention", st.Policy, j.Job)
			}
		}
	}
}

// TestDeterministicOutput: the sweep must be byte-reproducible — this
// is the same property `make app-check` re-verifies on the full report.
func TestDeterministicOutput(t *testing.T) {
	var a, b, errOut bytes.Buffer
	if code := Run([]string{"-quick"}, &a, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if code := Run([]string{"-quick"}, &b, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two -quick runs differ: the sweep is not deterministic")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
