// Command appbench runs the application-workload sweep — ML training
// (ring/tree allreduce over fused gradient buckets plus MoE sparse
// alltoallv), 2D/3D stencil halo exchange over real subarray datatypes,
// and checkpoint bursts through the collective-I/O layer — on simulated
// fat-tree clusters at two fabric oversubscription levels, then the
// two-job interference study (training vs stencil co-scheduled on one
// oversubscribed cluster) under the packed, spread and striped
// placement policies. It emits a machine-readable BENCH_apps.json.
//
// Every point is payload-verified: workloads generate all traffic from
// seeded word generators and check every received byte on the receiving
// rank, and each interference job's payload digest must be
// byte-identical co-scheduled and alone — contention may move time,
// never data. Reported times are virtual (simulated), so two runs of
// the same binary produce the same report.
//
// Usage:
//
//	appbench                    # JSON to stdout (full sweep)
//	appbench -out BENCH_apps.json
//	appbench -quick             # CI smoke sweep
//	appbench -tuning TUNING.json  # tuned arm per point from a tuning table
package main

import (
	"fmt"
	"io"
	"os"
	"runtime"

	"flag"

	"gpuddt/internal/bench"
	"gpuddt/internal/bench/cli"
	"gpuddt/internal/tune"
	"gpuddt/internal/workload"
)

// Report is the BENCH_apps.json schema. The header mirrors
// BENCH_scale.json so downstream tooling parses both the same way.
type Report struct {
	GeneratedBy  string                 `json:"generated_by"`
	GoVersion    string                 `json:"go_version"`
	GoMaxProcs   int                    `json:"go_maxprocs"`
	NumCPU       int                    `json:"num_cpu"`
	RanksPerNode int                    `json:"ranks_per_node"`
	Apps         []bench.AppPoint       `json:"apps"`
	Interference []workload.StudyResult `json:"interference"`
}

// Run executes the command and returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("appbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	outPath := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	quick := fs.Bool("quick", false, "small sweep for a fast smoke run")
	tuning := fs.String("tuning", "", "tuning table (TUNING.json) adding a tuned arm per app point")
	prof := cli.Profiles(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, ok := prof.Start(errOut)
	defer stopProf()
	if !ok {
		return 1
	}

	sw := bench.DefaultAppSweep()
	if *quick {
		sw = bench.QuickAppSweep()
	}
	if *tuning != "" {
		tbl, err := tune.Load(*tuning)
		if err != nil {
			fmt.Fprintf(errOut, "appbench: %v\n", err)
			return 1
		}
		sw.Tune = tbl.TuneFunc()
	}
	pts, err := bench.RunApps(sw)
	if err != nil {
		fmt.Fprintf(errOut, "appbench: %v\n", err)
		return 1
	}
	studies, err := bench.RunAppStudies(sw)
	if err != nil {
		fmt.Fprintf(errOut, "appbench: %v\n", err)
		return 1
	}
	rep := Report{
		GeneratedBy:  "cmd/appbench",
		GoVersion:    runtime.Version(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		RanksPerNode: sw.RanksPerNode,
		Apps:         pts,
		Interference: studies,
	}
	return cli.WriteJSON(rep, *outPath, "application benchmark report", "appbench", out, errOut)
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}
