// Command pingpong runs one configurable GPU-datatype ping-pong on the
// simulated cluster and reports latency and achieved bandwidth.
//
// Example:
//
//	pingpong -topo 2gpu -type triangular -n 4096 -iters 5
//	pingpong -topo ib -type vector -n 8192 -impl mvapich
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpuddt/internal/baseline"
	"gpuddt/internal/bench"
	"gpuddt/internal/bench/cli"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// Run executes the command against args (without the program name) and
// returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("pingpong", flag.ContinueOnError)
	fs.SetOutput(errOut)
	topoFlag := fs.String("topo", "2gpu", "topology: 1gpu, 2gpu, ib")
	typeFlag := fs.String("type", "vector", "datatype: vector, triangular, contiguous, transpose, vec2contig")
	n := fs.Int("n", 4096, "matrix size N (N x N doubles)")
	iters := fs.Int("iters", 5, "measured iterations")
	impl := fs.String("impl", "ours", "implementation: ours, mvapich")
	frag := fs.Int64("frag", 0, "pipeline fragment bytes (0 = default 1 MiB)")
	depth := fs.Int("depth", 0, "pipeline depth (0 = default 4)")
	host := fs.Bool("host", false, "place the data in host memory (CPU datatype engine)")
	blocks := fs.Int("blocks", 0, "restrict pack/unpack kernels to this many CUDA blocks")
	direct := fs.Bool("direct-unpack", false, "unpack directly from remote GPU memory (no staging)")
	verbose := fs.Bool("verbose", false, "print a link-utilization report after the run")
	traceFlag := cli.Trace(fs)
	phases := fs.Bool("phases", false, "print the per-message phase attribution (pack vs wire vs unpack)")
	timeline := fs.Bool("timeline", false, "print the plain-text span timeline")
	prof := cli.Profiles(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stopProf, ok := prof.Start(errOut)
	defer stopProf()
	if !ok {
		return 1
	}

	var topo bench.Topology
	switch *topoFlag {
	case "1gpu":
		topo = bench.OneGPU
	case "2gpu":
		topo = bench.TwoGPU
	case "ib":
		topo = bench.TwoNode
	default:
		fmt.Fprintf(errOut, "pingpong: unknown topology %q\n", *topoFlag)
		return 2
	}

	var dt0, dt1 *datatype.Datatype
	switch *typeFlag {
	case "vector":
		dt0 = shapes.SubMatrix(*n, *n, *n+32)
	case "triangular":
		dt0 = shapes.LowerTriangular(*n)
	case "contiguous":
		dt0 = shapes.FullMatrix(*n)
	case "transpose":
		dt0 = shapes.Transpose(*n)
		dt1 = shapes.FullMatrix(*n)
	case "vec2contig":
		dt0 = shapes.SubMatrix(*n, *n, *n+32)
		dt1 = shapes.FullMatrix(*n)
	default:
		fmt.Fprintf(errOut, "pingpong: unknown type %q\n", *typeFlag)
		return 2
	}

	var strategy mpi.Strategy
	if *impl == "mvapich" {
		strategy = &baseline.MVAPICHStrategy{}
	} else if *impl != "ours" {
		fmt.Fprintf(errOut, "pingpong: unknown impl %q\n", *impl)
		return 2
	}

	spec := bench.PingPongSpec{
		Topo:   topo,
		Dt0:    dt0,
		Dt1:    dt1,
		Count:  1,
		OnHost: *host,
		Iters:  *iters,
		Tuning: &mpi.Tuning{
			Strategy:           strategy,
			FragBytes:          *frag,
			PipelineDepth:      *depth,
			DirectRemoteUnpack: *direct,
		},
		BlockCap: *blocks,
	}
	if *verbose {
		spec.Trace = errOut
	}
	if *phases {
		spec.TracePhases = out
	}
	if *timeline {
		spec.TraceTimeline = out
	}
	spec.TraceJSON = traceFlag.Writer()
	rt := bench.PingPong(spec)
	if code := traceFlag.Flush("trace", out, errOut); code != 0 {
		return code
	}
	fmt.Fprintf(out, "topology=%s type=%s N=%d impl=%s packed=%s\n",
		topo, *typeFlag, *n, *impl, fmtBytes(dt0.Size()))
	fmt.Fprintf(out, "round-trip: %v   one-way: %v   bandwidth: %.2f GB/s\n",
		rt, rt/2, sim.GBps(dt0.Size(), rt/2))
	return 0
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
