package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunReportsBandwidth(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-n", "512", "-iters", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "bandwidth:") || !strings.Contains(got, "GB/s") {
		t.Errorf("no bandwidth report in output:\n%s", got)
	}
}

func TestRunAllTopologies(t *testing.T) {
	for _, topo := range []string{"1gpu", "2gpu", "ib"} {
		var out, errOut bytes.Buffer
		if code := Run([]string{"-topo", topo, "-n", "512", "-iters", "1"}, &out, &errOut); code != 0 {
			t.Errorf("topo %s: exit %d, stderr: %s", topo, code, errOut.String())
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-topo", "3gpu"}, &out, &errOut); code != 2 {
		t.Errorf("unknown topo: exit %d, want 2", code)
	}
	if code := Run([]string{"-type", "diagonal"}, &out, &errOut); code != 2 {
		t.Errorf("unknown type: exit %d, want 2", code)
	}
	if code := Run([]string{"-impl", "openmpi-1.8"}, &out, &errOut); code != 2 {
		t.Errorf("unknown impl: exit %d, want 2", code)
	}
}
