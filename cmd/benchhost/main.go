// Command benchhost measures the host-side performance of the simulator
// itself — converter seeks, DEV-cache hits, and the parallel figure
// driver — and emits a machine-readable BENCH_host.json. Virtual time
// never appears here: this is the wall-clock cost of producing it.
//
// Usage:
//
//	benchhost                  # JSON to stdout
//	benchhost -out BENCH_host.json
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"gpuddt/internal/bench"
	"gpuddt/internal/bench/cli"
	"gpuddt/internal/core"
	"gpuddt/internal/cuda"
	"gpuddt/internal/datatype"
	"gpuddt/internal/gpu"
	"gpuddt/internal/pcie"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// Micro is one testing.Benchmark result.
type Micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Sweep compares the reduced figure sweep serial vs parallel.
type Sweep struct {
	Figures     []string `json:"figures"`
	Parallelism int      `json:"parallelism"`
	SerialMs    float64  `json:"serial_ms"`
	ParallelMs  float64  `json:"parallel_ms"`
	Speedup     float64  `json:"speedup"`
}

// Report is the BENCH_host.json schema.
type Report struct {
	GeneratedBy string  `json:"generated_by"`
	GoVersion   string  `json:"go_version"`
	GoMaxProcs  int     `json:"go_maxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Micro       []Micro `json:"micro"`
	Sweep       Sweep   `json:"sweep"`
}

func micro(name string, res testing.BenchmarkResult) Micro {
	return Micro{
		Name:        name,
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Iterations:  res.N,
	}
}

// benchSeek measures Converter.SeekTo at random positions: O(log B) via
// the compiled plan's prefix sums (generic layouts) or O(1) canon
// arithmetic (strided layouts).
func benchSeek(dt *datatype.Datatype) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		conv := datatype.NewConverter(dt, 1)
		total := conv.Total()
		rng := rand.New(rand.NewSource(42))
		pos := make([]int64, 1024)
		for i := range pos {
			pos[i] = rng.Int63n(total + 1)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conv.SeekTo(pos[i%len(pos)])
		}
	})
}

// benchCacheHit measures a whole cached pack: lookup, window slicing of
// the resident unit list, kernel unit construction and simulation.
func benchCacheHit(n int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		se := sim.NewEngine()
		node := pcie.NewNode(se, 0, 1, gpu.KeplerK40(), pcie.DefaultParams())
		ctx := cuda.NewCtx(node)
		e := core.New(ctx, 0, core.Options{})
		dt := shapes.LowerTriangular(n)
		data := ctx.Malloc(0, dt.TrueLB()+dt.TrueExtent())
		dst := ctx.Malloc(0, dt.Size())
		b.ReportAllocs()
		se.Spawn("drive", func(p *sim.Proc) {
			e.Pack(p, data, dt, 1, dst) // warm the cache
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Pack(p, data, dt, 1, dst)
			}
			b.StopTimer()
		})
		se.Run()
	})
}

// sweepOnce times the reduced figure set at the given parallelism.
func sweepOnce(rs []bench.Runner, cfg bench.SweepConfig, par int) time.Duration {
	bench.SetParallelism(par)
	defer bench.SetParallelism(1)
	t0 := time.Now()
	bench.RunAll(rs, cfg)
	return time.Since(t0)
}

// Run executes the command and returns the process exit code.
func Run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("benchhost", flag.ContinueOnError)
	fs.SetOutput(errOut)
	outPath := fs.String("out", "", "write the JSON report to this file (default: stdout)")
	par := fs.Int("parallel", 4, "parallelism for the sweep comparison")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *par < 1 {
		fmt.Fprintf(errOut, "benchhost: -parallel must be >= 1\n")
		return 2
	}

	rep := Report{
		GeneratedBy: "cmd/benchhost",
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	rep.Micro = append(rep.Micro,
		micro("converter_seek/generic_triangular_2048", benchSeek(shapes.LowerTriangular(2048))),
		micro("converter_seek/canon_transpose_1024", benchSeek(shapes.Transpose(1024))),
		micro("devcache_hit/triangular_1024", benchCacheHit(1024)),
	)

	ids := map[string]bool{"fig6": true, "fig9": true, "fig10b": true, "fig12": true}
	var rs []bench.Runner
	var names []string
	for _, r := range bench.Runners() {
		if ids[r.ID] {
			rs = append(rs, r)
			names = append(names, r.ID)
		}
	}
	cfg := bench.QuickSweep()
	serial := sweepOnce(rs, cfg, 1)
	parallel := sweepOnce(rs, cfg, *par)
	rep.Sweep = Sweep{
		Figures:     names,
		Parallelism: *par,
		SerialMs:    float64(serial.Microseconds()) / 1e3,
		ParallelMs:  float64(parallel.Microseconds()) / 1e3,
		Speedup:     float64(serial) / float64(parallel),
	}

	return cli.WriteJSON(rep, *outPath, "host benchmark report", "benchhost", out, errOut)
}

func main() {
	os.Exit(Run(os.Args[1:], os.Stdout, os.Stderr))
}
