package main

import (
	"bytes"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := Run([]string{"-parallel", "0"}, &out, &errOut); code != 2 {
		t.Errorf("bad parallelism: exit %d, want 2", code)
	}
	if code := Run([]string{"-nope"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}
