package ib

import (
	"fmt"
	"sort"

	"gpuddt/internal/sim"
)

// SHARP-style in-network reduction: the fat-tree switches combine
// member contributions on their way up the tree (leaf ALUs fold the
// contributions of their own ports, one partial per leaf crosses an
// uplink, the spine folds the partials) and multicast the result back
// down every member's downlink. Only the switch-ALU timing is modeled
// per tier; the byte math itself runs once, in member-index order, so
// the result is deterministic regardless of arrival order — exactly
// how SHARP's fixed reduction trees behave, and the property the
// digest gates rely on.
//
// Fault injection deliberately does not reach the switch ALUs: SHARP
// offloads are flow-controlled in hardware, and the members' own
// tx/rx/uplink traversals (which do share links with faulted traffic)
// already carry the congestion. The op is keyed by a collective tag, so
// independent reductions may be in flight concurrently.

// sharpOp tracks one in-flight in-network reduction.
type sharpOp struct {
	members  []*HCA
	contribs [][]byte
	futs     []*sim.Future
	got      int
}

// SwitchReduce contributes member idx's bytes to the in-network
// reduction identified by opID and blocks until the reduced vector
// returns down the tree. Every member (one call per HCA in members,
// each from its own process, all with identical members/opID/length)
// must call it. combine folds `in` into `acc` element-wise; it is
// invoked in member-index order on the raw packed bytes, so the result
// is independent of arrival order. The returned slice is shared by all
// members and must be treated as read-only.
func (f *Fabric) SwitchReduce(p *sim.Proc, opID int, members []*HCA, idx int, contrib []byte, combine func(acc, in []byte)) []byte {
	if !f.params.Topo.Hierarchical() {
		panic("ib: SwitchReduce requires a hierarchical fabric")
	}
	n := int64(len(contrib))
	h := members[idx]

	// Inject the contribution up this member's own port.
	sp := p.BeginBytes("sharp.contrib", n)
	p.Sleep(f.params.PerMsgOverhead)
	h.tx.Transfer(p, n)
	sp.End()
	p.Count("ib.sharp.contrib", 1)

	st := f.sharpOps[opID]
	if st == nil {
		st = &sharpOp{
			members:  members,
			contribs: make([][]byte, len(members)),
			futs:     make([]*sim.Future, len(members)),
		}
		for i := range st.futs {
			st.futs[i] = f.eng.NewFuture()
		}
		f.sharpOps[opID] = st
	}
	st.contribs[idx] = append([]byte(nil), contrib...)
	st.got++
	if st.got == len(members) {
		// Events run in nondecreasing virtual time, so the last
		// contributor holds the op's max arrival time: it drives the
		// switch tiers on behalf of the tree.
		delete(f.sharpOps, opID)
		f.finishSwitchReduce(p, opID, n, combine, st)
	}
	return st.futs[idx].Await(p).([]byte)
}

// finishSwitchReduce models the switch tiers once all contributions are
// in: leaf ALU fold, partials up the shared uplinks, spine ALU fold,
// and the result multicast down each member's leaf downlink and port.
func (f *Fabric) finishSwitchReduce(p *sim.Proc, opID int, n int64, combine func(acc, in []byte), st *sharpOp) {
	t := f.params.Topo

	// Group members by leaf; each leaf's ALU folds its ports' streams at
	// line rate (per-port ALU lanes, as on SHARP-capable switches), so a
	// leaf stage costs one vector's worth of ALU time plus the fixed
	// stage latency regardless of fan-in.
	perLeaf := make(map[int][]int)
	for i, h := range st.members {
		perLeaf[h.leaf] = append(perLeaf[h.leaf], i)
	}
	leaves := make([]int, 0, len(perLeaf))
	for li := range perLeaf {
		leaves = append(leaves, li)
	}
	sort.Ints(leaves)

	sp := p.BeginBytes("sharp.leaf", n*int64(st.got))
	p.Sleep(t.ReduceLatency + sim.TimeForBytes(n, t.ReduceGBps))
	sp.End()

	spine := opID % t.Spines
	if spine < 0 {
		spine += t.Spines
	}
	if len(leaves) > 1 {
		// One partial per leaf crosses its shared uplink to the spine;
		// these contend with whatever else the uplinks carry.
		futs := make([]*sim.Future, len(leaves))
		for i, li := range leaves {
			li := li
			fut := f.eng.NewFuture()
			futs[i] = fut
			f.eng.Spawn(fmt.Sprintf("sharp.up.leaf%d", li), func(pp *sim.Proc) {
				f.leaves[li].up[spine].Transfer(pp, n)
				fut.Complete(nil)
			})
		}
		for _, fut := range futs {
			fut.Await(p)
		}
		sp := p.BeginBytes("sharp.spine", n*int64(len(leaves)))
		p.Sleep(t.ReduceLatency + sim.TimeForBytes(n, t.ReduceGBps))
		sp.End()
	}

	// The byte math: deterministic member-index order.
	acc := append([]byte(nil), st.contribs[0]...)
	for i := 1; i < len(st.contribs); i++ {
		combine(acc, st.contribs[i])
	}
	p.Count("ib.sharp.reduce", 1)

	// Multicast the result down the tree: one copy crosses each leaf's
	// shared downlink, then fans out over the members' own rx ports in
	// parallel — multicast replication happens at the switch, so the
	// downlink is charged once however many members hang off the leaf.
	for _, li := range leaves {
		li := li
		idxs := perLeaf[li]
		f.eng.Spawn(fmt.Sprintf("sharp.down.leaf%d", li), func(pp *sim.Proc) {
			if len(leaves) > 1 {
				f.leaves[li].down[spine].Transfer(pp, n)
			}
			for _, i := range idxs {
				i := i
				h := st.members[i]
				f.eng.Spawn(fmt.Sprintf("sharp.down.ib%d", h.node.ID()), func(pr *sim.Proc) {
					h.rx.Transfer(pr, n)
					st.futs[i].Complete(acc)
				})
			}
		})
	}
}
