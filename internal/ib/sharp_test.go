package ib

import (
	"bytes"
	"fmt"
	"testing"

	"gpuddt/internal/gpu"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

// fatTreeHCAs builds n HCAs on a two-tier tree.
func fatTreeHCAs(n, leafRadix, spines int) (*sim.Engine, *Fabric, []*HCA) {
	e := sim.NewEngine()
	p := DefaultParams()
	p.Topo = FatTree(leafRadix, spines)
	f := NewFabric(e, p)
	hcas := make([]*HCA, n)
	for i := range hcas {
		hcas[i] = f.Attach(pcie.NewNode(e, i, 1, gpu.KeplerK40(), pcie.DefaultParams()))
	}
	return e, f, hcas
}

// sumBytes is a toy combine: per-byte wrap-around addition — enough to
// prove combine ordering, since it is commutative and associative.
func sumBytes(acc, in []byte) {
	for i := range acc {
		acc[i] += in[i]
	}
}

// TestSwitchReduceDeterministicResult staggers member arrival times and
// still requires the exact member-index-order combine result on every
// member.
func TestSwitchReduceDeterministicResult(t *testing.T) {
	const n = 8
	e, f, hcas := fatTreeHCAs(n, 4, 2)
	contrib := func(i int) []byte {
		b := make([]byte, 64)
		for j := range b {
			b[j] = byte(i*31 + j)
		}
		return b
	}
	want := contrib(0)
	for i := 1; i < n; i++ {
		sumBytes(want, contrib(i))
	}
	got := make([][]byte, n)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("member%d", i), func(p *sim.Proc) {
			// Reverse-staggered start: member 0 arrives last.
			p.Sleep(sim.Time(n-i) * 5 * sim.Microsecond)
			got[i] = f.SwitchReduce(p, 7, hcas, i, contrib(i), sumBytes)
		})
	}
	e.Run()
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[i], want) {
			t.Fatalf("member %d: switch reduce result differs from member-order oracle", i)
		}
	}
}

// TestSwitchReduceSingleLeaf skips the spine tier when all members hang
// off one leaf.
func TestSwitchReduceSingleLeaf(t *testing.T) {
	const n = 4
	e, f, hcas := fatTreeHCAs(n, 4, 2)
	rec := sim.NewRecorder(e)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("member%d", i), func(p *sim.Proc) {
			f.SwitchReduce(p, 3, hcas, i, []byte{byte(i)}, sumBytes)
		})
	}
	e.Run()
	seen := map[string]bool{}
	for _, tk := range rec.Tracks() {
		for _, sp := range tk.Spans {
			seen[sp.Name] = true
		}
	}
	if !seen["sharp.leaf"] {
		t.Fatal("no leaf ALU span recorded")
	}
	if seen["sharp.spine"] {
		t.Fatal("single-leaf reduction should not touch the spine tier")
	}
}

// TestSwitchReduceFlatFabricPanics: no switches, no switch reduction.
func TestSwitchReduceFlatFabricPanics(t *testing.T) {
	e := sim.NewEngine()
	f := NewFabric(e, DefaultParams())
	h := f.Attach(pcie.NewNode(e, 0, 1, gpu.KeplerK40(), pcie.DefaultParams()))
	e.Spawn("member", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("SwitchReduce on a flat fabric did not panic")
			}
		}()
		f.SwitchReduce(p, 0, []*HCA{h}, 0, []byte{1}, sumBytes)
	})
	e.Run()
}

// TestReduceParamsNormalized: the ALU defaults follow the uplink
// calibration only on hierarchical fabrics.
func TestReduceParamsNormalized(t *testing.T) {
	e := sim.NewEngine()
	p := DefaultParams()
	p.Topo = FatTree(4, 2)
	f := NewFabric(e, p)
	got := f.Params().Topo
	if got.ReduceGBps != got.UplinkGBps {
		t.Fatalf("ReduceGBps = %v, want uplink rate %v", got.ReduceGBps, got.UplinkGBps)
	}
	if got.ReduceLatency != got.HopLatency {
		t.Fatalf("ReduceLatency = %v, want hop latency %v", got.ReduceLatency, got.HopLatency)
	}
	flat := NewFabric(sim.NewEngine(), DefaultParams()).Params().Topo
	if flat.ReduceGBps != 0 || flat.ReduceLatency != 0 {
		t.Fatal("flat fabric should not normalize switch-ALU params")
	}
}
