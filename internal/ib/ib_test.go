package ib

import (
	"testing"

	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

func twoNodes(t *testing.T) (*sim.Engine, *HCA, *HCA) {
	t.Helper()
	e := sim.NewEngine()
	f := NewFabric(e, DefaultParams())
	n0 := pcie.NewNode(e, 0, 1, gpu.KeplerK40(), pcie.DefaultParams())
	n1 := pcie.NewNode(e, 1, 1, gpu.KeplerK40(), pcie.DefaultParams())
	return e, f.Attach(n0), f.Attach(n1)
}

func TestSendDeliversInOrder(t *testing.T) {
	e, a, b := twoNodes(t)
	var got []int
	e.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			a.Send(p, b, 64, i)
		}
	})
	e.Spawn("receiver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, b.Inbox().Get(p).(int))
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestWriteMovesDataAtWireRate(t *testing.T) {
	e, a, b := twoNodes(t)
	src := a.Node().Host().Alloc(60<<20, 256)
	dst := b.Node().Host().Alloc(60<<20, 256)
	mem.FillPattern(src, 11)
	var dur sim.Time
	e.Spawn("sender", func(p *sim.Proc) {
		t0 := p.Now()
		a.Write(p, b, dst, src)
		dur = p.Now() - t0
	})
	e.Run()
	if !mem.Equal(src, dst) {
		t.Fatal("RDMA write did not move data")
	}
	wire := sim.TimeForBytes(60<<20, DefaultParams().WireGBps) // bottleneck hop (cut-through)
	if dur < wire || dur > wire+10*sim.Microsecond {
		t.Fatalf("dur = %v, wire = %v", dur, wire)
	}
}

func TestReadCostsExtraRoundTrip(t *testing.T) {
	e, a, b := twoNodes(t)
	remote := b.Node().Host().Alloc(1<<20, 256)
	local := a.Node().Host().Alloc(1<<20, 256)
	mem.FillPattern(remote, 4)
	var wDur, rDur sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		t0 := p.Now()
		a.Write(p, b, remote, local)
		wDur = p.Now() - t0
		t0 = p.Now()
		a.Read(p, b, local, remote)
		rDur = p.Now() - t0
	})
	e.Run()
	if !mem.Equal(remote, local) {
		t.Fatal("read corrupt")
	}
	if rDur <= wDur {
		t.Fatalf("read %v not slower than write %v", rDur, wDur)
	}
}

func TestGPUDirectThrottled(t *testing.T) {
	e, a, b := twoNodes(t)
	devSrc := a.Node().GPU(0).Mem().Alloc(10<<20, 256)
	hostSrc := a.Node().Host().Alloc(10<<20, 256)
	dst := b.Node().Host().Alloc(10<<20, 256)
	var devDur, hostDur sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		t0 := p.Now()
		a.Write(p, b, dst, hostSrc)
		hostDur = p.Now() - t0
		t0 = p.Now()
		a.Write(p, b, dst, devSrc)
		devDur = p.Now() - t0
	})
	e.Run()
	if devDur < hostDur*4 {
		t.Fatalf("GPUDirect large-message path not throttled: dev %v host %v", devDur, hostDur)
	}
}

func TestRegistrationCached(t *testing.T) {
	e, a, _ := twoNodes(t)
	buf := a.Node().Host().Alloc(4096, 256)
	var first, second sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		t0 := p.Now()
		a.Register(p, buf)
		first = p.Now() - t0
		t0 = p.Now()
		a.Register(p, buf)
		second = p.Now() - t0
	})
	e.Run()
	if first != DefaultParams().RegCost || second != 0 {
		t.Fatalf("reg costs: first %v second %v", first, second)
	}
}

func TestConcurrentSendersShareReceiverRx(t *testing.T) {
	e := sim.NewEngine()
	f := NewFabric(e, DefaultParams())
	nodes := make([]*HCA, 3)
	for i := range nodes {
		nodes[i] = f.Attach(pcie.NewNode(e, i, 0, gpu.KeplerK40(), pcie.DefaultParams()))
	}
	dstA := nodes[2].Node().Host().Alloc(60<<20, 256)
	dstB := nodes[2].Node().Host().Alloc(60<<20, 256)
	var ends [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		src := nodes[i].Node().Host().Alloc(60<<20, 256)
		dst := dstA
		if i == 1 {
			dst = dstB
		}
		e.Spawn("s", func(p *sim.Proc) {
			nodes[i].Write(p, nodes[2], dst, src)
			ends[i] = p.Now()
		})
	}
	e.Run()
	one := sim.TimeForBytes(60<<20, DefaultParams().WireGBps)
	later := ends[0]
	if ends[1] > later {
		later = ends[1]
	}
	if later < 2*one-sim.Microsecond {
		t.Fatalf("receiver rx not shared: last end %v, one-transfer time %v", later, one)
	}
}

// fatTree builds a hierarchical fabric of n single-GPU nodes.
func fatTree(t *testing.T, n int, topo Topology) (*sim.Engine, *Fabric, []*HCA) {
	t.Helper()
	e := sim.NewEngine()
	pa := DefaultParams()
	pa.Topo = topo
	f := NewFabric(e, pa)
	var hcas []*HCA
	for i := 0; i < n; i++ {
		node := pcie.NewNode(e, i, 1, gpu.KeplerK40(), pcie.DefaultParams())
		hcas = append(hcas, f.Attach(node))
	}
	return e, f, hcas
}

func TestFatTreeLeafAssignment(t *testing.T) {
	_, f, hcas := fatTree(t, 8, FatTree(4, 2))
	if f.Leaves() != 2 {
		t.Fatalf("8 nodes at radix 4 built %d leaves, want 2", f.Leaves())
	}
	for i, h := range hcas {
		if want := i / 4; h.Leaf() != want {
			t.Fatalf("hca %d on leaf %d, want %d", i, h.Leaf(), want)
		}
	}
	if got := f.Params().Topo.Oversubscription(); got != 2 {
		t.Fatalf("oversubscription = %v, want 2", got)
	}
}

// TestFatTreeCrossLeafLatency: a cross-leaf send arrives two hop
// latencies later than a same-leaf send (leaf→spine plus spine→leaf).
func TestFatTreeCrossLeafLatency(t *testing.T) {
	e, _, hcas := fatTree(t, 8, FatTree(4, 2))
	var same, cross sim.Time
	e.Spawn("sender", func(p *sim.Proc) {
		hcas[0].Send(p, hcas[1], 64, "near")
		hcas[0].Send(p, hcas[7], 64, "far")
	})
	e.Spawn("near", func(p *sim.Proc) {
		hcas[1].Inbox().Get(p)
		same = p.Now()
	})
	e.Spawn("far", func(p *sim.Proc) {
		hcas[7].Inbox().Get(p)
		cross = p.Now()
	})
	e.Run()
	pa := DefaultParams()
	extra := cross - same
	// The cross-leaf message was posted one send later, so subtract the
	// second posting overhead and serialization before comparing hops.
	overlap := pa.PerMsgOverhead + sim.TimeForBytes(64, pa.WireGBps)
	if extra-overlap != pa.Latency { // 2 extra hops at Latency/2 each
		t.Fatalf("cross-leaf extra latency = %v, want %v", extra-overlap, pa.Latency)
	}
}

// TestFatTreeUplinkCongestion: two simultaneous cross-leaf RDMA writes
// hashed onto the same spine serialize on the shared uplink, while the
// same pair of flows on a fully-provisioned tree using distinct spines
// (or within a leaf) run concurrently.
func TestFatTreeUplinkCongestion(t *testing.T) {
	const n = 40 << 20
	elapsed := func(srcA, dstA, srcB, dstB int, topo Topology) sim.Time {
		e, _, hcas := fatTree(t, 8, topo)
		bufs := make(map[int]mem.Buffer)
		for _, i := range []int{srcA, dstA, srcB, dstB} {
			bufs[i] = hcas[i].Node().Host().Alloc(n, 256)
		}
		e.Spawn("a", func(p *sim.Proc) { hcas[srcA].Write(p, hcas[dstA], bufs[dstA], bufs[srcA]) })
		e.Spawn("b", func(p *sim.Proc) { hcas[srcB].Write(p, hcas[dstB], bufs[dstB], bufs[srcB]) })
		e.Run()
		return e.Now()
	}
	topo := FatTree(4, 2)
	// 0→4 hashes to spine (0+4)%2 = 0; 2→6 to (2+6)%2 = 0: shared uplink.
	shared := elapsed(0, 4, 2, 6, topo)
	// 0→4 spine 0; 1→6 spine 1: disjoint spines, also disjoint tx/rx.
	disjoint := elapsed(0, 4, 1, 6, topo)
	if shared < 2*disjoint*9/10 {
		t.Fatalf("shared-spine flows finished in %v, disjoint in %v; congestion not modeled", shared, disjoint)
	}
	if within := elapsed(0, 1, 2, 3, topo); within >= disjoint {
		t.Fatalf("same-leaf flows (%v) should beat cross-leaf (%v)", within, disjoint)
	}
}

// TestFlatFabricCreatesNoSwitchLinks pins the byte-identity guarantee:
// a flat fabric must not instantiate any leaf/spine links, so link
// creation order (and with it every golden trace) is unchanged.
func TestFlatFabricCreatesNoSwitchLinks(t *testing.T) {
	_, f, hcas := fatTree(t, 4, Topology{})
	if f.Leaves() != 0 {
		t.Fatalf("flat fabric built %d leaf switches", f.Leaves())
	}
	for _, h := range hcas {
		if pa := h.pathTo(hcas[0]); len(pa.Links) != 2 {
			t.Fatalf("flat path has %d hops, want 2", len(pa.Links))
		}
	}
}
