package ib

import (
	"testing"

	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

func twoNodes(t *testing.T) (*sim.Engine, *HCA, *HCA) {
	t.Helper()
	e := sim.NewEngine()
	f := NewFabric(e, DefaultParams())
	n0 := pcie.NewNode(e, 0, 1, gpu.KeplerK40(), pcie.DefaultParams())
	n1 := pcie.NewNode(e, 1, 1, gpu.KeplerK40(), pcie.DefaultParams())
	return e, f.Attach(n0), f.Attach(n1)
}

func TestSendDeliversInOrder(t *testing.T) {
	e, a, b := twoNodes(t)
	var got []int
	e.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			a.Send(p, b, 64, i)
		}
	})
	e.Spawn("receiver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, b.Inbox().Get(p).(int))
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestWriteMovesDataAtWireRate(t *testing.T) {
	e, a, b := twoNodes(t)
	src := a.Node().Host().Alloc(60<<20, 256)
	dst := b.Node().Host().Alloc(60<<20, 256)
	mem.FillPattern(src, 11)
	var dur sim.Time
	e.Spawn("sender", func(p *sim.Proc) {
		t0 := p.Now()
		a.Write(p, b, dst, src)
		dur = p.Now() - t0
	})
	e.Run()
	if !mem.Equal(src, dst) {
		t.Fatal("RDMA write did not move data")
	}
	wire := sim.TimeForBytes(60<<20, DefaultParams().WireGBps) // bottleneck hop (cut-through)
	if dur < wire || dur > wire+10*sim.Microsecond {
		t.Fatalf("dur = %v, wire = %v", dur, wire)
	}
}

func TestReadCostsExtraRoundTrip(t *testing.T) {
	e, a, b := twoNodes(t)
	remote := b.Node().Host().Alloc(1<<20, 256)
	local := a.Node().Host().Alloc(1<<20, 256)
	mem.FillPattern(remote, 4)
	var wDur, rDur sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		t0 := p.Now()
		a.Write(p, b, remote, local)
		wDur = p.Now() - t0
		t0 = p.Now()
		a.Read(p, b, local, remote)
		rDur = p.Now() - t0
	})
	e.Run()
	if !mem.Equal(remote, local) {
		t.Fatal("read corrupt")
	}
	if rDur <= wDur {
		t.Fatalf("read %v not slower than write %v", rDur, wDur)
	}
}

func TestGPUDirectThrottled(t *testing.T) {
	e, a, b := twoNodes(t)
	devSrc := a.Node().GPU(0).Mem().Alloc(10<<20, 256)
	hostSrc := a.Node().Host().Alloc(10<<20, 256)
	dst := b.Node().Host().Alloc(10<<20, 256)
	var devDur, hostDur sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		t0 := p.Now()
		a.Write(p, b, dst, hostSrc)
		hostDur = p.Now() - t0
		t0 = p.Now()
		a.Write(p, b, dst, devSrc)
		devDur = p.Now() - t0
	})
	e.Run()
	if devDur < hostDur*4 {
		t.Fatalf("GPUDirect large-message path not throttled: dev %v host %v", devDur, hostDur)
	}
}

func TestRegistrationCached(t *testing.T) {
	e, a, _ := twoNodes(t)
	buf := a.Node().Host().Alloc(4096, 256)
	var first, second sim.Time
	e.Spawn("x", func(p *sim.Proc) {
		t0 := p.Now()
		a.Register(p, buf)
		first = p.Now() - t0
		t0 = p.Now()
		a.Register(p, buf)
		second = p.Now() - t0
	})
	e.Run()
	if first != DefaultParams().RegCost || second != 0 {
		t.Fatalf("reg costs: first %v second %v", first, second)
	}
}

func TestConcurrentSendersShareReceiverRx(t *testing.T) {
	e := sim.NewEngine()
	f := NewFabric(e, DefaultParams())
	nodes := make([]*HCA, 3)
	for i := range nodes {
		nodes[i] = f.Attach(pcie.NewNode(e, i, 0, gpu.KeplerK40(), pcie.DefaultParams()))
	}
	dstA := nodes[2].Node().Host().Alloc(60<<20, 256)
	dstB := nodes[2].Node().Host().Alloc(60<<20, 256)
	var ends [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		src := nodes[i].Node().Host().Alloc(60<<20, 256)
		dst := dstA
		if i == 1 {
			dst = dstB
		}
		e.Spawn("s", func(p *sim.Proc) {
			nodes[i].Write(p, nodes[2], dst, src)
			ends[i] = p.Now()
		})
	}
	e.Run()
	one := sim.TimeForBytes(60<<20, DefaultParams().WireGBps)
	later := ends[0]
	if ends[1] > later {
		later = ends[1]
	}
	if later < 2*one-sim.Microsecond {
		t.Fatalf("receiver rx not shared: last end %v, one-transfer time %v", later, one)
	}
}
