// Package ib models an InfiniBand fabric connecting cluster nodes: HCAs
// with per-direction links, ordered message delivery, RDMA read/write
// against registered memory, a registration cache, and an optional
// GPUDirect-RDMA path whose large-message throughput is capped as on real
// Kepler-era hardware (which is why the paper pipelines large transfers
// through host memory, §5.2).
package ib

import (
	"fmt"

	"gpuddt/internal/fault"
	"gpuddt/internal/mem"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

// Params calibrates the fabric (FDR InfiniBand defaults).
type Params struct {
	// WireGBps is the per-direction bandwidth of an HCA port (FDR 4x:
	// 56 Gb/s signalling, ~6 GB/s effective).
	WireGBps float64

	// Latency is the end-to-end propagation latency between two HCAs.
	Latency sim.Time

	// PerMsgOverhead is the send-side posting cost per message.
	PerMsgOverhead sim.Time

	// RegCost is the one-time cost of registering a memory region with
	// the HCA; registrations are cached, as in the paper's one-time
	// RDMA connection establishment.
	RegCost sim.Time

	// GPUDirectReadGBps caps RDMA reads that target GPU memory directly
	// (GPUDirect RDMA). On Kepler/IVB platforms this path is far below
	// the wire rate for large messages, which is why the openib BTL
	// stages large fragments through host memory.
	GPUDirectReadGBps float64
}

// DefaultParams returns the PSG-cluster-like FDR calibration.
func DefaultParams() Params {
	return Params{
		WireGBps:          6.0,
		Latency:           1300 * sim.Nanosecond,
		PerMsgOverhead:    600 * sim.Nanosecond,
		RegCost:           30 * sim.Microsecond,
		GPUDirectReadGBps: 0.9,
	}
}

// Fabric is a set of interconnected HCAs.
type Fabric struct {
	eng    *sim.Engine
	params Params
	hcas   []*HCA
	faults *fault.Injector
}

// SetFaults installs a fault injector on the fabric. A nil injector
// (the default) makes every operation infallible, as before.
func (f *Fabric) SetFaults(in *fault.Injector) { f.faults = in }

// NewFabric creates an empty fabric.
func NewFabric(eng *sim.Engine, p Params) *Fabric {
	return &Fabric{eng: eng, params: p}
}

// Params returns the fabric calibration.
func (f *Fabric) Params() Params { return f.params }

// HCA is one node's host channel adapter.
type HCA struct {
	f     *Fabric
	node  *pcie.Node
	tx    *sim.Link
	rx    *sim.Link
	inbox *sim.Mailbox
	regs  map[regKey]bool
}

type regKey struct {
	space *mem.Space
	addr  int64
}

// Attach creates an HCA on node and joins it to the fabric.
func (f *Fabric) Attach(node *pcie.Node) *HCA {
	h := &HCA{
		f:     f,
		node:  node,
		tx:    f.eng.NewLink(fmt.Sprintf("ib%d.tx", node.ID()), f.params.WireGBps, f.params.Latency/2),
		rx:    f.eng.NewLink(fmt.Sprintf("ib%d.rx", node.ID()), f.params.WireGBps, f.params.Latency/2),
		inbox: f.eng.NewMailbox(fmt.Sprintf("ib%d.inbox", node.ID())),
		regs:  make(map[regKey]bool),
	}
	f.hcas = append(f.hcas, h)
	return h
}

// Node returns the node this HCA is attached to.
func (h *HCA) Node() *pcie.Node { return h.node }

// Inbox returns the mailbox where received messages appear (in order).
func (h *HCA) Inbox() *sim.Mailbox { return h.inbox }

// Register pins a memory region with the HCA, charging the registration
// cost on first use of the region (cached afterwards). A fault plan can
// fail the registration outright, or force a cache hit to re-register
// (an eviction storm — a latency fault, never an error).
func (h *HCA) Register(p *sim.Proc, b mem.Buffer) error {
	key := regKey{space: b.Space(), addr: b.Addr()}
	if h.regs[key] {
		if !h.f.faults.Evict(p, fault.IBRegEvict) {
			p.Count("ib.reg.hit", 1)
			return nil
		}
		delete(h.regs, key) // storm: the pinned region was evicted
	}
	if err := h.f.faults.Check(p, fault.IBRegister, b.Len()); err != nil {
		return err
	}
	p.Count("ib.reg.miss", 1)
	sp := p.BeginBytes("ib.register", b.Len())
	p.Sleep(h.f.params.RegCost)
	sp.End()
	h.regs[key] = true
	return nil
}

// pathTo returns the store-and-forward path to a peer HCA.
func (h *HCA) pathTo(peer *HCA) *sim.Path {
	return &sim.Path{
		Name:  fmt.Sprintf("ib%d->ib%d", h.node.ID(), peer.node.ID()),
		Links: []*sim.Link{h.tx, peer.rx},
	}
}

// Send transmits a message of n wire bytes carrying payload to peer,
// blocking the caller until injection and delivering the payload to the
// peer's inbox after the wire time. Messages between a pair of HCAs are
// delivered in order (the links are FIFO). An injected send fault (a
// timeout or a link-flap outage) delivers nothing.
func (h *HCA) Send(p *sim.Proc, peer *HCA, n int64, payload interface{}) error {
	sp := p.BeginBytes("ib.send", n)
	defer sp.End()
	p.Sleep(h.f.params.PerMsgOverhead)
	if err := h.f.faults.Check(p, fault.IBSend, n); err != nil {
		return err
	}
	h.pathTo(peer).Occupy(p, n)
	peer.inbox.PutAfter(h.f.params.Latency, payload)
	return nil
}

// Write performs an RDMA write of src (local, registered) into dst
// (remote, registered), blocking until remote completion. Data lands in
// the remote buffer's real bytes. An injected fault either loses the
// operation before any byte moves, or — the dropped-completion flavor —
// lands the payload and loses only the completion, so the caller's
// retry must be idempotent (it is: the write targets the same bytes).
func (h *HCA) Write(p *sim.Proc, peer *HCA, dst, src mem.Buffer) error {
	if dst.Len() != src.Len() {
		panic("ib: RDMA write length mismatch")
	}
	sp := p.BeginBytes("rdma.write", src.Len())
	defer sp.End()
	p.Sleep(h.f.params.PerMsgOverhead)
	if err := h.f.faults.Check(p, fault.RDMAWrite, src.Len()); err != nil {
		if fault.WasDelivered(err) {
			h.pathTo(peer).Transfer(p, h.wireBytes(src))
			mem.Copy(dst, src)
		}
		return err
	}
	h.pathTo(peer).Transfer(p, h.wireBytes(src))
	mem.Copy(dst, src)
	return nil
}

// Read performs an RDMA read of src (remote, registered) into dst
// (local), blocking until the data has arrived. A read costs one extra
// round-trip latency for the request. Fault semantics mirror Write.
func (h *HCA) Read(p *sim.Proc, peer *HCA, dst, src mem.Buffer) error {
	if dst.Len() != src.Len() {
		panic("ib: RDMA read length mismatch")
	}
	sp := p.BeginBytes("rdma.read", src.Len())
	defer sp.End()
	p.Sleep(h.f.params.PerMsgOverhead + h.f.params.Latency)
	if err := h.f.faults.Check(p, fault.RDMARead, src.Len()); err != nil {
		if fault.WasDelivered(err) {
			peer.pathTo(h).Transfer(p, peer.wireBytes(src))
			mem.Copy(dst, src)
		}
		return err
	}
	peer.pathTo(h).Transfer(p, peer.wireBytes(src))
	mem.Copy(dst, src)
	return nil
}

// wireBytes inflates the transfer size when src or dst is GPU memory and
// the GPUDirect path throttles below the wire rate.
func (h *HCA) wireBytes(b mem.Buffer) int64 {
	if b.Kind() != mem.Device {
		return b.Len()
	}
	gd := h.f.params.GPUDirectReadGBps
	if gd <= 0 || gd >= h.f.params.WireGBps {
		return b.Len()
	}
	return int64(float64(b.Len()) * h.f.params.WireGBps / gd)
}
