// Package ib models an InfiniBand fabric connecting cluster nodes: HCAs
// with per-direction links, ordered message delivery, RDMA read/write
// against registered memory, a registration cache, and an optional
// GPUDirect-RDMA path whose large-message throughput is capped as on real
// Kepler-era hardware (which is why the paper pipelines large transfers
// through host memory, §5.2).
package ib

import (
	"fmt"

	"gpuddt/internal/fault"
	"gpuddt/internal/mem"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

// Params calibrates the fabric (FDR InfiniBand defaults).
type Params struct {
	// WireGBps is the per-direction bandwidth of an HCA port (FDR 4x:
	// 56 Gb/s signalling, ~6 GB/s effective).
	WireGBps float64

	// Latency is the end-to-end propagation latency between two HCAs.
	Latency sim.Time

	// PerMsgOverhead is the send-side posting cost per message.
	PerMsgOverhead sim.Time

	// RegCost is the one-time cost of registering a memory region with
	// the HCA; registrations are cached, as in the paper's one-time
	// RDMA connection establishment.
	RegCost sim.Time

	// GPUDirectReadGBps caps RDMA reads that target GPU memory directly
	// (GPUDirect RDMA). On Kepler/IVB platforms this path is far below
	// the wire rate for large messages, which is why the openib BTL
	// stages large fragments through host memory.
	GPUDirectReadGBps float64

	// Topo selects the switch hierarchy. The zero value is the single
	// flat crossbar the paper's two-node testbed used; setting LeafRadix
	// turns on the two-tier fat tree.
	Topo Topology
}

// Topology describes a two-tier fat tree: HCAs attach to leaf switches
// in attach order (LeafRadix per leaf), and every leaf reaches every
// other leaf through one of Spines spine switches. Each (leaf, spine)
// pair is a dedicated up and a dedicated down sim.Link shared by all
// flows routed over it, so uplink congestion under oversubscription is
// modeled by real queueing, not a formula. The zero value means a
// single flat switch (the pre-hierarchy model, byte-identical to it).
type Topology struct {
	// LeafRadix is the number of HCAs per leaf switch; 0 disables the
	// hierarchy entirely (flat single switch, no extra links created).
	LeafRadix int

	// Spines is the number of spine switches, i.e. uplinks per leaf.
	// 0 defaults to LeafRadix (a fully-provisioned 1:1 tree); LeafRadix/2
	// gives the classic 2:1 oversubscription.
	Spines int

	// UplinkGBps is the per-uplink bandwidth; 0 defaults to WireGBps.
	UplinkGBps float64

	// HopLatency is the extra propagation latency per spine-tier hop
	// (leaf→spine and spine→leaf each charge one); 0 defaults to
	// Latency/2.
	HopLatency sim.Time

	// ReduceGBps is the throughput of a switch's reduction ALU
	// (SHARP-style in-network Reduce/Allreduce, see Fabric.SwitchReduce);
	// 0 defaults to UplinkGBps — the ALU keeps up with one port, as on
	// real SHARP-capable switches.
	ReduceGBps float64

	// ReduceLatency is the fixed per-switch cost of starting an
	// in-network reduction stage; 0 defaults to HopLatency.
	ReduceLatency sim.Time
}

// Hierarchical reports whether the fabric has a spine tier.
func (t Topology) Hierarchical() bool { return t.LeafRadix > 0 }

// Oversubscription returns the leaf down:up port ratio (1 = fully
// provisioned, 2 = half the uplink capacity, ...). Assumes uplinks run
// at the wire rate, which the defaults guarantee.
func (t Topology) Oversubscription() float64 {
	if !t.Hierarchical() || t.Spines <= 0 {
		return 1
	}
	return float64(t.LeafRadix) / float64(t.Spines)
}

// FatTree returns the topology of a two-tier tree with the given leaf
// radix and spine count (bandwidth and latency at the wire defaults).
func FatTree(leafRadix, spines int) Topology {
	return Topology{LeafRadix: leafRadix, Spines: spines}
}

// DefaultParams returns the PSG-cluster-like FDR calibration.
func DefaultParams() Params {
	return Params{
		WireGBps:          6.0,
		Latency:           1300 * sim.Nanosecond,
		PerMsgOverhead:    600 * sim.Nanosecond,
		RegCost:           30 * sim.Microsecond,
		GPUDirectReadGBps: 0.9,
	}
}

// Fabric is a set of interconnected HCAs.
type Fabric struct {
	eng      *sim.Engine
	params   Params
	hcas     []*HCA
	leaves   []*leafSwitch
	faults   *fault.Injector
	sharpOps map[int]*sharpOp // in-flight in-network reductions by op id
}

// leafSwitch holds one leaf's shared uplink servers: up[s] carries
// leaf→spine s traffic, down[s] spine s→leaf. Flows between HCAs on the
// same leaf never touch them (the leaf crossbar is non-blocking).
type leafSwitch struct {
	up, down []*sim.Link
}

// SetFaults installs a fault injector on the fabric. A nil injector
// (the default) makes every operation infallible, as before.
func (f *Fabric) SetFaults(in *fault.Injector) { f.faults = in }

// NewFabric creates an empty fabric, normalizing the topology defaults
// (Spines = LeafRadix, uplinks at the wire rate, hops at Latency/2).
func NewFabric(eng *sim.Engine, p Params) *Fabric {
	if p.Topo.Hierarchical() {
		if p.Topo.Spines <= 0 {
			p.Topo.Spines = p.Topo.LeafRadix
		}
		if p.Topo.UplinkGBps <= 0 {
			p.Topo.UplinkGBps = p.WireGBps
		}
		if p.Topo.HopLatency <= 0 {
			p.Topo.HopLatency = p.Latency / 2
		}
		if p.Topo.ReduceGBps <= 0 {
			p.Topo.ReduceGBps = p.Topo.UplinkGBps
		}
		if p.Topo.ReduceLatency <= 0 {
			p.Topo.ReduceLatency = p.Topo.HopLatency
		}
	}
	return &Fabric{eng: eng, params: p, sharpOps: make(map[int]*sharpOp)}
}

// Params returns the fabric calibration.
func (f *Fabric) Params() Params { return f.params }

// Leaves returns the number of leaf switches instantiated so far
// (always 0 on a flat fabric).
func (f *Fabric) Leaves() int { return len(f.leaves) }

// ensureLeaf instantiates leaf switches up to and including index i,
// creating the per-spine up/down links. Only ever called on a
// hierarchical fabric, so the flat default creates zero extra links
// (keeping link creation order — and golden traces — untouched).
func (f *Fabric) ensureLeaf(i int) {
	t := f.params.Topo
	for len(f.leaves) <= i {
		li := len(f.leaves)
		ls := &leafSwitch{}
		for s := 0; s < t.Spines; s++ {
			ls.up = append(ls.up,
				f.eng.NewLink(fmt.Sprintf("leaf%d.up%d", li, s), t.UplinkGBps, t.HopLatency))
			ls.down = append(ls.down,
				f.eng.NewLink(fmt.Sprintf("leaf%d.down%d", li, s), t.UplinkGBps, t.HopLatency))
		}
		f.leaves = append(f.leaves, ls)
	}
}

// HCA is one node's host channel adapter.
type HCA struct {
	f     *Fabric
	node  *pcie.Node
	leaf  int // leaf switch index (attach order / LeafRadix); 0 when flat
	tx    *sim.Link
	rx    *sim.Link
	inbox *sim.Mailbox
	regs  map[regKey]bool
}

type regKey struct {
	space *mem.Space
	addr  int64
}

// Attach creates an HCA on node and joins it to the fabric, cabling it
// to the next free leaf port (attach order) on a hierarchical fabric.
func (f *Fabric) Attach(node *pcie.Node) *HCA {
	h := &HCA{
		f:     f,
		node:  node,
		tx:    f.eng.NewLink(fmt.Sprintf("ib%d.tx", node.ID()), f.params.WireGBps, f.params.Latency/2),
		rx:    f.eng.NewLink(fmt.Sprintf("ib%d.rx", node.ID()), f.params.WireGBps, f.params.Latency/2),
		inbox: f.eng.NewMailbox(fmt.Sprintf("ib%d.inbox", node.ID())),
		regs:  make(map[regKey]bool),
	}
	if f.params.Topo.Hierarchical() {
		h.leaf = len(f.hcas) / f.params.Topo.LeafRadix
		f.ensureLeaf(h.leaf)
	}
	f.hcas = append(f.hcas, h)
	return h
}

// Node returns the node this HCA is attached to.
func (h *HCA) Node() *pcie.Node { return h.node }

// Leaf returns the index of the leaf switch the HCA is cabled to.
func (h *HCA) Leaf() int { return h.leaf }

// Inbox returns the mailbox where received messages appear (in order).
func (h *HCA) Inbox() *sim.Mailbox { return h.inbox }

// Register pins a memory region with the HCA, charging the registration
// cost on first use of the region (cached afterwards). A fault plan can
// fail the registration outright, or force a cache hit to re-register
// (an eviction storm — a latency fault, never an error).
func (h *HCA) Register(p *sim.Proc, b mem.Buffer) error {
	key := regKey{space: b.Space(), addr: b.Addr()}
	if h.regs[key] {
		if !h.f.faults.Evict(p, fault.IBRegEvict) {
			p.Count("ib.reg.hit", 1)
			return nil
		}
		delete(h.regs, key) // storm: the pinned region was evicted
	}
	if err := h.f.faults.Check(p, fault.IBRegister, b.Len()); err != nil {
		return err
	}
	p.Count("ib.reg.miss", 1)
	sp := p.BeginBytes("ib.register", b.Len())
	p.Sleep(h.f.params.RegCost)
	sp.End()
	h.regs[key] = true
	return nil
}

// pathTo returns the cut-through path to a peer HCA. Same-leaf (and
// flat-fabric) traffic crosses only the two port links; cross-leaf
// traffic additionally holds the shared uplink to its spine and the
// peer leaf's downlink, so concurrent flows over an oversubscribed
// spine tier queue against each other.
func (h *HCA) pathTo(peer *HCA) *sim.Path {
	if h.leaf == peer.leaf {
		return &sim.Path{
			Name:  fmt.Sprintf("ib%d->ib%d", h.node.ID(), peer.node.ID()),
			Links: []*sim.Link{h.tx, peer.rx},
		}
	}
	s := h.spineFor(peer)
	return &sim.Path{
		Name:  fmt.Sprintf("ib%d->spine%d->ib%d", h.node.ID(), s, peer.node.ID()),
		Links: []*sim.Link{h.tx, h.f.leaves[h.leaf].up[s], h.f.leaves[peer.leaf].down[s], peer.rx},
	}
}

// spineFor picks the spine carrying h→peer traffic: static ECMP-style
// hashing on the endpoint pair, so a given flow is stable (FIFO order
// preserved) while distinct pairs spread across the spines.
func (h *HCA) spineFor(peer *HCA) int {
	return (h.node.ID() + peer.node.ID()) % h.f.params.Topo.Spines
}

// Send transmits a message of n wire bytes carrying payload to peer,
// blocking the caller until injection and delivering the payload to the
// peer's inbox after the wire time. Messages between a pair of HCAs are
// delivered in order (the links are FIFO). An injected send fault (a
// timeout or a link-flap outage) delivers nothing.
func (h *HCA) Send(p *sim.Proc, peer *HCA, n int64, payload interface{}) error {
	sp := p.BeginBytes("ib.send", n)
	defer sp.End()
	p.Sleep(h.f.params.PerMsgOverhead)
	if err := h.f.faults.Check(p, fault.IBSend, n); err != nil {
		return err
	}
	pa := h.pathTo(peer)
	pa.Occupy(p, n)
	peer.inbox.PutAfter(pa.Latency(), payload)
	return nil
}

// Write performs an RDMA write of src (local, registered) into dst
// (remote, registered), blocking until remote completion. Data lands in
// the remote buffer's real bytes. An injected fault either loses the
// operation before any byte moves, or — the dropped-completion flavor —
// lands the payload and loses only the completion, so the caller's
// retry must be idempotent (it is: the write targets the same bytes).
func (h *HCA) Write(p *sim.Proc, peer *HCA, dst, src mem.Buffer) error {
	if dst.Len() != src.Len() {
		panic("ib: RDMA write length mismatch")
	}
	sp := p.BeginBytes("rdma.write", src.Len())
	defer sp.End()
	p.Sleep(h.f.params.PerMsgOverhead)
	if err := h.f.faults.Check(p, fault.RDMAWrite, src.Len()); err != nil {
		if fault.WasDelivered(err) {
			h.pathTo(peer).Transfer(p, h.wireBytes(src))
			mem.Copy(dst, src)
		}
		return err
	}
	h.pathTo(peer).Transfer(p, h.wireBytes(src))
	mem.Copy(dst, src)
	return nil
}

// Read performs an RDMA read of src (remote, registered) into dst
// (local), blocking until the data has arrived. A read costs one extra
// round-trip latency for the request. Fault semantics mirror Write.
func (h *HCA) Read(p *sim.Proc, peer *HCA, dst, src mem.Buffer) error {
	if dst.Len() != src.Len() {
		panic("ib: RDMA read length mismatch")
	}
	sp := p.BeginBytes("rdma.read", src.Len())
	defer sp.End()
	// The read request travels to the target first; the request leg
	// crosses the same hops as the returning data.
	p.Sleep(h.f.params.PerMsgOverhead + h.pathTo(peer).Latency())
	if err := h.f.faults.Check(p, fault.RDMARead, src.Len()); err != nil {
		if fault.WasDelivered(err) {
			peer.pathTo(h).Transfer(p, peer.wireBytes(src))
			mem.Copy(dst, src)
		}
		return err
	}
	peer.pathTo(h).Transfer(p, peer.wireBytes(src))
	mem.Copy(dst, src)
	return nil
}

// wireBytes inflates the transfer size when src or dst is GPU memory and
// the GPUDirect path throttles below the wire rate.
func (h *HCA) wireBytes(b mem.Buffer) int64 {
	if b.Kind() != mem.Device {
		return b.Len()
	}
	gd := h.f.params.GPUDirectReadGBps
	if gd <= 0 || gd >= h.f.params.WireGBps {
		return b.Len()
	}
	return int64(float64(b.Len()) * h.f.params.WireGBps / gd)
}
