// Package baseline implements the comparison systems of the paper's
// evaluation: an MVAPICH2-GDR-style datatype strategy (§2.2) built on
// the vectorization algorithm of the paper's reference [15] — every
// datatype is converted into a set of vectors, each moved by its own
// cudaMemcpy2D through host memory, with no pipelining between the
// conversion, wire and unpack stages — and the three naive solutions of
// Fig. 1 (copy-with-gaps, per-block D2H memcpy, per-block D2D memcpy).
package baseline

import (
	"fmt"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/sim"
)

// VecSeg is one vector segment produced by the vectorization algorithm:
// Count equally spaced blocks of Len bytes starting at Off, Stride bytes
// apart. A single contiguous block is the degenerate Count == 1 case.
type VecSeg struct {
	Off    int64
	Len    int64
	Stride int64
	Count  int64
}

// Vectorize converts (dt, count) into vector segments by scanning the
// flattened blocks and greedily extending runs of equal length and
// uniform stride, exactly the conversion MVAPICH applies. Ragged
// layouts such as triangular matrices degenerate into one segment per
// block, which is what makes the approach collapse on indexed types.
func Vectorize(dt *datatype.Datatype, count int) []VecSeg {
	var segs []VecSeg
	var cur *VecSeg
	c := datatype.NewConverter(dt, count)
	c.Advance(c.Total(), func(memOff, packOff, n int64) {
		if cur != nil {
			// Exactly adjacent single blocks merge into one block.
			if cur.Count == 1 && memOff == cur.Off+cur.Len {
				cur.Len += n
				cur.Stride = cur.Len
				return
			}
			if n == cur.Len {
				stride := memOff - (cur.Off + (cur.Count-1)*cur.Stride)
				if cur.Count == 1 && stride > 0 {
					cur.Stride = stride
					cur.Count = 2
					return
				}
				if cur.Count > 1 && stride == cur.Stride {
					cur.Count++
					return
				}
			}
		}
		segs = append(segs, VecSeg{Off: memOff, Len: n, Stride: n, Count: 1})
		cur = &segs[len(segs)-1]
	})
	return segs
}

// PackedLen returns the packed bytes covered by the segment.
func (s VecSeg) PackedLen() int64 { return s.Len * s.Count }

// MVAPICHStrategy is the mpi.Strategy modeling MVAPICH2-GDR's
// non-contiguous GPU datatype path: sender-side cudaMemcpy2D per vector
// segment into host staging, a whole-message wire transfer, and
// receiver-side cudaMemcpy2D per segment out of host staging. The three
// stages run sequentially (the paper: "no pipelining or overlap between
// the different stages of the datatype conversion is provided").
type MVAPICHStrategy struct{}

// Name implements mpi.Strategy.
func (s *MVAPICHStrategy) Name() string { return "mvapich" }

// mvInfo is the RTS payload.
type mvInfo struct {
	op   *mpi.SendOp
	cmds *sim.Mailbox
}

// mvGo tells the sender where to put the staged bytes.
type mvGo struct {
	remote mem.Buffer   // receiver-side host staging
	done   *sim.Mailbox // receiver's completion wait queue
}

// StartSend implements mpi.Strategy.
func (s *MVAPICHStrategy) StartSend(op *mpi.SendOp) interface{} {
	info := &mvInfo{op: op, cmds: op.M.World().Engine().NewMailbox("mv.cmds")}
	op.M.World().Engine().Spawn(fmt.Sprintf("rank%d.mvsend", op.M.Rank()), func(p *sim.Proc) {
		cmd := info.cmds.Get(p).(mvGo)
		// Stage 1: convert to host staging, one cudaMemcpy2D per vector
		// segment (GPU data) or a CPU pack (host data).
		local := op.M.ScratchHost(op.Packed)
		s.stageOut(p, op, local.Slice(0, op.Packed))
		// Stage 2: whole-message wire transfer (no fragmentation).
		op.Ch.Put(p, cmd.remote.Slice(0, op.Packed), local.Slice(0, op.Packed))
		op.M.FreeScratchHost(local)
		op.Ch.AM(p, 64, func(*sim.Proc) { cmd.done.Put(struct{}{}) })
		op.Req.Complete()
	})
	return info
}

// stageOut moves packed data from the send buffer into host staging.
func (s *MVAPICHStrategy) stageOut(p *sim.Proc, op *mpi.SendOp, dst mem.Buffer) {
	m := op.M
	if op.Buf.Kind() != mem.Device {
		m.CPUPack(p, op.Buf, op.Dt, op.Count, dst)
		return
	}
	var packOff int64
	for _, seg := range Vectorize(op.Dt, op.Count) {
		src := op.Buf.Slice(seg.Off, (seg.Count-1)*seg.Stride+seg.Len)
		m.Ctx().Memcpy2D(p, dst.Slice(packOff, seg.PackedLen()), seg.Len, src, seg.Stride, seg.Len, seg.Count)
		packOff += seg.PackedLen()
	}
}

// stageIn scatters packed data from host staging into the receive buffer.
func (s *MVAPICHStrategy) stageIn(p *sim.Proc, op *mpi.RecvOp, src mem.Buffer) {
	m := op.M
	if op.Buf.Kind() != mem.Device {
		m.CPUUnpack(p, op.Buf, op.Dt, op.Count, src)
		return
	}
	var packOff int64
	for _, seg := range Vectorize(op.Dt, op.Count) {
		rem := src.Len() - packOff
		if rem <= 0 {
			break
		}
		n := seg.PackedLen()
		if n > rem {
			// A partial message ends mid-segment: scatter only the whole
			// blocks that arrived, then the trailing fraction of a block.
			whole := rem / seg.Len
			if whole > 0 {
				dst := op.Buf.Slice(seg.Off, (whole-1)*seg.Stride+seg.Len)
				m.Ctx().Memcpy2D(p, dst, seg.Stride, src.Slice(packOff, whole*seg.Len), seg.Len, seg.Len, whole)
			}
			if frac := rem - whole*seg.Len; frac > 0 {
				off := seg.Off + whole*seg.Stride
				m.Ctx().Memcpy2D(p, op.Buf.Slice(off, frac), frac, src.Slice(packOff+whole*seg.Len, frac), frac, frac, 1)
			}
			break
		}
		dst := op.Buf.Slice(seg.Off, (seg.Count-1)*seg.Stride+seg.Len)
		m.Ctx().Memcpy2D(p, dst, seg.Stride, src.Slice(packOff, n), seg.Len, seg.Len, seg.Count)
		packOff += n
	}
}

// RunRecv implements mpi.Strategy.
func (s *MVAPICHStrategy) RunRecv(p *sim.Proc, op *mpi.RecvOp, info interface{}) {
	mi := info.(*mvInfo)
	m := op.M
	staging := m.ScratchHost(op.Packed)
	done := m.World().Engine().NewMailbox("mv.done")
	cmd := mvGo{remote: staging, done: done}
	op.Ch.AM(p, 64, func(*sim.Proc) { mi.cmds.Put(cmd) })
	done.Get(p)
	// Stage 3: unpack from host staging, one cudaMemcpy2D per segment.
	s.stageIn(p, op, staging.Slice(0, op.Packed))
	m.FreeScratchHost(staging)
	op.Req.Complete()
}
