package baseline

import (
	"bytes"
	"reflect"
	"testing"

	"gpuddt/internal/cuda"
	"gpuddt/internal/datatype"
	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/pcie"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

func TestVectorizeVectorType(t *testing.T) {
	dt := shapes.SubMatrix(8, 4, 16) // 4 cols of 8 doubles, ld 16
	segs := Vectorize(dt, 1)
	want := []VecSeg{{Off: 0, Len: 64, Stride: 128, Count: 4}}
	if !reflect.DeepEqual(segs, want) {
		t.Fatalf("segs = %+v", segs)
	}
}

func TestVectorizeTriangularDegenerates(t *testing.T) {
	n := 16
	segs := Vectorize(shapes.LowerTriangular(n), 1)
	// Ragged columns: one segment per column (no two adjacent columns
	// share a length).
	if len(segs) != n {
		t.Fatalf("segments = %d, want %d", len(segs), n)
	}
	for i, s := range segs {
		if s.Count != 1 || s.Len != int64(n-i)*8 {
			t.Fatalf("seg %d = %+v", i, s)
		}
	}
}

func TestVectorizeContiguous(t *testing.T) {
	segs := Vectorize(datatype.Contiguous(100, datatype.Float64), 3)
	if len(segs) != 1 || segs[0].Count != 1 || segs[0].Len != 2400 {
		t.Fatalf("segs = %+v", segs)
	}
}

func TestVectorizeCoversAllBytes(t *testing.T) {
	for _, dt := range []*datatype.Datatype{
		shapes.SubMatrix(5, 7, 11),
		shapes.LowerTriangular(9),
		shapes.Transpose(6),
	} {
		var total int64
		for _, s := range Vectorize(dt, 2) {
			total += s.PackedLen()
		}
		if total != 2*dt.Size() {
			t.Fatalf("%s: vectorized %d bytes, want %d", dt.Name(), total, 2*dt.Size())
		}
	}
}

func solutionRig(t *testing.T) (*sim.Engine, *cuda.Ctx) {
	t.Helper()
	e := sim.NewEngine()
	node := pcie.NewNode(e, 0, 1, gpu.KeplerK40(), pcie.DefaultParams())
	return e, cuda.NewCtx(node)
}

func TestSolutionsProduceCorrectPacking(t *testing.T) {
	e, ctx := solutionRig(t)
	dt := shapes.LowerTriangular(32)
	span := layoutSpan(dt, 1)
	buf := ctx.Malloc(0, span)
	mem.FillPattern(buf, 17)
	c := datatype.NewConverter(dt, 1)
	want := make([]byte, c.Total())
	c.Pack(want, buf.Bytes())

	dstA := ctx.MallocHost(dt.Size())
	dstB := ctx.MallocHost(dt.Size())
	dstC := ctx.Malloc(0, dt.Size())
	scratch := ctx.MallocHost(span)
	var ta, tb, tc sim.Time
	e.Spawn("bench", func(p *sim.Proc) {
		t0 := p.Now()
		SolutionA(p, ctx, buf, dt, 1, dstA, scratch)
		ta = p.Now() - t0
		t0 = p.Now()
		SolutionB(p, ctx, buf, dt, 1, dstB)
		tb = p.Now() - t0
		t0 = p.Now()
		SolutionC(p, ctx, buf, dt, 1, dstC)
		tc = p.Now() - t0
	})
	e.Run()
	for i, d := range []mem.Buffer{dstA, dstB, dstC} {
		if !bytes.Equal(d.Bytes(), want) {
			t.Fatalf("solution %c packed wrong bytes", 'A'+i)
		}
	}
	// Per-block overhead dominates B and C for a 32-column triangle.
	if tb < ta || tc < ta/2 {
		t.Logf("ta=%v tb=%v tc=%v", ta, tb, tc)
	}
}

func TestMVAPICHStrategyCorrectAndSlower(t *testing.T) {
	n := 512
	dt := shapes.LowerTriangular(n)
	run := func(strategy mpi.Strategy) (img []byte, dur sim.Time) {
		w := mpi.NewWorld(mpi.Config{
			Ranks:    []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}},
			Strategy: strategy,
		})
		var rbuf mem.Buffer
		span := int64(n*n) * 8
		w.Run(func(m *mpi.Rank) {
			buf := m.Malloc(span)
			if m.Rank() == 0 {
				mem.FillPattern(buf, 123)
				m.Barrier()
				t0 := m.Now()
				m.Send(buf, dt, 1, 1, 0)
				dur = m.Now() - t0
			} else {
				rbuf = buf
				m.Barrier()
				m.Recv(buf, dt, 1, 0, 0)
			}
		})
		c := datatype.NewConverter(dt, 1)
		img = make([]byte, c.Total())
		c.Pack(img, rbuf.Bytes())
		return img, dur
	}
	oursImg, oursT := run(nil) // default pipelined strategy
	mvImg, mvT := run(&MVAPICHStrategy{})
	if !bytes.Equal(oursImg, mvImg) {
		t.Fatal("strategies delivered different data")
	}
	// The paper's headline: for indexed datatypes MVAPICH collapses
	// (per-column cudaMemcpy2D, no pipeline).
	if mvT < 4*oursT {
		t.Fatalf("MVAPICH (%v) should be >> slower than ours (%v) on triangular", mvT, oursT)
	}
	t.Logf("triangular %dx%d: ours %v, mvapich %v (%.1fx)", n, n, oursT, mvT, float64(mvT)/float64(oursT))
}

func TestMVAPICHVectorCloserButStillSlower(t *testing.T) {
	n := 1024
	dt := shapes.SubMatrix(n, n, n)
	run := func(strategy mpi.Strategy) sim.Time {
		w := mpi.NewWorld(mpi.Config{
			Ranks:    []mpi.Placement{{Node: 0, GPU: 0}, {Node: 1, GPU: 0}},
			Strategy: strategy,
		})
		var dur sim.Time
		w.Run(func(m *mpi.Rank) {
			buf := m.Malloc(int64(n*n) * 8)
			if m.Rank() == 0 {
				m.Barrier()
				t0 := m.Now()
				m.Send(buf, dt, 1, 1, 0)
				dur = m.Now() - t0
			} else {
				m.Barrier()
				m.Recv(buf, dt, 1, 0, 0)
			}
		})
		return dur
	}
	ours := run(nil)
	mv := run(&MVAPICHStrategy{})
	if mv <= ours {
		t.Fatalf("MVAPICH (%v) should be slower than ours (%v) on IB vector", mv, ours)
	}
	ratio := float64(mv) / float64(ours)
	if ratio > 4 {
		t.Fatalf("IB vector gap too extreme: %.1fx (paper: roughly 1.5-2.5x)", ratio)
	}
	t.Logf("IB vector %dx%d: ours %v, mvapich %v (%.2fx)", n, n, ours, mv, ratio)
}

// TestMVAPICHPartialReceive ends a message mid-way through the
// receiver's vector layout: stageIn must clamp its per-segment
// cudaMemcpy2D scatter to the bytes that actually arrived instead of
// overrunning the staging buffer.
func TestMVAPICHPartialReceive(t *testing.T) {
	const sentElems = 75_000 // 600 KB of a 1 MB receive layout
	sendDt := datatype.Contiguous(sentElems, datatype.Float64)
	recvDt := shapes.SubMatrix(512, 256, 512)
	w := mpi.NewWorld(mpi.Config{
		Ranks:    []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}},
		Strategy: &MVAPICHStrategy{},
	})
	var sent, got []byte
	w.Run(func(m *mpi.Rank) {
		if m.Rank() == 0 {
			b := m.Malloc(sendDt.Size())
			mem.FillPattern(b, 77)
			sent = append([]byte(nil), b.Bytes()...)
			m.Send(b, sendDt, 1, 1, 0)
		} else {
			span := int64(512*512) * 8
			b := m.Malloc(span)
			mem.Fill(b, 0)
			m.Recv(b, recvDt, 1, 0, 0)
			c := datatype.NewConverter(recvDt, 1)
			got = make([]byte, c.Total())
			c.Pack(got, b.Bytes())
		}
	})
	if !bytes.Equal(got[:len(sent)], sent) {
		t.Fatal("MVAPICH partial receive corrupted the prefix")
	}
	for i := len(sent); i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("packed byte %d beyond the message was written", i)
		}
	}
}
