package baseline

import (
	"gpuddt/internal/cuda"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// The three naive approaches of Fig. 1 for getting non-contiguous GPU
// data into a contiguous host buffer. Each moves real bytes and charges
// the corresponding virtual time, so they can be benchmarked against the
// GPU datatype engine (solution d).

// SolutionA copies the whole data region — gaps included — from device
// to host with a single cudaMemcpy, then packs on the CPU (Fig. 1a).
// It needs a host scratch region as large as the layout's true extent.
func SolutionA(p *sim.Proc, ctx *cuda.Ctx, buf mem.Buffer, dt *datatype.Datatype, count int, dst mem.Buffer, scratch mem.Buffer) {
	span := layoutSpan(dt, count)
	ctx.Memcpy(p, scratch.Slice(0, span), buf.Slice(0, span))
	c := datatype.NewConverter(dt, count)
	ctx.Node().HostBus().Transfer(p, 2*c.Total())
	c.Pack(dst.Bytes(), scratch.Bytes())
}

// SolutionB issues one device-to-host cudaMemcpy per contiguous block,
// packing directly into the host buffer (Fig. 1b). The per-call overhead
// and tiny transfers make it collapse for fine-grained layouts.
func SolutionB(p *sim.Proc, ctx *cuda.Ctx, buf mem.Buffer, dt *datatype.Datatype, count int, dst mem.Buffer) {
	c := datatype.NewConverter(dt, count)
	c.Advance(c.Total(), nil) // position bookkeeping only
	c.Rewind()
	c.Advance(c.Total(), func(memOff, packOff, n int64) {
		ctx.Memcpy(p, dst.Slice(packOff, n), buf.Slice(memOff, n))
	})
}

// SolutionC issues one device-to-device cudaMemcpy per contiguous block
// into a contiguous device buffer (Fig. 1c); it requires identical
// layouts on both peers and still pays per-call overhead.
func SolutionC(p *sim.Proc, ctx *cuda.Ctx, buf mem.Buffer, dt *datatype.Datatype, count int, dst mem.Buffer) {
	c := datatype.NewConverter(dt, count)
	c.Advance(c.Total(), func(memOff, packOff, n int64) {
		ctx.Memcpy(p, dst.Slice(packOff, n), buf.Slice(memOff, n))
	})
}

func layoutSpan(dt *datatype.Datatype, count int) int64 {
	if count == 0 {
		return 0
	}
	return int64(count-1)*dt.Extent() + dt.TrueLB() + dt.TrueExtent()
}
