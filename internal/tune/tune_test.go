package tune

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gpuddt/internal/cluster"
	"gpuddt/internal/datatype"
	"gpuddt/internal/shapes"
)

func TestSizeClass(t *testing.T) {
	cases := []struct {
		bytes int64
		want  string
	}{
		{0, "app"}, {-1, "app"},
		{1, "4K"}, {4 << 10, "4K"},
		{4<<10 + 1, "64K"}, {64 << 10, "64K"},
		{64<<10 + 1, "1M"}, {1 << 20, "1M"},
		{1<<20 + 1, "16M"}, {16 << 20, "16M"},
		{16<<20 + 1, "big"},
	}
	for _, c := range cases {
		if got := SizeClass(c.bytes); got != c.want {
			t.Errorf("SizeClass(%d) = %q, want %q", c.bytes, got, c.want)
		}
	}
}

func TestDTClass(t *testing.T) {
	if got := DTClass(datatype.Contiguous(64, datatype.Int64)); got != "contig" {
		t.Errorf("contiguous class = %q", got)
	}
	if got := DTClass(shapes.SubMatrix(8, 64, 96)); got != "vector" {
		t.Errorf("submatrix class = %q", got)
	}
	if got := DTClass(shapes.LowerTriangular(16)); got != "irregular" {
		t.Errorf("lower-triangular class = %q", got)
	}
}

func TestEntryTuningValidation(t *testing.T) {
	if _, err := (Entry{Coll: "banana"}).Tuning(); err == nil {
		t.Fatal("unknown coll mode accepted")
	}
	tun, err := (Entry{Eager: 0, Frag: 8 << 10, Coll: "flat"}).Tuning()
	if err != nil {
		t.Fatal(err)
	}
	if tun.Eager == nil || *tun.Eager != 0 {
		t.Errorf("Eager sentinel not preserved: %v", tun.Eager)
	}
	if tun.FragBytes != 8<<10 {
		t.Errorf("FragBytes = %d", tun.FragBytes)
	}
}

// quickConfig is the small tuner run the determinism and round-trip
// tests share.
func quickConfig() Config {
	return Config{Space: QuickSpace(), Points: QuickPoints(7), Seed: 7}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("two identical tuner runs produced different tables:\n%s\n%s", ja, jb)
	}
	if a.Digest == "" || a.Digest != b.Digest {
		t.Fatalf("digests differ: %q vs %q", a.Digest, b.Digest)
	}
}

func TestTableRoundTrip(t *testing.T) {
	cfg := quickConfig()
	tbl, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "TUNING.json")
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tbl, loaded) {
		t.Fatalf("loaded table differs from saved:\n%+v\n%+v", tbl, loaded)
	}

	// Re-running every point under the loaded entries must reproduce the
	// search's virtual times exactly and keep payloads digest-identical
	// to the defaults — the table is a replayable artifact, not a cache.
	for _, pt := range cfg.Points {
		key := pt.Obj.Key(pt.Spec)
		e, ok := loaded.Lookup(key)
		if !ok {
			t.Fatalf("no entry for %s", key)
		}
		tun, err := e.Tuning()
		if err != nil {
			t.Fatal(err)
		}
		tuned, err := pt.Obj.Run(pt.Spec, tun)
		if err != nil {
			t.Fatal(err)
		}
		if tuned.Us != e.TunedUs {
			t.Errorf("%s: replay %vus != recorded %vus", key, tuned.Us, e.TunedUs)
		}
		def, err := pt.Obj.Run(pt.Spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if def.Us != e.DefaultUs {
			t.Errorf("%s: default replay %vus != recorded %vus", key, def.Us, e.DefaultUs)
		}
		if tuned.Digest != def.Digest {
			t.Errorf("%s: tuned payload digest diverged from default", key)
		}
	}
}

func TestLoadRejectsVersionSkew(t *testing.T) {
	tbl := &Table{Version: TableVersion, Entries: map[string]Entry{}}
	path := filepath.Join(t.TempDir(), "t.json")
	if err := tbl.Save(path); err != nil {
		t.Fatal(err)
	}

	raw, _ := os.ReadFile(path)
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = TableVersion + 1
	skewed, _ := json.Marshal(m)
	if _, err := Parse(skewed); !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: got %v, want ErrVersion", err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	tbl := &Table{
		Version: TableVersion,
		Entries: map[string]Entry{"flat/64K/contig": {Eager: 1, Frag: 1 << 20, Coll: "auto"}},
	}
	tbl.Seal()
	raw, _ := json.Marshal(tbl)

	// Not JSON at all.
	if _, err := Parse([]byte("{nope")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage: got %v, want ErrCorrupt", err)
	}
	// Valid JSON, no entries.
	if _, err := Parse([]byte(`{"version":1}`)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("no entries: got %v, want ErrCorrupt", err)
	}
	// Hand-edited entry: content no longer matches the sealed digest.
	tampered := []byte(string(raw))
	var m map[string]any
	if err := json.Unmarshal(tampered, &m); err != nil {
		t.Fatal(err)
	}
	m["entries"].(map[string]any)["flat/64K/contig"].(map[string]any)["eager"] = 999.0
	tampered, _ = json.Marshal(m)
	if _, err := Parse(tampered); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered entry: got %v, want ErrCorrupt", err)
	}
}

func TestTuneFuncLookup(t *testing.T) {
	tbl := &Table{
		Version: TableVersion,
		Entries: map[string]Entry{
			"flat/64K/vector": {Eager: 0, Frag: 256 << 10, Coll: "auto"},
			"flat/1M/bogus":   {Eager: 0, Frag: 1 << 20, Coll: "banana"},
		},
	}
	fn := tbl.TuneFunc()
	spec := cluster.TwoNode()

	tun := fn(spec, 16<<10, "vector")
	if tun == nil {
		t.Fatal("hit returned nil")
	}
	if tun.Eager == nil || *tun.Eager != 0 || tun.FragBytes != 256<<10 {
		t.Errorf("hit returned wrong tuning: %+v", tun)
	}
	if fn(spec, 16<<10, "contig") != nil {
		t.Error("miss did not return nil")
	}
	if fn(spec, 512<<10, "bogus") != nil {
		t.Error("malformed entry did not return nil")
	}
	if fn(cluster.OneGPU(), 16<<10, "vector") != nil {
		t.Error("wrong topo class did not return nil")
	}
}

// TestOversubscribedSpeedup pins the headline result: on an
// oversubscribed fat tree the tuner must find a collective configuration
// at least 1.2x faster than the defaults, without changing the payload.
func TestOversubscribedSpeedup(t *testing.T) {
	pt := Point{
		Spec: cluster.Scale(8, 2, 4, 8),
		Obj:  Coll{Op: "allreduce", Elems: 1 << 15},
	}
	tbl, err := Run(Config{Space: QuickSpace(), Points: []Point{pt}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := tbl.Lookup(pt.Obj.Key(pt.Spec))
	if !ok {
		t.Fatal("no entry for the oversubscribed point")
	}
	if sp := e.Speedup(); sp < 1.2 {
		t.Fatalf("tuned speedup %.3fx < 1.2x (default %.1fus, tuned %.1fus, coll=%s)",
			sp, e.DefaultUs, e.TunedUs, e.Coll)
	}
	if e.Coll != "switch" {
		t.Errorf("expected the in-network family to win the oversubscribed point, got %q", e.Coll)
	}
}

func TestRunCurveDigestsMatch(t *testing.T) {
	pts, err := RunCurve([]CurveShape{
		{Nodes: 8, RPN: 2, Oversub: 4, Elems: 1 << 13},
		{Nodes: 8, RPN: 2, Oversub: 1, Elems: 1 << 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !p.DigestMatch {
			t.Errorf("%s: algorithm families disagree on the payload", p.Spec)
		}
		if p.FlatUs <= 0 || p.HierUs <= 0 || p.SwitchUs <= 0 {
			t.Errorf("%s: missing measurement: %+v", p.Spec, p)
		}
	}
}

func TestRunBenchReportsSpeedup(t *testing.T) {
	cfg := quickConfig()
	tbl, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := RunBench(tbl, cfg.Points)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(cfg.Points) {
		t.Fatalf("got %d bench points, want %d", len(pts), len(cfg.Points))
	}
	for _, bp := range pts {
		if !bp.DigestMatch {
			t.Errorf("%s: tuned payload digest diverged", bp.Key)
		}
		if bp.Speedup < 1 {
			t.Errorf("%s: tuner picked a slower-than-default config (%.3fx)", bp.Key, bp.Speedup)
		}
	}
}
