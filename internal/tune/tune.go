// Package tune is the adaptive protocol auto-tuner: it searches the
// protocol knob space — eager/rendezvous threshold, pipeline fragment
// size, collective algorithm family (flat, host-hierarchical, or
// SHARP-style in-network) — against simulated virtual time, one entry
// per (topology class, message-size bucket, datatype class) key, and
// persists the result as a versioned JSON tuning table that any world
// can load through cluster.Spec. The paper hand-tuned these constants
// per machine (§5); TEMPI-style canonical datatype classes keep the
// key space small enough that a committed table generalizes.
//
// Every candidate evaluation is digest-verified against the default
// configuration's payload, so a tuning table can change *when* bytes
// move but never *which* bytes arrive.
package tune

import (
	"fmt"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mpi"
)

// SizeClass buckets a packed message size for table keys. Non-positive
// sizes mean "whole application" (the BENCH_apps-style objectives,
// which have no single message size).
func SizeClass(bytes int64) string {
	switch {
	case bytes <= 0:
		return "app"
	case bytes <= 4<<10:
		return "4K"
	case bytes <= 64<<10:
		return "64K"
	case bytes <= 1<<20:
		return "1M"
	case bytes <= 16<<20:
		return "16M"
	default:
		return "big"
	}
}

// DTClass buckets a datatype the way TEMPI's canonicalization does:
// contiguous, canonical-vector (one strided block pattern), or
// irregular. Collective and application objectives use their own
// namespaced classes ("coll:allreduce", "app:ml-ring") so they never
// collide with point-to-point entries.
func DTClass(dt *datatype.Datatype) string {
	if dt.IsContiguous() {
		return "contig"
	}
	if dt.Plan().Canonical() != nil {
		return "vector"
	}
	return "irregular"
}

// Key addresses one tuning-table entry.
type Key struct {
	Topo string // cluster.Spec.TopoClass: "smp", "flat", "fatN"
	Size string // SizeClass bucket
	DT   string // DTClass, "coll:<op>", or "app:<family>"
}

// String is the table-entry key encoding.
func (k Key) String() string { return k.Topo + "/" + k.Size + "/" + k.DT }

// Entry is one tuned operating point plus the measurements that chose
// it, so a table is self-documenting about what it bought.
type Entry struct {
	Eager     int64   `json:"eager"`
	Frag      int64   `json:"frag"`
	Coll      string  `json:"coll"`
	DefaultUs float64 `json:"default_us"`
	TunedUs   float64 `json:"tuned_us"`
}

// Tuning materializes the entry as the typed knob bundle worlds run
// under. Eager is always set explicitly (Entry semantics have no
// "unset": 0 really means force-rendezvous).
func (e Entry) Tuning() (*mpi.Tuning, error) {
	coll, ok := mpi.ParseCollMode(e.Coll)
	if !ok {
		return nil, fmt.Errorf("tune: entry has unknown collective mode %q", e.Coll)
	}
	return &mpi.Tuning{
		Eager:       mpi.Eager(e.Eager),
		FragBytes:   e.Frag,
		Collectives: coll,
	}, nil
}

// Speedup is DefaultUs/TunedUs (1 = the defaults were already optimal).
func (e Entry) Speedup() float64 {
	if e.TunedUs <= 0 {
		return 1
	}
	return e.DefaultUs / e.TunedUs
}
