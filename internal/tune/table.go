package tune

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"gpuddt/internal/cluster"
	"gpuddt/internal/mpi"
)

// TableVersion is the current tuning-table schema version. Bump it
// whenever the entry semantics change; Load rejects every other
// version, because silently applying stale knobs is worse than running
// the defaults.
const TableVersion = 1

// Typed load failures, distinguishable with errors.Is.
var (
	// ErrVersion: the table was produced under a different schema.
	ErrVersion = errors.New("tune: tuning-table version mismatch")

	// ErrCorrupt: the file is not a tuning table, or its content does
	// not match its recorded digest.
	ErrCorrupt = errors.New("tune: corrupted tuning table")
)

// Table is a persisted tuning table: the searched space, the seed the
// search ran under, and one Entry per key. Digest covers everything
// else, so bit rot (or a hand edit) is detected at load time.
type Table struct {
	Version int              `json:"version"`
	Seed    uint64           `json:"seed"`
	Space   string           `json:"space"`
	Digest  string           `json:"digest"`
	Entries map[string]Entry `json:"entries"`
}

// digest hashes the canonical encoding of everything but the Digest
// field itself (encoding/json emits map keys sorted, so the encoding —
// and the hash — is deterministic).
func (t *Table) digest() string {
	shadow := struct {
		Version int              `json:"version"`
		Seed    uint64           `json:"seed"`
		Space   string           `json:"space"`
		Entries map[string]Entry `json:"entries"`
	}{t.Version, t.Seed, t.Space, t.Entries}
	raw, err := json.Marshal(shadow)
	if err != nil {
		panic(fmt.Sprintf("tune: table not marshalable: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Seal stamps the content digest; Save does it automatically.
func (t *Table) Seal() { t.Digest = t.digest() }

// Lookup returns the entry for k.
func (t *Table) Lookup(k Key) (Entry, bool) {
	e, ok := t.Entries[k.String()]
	return e, ok
}

// Save seals and writes the table as indented JSON.
func (t *Table) Save(path string) error {
	t.Seal()
	raw, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Parse decodes and validates a tuning table: schema version first
// (ErrVersion), then the content digest (ErrCorrupt), so a version skew
// is reported as what it is even though the digest differs too.
func Parse(raw []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if t.Version != TableVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersion, t.Version, TableVersion)
	}
	if t.Entries == nil {
		return nil, fmt.Errorf("%w: no entries", ErrCorrupt)
	}
	if got := t.digest(); got != t.Digest {
		return nil, fmt.Errorf("%w: content digest %.12s does not match recorded %.12s", ErrCorrupt, got, t.Digest)
	}
	return &t, nil
}

// Load reads and validates a tuning table from disk.
func Load(path string) (*Table, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(raw)
}

// TuneFunc adapts the table to the cluster-level lookup hook: worlds
// ask with their spec's topology class, message size and datatype
// class; a table miss returns nil (run the defaults). Entries with a
// malformed collective mode also return nil — a table that passed
// Parse cannot contain one, but a hand-built Table might.
func (t *Table) TuneFunc() cluster.TuneFunc {
	return func(s cluster.Spec, msgBytes int64, dtClass string) *mpi.Tuning {
		e, ok := t.Lookup(Key{Topo: s.TopoClass(), Size: SizeClass(msgBytes), DT: dtClass})
		if !ok {
			return nil
		}
		tun, err := e.Tuning()
		if err != nil {
			return nil
		}
		return tun
	}
}
