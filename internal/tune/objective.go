package tune

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"gpuddt/internal/bench"
	"gpuddt/internal/cluster"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/sim"
	"gpuddt/internal/workload"
)

// Kind selects which knob dimensions a search explores for an
// objective: protocol geometry for point-to-point traffic, the
// algorithm family for collectives, the eager threshold for whole
// applications.
type Kind int

const (
	// KindP2P searches eager × frag.
	KindP2P Kind = iota

	// KindColl searches the collective algorithm family.
	KindColl

	// KindApp searches the eager threshold under a whole workload.
	KindApp
)

// Eval is one deterministic measurement: virtual time plus a payload
// digest. Two runs of the same (spec, tuning, objective) produce
// byte-identical Evals — the determinism gate runs the whole tuner
// twice and compares tables.
type Eval struct {
	Us     float64
	Digest string
}

// Objective measures one traffic pattern on one machine under a
// candidate tuning (nil = defaults). Implementations must be pure:
// same inputs, same Eval.
type Objective interface {
	Name() string
	Kind() Kind
	Key(spec cluster.Spec) Key
	Run(spec cluster.Spec, tun *mpi.Tuning) (Eval, error)
}

func digestBytes(parts ...[]byte) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// P2P measures a single rendezvous-or-eager message of (Dt, Count)
// from rank 0 to the last rank — on a fat-tree spec that is a
// cross-leaf path, so the tuned geometry reflects spine congestion.
type P2P struct {
	Dt    *datatype.Datatype
	Count int
}

func (o P2P) Kind() Kind { return KindP2P }

func (o P2P) bytes() int64 { return int64(o.Count) * o.Dt.Size() }

func (o P2P) Name() string {
	return fmt.Sprintf("p2p/%s x%d (%s)", o.Dt.Name(), o.Count, SizeClass(o.bytes()))
}

func (o P2P) Key(spec cluster.Spec) Key {
	return Key{Topo: spec.TopoClass(), Size: SizeClass(o.bytes()), DT: DTClass(o.Dt)}
}

func (o P2P) Run(spec cluster.Spec, tun *mpi.Tuning) (Eval, error) {
	w := mpi.NewWorld(spec.Tuned(tun).Config())
	last := w.Size() - 1
	span := int64(o.Count) * o.Dt.Extent()
	var img []byte
	w.Run(func(m *mpi.Rank) {
		switch m.Rank() {
		case 0:
			buf := m.Malloc(span)
			mem.FillPattern(buf, 0xD7)
			m.Send(buf, o.Dt, o.Count, last, 1)
		case last:
			buf := m.Malloc(span)
			m.Recv(buf, o.Dt, o.Count, 0, 1)
			// Digest only the datatype-selected bytes: the gaps are
			// untouched memory, which mem's slab recycling leaves
			// unspecified between worlds.
			img = make([]byte, o.bytes())
			datatype.NewConverter(o.Dt, o.Count).Pack(img, buf.Bytes())
		}
	})
	ev := Eval{
		Us:     float64(w.Engine().Now()) / float64(sim.Microsecond),
		Digest: digestBytes(img),
	}
	w.Close()
	return ev, nil
}

// Coll measures a world-wide reduction of Elems Int64 per rank (exactly
// associative, so the flat, hierarchical and in-network algorithms are
// all bit-identical and the digest gate is meaningful).
type Coll struct {
	Op    string // "reduce" or "allreduce"
	Elems int
}

func (o Coll) Kind() Kind { return KindColl }

func (o Coll) bytes() int64 { return int64(o.Elems) * 8 }

func (o Coll) Name() string {
	return fmt.Sprintf("coll/%s %d elems (%s)", o.Op, o.Elems, SizeClass(o.bytes()))
}

func (o Coll) Key(spec cluster.Spec) Key {
	return Key{Topo: spec.TopoClass(), Size: SizeClass(o.bytes()), DT: "coll:" + o.Op}
}

func (o Coll) Run(spec cluster.Spec, tun *mpi.Tuning) (Eval, error) {
	dt := datatype.Contiguous(o.Elems, datatype.Int64)
	w := mpi.NewWorld(spec.Tuned(tun).Config())
	size := w.Size()
	root := size - 1
	imgs := make([][]byte, size)
	w.Run(func(m *mpi.Rank) {
		sendBuf := m.MallocHost(dt.Size())
		mem.FillPattern(sendBuf, uint64(0xC0+m.Rank()))
		switch o.Op {
		case "reduce":
			var recvBuf mem.Buffer
			if m.Rank() == root {
				recvBuf = m.MallocHost(dt.Size())
			}
			m.Reduce(sendBuf, recvBuf, dt, 1, mpi.OpSum, root)
			if m.Rank() == root {
				imgs[m.Rank()] = append([]byte(nil), recvBuf.Bytes()...)
			}
		case "allreduce":
			recvBuf := m.MallocHost(dt.Size())
			m.Allreduce(sendBuf, recvBuf, dt, 1, mpi.OpSum)
			imgs[m.Rank()] = append([]byte(nil), recvBuf.Bytes()...)
		default:
			panic(fmt.Sprintf("tune: unknown collective op %q", o.Op))
		}
	})
	ev := Eval{
		Us:     float64(w.Engine().Now()) / float64(sim.Microsecond),
		Digest: digestBytes(imgs...),
	}
	w.Close()
	return ev, nil
}

// App measures one committed application family (bench.AppWorkload —
// the exact configurations behind BENCH_apps.json) as a single job
// owning the spec's whole cluster, which is how the roadmap's
// "BENCH_apps.json as a tuning objective" lands: the tuner minimizes
// the same elapsed time the app benchmark reports.
type App struct {
	Family string
	Seed   uint64
}

func (o App) Kind() Kind { return KindApp }

func (o App) Name() string { return "app/" + o.Family }

func (o App) Key(spec cluster.Spec) Key {
	return Key{Topo: spec.TopoClass(), Size: "app", DT: "app:" + o.Family}
}

func (o App) Run(spec cluster.Spec, tun *mpi.Tuning) (Eval, error) {
	ranks := spec.Size()
	w, err := bench.AppWorkload(o.Family, ranks)
	if err != nil {
		return Eval{}, err
	}
	all := make([]int, ranks)
	for i := range all {
		all[i] = i
	}
	jobs := []workload.JobSpec{{Name: o.Family, W: w, Seed: o.Seed, Ranks: all}}
	res, _, err := workload.Run(spec.Tuned(tun).Config(), jobs, nil, workload.Options{})
	if err != nil {
		return Eval{}, err
	}
	return Eval{Us: res[0].ElapsedUs, Digest: res[0].Digest}, nil
}
