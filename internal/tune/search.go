package tune

import (
	"fmt"
	"sort"
	"strings"

	"gpuddt/internal/cluster"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
)

// Space is the knob grid the tuner explores. Which dimensions apply
// depends on the objective kind (see Kind); the grid is exhaustive, so
// determinism needs no seed beyond fixed iteration order — Seed is
// recorded in the table purely to tie it to the workload seeds used by
// the app objectives.
type Space struct {
	Eager []int64  `json:"eager"`
	Frag  []int64  `json:"frag"`
	Coll  []string `json:"coll"`
}

// String canonically encodes the space for the table header.
func (s Space) String() string {
	var b strings.Builder
	b.WriteString("eager=")
	for i, v := range s.Eager {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteString(";frag=")
	for i, v := range s.Frag {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteString(";coll=" + strings.Join(s.Coll, ","))
	return b.String()
}

// DefaultSpace is the committed-table grid: eager thresholds around the
// 64 KiB default (including the 0 force-rendezvous sentinel), fragment
// sizes at and below the 1 MiB default, and all three collective
// algorithm families.
func DefaultSpace() Space {
	return Space{
		Eager: []int64{0, 16 << 10, 64 << 10, 256 << 10},
		Frag:  []int64{256 << 10, 1 << 20},
		Coll:  []string{"auto", "flat", "switch"},
	}
}

// Candidate is one grid point.
type Candidate struct {
	Eager int64
	Frag  int64
	Coll  string
}

// Tuning materializes the candidate for a world.
func (c Candidate) Tuning() (*mpi.Tuning, error) {
	return Entry{Eager: c.Eager, Frag: c.Frag, Coll: c.Coll}.Tuning()
}

// defaultCandidate mirrors the resolved defaults, so a table entry is
// meaningful even when no candidate beat them.
func defaultCandidate() Candidate {
	return Candidate{Eager: 64 << 10, Frag: 1 << 20, Coll: "auto"}
}

// candidates enumerates the grid for an objective kind, in the fixed
// order ties are broken in (first strictly-better candidate wins).
func candidates(kind Kind, s Space) []Candidate {
	def := defaultCandidate()
	var out []Candidate
	switch kind {
	case KindP2P:
		for _, e := range s.Eager {
			for _, f := range s.Frag {
				out = append(out, Candidate{Eager: e, Frag: f, Coll: def.Coll})
			}
		}
	case KindColl:
		for _, c := range s.Coll {
			out = append(out, Candidate{Eager: def.Eager, Frag: def.Frag, Coll: c})
		}
	case KindApp:
		for _, e := range s.Eager {
			out = append(out, Candidate{Eager: e, Frag: def.Frag, Coll: def.Coll})
		}
	}
	return out
}

// Point is one (machine, traffic) pair the tuner measures.
type Point struct {
	Spec cluster.Spec
	Obj  Objective
}

// Config is a tuner run.
type Config struct {
	Space  Space
	Points []Point
	Seed   uint64
}

// Run searches the space at every point and returns the sealed table.
// Every candidate is digest-verified against the default run: a tuning
// that changes the delivered payload is a bug, not a speedup, and
// aborts the search.
func Run(cfg Config) (*Table, error) {
	tbl := &Table{
		Version: TableVersion,
		Seed:    cfg.Seed,
		Space:   cfg.Space.String(),
		Entries: make(map[string]Entry, len(cfg.Points)),
	}
	for _, pt := range cfg.Points {
		key := pt.Obj.Key(pt.Spec).String()
		if _, dup := tbl.Entries[key]; dup {
			return nil, fmt.Errorf("tune: duplicate key %s in point set", key)
		}
		def, err := pt.Obj.Run(pt.Spec, nil)
		if err != nil {
			return nil, fmt.Errorf("tune: %s default run: %w", key, err)
		}
		best := defaultCandidate()
		bestUs := def.Us
		for _, cand := range candidates(pt.Obj.Kind(), cfg.Space) {
			tun, err := cand.Tuning()
			if err != nil {
				return nil, err
			}
			ev, err := pt.Obj.Run(pt.Spec, tun)
			if err != nil {
				return nil, fmt.Errorf("tune: %s candidate %+v: %w", key, cand, err)
			}
			if ev.Digest != def.Digest {
				return nil, fmt.Errorf("tune: %s candidate %+v changed the payload digest", key, cand)
			}
			if ev.Us < bestUs {
				bestUs = ev.Us
				best = cand
			}
		}
		tbl.Entries[key] = Entry{
			Eager: best.Eager, Frag: best.Frag, Coll: best.Coll,
			DefaultUs: def.Us, TunedUs: bestUs,
		}
	}
	tbl.Seal()
	return tbl, nil
}

// Keys returns the table's entry keys, sorted.
func (t *Table) Keys() []string {
	keys := make([]string, 0, len(t.Entries))
	for k := range t.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DefaultPoints is the committed-table point set: point-to-point
// messages on the paper's SMP and two-node machines plus a cross-leaf
// fat-tree path, reductions on taper and oversubscribed fat trees (the
// in-network selection points), and one committed application family.
func DefaultPoints(seed uint64) []Point {
	vec16K := shapes.SubMatrix(16, 128, 192) // 16 KiB packed vector rows
	vec1M := shapes.SubMatrix(128, 1024, 1536)
	fat := cluster.Scale(16, 1, 1, 4) // rank 0 -> 15 crosses the spine tier
	return []Point{
		{Spec: cluster.OneGPU(), Obj: P2P{Dt: vec16K, Count: 1}},
		{Spec: cluster.OneGPU(), Obj: P2P{Dt: vec1M, Count: 1}},
		{Spec: cluster.TwoNode(), Obj: P2P{Dt: datatype.Contiguous(2048, datatype.Int64), Count: 1}},
		{Spec: cluster.TwoNode(), Obj: P2P{Dt: vec1M, Count: 1}},
		{Spec: cluster.TwoNode(), Obj: P2P{Dt: datatype.Contiguous(1<<20, datatype.Int64), Count: 1}},
		{Spec: fat, Obj: P2P{Dt: vec1M, Count: 1}},
		{Spec: cluster.Scale(16, 2, 2, 4), Obj: Coll{Op: "allreduce", Elems: 1 << 15}},
		{Spec: cluster.Scale(16, 2, 2, 4), Obj: Coll{Op: "reduce", Elems: 1 << 15}},
		{Spec: cluster.Scale(8, 2, 2, 1), Obj: Coll{Op: "allreduce", Elems: 1 << 15}},
		// scalebench's reduce geometry (4096 Int64 on a 2:1 fat tree), so
		// `scalebench -tuning TUNING.json` hits the committed table.
		{Spec: cluster.Scale(8, 4, 4, 2), Obj: Coll{Op: "reduce", Elems: 4096}},
		{Spec: cluster.Scale(4, 4, 4, 4), Obj: App{Family: "ml-ring", Seed: seed}},
	}
}

// QuickPoints is the CI smoke set: small enough to run the whole tuner
// twice for the determinism gate, while still covering all three
// objective kinds and an oversubscribed collective point.
func QuickPoints(seed uint64) []Point {
	return []Point{
		{Spec: cluster.TwoNode(), Obj: P2P{Dt: shapes.SubMatrix(16, 128, 192), Count: 1}},
		{Spec: cluster.Scale(8, 2, 2, 4), Obj: Coll{Op: "allreduce", Elems: 1 << 14}},
		{Spec: cluster.Scale(2, 2, 2, 4), Obj: App{Family: "checkpoint", Seed: seed}},
	}
}

// QuickSpace trims the grid for the smoke set.
func QuickSpace() Space {
	return Space{
		Eager: []int64{0, 64 << 10},
		Frag:  []int64{256 << 10, 1 << 20},
		Coll:  []string{"auto", "flat", "switch"},
	}
}
