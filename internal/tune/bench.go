package tune

import (
	"fmt"

	"gpuddt/internal/cluster"
	"gpuddt/internal/mpi"
)

// BenchPoint is one tuned-vs-default re-evaluation: the table entry's
// knobs replayed against the defaults on the same (spec, objective)
// pair, with the payload digests compared. This is what BENCH_tune.json
// commits — measurements from a fresh replay, not the numbers the
// search recorded, so a stale table shows up as a speedup regression.
type BenchPoint struct {
	Key         string  `json:"key"`
	Name        string  `json:"name"`
	Spec        string  `json:"spec"`
	Eager       int64   `json:"eager"`
	Frag        int64   `json:"frag"`
	Coll        string  `json:"coll"`
	DefaultUs   float64 `json:"default_us"`
	TunedUs     float64 `json:"tuned_us"`
	Speedup     float64 `json:"speedup"`
	DigestMatch bool    `json:"digest_match"`
}

// RunBench replays every point against the table: default run, then the
// table entry's tuning (a table miss replays the defaults and reports
// speedup 1).
func RunBench(tbl *Table, points []Point) ([]BenchPoint, error) {
	out := make([]BenchPoint, 0, len(points))
	for _, pt := range points {
		key := pt.Obj.Key(pt.Spec)
		def, err := pt.Obj.Run(pt.Spec, nil)
		if err != nil {
			return nil, fmt.Errorf("tune: bench %s default run: %w", key, err)
		}
		bp := BenchPoint{
			Key:       key.String(),
			Name:      pt.Obj.Name(),
			Spec:      pt.Spec.String(),
			DefaultUs: def.Us,
			TunedUs:   def.Us,
			Speedup:   1,
			// The default run trivially matches itself; overwritten below
			// when a table entry replays.
			DigestMatch: true,
		}
		if e, ok := tbl.Lookup(key); ok {
			tun, err := e.Tuning()
			if err != nil {
				return nil, fmt.Errorf("tune: bench %s: %w", key, err)
			}
			tuned, err := pt.Obj.Run(pt.Spec, tun)
			if err != nil {
				return nil, fmt.Errorf("tune: bench %s tuned run: %w", key, err)
			}
			bp.Eager, bp.Frag, bp.Coll = e.Eager, e.Frag, e.Coll
			bp.TunedUs = tuned.Us
			bp.DigestMatch = tuned.Digest == def.Digest
			if tuned.Us > 0 {
				bp.Speedup = def.Us / tuned.Us
			}
		}
		out = append(out, bp)
	}
	return out, nil
}

// CurvePoint is one in-network-reduction curve sample: the same Int64
// allreduce run under all three collective algorithm families on one
// fat-tree shape. DigestMatch asserts all three delivered bit-identical
// results (Int64 sum is exactly associative, so they must).
type CurvePoint struct {
	Spec        string  `json:"spec"`
	Nodes       int     `json:"nodes"`
	Oversub     int     `json:"oversub"`
	Elems       int     `json:"elems"`
	FlatUs      float64 `json:"flat_us"`
	HierUs      float64 `json:"hier_us"`
	SwitchUs    float64 `json:"switch_us"`
	DigestMatch bool    `json:"digest_match"`
}

// CurveShape names one fat-tree sample for RunCurve.
type CurveShape struct {
	Nodes, RPN, Oversub, Elems int
}

// DefaultCurveShapes sweeps the in-network selection boundary: the
// fully-provisioned tree (where host-side hierarchical reduce is
// competitive) through 4:1 and 8:1 oversubscription (where folding at
// the switch saves the contended uplinks).
func DefaultCurveShapes() []CurveShape {
	return []CurveShape{
		{Nodes: 8, RPN: 4, Oversub: 1, Elems: 1 << 15},
		{Nodes: 8, RPN: 4, Oversub: 4, Elems: 1 << 15},
		{Nodes: 16, RPN: 2, Oversub: 4, Elems: 1 << 15},
		{Nodes: 16, RPN: 4, Oversub: 8, Elems: 1 << 15},
	}
}

// RunCurve measures the flat / hierarchical / in-network allreduce
// families across the shapes.
func RunCurve(shapes []CurveShape) ([]CurvePoint, error) {
	modes := []mpi.CollMode{mpi.CollFlat, mpi.CollHier, mpi.CollSwitch}
	out := make([]CurvePoint, 0, len(shapes))
	for _, sh := range shapes {
		spec := cluster.Scale(sh.Nodes, 1, sh.RPN, sh.Oversub)
		obj := Coll{Op: "allreduce", Elems: sh.Elems}
		cp := CurvePoint{
			Spec: spec.String(), Nodes: sh.Nodes, Oversub: sh.Oversub, Elems: sh.Elems,
			DigestMatch: true,
		}
		var ref string
		for _, mode := range modes {
			ev, err := obj.Run(spec, &mpi.Tuning{Collectives: mode})
			if err != nil {
				return nil, fmt.Errorf("tune: curve %s %s: %w", spec, mode, err)
			}
			switch mode {
			case mpi.CollFlat:
				cp.FlatUs = ev.Us
				ref = ev.Digest
			case mpi.CollHier:
				cp.HierUs = ev.Us
			case mpi.CollSwitch:
				cp.SwitchUs = ev.Us
			}
			if ev.Digest != ref {
				cp.DigestMatch = false
			}
		}
		out = append(out, cp)
	}
	return out, nil
}
