package mpiio

import (
	"bytes"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
)

func fourRanks() mpi.Config {
	return mpi.Config{Ranks: []mpi.Placement{
		{Node: 0, GPU: 0}, {Node: 0, GPU: 1}, {Node: 1, GPU: 0}, {Node: 1, GPU: 1},
	}}
}

// TestDarrayViewsPartitionFile writes a block-cyclic distributed matrix
// from four ranks' GPUs through Darray views and checks the assembled
// file equals the logical global matrix.
func TestDarrayViewsPartitionFile(t *testing.T) {
	const n = 32 // 32x32 doubles = 8 KB file
	gs := []int{n, n}
	dist := []datatype.Distrib{datatype.DistribCyclic, datatype.DistribCyclic}
	dargs := []int{4, 4}
	ps := []int{2, 2}

	w := mpi.NewWorld(fourRanks())
	file := Open(w, "matrix.dat", n*n*8, Params{})
	w.Run(func(m *mpi.Rank) {
		piece := datatype.Darray(4, m.Rank(), gs, dist, dargs, ps, datatype.OrderFortran, datatype.Float64)
		// Local data: packed form of my piece, resident on my GPU. Fill
		// it so each byte encodes its *global* position: pack a
		// reference global matrix through my piece's layout.
		ref := mem.NewSpace("ref", mem.Host, n*n*8)
		rb := ref.Alloc(n*n*8, 1)
		for i := range rb.Bytes() {
			rb.Bytes()[i] = byte(i * 13)
		}
		c := datatype.NewConverter(piece, 1)
		local := m.Malloc(c.Total())
		c.Pack(local.Bytes(), rb.Bytes())

		// The file view is my Darray piece; write my packed data.
		file.SetView(m, 0, piece)
		contig := datatype.Contiguous(int(piece.Size()), datatype.Byte)
		file.WriteAll(m, local, contig, 1)
	})
	got := file.Bytes()
	for i := range got {
		if got[i] != byte(i*13) {
			t.Fatalf("file byte %d = %x, want %x", i, got[i], byte(i*13))
		}
	}
}

// TestWriteReadRoundTripGPU writes GPU-resident strided data through a
// strided view and reads it back into a different GPU buffer.
func TestWriteReadRoundTripGPU(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Ranks: []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}}})
	const elems = 4096
	// Rank r's view: every other 1 KB block, offset by rank.
	blockBytes := 1024
	file := Open(w, "interleaved.dat", 2*elems*8, Params{})
	var want, got [2][]byte
	w.Run(func(m *mpi.Rank) {
		ft := datatype.Vector(1, blockBytes, 2*blockBytes, datatype.Byte) // one block, extent skips the peer's
		ftile := datatype.Resized(ft, 0, int64(2*blockBytes))
		file.SetView(m, int64(m.Rank()*blockBytes), ftile)

		dt := datatype.Contiguous(elems, datatype.Float64)
		buf := m.Malloc(dt.Size())
		mem.FillPattern(buf, uint64(m.Rank()+7))
		want[m.Rank()] = append([]byte(nil), buf.Bytes()...)
		file.WriteAll(m, buf, dt, 1)
		m.Barrier()

		back := m.Malloc(dt.Size())
		file.ReadAll(m, back, dt, 1)
		got[m.Rank()] = append([]byte(nil), back.Bytes()...)
	})
	for r := 0; r < 2; r++ {
		if !bytes.Equal(want[r], got[r]) {
			t.Fatalf("rank %d round trip mismatch", r)
		}
	}
	// The file must interleave the two ranks' blocks.
	fb := file.Bytes()
	if bytes.Equal(fb[:blockBytes], fb[blockBytes:2*blockBytes]) {
		t.Fatal("file blocks not interleaved")
	}
}

func TestViewValidation(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Ranks: []mpi.Placement{{Node: 0, GPU: 0}}})
	file := Open(w, "small.dat", 1024, Params{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized write")
		}
	}()
	w.Run(func(m *mpi.Rank) {
		file.SetView(m, 0, datatype.Contiguous(1024, datatype.Byte))
		big := datatype.Contiguous(4096, datatype.Byte)
		file.WriteAll(m, m.MallocHost(4096), big, 1)
	})
}

func TestNoViewPanics(t *testing.T) {
	w := mpi.NewWorld(mpi.Config{Ranks: []mpi.Placement{{Node: 0, GPU: 0}}})
	file := Open(w, "noview.dat", 1024, Params{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without a view")
		}
	}()
	w.Run(func(m *mpi.Rank) {
		file.WriteAll(m, m.MallocHost(128), datatype.Contiguous(128, datatype.Byte), 1)
	})
}
