// Package mpiio is an MPI-IO-style parallel file layer, exercising the
// third consumer of committed datatypes the MPI standard (and the
// paper's §1) lists: "point-to-point, collective, I/O and one-sided
// functions".
//
// A File is a simulated shared file (real bytes) behind a
// bandwidth-limited storage link. Each rank sets a *view* — an etype
// count plus a filetype whose gaps skip other ranks' data, typically a
// Darray — and collective WriteAll/ReadAll move the rank's local data
// (host or GPU, any datatype) through the view: GPU data is packed by
// the datatype engine, staged to the host, and scattered into the file
// holes, exactly the ROMIO data-sieving picture.
package mpiio

import (
	"fmt"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/sim"
)

// Params calibrates the storage system.
type Params struct {
	// BandwidthGBps is the aggregate file-system bandwidth (default 3).
	BandwidthGBps float64
	// OpLatency is the per-operation latency (default 100 us).
	OpLatency sim.Time

	// Link, when set, is the storage link the file shares instead of
	// creating its own: co-scheduled jobs that checkpoint through the
	// same link contend for the aggregate file-system bandwidth (the
	// multi-job interference scenario); BandwidthGBps and OpLatency are
	// then ignored.
	Link *sim.Link

	// Barrier, when set, replaces the world-wide barrier that closes
	// each collective WriteAll/ReadAll epoch. A job running on a subset
	// of the world's ranks (an mpi.Group) must scope completion to its
	// own members — a world barrier would deadlock against ranks that
	// never enter the I/O call.
	Barrier func(m *mpi.Rank)
}

// File is a shared simulated file.
type File struct {
	w       *mpi.World
	data    mem.Buffer
	size    int64
	link    *sim.Link
	views   []view // per rank
	barrier func(m *mpi.Rank)
}

type view struct {
	disp     int64
	filetype *datatype.Datatype
}

// Open creates (or truncates) a shared file of the given size.
// Collective: call once per job, then share the handle; each rank must
// SetView before reading or writing.
func Open(w *mpi.World, name string, size int64, p Params) *File {
	if p.BandwidthGBps == 0 {
		p.BandwidthGBps = 3
	}
	if p.OpLatency == 0 {
		p.OpLatency = 100 * sim.Microsecond
	}
	link := p.Link
	if link == nil {
		link = w.Engine().NewLink("fs:"+name, p.BandwidthGBps, p.OpLatency)
	}
	barrier := p.Barrier
	if barrier == nil {
		barrier = func(m *mpi.Rank) { m.Barrier() }
	}
	return &File{
		w:       w,
		data:    mem.NewSpace("file:"+name, mem.Host, size).Alloc(size, 1),
		size:    size,
		link:    link,
		views:   make([]view, w.Size()),
		barrier: barrier,
	}
}

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// Bytes exposes the file contents for verification.
func (f *File) Bytes() []byte { return f.data.Bytes() }

// SetView installs rank m's file view: the packed stream of every
// subsequent WriteAll/ReadAll call lands in the data bytes of filetype
// tiled from byte displacement disp (MPI_File_set_view).
func (f *File) SetView(m *mpi.Rank, disp int64, filetype *datatype.Datatype) {
	if filetype.Size() == 0 {
		panic("mpiio: empty filetype")
	}
	f.views[m.Rank()] = view{disp: disp, filetype: filetype}
}

// WriteAll writes count elements of dt from buf through the caller's
// view (MPI_File_write_all). Collective: internally barriers so every
// rank's I/O lands in the same epoch.
func (f *File) WriteAll(m *mpi.Rank, buf mem.Buffer, dt *datatype.Datatype, count int) {
	f.transfer(m, buf, dt, count, true)
}

// ReadAll reads count elements of dt into buf through the caller's view
// (MPI_File_read_all).
func (f *File) ReadAll(m *mpi.Rank, buf mem.Buffer, dt *datatype.Datatype, count int) {
	f.transfer(m, buf, dt, count, false)
}

func (f *File) transfer(m *mpi.Rank, buf mem.Buffer, dt *datatype.Datatype, count int, writing bool) {
	v := f.views[m.Rank()]
	if v.filetype == nil {
		panic(fmt.Sprintf("mpiio: rank %d has no view", m.Rank()))
	}
	packed := int64(count) * dt.Size()
	// The view must have room for the packed stream (tile the filetype).
	tiles := (packed + v.filetype.Size() - 1) / v.filetype.Size()
	span := v.disp + (tiles-1)*v.filetype.Extent() + v.filetype.TrueLB() + v.filetype.TrueExtent()
	if span > f.size {
		panic(fmt.Sprintf("mpiio: rank %d view needs %d bytes, file has %d", m.Rank(), span, f.size))
	}

	// Stage the packed stream in host memory.
	stage := m.ScratchHost(packed)
	defer m.FreeScratchHost(stage)
	window := stage.Slice(0, packed)
	if writing {
		f.packLocal(m, buf, dt, count, window)
	}

	// Move packed bytes between the stage and the file holes described
	// by the view, charging the storage link once for the whole stream.
	f.link.Transfer(m.Proc(), packed)
	fc := datatype.NewConverter(v.filetype, int(tiles))
	fileBuf := f.data.Slice(v.disp, f.size-v.disp)
	if writing {
		fc.Unpack(fileBuf.Bytes(), window.Bytes())
	} else {
		fc.Pack(window.Bytes(), fileBuf.Bytes())
		f.unpackLocal(m, buf, dt, count, window)
	}
	f.barrier(m) // collective completion (job-scoped when Params.Barrier is set)
}

// packLocal moves (buf, dt, count) into the host window: GPU data goes
// through the datatype engine (zero-copy pack), host data through the
// CPU converter.
func (f *File) packLocal(m *mpi.Rank, buf mem.Buffer, dt *datatype.Datatype, count int, window mem.Buffer) {
	if buf.Kind() == mem.Device {
		m.GPUEngine(m.Ctx().Node().DeviceOf(buf.Space())).Pack(m.Proc(), buf, dt, count, window)
		return
	}
	m.CPUPack(m.Proc(), buf, dt, count, window)
}

func (f *File) unpackLocal(m *mpi.Rank, buf mem.Buffer, dt *datatype.Datatype, count int, window mem.Buffer) {
	if buf.Kind() == mem.Device {
		m.GPUEngine(m.Ctx().Node().DeviceOf(buf.Space())).Unpack(m.Proc(), buf, dt, count, window)
		return
	}
	m.CPUUnpack(m.Proc(), buf, dt, count, window)
}
