package mpiio

import (
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mpi"
	"gpuddt/internal/sim"
)

// TestGroupScopedBarrier opens two files, each completing its
// collective I/O with a group barrier over half the world, and lets
// only those ranks write: with the default world-wide barrier this
// deadlocks against the non-participating ranks, so finishing at all
// (plus correct file contents) is the property under test. Both files
// share one storage link, the contended-file-system shape the
// interference studies use.
func TestGroupScopedBarrier(t *testing.T) {
	w := mpi.NewWorld(fourRanks())
	ga := w.NewGroup([]int{0, 1})
	gb := w.NewGroup([]int{2, 3})
	shared := w.Engine().NewLink("fs:shared", 3, 100*sim.Microsecond)
	const half = 1024
	open := func(name string, g *mpi.Group) *File {
		return Open(w, name, 2*half, Params{
			Link:    shared,
			Barrier: func(m *mpi.Rank) { g.Barrier(m) },
		})
	}
	fa := open("job-a.ckpt", ga)
	fb := open("job-b.ckpt", gb)
	w.Run(func(m *mpi.Rank) {
		g, f, fill := ga, fa, byte(0xa0)
		if !ga.Contains(m.Rank()) {
			g, f, fill = gb, fb, byte(0xb0)
		}
		lr := g.LocalRank(m)
		buf := m.MallocHost(half)
		for i := range buf.Bytes() {
			buf.Bytes()[i] = fill | byte(lr)
		}
		f.SetView(m, int64(lr)*half, datatype.Contiguous(half, datatype.Byte))
		f.WriteAll(m, buf, datatype.Contiguous(half, datatype.Byte), 1)
	})
	for lr := 0; lr < 2; lr++ {
		for _, c := range []struct {
			f    *File
			fill byte
		}{{fa, 0xa0}, {fb, 0xb0}} {
			got := c.f.Bytes()[lr*half : (lr+1)*half]
			for i, b := range got {
				if b != c.fill|byte(lr) {
					t.Fatalf("file %x slot %d byte %d = %x, want %x", c.fill, lr, i, b, c.fill|byte(lr))
				}
			}
		}
	}
	w.Close()
}
