// Package cuda provides a CUDA-runtime-shaped API over the simulated GPU
// and PCIe substrates: memory copies (including cudaMemcpy2D with its
// pitch-alignment behaviour), streams and events (re-exported from gpu),
// IPC memory handles with one-time map cost and caching, and zero-copy
// host mapping.
//
// One Ctx corresponds to one process's CUDA context on one node.
package cuda

import (
	"fmt"

	"gpuddt/internal/fault"
	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

// Ctx is a per-process CUDA context.
type Ctx struct {
	node *pcie.Node
	ipc  map[ipcKey]bool // handles already mapped (cost paid)
}

type ipcKey struct {
	dev  int
	addr int64
}

// NewCtx creates a context on the given node.
func NewCtx(node *pcie.Node) *Ctx {
	return &Ctx{node: node, ipc: make(map[ipcKey]bool)}
}

// Node returns the node the context lives on.
func (c *Ctx) Node() *pcie.Node { return c.node }

// Engine returns the simulation engine.
func (c *Ctx) Engine() *sim.Engine { return c.node.Engine() }

// Malloc allocates device memory on GPU dev (cudaMalloc; 256-byte
// aligned like the CUDA allocator).
func (c *Ctx) Malloc(dev int, n int64) mem.Buffer {
	return c.node.GPU(dev).Mem().Alloc(n, 256)
}

// MallocHost allocates page-locked host memory (cudaMallocHost).
func (c *Ctx) MallocHost(n int64) mem.Buffer {
	return c.node.Host().Alloc(n, 256)
}

// deviceOf classifies a buffer: GPU index, or -1 for host memory.
func (c *Ctx) deviceOf(b mem.Buffer) int {
	if b.Kind() == mem.Host {
		return -1
	}
	d := c.node.DeviceOf(b.Space())
	if d < 0 {
		panic(fmt.Sprintf("cuda: buffer %v is not on node %d", b, c.node.ID()))
	}
	return d
}

// Memcpy copies synchronously on the calling process, inferring the
// direction from the buffer locations (cudaMemcpyDefault with UVA). An
// injected copy fault (fault.PCIeCopy) fails before any byte moves, so
// a retry is idempotent.
func (c *Ctx) Memcpy(p *sim.Proc, dst, src mem.Buffer) error {
	if dst.Len() != src.Len() {
		panic("cuda: Memcpy length mismatch")
	}
	n := src.Len()
	sd, dd := c.deviceOf(src), c.deviceOf(dst)
	h := p.BeginBytes("cuda.memcpy."+copyDir(sd, dd), n)
	defer h.End()
	if sd < 0 && dd < 0 {
		return c.node.HostCopy(p, dst, src) // charges its own cost, probes its own fault site
	}
	if err := c.node.Faults().Check(p, fault.PCIeCopy, n); err != nil {
		return err
	}
	ov := c.overheadFor(sd, dd)
	switch {
	case sd >= 0 && dd == sd:
		c.node.GPU(sd).CopyD2D(p, dst, src)
		return nil
	case sd < 0:
		p.Sleep(ov)
		c.node.H2D(dd).Transfer(p, n)
	case dd < 0:
		p.Sleep(ov)
		c.node.D2H(sd).Transfer(p, n)
	default:
		p.Sleep(ov)
		c.node.P2P(sd, dd).Transfer(p, n)
	}
	mem.Copy(dst, src)
	return nil
}

// copyDir names a copy direction for the timeline (host = -1).
func copyDir(sd, dd int) string {
	switch {
	case sd < 0 && dd < 0:
		return "h2h"
	case sd < 0:
		return "h2d"
	case dd < 0:
		return "d2h"
	case sd == dd:
		return "d2d"
	default:
		return "p2p"
	}
}

// overheadFor returns the per-call driver overhead for a copy between
// the given endpoints (host = -1).
func (c *Ctx) overheadFor(sd, dd int) sim.Time {
	d := sd
	if d < 0 {
		d = dd
	}
	if d < 0 {
		return 0
	}
	return c.node.GPU(d).Params().MemcpyOverhead
}

// MemcpyAsync enqueues the copy on a stream (cudaMemcpyAsync) and returns
// a future completing when the data has arrived. Async copies do not
// participate in fault recovery: an injected fault on this path is fatal
// (the PML's recoverable paths all use the synchronous form).
func (c *Ctx) MemcpyAsync(s *gpu.Stream, dst, src mem.Buffer) *sim.Future {
	return s.Submit("memcpyAsync", func(p *sim.Proc) {
		if err := c.Memcpy(p, dst, src); err != nil {
			panic(fmt.Sprintf("cuda: MemcpyAsync: %v", err))
		}
	})
}

// Memcpy2D copies height rows of width bytes with independent pitches
// (cudaMemcpy2D). The performance model reproduces the published
// behaviour: PCIe-crossing copies run near path peak when width is a
// 64-byte multiple and collapse otherwise, with a per-row descriptor
// cost; intra-device copies behave like a coalescing-limited kernel.
func (c *Ctx) Memcpy2D(p *sim.Proc, dst mem.Buffer, dpitch int64, src mem.Buffer, spitch int64, width, height int64) error {
	if width > dpitch || width > spitch {
		panic("cuda: Memcpy2D width exceeds pitch")
	}
	sd, dd := c.deviceOf(src), c.deviceOf(dst)
	n := width * height
	h := p.BeginBytes("cuda.memcpy2d."+copyDir(sd, dd), n)
	defer h.End()
	if err := c.node.Faults().Check(p, fault.PCIeCopy, n); err != nil {
		return err
	}
	switch {
	case sd >= 0 && dd == sd:
		d := c.node.GPU(sd)
		gp := d.Params()
		p.Sleep(gp.MemcpyOverhead)
		warp := gp.WarpBytes
		raw := height * (width + (width+warp-1)/warp*warp)
		rate := gp.DRAMRawGBps * gp.Memcpy2DAlignedEff
		p.Sleep(sim.TimeForBytes(raw, rate))
	default:
		var path *sim.Path
		var gp gpu.Params
		switch {
		case sd < 0 && dd < 0:
			panic("cuda: host-to-host Memcpy2D not modeled")
		case sd < 0:
			path, gp = c.node.H2D(dd), c.node.GPU(dd).Params()
		case dd < 0:
			path, gp = c.node.D2H(sd), c.node.GPU(sd).Params()
		default:
			path, gp = c.node.P2P(sd, dd), c.node.GPU(sd).Params()
		}
		eff := gp.Memcpy2DAlignedEff
		if width%64 != 0 {
			eff = gp.Memcpy2DMisalignedEff
		}
		p.Sleep(gp.MemcpyOverhead + sim.Time(height)*gp.Memcpy2DPerRow)
		// Inflate the byte count so link occupancy reflects the
		// efficiency loss (strided DMA descriptors waste wire slots).
		path.Transfer(p, int64(float64(n)/eff))
	}
	copy2D(dst, dpitch, src, spitch, width, height)
	return nil
}

// Memcpy2DAsync is Memcpy2D on a stream. As with MemcpyAsync, an
// injected fault on the async path is fatal rather than recoverable.
func (c *Ctx) Memcpy2DAsync(s *gpu.Stream, dst mem.Buffer, dpitch int64, src mem.Buffer, spitch int64, width, height int64) *sim.Future {
	return s.Submit("memcpy2DAsync", func(p *sim.Proc) {
		if err := c.Memcpy2D(p, dst, dpitch, src, spitch, width, height); err != nil {
			panic(fmt.Sprintf("cuda: Memcpy2DAsync: %v", err))
		}
	})
}

func copy2D(dst mem.Buffer, dpitch int64, src mem.Buffer, spitch int64, width, height int64) {
	for r := int64(0); r < height; r++ {
		mem.Copy(dst.Slice(r*dpitch, width), src.Slice(r*spitch, width))
	}
}

// IpcHandle names an exportable device allocation (cudaIpcGetMemHandle).
type IpcHandle struct {
	Node int
	Dev  int
	Addr int64
	Len  int64
}

// IpcGetMemHandle exports a device buffer for peer processes.
func (c *Ctx) IpcGetMemHandle(b mem.Buffer) IpcHandle {
	d := c.deviceOf(b)
	if d < 0 {
		panic("cuda: IPC handle of host memory")
	}
	return IpcHandle{Node: c.node.ID(), Dev: d, Addr: b.Addr(), Len: b.Len()}
}

// IpcOpenMemHandle maps a peer's device allocation into this context.
// The first open of a given allocation pays the map cost; repeat opens
// hit the cache (the paper's one-time RDMA connection establishment).
// An injected fault (fault.IPCOpen) fails the map — persistently when
// the plan marks the P2P path dead, which is the signal for the PML to
// downgrade zero-copy protocols to staged copy-in/out.
func (c *Ctx) IpcOpenMemHandle(p *sim.Proc, h IpcHandle) (mem.Buffer, error) {
	if h.Node != c.node.ID() {
		panic("cuda: IPC across nodes is not possible")
	}
	key := ipcKey{dev: h.Dev, addr: h.Addr}
	if !c.ipc[key] {
		if err := c.node.Faults().Check(p, fault.IPCOpen, h.Len); err != nil {
			return mem.Buffer{}, err
		}
		p.Count("ipc.map.miss", 1)
		sp := p.BeginBytes("ipc.open", h.Len)
		p.Sleep(c.node.Params().IPCMapCost)
		sp.End()
		c.ipc[key] = true
	} else {
		p.Count("ipc.map.hit", 1)
	}
	return c.node.GPU(h.Dev).Mem().BufferAt(h.Addr, h.Len), nil
}

// LaunchPack launches kernel k on stream s of device dev with the
// contiguous side resident in device memory.
func (c *Ctx) LaunchPack(s *gpu.Stream, k *gpu.Kernel) *sim.Future {
	return s.Device().Launch(s, k)
}

// LaunchPackZeroCopy launches a pack kernel whose contiguous destination
// is host memory mapped into the device (CUDA UMA zero copy): the writes
// stream over the device's PCIe transmit link during the kernel.
func (c *Ctx) LaunchPackZeroCopy(s *gpu.Stream, k *gpu.Kernel) *sim.Future {
	return s.Device().LaunchZeroCopy(s, k, c.node.SlotTx(s.Device().ID()), k.Bytes())
}

// LaunchUnpackZeroCopy launches an unpack kernel whose contiguous source
// is mapped host memory: reads stream over the receive link.
func (c *Ctx) LaunchUnpackZeroCopy(s *gpu.Stream, k *gpu.Kernel) *sim.Future {
	return s.Device().LaunchZeroCopy(s, k, c.node.SlotRx(s.Device().ID()), k.Bytes())
}
