package cuda

import (
	"testing"

	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

func newCtx(t *testing.T, ngpus int) (*sim.Engine, *Ctx) {
	t.Helper()
	e := sim.NewEngine()
	n := pcie.NewNode(e, 0, ngpus, gpu.KeplerK40(), pcie.DefaultParams())
	return e, NewCtx(n)
}

func TestMemcpyDirections(t *testing.T) {
	e, c := newCtx(t, 2)
	h := c.MallocHost(1 << 20)
	d0 := c.Malloc(0, 1<<20)
	d1 := c.Malloc(1, 1<<20)
	d0b := c.Malloc(0, 1<<20)
	mem.FillPattern(h, 1)
	e.Spawn("host", func(p *sim.Proc) {
		c.Memcpy(p, d0, h)   // H2D
		c.Memcpy(p, d1, d0)  // P2P
		c.Memcpy(p, d0b, d0) // D2D same device
		mem.Fill(h, 0)
		c.Memcpy(p, h, d1) // D2H
	})
	e.Run()
	ref := c.Node().Host().Alloc(1<<20, 256)
	mem.FillPattern(ref, 1)
	for _, b := range []mem.Buffer{d0, d1, d0b, h} {
		if !mem.Equal(ref, b) {
			t.Fatalf("buffer %v corrupted", b)
		}
	}
}

func TestMemcpyH2DTiming(t *testing.T) {
	e, c := newCtx(t, 1)
	h := c.MallocHost(10 << 20)
	d := c.Malloc(0, 10<<20)
	var dur sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		t0 := p.Now()
		c.Memcpy(p, d, h)
		dur = p.Now() - t0
	})
	e.Run()
	gp := c.Node().GPU(0).Params()
	path := c.Node().H2D(0)
	// Cut-through forwarding: the path takes the bottleneck hop's
	// serialization time, not the sum of hops.
	want := gp.MemcpyOverhead +
		sim.TimeForBytes(10<<20, c.Node().Params().RootGBps) +
		path.Latency()
	if dur != want {
		t.Fatalf("dur = %v, want %v", dur, want)
	}
}

func TestMemcpy2DMovesRows(t *testing.T) {
	e, c := newCtx(t, 1)
	// 4 rows of 32 bytes with pitch 64 -> packed 32-byte rows on host.
	d := c.Malloc(0, 256)
	h := c.MallocHost(128)
	mem.FillPattern(d, 2)
	e.Spawn("host", func(p *sim.Proc) {
		c.Memcpy2D(p, h, 32, d, 64, 32, 4)
	})
	e.Run()
	for r := int64(0); r < 4; r++ {
		if !mem.Equal(h.Slice(r*32, 32), d.Slice(r*64, 32)) {
			t.Fatalf("row %d mismatch", r)
		}
	}
}

func TestMemcpy2DAlignmentCliff(t *testing.T) {
	e, c := newCtx(t, 1)
	rows := int64(1024)
	d := c.Malloc(0, rows*8192)
	h := c.MallocHost(rows * 8192)
	var aligned, misaligned sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		t0 := p.Now()
		c.Memcpy2D(p, h, 4096, d, 8192, 4096, rows) // 4096 % 64 == 0
		aligned = p.Now() - t0
		t0 = p.Now()
		c.Memcpy2D(p, h, 4088, d, 8192, 4088, rows) // 4088 % 64 != 0
		misaligned = p.Now() - t0
	})
	e.Run()
	// Misaligned moves slightly fewer bytes but must be far slower.
	if misaligned < aligned*3 {
		t.Fatalf("no alignment cliff: aligned %v, misaligned %v", aligned, misaligned)
	}
}

func TestMemcpy2DSameDeviceNoCliff(t *testing.T) {
	e, c := newCtx(t, 1)
	rows := int64(1024)
	src := c.Malloc(0, rows*512)
	dst := c.Malloc(0, rows*512)
	var aligned, misaligned sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		t0 := p.Now()
		c.Memcpy2D(p, dst, 256, src, 512, 256, rows)
		aligned = p.Now() - t0
		t0 = p.Now()
		c.Memcpy2D(p, dst, 248, src, 512, 248, rows)
		misaligned = p.Now() - t0
	})
	e.Run()
	if misaligned > aligned*13/10 {
		t.Fatalf("unexpected d2d cliff: aligned %v, misaligned %v", aligned, misaligned)
	}
}

func TestIpcOpenCachesMapCost(t *testing.T) {
	e, cA := newCtx(t, 1)
	cB := NewCtx(cA.Node()) // second process, same node
	buf := cA.Malloc(0, 4096)
	mem.FillPattern(buf, 3)
	h := cA.IpcGetMemHandle(buf)
	var first, second sim.Time
	e.Spawn("peer", func(p *sim.Proc) {
		t0 := p.Now()
		m1, _ := cB.IpcOpenMemHandle(p, h)
		first = p.Now() - t0
		t0 = p.Now()
		m2, _ := cB.IpcOpenMemHandle(p, h)
		second = p.Now() - t0
		if !mem.Equal(m1, buf) || !mem.Equal(m2, buf) {
			t.Errorf("mapped buffer contents differ")
		}
	})
	e.Run()
	if first != cA.Node().Params().IPCMapCost {
		t.Fatalf("first open cost %v", first)
	}
	if second != 0 {
		t.Fatalf("second open cost %v, want cached 0", second)
	}
}

func TestMemcpyAsyncOverlapsWithHost(t *testing.T) {
	e, c := newCtx(t, 1)
	h := c.MallocHost(50 << 20)
	d := c.Malloc(0, 50<<20)
	var hostFree, done sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		s := c.Node().GPU(0).NewStream("s")
		f := c.MemcpyAsync(s, d, h)
		hostFree = p.Now()
		f.Await(p)
		done = p.Now()
	})
	e.Run()
	if hostFree != 0 {
		t.Fatalf("async memcpy blocked the host until %v", hostFree)
	}
	if done < sim.TimeForBytes(50<<20, c.Node().Params().RootGBps) {
		t.Fatalf("completed too fast: %v", done)
	}
}

func TestCrossNodeBufferPanics(t *testing.T) {
	e := sim.NewEngine()
	n0 := pcie.NewNode(e, 0, 1, gpu.KeplerK40(), pcie.DefaultParams())
	n1 := pcie.NewNode(e, 1, 1, gpu.KeplerK40(), pcie.DefaultParams())
	c := NewCtx(n0)
	foreign := n1.GPU(0).Mem().Alloc(16, 1)
	local := c.MallocHost(16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for cross-node buffer")
		}
	}()
	e.Spawn("host", func(p *sim.Proc) {
		c.Memcpy(p, local, foreign)
	})
	e.Run()
}

func TestMemcpy2DAsyncOnStream(t *testing.T) {
	e, c := newCtx(t, 1)
	d := c.Malloc(0, 1<<20)
	h := c.MallocHost(1 << 20)
	mem.FillPattern(d, 8)
	e.Spawn("host", func(p *sim.Proc) {
		s := c.Node().GPU(0).NewStream("s")
		f := c.Memcpy2DAsync(s, h, 1024, d, 2048, 1024, 512)
		f.Await(p)
	})
	e.Run()
	for r := int64(0); r < 512; r += 100 {
		if !mem.Equal(h.Slice(r*1024, 1024), d.Slice(r*2048, 1024)) {
			t.Fatalf("row %d mismatch", r)
		}
	}
}

func TestHostToHostMemcpy(t *testing.T) {
	e, c := newCtx(t, 1)
	a := c.MallocHost(1 << 20)
	b := c.MallocHost(1 << 20)
	mem.FillPattern(a, 12)
	e.Spawn("host", func(p *sim.Proc) { c.Memcpy(p, b, a) })
	e.Run()
	if !mem.Equal(a, b) {
		t.Fatal("host-host memcpy failed")
	}
}

func TestCopyOverlapsKernelAcrossStreams(t *testing.T) {
	// The paper's central overlap assumption: a PCIe copy on one stream
	// proceeds concurrently with a DRAM-bound kernel on another, so the
	// pair takes ~max, not the sum.
	e, c := newCtx(t, 1)
	d := c.Node().GPU(0)
	n := int64(64 << 20)
	host := c.MallocHost(n)
	dev := c.Malloc(0, n)
	src := c.Malloc(0, n)
	dst := c.Malloc(0, n)
	var both sim.Time
	e.Spawn("host", func(p *sim.Proc) {
		copyStream := d.NewStream("copy")
		kernStream := d.NewStream("kern")
		k := &gpu.Kernel{Kind: gpu.VectorKernel, Src: src, Dst: dst}
		for off := int64(0); off < n; off += 1 << 20 {
			k.Units = append(k.Units, gpu.Unit{SrcOff: off, DstOff: off, Len: 1 << 20})
		}
		t0 := p.Now()
		f1 := c.MemcpyAsync(copyStream, dev, host)
		f2 := d.Launch(kernStream, k)
		sim.AwaitAll(p, f1, f2)
		both = p.Now() - t0
	})
	e.Run()
	wire := sim.TimeForBytes(n, c.Node().Params().RootGBps) // ~6.7 ms
	kern := sim.TimeForBytes(2*n, 380*0.94)                 // ~0.38 ms
	if both > wire+kern/2 {
		t.Fatalf("no overlap: both=%v, wire=%v, kernel=%v", both, wire, kern)
	}
	if both < wire {
		t.Fatalf("faster than the wire: %v < %v", both, wire)
	}
}
