package shapes

import (
	"testing"

	"gpuddt/internal/datatype"
)

func TestSubMatrixIsVector(t *testing.T) {
	d := SubMatrix(4, 3, 8)
	v := d.Vector()
	if v == nil || v.Count != 3 || v.BlockLen != 32 || v.Stride != 64 {
		t.Fatalf("view = %+v", v)
	}
	if d.Size() != 4*3*8 {
		t.Fatalf("size = %d", d.Size())
	}
}

func TestLowerTriangularSize(t *testing.T) {
	n := 6
	d := LowerTriangular(n)
	want := int64(n*(n+1)/2) * 8
	if d.Size() != want {
		t.Fatalf("size = %d, want %d", d.Size(), want)
	}
	if d.Vector() != nil {
		t.Fatal("triangle must not be a vector")
	}
	if d.NumBlocks() != n {
		t.Fatalf("blocks = %d", d.NumBlocks())
	}
}

func TestStairTriangularCoversTriangle(t *testing.T) {
	n, nb := 8, 4
	tri := LowerTriangular(n)
	stair := StairTriangular(n, nb)
	// The stair contains the triangle (plus the green cells of Fig. 5).
	if stair.Size() < tri.Size() {
		t.Fatalf("stair %d < triangle %d", stair.Size(), tri.Size())
	}
	// Expected size: group g (columns g*nb..g*nb+nb-1) keeps n - g*nb
	// elements per column.
	var want int64
	for i := 0; i < n; i++ {
		want += int64(n-i/nb*nb) * 8
	}
	if stair.Size() != want {
		t.Fatalf("stair size = %d, want %d", stair.Size(), want)
	}
	// The first stair group's full-height columns merge into one
	// contiguous block; later groups stay one block per column.
	flat := stair.Flat()
	if flat[0].Len != int64(nb*n)*8 {
		t.Fatalf("first group block len = %d", flat[0].Len)
	}
	if len(flat) != 1+(n-nb) {
		t.Fatalf("blocks = %d", len(flat))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-dividing nb")
		}
	}()
	StairTriangular(8, 3)
}

func TestTransposeLayout(t *testing.T) {
	n := 3
	d := Transpose(n)
	// Packed element k must come from memory element (k%n)*n + k/n.
	c := datatype.NewConverter(d, 1)
	if c.Total() != int64(n*n*8) {
		t.Fatalf("total = %d", c.Total())
	}
	k := 0
	c.Advance(c.Total(), func(memOff, packOff, l int64) {
		for b := int64(0); b < l; b += 8 {
			e := memOff + b
			row := k / n
			col := k % n
			if want := int64(col*n+row) * 8; e != want {
				t.Fatalf("packed elem %d from mem %d, want %d", k, e, want)
			}
			k++
		}
	})
	if k != n*n {
		t.Fatalf("visited %d elements", k)
	}
}

func TestHaloColumn(t *testing.T) {
	d := HaloColumn(4)
	v := d.Vector()
	if v == nil || v.Count != 4 || v.BlockLen != 8 || v.Stride != 6*8 {
		t.Fatalf("view = %+v", v)
	}
}

func TestParticleIndices(t *testing.T) {
	d := ParticleIndices([]int{0, 3, 7}, 5)
	if d.Size() != 3*5*8 {
		t.Fatalf("size = %d", d.Size())
	}
	flat := d.Flat()
	if len(flat) != 3 || flat[1].Off != 3*5*8 || flat[1].Len != 40 {
		t.Fatalf("flat = %v", flat)
	}
	// Adjacent indices merge.
	m := ParticleIndices([]int{2, 3}, 4)
	if m.NumBlocks() != 1 {
		t.Fatalf("adjacent records not merged: %v", m.Flat())
	}
}
