package shapes

import (
	"bytes"
	"testing"

	"gpuddt/internal/datatype"
)

func TestSubMatrixIsVector(t *testing.T) {
	d := SubMatrix(4, 3, 8)
	v := d.Vector()
	if v == nil || v.Count != 3 || v.BlockLen != 32 || v.Stride != 64 {
		t.Fatalf("view = %+v", v)
	}
	if d.Size() != 4*3*8 {
		t.Fatalf("size = %d", d.Size())
	}
}

func TestLowerTriangularSize(t *testing.T) {
	n := 6
	d := LowerTriangular(n)
	want := int64(n*(n+1)/2) * 8
	if d.Size() != want {
		t.Fatalf("size = %d, want %d", d.Size(), want)
	}
	if d.Vector() != nil {
		t.Fatal("triangle must not be a vector")
	}
	if d.NumBlocks() != n {
		t.Fatalf("blocks = %d", d.NumBlocks())
	}
}

func TestStairTriangularCoversTriangle(t *testing.T) {
	n, nb := 8, 4
	tri := LowerTriangular(n)
	stair := StairTriangular(n, nb)
	// The stair contains the triangle (plus the green cells of Fig. 5).
	if stair.Size() < tri.Size() {
		t.Fatalf("stair %d < triangle %d", stair.Size(), tri.Size())
	}
	// Expected size: group g (columns g*nb..g*nb+nb-1) keeps n - g*nb
	// elements per column.
	var want int64
	for i := 0; i < n; i++ {
		want += int64(n-i/nb*nb) * 8
	}
	if stair.Size() != want {
		t.Fatalf("stair size = %d, want %d", stair.Size(), want)
	}
	// The first stair group's full-height columns merge into one
	// contiguous block; later groups stay one block per column.
	flat := stair.Flat()
	if flat[0].Len != int64(nb*n)*8 {
		t.Fatalf("first group block len = %d", flat[0].Len)
	}
	if len(flat) != 1+(n-nb) {
		t.Fatalf("blocks = %d", len(flat))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-dividing nb")
		}
	}()
	StairTriangular(8, 3)
}

func TestTransposeLayout(t *testing.T) {
	n := 3
	d := Transpose(n)
	// Packed element k must come from memory element (k%n)*n + k/n.
	c := datatype.NewConverter(d, 1)
	if c.Total() != int64(n*n*8) {
		t.Fatalf("total = %d", c.Total())
	}
	k := 0
	c.Advance(c.Total(), func(memOff, packOff, l int64) {
		for b := int64(0); b < l; b += 8 {
			e := memOff + b
			row := k / n
			col := k % n
			if want := int64(col*n+row) * 8; e != want {
				t.Fatalf("packed elem %d from mem %d, want %d", k, e, want)
			}
			k++
		}
	})
	if k != n*n {
		t.Fatalf("visited %d elements", k)
	}
}

func TestHaloColumn(t *testing.T) {
	d := HaloColumn(4)
	v := d.Vector()
	if v == nil || v.Count != 4 || v.BlockLen != 8 || v.Stride != 6*8 {
		t.Fatalf("view = %+v", v)
	}
}

func TestParticleIndices(t *testing.T) {
	d := ParticleIndices([]int{0, 3, 7}, 5)
	if d.Size() != 3*5*8 {
		t.Fatalf("size = %d", d.Size())
	}
	flat := d.Flat()
	if len(flat) != 3 || flat[1].Off != 3*5*8 || flat[1].Len != 40 {
		t.Fatalf("flat = %v", flat)
	}
	// Adjacent indices merge.
	m := ParticleIndices([]int{2, 3}, 4)
	if m.NumBlocks() != 1 {
		t.Fatalf("adjacent records not merged: %v", m.Flat())
	}
}

// TestHaloFaceSelectsPlane packs a padded 3D array through HaloFace
// types and checks each face selects exactly the expected cells: full
// padded extent before the face dimension, interior after it.
func TestHaloFaceSelectsPlane(t *testing.T) {
	padded := []int{4, 5, 6}
	src := make([]byte, 4*5*6*8)
	for i := range src {
		src[i] = byte(i % 251)
	}
	at := func(i, j, k int) int { return ((i*5+j)*6 + k) * 8 }
	for dim := 0; dim < 3; dim++ {
		for _, idx := range []int{0, 1, padded[dim] - 2, padded[dim] - 1} {
			dt := HaloFace(padded, dim, idx)
			cells := HaloFaceCells(padded, dim)
			if dt.Size() != int64(cells)*8 {
				t.Fatalf("dim %d: size %d, want %d cells", dim, dt.Size(), cells)
			}
			var want []byte
			rng := func(d int) (int, int) {
				switch {
				case d == dim:
					return idx, idx + 1
				case d < dim:
					return 0, padded[d]
				default:
					return 1, padded[d] - 1
				}
			}
			i0, i1 := rng(0)
			j0, j1 := rng(1)
			k0, k1 := rng(2)
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					for k := k0; k < k1; k++ {
						want = append(want, src[at(i, j, k):at(i, j, k)+8]...)
					}
				}
			}
			got := make([]byte, dt.Size())
			datatype.NewConverter(dt, 1).Pack(got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("dim %d idx %d: packed face differs", dim, idx)
			}
		}
	}
}
