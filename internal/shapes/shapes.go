// Package shapes builds the derived datatypes used throughout the
// paper's evaluation (§5): column-major sub-matrices (vector), lower
// triangular matrices (indexed), the stair-shaped triangular variant of
// Fig. 5, the transposed-matrix view of §5.2.3, and the halo-exchange
// and particle-index layouts of the motivation section.
//
// All matrix types are column-major over float64 elements, matching the
// ScaLAPACK convention the paper uses.
package shapes

import "gpuddt/internal/datatype"

// ElemSize is the element size used by the matrix workloads.
const ElemSize = 8 // float64

// SubMatrix returns the datatype of an rows x cols sub-matrix inside a
// column-major matrix with leading dimension ld: cols blocks of rows
// doubles, strided by ld (the paper's vector type "V").
func SubMatrix(rows, cols, ld int) *datatype.Datatype {
	return datatype.Vector(cols, rows, ld, datatype.Float64)
}

// FullMatrix returns the contiguous datatype of an n x n column-major
// matrix (the paper's "C" comparison type).
func FullMatrix(n int) *datatype.Datatype {
	return datatype.Contiguous(n*n, datatype.Float64)
}

// LowerTriangular returns the indexed datatype of the lower triangle of
// an n x n column-major matrix: column i keeps elements i..n-1, so block
// i has length n-i at element displacement i*n+i (the paper's "T").
func LowerTriangular(n int) *datatype.Datatype {
	bl := make([]int, n)
	displs := make([]int, n)
	for i := 0; i < n; i++ {
		bl[i] = n - i
		displs[i] = i*n + i
	}
	return datatype.Indexed(bl, displs, datatype.Float64)
}

// StairTriangular returns the stair-shaped triangular matrix of Fig. 5:
// the triangle boundary moves in steps of nb rows/columns so that every
// column in a stair group has the same length and block starts stay
// aligned, eliminating the occupancy loss of the ragged triangle. nb
// must divide n.
func StairTriangular(n, nb int) *datatype.Datatype {
	if nb <= 0 || n%nb != 0 {
		panic("shapes: stair size must divide n")
	}
	bl := make([]int, n)
	displs := make([]int, n)
	for i := 0; i < n; i++ {
		stair := i / nb * nb // top of the stair for this column group
		bl[i] = n - stair
		displs[i] = i*n + stair
	}
	return datatype.Indexed(bl, displs, datatype.Float64)
}

// Transpose returns the datatype describing an n x n column-major matrix
// traversed in transposed order: the k-th packed element is A[k/n, k%n].
// Each transposed column (= original row) is a vector of n single
// elements strided by the leading dimension; the whole view is n such
// vectors, resized so consecutive rows interleave (§5.2.3's stress test).
func Transpose(n int) *datatype.Datatype {
	row := datatype.Vector(n, 1, n, datatype.Float64) // one original row
	// Consecutive packed rows start one element apart.
	return datatype.Contiguous(n, datatype.Resized(row, 0, ElemSize))
}

// HaloColumn returns the datatype of one non-contiguous boundary column
// of an n x n row-major 2D stencil grid with halo width 1 (SHOC-style):
// n interior elements strided by the padded row length n+2.
func HaloColumn(n int) *datatype.Datatype {
	return datatype.Vector(n, 1, n+2, datatype.Float64)
}

// ParticleIndices returns the indexed datatype selecting the given
// particle slots (each a contiguous record of recordElems doubles) from
// a particle array, LAMMPS-style.
func ParticleIndices(indices []int, recordElems int) *datatype.Datatype {
	rec := datatype.Contiguous(recordElems, datatype.Float64)
	bl := make([]int, len(indices))
	displs := make([]int, len(indices))
	for i, idx := range indices {
		bl[i] = 1
		displs[i] = idx
	}
	return datatype.Indexed(bl, displs, rec)
}

// MatrixBytes returns the byte size of a full n x n float64 matrix.
func MatrixBytes(n int) int64 { return int64(n) * int64(n) * ElemSize }

// HaloFace returns the subarray datatype selecting the width-1 plane at
// index idx along dim of a padded C-order float64 array (interior cells
// plus a one-cell halo shell per dimension). The plane spans the *full*
// padded extent of every dimension before dim and only the interior of
// every dimension after it: a dimension-ordered halo exchange (sweep
// dim 0, then 1, ...) that uses these faces propagates already-received
// halo cells onward, so edge and corner neighbours arrive without
// diagonal messages — the standard trick stencil codes build from
// MPI_Type_create_subarray.
func HaloFace(padded []int, dim, idx int) *datatype.Datatype {
	sub := make([]int, len(padded))
	starts := make([]int, len(padded))
	for d := range padded {
		switch {
		case d == dim:
			sub[d], starts[d] = 1, idx
		case d < dim:
			sub[d], starts[d] = padded[d], 0
		default:
			sub[d], starts[d] = padded[d]-2, 1
		}
	}
	return datatype.Subarray(padded, sub, starts, datatype.OrderC, datatype.Float64)
}

// HaloFaceCells returns the number of cells a HaloFace plane carries.
func HaloFaceCells(padded []int, dim int) int {
	cells := 1
	for d := range padded {
		switch {
		case d == dim:
		case d < dim:
			cells *= padded[d]
		default:
			cells *= padded[d] - 2
		}
	}
	return cells
}
