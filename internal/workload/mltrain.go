package workload

import (
	"crypto/sha256"
	"fmt"
	"math"
	"math/rand"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mpi"
)

// MLTrain is the data-parallel training family: per step, a backward
// pass (modelled compute) produces per-layer gradients whose sizes
// follow a log-normal distribution; gradients are greedily fused into
// buckets and allreduced over the job group (ring or tree), exactly the
// fusion-buffer batching of DDP/Horovod. An optional MoE phase routes
// tokens to expert ranks through a sparse Alltoallv with a skewed,
// seeded count matrix (hot experts, silent ranks).
type MLTrain struct {
	Layers   int     // gradient tensors per step (default 24)
	MeanKB   float64 // log-normal location of layer sizes (default 96 KB)
	Sigma    float64 // log-normal shape (default 1.2)
	FusionKB int     // fusion-buffer cap (default 256 KB)
	Iters    int     // training steps (default 2)
	Alg      mpi.AllreduceAlg

	// MoETokens is the mean token count each rank routes per step; 0
	// disables the MoE phase. Hidden is the token record size in
	// float64s (default 64).
	MoETokens int
	Hidden    int
}

func (t MLTrain) withDefaults() MLTrain {
	if t.Layers == 0 {
		t.Layers = 24
	}
	if t.MeanKB == 0 {
		t.MeanKB = 96
	}
	if t.Sigma == 0 {
		t.Sigma = 1.2
	}
	if t.FusionKB == 0 {
		t.FusionKB = 256
	}
	if t.Iters == 0 {
		t.Iters = 2
	}
	if t.Hidden == 0 {
		t.Hidden = 64
	}
	return t
}

// Name is "ml-ring" or "ml-tree" after the allreduce schedule.
func (t MLTrain) Name() string { return "ml-" + t.Alg.String() }

// GradSizes returns the seeded per-layer gradient sizes in float64
// elements: exp-of-normal around meanKB with shape sigma, clamped to
// [32, 1M] elements — a handful of huge embedding-like tensors over a
// long tail of small ones.
func GradSizes(seed uint64, layers int, meanKB, sigma float64) []int {
	rng := rand.New(rand.NewSource(int64(seed)))
	sizes := make([]int, layers)
	for l := range sizes {
		kb := math.Exp(rng.NormFloat64()*sigma + math.Log(meanKB))
		elems := int(kb * 1024 / 8)
		if elems < 32 {
			elems = 32
		}
		if elems > 1<<20 {
			elems = 1 << 20
		}
		sizes[l] = elems
	}
	return sizes
}

// FuseBuckets greedily packs layer sizes into fusion buckets of at most
// capElems elements (a layer larger than the cap gets its own bucket),
// returning the bucket sizes in element counts.
func FuseBuckets(sizes []int, capElems int) []int {
	var buckets []int
	cur := 0
	for _, s := range sizes {
		if cur > 0 && cur+s > capElems {
			buckets = append(buckets, cur)
			cur = 0
		}
		cur += s
	}
	if cur > 0 {
		buckets = append(buckets, cur)
	}
	return buckets
}

// MoECounts builds the expert-routing count matrix for one step:
// counts[i][j] tokens flow from rank i to expert rank j. The
// distribution is deliberately skewed — one hot expert absorbs about
// half of all traffic, and roughly one rank in eight routes nothing
// this step (zero-expert rows) — the shapes that break naive uniform
// alltoall tuning. Exported so the conformance fuzzer can replay these
// matrices through the v-variant oracle.
func MoECounts(seed uint64, size, meanTokens, step int) [][]int {
	rng := rand.New(rand.NewSource(int64(mix(seed, uint64(step), 0x40e)))) //nolint:gosec
	counts := make([][]int, size)
	for i := range counts {
		counts[i] = make([]int, size)
	}
	if size == 0 || meanTokens <= 0 {
		return counts
	}
	hot := rng.Intn(size)
	for i := 0; i < size; i++ {
		if rng.Intn(8) == 0 {
			continue // silent rank this step
		}
		tokens := meanTokens/2 + rng.Intn(meanTokens+1)
		for t := 0; t < tokens; t++ {
			if rng.Intn(2) == 0 {
				counts[i][hot]++
			} else {
				counts[i][rng.Intn(size)]++
			}
		}
	}
	return counts
}

// gradWord is the integer-valued contribution of group member lr to
// element k of bucket b in step it: integer floats keep the sum exact
// under any association order, so ring, tree and hierarchical schedules
// must agree bit-for-bit.
func gradWord(lr, it, b, k int) float64 {
	return float64((k+13*b+7*it)%23+1) * float64(lr+1)
}

// tokenWord is element e of the t-th token sent from member s to expert
// d in step it.
func tokenWord(seed uint64, s, d, it, t, e int) uint64 {
	return mix(seed, uint64(s), uint64(d), uint64(it), uint64(t), uint64(e))
}

// Instance allocates the fusion buffers and binds the generators.
func (t MLTrain) Instance(rc RunContext) (Instance, error) {
	t = t.withDefaults()
	sizes := GradSizes(rc.Seed, t.Layers, t.MeanKB, t.Sigma)
	buckets := FuseBuckets(sizes, t.FusionKB*1024/8)
	return &mlInstance{cfg: t, rc: rc, buckets: buckets}, nil
}

type mlInstance struct {
	cfg     MLTrain
	rc      RunContext
	buckets []int
}

func (in *mlInstance) Run(m *mpi.Rank) ([]byte, error) {
	g := in.rc.Group
	lr := g.LocalRank(m)
	size := g.Size()
	sum := size * (size + 1) / 2 // sum of (member+1) over the group

	maxB := 0
	total := 0
	for _, b := range in.buckets {
		total += b
		if b > maxB {
			maxB = b
		}
	}
	send := m.Malloc(int64(maxB) * 8)
	recv := m.Malloc(int64(maxB) * 8)
	dev := m.Engine().Device()
	h := sha256.New()

	for it := 0; it < in.cfg.Iters; it++ {
		// Backward pass: a memory-bound kernel over the full gradient
		// set before its buckets become ready.
		dev.Compute(m.Engine().Stream(), int64(total)*8*2, 0).Await(m.Proc())

		for b, elems := range in.buckets {
			raw := send.Bytes()
			for k := 0; k < elems; k++ {
				putWord(raw, 8*k, math.Float64bits(gradWord(lr, it, b, k)))
			}
			g.Allreduce(m, send, recv, datatype.Float64, elems, mpi.OpSum, in.cfg.Alg)
			rraw := recv.Bytes()
			for k := 0; k < elems; k++ {
				want := float64((k+13*b+7*it)%23+1) * float64(sum)
				if got := math.Float64frombits(getWord(rraw, 8*k)); got != want {
					return nil, fmt.Errorf("ml: step %d bucket %d elem %d = %v, want %v", it, b, k, got, want)
				}
			}
			h.Write(rraw[:elems*8])
		}

		if in.cfg.MoETokens > 0 {
			if err := in.moeStep(m, it, h); err != nil {
				return nil, err
			}
		}
	}
	return h.Sum(nil), nil
}

// moeStep routes this step's tokens through the group Alltoallv and
// verifies every received token against the sender's generator.
func (in *mlInstance) moeStep(m *mpi.Rank, it int, h interface{ Write(p []byte) (int, error) }) error {
	g := in.rc.Group
	lr := g.LocalRank(m)
	size := g.Size()
	hid := in.cfg.Hidden
	counts := MoECounts(in.rc.Seed, size, in.cfg.MoETokens, it)

	scounts := make([]int, size) // in tokens
	rcounts := make([]int, size)
	sdispls := make([]int, size)
	rdispls := make([]int, size)
	stot, rtot := 0, 0
	for j := 0; j < size; j++ {
		scounts[j] = counts[lr][j]
		rcounts[j] = counts[j][lr]
		sdispls[j] = stot
		rdispls[j] = rtot
		stot += scounts[j]
		rtot += rcounts[j]
	}

	token := datatype.Contiguous(hid, datatype.Float64)
	send := m.Malloc(int64(stot)*token.Size() + 8)
	recv := m.Malloc(int64(rtot)*token.Size() + 8)
	raw := send.Bytes()
	for j := 0; j < size; j++ {
		for t := 0; t < scounts[j]; t++ {
			base := (sdispls[j] + t) * hid * 8
			for e := 0; e < hid; e++ {
				putWord(raw, base+8*e, tokenWord(in.rc.Seed, lr, j, it, t, e))
			}
		}
	}
	g.Alltoallv(m, send, scounts, sdispls, token, recv, rcounts, rdispls, token)
	rraw := recv.Bytes()
	for j := 0; j < size; j++ {
		for t := 0; t < rcounts[j]; t++ {
			base := (rdispls[j] + t) * hid * 8
			for e := 0; e < hid; e++ {
				if got, want := getWord(rraw, base+8*e), tokenWord(in.rc.Seed, j, lr, it, t, e); got != want {
					return fmt.Errorf("moe: step %d from %d token %d word %d = %x, want %x", it, j, t, e, got, want)
				}
			}
		}
	}
	h.Write(rraw[:rtot*hid*8])
	return nil
}

var _ Workload = MLTrain{}
