package workload

import (
	"bytes"
	"fmt"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mpi"
	"gpuddt/internal/mpiio"
)

// Checkpoint is the defensive-I/O family: every iteration runs the
// application kernel and a ring exchange with both neighbours (the
// ongoing compute traffic), and every Interval iterations the whole job
// writes its GPU state collectively through internal/mpiio into one
// striped checkpoint file. The file's stripes interleave all ranks in
// chunk-sized blocks (a Vector filetype view), the collective epoch
// closes with a *group* barrier, and all jobs of a run share one
// storage link — so two co-scheduled jobs' checkpoint bursts contend
// for aggregate file-system bandwidth exactly when they collide.
type Checkpoint struct {
	StateKB  int // per-rank device state (default 256)
	ChunkKB  int // stripe chunk (default 4)
	Iters    int // iterations (default 4)
	Interval int // checkpoint every Interval iterations (default 2)
	HaloKB   int // per-iteration ring message (default 32)
}

func (c Checkpoint) Name() string { return "checkpoint" }

func (c Checkpoint) withDefaults() Checkpoint {
	if c.StateKB == 0 {
		c.StateKB = 256
	}
	if c.ChunkKB == 0 {
		c.ChunkKB = 4
	}
	if c.Iters == 0 {
		c.Iters = 4
	}
	if c.Interval == 0 {
		c.Interval = 2
	}
	if c.HaloKB == 0 {
		c.HaloKB = 32
	}
	return c
}

// Instance opens the job's striped checkpoint file on the run's shared
// storage link.
func (c Checkpoint) Instance(rc RunContext) (Instance, error) {
	c = c.withDefaults()
	if c.StateKB%c.ChunkKB != 0 {
		return nil, fmt.Errorf("checkpoint: state %d KB not divisible by chunk %d KB", c.StateKB, c.ChunkKB)
	}
	g := rc.Group
	f := mpiio.Open(rc.World, rc.Job+".ckpt", int64(g.Size())*int64(c.StateKB)*1024, mpiio.Params{
		Link:    rc.FS,
		Barrier: func(m *mpi.Rank) { g.Barrier(m) },
	})
	return &ckptInstance{cfg: c, rc: rc, file: f}, nil
}

type ckptInstance struct {
	cfg  Checkpoint
	rc   RunContext
	file *mpiio.File
}

// stateWord is word w of member lr's state as of checkpoint step it.
func (in *ckptInstance) stateWord(lr, it, w int) uint64 {
	return mix(in.rc.Seed, uint64(lr), uint64(it), uint64(w))
}

func (in *ckptInstance) Run(m *mpi.Rank) ([]byte, error) {
	g := in.rc.Group
	lr := g.LocalRank(m)
	size := g.Size()
	stateB := int64(in.cfg.StateKB) * 1024
	chunkB := int64(in.cfg.ChunkKB) * 1024
	haloB := int64(in.cfg.HaloKB) * 1024

	state := m.Malloc(stateB)
	ringOut := m.Malloc(haloB)
	ringIn := m.Malloc(haloB)
	dev := m.Engine().Device()

	// My view: chunk lr, then every size-th chunk (MPI_File_set_view
	// with a strided Vector filetype).
	chunks := int(stateB / chunkB)
	ft := datatype.Vector(chunks, int(chunkB), size*int(chunkB), datatype.Byte)
	in.file.SetView(m, int64(lr)*chunkB, ft)

	stateDT := datatype.Contiguous(int(stateB), datatype.Byte)
	lastCkpt := -1
	for it := 0; it < in.cfg.Iters; it++ {
		// Application step: kernel plus ring halo with both neighbours.
		dev.Compute(m.Engine().Stream(), stateB*2, 0).Await(m.Proc())
		raw := ringOut.Bytes()
		for w := int64(0); w+8 <= haloB; w += 8 {
			putWord(raw, int(w), mix(in.rc.Seed, uint64(lr), uint64(it), 0x4a1^uint64(w)))
		}
		right := (lr + 1) % size
		left := (lr - 1 + size) % size
		g.SendRecvLocal(m, ringOut, datatype.Byte, int(haloB), right, ringIn, datatype.Byte, int(haloB), left)
		rr := ringIn.Bytes()
		for w := int64(0); w+8 <= haloB; w += 8 {
			if got, want := getWord(rr, int(w)), mix(in.rc.Seed, uint64(left), uint64(it), 0x4a1^uint64(w)); got != want {
				return nil, fmt.Errorf("checkpoint: ring step %d word %d = %x, want %x", it, w/8, got, want)
			}
		}

		if (it+1)%in.cfg.Interval == 0 || it == in.cfg.Iters-1 {
			sraw := state.Bytes()
			for w := int64(0); w+8 <= stateB; w += 8 {
				putWord(sraw, int(w), in.stateWord(lr, it, int(w/8)))
			}
			in.file.WriteAll(m, state, stateDT, 1)
			lastCkpt = it
		}
	}
	g.Barrier(m)

	// My stripes of the shared file must hold my state as of the last
	// checkpoint.
	img := make([]byte, stateB)
	fileBytes := in.file.Bytes()
	for c := 0; c < chunks; c++ {
		off := int64(c)*int64(size)*chunkB + int64(lr)*chunkB
		copy(img[int64(c)*chunkB:], fileBytes[off:off+chunkB])
	}
	want := make([]byte, stateB)
	for w := int64(0); w+8 <= stateB; w += 8 {
		putWord(want, int(w), in.stateWord(lr, lastCkpt, int(w/8)))
	}
	if !bytes.Equal(img, want) {
		return nil, fmt.Errorf("checkpoint: rank %d stripes differ from state at step %d", lr, lastCkpt)
	}
	return img, nil
}

var _ Workload = Checkpoint{}
