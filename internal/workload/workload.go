// Package workload is the application-traffic layer on top of
// cluster.Spec: seeded deterministic generators that drive the MPI
// stack with application-shaped communication instead of uniform
// synthetic sweeps. Three families — ML training (ring/tree allreduce
// over log-normal gradient buckets plus MoE-style sparse Alltoallv),
// stencil halo exchange (2D/3D domains whose faces are real subarray
// datatypes), and checkpoint bursts (collective writes through
// internal/mpiio contending with compute traffic) — plus a multi-job
// interference harness that co-schedules two jobs on one oversubscribed
// fat tree and reports per-job slowdown against running alone.
//
// Every workload is a generator, not a replayed trace: an instance
// derives all payload from (seed, rank, iteration), verifies every
// received byte against the same generator on the receiving side, and
// returns a per-rank result image folded into a job digest — so every
// benchmark point in BENCH_apps.json is payload-verified, and a
// co-scheduled run must produce byte-identical job digests to the same
// job running alone (contention may move time, never data).
package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"

	"gpuddt/internal/mpi"
	"gpuddt/internal/sim"
)

// RunContext binds a workload to one concrete run: the world it
// executes in, the group of ranks forming its job, the job's payload
// seed, and the run-wide shared storage link.
type RunContext struct {
	World *mpi.World
	Group *mpi.Group
	Job   string
	Seed  uint64

	// FS is the shared file-system link of the run: every job
	// checkpoints through the same aggregate storage bandwidth, so
	// co-scheduled I/O bursts contend like they would on a real
	// parallel file system.
	FS *sim.Link
}

// Workload is one application traffic family. Implementations are pure
// descriptions (safe to reuse across runs); all per-run state lives in
// the Instance.
type Workload interface {
	Name() string

	// Instance binds the workload to a run. Called once per job before
	// World.Run; the returned Instance is shared by the job's ranks.
	Instance(rc RunContext) (Instance, error)
}

// Instance is a workload bound to one run.
type Instance interface {
	// Run executes the job body on member m and returns m's verified
	// result image (folded into the job digest), or an error if any
	// received byte disagrees with the generator.
	Run(m *mpi.Rank) ([]byte, error)
}

// JobSpec names one job of a run: a workload, its payload seed, and the
// global ranks it owns.
type JobSpec struct {
	Name  string
	W     Workload
	Seed  uint64
	Ranks []int
}

// JobResult is one job's outcome within a run.
type JobResult struct {
	Job       string  `json:"job"`
	Workload  string  `json:"workload"`
	Ranks     int     `json:"ranks"`
	ElapsedUs float64 `json:"elapsed_us"`
	Digest    string  `json:"digest"`
}

// Options tunes a run.
type Options struct {
	// Trace attaches a span recorder to the run's engine.
	Trace bool

	// FSGBps is the shared file-system bandwidth (default 3).
	FSGBps float64
}

// Run builds a world from cfg and executes every job whose entry in
// active is true (active == nil runs all). Inactive jobs' ranks exist
// in the world — same fabric, same placements, zero traffic — which is
// exactly the "running alone" baseline of the interference studies:
// the measured job sees the identical machine minus the contention.
//
// Groups are created for every job, active or not, so a job's
// collective tag block never depends on which other jobs run: the same
// job produces a byte-identical schedule alone and co-scheduled.
// Results are returned for active jobs in job order.
func Run(cfg mpi.Config, jobs []JobSpec, active []bool, opt Options) ([]JobResult, *sim.Recorder, error) {
	if active == nil {
		active = make([]bool, len(jobs))
		for j := range active {
			active[j] = true
		}
	}
	if len(active) != len(jobs) {
		return nil, nil, fmt.Errorf("workload: %d active flags for %d jobs", len(active), len(jobs))
	}
	jobOf := make([]int, len(cfg.Ranks))
	for i := range jobOf {
		jobOf[i] = -1
	}
	for j, job := range jobs {
		for _, r := range job.Ranks {
			if r < 0 || r >= len(cfg.Ranks) {
				return nil, nil, fmt.Errorf("workload: job %q rank %d out of range", job.Name, r)
			}
			if jobOf[r] != -1 {
				return nil, nil, fmt.Errorf("workload: rank %d claimed by two jobs", r)
			}
			jobOf[r] = j
		}
	}

	fsGBps := opt.FSGBps
	if fsGBps == 0 {
		fsGBps = 3
	}

	w := mpi.NewWorld(cfg)
	defer w.Close()
	var rec *sim.Recorder
	if opt.Trace {
		rec = sim.NewRecorder(w.Engine())
	}
	fs := w.Engine().NewLink("fs:shared", fsGBps, 100*sim.Microsecond)

	groups := make([]*mpi.Group, len(jobs))
	insts := make([]Instance, len(jobs))
	for j, job := range jobs {
		groups[j] = w.NewGroup(job.Ranks)
		if !active[j] {
			continue
		}
		inst, err := job.W.Instance(RunContext{
			World: w, Group: groups[j], Job: job.Name, Seed: job.Seed, FS: fs,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("workload: job %q: %w", job.Name, err)
		}
		insts[j] = inst
	}

	size := len(cfg.Ranks)
	starts := make([]sim.Time, size)
	ends := make([]sim.Time, size)
	imgs := make([][]byte, size)
	errs := make([]error, size)
	w.Run(func(m *mpi.Rank) {
		j := jobOf[m.Rank()]
		if j < 0 || !active[j] {
			return
		}
		g := groups[j]
		g.Barrier(m) // align the job's start line
		starts[m.Rank()] = m.Now()
		img, err := insts[j].Run(m)
		ends[m.Rank()] = m.Now()
		imgs[m.Rank()] = img
		errs[m.Rank()] = err
	})

	var out []JobResult
	for j, job := range jobs {
		if !active[j] {
			continue
		}
		h := sha256.New()
		var first, last sim.Time
		for i, r := range job.Ranks {
			if errs[r] != nil {
				return nil, nil, fmt.Errorf("workload: job %q rank %d: %w", job.Name, r, errs[r])
			}
			h.Write(imgs[r])
			if i == 0 || starts[r] < first {
				first = starts[r]
			}
			if ends[r] > last {
				last = ends[r]
			}
		}
		out = append(out, JobResult{
			Job:       job.Name,
			Workload:  job.W.Name(),
			Ranks:     len(job.Ranks),
			ElapsedUs: sim.Time(last - first).Micros(),
			Digest:    hex.EncodeToString(h.Sum(nil)),
		})
	}
	return out, rec, nil
}

// GroupOf maps recorder track names to process-group labels for
// trace.WriteChromeGrouped: rank tracks land under their job's name,
// everything else (links, switches, GPU streams) under "fabric".
func GroupOf(jobs []JobSpec) func(track string) string {
	byRank := map[int]string{}
	for _, job := range jobs {
		for _, r := range job.Ranks {
			byRank[r] = "job:" + job.Name
		}
	}
	return func(track string) string {
		if !strings.HasPrefix(track, "rank") {
			return "fabric"
		}
		n := 0
		ok := false
		for _, c := range track[len("rank"):] {
			if c < '0' || c > '9' {
				break
			}
			n = n*10 + int(c-'0')
			ok = true
		}
		if !ok {
			return "fabric"
		}
		if label, found := byRank[n]; found {
			return label
		}
		return "idle"
	}
}

// CountSpans counts spans with the given name whose detail contains
// substr, across every track of the recorder — how the benchmarks
// assert that e.g. the halo path really moved subarray datatypes.
func CountSpans(rec *sim.Recorder, name, substr string) int {
	n := 0
	for _, t := range rec.Tracks() {
		for i := range t.Spans {
			sp := &t.Spans[i]
			if sp.Name == name && strings.Contains(sp.Detail, substr) {
				n++
			}
		}
	}
	return n
}

// splitmix64 is the 64-bit mixer the generators derive payload from:
// every word of application data is mix(seed, coordinates...), so both
// sides of any exchange can compute the expected bytes independently.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds the given values into one seeded word.
func mix(seed uint64, vs ...uint64) uint64 {
	x := splitmix64(seed)
	for _, v := range vs {
		x = splitmix64(x ^ v)
	}
	return x
}

// putWord writes word w at byte offset off.
func putWord(raw []byte, off int, w uint64) { binary.LittleEndian.PutUint64(raw[off:], w) }

// getWord reads the word at byte offset off.
func getWord(raw []byte, off int) uint64 { return binary.LittleEndian.Uint64(raw[off:]) }
