package workload

import (
	"fmt"

	"gpuddt/internal/cluster"
	"gpuddt/internal/sim"
)

// StudyJob names one job of an interference study.
type StudyJob struct {
	Name string
	W    Workload
	Seed uint64
}

// Study describes a multi-job interference experiment: the jobs are
// co-scheduled on one fat-tree cluster under a placement policy, run
// together, and then each runs alone on the *same* machine (identical
// placements, the other job's ranks idle) — so per-job slowdown is pure
// fabric/storage contention, and each job's payload digest must be
// byte-identical in both runs.
type Study struct {
	Nodes        int
	GPUsPerNode  int
	RanksPerNode int
	Oversub      int
	RanksPerJob  int
	Policy       cluster.Policy
	Jobs         []StudyJob
	FSGBps       float64
	Trace        bool // trace the together-run
}

// JobOutcome is one job's measurements within a study.
type JobOutcome struct {
	Job         string  `json:"job"`
	Workload    string  `json:"workload"`
	Ranks       int     `json:"ranks"`
	AloneUs     float64 `json:"alone_us"`
	TogetherUs  float64 `json:"together_us"`
	Slowdown    float64 `json:"slowdown"`
	Digest      string  `json:"digest"`
	DigestMatch bool    `json:"digest_match"` // alone digest == together digest
}

// StudyResult is one interference point of BENCH_apps.json.
type StudyResult struct {
	Policy       string       `json:"policy"`
	Nodes        int          `json:"nodes"`
	RanksPerNode int          `json:"ranks_per_node"`
	Oversub      int          `json:"oversub"`
	Jobs         []JobOutcome `json:"jobs"`
}

// RunStudy executes one interference point: co-schedule, run together,
// run each job alone, compare. The returned recorder (non-nil only with
// st.Trace) holds the together-run timeline; pair it with
// GroupOf(jobs) and trace.WriteChromeGrouped for a per-job grouped
// Chrome export.
func RunStudy(st Study) (StudyResult, *sim.Recorder, []JobSpec, error) {
	spec := cluster.Scale(st.Nodes, st.GPUsPerNode, st.RanksPerNode, st.Oversub)
	place, jobRanks, err := cluster.CoSchedule(spec, len(st.Jobs), st.RanksPerJob, st.Policy)
	if err != nil {
		return StudyResult{}, nil, nil, err
	}
	cfg := spec.Config()
	cfg.Ranks = place

	jobs := make([]JobSpec, len(st.Jobs))
	for j, sj := range st.Jobs {
		jobs[j] = JobSpec{Name: sj.Name, W: sj.W, Seed: sj.Seed, Ranks: jobRanks[j]}
	}

	together, rec, err := Run(cfg, jobs, nil, Options{Trace: st.Trace, FSGBps: st.FSGBps})
	if err != nil {
		return StudyResult{}, nil, nil, fmt.Errorf("together: %w", err)
	}

	res := StudyResult{
		Policy:       string(st.Policy),
		Nodes:        st.Nodes,
		RanksPerNode: st.RanksPerNode,
		Oversub:      st.Oversub,
		Jobs:         make([]JobOutcome, len(jobs)),
	}
	for j := range jobs {
		active := make([]bool, len(jobs))
		active[j] = true
		alone, _, err := Run(cfg, jobs, active, Options{FSGBps: st.FSGBps})
		if err != nil {
			return StudyResult{}, nil, nil, fmt.Errorf("alone %q: %w", jobs[j].Name, err)
		}
		a, t := alone[0], together[j]
		slow := 0.0
		if a.ElapsedUs > 0 {
			slow = t.ElapsedUs / a.ElapsedUs
		}
		res.Jobs[j] = JobOutcome{
			Job:         t.Job,
			Workload:    t.Workload,
			Ranks:       t.Ranks,
			AloneUs:     a.ElapsedUs,
			TogetherUs:  t.ElapsedUs,
			Slowdown:    slow,
			Digest:      t.Digest,
			DigestMatch: a.Digest == t.Digest,
		}
	}
	return res, rec, jobs, nil
}

