package workload

import (
	"crypto/sha256"
	"fmt"

	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
)

// Stencil is the halo-exchange family — the paper's core use case on
// the cluster fabric: a periodic 2D/3D domain decomposed over the job
// group, each rank owning a padded local box on its GPU whose boundary
// faces are real subarray datatypes (shapes.HaloFace). Every iteration
// refills the interior from the seeded generator, sweeps the dimensions
// in order exchanging both faces per dimension (propagating received
// halos onward, so edges and corners arrive without diagonal messages),
// runs the stencil kernel, and verifies every halo cell against the
// neighbour's generator at the wrapped global coordinate.
type Stencil struct {
	Procs []int // process grid (2 or 3 dims, each >= 2); product == group size
	Box   []int // interior cells per rank per dim (default 16 each)
	Iters int   // sweeps (default 2)
}

// Name is "stencil2d" or "stencil3d".
func (s Stencil) Name() string { return fmt.Sprintf("stencil%dd", len(s.Procs)) }

func (s Stencil) withDefaults() Stencil {
	if s.Iters == 0 {
		s.Iters = 2
	}
	if len(s.Box) == 0 {
		s.Box = make([]int, len(s.Procs))
		for d := range s.Box {
			s.Box[d] = 16
		}
	}
	return s
}

// Instance validates the process grid against the group size.
func (s Stencil) Instance(rc RunContext) (Instance, error) {
	s = s.withDefaults()
	if len(s.Procs) < 2 || len(s.Procs) > 3 || len(s.Box) != len(s.Procs) {
		return nil, fmt.Errorf("stencil: bad grid %v / box %v", s.Procs, s.Box)
	}
	cells := 1
	for d, p := range s.Procs {
		if p < 2 {
			return nil, fmt.Errorf("stencil: dim %d has %d ranks, need >= 2 for a torus exchange", d, p)
		}
		if s.Box[d] < 1 {
			return nil, fmt.Errorf("stencil: dim %d box %d", d, s.Box[d])
		}
		cells *= p
	}
	if cells != rc.Group.Size() {
		return nil, fmt.Errorf("stencil: grid %v needs %d ranks, group has %d", s.Procs, cells, rc.Group.Size())
	}
	return &stencilInstance{cfg: s, rc: rc}, nil
}

type stencilInstance struct {
	cfg Stencil
	rc  RunContext
}

// cellWord is the generator value of the cell at wrapped global
// coordinate g in step it.
func (in *stencilInstance) cellWord(g []int, it int) uint64 {
	vs := make([]uint64, 0, 4)
	for _, c := range g {
		vs = append(vs, uint64(c))
	}
	return mix(in.rc.Seed, append(vs, uint64(it))...)
}

func (in *stencilInstance) Run(m *mpi.Rank) ([]byte, error) {
	g := in.rc.Group
	lr := g.LocalRank(m)
	dims := in.cfg.Procs
	box := in.cfg.Box
	nd := len(dims)

	// My coordinates in the C-ordered process grid.
	coords := make([]int, nd)
	rem := lr
	for d := nd - 1; d >= 0; d-- {
		coords[d] = rem % dims[d]
		rem /= dims[d]
	}
	// neighbour returns the local rank offset by dir along dim d
	// (periodic).
	neighbour := func(d, dir int) int {
		n := 0
		for dd := 0; dd < nd; dd++ {
			c := coords[dd]
			if dd == d {
				c = (c + dir + dims[dd]) % dims[dd]
			}
			n = n*dims[dd] + c
		}
		return n
	}

	padded := make([]int, nd)
	total := make([]int, nd) // global torus extent per dim
	cells := 1
	for d := range dims {
		padded[d] = box[d] + 2
		total[d] = dims[d] * box[d]
		cells *= padded[d]
	}
	buf := m.Malloc(int64(cells) * 8)
	raw := buf.Bytes()

	// offset walks the padded C-order array.
	offset := func(idx []int) int {
		o := 0
		for d := 0; d < nd; d++ {
			o = o*padded[d] + idx[d]
		}
		return o * 8
	}
	// global maps a padded-local index (0 = low halo) on dim d to the
	// wrapped global coordinate.
	global := func(d, local int) int {
		return ((coords[d]*box[d] + local - 1) + total[d]) % total[d]
	}

	// each visits every index vector with idx[d] in [lo[d], hi[d]).
	var each func(lo, hi []int, f func(idx []int))
	each = func(lo, hi []int, f func(idx []int)) {
		idx := make([]int, nd)
		copy(idx, lo)
		for {
			f(idx)
			d := nd - 1
			for ; d >= 0; d-- {
				idx[d]++
				if idx[d] < hi[d] {
					break
				}
				idx[d] = lo[d]
			}
			if d < 0 {
				return
			}
		}
	}

	interiorLo := make([]int, nd)
	interiorHi := make([]int, nd)
	zero := make([]int, nd)
	for d := range dims {
		interiorLo[d] = 1
		interiorHi[d] = padded[d] - 1
	}

	dev := m.Engine().Device()
	h := sha256.New()
	gidx := make([]int, nd)

	for it := 0; it < in.cfg.Iters; it++ {
		// New field values for this sweep.
		each(interiorLo, interiorHi, func(idx []int) {
			for d := 0; d < nd; d++ {
				gidx[d] = global(d, idx[d])
			}
			putWord(raw, offset(idx), in.cellWord(gidx, it))
		})

		// Dimension-ordered halo sweep: each face datatype spans the
		// full padded extent of already-exchanged dimensions, so edge
		// and corner cells propagate without diagonal messages.
		for d := 0; d < nd; d++ {
			low := shapes.HaloFace(padded, d, 1)
			high := shapes.HaloFace(padded, d, padded[d]-2)
			lowHalo := shapes.HaloFace(padded, d, 0)
			highHalo := shapes.HaloFace(padded, d, padded[d]-1)

			// Send my low interior plane down, receive my high halo
			// from up; then the mirror image.
			sp := m.Proc().BeginBytes("app.halo.face", low.Size())
			sp.SetDetail(low.Name())
			g.SendRecvLocal(m, buf, low, 1, neighbour(d, -1), buf, highHalo, 1, neighbour(d, +1))
			sp.End()

			sp = m.Proc().BeginBytes("app.halo.face", high.Size())
			sp.SetDetail(high.Name())
			g.SendRecvLocal(m, buf, high, 1, neighbour(d, +1), buf, lowHalo, 1, neighbour(d, -1))
			sp.End()
		}

		// The stencil update kernel: ~2 reads + 1 write per cell.
		dev.Compute(m.Engine().Stream(), int64(cells)*8*3, 0).Await(m.Proc())

		// Every cell of the padded box — interior and all received
		// halos, including edges and corners — must now equal the
		// generator at its wrapped global coordinate.
		var verr error
		each(zero, padded, func(idx []int) {
			if verr != nil {
				return
			}
			for d := 0; d < nd; d++ {
				gidx[d] = global(d, idx[d])
			}
			if got, want := getWord(raw, offset(idx)), in.cellWord(gidx, it); got != want {
				verr = fmt.Errorf("stencil: step %d cell %v (global %v) = %x, want %x", it, idx, gidx, got, want)
			}
		})
		if verr != nil {
			return nil, verr
		}
		h.Write(raw)
	}
	return h.Sum(nil), nil
}

var _ Workload = Stencil{}
