package workload

import (
	"bytes"
	"encoding/json"
	"testing"

	"gpuddt/internal/cluster"
	"gpuddt/internal/mpi"
	"gpuddt/internal/trace"
)

// testJob builds a single-job run over the whole of a small fat-tree
// cluster and returns its result.
func runSingle(t *testing.T, w Workload, ranks, rpn int, traceIt bool) (JobResult, []JobSpec, *traceRec) {
	t.Helper()
	spec := cluster.Scale(ranks/rpn, rpn, rpn, 2)
	cfg := spec.Config()
	all := make([]int, ranks)
	for i := range all {
		all[i] = i
	}
	jobs := []JobSpec{{Name: "solo", W: w, Seed: 7, Ranks: all}}
	res, rec, err := Run(cfg, jobs, nil, Options{Trace: traceIt})
	if err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	if len(res) != 1 || res[0].Digest == "" || res[0].ElapsedUs <= 0 {
		t.Fatalf("%s: bad result %+v", w.Name(), res)
	}
	return res[0], jobs, &traceRec{rec}
}

type traceRec struct{ rec interface{} }

// smallML returns a quick ML training config.
func smallML(alg mpi.AllreduceAlg) MLTrain {
	return MLTrain{Layers: 6, MeanKB: 8, Sigma: 1.0, FusionKB: 32, Iters: 2, Alg: alg, MoETokens: 8, Hidden: 16}
}

func TestMLTrainVerifies(t *testing.T) {
	for _, alg := range []mpi.AllreduceAlg{mpi.AllreduceRing, mpi.AllreduceTree} {
		r, _, _ := runSingle(t, smallML(alg), 8, 2, false)
		if r.Workload != "ml-"+alg.String() {
			t.Errorf("workload name = %q", r.Workload)
		}
	}
}

func TestCheckpointVerifies(t *testing.T) {
	runSingle(t, Checkpoint{StateKB: 32, ChunkKB: 4, Iters: 4, Interval: 2, HaloKB: 8}, 8, 2, false)
}

func TestStencil3DVerifies(t *testing.T) {
	runSingle(t, Stencil{Procs: []int{2, 2, 2}, Box: []int{6, 6, 6}, Iters: 2}, 8, 2, false)
}

// TestStencilHaloSubarraySpans runs the 2D stencil traced and asserts
// the halo path moved real subarray datatypes end-to-end: every halo
// exchange span carries a subarray datatype name, and the grouped
// Chrome export renders the job as a labeled process group.
func TestStencilHaloSubarraySpans(t *testing.T) {
	spec := cluster.Scale(2, 2, 2, 2)
	cfg := spec.Config()
	jobs := []JobSpec{{
		Name: "halo", W: Stencil{Procs: []int{2, 2}, Box: []int{8, 8}, Iters: 2},
		Seed: 11, Ranks: []int{0, 1, 2, 3},
	}}
	res, rec, err := Run(cfg, jobs, nil, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("no recorder attached")
	}
	// 2 dims x 2 faces x 2 iters per rank x 4 ranks = 32 spans.
	if n := CountSpans(rec, "app.halo.face", "subarray("); n != 32 {
		t.Errorf("subarray halo spans = %d, want 32", n)
	}
	var buf bytes.Buffer
	if err := trace.WriteChromeGrouped(&buf, rec, GroupOf(jobs)); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" && ev.Args["name"] == "job:halo" {
			found = true
		}
	}
	if !found {
		t.Error("grouped export missing job:halo process group")
	}
	_ = res
}

// studyPoint is the interference point the determinism and smoke tests
// share: ML vs stencil on an oversubscribed 4-node fat tree.
func studyPoint(policy cluster.Policy) Study {
	return Study{
		Nodes: 4, GPUsPerNode: 2, RanksPerNode: 2, Oversub: 4,
		RanksPerJob: 4, Policy: policy,
		Jobs: []StudyJob{
			{Name: "ml", W: smallML(mpi.AllreduceRing), Seed: 21},
			{Name: "halo", W: Stencil{Procs: []int{2, 2}, Box: []int{8, 8}, Iters: 2}, Seed: 22},
		},
	}
}

// TestInterferenceSmoke runs one study point under every policy: jobs
// must verify, digests must match between alone and together runs, and
// contention must never speed a job up.
func TestInterferenceSmoke(t *testing.T) {
	for _, policy := range cluster.Policies {
		res, _, _, err := RunStudy(studyPoint(policy))
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		for _, j := range res.Jobs {
			if !j.DigestMatch {
				t.Errorf("%s/%s: digest changed between alone and together runs", policy, j.Job)
			}
			if j.Slowdown < 0.999 {
				t.Errorf("%s/%s: slowdown %.3f < 1 — contention made it faster?", policy, j.Job, j.Slowdown)
			}
			if j.AloneUs <= 0 || j.TogetherUs <= 0 {
				t.Errorf("%s/%s: bad times %+v", policy, j.Job, j)
			}
		}
	}
}

// TestInterferenceDeterminism re-runs one interference point and
// requires the full JSON-serialized result — times, digests, slowdowns
// — to be byte-identical.
func TestInterferenceDeterminism(t *testing.T) {
	run := func() []byte {
		res, _, _, err := RunStudy(studyPoint(cluster.PolicySpread))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("interference point not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestRunValidation covers the runner's job-layout errors.
func TestRunValidation(t *testing.T) {
	cfg := cluster.Scale(2, 2, 2, 1).Config()
	ml := smallML(mpi.AllreduceRing)
	cases := []struct {
		name string
		jobs []JobSpec
	}{
		{"rank out of range", []JobSpec{{Name: "a", W: ml, Ranks: []int{0, 99}}}},
		{"overlapping jobs", []JobSpec{
			{Name: "a", W: ml, Ranks: []int{0, 1}},
			{Name: "b", W: ml, Ranks: []int{1, 2}},
		}},
	}
	for _, c := range cases {
		if _, _, err := Run(cfg, c.jobs, nil, Options{}); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}
