package datatype

import "sort"

// CanonVec is the canonical strided form of a flattened layout: up to two
// nesting levels of equally sized, equally spaced blocks. Block i (of
// Inner*Outer total) starts at
//
//	Off + (i/Inner)*OuterStride + (i%Inner)*InnerStride
//
// and is BlockLen bytes long. Outer == 1 degenerates to a plain vector;
// Inner == Outer == 1 to a single contiguous block. This is the
// TEMPI-style canonicalization: nested constructor trees (for example a
// contiguous-of-resized-vector matrix transpose) collapse to six integers,
// so seeks become arithmetic and walks never touch the flattened slice.
type CanonVec struct {
	Off         int64
	BlockLen    int64
	Inner       int64 // blocks per inner run
	InnerStride int64 // byte stride between blocks within a run
	Outer       int64 // number of inner runs
	OuterStride int64 // byte stride between run starts
}

// NumBlocks returns the total block count of the canonical form.
func (cv *CanonVec) NumBlocks() int64 { return cv.Inner * cv.Outer }

// BlockOff returns the memory offset of block i.
func (cv *CanonVec) BlockOff(i int64) int64 {
	return cv.Off + (i/cv.Inner)*cv.OuterStride + (i%cv.Inner)*cv.InnerStride
}

// Plan is the compiled form of one element's layout: the canonical
// strided description when one exists, otherwise packed-byte prefix sums
// over the flattened blocks. Converters use it to position themselves at
// an arbitrary packed offset in O(1) (canonical) or O(log B) (generic)
// instead of replaying the whole layout, and to walk canonical layouts
// arithmetically without touching the block slice.
type Plan struct {
	blocks []Block   // shared with the datatype's flattened form
	canon  *CanonVec // non-nil when the layout is canonically strided
	prefix []int64   // prefix[i] = packed bytes before block i; len B+1
}

// Canonical returns the canonical strided form, or nil for irregular
// layouts.
func (pl *Plan) Canonical() *CanonVec { return pl.canon }

// NumBlocks returns the element's block count.
func (pl *Plan) NumBlocks() int { return len(pl.blocks) }

// block returns block i of the element.
func (pl *Plan) block(i int) Block {
	if cv := pl.canon; cv != nil {
		return Block{Off: cv.BlockOff(int64(i)), Len: cv.BlockLen}
	}
	return pl.blocks[i]
}

// locate maps a packed offset within one element (0 <= off <= element
// size) to (block index, bytes into that block). An offset landing
// exactly on a block boundary reports the start of the next block,
// matching the converter's wrap-on-completion state.
func (pl *Plan) locate(off int64) (bi int, bo int64) {
	if off == 0 {
		return 0, 0
	}
	if cv := pl.canon; cv != nil {
		return int(off / cv.BlockLen), off % cv.BlockLen
	}
	// First block whose cumulative end exceeds off, i.e. the block
	// containing byte off (boundary offsets select the next block).
	i := sort.Search(len(pl.blocks), func(i int) bool { return pl.prefix[i+1] > off })
	if i == len(pl.blocks) { // off == element size: wrapped to next rep
		return 0, 0
	}
	return i, off - pl.prefix[i]
}

// compilePlan builds the plan for a flattened element.
func compilePlan(blocks []Block) *Plan {
	pl := &Plan{blocks: blocks, canon: detectCanon(blocks)}
	if pl.canon == nil {
		pl.prefix = make([]int64, len(blocks)+1)
		for i, b := range blocks {
			pl.prefix[i+1] = pl.prefix[i] + b.Len
		}
	}
	return pl
}

// detectCanon recognizes layouts that are canonically strided with up to
// two nesting levels. It is O(B): one scan to verify equal lengths and
// find where the single-level stride breaks, and one scan to verify the
// two-level form.
func detectCanon(blocks []Block) *CanonVec {
	n := int64(len(blocks))
	if n == 0 {
		return nil
	}
	off0, bl := blocks[0].Off, blocks[0].Len
	if n == 1 {
		return &CanonVec{Off: off0, BlockLen: bl, Inner: 1, InnerStride: bl, Outer: 1, OuterStride: bl}
	}
	s1 := blocks[1].Off - off0
	// Scan for the first block off the single-level pattern.
	p := n
	for i := int64(0); i < n; i++ {
		if blocks[i].Len != bl {
			return nil
		}
		if p == n && blocks[i].Off != off0+i*s1 {
			p = i
		}
	}
	if p == n {
		return &CanonVec{Off: off0, BlockLen: bl, Inner: n, InnerStride: s1, Outer: 1, OuterStride: n * s1}
	}
	// Two-level candidate: runs of p blocks at stride s1, run starts at
	// stride s2.
	if p < 2 || n%p != 0 {
		return nil
	}
	s2 := blocks[p].Off - off0
	for i := int64(0); i < n; i++ {
		if blocks[i].Off != off0+(i/p)*s2+(i%p)*s1 {
			return nil
		}
	}
	return &CanonVec{Off: off0, BlockLen: bl, Inner: p, InnerStride: s1, Outer: n / p, OuterStride: s2}
}

// Plan returns the element's compiled plan, building it on first use.
// Safe for concurrent use: datatypes (including the shared primitives)
// may be walked from independent worlds running on separate goroutines.
func (d *Datatype) Plan() *Plan {
	d.planOnce.Do(func() { d.planVal = compilePlan(d.flat) })
	return d.planVal
}

// PatternPlan couples a datatype's compiled element plan with the
// repetition pattern of a whole (datatype, count) send or receive.
type PatternPlan struct {
	Dt    *Datatype
	Count int
	Elem  *Plan
	Total int64       // packed bytes of the full pattern
	View  *VectorView // whole-pattern vector form, or nil
}

// NewPatternPlan compiles the plan for (dt, count). The element plan is
// cached on the datatype; the pattern wrapper is cheap to rebuild.
func NewPatternPlan(dt *Datatype, count int) *PatternPlan {
	return &PatternPlan{
		Dt:    dt,
		Count: count,
		Elem:  dt.Plan(),
		Total: int64(count) * dt.Size(),
		View:  VectorViewN(dt, count),
	}
}
