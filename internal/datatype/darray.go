package datatype

import "fmt"

// Distrib selects the per-dimension distribution of a Darray
// (MPI_Type_create_darray).
type Distrib int

// Distribution kinds.
const (
	// DistribNone keeps the whole dimension on every process.
	DistribNone Distrib = iota
	// DistribBlock assigns one contiguous block per process.
	DistribBlock
	// DistribCyclic deals blocks of darg elements round-robin.
	DistribCyclic
)

// DargDefault computes the default distribution argument
// (MPI_DISTRIBUTE_DFLT_DARG).
const DargDefault = -1

// runsFor computes the index runs of dimension extent gsize owned by
// process coordinate p of np processes under the given distribution:
// each run is a (start, len) pair of global indices, ascending.
func runsFor(dist Distrib, darg, gsize, p, np int) [][2]int {
	switch dist {
	case DistribNone:
		if np != 1 {
			panic("datatype: DistribNone requires one process in the dimension")
		}
		return [][2]int{{0, gsize}}
	case DistribBlock:
		b := darg
		if b == DargDefault {
			b = (gsize + np - 1) / np
		}
		if b*np < gsize {
			panic(fmt.Sprintf("datatype: block size %d too small for %d over %d procs", b, gsize, np))
		}
		start := p * b
		if start >= gsize {
			return nil
		}
		n := b
		if start+n > gsize {
			n = gsize - start
		}
		return [][2]int{{start, n}}
	case DistribCyclic:
		b := darg
		if b == DargDefault {
			b = 1
		}
		var runs [][2]int
		for start := p * b; start < gsize; start += np * b {
			n := b
			if start+n > gsize {
				n = gsize - start
			}
			runs = append(runs, [2]int{start, n})
		}
		return runs
	default:
		panic("datatype: unknown distribution")
	}
}

// Darray returns the datatype selecting process rank's portion of a
// gsizes-shaped global array distributed over a psizes process grid
// (MPI_Type_create_darray). The type's extent is the full global array,
// so processes can read/write their pieces of a shared file or buffer
// at offset zero. Supported distributions per dimension: none, block,
// cyclic(k).
func Darray(size, rank int, gsizes []int, distribs []Distrib, dargs []int, psizes []int, order Order, base *Datatype) *Datatype {
	checkBase(base, "Darray")
	ndims := len(gsizes)
	if len(distribs) != ndims || len(dargs) != ndims || len(psizes) != ndims {
		panic("datatype: Darray argument length mismatch")
	}
	grid := 1
	for _, ps := range psizes {
		if ps <= 0 {
			panic("datatype: non-positive process grid dimension")
		}
		grid *= ps
	}
	if grid != size {
		panic(fmt.Sprintf("datatype: process grid %d != size %d", grid, size))
	}
	if rank < 0 || rank >= size {
		panic("datatype: rank out of range")
	}

	// Process coordinates, row-major over psizes (MPI convention).
	coords := make([]int, ndims)
	r := rank
	for i := ndims - 1; i >= 0; i-- {
		coords[i] = r % psizes[i]
		r /= psizes[i]
	}

	// Per-dimension index runs owned by this process.
	runs := make([][][2]int, ndims)
	var local int64 = 1
	for d := 0; d < ndims; d++ {
		runs[d] = runsFor(distribs[d], dargs[d], gsizes[d], coords[d], psizes[d])
		var owned int64
		for _, rn := range runs[d] {
			owned += int64(rn[1])
		}
		local *= owned
	}

	// dims ordered slowest to fastest varying.
	dims := make([]int, ndims)
	for i := range dims {
		if order == OrderC {
			dims[i] = i
		} else {
			dims[i] = ndims - 1 - i
		}
	}
	strides := make([]int64, ndims)
	st := int64(1)
	for i := ndims - 1; i >= 0; i-- {
		strides[dims[i]] = st
		st *= int64(gsizes[dims[i]])
	}

	d := &Datatype{
		kind: kindSubarray, // behaves like a subarray: full-array extent
		name: fmt.Sprintf("darray(rank %d of %d, %v over %v, %s)", rank, size, gsizes, psizes, base.name),
		size: local * base.size,
		lb:   0,
		ub:   st * base.Extent(),
	}
	var walk func(level int, elemOff int64)
	walk = func(level int, elemOff int64) {
		dim := dims[level]
		if level == ndims-1 {
			for _, rn := range runs[dim] {
				d.flat = instantiateN(d.flat, base, (elemOff+int64(rn[0]))*base.Extent(), int64(rn[1]))
			}
			return
		}
		for _, rn := range runs[dim] {
			for j := 0; j < rn[1]; j++ {
				walk(level+1, elemOff+(int64(rn[0])+int64(j))*strides[dim])
			}
		}
	}
	if local > 0 {
		walk(0, 0)
	}
	d.sig = appendSig(nil, base, local)
	return d.finish()
}
