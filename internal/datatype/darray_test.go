package datatype

import (
	"fmt"
	"testing"
)

// ownerOf recomputes ownership of a global index by brute force.
func ownerOf(dist Distrib, darg, gsize, np, idx int) int {
	switch dist {
	case DistribNone:
		return 0
	case DistribBlock:
		b := darg
		if b == DargDefault {
			b = (gsize + np - 1) / np
		}
		return idx / b
	case DistribCyclic:
		b := darg
		if b == DargDefault {
			b = 1
		}
		return (idx / b) % np
	}
	panic("bad dist")
}

// checkDarrayPartition verifies that the union of all ranks' darray
// types covers the global array exactly once and that each rank's
// blocks land on elements it owns.
func checkDarrayPartition(t *testing.T, gsizes []int, distribs []Distrib, dargs []int, psizes []int, order Order) {
	t.Helper()
	size := 1
	for _, p := range psizes {
		size *= p
	}
	total := int64(1)
	for _, g := range gsizes {
		total *= int64(g)
	}
	covered := make([]int, total*8) // per-byte coverage count
	for rank := 0; rank < size; rank++ {
		d := Darray(size, rank, gsizes, distribs, dargs, psizes, order, Float64)
		if d.Extent() != total*8 {
			t.Fatalf("rank %d extent %d, want %d", rank, d.Extent(), total*8)
		}
		for _, b := range d.Flat() {
			for i := b.Off; i < b.Off+b.Len; i++ {
				covered[i]++
			}
		}
		// Every element of this rank's type must be owned by this rank.
		coords := make([]int, len(gsizes))
		r := rank
		for i := len(gsizes) - 1; i >= 0; i-- {
			coords[i] = r % psizes[i]
			r /= psizes[i]
		}
		for _, b := range d.Flat() {
			for e := b.Off / 8; e < (b.Off+b.Len)/8; e++ {
				idx := elemToIndices(e, gsizes, order)
				for dim := range gsizes {
					want := coords[dim]
					if got := ownerOf(distribs[dim], dargs[dim], gsizes[dim], psizes[dim], idx[dim]); got != want {
						t.Fatalf("rank %d: element %v dim %d owned by %d, not %d", rank, idx, dim, got, want)
					}
				}
			}
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("byte %d covered %d times", i, c)
		}
	}
}

// elemToIndices converts a linear element offset to per-dim indices.
func elemToIndices(e int64, gsizes []int, order Order) []int {
	n := len(gsizes)
	idx := make([]int, n)
	if order == OrderC {
		for d := n - 1; d >= 0; d-- {
			idx[d] = int(e % int64(gsizes[d]))
			e /= int64(gsizes[d])
		}
	} else {
		for d := 0; d < n; d++ {
			idx[d] = int(e % int64(gsizes[d]))
			e /= int64(gsizes[d])
		}
	}
	return idx
}

func TestDarrayPartitions(t *testing.T) {
	cases := []struct {
		name     string
		gsizes   []int
		distribs []Distrib
		dargs    []int
		psizes   []int
		order    Order
	}{
		{"block-block-C", []int{8, 6}, []Distrib{DistribBlock, DistribBlock}, []int{DargDefault, DargDefault}, []int{2, 3}, OrderC},
		{"block-block-F", []int{8, 6}, []Distrib{DistribBlock, DistribBlock}, []int{DargDefault, DargDefault}, []int{2, 3}, OrderFortran},
		{"cyclic1", []int{10}, []Distrib{DistribCyclic}, []int{DargDefault}, []int{3}, OrderC},
		{"cyclic2-block", []int{12, 8}, []Distrib{DistribCyclic, DistribBlock}, []int{2, DargDefault}, []int{2, 2}, OrderC},
		{"block-cyclic-F", []int{9, 10}, []Distrib{DistribBlock, DistribCyclic}, []int{DargDefault, 3}, []int{3, 2}, OrderFortran},
		{"none-block", []int{5, 8}, []Distrib{DistribNone, DistribBlock}, []int{DargDefault, DargDefault}, []int{1, 4}, OrderC},
		{"uneven-block", []int{7}, []Distrib{DistribBlock}, []int{DargDefault}, []int{3}, OrderC},
		{"3d", []int{4, 6, 4}, []Distrib{DistribBlock, DistribCyclic, DistribBlock}, []int{DargDefault, DargDefault, DargDefault}, []int{2, 2, 2}, OrderC},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkDarrayPartition(t, c.gsizes, c.distribs, c.dargs, c.psizes, c.order)
		})
	}
}

func TestDarrayBlockCyclicScaLAPACK(t *testing.T) {
	// A classic ScaLAPACK layout: 2D block-cyclic with 2x2 blocks on a
	// 2x2 process grid over a 8x8 column-major matrix.
	g := []int{8, 8}
	dist := []Distrib{DistribCyclic, DistribCyclic}
	dargs := []int{2, 2}
	ps := []int{2, 2}
	d := Darray(4, 0, g, dist, dargs, ps, OrderFortran, Float64)
	if d.Size() != 16*8 {
		t.Fatalf("rank 0 owns %d bytes, want 128", d.Size())
	}
	// Rank 0 (coords 0,0) owns rows {0,1,4,5} x cols {0,1,4,5}: its
	// first block is column 0, rows 0..1: offset 0, 16 bytes.
	if d.Flat()[0] != (Block{0, 16}) {
		t.Fatalf("first block = %+v", d.Flat()[0])
	}
}

func TestDarrayPackRoundTrip(t *testing.T) {
	// Pack every rank's darray piece and reassemble the global array.
	g := []int{6, 6}
	dist := []Distrib{DistribCyclic, DistribBlock}
	dargs := []int{2, DargDefault}
	ps := []int{3, 2}
	global := make([]byte, 36*8)
	for i := range global {
		global[i] = byte(i * 7)
	}
	re := make([]byte, len(global))
	for rank := 0; rank < 6; rank++ {
		d := Darray(6, rank, g, dist, dargs, ps, OrderC, Float64)
		c := NewConverter(d, 1)
		packed := make([]byte, c.Total())
		c.Pack(packed, global)
		u := NewConverter(d, 1)
		u.Unpack(re, packed)
	}
	for i := range global {
		if global[i] != re[i] {
			t.Fatalf("byte %d lost in the partition round trip", i)
		}
	}
}

func TestDarrayValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Darray(4, 0, []int{8}, []Distrib{DistribBlock}, []int{DargDefault}, []int{2}, OrderC, Float64) }, // grid 2 != size 4
		func() { Darray(2, 2, []int{8}, []Distrib{DistribBlock}, []int{DargDefault}, []int{2}, OrderC, Float64) }, // rank out of range
		func() {
			Darray(2, 0, []int{8}, []Distrib{DistribBlock}, []int{2}, []int{2}, OrderC, Float64) // block 2*2 < 8
		},
		func() {
			Darray(2, 0, []int{8}, []Distrib{DistribNone}, []int{DargDefault}, []int{2}, OrderC, Float64) // none with np>1
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
	_ = fmt.Sprint()
}
