package datatype

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// transposeLike builds the paper's matrix-transpose receive type: n
// single-element columns, a canonical two-level strided form.
func transposeLike(n int) *Datatype {
	return Contiguous(n, Resized(Vector(n, 1, n, Float64), 0, 8))
}

// triangularLike builds an irregular (non-canonical) indexed layout.
func triangularLike(n int) *Datatype {
	bl := make([]int, n)
	ds := make([]int, n)
	for i := 0; i < n; i++ {
		bl[i] = i + 1
		ds[i] = i * n
	}
	return Indexed(bl, ds, Float64)
}

func TestPlanCanonicalForms(t *testing.T) {
	cases := []struct {
		name string
		dt   *Datatype
		want *CanonVec
	}{
		{"primitive", Float64, &CanonVec{Off: 0, BlockLen: 8, Inner: 1, InnerStride: 8, Outer: 1, OuterStride: 8}},
		{"contig", Contiguous(16, Float64), &CanonVec{Off: 0, BlockLen: 128, Inner: 1, InnerStride: 128, Outer: 1, OuterStride: 128}},
		{"vector", Vector(8, 4, 16, Float64), &CanonVec{Off: 0, BlockLen: 32, Inner: 8, InnerStride: 128, Outer: 1, OuterStride: 1024}},
		{"transpose", transposeLike(4), &CanonVec{Off: 0, BlockLen: 8, Inner: 4, InnerStride: 32, Outer: 4, OuterStride: 8}},
		{"triangular", triangularLike(6), nil},
	}
	for _, c := range cases {
		got := c.dt.Plan().Canonical()
		if c.want == nil {
			if got != nil {
				t.Errorf("%s: expected no canonical form, got %+v", c.name, got)
			}
			continue
		}
		if got == nil {
			t.Errorf("%s: expected canonical form %+v, got none", c.name, c.want)
			continue
		}
		if *got != *c.want {
			t.Errorf("%s: canonical form %+v, want %+v", c.name, got, c.want)
		}
	}
}

// TestPlanBlocksMatchFlat checks that the plan's block accessor (canon
// arithmetic or stored slice) reproduces the flattened form exactly.
func TestPlanBlocksMatchFlat(t *testing.T) {
	for _, dt := range []*Datatype{
		Float64,
		Contiguous(7, Int32),
		Vector(5, 3, 9, Float64),
		transposeLike(6),
		triangularLike(5),
		Struct([]int{2, 1, 3}, []int64{0, 40, 64}, []*Datatype{Int32, Float64, Char}),
	} {
		pl := dt.Plan()
		flat := dt.Flat()
		if pl.NumBlocks() != len(flat) {
			t.Fatalf("%s: plan has %d blocks, flat %d", dt, pl.NumBlocks(), len(flat))
		}
		for i, b := range flat {
			if got := pl.block(i); got != b {
				t.Errorf("%s: block %d = %+v, want %+v", dt, i, got, b)
			}
		}
	}
}

// TestSeekToMatchesReplay verifies the plan-based SeekTo lands in exactly
// the state a full replay reaches: packing the remainder from a seeked
// converter must byte-match packing after Rewind+Advance.
func TestSeekToMatchesReplay(t *testing.T) {
	types := []struct {
		dt    *Datatype
		count int
	}{
		{Float64, 9},
		{Contiguous(4, Float64), 3},
		{Vector(6, 2, 5, Float64), 3},
		{transposeLike(5), 2},
		{triangularLike(6), 2},
		{Struct([]int{2, 1, 3}, []int64{0, 40, 64}, []*Datatype{Int32, Float64, Char}), 4},
	}
	for _, tc := range types {
		dt, count := tc.dt, tc.count
		ext := dt.Extent()
		span := int64(count)*ext + dt.TrueExtent() // generous data region
		src := make([]byte, span)
		for i := range src {
			src[i] = byte(i*131 + 17)
		}
		total := int64(count) * dt.Size()
		positions := []int64{0, 1, total / 3, total / 2, total - 1, total}
		for p := int64(0); p < total; p += 7 {
			positions = append(positions, p)
		}
		for _, pos := range positions {
			if pos < 0 || pos > total {
				continue
			}
			want := make([]byte, total-pos)
			ref := NewConverter(dt, count)
			ref.Rewind()
			ref.Advance(pos, nil) // replay reference
			ref.Pack(want, src)

			got := make([]byte, total-pos)
			c := NewConverter(dt, count)
			c.Advance(total, nil) // scramble state first
			c.SeekTo(pos)
			if c.Packed() != pos {
				t.Fatalf("%s: SeekTo(%d) reports Packed()=%d", dt, pos, c.Packed())
			}
			c.Pack(got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s count=%d: pack after SeekTo(%d) differs from replay", dt, count, pos)
			}
		}
	}
}

// TestAdvanceCanonEmissions checks the canonical walk emits exactly the
// pieces of the generic flat walk, including across fragment boundaries.
func TestAdvanceCanonEmissions(t *testing.T) {
	dt := transposeLike(6)
	if dt.Plan().Canonical() == nil {
		t.Fatal("transpose should be canonical")
	}
	count := 3
	type piece struct{ mem, pack, n int64 }
	collect := func(frag int64) []piece {
		var out []piece
		c := NewConverter(dt, count)
		for !c.Done() {
			c.Advance(frag, func(m, p, n int64) { out = append(out, piece{m, p, n}) })
		}
		return out
	}
	// Reference: walk the flattened blocks directly.
	var want []piece
	var packed int64
	ext := dt.Extent()
	for rep := int64(0); rep < int64(count); rep++ {
		for _, b := range dt.Flat() {
			want = append(want, piece{rep*ext + b.Off, packed, b.Len})
			packed += b.Len
		}
	}
	whole := collect(dt.Size() * int64(count))
	if fmt.Sprint(whole) != fmt.Sprint(want) {
		t.Fatalf("whole-message emissions differ:\n got %v\nwant %v", whole, want)
	}
	// Fragmented: pieces may split at fragment bounds; re-merging by
	// coalescing adjacent pieces must reproduce the whole-message walk.
	frag := collect(13)
	var merged []piece
	for _, p := range frag {
		if n := len(merged); n > 0 && merged[n-1].mem+merged[n-1].n == p.mem && merged[n-1].pack+merged[n-1].n == p.pack {
			merged[n-1].n += p.n
			continue
		}
		merged = append(merged, p)
	}
	if fmt.Sprint(merged) != fmt.Sprint(want) {
		t.Fatalf("fragmented emissions differ after merge:\n got %v\nwant %v", merged, want)
	}
}

// TestFlatIsImmutable is the regression test for Flat leaking the
// internal slice: mutating the returned slice must not corrupt the type.
func TestFlatIsImmutable(t *testing.T) {
	dt := Vector(4, 2, 6, Float64)
	before := dt.Flat()
	leaked := dt.Flat()
	for i := range leaked {
		leaked[i] = Block{Off: -999, Len: -999}
	}
	after := dt.Flat()
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("block %d changed after caller mutation: %+v -> %+v", i, before[i], after[i])
		}
	}
	// The converter must still walk the original layout.
	src := make([]byte, int64(4)*dt.Extent()+dt.TrueExtent())
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, dt.Size())
	c := NewConverter(dt, 1)
	if n := c.Pack(dst, src); n != dt.Size() {
		t.Fatalf("pack after mutation consumed %d bytes, want %d", n, dt.Size())
	}
}

// TestPlanConcurrent compiles the same shared datatype's plan from many
// goroutines (the parallel bench driver does this with the global
// primitives); run with -race.
func TestPlanConcurrent(t *testing.T) {
	dt := Vector(16, 2, 4, Float64)
	var wg sync.WaitGroup
	plans := make([]*Plan, 8)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewConverter(dt, 4)
			c.SeekTo(c.Total() / 2)
			plans[i] = dt.Plan()
		}(i)
	}
	wg.Wait()
	for _, pl := range plans {
		if pl != plans[0] {
			t.Fatal("Plan() returned different instances")
		}
	}
}

// BenchmarkConverterSeek shows SeekTo is sublinear in the layout's block
// count: ns/op must stay near-flat as B grows 64x.
func BenchmarkConverterSeek(b *testing.B) {
	for _, n := range []int{128, 512, 2048} { // triangular: B = n blocks
		dt := triangularLike(n)
		b.Run(fmt.Sprintf("generic_B%d", dt.NumBlocks()), func(b *testing.B) {
			c := NewConverter(dt, 4)
			total := c.Total()
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.SeekTo(rng.Int63n(total + 1))
			}
		})
	}
	for _, n := range []int{64, 256, 1024} { // transpose: B = n*n blocks
		dt := transposeLike(n)
		b.Run(fmt.Sprintf("canon_B%d", dt.NumBlocks()), func(b *testing.B) {
			c := NewConverter(dt, 2)
			total := c.Total()
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.SeekTo(rng.Int63n(total + 1))
			}
		})
	}
	_ = triangularLike // keep helpers referenced even if cases change
}
