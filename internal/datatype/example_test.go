package datatype_test

import (
	"fmt"

	"gpuddt/internal/datatype"
)

// A sub-matrix of a column-major matrix is an MPI vector: count columns
// of blocklen elements, strided by the leading dimension.
func ExampleVector() {
	sub := datatype.Vector(3, 4, 8, datatype.Float64) // 3 cols x 4 rows in an 8-row matrix
	fmt.Println("size:", sub.Size(), "bytes")
	fmt.Println("extent:", sub.Extent(), "bytes")
	fmt.Println("blocks:", sub.NumBlocks())
	v := sub.Vector()
	fmt.Printf("vector view: %d blocks of %d bytes every %d bytes\n", v.Count, v.BlockLen, v.Stride)
	// Output:
	// size: 96 bytes
	// extent: 160 bytes
	// blocks: 3
	// vector view: 3 blocks of 32 bytes every 64 bytes
}

// A Converter packs a non-contiguous layout fragment by fragment, which
// is what lets the communication protocols pipeline pack, transfer and
// unpack.
func ExampleConverter() {
	dt := datatype.Indexed([]int{2, 1}, []int{0, 3}, datatype.Float64)
	src := make([]byte, 4*8)
	for i := range src {
		src[i] = byte(i)
	}
	c := datatype.NewConverter(dt, 1)
	out := make([]byte, c.Total())
	// Pack in two fragments of 12 bytes each.
	c.Pack(out[:12], src)
	c.Pack(out[12:], src)
	fmt.Println("total packed:", c.Total(), "bytes; done:", c.Done())
	fmt.Println("first byte of second block:", out[16]) // element 3 starts at byte 24 of src
	// Output:
	// total packed: 24 bytes; done: true
	// first byte of second block: 24
}

// Signatures decide whether differently shaped send and receive types
// may be matched: a vector of doubles matches a contiguous run of the
// same doubles, enabling on-the-fly reshapes.
func ExampleSignaturesMatch() {
	vec := datatype.Vector(4, 2, 5, datatype.Float64)
	contig := datatype.Contiguous(8, datatype.Float64)
	fmt.Println(datatype.SignaturesMatch(vec, 1, contig, 1))
	fmt.Println(datatype.SignaturesMatch(vec, 1, datatype.Contiguous(8, datatype.Int64), 1))
	// Output:
	// true
	// false
}
