package datatype

import (
	"bytes"
	"fmt"
	"testing"
)

// fillSeq writes a distinct byte pattern.
func fillSeq(b []byte) {
	for i := range b {
		b[i] = byte(i*7 + 13)
	}
}

// refPack packs (dt, count) from src using the flattened blocks directly.
func refPack(dt *Datatype, count int, src []byte) []byte {
	out := make([]byte, 0, int(dt.Size())*count)
	for r := 0; r < count; r++ {
		base := int64(r) * dt.Extent()
		for _, b := range dt.Flat() {
			out = append(out, src[base+b.Off:base+b.Off+b.Len]...)
		}
	}
	return out
}

func layoutSpan(dt *Datatype, count int) int64 {
	if count == 0 {
		return 0
	}
	return int64(count-1)*dt.Extent() + dt.TrueLB() + dt.TrueExtent()
}

var testLayouts = []struct {
	name  string
	dt    *Datatype
	count int
}{
	{"contig", Contiguous(37, Byte), 3},
	{"vector", Vector(5, 3, 7, Float64), 4},
	{"hvector-odd", Hvector(4, 3, 29, Byte), 5},
	{"triangular", lowerTriangular(9), 2},
	{"indexedblock", IndexedBlock(3, []int{0, 7, 11, 20}, Int32), 3},
	{"struct", Struct([]int{2, 3, 1}, []int64{0, 24, 48}, []*Datatype{Int64, Float32, Byte}), 2},
	{"subarray", Subarray([]int{6, 5}, []int{3, 2}, []int{2, 1}, OrderFortran, Float64), 2},
	{"transpose-ish", Vector(6, 1, 6, Float64), 6},
	{"empty", Contiguous(0, Float64), 4},
	{"zero-count", Vector(3, 2, 4, Float64), 0},
}

func TestPackMatchesReference(t *testing.T) {
	for _, tl := range testLayouts {
		t.Run(tl.name, func(t *testing.T) {
			span := layoutSpan(tl.dt, tl.count)
			src := make([]byte, span)
			fillSeq(src)
			want := refPack(tl.dt, tl.count, src)

			c := NewConverter(tl.dt, tl.count)
			if c.Total() != int64(len(want)) {
				t.Fatalf("Total = %d, want %d", c.Total(), len(want))
			}
			got := make([]byte, c.Total())
			if n := c.Pack(got, src); n != c.Total() {
				t.Fatalf("packed %d of %d", n, c.Total())
			}
			if !c.Done() {
				t.Fatal("not done after full pack")
			}
			if !bytes.Equal(got, want) {
				t.Fatal("packed bytes differ from reference")
			}
		})
	}
}

func TestFragmentedPackEqualsOneShot(t *testing.T) {
	for _, tl := range testLayouts {
		for _, frag := range []int64{1, 3, 13, 64, 1 << 20} {
			t.Run(fmt.Sprintf("%s/frag%d", tl.name, frag), func(t *testing.T) {
				span := layoutSpan(tl.dt, tl.count)
				src := make([]byte, span)
				fillSeq(src)
				want := refPack(tl.dt, tl.count, src)

				c := NewConverter(tl.dt, tl.count)
				var got []byte
				for !c.Done() {
					sz := frag
					if r := c.Remaining(); sz > r {
						sz = r
					}
					buf := make([]byte, sz)
					if n := c.Pack(buf, src); n != sz {
						t.Fatalf("fragment packed %d of %d", n, sz)
					}
					got = append(got, buf...)
				}
				if !bytes.Equal(got, want) {
					t.Fatal("fragmented pack differs")
				}
			})
		}
	}
}

func TestUnpackInvertsPack(t *testing.T) {
	for _, tl := range testLayouts {
		t.Run(tl.name, func(t *testing.T) {
			span := layoutSpan(tl.dt, tl.count)
			src := make([]byte, span)
			fillSeq(src)
			packed := refPack(tl.dt, tl.count, src)

			dst := make([]byte, span)
			u := NewConverter(tl.dt, tl.count)
			// Unpack in uneven fragments.
			pos := 0
			for _, sz := range []int{1, 5, 17} {
				if pos+sz > len(packed) {
					break
				}
				u.Unpack(dst, packed[pos:pos+sz])
				pos += sz
			}
			if pos < len(packed) {
				u.Unpack(dst, packed[pos:])
			}
			// Every data byte must match; gaps stay zero.
			got := refPack(tl.dt, tl.count, dst)
			if !bytes.Equal(got, packed) {
				t.Fatal("unpack did not restore data bytes")
			}
		})
	}
}

func TestSeekMatchesSequential(t *testing.T) {
	dt := lowerTriangular(8)
	count := 3
	src := make([]byte, layoutSpan(dt, count))
	fillSeq(src)
	full := refPack(dt, count, src)

	for _, pos := range []int64{0, 1, 7, 63, 100, int64(len(full))} {
		c := NewConverter(dt, count)
		c.SeekTo(pos)
		if c.Packed() != pos {
			t.Fatalf("SeekTo(%d): Packed = %d", pos, c.Packed())
		}
		rest := make([]byte, c.Remaining())
		c.Pack(rest, src)
		if !bytes.Equal(rest, full[pos:]) {
			t.Fatalf("SeekTo(%d): tail mismatch", pos)
		}
	}
}

func TestAdvanceEmitsMonotonicPackedOffsets(t *testing.T) {
	dt := Vector(4, 2, 5, Float64)
	c := NewConverter(dt, 3)
	var last int64 = -1
	c.Advance(c.Total(), func(memOff, packOff, n int64) {
		if packOff <= last {
			t.Fatalf("packed offsets not monotonic: %d after %d", packOff, last)
		}
		if n <= 0 {
			t.Fatalf("empty emit")
		}
		last = packOff
	})
	if !c.Done() {
		t.Fatal("not done")
	}
}

func TestConverterMisuse(t *testing.T) {
	c := NewConverter(Contiguous(4, Byte), 1)
	for _, fn := range []func(){
		func() { c.Advance(-1, nil) },
		func() { c.SeekTo(-1) },
		func() { c.SeekTo(100) },
		func() { NewConverter(nil, 1) },
		func() { NewConverter(Byte, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}
