package datatype

import "fmt"

// Converter walks the memory layout of (datatype, count) in packed-byte
// order, resumably: each Advance call consumes up to a caller-chosen
// number of packed bytes, which is exactly what fragment-at-a-time
// pipelined protocols need (Open MPI's opal_convertor).
type Converter struct {
	dt     *Datatype
	plan   *Plan
	count  int64
	extent int64
	total  int64

	rep    int64 // current repetition of the datatype
	bi     int   // current block within the element
	bo     int64 // bytes already consumed within the current block
	packed int64 // packed bytes consumed so far
}

// NewConverter returns a converter positioned at the beginning of a
// (datatype, count) layout. It panics if the datatype has data before its
// origin (negative true lower bound), which the engine does not support.
func NewConverter(dt *Datatype, count int) *Converter {
	if dt == nil {
		panic("datatype: nil datatype")
	}
	if count < 0 {
		panic("datatype: negative count")
	}
	if dt.TrueLB() < 0 {
		panic(fmt.Sprintf("datatype: %s has negative true lower bound %d", dt.Name(), dt.TrueLB()))
	}
	return &Converter{
		dt:     dt,
		plan:   dt.Plan(),
		count:  int64(count),
		extent: dt.Extent(),
		total:  int64(count) * dt.Size(),
	}
}

// Total returns the packed size of the full layout in bytes.
func (c *Converter) Total() int64 { return c.total }

// Packed returns the packed bytes consumed so far.
func (c *Converter) Packed() int64 { return c.packed }

// Remaining returns the packed bytes not yet consumed.
func (c *Converter) Remaining() int64 { return c.total - c.packed }

// Done reports whether the layout is fully consumed.
func (c *Converter) Done() bool { return c.packed >= c.total }

// Rewind repositions the converter at the beginning.
func (c *Converter) Rewind() {
	c.rep, c.bi, c.bo, c.packed = 0, 0, 0, 0
}

// SeekTo positions the converter at packed offset pos (MPI_Pack
// position). It uses the datatype's compiled plan: O(1) for canonically
// strided layouts, O(log B) prefix-sum search otherwise — it never
// replays the layout.
func (c *Converter) SeekTo(pos int64) {
	if pos < 0 || pos > c.total {
		panic(fmt.Sprintf("datatype: seek %d outside [0,%d]", pos, c.total))
	}
	if pos == 0 || c.total == 0 {
		c.Rewind()
		return
	}
	size := c.dt.size
	c.rep = pos / size
	c.bi, c.bo = c.plan.locate(pos - c.rep*size)
	c.packed = pos
}

// Advance consumes up to max packed bytes, invoking emit (if non-nil) for
// every contiguous piece with the absolute memory offset (from the data
// origin), the absolute packed offset, and the piece length. It returns
// the number of packed bytes consumed, which is min(max, Remaining()).
func (c *Converter) Advance(max int64, emit func(memOff, packOff, n int64)) int64 {
	if max < 0 {
		panic("datatype: negative advance")
	}
	if cv := c.plan.canon; cv != nil {
		return c.advanceCanon(cv, max, emit)
	}
	flat := c.dt.flat
	var done int64
	for done < max && c.rep < c.count {
		b := flat[c.bi]
		take := b.Len - c.bo
		if rem := max - done; take > rem {
			take = rem
		}
		if emit != nil {
			emit(c.rep*c.extent+b.Off+c.bo, c.packed, take)
		}
		c.bo += take
		c.packed += take
		done += take
		if c.bo == b.Len {
			c.bo = 0
			c.bi++
			if c.bi == len(flat) {
				c.bi = 0
				c.rep++
			}
		}
	}
	return done
}

// advanceCanon is Advance over a canonically strided layout: block
// offsets come from the strided form's arithmetic, so the walk never
// touches the flattened block slice (which for shapes like a matrix
// transpose holds one entry per scalar). The emitted pieces are
// identical to the generic walk's.
func (c *Converter) advanceCanon(cv *CanonVec, max int64, emit func(memOff, packOff, n int64)) int64 {
	nb := cv.NumBlocks()
	bi := int64(c.bi)
	var done int64
	for done < max && c.rep < c.count {
		take := cv.BlockLen - c.bo
		if rem := max - done; take > rem {
			take = rem
		}
		if emit != nil {
			emit(c.rep*c.extent+cv.BlockOff(bi)+c.bo, c.packed, take)
		}
		c.bo += take
		c.packed += take
		done += take
		if c.bo == cv.BlockLen {
			c.bo = 0
			bi++
			if bi == nb {
				bi = 0
				c.rep++
			}
		}
	}
	c.bi = int(bi)
	return done
}

// Pack copies up to len(dst) packed bytes from the layout over src into
// dst, starting at the current position, and returns the bytes packed.
// src must cover the data region [0, count*extent) of the layout.
func (c *Converter) Pack(dst, src []byte) int64 {
	start := c.packed
	return c.Advance(int64(len(dst)), func(memOff, packOff, n int64) {
		copy(dst[packOff-start:], src[memOff:memOff+n])
	})
}

// Unpack copies up to len(src) packed bytes from src into the layout over
// dst, starting at the current position, and returns the bytes consumed.
func (c *Converter) Unpack(dst, src []byte) int64 {
	start := c.packed
	return c.Advance(int64(len(src)), func(memOff, packOff, n int64) {
		copy(dst[memOff:memOff+n], src[packOff-start:packOff-start+n])
	})
}
