// Package datatype implements an MPI derived-datatype (DDT) engine in the
// style of Open MPI: constructors for contiguous, vector, indexed, struct
// and subarray layouts; flattening into an optimized list of contiguous
// blocks; type signatures for send/receive matching; and resumable
// pack/unpack converters that support the fragment-at-a-time operation
// the pipelined protocols need.
//
// Displacements are relative to the datatype origin. Constructors panic
// on structurally invalid arguments (negative counts or block lengths),
// mirroring how MPI aborts on invalid type construction. Types returned
// by constructors are immutable and already committed — Commit is kept
// for MPI API fidelity and returns the receiver.
package datatype

import (
	"fmt"
	"sync"
)

// kind enumerates the datatype constructors.
type kind int

const (
	kindPrimitive kind = iota
	kindContiguous
	kindVector
	kindIndexed
	kindStruct
	kindSubarray
	kindResized
)

// Primitive identifies a base MPI type for signature matching.
type Primitive int

// Primitive type identifiers.
const (
	PrimByte Primitive = iota
	PrimChar
	PrimInt32
	PrimInt64
	PrimFloat32
	PrimFloat64
)

func (pr Primitive) String() string {
	switch pr {
	case PrimByte:
		return "MPI_BYTE"
	case PrimChar:
		return "MPI_CHAR"
	case PrimInt32:
		return "MPI_INT32"
	case PrimInt64:
		return "MPI_INT64"
	case PrimFloat32:
		return "MPI_FLOAT"
	case PrimFloat64:
		return "MPI_DOUBLE"
	default:
		return fmt.Sprintf("Primitive(%d)", int(pr))
	}
}

// Block is a contiguous run of bytes at Off (relative to the datatype
// origin) of length Len.
type Block struct {
	Off, Len int64
}

// SigRun is a run-length-encoded element of a type signature.
type SigRun struct {
	Prim  Primitive
	Count int64
}

// VectorView describes a layout that is exactly Count equal blocks of
// BlockLen bytes whose starts are Stride bytes apart, beginning at Off.
// The GPU engine uses it to select the specialized vector kernel, and
// the MVAPICH-style baseline uses it for cudaMemcpy2D.
type VectorView struct {
	Off      int64
	Count    int64
	BlockLen int64
	Stride   int64
}

// Datatype is an immutable MPI derived datatype.
type Datatype struct {
	kind kind
	name string
	prim Primitive

	size   int64 // bytes of data in one element
	lb, ub int64 // extent bounds
	tlb    int64 // true lower bound (first data byte)
	tub    int64 // true upper bound (one past last data byte)

	flat []Block  // flattened blocks of one element, traversal order, merged
	sig  []SigRun // signature of one element
	vec  *VectorView

	planOnce sync.Once // guards planVal (compiled lazily, possibly from concurrent worlds)
	planVal  *Plan
}

func (d *Datatype) finish() *Datatype {
	if len(d.flat) > 0 {
		d.tlb = d.flat[0].Off
		d.tub = d.flat[0].Off + d.flat[0].Len
		for _, b := range d.flat[1:] {
			if b.Off < d.tlb {
				d.tlb = b.Off
			}
			if e := b.Off + b.Len; e > d.tub {
				d.tub = e
			}
		}
	}
	d.vec = detectVector(d.flat)
	return d
}

func newPrimitive(name string, pr Primitive, size int64) *Datatype {
	d := &Datatype{
		kind: kindPrimitive,
		name: name,
		prim: pr,
		size: size,
		ub:   size,
		flat: []Block{{0, size}},
		sig:  []SigRun{{pr, 1}},
	}
	return d.finish()
}

// The MPI primitive datatypes.
var (
	Byte    = newPrimitive("MPI_BYTE", PrimByte, 1)
	Char    = newPrimitive("MPI_CHAR", PrimChar, 1)
	Int32   = newPrimitive("MPI_INT32", PrimInt32, 4)
	Int64   = newPrimitive("MPI_INT64", PrimInt64, 8)
	Float32 = newPrimitive("MPI_FLOAT", PrimFloat32, 4)
	Float64 = newPrimitive("MPI_DOUBLE", PrimFloat64, 8)
)

// Name returns a human-readable description of the datatype.
func (d *Datatype) Name() string { return d.name }

// Size returns the number of data bytes in one element.
func (d *Datatype) Size() int64 { return d.size }

// Extent returns the span used when iterating consecutive elements.
func (d *Datatype) Extent() int64 { return d.ub - d.lb }

// LB returns the lower bound.
func (d *Datatype) LB() int64 { return d.lb }

// UB returns the upper bound.
func (d *Datatype) UB() int64 { return d.ub }

// TrueLB returns the offset of the first data byte.
func (d *Datatype) TrueLB() int64 { return d.tlb }

// TrueExtent returns the span from the first to one past the last data
// byte.
func (d *Datatype) TrueExtent() int64 { return d.tub - d.tlb }

// Commit is a no-op kept for MPI API fidelity (types are committed on
// construction); it returns the receiver for chaining.
func (d *Datatype) Commit() *Datatype { return d }

// Flat returns the flattened contiguous blocks of one element, in
// traversal order with adjacent blocks merged. The slice is a copy;
// callers may keep or modify it freely.
func (d *Datatype) Flat() []Block {
	out := make([]Block, len(d.flat))
	copy(out, d.flat)
	return out
}

// NumBlocks returns the number of contiguous blocks in one element.
func (d *Datatype) NumBlocks() int { return len(d.flat) }

// IsContiguous reports whether one element is a single gap-free block
// covering its whole extent from the origin.
func (d *Datatype) IsContiguous() bool {
	return len(d.flat) == 1 && d.flat[0].Off == 0 && d.flat[0].Len == d.Extent()
}

// Vector returns the VectorView of one element, or nil if the layout is
// not an evenly strided set of equal blocks. See VectorViewN for the
// (type, count) pattern used in a send or receive.
func (d *Datatype) Vector() *VectorView { return d.vec }

// Signature returns the run-length-encoded primitive signature of one
// element. The slice is shared; do not modify it.
func (d *Datatype) Signature() []SigRun { return d.sig }

func (d *Datatype) String() string { return d.name }

func checkBase(base *Datatype, who string) {
	if base == nil {
		panic("datatype: " + who + " with nil base type")
	}
}

// instantiate appends base's blocks displaced by disp to flat, merging
// with the previous block when exactly adjacent (the Open MPI optimized
// description).
func instantiate(flat []Block, base *Datatype, disp int64) []Block {
	for _, b := range base.flat {
		flat = appendMerged(flat, Block{Off: disp + b.Off, Len: b.Len})
	}
	return flat
}

func appendMerged(flat []Block, nb Block) []Block {
	if nb.Len == 0 {
		return flat
	}
	if n := len(flat); n > 0 && flat[n-1].Off+flat[n-1].Len == nb.Off {
		flat[n-1].Len += nb.Len
		return flat
	}
	return append(flat, nb)
}

// instantiateN appends n consecutive copies of base (spaced by its
// extent) starting at disp. When base tiles densely (contiguous with
// extent == size) the whole run collapses to one block, keeping
// flattening O(blocks) instead of O(elements).
func instantiateN(flat []Block, base *Datatype, disp int64, n int64) []Block {
	if n <= 0 {
		return flat
	}
	if base.IsContiguous() && base.lb == 0 {
		return appendMerged(flat, Block{Off: disp, Len: n * base.size})
	}
	for i := int64(0); i < n; i++ {
		flat = instantiate(flat, base, disp+i*base.Extent())
	}
	return flat
}

// appendSig appends base's signature n times (run-length merged).
func appendSig(sig []SigRun, base *Datatype, n int64) []SigRun {
	if n <= 0 {
		return sig
	}
	for rep := int64(0); rep < n; rep++ {
		for _, r := range base.sig {
			if m := len(sig); m > 0 && sig[m-1].Prim == r.Prim {
				sig[m-1].Count += r.Count
			} else {
				sig = append(sig, r)
			}
		}
		// All runs merged into one? Then multiplying is cheap.
		if len(base.sig) == 1 && len(sig) > 0 && sig[len(sig)-1].Prim == base.sig[0].Prim {
			sig[len(sig)-1].Count += base.sig[0].Count * (n - rep - 1)
			break
		}
	}
	return sig
}

// Contiguous returns a type of count consecutive base elements
// (MPI_Type_contiguous).
func Contiguous(count int, base *Datatype) *Datatype {
	checkBase(base, "Contiguous")
	if count < 0 {
		panic("datatype: negative count")
	}
	d := &Datatype{
		kind: kindContiguous,
		name: fmt.Sprintf("contig(%d,%s)", count, base.name),
		size: int64(count) * base.size,
	}
	if count > 0 {
		d.lb = base.lb
		d.ub = base.lb + int64(count)*base.Extent()
	}
	d.flat = instantiateN(d.flat, base, 0, int64(count))
	d.sig = appendSig(nil, base, int64(count))
	return d.finish()
}

// Vector returns count equally spaced blocks of blocklen base elements
// with strideElems base elements between block starts (MPI_Type_vector).
func Vector(count, blocklen, strideElems int, base *Datatype) *Datatype {
	checkBase(base, "Vector")
	return vector(count, blocklen, int64(strideElems)*base.Extent(), base,
		fmt.Sprintf("vector(%d,%d,%d,%s)", count, blocklen, strideElems, base.name))
}

// Hvector is Vector with the stride given in bytes
// (MPI_Type_create_hvector).
func Hvector(count, blocklen int, strideBytes int64, base *Datatype) *Datatype {
	checkBase(base, "Hvector")
	return vector(count, blocklen, strideBytes, base,
		fmt.Sprintf("hvector(%d,%d,%dB,%s)", count, blocklen, strideBytes, base.name))
}

func vector(count, blocklen int, strideBytes int64, base *Datatype, name string) *Datatype {
	if count < 0 || blocklen < 0 {
		panic("datatype: negative vector parameter")
	}
	d := &Datatype{
		kind: kindVector,
		name: name,
		size: int64(count) * int64(blocklen) * base.size,
	}
	blockSpan := int64(blocklen) * base.Extent()
	for i := 0; i < count; i++ {
		s := int64(i)*strideBytes + base.lb
		e := int64(i)*strideBytes + base.lb + blockSpan
		if i == 0 || s < d.lb {
			d.lb = s
		}
		if i == 0 || e > d.ub {
			d.ub = e
		}
		d.flat = instantiateN(d.flat, base, int64(i)*strideBytes, int64(blocklen))
	}
	d.sig = appendSig(nil, base, int64(count)*int64(blocklen))
	return d.finish()
}

// Indexed returns blocks of blocklens[i] base elements displaced by
// displs[i] base elements (MPI_Type_indexed).
func Indexed(blocklens, displs []int, base *Datatype) *Datatype {
	checkBase(base, "Indexed")
	if len(blocklens) != len(displs) {
		panic("datatype: Indexed blocklens/displs length mismatch")
	}
	bd := make([]int64, len(displs))
	for i, v := range displs {
		bd[i] = int64(v) * base.Extent()
	}
	return indexed(blocklens, bd, base, fmt.Sprintf("indexed(%d blocks,%s)", len(blocklens), base.name))
}

// Hindexed is Indexed with byte displacements (MPI_Type_create_hindexed).
func Hindexed(blocklens []int, displsBytes []int64, base *Datatype) *Datatype {
	checkBase(base, "Hindexed")
	if len(blocklens) != len(displsBytes) {
		panic("datatype: Hindexed blocklens/displs length mismatch")
	}
	return indexed(blocklens, displsBytes, base, fmt.Sprintf("hindexed(%d blocks,%s)", len(blocklens), base.name))
}

// IndexedBlock returns equally sized blocks of blocklen base elements at
// element displacements displs (MPI_Type_create_indexed_block).
func IndexedBlock(blocklen int, displs []int, base *Datatype) *Datatype {
	checkBase(base, "IndexedBlock")
	bl := make([]int, len(displs))
	for i := range bl {
		bl[i] = blocklen
	}
	bd := make([]int64, len(displs))
	for i, v := range displs {
		bd[i] = int64(v) * base.Extent()
	}
	return indexed(bl, bd, base, fmt.Sprintf("indexedBlock(%d blocks of %d,%s)", len(displs), blocklen, base.name))
}

func indexed(blocklens []int, displsBytes []int64, base *Datatype, name string) *Datatype {
	d := &Datatype{kind: kindIndexed, name: name}
	var total int64
	first := true
	for i, bl := range blocklens {
		if bl < 0 {
			panic("datatype: negative block length")
		}
		total += int64(bl)
		if bl == 0 {
			continue
		}
		s := displsBytes[i] + base.lb
		e := displsBytes[i] + base.lb + int64(bl)*base.Extent()
		if first || s < d.lb {
			d.lb = s
		}
		if first || e > d.ub {
			d.ub = e
		}
		first = false
		d.flat = instantiateN(d.flat, base, displsBytes[i], int64(bl))
	}
	d.size = total * base.size
	d.sig = appendSig(nil, base, total)
	return d.finish()
}

// Struct returns the most general constructor: blocklens[i] elements of
// types[i] at byte displacement displs[i] (MPI_Type_create_struct).
func Struct(blocklens []int, displs []int64, types []*Datatype) *Datatype {
	if len(blocklens) != len(displs) || len(blocklens) != len(types) {
		panic("datatype: Struct argument length mismatch")
	}
	d := &Datatype{kind: kindStruct, name: fmt.Sprintf("struct(%d members)", len(types))}
	first := true
	for i, bl := range blocklens {
		checkBase(types[i], "Struct")
		if bl < 0 {
			panic("datatype: negative block length")
		}
		d.size += int64(bl) * types[i].size
		if bl == 0 {
			continue
		}
		s := displs[i] + types[i].lb
		e := displs[i] + types[i].lb + int64(bl)*types[i].Extent()
		if first || s < d.lb {
			d.lb = s
		}
		if first || e > d.ub {
			d.ub = e
		}
		first = false
		d.flat = instantiateN(d.flat, types[i], displs[i], int64(bl))
		d.sig = appendSig(d.sig, types[i], int64(bl))
	}
	return d.finish()
}

// Order selects array storage order for Subarray.
type Order int

// Array storage orders.
const (
	OrderC       Order = iota // row-major: last dimension contiguous
	OrderFortran              // column-major: first dimension contiguous
)

// Subarray returns the type selecting an n-dimensional sub-block of an
// n-dimensional array of base elements (MPI_Type_create_subarray). Its
// extent is that of the full array, so consecutive elements tile
// consecutive arrays.
func Subarray(sizes, subsizes, starts []int, order Order, base *Datatype) *Datatype {
	checkBase(base, "Subarray")
	n := len(sizes)
	if len(subsizes) != n || len(starts) != n || n == 0 {
		panic("datatype: Subarray dimension mismatch")
	}
	total := int64(1)
	sub := int64(1)
	for i := 0; i < n; i++ {
		if subsizes[i] < 0 || starts[i] < 0 || starts[i]+subsizes[i] > sizes[i] {
			panic(fmt.Sprintf("datatype: Subarray dim %d out of range", i))
		}
		total *= int64(sizes[i])
		sub *= int64(subsizes[i])
	}
	d := &Datatype{
		kind: kindSubarray,
		name: fmt.Sprintf("subarray(%v of %v,%s)", subsizes, sizes, base.name),
		size: sub * base.size,
		lb:   0,
		ub:   total * base.Extent(),
	}

	// dims ordered from slowest to fastest varying.
	dims := make([]int, n)
	for i := range dims {
		if order == OrderC {
			dims[i] = i
		} else {
			dims[i] = n - 1 - i
		}
	}
	// strides[d] = elements stepped per unit of dimension d.
	strides := make([]int64, n)
	st := int64(1)
	for i := n - 1; i >= 0; i-- {
		strides[dims[i]] = st
		st *= int64(sizes[dims[i]])
	}
	var walk func(level int, elemOff int64)
	walk = func(level int, elemOff int64) {
		dim := dims[level]
		if level == n-1 {
			// Fastest dimension: one contiguous run of subsizes[dim]
			// base elements (strides[dim] == 1).
			start := elemOff + int64(starts[dim])
			d.flat = instantiateN(d.flat, base, start*base.Extent(), int64(subsizes[dim]))
			return
		}
		for j := 0; j < subsizes[dim]; j++ {
			walk(level+1, elemOff+(int64(starts[dim])+int64(j))*strides[dim])
		}
	}
	if sub > 0 {
		walk(0, 0)
	}
	d.sig = appendSig(nil, base, sub)
	return d.finish()
}

// Resized overrides the lower bound and extent of base
// (MPI_Type_create_resized).
func Resized(base *Datatype, lb, extent int64) *Datatype {
	checkBase(base, "Resized")
	d := &Datatype{
		kind: kindResized,
		name: fmt.Sprintf("resized(%s,lb=%d,extent=%d)", base.name, lb, extent),
		size: base.size,
		lb:   lb,
		ub:   lb + extent,
		flat: base.flat,
		sig:  base.sig,
	}
	return d.finish()
}

// detectVector returns a VectorView if blocks form an evenly strided set
// of equal-length blocks (nil otherwise). Single-block layouts report
// Stride == BlockLen.
func detectVector(flat []Block) *VectorView {
	if len(flat) == 0 {
		return nil
	}
	v := &VectorView{
		Off:      flat[0].Off,
		Count:    int64(len(flat)),
		BlockLen: flat[0].Len,
		Stride:   flat[0].Len,
	}
	if len(flat) == 1 {
		return v
	}
	v.Stride = flat[1].Off - flat[0].Off
	for i, b := range flat {
		if b.Len != v.BlockLen {
			return nil
		}
		if b.Off != v.Off+int64(i)*v.Stride {
			return nil
		}
	}
	return v
}

// VectorViewN returns the VectorView of the full (datatype, count)
// pattern of a send or receive, or nil if that pattern is not an evenly
// strided set of equal blocks.
func VectorViewN(d *Datatype, count int) *VectorView {
	if count < 0 || d.vec == nil {
		return nil
	}
	v := *d.vec
	if count <= 1 {
		if count == 0 {
			return &VectorView{}
		}
		return &v
	}
	ext := d.Extent()
	if v.Count == 1 {
		// Single block per element: blocks repeat at extent stride.
		if ext == v.BlockLen {
			return &VectorView{Off: v.Off, Count: 1, BlockLen: int64(count) * v.BlockLen, Stride: int64(count) * v.BlockLen}
		}
		return &VectorView{Off: v.Off, Count: int64(count), BlockLen: v.BlockLen, Stride: ext}
	}
	// Multi-block element: the next element must continue the stride.
	if ext != v.Stride*v.Count {
		return nil
	}
	v.Count *= int64(count)
	return &v
}

// SignaturesMatch reports whether (da, countA) and (db, countB) describe
// the same sequence of primitive types, the MPI matching rule that lets
// a vector be received as contiguous (Fig. 11's FFT reshape).
func SignaturesMatch(da *Datatype, countA int, db *Datatype, countB int) bool {
	return sigCompare(da, countA, db, countB, false)
}

// SignaturePrefix reports whether (da, countA)'s primitive sequence is a
// prefix of (db, countB)'s: the MPI rule admitting a matched message
// shorter than the posted receive (partial receive, MPI_Get_count).
func SignaturePrefix(da *Datatype, countA int, db *Datatype, countB int) bool {
	return sigCompare(da, countA, db, countB, true)
}

func sigCompare(da *Datatype, countA int, db *Datatype, countB int, prefix bool) bool {
	type cursor struct {
		sig  []SigRun
		reps int64
		i    int
		rem  int64
	}
	next := func(c *cursor) *SigRun {
		for {
			if c.i < len(c.sig) {
				r := &c.sig[c.i]
				return r
			}
			c.reps--
			if c.reps <= 0 {
				return nil
			}
			c.i = 0
		}
	}
	a := &cursor{sig: da.sig, reps: int64(countA)}
	b := &cursor{sig: db.sig, reps: int64(countB)}
	if len(a.sig) == 0 || countA <= 0 {
		a.sig, a.reps = nil, 0
		a.i = 0
	}
	if len(b.sig) == 0 || countB <= 0 {
		b.sig, b.reps = nil, 0
		b.i = 0
	}
	var ra, rb *SigRun
	var na, nb int64
	for {
		if na == 0 {
			if ra = next(a); ra != nil {
				na = ra.Count
				a.i++
			}
		}
		if nb == 0 {
			if rb = next(b); rb != nil {
				nb = rb.Count
				b.i++
			}
		}
		if na == 0 && nb == 0 {
			return true
		}
		if na == 0 {
			return prefix // A exhausted first: a valid partial message
		}
		if nb == 0 {
			return false
		}
		if ra.Prim != rb.Prim {
			return false
		}
		m := na
		if nb < m {
			m = nb
		}
		na -= m
		nb -= m
	}
}
