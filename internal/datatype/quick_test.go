package datatype

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randType builds a random non-overlapping datatype tree of bounded depth
// using the given source of randomness.
func randType(r *rand.Rand, depth int) *Datatype {
	prims := []*Datatype{Byte, Char, Int32, Int64, Float32, Float64}
	if depth <= 0 || r.Intn(4) == 0 {
		return prims[r.Intn(len(prims))]
	}
	base := randType(r, depth-1)
	switch r.Intn(5) {
	case 0:
		return Contiguous(r.Intn(5), base)
	case 1:
		count := r.Intn(4) + 1
		bl := r.Intn(3) + 1
		stride := bl + r.Intn(4) // >= blocklen: no overlap
		return Vector(count, bl, stride, base)
	case 2:
		n := r.Intn(4) + 1
		bls := make([]int, n)
		displs := make([]int, n)
		pos := 0
		for i := 0; i < n; i++ {
			pos += r.Intn(3)
			displs[i] = pos
			bls[i] = r.Intn(3) + 1
			pos += bls[i]
		}
		return Indexed(bls, displs, base)
	case 3:
		n := r.Intn(3) + 1
		bls := make([]int, n)
		displs := make([]int64, n)
		types := make([]*Datatype, n)
		var pos int64
		for i := 0; i < n; i++ {
			types[i] = randType(r, depth-1)
			pos += int64(r.Intn(16))
			// Align displacement to the member origin; keep members
			// disjoint by advancing past the span.
			displs[i] = pos - types[i].TrueLB()
			bls[i] = r.Intn(2) + 1
			span := int64(bls[i]-1)*types[i].Extent() + types[i].TrueLB() + types[i].TrueExtent()
			pos = displs[i] + span
			if pos < displs[i] {
				pos = displs[i]
			}
		}
		return Struct(bls, displs, types)
	default:
		size := r.Intn(5) + 2
		sub := r.Intn(size) + 1
		start := r.Intn(size - sub + 1)
		order := OrderC
		if r.Intn(2) == 0 {
			order = OrderFortran
		}
		return Subarray([]int{size, size}, []int{sub, sub}, []int{start, start}, order, base)
	}
}

func TestQuickFlatSizeConsistency(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := randType(r, 3)
		var sum int64
		for _, b := range dt.Flat() {
			if b.Len <= 0 {
				t.Logf("non-positive block in %s", dt.Name())
				return false
			}
			sum += b.Len
		}
		if sum != dt.Size() {
			t.Logf("%s: blocks sum %d, size %d", dt.Name(), sum, dt.Size())
			return false
		}
		var sigSum int64
		sizes := map[Primitive]int64{PrimByte: 1, PrimChar: 1, PrimInt32: 4, PrimInt64: 8, PrimFloat32: 4, PrimFloat64: 8}
		for _, s := range dt.Signature() {
			sigSum += s.Count * sizes[s.Prim]
		}
		if sigSum != dt.Size() {
			t.Logf("%s: sig bytes %d, size %d", dt.Name(), sigSum, dt.Size())
			return false
		}
		// Note: TrueExtent may legitimately exceed Extent (MPI allows
		// data to stick out of the extent, e.g. a subarray over a base
		// with a positive lower bound), so no relation is asserted.
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBlocksWithinTrueBounds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := randType(r, 3)
		for _, b := range dt.Flat() {
			if b.Off < dt.TrueLB() || b.Off+b.Len > dt.TrueLB()+dt.TrueExtent() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPackUnpackRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := randType(r, 3)
		count := r.Intn(4)
		span := layoutSpan(dt, count)
		if span < 0 || span > 1<<22 {
			return true // skip pathological extents
		}
		src := make([]byte, span)
		r.Read(src)

		c := NewConverter(dt, count)
		packed := make([]byte, c.Total())
		// Pack in random fragments.
		for !c.Done() {
			sz := int64(r.Intn(97) + 1)
			if rem := c.Remaining(); sz > rem {
				sz = rem
			}
			off := c.Packed()
			if got := c.Pack(packed[off:off+sz], src); got != sz {
				return false
			}
		}

		dst := make([]byte, span)
		u := NewConverter(dt, count)
		for !u.Done() {
			sz := int64(r.Intn(89) + 1)
			if rem := u.Remaining(); sz > rem {
				sz = rem
			}
			off := u.Packed()
			if got := u.Unpack(dst, packed[off:off+sz]); got != sz {
				return false
			}
		}
		return bytes.Equal(refPack(dt, count, dst), packed)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVectorViewExpandsToBlocks(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := randType(r, 2)
		count := r.Intn(3) + 1
		v := VectorViewN(dt, count)
		if v == nil {
			return true
		}
		// Expanding the view must reproduce the converter's blocks.
		var viewBlocks []Block
		for i := int64(0); i < v.Count; i++ {
			viewBlocks = appendMerged(viewBlocks, Block{Off: v.Off + i*v.Stride, Len: v.BlockLen})
		}
		var convBlocks []Block
		c := NewConverter(dt, count)
		c.Advance(c.Total(), func(memOff, packOff, n int64) {
			convBlocks = appendMerged(convBlocks, Block{Off: memOff, Len: n})
		})
		if len(viewBlocks) != len(convBlocks) {
			t.Logf("%s count %d: view %d blocks, conv %d", dt.Name(), count, len(viewBlocks), len(convBlocks))
			return false
		}
		for i := range viewBlocks {
			if viewBlocks[i] != convBlocks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSignatureSelfMatch(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := randType(r, 3)
		count := r.Intn(5)
		if !SignaturesMatch(dt, count, dt, count) {
			return false
		}
		// A type always signature-matches its packed contiguous form,
		// expressed as repeated primitives.
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
