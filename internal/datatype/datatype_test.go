package datatype

import (
	"reflect"
	"testing"
)

func TestPrimitives(t *testing.T) {
	cases := []struct {
		dt   *Datatype
		size int64
	}{{Byte, 1}, {Char, 1}, {Int32, 4}, {Int64, 8}, {Float32, 4}, {Float64, 8}}
	for _, c := range cases {
		if c.dt.Size() != c.size || c.dt.Extent() != c.size {
			t.Errorf("%s: size %d extent %d", c.dt.Name(), c.dt.Size(), c.dt.Extent())
		}
		if !c.dt.IsContiguous() {
			t.Errorf("%s not contiguous", c.dt.Name())
		}
	}
}

func TestContiguous(t *testing.T) {
	d := Contiguous(10, Float64)
	if d.Size() != 80 || d.Extent() != 80 {
		t.Fatalf("size %d extent %d", d.Size(), d.Extent())
	}
	if !d.IsContiguous() || d.NumBlocks() != 1 {
		t.Fatalf("flat = %v", d.Flat())
	}
	if want := []SigRun{{PrimFloat64, 10}}; !reflect.DeepEqual(d.Signature(), want) {
		t.Fatalf("sig = %v", d.Signature())
	}
}

func TestVectorLayout(t *testing.T) {
	d := Vector(3, 2, 4, Float64)
	want := []Block{{0, 16}, {32, 16}, {64, 16}}
	if !reflect.DeepEqual(d.Flat(), want) {
		t.Fatalf("flat = %v", d.Flat())
	}
	if d.Size() != 48 {
		t.Fatalf("size = %d", d.Size())
	}
	if d.Extent() != 80 { // ((3-1)*4+2)*8
		t.Fatalf("extent = %d", d.Extent())
	}
	v := d.Vector()
	if v == nil || v.Count != 3 || v.BlockLen != 16 || v.Stride != 32 || v.Off != 0 {
		t.Fatalf("vector view = %+v", v)
	}
}

func TestVectorDenseMergesToContiguous(t *testing.T) {
	d := Vector(5, 3, 3, Float64) // stride == blocklen
	if !d.IsContiguous() || d.NumBlocks() != 1 {
		t.Fatalf("flat = %v", d.Flat())
	}
	if d.Size() != 120 || d.Extent() != 120 {
		t.Fatalf("size %d extent %d", d.Size(), d.Extent())
	}
}

func TestHvectorByteStride(t *testing.T) {
	d := Hvector(2, 1, 13, Byte) // deliberately unaligned byte stride
	want := []Block{{0, 1}, {13, 1}}
	if !reflect.DeepEqual(d.Flat(), want) {
		t.Fatalf("flat = %v", d.Flat())
	}
	if d.Extent() != 14 {
		t.Fatalf("extent = %d", d.Extent())
	}
}

// lowerTriangular builds the paper's indexed lower-triangular matrix type:
// column i of an n x n column-major matrix keeps elements i..n-1.
func lowerTriangular(n int) *Datatype {
	bl := make([]int, n)
	displs := make([]int, n)
	for i := 0; i < n; i++ {
		bl[i] = n - i
		displs[i] = i*n + i
	}
	return Indexed(bl, displs, Float64)
}

func TestIndexedTriangular(t *testing.T) {
	d := lowerTriangular(4)
	want := []Block{{0, 32}, {40, 24}, {80, 16}, {120, 8}}
	if !reflect.DeepEqual(d.Flat(), want) {
		t.Fatalf("flat = %v", d.Flat())
	}
	if d.Size() != 10*8 {
		t.Fatalf("size = %d", d.Size())
	}
	if d.Vector() != nil {
		t.Fatal("triangular should not be a vector")
	}
	if want := []SigRun{{PrimFloat64, 10}}; !reflect.DeepEqual(d.Signature(), want) {
		t.Fatalf("sig = %v", d.Signature())
	}
}

func TestIndexedBlock(t *testing.T) {
	d := IndexedBlock(2, []int{0, 5, 9}, Int32)
	want := []Block{{0, 8}, {20, 8}, {36, 8}}
	if !reflect.DeepEqual(d.Flat(), want) {
		t.Fatalf("flat = %v", d.Flat())
	}
}

func TestStructMixed(t *testing.T) {
	// { int64 a; float32 b[3]; } with a trailing gap via displacements.
	d := Struct([]int{1, 3}, []int64{0, 8}, []*Datatype{Int64, Float32})
	if d.Size() != 8+12 {
		t.Fatalf("size = %d", d.Size())
	}
	if d.NumBlocks() != 1 { // 8 bytes + 12 bytes adjacent -> merged
		t.Fatalf("flat = %v", d.Flat())
	}
	want := []SigRun{{PrimInt64, 1}, {PrimFloat32, 3}}
	if !reflect.DeepEqual(d.Signature(), want) {
		t.Fatalf("sig = %v", d.Signature())
	}
	// With a gap they stay separate.
	g := Struct([]int{1, 3}, []int64{0, 16}, []*Datatype{Int64, Float32})
	if g.NumBlocks() != 2 {
		t.Fatalf("gapped flat = %v", g.Flat())
	}
	if g.Extent() != 28 {
		t.Fatalf("gapped extent = %d", g.Extent())
	}
}

func TestSubarrayFortranEqualsVector(t *testing.T) {
	// A 4x3 sub-block starting at (1,2) of an 8x8 column-major array of
	// doubles equals columns: for c in 2..4, run of 4 doubles at 1+c*8.
	d := Subarray([]int{8, 8}, []int{4, 3}, []int{1, 2}, OrderFortran, Float64)
	want := []Block{{(1 + 2*8) * 8, 32}, {(1 + 3*8) * 8, 32}, {(1 + 4*8) * 8, 32}}
	if !reflect.DeepEqual(d.Flat(), want) {
		t.Fatalf("flat = %v", d.Flat())
	}
	if d.Extent() != 64*8 { // full array extent
		t.Fatalf("extent = %d", d.Extent())
	}
	if v := d.Vector(); v == nil || v.Count != 3 || v.BlockLen != 32 || v.Stride != 64 {
		t.Fatalf("vector view = %+v", v)
	}
}

func TestSubarrayCOrder(t *testing.T) {
	// Row-major: last dim fastest. 2x2 at (0,1) of 3x4 int32.
	d := Subarray([]int{3, 4}, []int{2, 2}, []int{0, 1}, OrderC, Int32)
	want := []Block{{4, 8}, {20, 8}}
	if !reflect.DeepEqual(d.Flat(), want) {
		t.Fatalf("flat = %v", d.Flat())
	}
}

func TestResizedTiling(t *testing.T) {
	// A single double resized to extent 24, tiled 3 times: offsets 0,24,48.
	r := Resized(Float64, 0, 24)
	if r.Extent() != 24 || r.Size() != 8 {
		t.Fatalf("extent %d size %d", r.Extent(), r.Size())
	}
	d := Contiguous(3, r)
	want := []Block{{0, 8}, {24, 8}, {48, 8}}
	if !reflect.DeepEqual(d.Flat(), want) {
		t.Fatalf("flat = %v", d.Flat())
	}
}

func TestTrueBounds(t *testing.T) {
	d := Subarray([]int{8}, []int{2}, []int{3}, OrderC, Float64)
	if d.TrueLB() != 24 || d.TrueExtent() != 16 {
		t.Fatalf("tlb %d trueExtent %d", d.TrueLB(), d.TrueExtent())
	}
	if d.LB() != 0 || d.Extent() != 64 {
		t.Fatalf("lb %d extent %d", d.LB(), d.Extent())
	}
}

func TestZeroCountTypes(t *testing.T) {
	d := Contiguous(0, Float64)
	if d.Size() != 0 || d.Extent() != 0 || d.NumBlocks() != 0 {
		t.Fatalf("zero contig: %+v", d)
	}
	v := Vector(0, 5, 7, Float64)
	if v.Size() != 0 || v.NumBlocks() != 0 {
		t.Fatalf("zero vector: %+v", v)
	}
	i := Indexed([]int{0, 0}, []int{3, 9}, Int32)
	if i.Size() != 0 || i.NumBlocks() != 0 {
		t.Fatalf("zero indexed: %+v", i)
	}
}

func TestVectorViewN(t *testing.T) {
	// Sub-matrix: 4 columns of 4 doubles inside an 8-row matrix.
	d := Vector(4, 4, 8, Float64)
	// One element: count 4 stride 64. Extent = ((4-1)*8+4)*8 = 224.
	// 224 != 4*64, so two elements do NOT continue the stride.
	if v := VectorViewN(d, 2); v != nil {
		t.Fatalf("expected nil view, got %+v", v)
	}
	if v := VectorViewN(d, 1); v == nil || v.Count != 4 {
		t.Fatalf("count-1 view = %+v", v)
	}
	// Resize the element so elements tile seamlessly: extent 4*64=256.
	r := Resized(d, 0, 256)
	if v := VectorViewN(r, 3); v == nil || v.Count != 12 || v.Stride != 64 || v.BlockLen != 32 {
		t.Fatalf("tiled view = %+v", v)
	}
	// Contiguous type: single growing block.
	ct := Contiguous(4, Float64)
	if v := VectorViewN(ct, 5); v == nil || v.Count != 1 || v.BlockLen != 160 {
		t.Fatalf("contig view = %+v", v)
	}
}

func TestSignaturesMatch(t *testing.T) {
	vec := Vector(4, 2, 5, Float64) // 8 doubles
	contig := Contiguous(8, Float64)
	if !SignaturesMatch(vec, 1, contig, 1) {
		t.Fatal("vector(8 doubles) should match contiguous(8 doubles)")
	}
	if !SignaturesMatch(vec, 3, contig, 3) {
		t.Fatal("count-scaled match failed")
	}
	if SignaturesMatch(vec, 1, contig, 2) {
		t.Fatal("different totals must not match")
	}
	if SignaturesMatch(vec, 1, Contiguous(8, Int64), 1) {
		t.Fatal("different primitives must not match")
	}
	if !SignaturesMatch(Contiguous(2, Float64), 4, Contiguous(4, Float64), 2) {
		t.Fatal("run boundaries should not matter")
	}
	if !SignaturesMatch(vec, 0, contig, 0) {
		t.Fatal("two empty signatures should match")
	}
	mixed := Struct([]int{1, 1}, []int64{0, 8}, []*Datatype{Int64, Float64})
	if SignaturesMatch(mixed, 1, Contiguous(2, Float64), 1) {
		t.Fatal("int64+double must not match double+double")
	}
}

func TestInvalidConstructionPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"negative contiguous", func() { Contiguous(-1, Float64) }},
		{"nil base", func() { Contiguous(1, nil) }},
		{"negative blocklen", func() { Vector(2, -1, 3, Float64) }},
		{"indexed mismatch", func() { Indexed([]int{1}, []int{0, 1}, Byte) }},
		{"subarray range", func() { Subarray([]int{4}, []int{3}, []int{2}, OrderC, Byte) }},
		{"struct mismatch", func() { Struct([]int{1}, []int64{0, 8}, []*Datatype{Int64}) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}
