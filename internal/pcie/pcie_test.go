package pcie

import (
	"testing"

	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

func newNode(t *testing.T, ngpus int) (*sim.Engine, *Node) {
	t.Helper()
	e := sim.NewEngine()
	return e, NewNode(e, 0, ngpus, gpu.KeplerK40(), DefaultParams())
}

func TestP2PFasterThanHostRouted(t *testing.T) {
	_, n := newNode(t, 2)
	if p2p, h2d := n.P2P(0, 1).Bandwidth(), n.H2D(1).Bandwidth(); p2p <= h2d {
		t.Fatalf("P2P %v not faster than H2D %v", p2p, h2d)
	}
}

func TestTwoD2HShareRootLink(t *testing.T) {
	e, n := newNode(t, 2)
	sz := int64(100 << 20)
	var ends [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("xfer", func(p *sim.Proc) {
			n.D2H(i).Transfer(p, sz)
			ends[i] = p.Now()
		})
	}
	e.Run()
	solo := sim.TimeForBytes(sz, n.Params().RootGBps)
	if ends[1] < 2*solo {
		t.Fatalf("concurrent D2H did not serialize on root: %v vs solo %v", ends[1], solo)
	}
}

func TestP2PPairsDoNotContendWithHostTraffic(t *testing.T) {
	e, n := newNode(t, 3)
	sz := int64(100 << 20)
	var p2pEnd sim.Time
	e.Spawn("p2p", func(p *sim.Proc) {
		n.P2P(0, 1).Transfer(p, sz)
		p2pEnd = p.Now()
	})
	e.Spawn("h2d", func(p *sim.Proc) {
		n.H2D(2).Transfer(p, sz)
	})
	e.Run()
	solo := sim.TimeForBytes(sz, n.Params().SlotGBps) + n.P2P(0, 1).Latency()
	if p2pEnd > solo+sim.Microsecond {
		t.Fatalf("P2P slowed by unrelated host traffic: %v vs %v", p2pEnd, solo)
	}
}

func TestHostCopyMovesBytesAndChargesBus(t *testing.T) {
	e, n := newNode(t, 1)
	a := n.Host().Alloc(1<<20, 256)
	b := n.Host().Alloc(1<<20, 256)
	mem.FillPattern(a, 5)
	var dur sim.Time
	e.Spawn("cp", func(p *sim.Proc) {
		t0 := p.Now()
		n.HostCopy(p, b, a)
		dur = p.Now() - t0
	})
	e.Run()
	if !mem.Equal(a, b) {
		t.Fatal("copy failed")
	}
	want := sim.TimeForBytes(2<<20, n.Params().HostBusRawGBps) + n.HostBus().Latency()
	if dur != want {
		t.Fatalf("dur = %v, want %v", dur, want)
	}
}

func TestDeviceOf(t *testing.T) {
	_, n := newNode(t, 2)
	if got := n.DeviceOf(n.GPU(1).Mem()); got != 1 {
		t.Fatalf("DeviceOf(gpu1) = %d", got)
	}
	if got := n.DeviceOf(n.Host()); got != -1 {
		t.Fatalf("DeviceOf(host) = %d", got)
	}
}

func TestGPUCopyEngineLinksWired(t *testing.T) {
	_, n := newNode(t, 2)
	for i := 0; i < 2; i++ {
		d := n.GPU(i)
		if d.H2D != n.SlotRx(i) || d.D2H != n.SlotTx(i) {
			t.Fatalf("gpu %d links not wired", i)
		}
	}
}
