// Package pcie models the intra-node interconnect of one cluster node:
// host memory, the PCI-Express root complex, and the per-slot links of
// every GPU.
//
// Topology (per direction, full duplex):
//
//	host --rootTx--> [switch] --gpuRx[i]--> GPU i
//	GPU i --gpuTx[i]--> [switch] --rootRx--> host
//	GPU i --gpuTx[i]--> [switch] --gpuRx[j]--> GPU j   (peer to peer)
//
// Peer-to-peer traffic does not traverse the root-complex links, which is
// why GPU-GPU bandwidth exceeds CPU-GPU bandwidth, as the paper notes
// (§4.1, citing its reference [18]). Host-to-device and device-to-host
// transfers from different GPUs contend on the root links.
package pcie

import (
	"fmt"

	"gpuddt/internal/fault"
	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Params calibrates the node interconnect.
type Params struct {
	// RootGBps is the bandwidth of each root-complex direction
	// (host-to-switch and switch-to-host). PCIe gen3 x16 practical.
	RootGBps float64

	// SlotGBps is the bandwidth of each GPU slot direction. Slightly
	// above the root so that P2P beats host-routed transfers.
	SlotGBps float64

	// HopLatency is the propagation latency per link hop.
	HopLatency sim.Time

	// HostBusRawGBps is the host DRAM bandwidth available to CPU copies,
	// counting reads and writes separately (a host memcpy of n bytes
	// consumes 2n raw).
	HostBusRawGBps float64

	// IPCMapCost is the one-time cost of opening a CUDA IPC memory
	// handle from a peer process (§4.1: "a costly operation" that the
	// pipelined protocol amortizes by caching).
	IPCMapCost sim.Time

	// HostMemBytes sizes the simulated host memory space.
	HostMemBytes int64
}

// DefaultParams returns the PSG-cluster-like calibration: PCIe gen3 x16.
func DefaultParams() Params {
	return Params{
		RootGBps:       10.0,
		SlotGBps:       10.5,
		HopLatency:     750 * sim.Nanosecond,
		HostBusRawGBps: 24.0,
		IPCMapCost:     50 * sim.Microsecond,
		HostMemBytes:   1 << 30,
	}
}

// Node is one cluster node: a host memory space, a set of GPUs, and the
// PCIe links between them.
type Node struct {
	eng    *sim.Engine
	id     int
	params Params
	host   *mem.Space
	bus    *sim.Link
	gpus   []*gpu.Device
	faults *fault.Injector

	rootTx, rootRx *sim.Link
	gpuTx, gpuRx   []*sim.Link
}

// SetFaults installs a fault injector on the node and every GPU in it.
// A nil injector (the default) keeps all operations infallible.
func (n *Node) SetFaults(in *fault.Injector) {
	n.faults = in
	for _, d := range n.gpus {
		d.SetFaults(in)
	}
}

// Faults returns the node's fault injector (nil when none installed).
func (n *Node) Faults() *fault.Injector { return n.faults }

// NewNode builds a node with ngpus GPUs using the given calibrations and
// wires every GPU's H2D/D2H copy-engine paths.
func NewNode(eng *sim.Engine, id, ngpus int, gp gpu.Params, p Params) *Node {
	n := &Node{
		eng:    eng,
		id:     id,
		params: p,
		host:   mem.NewSpace(fmt.Sprintf("node%d.host", id), mem.Host, p.HostMemBytes),
		bus:    eng.NewLink(fmt.Sprintf("node%d.hostbus", id), p.HostBusRawGBps, 100*sim.Nanosecond),
		rootTx: eng.NewLink(fmt.Sprintf("node%d.rootTx", id), p.RootGBps, p.HopLatency),
		rootRx: eng.NewLink(fmt.Sprintf("node%d.rootRx", id), p.RootGBps, p.HopLatency),
	}
	for i := 0; i < ngpus; i++ {
		d := gpu.NewDevice(eng, i, gp)
		tx := eng.NewLink(fmt.Sprintf("node%d.gpu%d.tx", id, i), p.SlotGBps, p.HopLatency)
		rx := eng.NewLink(fmt.Sprintf("node%d.gpu%d.rx", id, i), p.SlotGBps, p.HopLatency)
		// The copy-engine shortcuts on the device point at the slot
		// links; full paths via the root are built by H2D/D2H below.
		d.H2D, d.D2H = rx, tx
		n.gpus = append(n.gpus, d)
		n.gpuTx = append(n.gpuTx, tx)
		n.gpuRx = append(n.gpuRx, rx)
	}
	return n
}

// Engine returns the simulation engine.
func (n *Node) Engine() *sim.Engine { return n.eng }

// ID returns the node index within the cluster.
func (n *Node) ID() int { return n.id }

// Params returns the interconnect calibration.
func (n *Node) Params() Params { return n.params }

// Host returns the node's host memory space.
func (n *Node) Host() *mem.Space { return n.host }

// Release recycles the backing storage of the node's host memory and
// of every GPU's device memory (see mem.Space.Release). The node must
// not be used afterwards.
func (n *Node) Release() {
	n.host.Release()
	for _, d := range n.gpus {
		d.Release()
	}
}

// FootprintBytes returns the real memory backing the node's simulated
// spaces: host DRAM plus every GPU's device memory (see
// mem.Space.FootprintBytes).
func (n *Node) FootprintBytes() int64 {
	total := n.host.FootprintBytes()
	for _, d := range n.gpus {
		total += d.Mem().FootprintBytes()
	}
	return total
}

// NumGPUs returns the number of GPUs.
func (n *Node) NumGPUs() int { return len(n.gpus) }

// GPU returns device i.
func (n *Node) GPU(i int) *gpu.Device { return n.gpus[i] }

// HostBus returns the host memory bus (raw bytes: charge 2n per copy).
func (n *Node) HostBus() *sim.Link { return n.bus }

// H2D returns the host-to-device path for GPU i.
func (n *Node) H2D(i int) *sim.Path {
	return &sim.Path{
		Name:  fmt.Sprintf("%s->gpu%d", n.host.Name(), i),
		Links: []*sim.Link{n.rootTx, n.gpuRx[i]},
	}
}

// D2H returns the device-to-host path for GPU i.
func (n *Node) D2H(i int) *sim.Path {
	return &sim.Path{
		Name:  fmt.Sprintf("gpu%d->%s", i, n.host.Name()),
		Links: []*sim.Link{n.gpuTx[i], n.rootRx},
	}
}

// P2P returns the peer-to-peer path from GPU i to GPU j, bypassing the
// root complex. It panics for i == j (use gpu.Device.CopyD2D).
func (n *Node) P2P(i, j int) *sim.Path {
	if i == j {
		panic("pcie: P2P requires distinct GPUs")
	}
	return &sim.Path{
		Name:  fmt.Sprintf("gpu%d->gpu%d", i, j),
		Links: []*sim.Link{n.gpuTx[i], n.gpuRx[j]},
	}
}

// SlotTx returns GPU i's transmit link (used by zero-copy kernels whose
// writes flow device-to-host).
func (n *Node) SlotTx(i int) *sim.Link { return n.gpuTx[i] }

// SlotRx returns GPU i's receive link (zero-copy reads, host-to-device).
func (n *Node) SlotRx(i int) *sim.Link { return n.gpuRx[i] }

// HostCopy moves n bytes between two host buffers on the calling process,
// charging 2n raw bytes on the host bus. An injected copy fault fails
// before any byte moves, so a retry is idempotent.
func (n *Node) HostCopy(p *sim.Proc, dst, src mem.Buffer) error {
	if dst.Len() != src.Len() {
		panic("pcie: HostCopy length mismatch")
	}
	if err := n.faults.Check(p, fault.PCIeCopy, src.Len()); err != nil {
		return err
	}
	n.bus.Transfer(p, 2*src.Len())
	mem.Copy(dst, src)
	return nil
}

// DeviceOf returns the GPU owning the given device-memory space, or -1
// for host memory or a space from another node.
func (n *Node) DeviceOf(s *mem.Space) int {
	for i, d := range n.gpus {
		if d.Mem() == s {
			return i
		}
	}
	return -1
}
