package shmem

import (
	"bytes"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
)

func twoPEs() Config {
	return Config{Ranks: []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}}}
}
func fourPEs() Config {
	return Config{Ranks: []mpi.Placement{
		{Node: 0, GPU: 0}, {Node: 0, GPU: 1}, {Node: 1, GPU: 0}, {Node: 1, GPU: 1},
	}}
}

func TestSymmetricAddressesMatch(t *testing.T) {
	offs := make([][]int64, 4)
	Run(fourPEs(), func(pe *PE) {
		a := pe.Malloc(1000)
		b := pe.Malloc(4096)
		offs[pe.Rank()] = []int64{a.Off, b.Off}
	})
	for r := 1; r < 4; r++ {
		if offs[r][0] != offs[0][0] || offs[r][1] != offs[0][1] {
			t.Fatalf("asymmetric heap: %v vs %v", offs[r], offs[0])
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	const n = 500000 // large enough for rendezvous
	ok := true
	Run(twoPEs(), func(pe *PE) {
		sym := pe.Malloc(n)
		if pe.Rank() == 0 {
			src := pe.Underlying().Malloc(n)
			mem.FillPattern(src, 9)
			pe.Put(sym, src, 1)
			pe.BarrierAll()
			// Read it back from PE 1.
			back := pe.Underlying().Malloc(n)
			pe.Get(back, sym, 1)
			if !mem.Equal(src, back) {
				ok = false
			}
			pe.BarrierAll()
		} else {
			pe.BarrierAll()
			pe.BarrierAll()
		}
	})
	if !ok {
		t.Fatal("put/get round trip corrupted data")
	}
}

func TestIPutStrided(t *testing.T) {
	// PE 0 puts a strided sub-matrix into PE 1's symmetric triangular
	// layout... simpler: vector -> vector with matching signatures.
	nrow, ncol, ld := 96, 64, 128
	vec := shapes.SubMatrix(nrow, ncol, ld)
	contigDT := datatype.Contiguous(nrow*ncol, datatype.Float64)
	var want, got []byte
	Run(twoPEs(), func(pe *PE) {
		span := int64(ld*ncol) * 8
		sym := pe.Malloc(span)
		if pe.Rank() == 0 {
			local := pe.Underlying().Malloc(span)
			mem.FillPattern(local, 33)
			c := datatype.NewConverter(vec, 1)
			want = make([]byte, c.Total())
			c.Pack(want, local.Bytes())
			// Strided local data lands contiguously at the target.
			pe.IPut(sym, contigDT, 1, local, vec, 1, 1)
			pe.BarrierAll()
		} else {
			pe.BarrierAll()
			got = append([]byte(nil), pe.Local(sym).Slice(0, vec.Size()).Bytes()...)
		}
	})
	if !bytes.Equal(want, got) {
		t.Fatal("strided IPut mismatch")
	}
}

func TestIGetScatter(t *testing.T) {
	// PE 0 gets PE 1's contiguous data scattered into its own strided
	// layout.
	nrow, ncol, ld := 64, 48, 80
	vec := shapes.SubMatrix(nrow, ncol, ld)
	contigDT := datatype.Contiguous(nrow*ncol, datatype.Float64)
	var want, got []byte
	Run(twoPEs(), func(pe *PE) {
		sym := pe.Malloc(vec.Size())
		if pe.Rank() == 1 {
			mem.FillPattern(pe.Local(sym), 44)
			want = append([]byte(nil), pe.Local(sym).Bytes()...)
		}
		pe.BarrierAll()
		if pe.Rank() == 0 {
			span := int64(ld*ncol) * 8
			local := pe.Underlying().Malloc(span)
			pe.IGet(local, vec, 1, sym, contigDT, 1, 1)
			c := datatype.NewConverter(vec, 1)
			got = make([]byte, c.Total())
			c.Pack(got, local.Bytes())
		}
		pe.BarrierAll()
	})
	if !bytes.Equal(want, got) {
		t.Fatal("IGet scatter mismatch")
	}
}

func TestPutNBIAndQuiet(t *testing.T) {
	const n = 300000
	var imgs [3][]byte
	Run(fourPEs(), func(pe *PE) {
		sym := pe.Malloc(n)
		if pe.Rank() == 0 {
			for target := 1; target < 4; target++ {
				src := pe.Underlying().Malloc(n)
				mem.FillPattern(src, uint64(target))
				pe.PutNBI(sym, src, target)
			}
			pe.Quiet()
		}
		pe.BarrierAll()
		if pe.Rank() != 0 {
			imgs[pe.Rank()-1] = append([]byte(nil), pe.Local(sym).Bytes()...)
		}
	})
	ref := mem.NewSpace("ref", mem.Host, n)
	rb := ref.Alloc(n, 1)
	for target := 1; target < 4; target++ {
		mem.FillPattern(rb, uint64(target))
		if !bytes.Equal(imgs[target-1], rb.Bytes()) {
			t.Fatalf("PE %d data wrong after quiet", target)
		}
	}
}

func TestHostHeap(t *testing.T) {
	cfg := twoPEs()
	cfg.HeapOnHost = true
	ok := true
	Run(cfg, func(pe *PE) {
		sym := pe.Malloc(100000)
		if pe.Rank() == 0 {
			src := pe.Underlying().MallocHost(100000)
			mem.FillPattern(src, 5)
			pe.Put(sym, src, 1)
			pe.BarrierAll()
		} else {
			pe.BarrierAll()
			ref := pe.Underlying().MallocHost(100000)
			mem.FillPattern(ref, 5)
			if !mem.Equal(ref, pe.Local(sym)) {
				ok = false
			}
		}
	})
	if !ok {
		t.Fatal("host-heap put failed")
	}
}
