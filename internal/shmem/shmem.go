// Package shmem is an OpenSHMEM-style PGAS layer over the simulated
// cluster, demonstrating the paper's claim that the GPU datatype
// engine's ideas "can be easily ported ... to different programming
// paradigms (OpenSHMEM ...)" (§1).
//
// Every processing element (PE) owns a symmetric heap carved out of its
// GPU memory: allocations made collectively get identical offsets on
// every PE, so a SymBuffer is a valid remote address everywhere. Put and
// Get move contiguous data; IPut and IGet move strided/indexed layouts
// described by MPI datatypes, packed and scattered by the GPU datatype
// engine through the same pipelined one-sided machinery as mpi.Win.
package shmem

import (
	"fmt"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
)

// Config sizes the job.
type Config struct {
	// Ranks places each PE (as in mpi.Config).
	Ranks []mpi.Placement
	// HeapBytes is the symmetric heap size per PE (default 256 MiB).
	HeapBytes int64
	// HeapOnHost places the symmetric heap in host memory instead of
	// the PE's GPU.
	HeapOnHost bool
	// MPI passes through the underlying runtime configuration.
	MPI mpi.Config
}

// PE is one processing element.
type PE struct {
	m    *mpi.Rank
	win  *mpi.Win
	heap mem.Buffer
	brk  int64
	reqs []*mpi.Request // non-blocking ops outstanding until Quiet
}

// SymBuffer is a symmetric heap address: the same offset is valid on
// every PE.
type SymBuffer struct {
	Off int64
	Len int64
}

// Run builds the cluster and executes fn once per PE.
func Run(cfg Config, fn func(pe *PE)) {
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 256 << 20
	}
	mcfg := cfg.MPI
	mcfg.Ranks = cfg.Ranks
	w := mpi.NewWorld(mcfg)
	w.Run(func(m *mpi.Rank) {
		var heap mem.Buffer
		if cfg.HeapOnHost {
			heap = m.MallocHost(cfg.HeapBytes)
		} else {
			heap = m.Malloc(cfg.HeapBytes)
		}
		pe := &PE{m: m, heap: heap}
		pe.win = m.WinCreate(heap)
		fn(pe)
	})
}

// Rank returns the PE number (shmem_my_pe).
func (pe *PE) Rank() int { return pe.m.Rank() }

// NPEs returns the number of PEs (shmem_n_pes).
func (pe *PE) NPEs() int { return pe.m.Size() }

// Underlying returns the mpi.Rank for interoperability.
func (pe *PE) Underlying() *mpi.Rank { return pe.m }

// Malloc carves n bytes out of the symmetric heap (shmem_malloc). It is
// collective: every PE must call it in the same order, and the returned
// offset is identical on all PEs.
func (pe *PE) Malloc(n int64) SymBuffer {
	off := (pe.brk + 255) &^ 255
	if off+n > pe.heap.Len() {
		panic(fmt.Sprintf("shmem: symmetric heap exhausted: want %d at %d of %d", n, off, pe.heap.Len()))
	}
	pe.brk = off + n
	pe.m.Barrier() // collective allocation discipline
	return SymBuffer{Off: off, Len: n}
}

// Local returns the calling PE's memory for a symmetric buffer.
func (pe *PE) Local(sb SymBuffer) mem.Buffer {
	return pe.heap.Slice(sb.Off, sb.Len)
}

// contig returns the byte datatype covering n bytes.
func contig(n int64) *datatype.Datatype {
	return datatype.Contiguous(int(n), datatype.Byte)
}

// Put copies the local bytes of src into PE target's instance of dst
// (shmem_putmem), blocking until remotely complete.
func (pe *PE) Put(dst SymBuffer, src mem.Buffer, target int) {
	if src.Len() != dst.Len {
		panic("shmem: Put length mismatch")
	}
	dt := contig(src.Len())
	pe.win.Put(src, dt, 1, target, dst.Off, dt, 1).Wait(pe.m.Proc())
}

// Get copies PE target's instance of src into local dst (shmem_getmem).
func (pe *PE) Get(dst mem.Buffer, src SymBuffer, target int) {
	if dst.Len() != src.Len {
		panic("shmem: Get length mismatch")
	}
	dt := contig(src.Len)
	pe.win.Get(dst, dt, 1, target, src.Off, dt, 1).Wait(pe.m.Proc())
}

// IPut transfers a strided/indexed layout: count elements of sdt read
// from the local buffer src land in PE target's symmetric region dst
// with layout (ddt, dcount) — the generalization of shmem_iput to
// arbitrary MPI datatypes, powered by the GPU datatype engine.
func (pe *PE) IPut(dst SymBuffer, ddt *datatype.Datatype, dcount int,
	src mem.Buffer, sdt *datatype.Datatype, scount, target int) {
	pe.win.Put(src, sdt, scount, target, dst.Off, ddt, dcount).Wait(pe.m.Proc())
}

// IGet is the inverse of IPut.
func (pe *PE) IGet(dst mem.Buffer, ddt *datatype.Datatype, dcount int,
	src SymBuffer, sdt *datatype.Datatype, scount, target int) {
	pe.win.Get(dst, ddt, dcount, target, src.Off, sdt, scount).Wait(pe.m.Proc())
}

// PutNBI starts a non-blocking put (shmem_putmem_nbi); completion is
// guaranteed only after Quiet.
func (pe *PE) PutNBI(dst SymBuffer, src mem.Buffer, target int) {
	dt := contig(src.Len())
	pe.reqs = append(pe.reqs, pe.win.Put(src, dt, 1, target, dst.Off, dt, 1))
}

// Quiet completes all outstanding non-blocking operations issued by
// this PE (shmem_quiet).
func (pe *PE) Quiet() {
	for _, r := range pe.reqs {
		r.Wait(pe.m.Proc())
	}
	pe.reqs = pe.reqs[:0]
}

// BarrierAll synchronizes every PE and completes outstanding ops
// (shmem_barrier_all).
func (pe *PE) BarrierAll() {
	pe.Quiet()
	pe.m.Barrier()
}
