package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"gpuddt/internal/cuda"
	"gpuddt/internal/datatype"
	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/pcie"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// packNow runs one synchronous whole-message pack on the calling process.
func packNow(p *sim.Proc, ctx *cuda.Ctx, e *Engine, dt *datatype.Datatype, count int) {
	data := ctx.Malloc(e.Device().ID(), span(dt, count))
	mem.FillPattern(data, 7)
	dst := ctx.Malloc(e.Device().ID(), int64(count)*dt.Size())
	e.Pack(p, data, dt, count, dst)
}

// TestDevCacheEvictionUnderBudget drives a tiny budget past capacity and
// checks LRU order, the byte bound, and reconversion after displacement.
func TestDevCacheEvictionUnderBudget(t *testing.T) {
	// Each triangular(n) layout converts to ~n units of entryDevBytes
	// (24 B). A 3000-byte budget holds two ~50-unit lists but not three.
	r := newRig(t, Options{CacheBytes: 3000})
	dts := []*datatype.Datatype{
		shapes.LowerTriangular(50),
		shapes.StairTriangular(50, 5),
		shapes.LowerTriangular(49),
	}
	var midStats DevCacheStats
	var reconvertedFirst, cachedLast bool
	r.eng.Spawn("drive", func(p *sim.Proc) {
		for _, dt := range dts {
			packNow(p, r.ctx, r.e, dt, 1)
		}
		midStats = r.e.DevCache().Stats()
		// The first layout (least recently used) must have been
		// displaced: packing it again re-converts.
		before := r.e.ConvertedUnits()
		packNow(p, r.ctx, r.e, dts[0], 1)
		reconvertedFirst = r.e.ConvertedUnits() != before
		// The most recently stored layout survives. (dts[0]'s re-store
		// just evicted LRU again, which cannot be dts[2].)
		before = r.e.ConvertedUnits()
		packNow(p, r.ctx, r.e, dts[2], 1)
		cachedLast = r.e.ConvertedUnits() == before
	})
	r.eng.Run()
	if midStats.Evictions == 0 {
		t.Fatalf("expected evictions under a 3000-byte budget, got stats %+v", midStats)
	}
	if midStats.UsedBytes > midStats.Budget {
		t.Fatalf("cache over budget: %d > %d", midStats.UsedBytes, midStats.Budget)
	}
	if midStats.Stores != int64(len(dts)) {
		t.Fatalf("stores = %d, want %d", midStats.Stores, len(dts))
	}
	if !reconvertedFirst {
		t.Fatal("evicted layout was served from cache")
	}
	if !cachedLast {
		t.Fatal("most recently used layout was evicted")
	}
	if st := r.e.DevCache().Stats(); st.UsedBytes > st.Budget {
		t.Fatalf("cache over budget after test: %+v", st)
	}
}

// TestDevCacheOversizedListNotCached checks a unit list bigger than the
// whole budget is passed through without caching or eviction storms.
func TestDevCacheOversizedListNotCached(t *testing.T) {
	r := newRig(t, Options{CacheBytes: 512})
	dt := shapes.LowerTriangular(60) // ~60 units ≈ 1440 B > 512
	var reconverted bool
	r.eng.Spawn("drive", func(p *sim.Proc) {
		packNow(p, r.ctx, r.e, dt, 1)
		before := r.e.ConvertedUnits()
		packNow(p, r.ctx, r.e, dt, 1)
		reconverted = r.e.ConvertedUnits() != before
	})
	r.eng.Run()
	st := r.e.DevCache().Stats()
	if st.Stores != 0 || st.Items != 0 || st.Evictions != 0 {
		t.Fatalf("oversized list touched the cache: %+v", st)
	}
	if !reconverted {
		t.Fatal("second pack did not reconvert")
	}
}

// TestDevCacheSharedBudgetIsolatedEntries checks the per-device cache is
// shared for budget purposes but engines never see each other's entries:
// the second engine's first pack of the same (dt, count) must miss and
// reconvert, exactly like the seed's per-engine maps.
func TestDevCacheSharedBudgetIsolatedEntries(t *testing.T) {
	se := sim.NewEngine()
	node := pcie.NewNode(se, 0, 1, gpu.KeplerK40(), pcie.DefaultParams())
	ctxA, ctxB := cuda.NewCtx(node), cuda.NewCtx(node)
	eA := New(ctxA, 0, Options{})
	eB := New(ctxB, 0, Options{})
	if eA.DevCache() != eB.DevCache() {
		t.Fatal("engines on one device should share a DevCache")
	}
	dt := shapes.LowerTriangular(40)
	var unitsBBefore, unitsBAfter int64
	var gotB, wantB []byte
	se.Spawn("drive", func(p *sim.Proc) {
		packNow(p, ctxA, eA, dt, 1)
		packNow(p, ctxA, eA, dt, 1)
		unitsBBefore = eB.ConvertedUnits()
		packNow(p, ctxB, eB, dt, 1)
		unitsBAfter = eB.ConvertedUnits()
		// Packed output stays correct through the shared cache.
		data := ctxB.Malloc(0, span(dt, 1))
		mem.FillPattern(data, 3)
		wantB = cpuPack(dt, 1, data.Bytes())
		dst := ctxB.Malloc(0, int64(len(wantB)))
		eB.Pack(p, data, dt, 1, dst)
		gotB = dst.Bytes()
	})
	se.Run()
	if eA.CacheHits() != 1 {
		t.Fatalf("engine A: %d cache hits, want 1", eA.CacheHits())
	}
	if eB.CacheHits() != 1 { // second B pack hits B's own entry
		t.Fatalf("engine B: %d cache hits, want 1", eB.CacheHits())
	}
	if unitsBAfter == unitsBBefore {
		t.Fatal("engine B's first pack was served from engine A's entries")
	}
	st := eA.DevCache().Stats()
	if st.Items != 2 {
		t.Fatalf("device cache holds %d lists, want one per engine (2): %+v", st.Items, st)
	}
	if !bytes.Equal(gotB, wantB) {
		t.Fatal("pack through shared cache produced wrong bytes")
	}
}

// TestDevCacheStatsCounters checks hit/miss accounting and the recorder
// counters surfaced when tracing is on.
func TestDevCacheStatsCounters(t *testing.T) {
	r := newRig(t, Options{})
	rec := sim.NewRecorder(r.eng)
	dt := shapes.LowerTriangular(30)
	r.eng.Spawn("drive", func(p *sim.Proc) {
		packNow(p, r.ctx, r.e, dt, 1) // miss + store
		packNow(p, r.ctx, r.e, dt, 1) // hit
		packNow(p, r.ctx, r.e, dt, 1) // hit
	})
	r.eng.Run()
	st := r.e.DevCache().Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Stores != 1 || st.Evictions != 0 {
		t.Fatalf("stats %+v, want 2 hits / 1 miss / 1 store / 0 evictions", st)
	}
	if got := rec.Counter("core.dev.hit"); got != 2 {
		t.Fatalf("core.dev.hit = %d, want 2", got)
	}
	if got := rec.Counter("core.dev.miss"); got != 1 {
		t.Fatalf("core.dev.miss = %d, want 1", got)
	}
}

// TestDevCacheConcurrentWorlds exercises the cache and plan-compilation
// mutexes from concurrent independent worlds (what the parallel bench
// driver does); meaningful under -race. Each world owns its device, so
// the shared state is the datatype's compiled plan.
func TestDevCacheConcurrentWorlds(t *testing.T) {
	dt := shapes.LowerTriangular(32)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			se := sim.NewEngine()
			node := pcie.NewNode(se, 0, 1, gpu.KeplerK40(), pcie.DefaultParams())
			ctx := cuda.NewCtx(node)
			e := New(ctx, 0, Options{})
			se.Spawn("drive", func(p *sim.Proc) {
				for j := 0; j < 3; j++ {
					packNow(p, ctx, e, dt, 1)
				}
			})
			se.Run()
			if e.CacheHits() != 2 {
				t.Errorf("world: %d hits, want 2", e.CacheHits())
			}
		}()
	}
	wg.Wait()
}

// BenchmarkDEVCacheHit measures the host cost of a whole cached pack:
// cache lookup, window slicing of the resident unit list, kernel unit
// construction and execution.
func BenchmarkDEVCacheHit(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("triangular%d", n), func(b *testing.B) {
			se := sim.NewEngine()
			node := pcie.NewNode(se, 0, 1, gpu.KeplerK40(), pcie.DefaultParams())
			ctx := cuda.NewCtx(node)
			e := New(ctx, 0, Options{})
			dt := shapes.LowerTriangular(n)
			data := ctx.Malloc(0, span(dt, 1))
			dst := ctx.Malloc(0, dt.Size())
			se.Spawn("drive", func(p *sim.Proc) {
				e.Pack(p, data, dt, 1, dst) // warm the cache
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Pack(p, data, dt, 1, dst)
				}
				b.StopTimer()
			})
			se.Run()
			if e.CacheHits() != int64(b.N) {
				b.Fatalf("expected every iteration to hit, got %d/%d", e.CacheHits(), b.N)
			}
		})
	}
}
