package core

import (
	"bytes"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// packFrags drains pk through frag-sized pieces into out.
func packFrags(p *sim.Proc, pk *Packer, frag mem.Buffer, out *[]byte) {
	for !pk.Done() {
		n := frag.Len()
		if r := pk.Remaining(); r < n {
			n = r
		}
		piece := frag.Slice(0, n)
		_, fut := pk.PackInto(p, piece)
		fut.Await(p)
		*out = append(*out, piece.Bytes()...)
	}
}

// TestPackerSeekToReplay is the idempotent-replay contract the PML's
// fault recovery leans on: after a partial pack, SeekTo(0) must replay
// the message from the start and produce byte-identical output — the
// DEV translation cache must not be corrupted by the abandoned attempt.
func TestPackerSeekToReplay(t *testing.T) {
	for _, dt := range []*datatype.Datatype{
		shapes.SubMatrix(40, 30, 64), // vector path
		shapes.LowerTriangular(50),   // DEV path (converted units)
	} {
		r := newRig(t, Options{})
		count := 2
		rdt := datatype.Resized(dt, 0, dt.Extent())
		data := r.ctx.Malloc(0, span(rdt, count))
		mem.FillPattern(data, 9)
		want := cpuPack(rdt, count, data.Bytes())
		frag := r.ctx.Malloc(0, 2048)

		var aborted, replayed []byte
		r.eng.Spawn("seek", func(p *sim.Proc) {
			pk := r.e.NewPacker(data, rdt, count)
			// First attempt: pack a few fragments, then abandon it.
			for i := 0; i < 3 && !pk.Done(); i++ {
				_, fut := pk.PackInto(p, frag)
				fut.Await(p)
			}
			aborted = append(aborted, frag.Bytes()...)
			// Replay from the start through the same packer.
			pk.SeekTo(0)
			packFrags(p, pk, frag, &replayed)
		})
		r.eng.Run()
		if !bytes.Equal(replayed, want) {
			t.Fatalf("%s: replay after SeekTo(0) diverges from reference", dt.Name())
		}
		_ = aborted
	}
}

// TestPackerSeekToMidstream rewinds to a fragment boundary in the
// middle of the stream and checks the tail re-packs identically.
func TestPackerSeekToMidstream(t *testing.T) {
	r := newRig(t, Options{})
	dt := shapes.LowerTriangular(64)
	data := r.ctx.Malloc(0, span(dt, 1))
	mem.FillPattern(data, 4)
	want := cpuPack(dt, 1, data.Bytes())
	frag := r.ctx.Malloc(0, 4096)

	var tail1, tail2 []byte
	var mark int64
	r.eng.Spawn("seek", func(p *sim.Proc) {
		pk := r.e.NewPacker(data, dt, 1)
		_, fut := pk.PackInto(p, frag)
		fut.Await(p)
		mark = pk.Total() - pk.Remaining()
		packFrags(p, pk, frag, &tail1)
		pk.SeekTo(mark)
		packFrags(p, pk, frag, &tail2)
	})
	r.eng.Run()
	if !bytes.Equal(tail1, want[mark:]) {
		t.Fatal("first tail diverges from reference")
	}
	if !bytes.Equal(tail2, tail1) {
		t.Fatal("re-packed tail diverges after SeekTo to a mid-stream offset")
	}
}
