package core

import (
	"sort"

	"gpuddt/internal/datatype"
	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// direction distinguishes pack (GPU data -> contiguous) from unpack.
type direction int

const (
	dirPack direction = iota
	dirUnpack
)

// maxUnitLen bounds a single kernel unit (vector fast path blocks are
// split to fit the 32-bit unit length).
const maxUnitLen = 1 << 30

// Packer drives the pipelined packing of one (datatype, count) message
// from GPU-resident non-contiguous data into contiguous fragments. It is
// resumable: each PackInto call produces the next fragment, which is how
// the BTL protocols pipeline pack with transfer and unpack (§4).
type Packer struct {
	e    *Engine
	data mem.Buffer
	conv *datatype.Converter
	dt   *datatype.Datatype
	cnt  int
	dir  direction

	view     *datatype.VectorView
	cached   *cacheVal
	building []Entry // accumulates entries on a cache miss
	ci       int     // index into cached.entries at the current position

	// scratch holds the per-window unit list. launch copies units out
	// synchronously, so the slice is safely reused across windows,
	// removing the per-fragment allocation the seed paid.
	scratch []Entry
}

// NewPacker prepares packing of count elements of dt laid out over data
// (a device buffer whose byte 0 is the datatype origin).
func (e *Engine) NewPacker(data mem.Buffer, dt *datatype.Datatype, count int) *Packer {
	return e.newWorker(data, dt, count, dirPack)
}

// NewUnpacker prepares the inverse operation: scattering contiguous
// fragments into the non-contiguous layout over data.
func (e *Engine) NewUnpacker(data mem.Buffer, dt *datatype.Datatype, count int) *Packer {
	return e.newWorker(data, dt, count, dirUnpack)
}

func (e *Engine) newWorker(data mem.Buffer, dt *datatype.Datatype, count int, dir direction) *Packer {
	pk := &Packer{
		e:    e,
		data: data,
		conv: datatype.NewConverter(dt, count),
		dt:   dt,
		cnt:  count,
		dir:  dir,
	}
	if !e.opts.DisableVectorKernel {
		pk.view = datatype.VectorViewN(dt, count)
	}
	if pk.view == nil {
		if pk.cached = e.lookupCache(dt, count); pk.cached != nil {
			e.cacheHits++
		} else if !e.opts.NoCacheDEV {
			pk.building = e.cache.grabSlab()
		}
	}
	return pk
}

// Total returns the packed size of the message.
func (pk *Packer) Total() int64 { return pk.conv.Total() }

// SeekTo repositions the packer at packed offset pos, so a recovery
// protocol can replay fragments after a fault without rebuilding the
// worker (the converter seek is O(1)/O(log B), never a replay). A DEV
// cache under construction is abandoned — replayed windows would append
// duplicate entries — so a rewound first pass simply does not populate
// the cache; a later transfer of the same (dt, count) will.
func (pk *Packer) SeekTo(pos int64) {
	pk.conv.SeekTo(pos)
	pk.building = nil
	pk.ci = 0
}

// Remaining returns the packed bytes not yet produced/consumed.
func (pk *Packer) Remaining() int64 { return pk.conv.Remaining() }

// Done reports whether the whole message has been processed.
func (pk *Packer) Done() bool { return pk.conv.Done() }

// PackInto packs the next min(len(frag), Remaining()) bytes into frag.
// frag may be device memory (kernel writes in-GPU) or host memory (the
// zero-copy path: the kernel streams over PCIe). It returns the byte
// count and a future that completes when frag holds the data. Work is
// submitted to the engine's stream; CPU-side conversion overlaps with
// previously launched kernels (the §3.2 pipeline).
func (pk *Packer) PackInto(p *sim.Proc, frag mem.Buffer) (int64, *sim.Future) {
	if pk.dir != dirPack {
		panic("core: PackInto on an unpacker")
	}
	return pk.process(p, frag)
}

// UnpackFrom scatters the next min(len(frag), Remaining()) bytes of frag
// into the data layout; frag may be device or host (zero-copy) memory.
func (pk *Packer) UnpackFrom(p *sim.Proc, frag mem.Buffer) (int64, *sim.Future) {
	if pk.dir != dirUnpack {
		panic("core: UnpackFrom on a packer")
	}
	return pk.process(p, frag)
}

func (pk *Packer) process(p *sim.Proc, frag mem.Buffer) (int64, *sim.Future) {
	n := frag.Len()
	if r := pk.conv.Remaining(); n > r {
		n = r
	}
	if n == 0 {
		f := pk.e.ctx.Engine().NewFuture()
		f.Complete(nil)
		return 0, f
	}
	start := pk.conv.Packed()
	var fut *sim.Future
	switch {
	case pk.view != nil:
		entries := pk.viewEntries(start, n)
		pk.conv.Advance(n, nil)
		fut = pk.launch(gpu.VectorKernel, entries, start, frag)
	case pk.cached != nil:
		entries := pk.cachedEntries(start, n)
		pk.conv.Advance(n, nil)
		fut = pk.launch(gpu.DEVKernel, entries, start, frag)
	default:
		fut = pk.convertAndLaunch(p, start, n, frag)
	}
	return n, fut
}

// viewEntries computes the units intersecting packed window [start,
// start+n) directly from the vector view — no conversion cost, exactly
// like the specialized kernel taking (blocklen, stride, count) arguments.
func (pk *Packer) viewEntries(start, n int64) []Entry {
	v := pk.view
	out := pk.scratch[:0]
	end := start + n
	for i := start / v.BlockLen; i < v.Count; i++ {
		bStart := i * v.BlockLen // packed offset of block i
		if bStart >= end {
			break
		}
		lo, hi := bStart, bStart+v.BlockLen
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		memOff := v.Off + i*v.Stride + (lo - bStart)
		for l := lo; l < hi; {
			take := hi - l
			if take > maxUnitLen {
				take = maxUnitLen
			}
			out = append(out, Entry{MemOff: memOff + (l - lo), PackOff: l, Len: int32(take)})
			l += take
		}
	}
	pk.scratch = out
	return out
}

// cachedEntries slices the cached unit list for the packed window,
// splitting boundary units as needed. No conversion cost: the descriptor
// array is already resident in GPU memory.
func (pk *Packer) cachedEntries(start, n int64) []Entry {
	entries := pk.cached.entries
	end := start + n
	// Windows are usually sequential, continuing at pk.ci. A restart
	// (retransmission, pipeline rewind) binary-searches the unit list —
	// PackOff is monotonic — instead of replaying it.
	if pk.ci > 0 && entries[pk.ci-1].PackOff+int64(entries[pk.ci-1].Len) > start {
		pk.ci = sort.Search(len(entries), func(i int) bool {
			return entries[i].PackOff+int64(entries[i].Len) > start
		})
	}
	out := pk.scratch[:0]
	for i := pk.ci; i < len(entries); i++ {
		u := entries[i]
		uStart, uEnd := u.PackOff, u.PackOff+int64(u.Len)
		if uEnd <= start {
			pk.ci = i + 1
			continue
		}
		if uStart >= end {
			break
		}
		lo, hi := uStart, uEnd
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		out = append(out, Entry{
			MemOff:  u.MemOff + (lo - uStart),
			PackOff: lo,
			Len:     int32(hi - lo),
			Partial: u.Partial || hi-lo < int64(u.Len),
		})
	}
	pk.scratch = out
	return out
}

// convertAndLaunch runs the CPU conversion for the window in chunks,
// launching a kernel per chunk so conversion of chunk k+1 overlaps
// execution of chunk k when pipelining is enabled (§3.2). With
// pipelining disabled the full window is converted before one launch.
func (pk *Packer) convertAndLaunch(p *sim.Proc, start, n int64, frag mem.Buffer) *sim.Future {
	opts := &pk.e.opts
	var fut *sim.Future
	converted := int64(0)
	for converted < n {
		m := opts.ChunkBytes
		if opts.NoPipeline {
			m = n
		}
		if rem := n - converted; m > rem {
			m = rem
		}
		chunkStart := start + converted
		entries := pk.scratch[:0]
		pieces := 0
		pk.conv.Advance(m, func(memOff, packOff, l int64) {
			pieces++
			entries = splitEntries(entries, opts.UnitSize, memOff, packOff, l)
		})
		pk.scratch = entries
		// CPU cost of simulating the pack and emitting cuda_dev_dist
		// entries for this chunk.
		p.Sleep(sim.Time(pieces)*opts.ConvPerEntry + sim.Time(len(entries))*opts.ConvPerUnit)
		pk.e.convEntries += int64(pieces)
		pk.e.convUnits += int64(len(entries))
		// Upload the descriptor array to the device.
		pk.e.ctx.Node().H2D(pk.e.dev.ID()).Transfer(p, int64(len(entries))*entryDevBytes)
		fut = pk.launch(gpu.DEVKernel, entries, chunkStart, frag.Slice(converted, m+0))
		converted += m
		if pk.building != nil {
			pk.building = append(pk.building, entries...)
		}
	}
	if pk.building != nil && pk.conv.Done() {
		pk.e.storeCache(pk.dt, pk.cnt, pk.building)
		pk.building = nil
	}
	return fut
}

// launch builds the direction-bound kernel for a window and submits it.
// fragStart is the packed offset of frag[0].
func (pk *Packer) launch(kind gpu.KernelKind, entries []Entry, fragStart int64, frag mem.Buffer) *sim.Future {
	k := &gpu.Kernel{Kind: kind, Blocks: pk.e.opts.Blocks}
	units := gpu.GetUnits(len(entries))
	if pk.dir == dirPack {
		k.Src, k.Dst = pk.data, frag
		for i, u := range entries {
			units[i] = gpu.Unit{SrcOff: u.MemOff, DstOff: u.PackOff - fragStart, Len: u.Len, Partial: u.Partial}
		}
	} else {
		k.Src, k.Dst = frag, pk.data
		for i, u := range entries {
			units[i] = gpu.Unit{SrcOff: u.PackOff - fragStart, DstOff: u.MemOff, Len: u.Len, Partial: u.Partial}
		}
	}
	k.Units = units
	switch {
	case frag.Kind() == mem.Host:
		// Zero copy: the contiguous side is mapped host memory (§4.2).
		if pk.dir == dirPack {
			return pk.e.ctx.LaunchPackZeroCopy(pk.e.stream, k)
		}
		return pk.e.ctx.LaunchUnpackZeroCopy(pk.e.stream, k)
	case frag.Space() != pk.e.dev.Mem():
		// The contiguous side lives in a peer GPU's memory (mapped via
		// CUDA IPC). Packing writes stream coalesced over the local
		// transmit link; direct remote unpacking issues many scattered
		// reads and under-utilizes PCIe (§5.2.1), modeled by inflating
		// the wire traffic by 1/RemoteAccessEff.
		node := pk.e.ctx.Node()
		if pk.dir == dirPack {
			return pk.e.dev.LaunchZeroCopy(pk.e.stream, k, node.SlotTx(pk.e.dev.ID()), k.Bytes())
		}
		wire := int64(float64(k.Bytes()) / pk.e.opts.RemoteAccessEff)
		return pk.e.dev.LaunchZeroCopy(pk.e.stream, k, node.SlotRx(pk.e.dev.ID()), wire)
	default:
		return pk.e.dev.Launch(pk.e.stream, k)
	}
}

// Pack performs a whole-message pack synchronously: data (device,
// non-contiguous) into dst, which must hold Total() bytes.
func (e *Engine) Pack(p *sim.Proc, data mem.Buffer, dt *datatype.Datatype, count int, dst mem.Buffer) {
	pk := e.NewPacker(data, dt, count)
	if dst.Len() < pk.Total() {
		panic("core: destination smaller than packed size")
	}
	_, fut := pk.PackInto(p, dst.Slice(0, pk.Total()))
	fut.Await(p)
}

// Unpack performs a whole-message unpack synchronously.
func (e *Engine) Unpack(p *sim.Proc, data mem.Buffer, dt *datatype.Datatype, count int, src mem.Buffer) {
	pk := e.NewUnpacker(data, dt, count)
	if src.Len() < pk.Total() {
		panic("core: source smaller than packed size")
	}
	_, fut := pk.UnpackFrom(p, src.Slice(0, pk.Total()))
	fut.Await(p)
}
