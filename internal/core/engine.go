// Package core implements the paper's contribution: a datatype engine for
// non-contiguous GPU-resident data (HPDC'16, §3).
//
// The engine re-encodes any MPI datatype into Datatype Engine Vector
// entries — <memory displacement, packed displacement, length> tuples —
// splits them into equally sized CUDA-DEV work units of size S that map
// one-to-one onto warps (§3.2), and executes pack/unpack as GPU kernels.
// The CPU-side conversion is pipelined with kernel execution, and the
// split unit list can be cached (keyed by datatype and count) so repeat
// transfers skip conversion entirely. Datatypes whose layout is an evenly
// strided vector bypass conversion and use the specialized vector kernel
// of §3.1.
package core

import (
	"fmt"

	"gpuddt/internal/cuda"
	"gpuddt/internal/datatype"
	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Entry is one CUDA-DEV work unit before it is bound to a direction:
// Len bytes at MemOff in the non-contiguous data correspond to PackOff in
// the packed stream. Partial marks units shorter than the split size S.
type Entry struct {
	MemOff  int64
	PackOff int64
	Len     int32
	Partial bool
}

// Options configure the engine. Zero values select the defaults
// documented on each field via DefaultOptions.
type Options struct {
	// UnitSize is S, the CUDA-DEV split size. The paper requires a
	// multiple of 8 bytes x the warp width (lower bound 256 B) and uses
	// 1-4 KB to enable loop unrolling; default 1 KB.
	UnitSize int64

	// ChunkBytes is how much packed data the CPU converts before
	// launching a kernel for it, enabling the conversion/execution
	// pipeline of §3.2. Default 2 MiB.
	ChunkBytes int64

	// NoPipeline disables the conversion/kernel pipeline: the whole
	// datatype is converted before the first launch (the paper's
	// non-pipelined baseline in Fig. 7).
	NoPipeline bool

	// NoCacheDEV disables caching the split unit list in GPU memory
	// (cached lists are keyed by datatype and count).
	NoCacheDEV bool

	// ConvPerEntry and ConvPerUnit are the CPU costs of converting one
	// datatype block into a DEV entry and of emitting one split CUDA-DEV
	// unit, respectively.
	ConvPerEntry sim.Time
	ConvPerUnit  sim.Time

	// Blocks requests a kernel grid size (0 = device default); used by
	// the §5.3 minimal-resources study.
	Blocks int

	// DisableVectorKernel forces the generic DEV path even for vector
	// layouts (ablation).
	DisableVectorKernel bool

	// RemoteAccessEff derates PCIe utilization when a kernel reads
	// scattered data directly from a peer GPU's memory (§5.2.1: direct
	// remote unpack generates too much traffic and under-utilizes
	// PCI-E). Default 0.7.
	RemoteAccessEff float64

	// CacheBytes is the per-device byte budget of the DEV descriptor
	// cache (default DefaultCacheBytes). The budget is shared by all
	// engines on a device; the first engine created on the device fixes
	// it. Unit lists larger than the whole budget are not cached.
	CacheBytes int64
}

// DefaultOptions returns the calibrated defaults.
func DefaultOptions() Options {
	return Options{
		UnitSize:        1024,
		ChunkBytes:      2 << 20,
		ConvPerEntry:    40 * sim.Nanosecond,
		ConvPerUnit:     8 * sim.Nanosecond,
		RemoteAccessEff: 0.7,
		CacheBytes:      DefaultCacheBytes,
	}
}

type cacheVal struct {
	entries []Entry
	devBuf  mem.Buffer // descriptor array resident in GPU memory
}

// Engine is a per-process GPU datatype engine bound to one device.
type Engine struct {
	ctx    *cuda.Ctx
	dev    *gpu.Device
	stream *gpu.Stream
	opts   Options
	cache  *DevCache // device-wide, shared with sibling engines

	// statistics
	convEntries int64
	convUnits   int64
	cacheHits   int64
}

// New creates an engine for GPU devID of the context's node. Pack and
// unpack kernels run on a dedicated stream so they overlap with copies
// issued on other streams.
func New(ctx *cuda.Ctx, devID int, opts Options) *Engine {
	def := DefaultOptions()
	if opts.UnitSize == 0 {
		opts.UnitSize = def.UnitSize
	}
	if opts.UnitSize%256 != 0 {
		panic(fmt.Sprintf("core: unit size %d must be a multiple of 256 (8 bytes x warp width)", opts.UnitSize))
	}
	if opts.ChunkBytes == 0 {
		opts.ChunkBytes = def.ChunkBytes
	}
	if opts.ConvPerEntry == 0 {
		opts.ConvPerEntry = def.ConvPerEntry
	}
	if opts.ConvPerUnit == 0 {
		opts.ConvPerUnit = def.ConvPerUnit
	}
	if opts.RemoteAccessEff == 0 {
		opts.RemoteAccessEff = def.RemoteAccessEff
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = def.CacheBytes
	}
	dev := ctx.Node().GPU(devID)
	cache, _ := dev.DDTCache().(*DevCache)
	if cache == nil {
		cache = newDevCache(opts.CacheBytes)
		dev.SetDDTCache(cache)
	}
	return &Engine{
		ctx:    ctx,
		dev:    dev,
		stream: dev.NewStream("ddt"),
		opts:   opts,
		cache:  cache,
	}
}

// Ctx returns the CUDA context.
func (e *Engine) Ctx() *cuda.Ctx { return e.ctx }

// Device returns the engine's GPU.
func (e *Engine) Device() *gpu.Device { return e.dev }

// Stream returns the engine's pack/unpack stream.
func (e *Engine) Stream() *gpu.Stream { return e.stream }

// Options returns the engine configuration.
func (e *Engine) Options() Options { return e.opts }

// CacheHits returns how many pack/unpack setups were served from the
// DEV cache.
func (e *Engine) CacheHits() int64 { return e.cacheHits }

// ConvertedUnits returns the cumulative number of CUDA-DEV units
// produced by CPU-side conversion (cache misses only).
func (e *Engine) ConvertedUnits() int64 { return e.convUnits }

// DevCache returns the device-wide descriptor cache the engine stores
// its unit lists in.
func (e *Engine) DevCache() *DevCache { return e.cache }

// count bumps a recorder counter when tracing is on (the engine may be
// called outside any process, so it cannot use Proc.Count).
func (e *Engine) count(name string, delta int64) {
	if rec := e.ctx.Engine().Recorder(); rec != nil {
		rec.Count(name, delta)
	}
}

// lookupCache returns the cached unit list for (dt, count), if enabled
// and present.
func (e *Engine) lookupCache(dt *datatype.Datatype, count int) *cacheVal {
	if e.opts.NoCacheDEV {
		return nil
	}
	val := e.cache.lookup(devKey{e, dt, count})
	if val != nil {
		e.count("core.dev.hit", 1)
	} else {
		e.count("core.dev.miss", 1)
	}
	return val
}

// storeCache saves a fully converted unit list and charges the GPU
// memory that holds the descriptor array (the paper's "few MBs of GPU
// memory", §5.1). Lists that could never fit the device budget are not
// cached; stores that push the cache over budget evict older lists and
// release their descriptor arrays.
func (e *Engine) storeCache(dt *datatype.Datatype, count int, entries []Entry) {
	if e.opts.NoCacheDEV {
		return
	}
	key := devKey{e, dt, count}
	bytes := int64(len(entries)) * entryDevBytes
	if e.cache.contains(key) || !e.cache.admits(bytes) {
		return
	}
	devBuf := e.dev.Mem().Alloc(bytes, 256)
	evicted := e.cache.store(key, &cacheVal{entries: entries, devBuf: devBuf}, bytes)
	for _, b := range evicted {
		e.count("core.dev.evict", 1)
		b.Space().Free(b)
	}
}

// entryDevBytes is sizeof(cuda_dev_dist): three 8-byte fields (§3.2).
const entryDevBytes = 24

// splitEntries appends the CUDA-DEV units for one converter emission.
func splitEntries(dst []Entry, unitSize, memOff, packOff, n int64) []Entry {
	for n > 0 {
		take := unitSize
		if n < take {
			take = n
		}
		dst = append(dst, Entry{
			MemOff:  memOff,
			PackOff: packOff,
			Len:     int32(take),
			Partial: take < unitSize,
		})
		memOff += take
		packOff += take
		n -= take
	}
	return dst
}
