// The DEV descriptor cache: converted unit lists are kept in GPU memory
// so repeat transfers skip conversion (§3.2, "few MBs of GPU memory",
// §5.1). The seed kept an unbounded map per engine; this file bounds it:
// one byte-budgeted LRU per device, shared by every engine on that
// device, with retired entry slabs recycled to cut allocation churn on
// the conversion path.

package core

import (
	"container/list"
	"sync"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
)

// DefaultCacheBytes is the default per-device descriptor-cache budget.
// It is sized so every layout in the committed experiment sweeps fits
// without eviction (the cache bounds pathological workloads, it does not
// alter the calibrated ones): the largest, the 8192x8192 matrix
// transpose, needs ~1.6 GB of entries.
const DefaultCacheBytes = 2 << 30

// devKey identifies a cached unit list. The owning engine is part of
// the key: engines share the device-wide byte budget but never each
// other's entries, since a cached list encodes engine-specific split
// options (unit size) and a hit legitimately skips per-engine
// conversion work that the simulation charges virtual time for.
type devKey struct {
	eng   *Engine
	dt    *datatype.Datatype
	count int
}

type devItem struct {
	key   devKey
	val   *cacheVal
	bytes int64
}

// DevCacheStats is a point-in-time snapshot of a device cache.
type DevCacheStats struct {
	Hits      int64
	Misses    int64
	Stores    int64
	Evictions int64
	Items     int
	UsedBytes int64
	Budget    int64
}

// DevCache is the bounded, device-wide DEV descriptor cache: an LRU over
// (engine, datatype, count) unit lists with a byte budget covering the
// GPU-resident descriptor arrays. It is mutex-guarded; engines of one
// device run under one simulation scheduler, but independent benchmark
// worlds may compile plans and probe caches from concurrent goroutines.
type DevCache struct {
	mu    sync.Mutex
	budget int64
	used   int64
	items  map[devKey]*list.Element
	lru    list.List // front = most recently used

	slabs [][]Entry // retired entry slices, reused by converting packers

	hits, misses, stores, evictions int64
}

func newDevCache(budget int64) *DevCache {
	if budget <= 0 {
		budget = DefaultCacheBytes
	}
	return &DevCache{budget: budget, items: make(map[devKey]*list.Element)}
}

// Budget returns the byte budget.
func (c *DevCache) Budget() int64 { return c.budget }

// Stats returns a snapshot of the cache counters.
func (c *DevCache) Stats() DevCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return DevCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Stores:    c.stores,
		Evictions: c.evictions,
		Items:     len(c.items),
		UsedBytes: c.used,
		Budget:    c.budget,
	}
}

// lookup returns the cached unit list for k, marking it most recently
// used, or nil on a miss.
func (c *DevCache) lookup(k devKey) *cacheVal {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*devItem).val
}

// contains reports whether k is cached, without touching recency or
// hit/miss statistics (the store path's duplicate check).
func (c *DevCache) contains(k devKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[k]
	return ok
}

// admits reports whether a list of the given byte size can ever be
// cached (it must fit the budget on its own).
func (c *DevCache) admits(bytes int64) bool { return bytes <= c.budget }

// store inserts a converted unit list with its device-resident
// descriptor buffer, evicting least recently used lists until the
// budget holds. evicted receives the device buffers of displaced lists
// so the caller can release them in its memory space.
func (c *DevCache) store(k devKey, val *cacheVal, bytes int64) (evicted []mem.Buffer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[k]; ok {
		return nil
	}
	for c.used+bytes > c.budget && c.lru.Len() > 0 {
		el := c.lru.Back()
		it := el.Value.(*devItem)
		c.lru.Remove(el)
		delete(c.items, it.key)
		c.used -= it.bytes
		c.evictions++
		c.retireLocked(it.val.entries)
		if it.val.devBuf.IsValid() {
			evicted = append(evicted, it.val.devBuf)
		}
	}
	c.items[k] = c.lru.PushFront(&devItem{key: k, val: val, bytes: bytes})
	c.used += bytes
	c.stores++
	return evicted
}

// grabSlab hands out a retired entry slice (length 0) for a converting
// packer to build into, or a fresh one if none is pooled.
func (c *DevCache) grabSlab() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.slabs); n > 0 {
		s := c.slabs[n-1]
		c.slabs = c.slabs[:n-1]
		return s[:0]
	}
	return make([]Entry, 0, 1024)
}

// retireLocked pools an entry slice for reuse. Bounded so a burst of
// evictions cannot pin unbounded host memory.
func (c *DevCache) retireLocked(s []Entry) {
	if cap(s) == 0 || len(c.slabs) >= 8 {
		return
	}
	c.slabs = append(c.slabs, s[:0])
}
