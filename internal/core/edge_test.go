package core

import (
	"bytes"
	"fmt"
	"testing"

	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// TestCachedEntriesSplitAtOddFragmentBoundaries packs with the DEV cache
// warm using fragment sizes that are not multiples of the unit size S,
// so cached units must be split mid-unit at both window edges.
func TestCachedEntriesSplitAtOddFragmentBoundaries(t *testing.T) {
	dt := shapes.LowerTriangular(96)
	for _, frag := range []int64{1, 7, 333, 1000, 1025, 4097} {
		t.Run(fmt.Sprintf("frag%d", frag), func(t *testing.T) {
			r := newRig(t, Options{})
			data := r.ctx.Malloc(0, span(dt, 1))
			mem.FillPattern(data, 11)
			want := cpuPack(dt, 1, data.Bytes())
			out := r.ctx.Malloc(0, dt.Size())
			r.eng.Spawn("warm+frag", func(p *sim.Proc) {
				// Warm the cache with a whole-message pack.
				tmp := r.ctx.Malloc(0, dt.Size())
				r.e.Pack(p, data, dt, 1, tmp)
				if r.e.CacheHits() != 0 {
					t.Errorf("unexpected early cache hit")
				}
				// Fragmented pack must hit the cache and stay correct.
				pk := r.e.NewPacker(data, dt, 1)
				var off int64
				for !pk.Done() {
					n := frag
					if rem := pk.Remaining(); n > rem {
						n = rem
					}
					_, fut := pk.PackInto(p, out.Slice(off, n))
					fut.Await(p)
					off += n
				}
			})
			r.eng.Run()
			if r.e.CacheHits() != 1 {
				t.Fatalf("cache hits = %d, want 1", r.e.CacheHits())
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatal("fragmented cached pack mismatch")
			}
		})
	}
}

// TestVectorFragmentBoundaries does the same for the vector fast path,
// whose units are computed arithmetically from the view.
func TestVectorFragmentBoundaries(t *testing.T) {
	dt := shapes.SubMatrix(33, 17, 50) // odd-sized strided blocks
	for _, frag := range []int64{1, 13, 100, 264, 1000} {
		r := newRig(t, Options{})
		data := r.ctx.Malloc(0, span(dt, 1))
		mem.FillPattern(data, 4)
		want := cpuPack(dt, 1, data.Bytes())
		out := r.ctx.Malloc(0, dt.Size())
		r.eng.Spawn("vecfrag", func(p *sim.Proc) {
			pk := r.e.NewPacker(data, dt, 1)
			var off int64
			for !pk.Done() {
				n := frag
				if rem := pk.Remaining(); n > rem {
					n = rem
				}
				_, fut := pk.PackInto(p, out.Slice(off, n))
				fut.Await(p)
				off += n
			}
		})
		r.eng.Run()
		if !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("frag %d: vector fragmented pack mismatch", frag)
		}
	}
}

// TestUnpackerFragmentedCachedRoundTrip unpacks in odd fragments with a
// warm cache and verifies the scattered result.
func TestUnpackerFragmentedCachedRoundTrip(t *testing.T) {
	dt := shapes.LowerTriangular(80)
	r := newRig(t, Options{})
	src := r.ctx.Malloc(0, span(dt, 1))
	dst := r.ctx.Malloc(0, span(dt, 1))
	mem.FillPattern(src, 9)
	packed := r.ctx.Malloc(0, dt.Size())
	r.eng.Spawn("roundtrip", func(p *sim.Proc) {
		r.e.Pack(p, src, dt, 1, packed)   // warms pack-direction cache
		r.e.Unpack(p, dst, dt, 1, packed) // warms unpack-direction cache
		mem.Fill(dst, 0)
		uk := r.e.NewUnpacker(dst, dt, 1)
		var off int64
		for !uk.Done() {
			n := int64(777)
			if rem := uk.Remaining(); n > rem {
				n = rem
			}
			_, fut := uk.UnpackFrom(p, packed.Slice(off, n))
			fut.Await(p)
			off += n
		}
	})
	r.eng.Run()
	if !bytes.Equal(cpuPack(dt, 1, dst.Bytes()), cpuPack(dt, 1, src.Bytes())) {
		t.Fatal("fragmented cached unpack mismatch")
	}
}

// TestTwoEnginesShareNothing verifies per-process isolation: caches and
// streams are per-engine even on the same device.
func TestTwoEnginesShareNothing(t *testing.T) {
	r := newRig(t, Options{})
	e2 := New(r.ctx, 0, Options{})
	dt := shapes.LowerTriangular(64)
	data := r.ctx.Malloc(0, span(dt, 1))
	out := r.ctx.Malloc(0, dt.Size())
	r.eng.Spawn("iso", func(p *sim.Proc) {
		r.e.Pack(p, data, dt, 1, out)
		e2.Pack(p, data, dt, 1, out)
	})
	r.eng.Run()
	if r.e.CacheHits() != 0 || e2.CacheHits() != 0 {
		t.Fatal("engines shared a DEV cache")
	}
	if r.e.ConvertedUnits() == 0 || e2.ConvertedUnits() == 0 {
		t.Fatal("each engine should have converted independently")
	}
}
