package core

import (
	"bytes"
	"testing"

	"gpuddt/internal/cuda"
	"gpuddt/internal/datatype"
	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/pcie"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// rig bundles a one-GPU node and an engine.
type rig struct {
	eng *sim.Engine
	ctx *cuda.Ctx
	e   *Engine
}

func newRig(t *testing.T, opts Options) *rig {
	t.Helper()
	se := sim.NewEngine()
	node := pcie.NewNode(se, 0, 1, gpu.KeplerK40(), pcie.DefaultParams())
	ctx := cuda.NewCtx(node)
	return &rig{eng: se, ctx: ctx, e: New(ctx, 0, opts)}
}

// span is the memory footprint of (dt, count).
func span(dt *datatype.Datatype, count int) int64 {
	if count == 0 {
		return 0
	}
	return int64(count-1)*dt.Extent() + dt.TrueLB() + dt.TrueExtent()
}

// cpuPack is the reference packing.
func cpuPack(dt *datatype.Datatype, count int, src []byte) []byte {
	c := datatype.NewConverter(dt, count)
	out := make([]byte, c.Total())
	c.Pack(out, src)
	return out
}

func packOnGPU(t *testing.T, r *rig, dt *datatype.Datatype, count int) (got, want []byte, dur sim.Time) {
	t.Helper()
	data := r.ctx.Malloc(0, span(dt, count))
	mem.FillPattern(data, 42)
	want = cpuPack(dt, count, data.Bytes())
	dst := r.ctx.Malloc(0, int64(len(want)))
	r.eng.Spawn("pack", func(p *sim.Proc) {
		t0 := p.Now()
		r.e.Pack(p, data, dt, count, dst)
		dur = p.Now() - t0
	})
	r.eng.Run()
	return dst.Bytes(), want, dur
}

func TestPackVectorCorrect(t *testing.T) {
	r := newRig(t, Options{})
	got, want, _ := packOnGPU(t, r, shapes.SubMatrix(40, 30, 64), 1)
	if !bytes.Equal(got, want) {
		t.Fatal("vector pack mismatch")
	}
	if r.e.ConvertedUnits() != 0 {
		t.Fatalf("vector path should not convert units, got %d", r.e.ConvertedUnits())
	}
}

func TestPackTriangularCorrect(t *testing.T) {
	r := newRig(t, Options{})
	got, want, _ := packOnGPU(t, r, shapes.LowerTriangular(50), 1)
	if !bytes.Equal(got, want) {
		t.Fatal("triangular pack mismatch")
	}
	if r.e.ConvertedUnits() == 0 {
		t.Fatal("triangular should use the DEV path")
	}
}

func TestPackMultiCount(t *testing.T) {
	r := newRig(t, Options{})
	dt := datatype.Resized(shapes.LowerTriangular(20), 0, 20*20*8)
	got, want, _ := packOnGPU(t, r, dt, 3)
	if !bytes.Equal(got, want) {
		t.Fatal("multi-count pack mismatch")
	}
}

func TestUnpackRoundTrip(t *testing.T) {
	for _, dt := range []*datatype.Datatype{
		shapes.SubMatrix(16, 12, 32),
		shapes.LowerTriangular(24),
		shapes.Transpose(12),
	} {
		r := newRig(t, Options{})
		count := 1
		src := r.ctx.Malloc(0, span(dt, count))
		mem.FillPattern(src, 7)
		packed := r.ctx.Malloc(0, dt.Size())
		dst := r.ctx.Malloc(0, span(dt, count))
		r.eng.Spawn("roundtrip", func(p *sim.Proc) {
			r.e.Pack(p, src, dt, count, packed)
			r.e.Unpack(p, dst, dt, count, packed)
		})
		r.eng.Run()
		if !bytes.Equal(cpuPack(dt, count, dst.Bytes()), cpuPack(dt, count, src.Bytes())) {
			t.Fatalf("%s: roundtrip mismatch", dt.Name())
		}
	}
}

func TestFragmentedPackMatchesWhole(t *testing.T) {
	r := newRig(t, Options{})
	dt := shapes.LowerTriangular(64)
	data := r.ctx.Malloc(0, span(dt, 1))
	mem.FillPattern(data, 3)
	want := cpuPack(dt, 1, data.Bytes())

	frag := int64(4096)
	out := r.ctx.Malloc(0, dt.Size())
	r.eng.Spawn("fragpack", func(p *sim.Proc) {
		pk := r.e.NewPacker(data, dt, 1)
		var off int64
		for !pk.Done() {
			n := frag
			if rem := pk.Remaining(); n > rem {
				n = rem
			}
			_, fut := pk.PackInto(p, out.Slice(off, n))
			fut.Await(p)
			off += n
		}
	})
	r.eng.Run()
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("fragmented pack mismatch")
	}
}

func TestDEVCacheSpeedsRepeatPacks(t *testing.T) {
	r := newRig(t, Options{})
	dt := shapes.LowerTriangular(512)
	data := r.ctx.Malloc(0, span(dt, 1))
	dst := r.ctx.Malloc(0, dt.Size())
	var first, second sim.Time
	r.eng.Spawn("pack", func(p *sim.Proc) {
		t0 := p.Now()
		r.e.Pack(p, data, dt, 1, dst)
		first = p.Now() - t0
		t0 = p.Now()
		r.e.Pack(p, data, dt, 1, dst)
		second = p.Now() - t0
	})
	r.eng.Run()
	if r.e.CacheHits() != 1 {
		t.Fatalf("cache hits = %d", r.e.CacheHits())
	}
	if second >= first {
		t.Fatalf("cached pack not faster: first %v second %v", first, second)
	}
}

func TestPipelineOverlapsConversion(t *testing.T) {
	dt := shapes.LowerTriangular(2048)
	run := func(pipelined bool) sim.Time {
		r := newRig(t, Options{NoPipeline: !pipelined, NoCacheDEV: true})
		_, _, dur := packOnGPU(t, r, dt, 1)
		return dur
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("pipeline not faster: with %v without %v", with, without)
	}
	// Pipelining should hide a large share of conversion: the paper
	// reports almost 2x for triangular (Fig. 7).
	if float64(with) > 0.8*float64(without) {
		t.Fatalf("pipeline speedup too small: with %v without %v", with, without)
	}
}

func TestVectorKernelFasterThanDEVForSubmatrix(t *testing.T) {
	dt := shapes.SubMatrix(1024, 1024, 2048)
	fast := newRig(t, Options{})
	slow := newRig(t, Options{DisableVectorKernel: true, NoCacheDEV: true})
	_, _, tf := packOnGPU(t, fast, dt, 1)
	_, _, ts := packOnGPU(t, slow, dt, 1)
	if tf >= ts {
		t.Fatalf("vector kernel not faster: %v vs %v", tf, ts)
	}
}

func TestStairMatchesVectorBandwidth(t *testing.T) {
	// Fig. 6: the stair triangle recovers the vector kernel's bandwidth,
	// the ragged triangle stays well below it.
	n := 1024
	sub := shapes.SubMatrix(n, n, n)
	tri := shapes.LowerTriangular(n)
	stair := shapes.StairTriangular(n, 256)

	// Measure within a single engine run: pack twice, use the second
	// (cached) duration so conversion cost is excluded, as in the
	// paper's kernel-bandwidth figure.
	measure := func(dt *datatype.Datatype) float64 {
		r := newRig(t, Options{})
		data := r.ctx.Malloc(0, span(dt, 1))
		dst := r.ctx.Malloc(0, dt.Size())
		var dur sim.Time
		r.eng.Spawn("m", func(p *sim.Proc) {
			r.e.Pack(p, data, dt, 1, dst)
			t0 := p.Now()
			r.e.Pack(p, data, dt, 1, dst)
			dur = p.Now() - t0
		})
		r.eng.Run()
		return sim.GBps(dt.Size(), dur)
	}

	bwSub, bwTri, bwStair := measure(sub), measure(tri), measure(stair)
	if bwTri >= bwSub*0.9 {
		t.Fatalf("triangle bandwidth %.1f should be well below vector %.1f", bwTri, bwSub)
	}
	if bwStair < bwSub*0.9 {
		t.Fatalf("stair bandwidth %.1f should recover vector %.1f", bwStair, bwSub)
	}
	t.Logf("V %.1f GB/s, T %.1f GB/s, T-stair %.1f GB/s", bwSub, bwTri, bwStair)
}

func TestZeroCopyPackToHost(t *testing.T) {
	r := newRig(t, Options{})
	dt := shapes.SubMatrix(256, 256, 512)
	data := r.ctx.Malloc(0, span(dt, 1))
	mem.FillPattern(data, 5)
	want := cpuPack(dt, 1, data.Bytes())
	host := r.ctx.MallocHost(dt.Size())
	var dur sim.Time
	r.eng.Spawn("zcpack", func(p *sim.Proc) {
		t0 := p.Now()
		pk := r.e.NewPacker(data, dt, 1)
		_, fut := pk.PackInto(p, host)
		fut.Await(p)
		dur = p.Now() - t0
	})
	r.eng.Run()
	if !bytes.Equal(host.Bytes(), want) {
		t.Fatal("zero-copy pack mismatch")
	}
	wire := sim.TimeForBytes(dt.Size(), r.ctx.Node().Params().SlotGBps)
	if dur < wire {
		t.Fatalf("zero-copy faster than PCIe: %v < %v", dur, wire)
	}
}

func TestUnitSizeValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad unit size")
		}
	}()
	newRig(t, Options{UnitSize: 300})
}

func TestContiguousPackIsSingleUnit(t *testing.T) {
	r := newRig(t, Options{})
	dt := datatype.Contiguous(1<<16, datatype.Float64)
	got, want, _ := packOnGPU(t, r, dt, 1)
	if !bytes.Equal(got, want) {
		t.Fatal("contiguous mismatch")
	}
	if r.e.ConvertedUnits() != 0 {
		t.Fatal("contiguous should ride the vector fast path")
	}
}

func TestEmptyMessage(t *testing.T) {
	r := newRig(t, Options{})
	dt := datatype.Contiguous(0, datatype.Float64)
	data := r.ctx.Malloc(0, 256)
	r.eng.Spawn("empty", func(p *sim.Proc) {
		pk := r.e.NewPacker(data, dt, 1)
		if !pk.Done() || pk.Total() != 0 {
			t.Error("empty packer not done")
		}
		n, fut := pk.PackInto(p, data)
		fut.Await(p)
		if n != 0 {
			t.Errorf("packed %d bytes of empty message", n)
		}
	})
	r.eng.Run()
}
