package sim

import "fmt"

// Recorder collects an event timeline of a simulation: nestable
// begin/end spans with virtual timestamps grouped into per-entity
// tracks (one per process, link or other resource), plus named
// counters. It exists so the questions the paper's evaluation keeps
// asking — which kernel overlapped which DMA transfer, how long a
// message spent packing versus on the wire — can be answered from a
// finished run instead of from print debugging.
//
// A Recorder is pure bookkeeping: it never sleeps, schedules events or
// spawns processes, so attaching one cannot change virtual time by
// construction. With no recorder attached, Begin returns a zero handle
// and every operation is a nil check.
type Recorder struct {
	e      *Engine
	tracks []*Track
	byKey  map[interface{}]*Track

	counters    map[string]int64
	counterSeen []string // insertion order, for deterministic reports

	firstErr error // first nesting violation observed
}

// Track is one horizontal line of the timeline: all spans recorded by a
// single entity (a simulated process, a link), in begin order.
type Track struct {
	ID    int    // dense index, stable within a run
	Name  string // entity name (process name, link name)
	Spans []Span

	open []int // indices into Spans of currently open spans (a stack)
}

// Span is one timed operation on a track. End is -1 while the span is
// still open; Depth is the nesting level at begin time (0 = top level).
type Span struct {
	Name   string
	Begin  Time
	End    Time
	Bytes  int64
	Depth  int
	Detail string
}

// Duration returns End-Begin, or 0 for an open span.
func (s *Span) Duration() Time {
	if s.End < s.Begin {
		return 0
	}
	return s.End - s.Begin
}

// SpanHandle refers to an open span; the zero value (recorder disabled)
// is valid and inert.
type SpanHandle struct {
	t   *Track
	r   *Recorder
	idx int
}

// NewRecorder attaches a fresh recorder to the engine and returns it.
// Attach before Run; the recorder observes everything from that point.
func NewRecorder(e *Engine) *Recorder {
	r := &Recorder{
		e:        e,
		byKey:    make(map[interface{}]*Track),
		counters: make(map[string]int64),
	}
	e.rec = r
	return r
}

// Recorder returns the attached recorder, or nil when tracing is off.
func (e *Engine) Recorder() *Recorder { return e.rec }

// Now returns the engine's current virtual time (the timeline's end once
// the simulation has finished).
func (r *Recorder) Now() Time { return r.e.now }

// Tracks returns every track in creation order.
func (r *Recorder) Tracks() []*Track { return r.tracks }

// track returns (creating on first use) the track for key. Keys are
// identities — a *Proc, a *Link — so entities sharing a display name
// still get distinct tracks.
func (r *Recorder) track(key interface{}, name string) *Track {
	if t, ok := r.byKey[key]; ok {
		return t
	}
	t := &Track{ID: len(r.tracks), Name: name}
	r.byKey[key] = t
	r.tracks = append(r.tracks, t)
	return t
}

// begin opens a span on the track for key at the current virtual time.
func (r *Recorder) begin(key interface{}, trackName, name string, bytes int64) SpanHandle {
	t := r.track(key, trackName)
	t.Spans = append(t.Spans, Span{
		Name:  name,
		Begin: r.e.now,
		End:   -1,
		Bytes: bytes,
		Depth: len(t.open),
	})
	idx := len(t.Spans) - 1
	t.open = append(t.open, idx)
	return SpanHandle{t: t, r: r, idx: idx}
}

// Begin opens a span on the calling process's track. It returns an
// inert handle when no recorder is attached.
func (p *Proc) Begin(name string) SpanHandle {
	if p.e.rec == nil {
		return SpanHandle{}
	}
	return p.e.rec.begin(p, p.name, name, 0)
}

// BeginBytes is Begin with a byte count attached to the span.
func (p *Proc) BeginBytes(name string, bytes int64) SpanHandle {
	if p.e.rec == nil {
		return SpanHandle{}
	}
	return p.e.rec.begin(p, p.name, name, bytes)
}

// SetBytes attaches (or overrides) the byte count of an open span.
func (h SpanHandle) SetBytes(n int64) {
	if h.t != nil {
		h.t.Spans[h.idx].Bytes = n
	}
}

// SetDetail attaches a free-form annotation to the span.
func (h SpanHandle) SetDetail(d string) {
	if h.t != nil {
		h.t.Spans[h.idx].Detail = d
	}
}

// End closes the span at the current virtual time. Spans on one track
// must close innermost-first; a violation is recorded and reported by
// Validate rather than panicking mid-simulation.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	sp := &h.t.Spans[h.idx]
	if sp.End >= 0 {
		h.r.noteErr(fmt.Errorf("sim: span %q on track %q ended twice", sp.Name, h.t.Name))
		return
	}
	sp.End = h.r.e.now
	if n := len(h.t.open); n == 0 || h.t.open[n-1] != h.idx {
		h.r.noteErr(fmt.Errorf("sim: span %q on track %q ended out of nesting order", sp.Name, h.t.Name))
		return
	}
	h.t.open = h.t.open[:len(h.t.open)-1]
}

func (r *Recorder) noteErr(err error) {
	if r.firstErr == nil {
		r.firstErr = err
	}
}

// Count adds delta to the named counter (nil-safe when tracing is off).
func (p *Proc) Count(name string, delta int64) {
	if p.e.rec != nil {
		p.e.rec.Count(name, delta)
	}
}

// Count adds delta to the named counter.
func (r *Recorder) Count(name string, delta int64) {
	if _, ok := r.counters[name]; !ok {
		r.counterSeen = append(r.counterSeen, name)
	}
	r.counters[name] += delta
}

// Counter returns the current value of the named counter.
func (r *Recorder) Counter(name string) int64 { return r.counters[name] }

// CounterNames returns counter names in first-use order.
func (r *Recorder) CounterNames() []string {
	return append([]string(nil), r.counterSeen...)
}

// Validate checks the recorded timeline is well-formed: every begin has
// a matching end, durations are non-negative, nesting closed in order,
// and child spans lie within their parents. It returns the first
// violation found, or nil.
func (r *Recorder) Validate() error {
	if r.firstErr != nil {
		return r.firstErr
	}
	for _, t := range r.tracks {
		if n := len(t.open); n > 0 {
			sp := t.Spans[t.open[n-1]]
			return fmt.Errorf("sim: span %q on track %q never ended", sp.Name, t.Name)
		}
		// Replay nesting: spans are stored in begin order, so an
		// enclosing span precedes its children.
		var stack []int
		for i, sp := range t.Spans {
			if sp.End < sp.Begin {
				return fmt.Errorf("sim: span %q on track %q has negative duration (%v..%v)", sp.Name, t.Name, sp.Begin, sp.End)
			}
			for len(stack) > 0 && t.Spans[stack[len(stack)-1]].End <= sp.Begin && t.Spans[stack[len(stack)-1]].Depth >= sp.Depth {
				stack = stack[:len(stack)-1]
			}
			if sp.Depth != len(stack) {
				return fmt.Errorf("sim: span %q on track %q at depth %d, expected %d", sp.Name, t.Name, sp.Depth, len(stack))
			}
			if len(stack) > 0 {
				parent := t.Spans[stack[len(stack)-1]]
				if sp.Begin < parent.Begin || sp.End > parent.End {
					return fmt.Errorf("sim: span %q (%v..%v) escapes parent %q (%v..%v) on track %q",
						sp.Name, sp.Begin, sp.End, parent.Name, parent.Begin, parent.End, t.Name)
				}
			}
			stack = append(stack, i)
		}
	}
	return nil
}

// SpanCount returns the total number of recorded spans across tracks.
func (r *Recorder) SpanCount() int {
	var n int
	for _, t := range r.tracks {
		n += len(t.Spans)
	}
	return n
}
