package sim

import (
	"fmt"
	"testing"
)

// toyGroups partitions toy actors into 8 fixed blocks. Shard counts
// that divide 8 map whole blocks to shards, so in-block sends are
// always same-shard (legal below the lookahead) for every shard count
// under test while the block structure — and hence the trace — stays
// independent of the sharding.
const toyGroups = 8

// toyActor is a flyweight state machine for engine tests: on every
// message with Round > 0 it forwards to a pseudo-randomly chosen peer,
// folding (time, sender, round) into a running hash so any divergence
// in event order or timing changes the trace.
type toyActor struct {
	id   ActorID
	n    int
	far  Time // minimum delay for cross-block sends (>= lookahead)
	near Time // delay for in-block sends (may be < lookahead)
	hash uint64
	seen int
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (a *toyActor) HandleEvent(sc *ShardCtx, ev Event) {
	a.hash = mix64(a.hash ^ uint64(sc.Now()) ^ uint64(ev.From)<<32 ^ uint64(ev.Round))
	a.seen++
	sc.Count("toy.events", 1)
	if ev.Round == 0 {
		return
	}
	r := mix64(uint64(a.id)*1e9 + uint64(ev.Round))
	bs := a.n / toyGroups
	var to ActorID
	var d Time
	if r&1 == 0 && bs > 1 {
		// In-block hop: stays on the actor's own block, short delay.
		base := (int(a.id) / bs) * bs
		to = ActorID(base + int(r>>8)%bs)
		d = a.near + Time(r>>16%1000)
	} else {
		to = ActorID(int(r>>8) % a.n)
		d = a.far + Time(r>>16%1000)
	}
	sc.Post(d, Event{To: to, Kind: 1, From: a.id, Round: ev.Round - 1})
}

// runToy builds a world of n actors split across the given shard count
// (first half on the low shards, second half on the high ones) and
// returns a deterministic trace digest.
func runToy(t *testing.T, n, shards int, lookahead Time) (uint64, map[string]int64) {
	t.Helper()
	if shards > toyGroups || toyGroups%shards != 0 || n%toyGroups != 0 {
		t.Fatalf("toy world needs shards dividing %d and n a multiple of it", toyGroups)
	}
	se := NewShardedEngine(shards, lookahead)
	actors := make([]*toyActor, n)
	for i := 0; i < n; i++ {
		a := &toyActor{id: ActorID(i), n: n, far: lookahead, near: 1 * Nanosecond}
		block := i / (n / toyGroups)
		actors[i] = a
		se.AddActor(block*shards/toyGroups, a)
	}
	for i := 0; i < n; i++ {
		se.Post(Time(i), Event{To: ActorID(i), Kind: 1, From: -1, Round: 40})
	}
	se.Run()
	h := uint64(0)
	for _, a := range actors {
		h = mix64(h ^ a.hash ^ uint64(a.seen))
	}
	return h, se.Counters()
}

// TestShardedDeterminism: the trace must be byte-identical whether the
// world runs on one shard (the serial reference) or several.
func TestShardedDeterminism(t *testing.T) {
	const n = 64
	la := 2 * Microsecond
	ref, refC := runToy(t, n, 1, la)
	for _, shards := range []int{2, 4, 8} {
		got, gotC := runToy(t, n, shards, la)
		if got != ref {
			t.Fatalf("shards=%d: trace %x, serial reference %x", shards, got, ref)
		}
		if gotC["toy.events"] != refC["toy.events"] {
			t.Fatalf("shards=%d: %d events, reference %d", shards, gotC["toy.events"], refC["toy.events"])
		}
	}
	if refC["toy.events"] == 0 {
		t.Fatal("toy world executed no events")
	}
}

// TestShardedRepeatable: same configuration twice gives the same trace
// (the parallel windows must not leak scheduling nondeterminism).
func TestShardedRepeatable(t *testing.T) {
	a, _ := runToy(t, 32, 4, Microsecond)
	b, _ := runToy(t, 32, 4, Microsecond)
	if a != b {
		t.Fatalf("two identical runs diverged: %x vs %x", a, b)
	}
}

// violator posts a cross-shard event closer than the lookahead.
type violator struct{ peer ActorID }

func (v *violator) HandleEvent(sc *ShardCtx, ev Event) {
	sc.Post(1*Nanosecond, Event{To: v.peer, From: sc.Self()})
}

// TestShardedLookaheadViolation: breaking the conservative contract is
// a programming error and must panic, not silently skew the clock.
func TestShardedLookaheadViolation(t *testing.T) {
	se := NewShardedEngine(2, Microsecond)
	b := se.AddActor(1, &violator{})
	a := se.AddActor(0, &violator{peer: b})
	se.Post(0, Event{To: a})
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	se.Run()
}

// spanner records one span per event.
type spanner struct{}

func (s *spanner) HandleEvent(sc *ShardCtx, ev Event) {
	sc.Span("t", fmt.Sprintf("e%d", ev.Round), sc.Now(), sc.Now()+Nanosecond, ev.A)
}

// TestShardedSpansMerge: spans recorded on different shards come back
// merged in deterministic (Start, Track, Name) order.
func TestShardedSpansMerge(t *testing.T) {
	se := NewShardedEngine(2, Microsecond)
	a := se.AddActor(0, &spanner{})
	b := se.AddActor(1, &spanner{})
	se.Post(3*Nanosecond, Event{To: b, Round: 2, A: 20})
	se.Post(1*Nanosecond, Event{To: a, Round: 1, A: 10})
	se.Post(1*Nanosecond, Event{To: b, Round: 3, A: 30})
	se.Run()
	spans := se.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans, want 3", len(spans))
	}
	if spans[0].Name != "e1" && spans[0].Name != "e3" {
		t.Fatalf("first span %+v not at t=1ns", spans[0])
	}
	if spans[2].Name != "e2" {
		t.Fatalf("last span %+v, want the t=3ns one", spans[2])
	}
	if se.Events() != 3 {
		t.Fatalf("Events() = %d, want 3", se.Events())
	}
}

// chainActor forwards a token along the actor ring until TTL expires.
type chainActor struct {
	id ActorID
	n  int
}

func (c *chainActor) HandleEvent(sc *ShardCtx, ev Event) {
	if ev.Round == 0 {
		return
	}
	sc.Post(2*Microsecond, Event{To: ActorID((int(c.id) + 1) % c.n), From: c.id, Round: ev.Round - 1})
}

// BenchmarkShardedEvents measures raw event dispatch throughput (the
// budget that sizes the 16k-rank sweeps).
func BenchmarkShardedEvents(b *testing.B) {
	const n = 1024
	se := NewShardedEngine(1, Microsecond)
	actors := make([]*chainActor, n)
	for i := 0; i < n; i++ {
		actors[i] = &chainActor{id: ActorID(i), n: n}
		se.AddActor(0, actors[i])
	}
	per := b.N/n + 1
	for i := 0; i < n; i++ {
		se.Post(0, Event{To: ActorID(i), Round: int32(per)})
	}
	b.ResetTimer()
	se.Run()
}
