package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Sharded discrete-event engine.
//
// The cooperative Engine in engine.go runs one goroutine per simulated
// process and hands control between them through channels. That is the
// right tool for protocol-accurate worlds (hundreds of ranks), but at
// 16k+ ranks both the goroutine stacks and the single global event heap
// dominate the cost. The ShardedEngine is the scale-out counterpart:
//
//   - No goroutine per entity. Actors are flyweight state machines that
//     receive value-typed Events; all state advances inside HandleEvent.
//   - The event heap, clock and span/counter recording are partitioned
//     into shards. Each shard owns a disjoint set of actors (in the
//     fat-tree worlds of internal/model, all ranks under one group of
//     leaf switches) and everything those actors touch.
//   - Shards run conservatively in parallel: events are executed in
//     barrier-synchronized windows [T, T+lookahead), where T is the
//     global minimum pending timestamp. Any event crossing a shard
//     boundary must be scheduled at least `lookahead` in the future (in
//     a fat tree, the leaf uplink hop guarantees exactly that), so no
//     shard can receive work inside the window it is executing. Cross-
//     shard events land in a mutex-guarded inbox and are merged into
//     the target heap at the window barrier.
//
// Determinism is independent of the shard count. Events order by
// (At, pri) where pri = (senderActor+1)<<32 | senderSeq; both
// components are pure functions of the simulation's own history, never
// of shard scheduling, so the per-actor event sequence — and therefore
// every virtual timestamp — is byte-identical for Shards=1 and
// Shards=N. Shards=1 degenerates to a plain serial heap drain
// (the reference the determinism tests compare against).

// ActorID names an actor registered with AddActor. IDs are assigned
// sequentially from zero in registration order.
type ActorID = int32

// Event is a value-typed message delivered to an actor. Kind, From,
// Round, A, B and Sig are uninterpreted by the engine: they carry the
// model's message identity (payload bytes, schedule round, content
// signature, ...) without allocating.
type Event struct {
	At    Time
	pri   uint64 // (senderActor+1)<<32 | senderSeq; setup events < 1<<32
	To    ActorID
	Kind  int32
	From  ActorID
	Round int32
	A, B  int64
	Sig   uint64
}

// Handler is a flyweight actor: all of its state lives in the struct
// implementing the interface, and advances only inside HandleEvent.
// HandleEvent runs on the goroutine of the shard owning the actor; it
// may freely touch any state owned by that shard.
type Handler interface {
	HandleEvent(sc *ShardCtx, ev Event)
}

// ShardSpan is a lock-free span record: each shard appends to its own
// slice; Spans() merges them deterministically after Run.
type ShardSpan struct {
	Track      string
	Name       string
	Start, End Time
	Bytes      int64
}

// ShardCtx is the per-shard execution context handed to HandleEvent.
// It is also the shard itself: heap, clock, inbox and recording all
// live here, giving single-writer access without locks.
type ShardCtx struct {
	se  *ShardedEngine
	id  int
	now Time
	cur ActorID // actor currently executing

	heap  []Event
	inMu  sync.Mutex
	inbox []Event

	counters map[string]int64
	spans    []ShardSpan
	events   int64
	heapPeak int
}

// ShardedEngine coordinates the shards. Build with NewShardedEngine,
// register actors with AddActor, seed initial events with Post, then
// call Run exactly once.
type ShardedEngine struct {
	lookahead  Time
	shards     []*ShardCtx
	handlers   []Handler
	actorShard []int32
	actorSeq   []uint32
	setupSeq   uint64
	ran        bool

	failMu  sync.Mutex
	failure interface{}

	counters map[string]int64
	spans    []ShardSpan
	events   int64
	heapPeak int
}

const timeMax = Time(1) << 62

// NewShardedEngine creates an engine with the given shard count. With
// more than one shard the lookahead must be positive: it is the minimum
// virtual delay of any cross-shard event and the width of the parallel
// execution window.
func NewShardedEngine(shards int, lookahead Time) *ShardedEngine {
	if shards < 1 {
		panic("sim: ShardedEngine needs at least one shard")
	}
	if shards > 1 && lookahead <= 0 {
		panic("sim: ShardedEngine with >1 shard needs a positive lookahead")
	}
	se := &ShardedEngine{lookahead: lookahead}
	for i := 0; i < shards; i++ {
		se.shards = append(se.shards, &ShardCtx{
			se:       se,
			id:       i,
			counters: make(map[string]int64),
		})
	}
	return se
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Lookahead returns the conservative window width.
func (se *ShardedEngine) Lookahead() Time { return se.lookahead }

// AddActor registers a flyweight actor on the given shard and returns
// its ID. Must be called before Run.
func (se *ShardedEngine) AddActor(shard int, h Handler) ActorID {
	if se.ran {
		panic("sim: AddActor after Run")
	}
	if shard < 0 || shard >= len(se.shards) {
		panic(fmt.Sprintf("sim: AddActor shard %d out of %d", shard, len(se.shards)))
	}
	id := ActorID(len(se.handlers))
	se.handlers = append(se.handlers, h)
	se.actorShard = append(se.actorShard, int32(shard))
	se.actorSeq = append(se.actorSeq, 0)
	return id
}

// Post schedules a setup event before Run starts. Setup events carry a
// priority below every runtime event at the same timestamp, in Post
// order, so the initial schedule is identical across shard counts.
func (se *ShardedEngine) Post(at Time, ev Event) {
	if se.ran {
		panic("sim: ShardedEngine.Post after Run")
	}
	se.setupSeq++
	if se.setupSeq >= 1<<32 {
		panic("sim: setup event sequence overflow")
	}
	ev.At = at
	ev.pri = se.setupSeq
	sh := se.shards[se.actorShard[ev.To]]
	evPush(&sh.heap, ev)
}

// Now returns the shard's local virtual clock (the timestamp of the
// event being executed).
func (sc *ShardCtx) Now() Time { return sc.now }

// Self returns the ID of the actor currently executing.
func (sc *ShardCtx) Self() ActorID { return sc.cur }

// Shard returns the shard index.
func (sc *ShardCtx) Shard() int { return sc.id }

// Post schedules ev at Now()+d. Same-shard events may use any
// non-negative delay; events addressed to an actor on another shard
// must be delayed by at least the engine lookahead (the conservative
// synchronization contract), or Post panics.
func (sc *ShardCtx) Post(d Time, ev Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: sharded Post with negative delay %v", d))
	}
	se := sc.se
	seq := se.actorSeq[sc.cur] + 1
	se.actorSeq[sc.cur] = seq
	ev.At = sc.now + d
	ev.pri = uint64(sc.cur+1)<<32 | uint64(seq)
	ts := se.actorShard[ev.To]
	if int(ts) == sc.id {
		evPush(&sc.heap, ev)
		if len(sc.heap) > sc.heapPeak {
			sc.heapPeak = len(sc.heap)
		}
		return
	}
	if d < se.lookahead {
		panic(fmt.Sprintf("sim: cross-shard event (actor %d -> %d) with delay %v < lookahead %v",
			sc.cur, ev.To, d, se.lookahead))
	}
	t := se.shards[ts]
	t.inMu.Lock()
	t.inbox = append(t.inbox, ev)
	t.inMu.Unlock()
}

// Count adds n to a named per-shard counter (merged by Counters()).
func (sc *ShardCtx) Count(name string, n int64) { sc.counters[name] += n }

// Span records a completed span on the shard's lock-free log.
func (sc *ShardCtx) Span(track, name string, start, end Time, bytes int64) {
	sc.spans = append(sc.spans, ShardSpan{Track: track, Name: name, Start: start, End: end, Bytes: bytes})
}

// drain executes the shard's events with At < end in (At, pri) order.
func (sc *ShardCtx) drain(end Time) {
	for len(sc.heap) > 0 && sc.heap[0].At < end {
		ev := evPop(&sc.heap)
		sc.now = ev.At
		sc.cur = ev.To
		sc.events++
		sc.se.handlers[ev.To].HandleEvent(sc, ev)
	}
}

// Run executes the simulation until every heap and inbox drains. It
// panics (once, on the coordinating goroutine) if any handler panicked.
// Run may be called at most once.
func (se *ShardedEngine) Run() {
	if se.ran {
		panic("sim: ShardedEngine.Run called twice")
	}
	se.ran = true
	if len(se.shards) == 1 {
		// Serial reference path: a single heap drained to completion,
		// exactly the discipline of the cooperative serial engine.
		sh := se.shards[0]
		func() {
			defer se.capture()
			sh.drain(timeMax)
		}()
	} else {
		se.runWindows()
	}
	if se.failure != nil {
		panic(se.failure)
	}
	se.merge()
}

// runWindows is the conservative parallel loop: pick the global minimum
// timestamp T, execute [T, T+lookahead) on every shard concurrently,
// barrier, merge cross-shard inboxes, repeat. Each window advances T by
// at least the lookahead, so the window count is bounded by the
// simulated span divided by the lookahead.
func (se *ShardedEngine) runWindows() {
	for {
		T := timeMax
		for _, sh := range se.shards {
			if len(sh.heap) > 0 && sh.heap[0].At < T {
				T = sh.heap[0].At
			}
		}
		if T == timeMax {
			return
		}
		end := T + se.lookahead
		var wg sync.WaitGroup
		for _, sh := range se.shards {
			if len(sh.heap) == 0 || sh.heap[0].At >= end {
				continue
			}
			wg.Add(1)
			go func(sh *ShardCtx) {
				defer wg.Done()
				defer se.capture()
				sh.drain(end)
			}(sh)
		}
		wg.Wait()
		if se.failure != nil {
			panic(se.failure)
		}
		for _, sh := range se.shards {
			// All workers are parked at the barrier; the lock is only
			// for the race detector's benefit.
			sh.inMu.Lock()
			for _, ev := range sh.inbox {
				evPush(&sh.heap, ev)
			}
			sh.inbox = sh.inbox[:0]
			if len(sh.heap) > sh.heapPeak {
				sh.heapPeak = len(sh.heap)
			}
			sh.inMu.Unlock()
		}
	}
}

// capture records a handler panic so Run can re-panic it once.
func (se *ShardedEngine) capture() {
	if r := recover(); r != nil {
		se.failMu.Lock()
		if se.failure == nil {
			se.failure = r
		}
		se.failMu.Unlock()
	}
}

// merge folds the per-shard records into engine-level views.
func (se *ShardedEngine) merge() {
	se.counters = make(map[string]int64)
	for _, sh := range se.shards {
		for k, v := range sh.counters {
			se.counters[k] += v
		}
		se.spans = append(se.spans, sh.spans...)
		se.events += sh.events
		if sh.heapPeak > se.heapPeak {
			se.heapPeak = sh.heapPeak
		}
	}
	sort.Slice(se.spans, func(i, j int) bool {
		a, b := se.spans[i], se.spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.End < b.End
	})
}

// Counters returns the merged named counters (valid after Run).
func (se *ShardedEngine) Counters() map[string]int64 { return se.counters }

// Spans returns the merged span log, deterministically ordered.
func (se *ShardedEngine) Spans() []ShardSpan { return se.spans }

// Events returns the total number of dispatched events.
func (se *ShardedEngine) Events() int64 { return se.events }

// HeapPeak returns the largest single-shard pending-event count seen,
// a proxy for the engine's working-set memory.
func (se *ShardedEngine) HeapPeak() int { return se.heapPeak }

// evLess orders events by (At, pri). pri is globally unique, so the
// order is total and independent of heap internals.
func evLess(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.pri < b.pri
}

// evPush / evPop are a hand-rolled binary min-heap over value events:
// no interface boxing, no per-event allocation, no closures — the inner
// loop of a 500M-event simulation.
func evPush(h *[]Event, ev Event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func evPop(h *[]Event) Event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && evLess(s[r], s[l]) {
			m = r
		}
		if !evLess(s[m], s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}
