package sim

// Resource is a counting FIFO resource with fixed capacity (slots).
// Acquire blocks the calling process until a slot is free; Release frees a
// slot and wakes the longest-waiting process. Resources model exclusive
// hardware: DMA copy engines, NIC send queues, CPU conversion threads.
type Resource struct {
	e       *Engine
	name    string
	cap     int
	inUse   int
	waiters []*Proc
}

// NewResource returns a resource with the given capacity (>= 1).
func (e *Engine) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{e: e, name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// InUse returns the number of currently-held slots.
func (r *Resource) InUse() int { return r.inUse }

// Acquire takes one slot, blocking FIFO until one is available.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.cap {
		r.waiters = append(r.waiters, p)
		p.park("acquire " + r.name)
	}
	r.inUse++
}

// TryAcquire takes a slot only if one is immediately available.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.cap {
		return false
	}
	r.inUse++
	return true
}

// Release frees one slot. It panics if no slot is held.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	r.inUse--
	if len(r.waiters) > 0 {
		p := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.e.unpark(p, r.e.now)
	}
}

// Use runs fn while holding one slot.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}
