// Package sim provides a deterministic, cooperative discrete-event
// simulation kernel.
//
// The engine runs simulated processes (goroutines) one at a time using
// channel handoff, so simulations are data-race free and fully
// reproducible: the event queue tie-breaks equal timestamps on a
// monotonically increasing sequence number.
//
// Time is virtual and expressed in picoseconds (Time). Processes advance
// time by sleeping, waiting on Futures, receiving from Mailboxes, or
// holding Resources and Links.
package sim

import "fmt"

// Time is a point (or span) of virtual time in picoseconds. Picosecond
// granularity keeps sub-nanosecond transfer times representable (256 bytes
// at 200 GB/s is 1.28 ns) while an int64 still covers ~106 days.
type Time int64

// Convenient spans of virtual time.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats t with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Millis())
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}

// GBps converts a byte count moved over a span into gigabytes per second.
// It returns 0 for non-positive spans.
func GBps(bytes int64, span Time) float64 {
	if span <= 0 {
		return 0
	}
	return float64(bytes) / span.Seconds() / 1e9
}

// TimeForBytes returns the time needed to move n bytes at bwGBps
// gigabytes per second. It panics if bwGBps is not positive.
func TimeForBytes(n int64, bwGBps float64) Time {
	if bwGBps <= 0 {
		panic("sim: non-positive bandwidth")
	}
	return Time(float64(n) / (bwGBps * 1e9) * float64(Second))
}
