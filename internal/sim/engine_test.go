package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var end Time
	e.Spawn("a", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		p.Sleep(3 * Microsecond)
		end = p.Now()
	})
	e.Run()
	if end != 8*Microsecond {
		t.Fatalf("end = %v, want 8us", end)
	}
}

func TestSpawnStartsAtCurrentTime(t *testing.T) {
	e := NewEngine()
	var childStart Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		e.Spawn("child", func(c *Proc) {
			childStart = c.Now()
		})
	})
	e.Run()
	if childStart != 2*Millisecond {
		t.Fatalf("child started at %v, want 2ms", childStart)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() string {
		var log []string
		e := NewEngine()
		for i := 0; i < 3; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Time(i+1) * Microsecond)
					log = append(log, fmt.Sprintf("p%d@%v", i, p.Now()))
				}
			})
		}
		e.Run()
		return strings.Join(log, " ")
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic run:\n%s\nvs\n%s", first, got)
		}
	}
	if !strings.HasPrefix(first, "p0@1.00us p1@2.00us p0@2.00us") {
		t.Fatalf("unexpected order: %s", first)
	}
}

func TestSameInstantEventsRunInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestFutureWakesAllWaiters(t *testing.T) {
	e := NewEngine()
	f := e.NewFuture()
	woke := make([]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			if got := f.Await(p); got != "payload" {
				t.Errorf("value = %v", got)
			}
			woke[i] = p.Now()
		})
	}
	e.Spawn("completer", func(p *Proc) {
		p.Sleep(7 * Microsecond)
		f.Complete("payload")
	})
	e.Run()
	for i, w := range woke {
		if w != 7*Microsecond {
			t.Fatalf("waiter %d woke at %v", i, w)
		}
	}
}

func TestFutureAwaitAfterCompleteReturnsImmediately(t *testing.T) {
	e := NewEngine()
	f := e.NewFuture()
	e.Spawn("a", func(p *Proc) {
		f.Complete(42)
		before := p.Now()
		if v := f.Await(p); v != 42 {
			t.Errorf("value = %v", v)
		}
		if p.Now() != before {
			t.Errorf("await of done future advanced time")
		}
	})
	e.Run()
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		f := e.NewFuture()
		f.Complete(nil)
		f.Complete(nil)
	})
	e.Run()
}

func TestMailboxFIFO(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("m")
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, m.Get(p).(int))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(Microsecond)
			m.Put(i)
		}
	})
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMailboxBlocksUntilPut(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("m")
	var when Time
	e.Spawn("consumer", func(p *Proc) {
		m.Get(p)
		when = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(9 * Microsecond)
		m.Put("x")
	})
	e.Run()
	if when != 9*Microsecond {
		t.Fatalf("consumer resumed at %v", when)
	}
}

func TestResourceSerializes(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("r", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Acquire(p)
			p.Sleep(10 * Microsecond)
			r.Release()
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	want := []Time{10 * Microsecond, 20 * Microsecond, 30 * Microsecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	e := NewEngine()
	r := e.NewResource("r", 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, func() { p.Sleep(10 * Microsecond) })
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	want := []Time{10 * Microsecond, 10 * Microsecond, 20 * Microsecond, 20 * Microsecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no deadlock panic")
		}
		if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("panic = %v", r)
		}
	}()
	e := NewEngine()
	m := e.NewMailbox("never")
	e.Spawn("stuck", func(p *Proc) { m.Get(p) })
	e.Run()
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("panic = %v", r)
		}
	}()
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("boom")
	})
	e.Run()
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.50ns"},
		{2500 * Nanosecond, "2.50us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.0000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeForBytesRoundTrip(t *testing.T) {
	d := TimeForBytes(1<<30, 10) // 1 GiB at 10 GB/s
	if got := GBps(1<<30, d); got < 9.99 || got > 10.01 {
		t.Fatalf("GBps = %v", got)
	}
}

func TestDaemonDoesNotBlockCompletion(t *testing.T) {
	e := NewEngine()
	m := e.NewMailbox("work")
	var served int
	e.SpawnDaemon("worker", func(p *Proc) {
		for {
			m.Get(p)
			p.Sleep(Microsecond)
			served++
		}
	})
	e.Spawn("client", func(p *Proc) {
		m.Put(1)
		m.Put(2)
		p.Sleep(10 * Microsecond)
	})
	e.Run() // must terminate despite the blocked daemon
	if served != 2 {
		t.Fatalf("served = %d", served)
	}
}

func TestAfterRunsCallbacks(t *testing.T) {
	e := NewEngine()
	var at Time
	e.After(5*Microsecond, func() { at = e.Now() })
	e.Spawn("keepalive", func(p *Proc) { p.Sleep(10 * Microsecond) })
	e.Run()
	if at != 5*Microsecond {
		t.Fatalf("callback at %v", at)
	}
}

func TestTraceHookFires(t *testing.T) {
	e := NewEngine()
	var lines int
	e.Trace = func(tm Time, format string, args ...interface{}) { lines++ }
	e.Spawn("a", func(p *Proc) { p.Sleep(Microsecond) })
	e.Run()
	if lines == 0 {
		t.Fatal("trace hook never fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e := NewEngine()
	e.Spawn("a", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		e.After(-20*Microsecond, func() {})
	})
	e.Run()
}

func TestYieldOrdersWithQueuedEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("first", func(p *Proc) {
		e.After(0, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "resumed")
	})
	e.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "resumed" {
		t.Fatalf("order = %v", order)
	}
}
