package sim

import (
	"strings"
	"testing"
)

// TestRecorderSpans checks begin/end bookkeeping: timestamps, nesting
// depth, byte counts and counters.
func TestRecorderSpans(t *testing.T) {
	e := NewEngine()
	r := NewRecorder(e)
	e.Spawn("worker", func(p *Proc) {
		outer := p.BeginBytes("outer", 100)
		p.Sleep(10 * Nanosecond)
		inner := p.Begin("inner")
		inner.SetBytes(40)
		inner.SetDetail("d")
		p.Sleep(5 * Nanosecond)
		inner.End()
		p.Sleep(1 * Nanosecond)
		outer.End()
		p.Count("ops", 2)
		p.Count("ops", 3)
	})
	e.Run()

	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if n := r.SpanCount(); n != 2 {
		t.Fatalf("SpanCount = %d, want 2", n)
	}
	tracks := r.Tracks()
	if len(tracks) != 1 || tracks[0].Name != "worker" {
		t.Fatalf("tracks = %+v, want one track 'worker'", tracks)
	}
	spans := tracks[0].Spans
	if spans[0].Name != "outer" || spans[0].Depth != 0 || spans[0].Bytes != 100 {
		t.Errorf("outer span = %+v", spans[0])
	}
	if spans[1].Name != "inner" || spans[1].Depth != 1 || spans[1].Bytes != 40 || spans[1].Detail != "d" {
		t.Errorf("inner span = %+v", spans[1])
	}
	if got := spans[1].Duration(); got != 5*Nanosecond {
		t.Errorf("inner duration = %v, want 5ns", got)
	}
	if got := spans[0].Duration(); got != 16*Nanosecond {
		t.Errorf("outer duration = %v, want 16ns", got)
	}
	if spans[1].Begin < spans[0].Begin || spans[1].End > spans[0].End {
		t.Errorf("inner escapes outer: %+v vs %+v", spans[1], spans[0])
	}
	if got := r.Counter("ops"); got != 5 {
		t.Errorf("Counter(ops) = %d, want 5", got)
	}
	if names := r.CounterNames(); len(names) != 1 || names[0] != "ops" {
		t.Errorf("CounterNames = %v", names)
	}
}

// TestRecorderDisabled checks the zero-cost path: with no recorder, span
// handles are inert and nothing is recorded.
func TestRecorderDisabled(t *testing.T) {
	e := NewEngine()
	e.Spawn("worker", func(p *Proc) {
		h := p.Begin("x")
		h.SetBytes(1)
		h.SetDetail("d")
		p.Sleep(Nanosecond)
		h.End()
		p.Count("c", 1)
	})
	e.Run()
	if e.Recorder() != nil {
		t.Fatal("Recorder() should be nil when not attached")
	}
}

// TestRecorderValidateOpenSpan checks that an unended span is reported.
func TestRecorderValidateOpenSpan(t *testing.T) {
	e := NewEngine()
	r := NewRecorder(e)
	e.Spawn("worker", func(p *Proc) {
		p.Begin("leaked")
		p.Sleep(Nanosecond)
	})
	e.Run()
	err := r.Validate()
	if err == nil || !strings.Contains(err.Error(), "never ended") {
		t.Fatalf("Validate = %v, want never-ended error", err)
	}
}

// TestRecorderValidateOutOfOrder checks that closing spans out of nesting
// order is reported.
func TestRecorderValidateOutOfOrder(t *testing.T) {
	e := NewEngine()
	r := NewRecorder(e)
	e.Spawn("worker", func(p *Proc) {
		a := p.Begin("a")
		b := p.Begin("b")
		a.End() // wrong: b is innermost
		b.End()
	})
	e.Run()
	err := r.Validate()
	if err == nil || !strings.Contains(err.Error(), "out of nesting order") {
		t.Fatalf("Validate = %v, want nesting-order error", err)
	}
}

// TestRecorderDoubleEnd checks that ending a span twice is reported.
func TestRecorderDoubleEnd(t *testing.T) {
	e := NewEngine()
	r := NewRecorder(e)
	e.Spawn("worker", func(p *Proc) {
		h := p.Begin("x")
		h.End()
		h.End()
	})
	e.Run()
	err := r.Validate()
	if err == nil || !strings.Contains(err.Error(), "ended twice") {
		t.Fatalf("Validate = %v, want double-end error", err)
	}
}

// TestRecorderLinkSpans checks that link occupancy shows up on the
// link's own track and never overlaps (spans begin after acquisition).
func TestRecorderLinkSpans(t *testing.T) {
	e := NewEngine()
	r := NewRecorder(e)
	l := e.NewLink("wire", 10, Nanosecond)
	for i := 0; i < 2; i++ {
		e.Spawn("sender", func(p *Proc) {
			l.Transfer(p, 1000)
		})
	}
	e.Run()
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var link *Track
	for _, tk := range r.Tracks() {
		if tk.Name == "wire" {
			link = tk
		}
	}
	if link == nil || len(link.Spans) != 2 {
		t.Fatalf("want 2 spans on link track, got %+v", link)
	}
	if link.Spans[0].End > link.Spans[1].Begin {
		t.Errorf("link spans overlap: %+v then %+v", link.Spans[0], link.Spans[1])
	}
	for _, sp := range link.Spans {
		if sp.Name != "xfer" || sp.Bytes != 1000 {
			t.Errorf("link span = %+v", sp)
		}
	}
}

// TestRecorderTimingTransparent checks the recorder never perturbs
// virtual time: the same simulation finishes at the same instant with
// and without a recorder attached.
func TestRecorderTimingTransparent(t *testing.T) {
	run := func(record bool) Time {
		e := NewEngine()
		if record {
			NewRecorder(e)
		}
		l := e.NewLink("wire", 5, 10*Nanosecond)
		res := e.NewResource("res", 1)
		for i := 0; i < 3; i++ {
			e.Spawn("p", func(p *Proc) {
				h := SpanHandle{}
				if record {
					h = p.BeginBytes("work", 500)
				}
				res.Acquire(p)
				l.Transfer(p, 500)
				res.Release()
				h.End()
			})
		}
		e.Run()
		return e.Now()
	}
	plain, traced := run(false), run(true)
	if plain != traced {
		t.Fatalf("recorder changed virtual time: %v vs %v", plain, traced)
	}
}
