package sim

import (
	"fmt"
	"testing"
)

func TestLinkTransferTime(t *testing.T) {
	e := NewEngine()
	l := e.NewLink("pcie", 10, 2*Microsecond) // 10 GB/s
	var end Time
	e.Spawn("a", func(p *Proc) {
		l.Transfer(p, 10*1000*1000*1000) // 10 GB -> 1 s occupancy
		end = p.Now()
	})
	e.Run()
	want := Second + 2*Microsecond
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if l.BytesMoved() != 10*1000*1000*1000 {
		t.Fatalf("bytesMoved = %d", l.BytesMoved())
	}
}

func TestLinkSerializesButPipelinesLatency(t *testing.T) {
	// Two back-to-back transfers: the second starts as soon as the first's
	// occupancy ends, i.e. before the first has fully arrived.
	e := NewEngine()
	l := e.NewLink("l", 1, 50*Microsecond) // 1 GB/s
	n := int64(100 * 1000)                 // 100 KB -> 100 us occupancy
	var ends []Time
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("t%d", i), func(p *Proc) {
			l.Transfer(p, n)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	if ends[0] != 150*Microsecond {
		t.Fatalf("first arrival %v, want 150us", ends[0])
	}
	if ends[1] != 250*Microsecond { // 100+100 occupancy + 50 latency
		t.Fatalf("second arrival %v, want 250us", ends[1])
	}
}

func TestLinkOverheadCharged(t *testing.T) {
	e := NewEngine()
	l := e.NewLink("l", 1, 0)
	l.Overhead = 5 * Microsecond
	var end Time
	e.Spawn("a", func(p *Proc) {
		l.Transfer(p, 1000) // 1 us at 1 GB/s
		end = p.Now()
	})
	e.Run()
	if end != 6*Microsecond {
		t.Fatalf("end = %v, want 6us", end)
	}
}

func TestTransferAsyncOverlaps(t *testing.T) {
	e := NewEngine()
	l := e.NewLink("l", 1, 0)
	var computeDone, xferDone Time
	e.Spawn("host", func(p *Proc) {
		f := l.TransferAsync(200 * 1000) // 200 us
		p.Sleep(50 * Microsecond)        // overlapped compute
		computeDone = p.Now()
		f.Await(p)
		xferDone = p.Now()
	})
	e.Run()
	if computeDone != 50*Microsecond {
		t.Fatalf("computeDone = %v", computeDone)
	}
	if xferDone != 200*Microsecond {
		t.Fatalf("xferDone = %v", xferDone)
	}
}

func TestPathTransfer(t *testing.T) {
	e := NewEngine()
	a := e.NewLink("a", 10, Microsecond)
	b := e.NewLink("b", 5, Microsecond)
	pa := &Path{Name: "a->b", Links: []*Link{a, b}}
	var end Time
	e.Spawn("x", func(p *Proc) {
		pa.Transfer(p, 5*1000*1000) // 0.5ms on a, 1ms on b; cut-through = bottleneck
		end = p.Now()
	})
	e.Run()
	want := Millisecond + 2*Microsecond
	if end != want {
		t.Fatalf("end = %v, want %v", end, want)
	}
	if bw := pa.Bandwidth(); bw != 5 {
		t.Fatalf("path bandwidth = %v", bw)
	}
	if lat := pa.Latency(); lat != 2*Microsecond {
		t.Fatalf("path latency = %v", lat)
	}
}

func TestLinkBusyTimeAccounting(t *testing.T) {
	e := NewEngine()
	l := e.NewLink("l", 1, 10*Microsecond)
	e.Spawn("a", func(p *Proc) {
		l.Transfer(p, 1000)
		l.Transfer(p, 2000)
	})
	e.Run()
	if l.BusyTime() != 3*Microsecond {
		t.Fatalf("busy = %v, want 3us", l.BusyTime())
	}
}
