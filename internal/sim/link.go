package sim

// Link models a point-to-point transfer resource with finite bandwidth and
// fixed propagation latency: a PCIe direction, a DRAM port, an InfiniBand
// wire, a host memory bus.
//
// A transfer occupies the link for bytes/bandwidth (store-and-forward
// serialization: concurrent transfers queue FIFO), and the data arrives
// latency after the occupancy ends. The link is free for the next transfer
// during the propagation latency, which is what makes fragment pipelines
// effective, exactly as on real hardware.
type Link struct {
	e       *Engine
	id      uint64
	name    string
	bwGBps  float64
	latency Time
	busy    *Resource

	// Overhead is a fixed per-transfer setup cost charged while holding
	// the link (e.g. DMA descriptor setup). Zero by default.
	Overhead Time

	bytesMoved int64
	busyTime   Time
}

// NewLink returns a link with the given bandwidth (GB/s) and latency.
func (e *Engine) NewLink(name string, bwGBps float64, latency Time) *Link {
	if bwGBps <= 0 {
		panic("sim: link bandwidth must be positive: " + name)
	}
	e.linkSeq++
	l := &Link{
		e:       e,
		id:      e.linkSeq,
		name:    name,
		bwGBps:  bwGBps,
		latency: latency,
		busy:    e.NewResource(name, 1),
	}
	e.links = append(e.links, l)
	return l
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the link bandwidth in GB/s.
func (l *Link) Bandwidth() float64 { return l.bwGBps }

// Latency returns the propagation latency.
func (l *Link) Latency() Time { return l.latency }

// OccupancyFor returns the serialization time for n bytes.
func (l *Link) OccupancyFor(n int64) Time {
	return l.Overhead + TimeForBytes(n, l.bwGBps)
}

// Transfer moves n bytes over the link and blocks the calling process
// until the data has arrived at the far end (occupancy + latency).
func (l *Link) Transfer(p *Proc, n int64) {
	l.occupy(p, n)
	p.Sleep(l.latency)
}

// TransferAsync moves n bytes over the link from a background process and
// completes the returned future when the data has arrived. The calling
// process continues immediately.
func (l *Link) TransferAsync(n int64) *Future {
	f := l.e.NewFuture()
	l.e.Spawn(l.name+".xfer", func(p *Proc) {
		l.occupy(p, n)
		p.Sleep(l.latency)
		f.Complete(nil)
	})
	return f
}

// Occupy holds the link for the serialization time of n bytes without the
// trailing propagation latency. Use it when the caller accounts for
// latency itself (e.g. a path of several links).
func (l *Link) Occupy(p *Proc, n int64) { l.occupy(p, n) }

func (l *Link) occupy(p *Proc, n int64) {
	if n < 0 {
		panic("sim: negative transfer size on " + l.name)
	}
	l.busy.Acquire(p)
	// Begin the span only once the link is held, so spans on a link
	// track never overlap (queueing time belongs to the caller's track).
	h := l.span("xfer", n)
	d := l.OccupancyFor(n)
	p.Sleep(d)
	l.bytesMoved += n
	l.busyTime += d
	h.End()
	l.busy.Release()
}

// HoldFor occupies the link exclusively for an explicit duration while
// accounting n bytes of traffic. Used when the effective occupancy is
// dictated by a coupled resource (e.g. a zero-copy kernel whose device
// side is slower than the wire).
func (l *Link) HoldFor(p *Proc, n int64, d Time) {
	l.busy.Acquire(p)
	h := l.span("hold", n)
	p.Sleep(d)
	l.bytesMoved += n
	l.busyTime += d
	h.End()
	l.busy.Release()
}

// span opens a recorder span on the link's own track (inert when
// tracing is off).
func (l *Link) span(name string, n int64) SpanHandle {
	if l.e.rec == nil {
		return SpanHandle{}
	}
	return l.e.rec.begin(l, l.name, name, n)
}

// BytesMoved returns the total bytes transferred so far.
func (l *Link) BytesMoved() int64 { return l.bytesMoved }

// BusyTime returns the cumulative occupancy time.
func (l *Link) BusyTime() Time { return l.busyTime }

// Path is an ordered sequence of links traversed by a single transfer
// (e.g. GPU0→switch→GPU1). Hardware forwards at packet granularity
// (cut-through), so a path transfer holds every hop simultaneously for
// the bottleneck hop's serialization time — back-pressure stalls the
// faster hops — and the data arrives after the sum of hop latencies.
type Path struct {
	Name  string
	Links []*Link
}

// Transfer moves n bytes along the path, blocking until arrival.
func (pa *Path) Transfer(p *Proc, n int64) {
	pa.Occupy(p, n)
	p.Sleep(pa.Latency())
}

// Occupy holds every hop for the bottleneck serialization time of n
// bytes, without the trailing propagation latency. Hops are locked in a
// global deterministic order (link creation order) so overlapping paths
// cannot deadlock.
func (pa *Path) Occupy(p *Proc, n int64) {
	if n < 0 {
		panic("sim: negative transfer size on path " + pa.Name)
	}
	locked := make([]*Link, len(pa.Links))
	copy(locked, pa.Links)
	for i := 1; i < len(locked); i++ {
		for j := i; j > 0 && locked[j].id < locked[j-1].id; j-- {
			locked[j], locked[j-1] = locked[j-1], locked[j]
		}
	}
	var occ Time
	for _, l := range locked {
		l.busy.Acquire(p)
		if o := l.OccupancyFor(n); o > occ {
			occ = o
		}
	}
	var hs []SpanHandle
	if p.e.rec != nil {
		hs = make([]SpanHandle, len(locked))
		for i, l := range locked {
			hs[i] = l.span("xfer", n)
		}
	}
	p.Sleep(occ)
	for i, l := range locked {
		l.bytesMoved += n
		l.busyTime += occ
		if hs != nil {
			hs[i].End()
		}
		l.busy.Release()
	}
}

// Bandwidth returns the bottleneck bandwidth of the path in GB/s.
func (pa *Path) Bandwidth() float64 {
	bw := 0.0
	for i, l := range pa.Links {
		if i == 0 || l.bwGBps < bw {
			bw = l.bwGBps
		}
	}
	return bw
}

// Latency returns the end-to-end propagation latency of the path.
func (pa *Path) Latency() Time {
	var lat Time
	for _, l := range pa.Links {
		lat += l.latency
	}
	return lat
}
