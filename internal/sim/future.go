package sim

// Future is a one-shot completion signal carrying an optional value.
// A process blocks on Await until another process (or an engine callback)
// calls Complete. Completing an already-complete future panics.
//
// Futures are the simulation analogue of CUDA events and of request
// completion in the MPI layer.
type Future struct {
	e       *Engine
	done    bool
	at      Time
	value   interface{}
	waiters []*Proc
}

// NewFuture returns an incomplete future bound to the engine.
func (e *Engine) NewFuture() *Future { return &Future{e: e} }

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// CompletedAt returns the virtual time of completion; zero if not done.
func (f *Future) CompletedAt() Time { return f.at }

// Value returns the value passed to Complete; nil if not done.
func (f *Future) Value() interface{} { return f.value }

// Complete marks the future done at the current virtual time and wakes all
// waiters (at the same instant, in wait order).
func (f *Future) Complete(value interface{}) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.at = f.e.now
	f.value = value
	for _, p := range f.waiters {
		f.e.unpark(p, f.e.now)
	}
	f.waiters = nil
}

// CompleteAfter schedules completion d from now.
func (f *Future) CompleteAfter(d Time, value interface{}) {
	f.e.After(d, func() { f.Complete(value) })
}

// Await blocks the calling process until the future completes and returns
// its value. If the future is already complete it returns immediately
// without yielding.
func (f *Future) Await(p *Proc) interface{} {
	if f.done {
		return f.value
	}
	f.waiters = append(f.waiters, p)
	p.park("await future")
	return f.value
}

// AwaitAll blocks until every future in fs has completed.
func AwaitAll(p *Proc, fs ...*Future) {
	for _, f := range fs {
		f.Await(p)
	}
}
