package sim

// Mailbox is an unbounded FIFO queue of messages between processes.
// Put never blocks; Get blocks the calling process until a message is
// available. Mailboxes model command queues (CUDA streams), active-message
// delivery queues and the like.
type Mailbox struct {
	e       *Engine
	name    string
	items   []interface{}
	waiters []*Proc
}

// NewMailbox returns an empty mailbox bound to the engine.
func (e *Engine) NewMailbox(name string) *Mailbox {
	return &Mailbox{e: e, name: name}
}

// Len returns the number of queued messages.
func (m *Mailbox) Len() int { return len(m.items) }

// Put enqueues v and, if a process is blocked in Get, wakes the
// longest-waiting one at the current instant. Put may be called from a
// process or from an engine callback.
func (m *Mailbox) Put(v interface{}) {
	m.items = append(m.items, v)
	if len(m.waiters) > 0 {
		p := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.e.unpark(p, m.e.now)
	}
}

// PutAfter enqueues v after a delay of d.
func (m *Mailbox) PutAfter(d Time, v interface{}) {
	m.e.After(d, func() { m.Put(v) })
}

// Get dequeues the oldest message, blocking until one is available.
func (m *Mailbox) Get(p *Proc) interface{} {
	for len(m.items) == 0 {
		m.waiters = append(m.waiters, p)
		p.park("recv " + m.name)
	}
	v := m.items[0]
	m.items[0] = nil
	m.items = m.items[1:]
	return v
}

// TryGet dequeues the oldest message if one is present.
func (m *Mailbox) TryGet() (interface{}, bool) {
	if len(m.items) == 0 {
		return nil, false
	}
	v := m.items[0]
	m.items[0] = nil
	m.items = m.items[1:]
	return v, true
}
