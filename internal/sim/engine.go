package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events with equal timestamps execute in
// scheduling order (seq), which makes runs reproducible.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type yieldKind int

const (
	yieldBlocked yieldKind = iota // proc is parked; a future event resumes it
	yieldDone                     // proc function returned
	yieldPanic                    // proc function panicked
)

// Engine is a deterministic discrete-event scheduler. Create one with
// NewEngine, add processes with Spawn, then call Run.
//
// Exactly one process goroutine executes at any instant: the engine hands
// control to a process and blocks until the process yields (sleeps, waits,
// or returns). Simulations are therefore free of data races by construction
// and produce identical event orders on every run.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	yieldCh chan yieldKind
	live    int // spawned but not finished processes
	blocked map[*Proc]string
	failure interface{}
	running bool
	linkSeq uint64
	links   []*Link
	rec     *Recorder // nil unless a Recorder is attached (see span.go)

	// Trace, if non-nil, receives a line for significant engine events
	// (spawn, finish, deadlock diagnostics). Useful in tests.
	Trace func(t Time, format string, args ...interface{})
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{
		yieldCh: make(chan yieldKind),
		blocked: make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Links returns every link created on this engine, in creation order
// (for utilization reporting).
func (e *Engine) Links() []*Link { return e.links }

// schedule queues fn to run at time at. It panics on times in the past.
func (e *Engine) schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// After runs fn at now+d without a dedicated process. fn executes in the
// engine's goroutine and must not block; it may spawn processes, complete
// futures or schedule further events.
func (e *Engine) After(d Time, fn func()) {
	e.schedule(e.now+d, fn)
}

// Proc is a simulated process. All methods must be called from within the
// process's own function (the one passed to Spawn).
type Proc struct {
	e      *Engine
	name   string
	daemon bool
	resume chan struct{}
}

// Name returns the process name given to Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Spawn registers a new process that starts at the current virtual time.
// It may be called before Run or from inside a running process.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, false, fn)
}

// SpawnDaemon registers a background service process (e.g. a CUDA stream
// worker or a BTL progress loop). Daemons do not keep the simulation
// alive: Run returns when the event queue drains even if daemons are
// blocked, and a blocked daemon is not a deadlock.
func (e *Engine) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, true, fn)
}

func (e *Engine) spawn(name string, daemon bool, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, daemon: daemon, resume: make(chan struct{})}
	if !daemon {
		e.live++
	}
	e.schedule(e.now, func() {
		e.tracef("spawn %s", name)
		go func() {
			kind := yieldDone
			defer func() {
				if r := recover(); r != nil {
					if r == errShutdown {
						return // engine finished; exit silently
					}
					e.failure = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
					kind = yieldPanic
				}
				e.yieldCh <- kind
			}()
			<-p.resume
			fn(p)
		}()
		p.resume <- struct{}{}
		e.waitYield(p)
	})
	return p
}

// errShutdown is the sentinel panic used to unwind parked daemon
// goroutines when the simulation ends, so finished engines are
// garbage-collectable.
var errShutdown = &struct{ s string }{"sim: engine shutdown"}

// waitYield blocks the engine goroutine until process p yields, finishes
// or panics.
func (e *Engine) waitYield(p *Proc) {
	switch <-e.yieldCh {
	case yieldBlocked:
		// p parked itself; some queued event will resume it.
	case yieldDone:
		if !p.daemon {
			e.live--
		}
		e.tracef("finish %s", p.name)
	case yieldPanic:
		if !p.daemon {
			e.live--
		}
	}
}

// park yields control to the engine, recording why the process is blocked;
// the process resumes when something sends on p.resume (via unpark), or
// unwinds if the engine has shut down.
func (p *Proc) park(why string) {
	p.e.blocked[p] = why
	p.e.yieldCh <- yieldBlocked
	if _, ok := <-p.resume; !ok {
		panic(errShutdown)
	}
}

// unpark schedules process p to resume at time at.
func (e *Engine) unpark(p *Proc, at Time) {
	e.schedule(at, func() {
		delete(e.blocked, p)
		p.resume <- struct{}{}
		e.waitYield(p)
	})
}

// Sleep suspends the process for d of virtual time. Negative durations
// sleep zero time (yielding to already-queued same-time events).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.e.unpark(p, p.e.now+d)
	p.park(fmt.Sprintf("sleep %v", d))
}

// Yield lets every other event already scheduled for the current instant
// run before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Run executes events until the queue drains. It panics if a process
// panicked, and reports deadlock if non-daemon processes remain blocked
// with no pending events. When the queue drains, parked daemon processes
// are shut down so the engine and everything it references can be
// garbage-collected; Run must therefore be called at most once.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
		if e.failure != nil {
			panic(e.failure)
		}
	}
	if e.live > 0 {
		msg := fmt.Sprintf("sim: deadlock at %v; blocked process(es):", e.now)
		for p, why := range e.blocked {
			if !p.daemon {
				msg += fmt.Sprintf("\n  %s: %s", p.name, why)
			}
		}
		panic(msg)
	}
	for p := range e.blocked {
		close(p.resume) // unwind parked daemons (see errShutdown)
		delete(e.blocked, p)
	}
}

func (e *Engine) tracef(format string, args ...interface{}) {
	if e.Trace != nil {
		e.Trace(e.now, format, args...)
	}
}
