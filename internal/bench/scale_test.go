package bench

import (
	"testing"
)

// TestScaleQuickSweep runs the CI sweep end to end. Every point is
// payload-verified inside RunScale (hier vs flat byte-identity); here
// we check the sweep shape and that the measurements are sane.
func TestScaleQuickSweep(t *testing.T) {
	sw := QuickScaleSweep()
	pts, err := RunScale(sw)
	if err != nil {
		t.Fatal(err)
	}
	want := len(sw.Colls) * len(sw.Ranks) * len(sw.Oversubs)
	if len(pts) != want {
		t.Fatalf("%d points, want %d", len(pts), want)
	}
	for _, pt := range pts {
		if pt.FlatUs <= 0 || pt.HierUs <= 0 {
			t.Errorf("%s %d ranks: non-positive time (flat %.1f, hier %.1f)", pt.Coll, pt.Ranks, pt.FlatUs, pt.HierUs)
		}
		if pt.BytesPerRank <= 0 {
			t.Errorf("%s %d ranks: no payload", pt.Coll, pt.Ranks)
		}
		if pt.Ranks != pt.Nodes*pt.RanksPerNode {
			t.Errorf("%s: inconsistent shape %d != %d*%d", pt.Coll, pt.Ranks, pt.Nodes, pt.RanksPerNode)
		}
	}
}

// TestScaleAlltoallTarget pins the headline claim: the hierarchical
// alltoall is at least 2x faster than the flat pairwise exchange at
// 128 ranks on a 2:1 oversubscribed fat tree.
func TestScaleAlltoallTarget(t *testing.T) {
	pt, err := measureScale("alltoall", 32, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Speedup < 2 {
		t.Fatalf("alltoall at 128 ranks, 2:1 oversub: speedup %.2f, want >= 2", pt.Speedup)
	}
}

// TestScaleDeterminism re-measures one point and requires identical
// virtual times: the sweep must be a pure function of its parameters.
func TestScaleDeterminism(t *testing.T) {
	a, err := measureScale("allgather", 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := measureScale("allgather", 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic point:\n  %+v\n  %+v", a, b)
	}
}
