package bench

import (
	"fmt"

	"gpuddt/internal/cluster"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
	"gpuddt/internal/trace"
)

// The overlap experiment drives the headline promise of nonblocking
// collectives: an Iallgatherv of irregular sub-matrix blocks crosses the
// two-node InfiniBand wire while each rank's GPU runs its own compute
// kernels, and trace-phase attribution measures how much of the wire
// time was actually hidden. The blocking variant runs the same
// collective and the same kernels back to back as the reference cost.

// OverlapResult is one measured point of the overlap experiment.
type OverlapResult struct {
	Blocking   sim.Time      // Allgatherv then kernels, serialized
	Overlapped sim.Time      // kernels while the Iallgatherv is in flight
	Attr       trace.Overlap // phase attribution of the overlapped run
}

// overlapCounts is the irregular block distribution of the two ranks.
var overlapCounts = []int{3, 5}

// vLayout packs irregular blocks back to back in extent units.
func vLayout(dt *datatype.Datatype, counts []int) (displs []int, span int64) {
	ext := dt.Extent()
	var cur int64
	displs = make([]int, len(counts))
	for r, c := range counts {
		displs[r] = int(cur)
		cur += (layoutSpan(dt, c) + ext - 1) / ext
	}
	return displs, cur * ext
}

// overlapRun executes one traced run and returns its makespan and
// phase attribution.
func overlapRun(n, kernels int, kernelBytes int64, overlapped bool) (sim.Time, trace.Overlap) {
	mode := "blocking"
	if overlapped {
		mode = "overlapped"
	}
	cfg := cluster.TwoNode().Config()
	cfg.GPU = bigGPU()
	cfg.PCIe = bigPCIe()
	w := mpi.NewWorld(cfg)
	defer w.Close()
	rec := attachTrace(w.Engine(), fmt.Sprintf("overlap n=%d %s", n, mode))
	if rec == nil {
		rec = sim.NewRecorder(w.Engine())
	}
	dt := shapes.SubMatrix(n, n, 3*n/2)
	displs, span := vLayout(dt, overlapCounts)
	w.Run(func(m *mpi.Rank) {
		me := m.Rank()
		buf := m.Malloc(span)
		mem.FillPattern(
			buf.Slice(int64(displs[me])*dt.Extent(), layoutSpan(dt, overlapCounts[me])),
			uint64(40+me))
		dev := m.Engine().Device()
		compute := func() {
			for k := 0; k < kernels; k++ {
				dev.Compute(m.Engine().Stream(), kernelBytes, 0).Await(m.Proc())
			}
		}
		if overlapped {
			req := m.Iallgatherv(buf, overlapCounts, displs, dt)
			compute()
			req.Wait(m.Proc())
		} else {
			m.Allgatherv(buf, overlapCounts, displs, dt)
			compute()
		}
	})
	return w.Engine().Now(), trace.ComputeOverlap(rec)
}

// OverlapColl measures the blocking and overlapped variants for one
// sub-matrix size.
func OverlapColl(n, kernels int, kernelBytes int64) OverlapResult {
	var res OverlapResult
	res.Blocking, _ = overlapRun(n, kernels, kernelBytes, false)
	res.Overlapped, res.Attr = overlapRun(n, kernels, kernelBytes, true)
	return res
}

// OverlapFigure sweeps the experiment over sub-matrix sizes. The hidden
// fraction comes straight from trace-phase attribution (wire intervals
// covered by "kernel.compute" intervals), not from comparing makespans.
func OverlapFigure(sizes []int) *Figure {
	f := &Figure{
		ID:     "overlap",
		Title:  "Iallgatherv hidden behind compute kernels (two nodes, IB)",
		XLabel: "submatrix n",
		YLabel: "us (hidden_pct in %)",
		Note:   "Nonblocking collective progress at channel granularity; hidden_pct = wire time covered by kernel.compute spans.",
	}
	blocking := f.NewSeries("blocking_us")
	overlapped := f.NewSeries("overlapped_us")
	hidden := f.NewSeries("hidden_pct")
	for _, n := range sizes {
		r := OverlapColl(n, 4, 64<<20)
		blocking.Add(float64(n), r.Blocking.Micros())
		overlapped.Add(float64(n), r.Overlapped.Micros())
		hidden.Add(float64(n), 100*r.Attr.HiddenFrac())
	}
	return f
}
