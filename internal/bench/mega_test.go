package bench

import (
	"bytes"
	"os"
	"testing"

	"gpuddt/internal/cluster"
	"gpuddt/internal/model"
	"gpuddt/internal/mpi"
)

// clusterScale mirrors runScaleColl's world shape for the modelled arm.
func clusterScale(nodes, rpn, ov int) cluster.Spec {
	return cluster.Scale(nodes, rpn, rpn, ov)
}

// TestMegaQuickSweep runs the CI modelled sweep end to end: every
// point is hier-vs-flat digest-verified inside RunMega, and every
// point under the serial gate must have reproduced byte-identically
// on the 1-shard engine.
func TestMegaQuickSweep(t *testing.T) {
	sw := QuickMegaSweep()
	pts, err := RunMega(sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sw.Colls) * len(sw.Shapes); len(pts) != want {
		t.Fatalf("%d points, want %d", len(pts), want)
	}
	for _, pt := range pts {
		if pt.Mode != "modelled" {
			t.Errorf("%s %d ranks: mode %q", pt.Coll, pt.Ranks, pt.Mode)
		}
		if !pt.SerialIdentical {
			t.Errorf("%s %d ranks: serial identity not verified", pt.Coll, pt.Ranks)
		}
		if pt.FlatUs <= 0 || pt.HierUs <= 0 || pt.Events <= 0 {
			t.Errorf("%s %d ranks: empty measurement %+v", pt.Coll, pt.Ranks, pt)
		}
		if pt.MemPerRank <= 0 || pt.MemPerRank > 64<<10 {
			t.Errorf("%s %d ranks: modelled per-rank memory %d outside (0, 64KiB]", pt.Coll, pt.Ranks, pt.MemPerRank)
		}
		if pt.Ranks >= 128 && pt.Speedup <= 1 {
			t.Errorf("%s %d ranks: hierarchy not winning (speedup %.2f)", pt.Coll, pt.Ranks, pt.Speedup)
		}
	}
}

// TestModelRealEquivalence is the modelled-vs-real digest gate: at 64
// ranks the full protocol stack moving real synthetic bytes and the
// flyweight model moving none must reconstruct sha256-identical
// receive images, for both schedules of both collectives.
func TestModelRealEquivalence(t *testing.T) {
	const nodes, rpn, ov = 16, 4, 2
	for _, coll := range []string{"alltoall", "allgather"} {
		for _, flat := range []bool{false, true} {
			var tun *mpi.Tuning
			if flat {
				tun = &mpi.Tuning{Collectives: mpi.CollFlat}
			}
			_, realSum, _, _ := runScaleColl(coll, nodes, rpn, ov, tun)
			res, err := model.Run(model.Options{
				Spec:   clusterScale(nodes, rpn, ov),
				Coll:   coll,
				Flat:   flat,
				Shards: 2,
				Dt:     scaleBlock(),
				Count:  1,
			})
			if err != nil {
				t.Fatalf("%s flat=%v: %v", coll, flat, err)
			}
			if !bytes.Equal(realSum, res.Digest[:]) {
				t.Errorf("%s flat=%v: modelled digest differs from real-payload world", coll, flat)
			}
		}
	}
}

// TestFlyweightMemoryReduction pins the tentpole memory claim: at 256
// ranks the modelled world's per-rank state must be at least 50x
// smaller than the real-payload world's per-rank backing memory.
func TestFlyweightMemoryReduction(t *testing.T) {
	const nodes, rpn, ov = 64, 4, 2
	_, _, _, realFoot := runScaleColl("alltoall", nodes, rpn, ov, nil)
	res, err := model.Run(model.Options{
		Spec:        clusterScale(nodes, rpn, ov),
		Coll:        "alltoall",
		Shards:      4,
		Dt:          scaleBlock(),
		Count:       1,
		SampleRanks: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ranks := int64(nodes * rpn)
	realPer, modelPer := realFoot/ranks, res.StateBytes/ranks
	if modelPer <= 0 {
		t.Fatalf("modelled per-rank state %d", modelPer)
	}
	if realPer < 50*modelPer {
		t.Fatalf("real %d B/rank vs modelled %d B/rank: reduction %.1fx < 50x",
			realPer, modelPer, float64(realPer)/float64(modelPer))
	}
	t.Logf("real %d B/rank, modelled %d B/rank (%.0fx)", realPer, modelPer, float64(realPer)/float64(modelPer))
}

// TestMegaSmoke16k drives the headline 16384-rank point (hier arm,
// light sampling). Gated behind GPUDDT_MEGA=1: it is minutes of work
// with the flat arm included, seconds without, but still too heavy for
// every `go test` invocation.
func TestMegaSmoke16k(t *testing.T) {
	if os.Getenv("GPUDDT_MEGA") == "" {
		t.Skip("set GPUDDT_MEGA=1 to run the 16384-rank smoke")
	}
	res, err := model.Run(model.Options{
		Spec:        clusterScale(4096, 4, 2),
		Coll:        "alltoall",
		Shards:      8,
		Dt:          scaleBlock(),
		Count:       1,
		SampleRanks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Messages == 0 {
		t.Fatalf("empty 16k run: %+v", res)
	}
	per := res.MemPerRank(16384)
	if per > 16<<10 {
		t.Fatalf("16k-rank modelled state %d B/rank, want O(KB)", per)
	}
	t.Logf("16384 ranks hier alltoall: %v, %d msgs, %d B/rank", res.Time, res.Messages, per)
}
