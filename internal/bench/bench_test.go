package bench

import (
	"strings"
	"testing"

	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

func TestFigurePrint(t *testing.T) {
	f := &Figure{ID: "x", Title: "demo", XLabel: "N", YLabel: "ms"}
	a := f.NewSeries("a")
	a.Add(1, 2.5)
	a.Add(2, 5)
	b := f.NewSeries("b")
	b.Add(2, 7)
	var sb strings.Builder
	f.Print(&sb)
	out := sb.String()
	for _, want := range []string{"# x — demo", "a", "b", "2.5000", "7.0000", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	f := Fig6([]int{2048})
	get := func(name string) *Series {
		for _, s := range f.Series {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("missing series %s", name)
		return nil
	}
	v, tri, stair, c := get("V"), get("T"), get("T-stair"), get("C-cudaMemcpy")
	for i := range v.Points {
		if !(tri.Points[i].Y < v.Points[i].Y) {
			t.Fatalf("N=%v: T (%.1f) not below V (%.1f)", v.Points[i].X, tri.Points[i].Y, v.Points[i].Y)
		}
		if !(v.Points[i].Y < c.Points[i].Y) {
			t.Fatalf("N=%v: V (%.1f) not below C (%.1f)", v.Points[i].X, v.Points[i].Y, c.Points[i].Y)
		}
		if stair.Points[i].Y < 0.9*v.Points[i].Y {
			t.Fatalf("N=%v: stair (%.1f) does not recover V (%.1f)", v.Points[i].X, stair.Points[i].Y, v.Points[i].Y)
		}
		ratioV := v.Points[i].Y / c.Points[i].Y
		if ratioV < 0.90 || ratioV > 0.97 {
			t.Fatalf("N=%v: V/C = %.3f, want ~0.94", v.Points[i].X, ratioV)
		}
	}
}

func TestFig7Relations(t *testing.T) {
	f := Fig7([]int{2048})
	y := func(name string) float64 {
		for _, s := range f.Series {
			if s.Name == name {
				return s.Points[0].Y
			}
		}
		t.Fatalf("missing %s", name)
		return 0
	}
	if !(y("T-d2d-pipeline") < y("T-d2d")) {
		t.Fatalf("pipeline (%.3f) not faster than plain (%.3f)", y("T-d2d-pipeline"), y("T-d2d"))
	}
	if !(y("T-d2d-cached") < y("T-d2d-pipeline")) {
		t.Fatalf("cached (%.3f) not faster than pipeline (%.3f)", y("T-d2d-cached"), y("T-d2d-pipeline"))
	}
	if !(y("V-cpy") < y("V-d2d2h")) {
		t.Fatalf("zero copy (%.3f) not faster than explicit d2d2h (%.3f)", y("V-cpy"), y("V-d2d2h"))
	}
}

func TestFig8AlignmentCliff(t *testing.T) {
	f := Fig8([]int64{1024}, []int64{1000, 1024})
	y := func(name string, x float64) float64 {
		for _, s := range f.Series {
			if s.Name == name {
				for _, p := range s.Points {
					if p.X == x {
						return p.Y
					}
				}
			}
		}
		t.Fatalf("missing %s@%v", name, x)
		return 0
	}
	// memcpy2d d2h collapses off the 64-byte fast path; the kernel does not.
	if !(y("mcp2d-d2h/1K", 1000) > 2*y("mcp2d-d2h/1K", 1024)) {
		t.Fatalf("no memcpy2d cliff: %v vs %v", y("mcp2d-d2h/1K", 1000), y("mcp2d-d2h/1K", 1024))
	}
	ratio := y("kernel-d2h(cpy)/1K", 1000) / y("kernel-d2h(cpy)/1K", 1024)
	if ratio > 1.5 {
		t.Fatalf("kernel zero-copy should not cliff: ratio %.2f", ratio)
	}
	// In-GPU: kernel tracks memcpy2d.
	kr := y("kernel-d2d/1K", 1024) / y("mcp2d-d2d/1K", 1024)
	if kr < 0.5 || kr > 2 {
		t.Fatalf("kernel-d2d vs mcp2d-d2d ratio %.2f, want ~1", kr)
	}
}

func TestFig9Shape(t *testing.T) {
	f := Fig9([]int{2048})
	y := map[string]float64{}
	for _, s := range f.Series {
		y[s.Name] = s.Points[0].Y
	}
	if !(y["T"] < y["V"] && y["V"] <= y["C"]*1.02) {
		t.Fatalf("expected T < V <= C, got T=%.2f V=%.2f C=%.2f", y["T"], y["V"], y["C"])
	}
	if y["V"] < 0.80*y["C"] {
		t.Fatalf("V achieves %.2f of C=%.2f, want >= 80%%", y["V"], y["C"])
	}
	t.Logf("PCIe ping-pong: V=%.2f (%.0f%% of C), T=%.2f (%.0f%% of C), C=%.2f GB/s",
		y["V"], 100*y["V"]/y["C"], y["T"], 100*y["T"]/y["C"], y["C"])
}

func TestFig10OursBeatsMVAPICH(t *testing.T) {
	for _, topo := range []Topology{OneGPU, TwoGPU, TwoNode} {
		f := Fig10(topo, []int{1024})
		y := map[string]float64{}
		for _, s := range f.Series {
			y[s.Name] = s.Points[0].Y
		}
		for _, dt := range []string{"V", "T"} {
			ours := y[dt+"-"+topo.String()]
			mv := y[dt+"-"+topo.String()+"-MVAPICH"]
			if !(ours < mv) {
				t.Fatalf("%s/%s: ours %.3f not faster than MVAPICH %.3f", topo, dt, ours, mv)
			}
		}
		// The indexed gap must be much larger than the vector gap.
		gapT := y["T-"+topo.String()+"-MVAPICH"] / y["T-"+topo.String()]
		gapV := y["V-"+topo.String()+"-MVAPICH"] / y["V-"+topo.String()]
		if gapT < gapV {
			t.Fatalf("%s: indexed gap (%.1fx) should exceed vector gap (%.1fx)", topo, gapT, gapV)
		}
		t.Logf("%s: V gap %.1fx, T gap %.1fx", topo, gapV, gapT)
	}
}

func TestSec53Knee(t *testing.T) {
	f := Sec53(2048, []int{1, 2, 4, 30})
	v := f.Series[0]
	// One block is already nearly enough: going from 4 to 30 blocks must
	// change little (PCIe-bound), while 1 block may be slightly slower.
	if v.Points[3].Y > v.Points[0].Y {
		t.Fatalf("more blocks slower? %v", v.Points)
	}
	improvement := v.Points[0].Y / v.Points[3].Y
	if improvement > 3 {
		t.Fatalf("1 block -> 30 blocks improved %.1fx; communication should be PCIe-bound", improvement)
	}
	tail := v.Points[2].Y / v.Points[3].Y
	if tail > 1.1 {
		t.Fatalf("4 blocks (%.3f) should be within 10%% of 30 blocks (%.3f)", v.Points[2].Y, v.Points[3].Y)
	}
}

func TestSec54Degrades(t *testing.T) {
	f := Sec54(1024, []float64{0, 0.5, 0.9})
	v2 := f.Series[0] // V-2GPU (PCIe bound)
	v1 := f.Series[2] // V-1GPU (DRAM bound)
	if !(v2.Points[0].Y <= v2.Points[1].Y && v2.Points[1].Y <= v2.Points[2].Y) {
		t.Fatalf("interference not monotone: %v", v2.Points)
	}
	// PCIe-bound transfers barely notice the background app...
	if v2.Points[2].Y > 1.3*v2.Points[0].Y {
		t.Fatalf("2GPU ping-pong should be PCIe-bound: %v", v2.Points)
	}
	// ...but DRAM-bound intra-GPU transfers degrade clearly.
	if v1.Points[2].Y < 2*v1.Points[0].Y {
		t.Fatalf("1GPU ping-pong should feel a 90%% background load: %v", v1.Points)
	}
}

func TestAblationRemoteUnpackShape(t *testing.T) {
	f := AblationRemoteUnpack([]int{1024})
	staged, direct := f.Series[0].Points[0].Y, f.Series[1].Points[0].Y
	if !(staged < direct) {
		t.Fatalf("staged (%.3f) should beat direct (%.3f)", staged, direct)
	}
}

func TestFig1SolutionDWins(t *testing.T) {
	f := Fig1Solutions([]int{512})
	y := map[string]float64{}
	for _, s := range f.Series {
		y[s.Name] = s.Points[0].Y
	}
	if !(y["d-gpu-pack"] < y["a-copy-with-gaps"] && y["d-gpu-pack"] < y["b-per-block-d2h"]) {
		t.Fatalf("solution d should win: %v", y)
	}
	if !(y["b-per-block-d2h"] > y["a-copy-with-gaps"]) {
		t.Fatalf("per-block memcpy should collapse for a 512-column triangle: %v", y)
	}
}

func TestPingPongHostConfig(t *testing.T) {
	rt := PingPong(PingPongSpec{Topo: TwoGPU, Dt0: shapes.SubMatrix(512, 512, 512), Count: 1, OnHost: true})
	if rt <= 0 {
		t.Fatal("no measurement")
	}
	_ = sim.Time(0)
}

// TestDeterministicVirtualTime runs the same experiment in two fresh
// worlds and requires bit-identical virtual timings — the property that
// makes every number in EXPERIMENTS.md reproducible on any machine.
func TestDeterministicVirtualTime(t *testing.T) {
	spec := PingPongSpec{Topo: TwoGPU, Dt0: shapes.LowerTriangular(1024), Count: 1}
	a := PingPong(spec)
	b := PingPong(spec)
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
	specIB := PingPongSpec{Topo: TwoNode, Dt0: vMat(1024), Count: 1}
	if x, y := PingPong(specIB), PingPong(specIB); x != y {
		t.Fatalf("nondeterministic over IB: %v vs %v", x, y)
	}
}
