package bench

// SweepConfig carries the sweep parameters shared by the figure
// runners; cmd/ddtbench and cmd/benchhost both drive the registry.
type SweepConfig struct {
	Sizes       []int   // kernel and ping-pong matrix sizes
	TrSizes     []int   // fig1/fig12 triangular/transpose sizes
	BlockCounts []int64 // fig8 block counts
}

// DefaultSweep is the full paper sweep (~minutes of wall clock).
func DefaultSweep() SweepConfig {
	return SweepConfig{
		Sizes:       DefaultSizes,
		TrSizes:     []int{512, 1024, 2048},
		BlockCounts: []int64{1024, 8192},
	}
}

// QuickSweep is the CI-friendly reduced sweep.
func QuickSweep() SweepConfig {
	return SweepConfig{
		Sizes:       []int{1024, 2048},
		TrSizes:     []int{256, 512},
		BlockCounts: []int64{1024},
	}
}

// Runner is one figure generator.
type Runner struct {
	ID    string
	Group string // selector alias ("ablations" expands to three figures)
	Run   func(cfg SweepConfig) *Figure
}

// Matches reports whether the runner is selected by the -figure value.
func (r Runner) Matches(sel string) bool {
	return sel == "all" || sel == r.ID || (r.Group != "" && sel == r.Group)
}

// Runners returns the figure registry in canonical output order.
func Runners() []Runner {
	return []Runner{
		{ID: "fig1", Run: func(c SweepConfig) *Figure { return Fig1Solutions(c.TrSizes) }},
		{ID: "fig6", Run: func(c SweepConfig) *Figure { return Fig6(c.Sizes) }},
		{ID: "fig7", Run: func(c SweepConfig) *Figure { return Fig7(c.Sizes) }},
		{ID: "fig8", Run: func(c SweepConfig) *Figure { return Fig8(c.BlockCounts, Fig8BlockSizes) }},
		{ID: "fig9", Run: func(c SweepConfig) *Figure { return Fig9(c.Sizes) }},
		{ID: "fig10a", Run: func(c SweepConfig) *Figure { return Fig10(OneGPU, c.Sizes) }},
		{ID: "fig10b", Run: func(c SweepConfig) *Figure { return Fig10(TwoGPU, c.Sizes) }},
		{ID: "fig10c", Run: func(c SweepConfig) *Figure { return Fig10(TwoNode, c.Sizes) }},
		{ID: "fig11", Run: func(c SweepConfig) *Figure { return Fig11(c.Sizes) }},
		{ID: "fig12", Run: func(c SweepConfig) *Figure { return Fig12(c.TrSizes) }},
		{ID: "sec5.3", Run: func(c SweepConfig) *Figure { return Sec53(2048, []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 30}) }},
		{ID: "sec5.4", Run: func(c SweepConfig) *Figure { return Sec54(2048, []float64{0, 0.25, 0.5, 0.75, 0.9}) }},
		{ID: "apps", Run: func(c SweepConfig) *Figure { return Apps() }},
		{ID: "whatif-gpu", Run: func(c SweepConfig) *Figure { return WhatIfGPU(4096) }},
		{ID: "overlap", Run: func(c SweepConfig) *Figure { return OverlapFigure([]int{256, 512, 1024}) }},
		{ID: "ablation-unitsize", Group: "ablations", Run: func(c SweepConfig) *Figure {
			return AblationUnitSize(2048, []int64{256, 512, 1024, 2048, 4096})
		}},
		{ID: "ablation-fragsize", Group: "ablations", Run: func(c SweepConfig) *Figure {
			return AblationPipeline(2048, []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20})
		}},
		{ID: "ablation-remoteunpack", Group: "ablations", Run: func(c SweepConfig) *Figure {
			return AblationRemoteUnpack(c.Sizes)
		}},
	}
}

// RunAll executes the given runners — concurrently up to the configured
// parallelism — and returns their figures in input order.
func RunAll(rs []Runner, cfg SweepConfig) []*Figure {
	return pmap(len(rs), func(i int) *Figure { return rs[i].Run(cfg) })
}
