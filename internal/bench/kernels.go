package bench

import (
	"fmt"

	"gpuddt/internal/core"
	"gpuddt/internal/cuda"
	"gpuddt/internal/datatype"
	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/pcie"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// DefaultSizes is the matrix-size sweep used by the figure runners.
var DefaultSizes = []int{1024, 2048, 4096, 8192}

// SmallSizes keeps unit tests and -short benchmarks fast.
var SmallSizes = []int{512, 1024}

// vMat is the paper's "V" workload: an N x N sub-matrix inside a larger
// column-major matrix (leading dimension N+32), so columns are
// contiguous but the type as a whole is strided — unlike a full matrix,
// which would collapse to a single contiguous block.
func vMat(n int) *datatype.Datatype { return shapes.SubMatrix(n, n, n+32) }

// bigGPU returns a K40 profile with enough simulated memory for the
// N=8192 sweeps (512 MB matrix + packed buffer + staging).
func bigGPU() gpu.Params {
	p := gpu.KeplerK40()
	p.MemBytes = 6 << 30
	return p
}

func bigPCIe() pcie.Params {
	p := pcie.DefaultParams()
	p.HostMemBytes = 6 << 30
	return p
}

// kernelRig is a single-process, single-GPU setup for Figs. 6-8.
type kernelRig struct {
	eng  *sim.Engine
	ctx  *cuda.Ctx
	e    *core.Engine
	node *pcie.Node
}

func newKernelRig(opts core.Options) *kernelRig {
	e := sim.NewEngine()
	attachRigTrace(e)
	node := pcie.NewNode(e, 0, 1, bigGPU(), bigPCIe())
	ctx := cuda.NewCtx(node)
	return &kernelRig{eng: e, ctx: ctx, e: core.New(ctx, 0, opts), node: node}
}

// close recycles the rig's memory backing into the slab pool. The rig
// must not be used afterwards.
func (r *kernelRig) close() { r.node.Release() }

func layoutSpan(dt *datatype.Datatype, count int) int64 {
	if count == 0 {
		return 0
	}
	return int64(count-1)*dt.Extent() + dt.TrueLB() + dt.TrueExtent()
}

// timePack measures one pack of (dt, 1) after the given number of warmup
// packs (warmup > 0 measures the DEV-cached regime, as the paper's
// "cached" curves do).
func (r *kernelRig) timePack(dt *datatype.Datatype, warmup int) sim.Time {
	data := r.ctx.Malloc(0, layoutSpan(dt, 1))
	dst := r.ctx.Malloc(0, dt.Size())
	var dur sim.Time
	r.eng.Spawn("pack", func(p *sim.Proc) {
		for i := 0; i < warmup; i++ {
			r.e.Pack(p, data, dt, 1, dst)
		}
		t0 := p.Now()
		r.e.Pack(p, data, dt, 1, dst)
		dur = p.Now() - t0
	})
	r.eng.Run()
	return dur
}

// Fig6 reproduces "GPU memory bandwidth of packing kernels": pack
// bandwidth of the sub-matrix (V), lower triangular (T) and
// stair-triangular (T-stair) types against a contiguous cudaMemcpy of
// the same size (C-cudaMemcpy). Kernel-only: DEV lists are cached.
func Fig6(sizes []int) *Figure {
	f := &Figure{
		ID:     "fig6",
		Title:  "GPU memory bandwidth of packing kernels",
		XLabel: "MatrixSize",
		YLabel: "GB/s",
		Note:   "Paper: V ~94% of cudaMemcpy, T ~80%, T-stair recovers V.",
	}
	sT := f.NewSeries("T")
	sV := f.NewSeries("V")
	sStair := f.NewSeries("T-stair")
	sC := f.NewSeries("C-cudaMemcpy")
	pts := pmap(len(sizes), func(i int) [4]float64 {
		n := sizes[i]
		var pt [4]float64
		{
			r := newKernelRig(core.Options{})
			dt := vMat(n)
			pt[0] = sim.GBps(dt.Size(), r.timePack(dt, 1))
			r.close()
		}
		{
			r := newKernelRig(core.Options{})
			dt := shapes.LowerTriangular(n)
			pt[1] = sim.GBps(dt.Size(), r.timePack(dt, 1))
			r.close()
		}
		{
			r := newKernelRig(core.Options{})
			dt := shapes.StairTriangular(n, stairNB(n))
			pt[2] = sim.GBps(dt.Size(), r.timePack(dt, 1))
			r.close()
		}
		{
			r := newKernelRig(core.Options{})
			sz := shapes.MatrixBytes(n)
			src := r.ctx.Malloc(0, sz)
			dst := r.ctx.Malloc(0, sz)
			var dur sim.Time
			r.eng.Spawn("memcpy", func(p *sim.Proc) {
				t0 := p.Now()
				r.ctx.Memcpy(p, dst, src)
				dur = p.Now() - t0
			})
			r.eng.Run()
			pt[3] = sim.GBps(sz, dur)
			r.close()
		}
		return pt
	})
	for i, n := range sizes {
		x := float64(n)
		sV.Add(x, pts[i][0])
		sT.Add(x, pts[i][1])
		sStair.Add(x, pts[i][2])
		sC.Add(x, pts[i][3])
	}
	return f
}

// stairNB picks a stair step that divides n and keeps units aligned.
func stairNB(n int) int {
	for _, nb := range []int{256, 128, 64, 32} {
		if n%nb == 0 {
			return nb
		}
	}
	return n
}

// fig7Case runs pack+unpack round trips for one datatype/config.
type fig7Case struct {
	name    string
	dt      func(n int) *datatype.Datatype
	opts    core.Options
	warmup  int  // packs before measuring (cached curves)
	viaHost bool // d2d2h: move packed data to host and back
	zeroCpy bool // cpy: pack/unpack directly against host (UMA)
}

// Fig7 reproduces "performance of pack and unpack vs matrix size": the
// in-GPU (bypass CPU) and through-host variants, with and without
// pipelining and DEV caching.
func Fig7(sizes []int) *Figure {
	f := &Figure{
		ID:     "fig7",
		Title:  "Pack+unpack time vs matrix size (bypass CPU / through CPU)",
		XLabel: "MatrixSize",
		YLabel: "ms",
		Note:   "Paper: pipelining ~halves T-d2d; caching removes DEV prep; zero copy slightly beats explicit d2d2h.",
	}
	tri := func(n int) *datatype.Datatype { return shapes.LowerTriangular(n) }
	sub := vMat
	noPipe := core.Options{NoPipeline: true, NoCacheDEV: true}
	pipe := core.Options{NoCacheDEV: true}
	cached := core.Options{}
	cases := []fig7Case{
		{name: "V-d2d", dt: sub, opts: cached},
		{name: "T-d2d", dt: tri, opts: noPipe},
		{name: "T-d2d-pipeline", dt: tri, opts: pipe},
		{name: "T-d2d-cached", dt: tri, opts: cached, warmup: 1},
		{name: "V-d2d2h", dt: sub, opts: cached, viaHost: true},
		{name: "V-cpy", dt: sub, opts: cached, zeroCpy: true},
		{name: "T-d2d2h-cached", dt: tri, opts: cached, warmup: 1, viaHost: true},
		{name: "T-cpy-cached", dt: tri, opts: cached, warmup: 1, zeroCpy: true},
	}
	vals := pmap(len(cases)*len(sizes), func(k int) float64 {
		return runFig7Case(cases[k/len(sizes)], sizes[k%len(sizes)]).Millis()
	})
	for ci, c := range cases {
		s := f.NewSeries(c.name)
		for si, n := range sizes {
			s.Add(float64(n), vals[ci*len(sizes)+si])
		}
	}
	return f
}

func runFig7Case(c fig7Case, n int) sim.Time {
	r := newKernelRig(c.opts)
	dt := c.dt(n)
	data := r.ctx.Malloc(0, layoutSpan(dt, 1))
	packedDev := r.ctx.Malloc(0, dt.Size())
	hostBuf := r.ctx.MallocHost(dt.Size())
	var dur sim.Time
	r.eng.Spawn("fig7", func(p *sim.Proc) {
		for i := 0; i < c.warmup; i++ {
			r.e.Pack(p, data, dt, 1, packedDev)
			r.e.Unpack(p, data, dt, 1, packedDev)
		}
		t0 := p.Now()
		switch {
		case c.zeroCpy:
			// Zero copy: pack straight into mapped host memory and
			// unpack straight out of it; the hardware overlaps the
			// PCIe movement with the kernels.
			r.e.Pack(p, data, dt, 1, hostBuf)
			r.e.Unpack(p, data, dt, 1, hostBuf)
		case c.viaHost:
			r.e.Pack(p, data, dt, 1, packedDev)
			r.ctx.Memcpy(p, hostBuf, packedDev)
			r.ctx.Memcpy(p, packedDev, hostBuf)
			r.e.Unpack(p, data, dt, 1, packedDev)
		default:
			r.e.Pack(p, data, dt, 1, packedDev)
			r.e.Unpack(p, data, dt, 1, packedDev)
		}
		dur = p.Now() - t0
	})
	r.eng.Run()
	r.close()
	return dur
}

// Fig8BlockSizes is the block-size sweep (bytes); it deliberately mixes
// 64-byte multiples with sizes that break cudaMemcpy2D's alignment fast
// path.
var Fig8BlockSizes = []int64{64, 200, 256, 1000, 1024, 4000, 4096, 16384}

// Fig8 reproduces "vector pack/unpack performance vs cudaMemcpy2D":
// pack time of a byte-Hvector with the given block count, as block size
// varies, for the specialized kernel and for cudaMemcpy2D, each in
// d2d / d2d2h / d2h(zero-copy) variants.
func Fig8(blockCounts []int64, blockSizes []int64) *Figure {
	f := &Figure{
		ID:     "fig8",
		Title:  "Vector kernel vs cudaMemcpy2D (pack one direction)",
		XLabel: "BlockBytes",
		YLabel: "ms",
		Note:   "Paper: memcpy2d collapses off the 64B-pitch fast path; kernel-d2d tracks mcp2d-d2d.",
	}
	pts := pmap(len(blockCounts)*len(blockSizes), func(k int) [6]float64 {
		blocks := blockCounts[k/len(blockSizes)]
		bs := blockSizes[k%len(blockSizes)]
		stride := 2 * bs
		dt := datatype.Hvector(int(blocks), int(bs), stride, datatype.Byte)
		total := dt.Size()

		run := func(fn func(p *sim.Proc, r *kernelRig, data, dev, host mem.Buffer)) sim.Time {
			r := newKernelRig(core.Options{})
			data := r.ctx.Malloc(0, layoutSpan(dt, 1))
			dev := r.ctx.Malloc(0, total)
			host := r.ctx.MallocHost(total)
			var dur sim.Time
			r.eng.Spawn("fig8", func(p *sim.Proc) {
				// Warm the DEV cache so kernel curves are kernel-only.
				r.e.Pack(p, data, dt, 1, dev)
				t0 := p.Now()
				fn(p, r, data, dev, host)
				dur = p.Now() - t0
			})
			r.eng.Run()
			r.close()
			return dur
		}

		return [6]float64{
			run(func(p *sim.Proc, r *kernelRig, data, dev, host mem.Buffer) {
				r.e.Pack(p, data, dt, 1, dev)
			}).Millis(),
			run(func(p *sim.Proc, r *kernelRig, data, dev, host mem.Buffer) {
				r.e.Pack(p, data, dt, 1, dev)
				r.ctx.Memcpy(p, host, dev)
			}).Millis(),
			run(func(p *sim.Proc, r *kernelRig, data, dev, host mem.Buffer) {
				r.e.Pack(p, data, dt, 1, host)
			}).Millis(),
			run(func(p *sim.Proc, r *kernelRig, data, dev, host mem.Buffer) {
				r.ctx.Memcpy2D(p, dev, bs, data, stride, bs, blocks)
			}).Millis(),
			run(func(p *sim.Proc, r *kernelRig, data, dev, host mem.Buffer) {
				r.ctx.Memcpy2D(p, host, bs, data, stride, bs, blocks)
			}).Millis(),
			run(func(p *sim.Proc, r *kernelRig, data, dev, host mem.Buffer) {
				r.ctx.Memcpy2D(p, dev, bs, data, stride, bs, blocks)
				r.ctx.Memcpy(p, host, dev)
			}).Millis(),
		}
	})
	for bi, blocks := range blockCounts {
		kd2d := f.NewSeries(fmt.Sprintf("kernel-d2d/%dK", blocks>>10))
		kd2d2h := f.NewSeries(fmt.Sprintf("kernel-d2d2h/%dK", blocks>>10))
		kcpy := f.NewSeries(fmt.Sprintf("kernel-d2h(cpy)/%dK", blocks>>10))
		m2d := f.NewSeries(fmt.Sprintf("mcp2d-d2d/%dK", blocks>>10))
		m2h := f.NewSeries(fmt.Sprintf("mcp2d-d2h/%dK", blocks>>10))
		m2d2h := f.NewSeries(fmt.Sprintf("mcp2d-d2d2h/%dK", blocks>>10))
		for si, bs := range blockSizes {
			x := float64(bs)
			pt := pts[bi*len(blockSizes)+si]
			kd2d.Add(x, pt[0])
			kd2d2h.Add(x, pt[1])
			kcpy.Add(x, pt[2])
			m2d.Add(x, pt[3])
			m2h.Add(x, pt[4])
			m2d2h.Add(x, pt[5])
		}
	}
	return f
}

// AblationUnitSize sweeps the CUDA-DEV split size S for the triangular
// pack (DESIGN.md A1). The paper fixes S at 1-4 KB after the same
// trade-off: small S balances ragged columns better but multiplies
// per-unit overheads.
func AblationUnitSize(n int, unitSizes []int64) *Figure {
	f := &Figure{
		ID:     "ablation-unitsize",
		Title:  fmt.Sprintf("CUDA-DEV unit size S, triangular N=%d (uncached)", n),
		XLabel: "S bytes",
		YLabel: "GB/s",
	}
	s := f.NewSeries("T pack")
	dt := shapes.LowerTriangular(n)
	vals := pmap(len(unitSizes), func(i int) float64 {
		r := newKernelRig(core.Options{UnitSize: unitSizes[i], NoCacheDEV: true})
		v := sim.GBps(dt.Size(), r.timePack(dt, 0))
		r.close()
		return v
	})
	for i, us := range unitSizes {
		s.Add(float64(us), vals[i])
	}
	return f
}
