package bench

import (
	"fmt"
	"strings"

	"gpuddt/internal/cluster"
	"gpuddt/internal/mpi"
	"gpuddt/internal/workload"
)

// The application-workload sweep behind BENCH_apps.json: every family
// of internal/workload on fat-tree clusters at two fabric
// oversubscription levels, plus the two-job interference study under
// every placement policy. All payloads are generator-verified inside
// the workloads themselves — a point only appears in the report if
// every received byte checked out.

// AppPoint is one single-job application measurement.
type AppPoint struct {
	Family        string  `json:"family"`
	Ranks         int     `json:"ranks"`
	Nodes         int     `json:"nodes"`
	RanksPerNode  int     `json:"ranks_per_node"`
	Oversub       int     `json:"oversub"`
	ElapsedUs     float64 `json:"elapsed_us"`
	Digest        string  `json:"digest"`
	SubarraySpans int     `json:"subarray_spans,omitempty"`

	// TunedUs and TunedSpeedup (default/tuned) are set when the sweep
	// carries a tuning table holding an "app:<family>" entry for this
	// point's topology class; the tuned run's payload digest must match.
	TunedUs      float64 `json:"tuned_us,omitempty"`
	TunedSpeedup float64 `json:"tuned_speedup,omitempty"`
}

// AppSweep configures the application sweep.
type AppSweep struct {
	RanksPerNode int
	RankCounts   []int
	Oversubs     []int
	Seed         uint64

	// Interference-study shape: two jobs (ml-ring vs stencil2d) of
	// StudyRanksPerJob ranks each on StudyNodes nodes, swept over
	// Policies. The stencil job runs StudyHaloIters sweeps of a
	// StudyHaloBox² local box so the two jobs' traffic overlaps in
	// virtual time — a job that finishes inside the other's first
	// compute kernel would measure nothing.
	StudyNodes       int
	StudyRPN         int
	StudyOversub     int
	StudyRanksPerJob int
	StudyHaloBox     int
	StudyHaloIters   int
	Policies         []cluster.Policy

	// Tune, if non-nil, adds a tuned arm per single-job point: the
	// tuning-table lookup for (spec, 0, "app:<family>") replayed on the
	// same job, digest-verified against the default run. A table miss
	// leaves the point's tuned fields zero.
	Tune cluster.TuneFunc
}

// DefaultAppSweep is the committed-report shape: four rank counts (the
// 64-rank points span two leaves, where fabric oversubscription starts
// to matter), taper (1:1) and 4:1 oversubscribed fabrics, and a two-leaf
// interference study — 32-rank jobs on 16 nodes, so packed placement
// isolates each job on its own leaf (the crossbar is non-blocking)
// while striped and spread jobs share uplinks and node wires.
func DefaultAppSweep() AppSweep {
	return AppSweep{
		RanksPerNode: 4,
		RankCounts:   []int{8, 16, 32, 64},
		Oversubs:     []int{1, 4},
		Seed:         0xA5,
		StudyNodes:   16, StudyRPN: 4, StudyOversub: 4, StudyRanksPerJob: 32,
		StudyHaloBox: 64, StudyHaloIters: 120,
		Policies: cluster.Policies,
	}
}

// QuickAppSweep is the CI smoke shape: one rank count, one fabric, all
// policies on a small study point — small enough to run twice for the
// determinism check.
func QuickAppSweep() AppSweep {
	return AppSweep{
		RanksPerNode: 4,
		RankCounts:   []int{8},
		Oversubs:     []int{4},
		Seed:         0xA5,
		StudyNodes:   4, StudyRPN: 4, StudyOversub: 4, StudyRanksPerJob: 8,
		StudyHaloBox: 16, StudyHaloIters: 8,
		Policies: cluster.Policies,
	}
}

// appFamilies lists the swept families in report order.
var appFamilies = []string{"ml-ring", "ml-tree", "stencil2d", "stencil3d", "checkpoint"}

// appGrid factors a power-of-two rank count into nd balanced dims,
// each >= 2.
func appGrid(ranks, nd int) ([]int, error) {
	log := 0
	for v := ranks; v > 1; v >>= 1 {
		if v&1 != 0 {
			return nil, fmt.Errorf("bench: %d ranks not a power of two", ranks)
		}
		log++
	}
	if log < nd {
		return nil, fmt.Errorf("bench: %d ranks cannot fill a %dD grid", ranks, nd)
	}
	dims := make([]int, nd)
	for d := range dims {
		n := log / nd
		if d < log%nd {
			n++
		}
		dims[d] = 1 << n
	}
	return dims, nil
}

// AppWorkload builds the named family sized for a job of `ranks` ranks.
// The ML config is deliberately mid-sized (a dozen log-normal layers,
// 128 KB fusion buffers, a sparse MoE phase) so the sweep finishes in
// CI time while still exercising bucketed allreduce and skewed
// alltoallv.
func AppWorkload(family string, ranks int) (workload.Workload, error) {
	ml := workload.MLTrain{Layers: 12, MeanKB: 32, Sigma: 1.2, FusionKB: 128, Iters: 2, MoETokens: 16, Hidden: 32}
	switch family {
	case "ml-ring":
		ml.Alg = mpi.AllreduceRing
		return ml, nil
	case "ml-tree":
		ml.Alg = mpi.AllreduceTree
		return ml, nil
	case "stencil2d", "stencil3d":
		nd := 2
		if family == "stencil3d" {
			nd = 3
		}
		grid, err := appGrid(ranks, nd)
		if err != nil {
			return nil, err
		}
		return workload.Stencil{Procs: grid, Iters: 2}, nil
	case "checkpoint":
		return workload.Checkpoint{StateKB: 128, ChunkKB: 4, Iters: 4, Interval: 2, HaloKB: 16}, nil
	}
	return nil, fmt.Errorf("bench: unknown app family %q", family)
}

// RunApps measures every family at every (ranks, oversub) point as a
// single job owning the whole cluster. Stencil points run traced, and
// the count of halo spans that moved subarray datatypes is recorded in
// the point — zero subarray spans on a stencil point is an error, not
// a report entry.
func RunApps(sw AppSweep) ([]AppPoint, error) {
	var pts []AppPoint
	for _, ranks := range sw.RankCounts {
		if ranks%sw.RanksPerNode != 0 {
			return nil, fmt.Errorf("bench: %d ranks not divisible by %d per node", ranks, sw.RanksPerNode)
		}
		nodes := ranks / sw.RanksPerNode
		for _, ov := range sw.Oversubs {
			for _, fam := range appFamilies {
				w, err := AppWorkload(fam, ranks)
				if err != nil {
					return nil, err
				}
				spec := cluster.Scale(nodes, sw.RanksPerNode, sw.RanksPerNode, ov)
				all := make([]int, ranks)
				for i := range all {
					all[i] = i
				}
				jobs := []workload.JobSpec{{Name: fam, W: w, Seed: sw.Seed, Ranks: all}}
				traced := strings.HasPrefix(fam, "stencil")
				res, rec, err := workload.Run(spec.Config(), jobs, nil, workload.Options{Trace: traced})
				if err != nil {
					return nil, fmt.Errorf("bench: %s/%d ranks/oversub %d: %w", fam, ranks, ov, err)
				}
				pt := AppPoint{
					Family: fam, Ranks: ranks, Nodes: nodes,
					RanksPerNode: sw.RanksPerNode, Oversub: ov,
					ElapsedUs: res[0].ElapsedUs, Digest: res[0].Digest,
				}
				if traced {
					pt.SubarraySpans = workload.CountSpans(rec, "app.halo.face", "subarray(")
					if pt.SubarraySpans == 0 {
						return nil, fmt.Errorf("bench: %s/%d ranks: no subarray halo spans recorded", fam, ranks)
					}
				}
				if sw.Tune != nil {
					if tun := sw.Tune(spec, 0, "app:"+fam); tun != nil {
						tres, _, err := workload.Run(spec.Tuned(tun).Config(), jobs, nil, workload.Options{})
						if err != nil {
							return nil, fmt.Errorf("bench: %s/%d ranks/oversub %d tuned: %w", fam, ranks, ov, err)
						}
						if tres[0].Digest != pt.Digest {
							return nil, fmt.Errorf("bench: %s/%d ranks/oversub %d: tuned payload digest differs", fam, ranks, ov)
						}
						pt.TunedUs = tres[0].ElapsedUs
						if tres[0].ElapsedUs > 0 {
							pt.TunedSpeedup = pt.ElapsedUs / tres[0].ElapsedUs
						}
					}
				}
				pts = append(pts, pt)
			}
		}
	}
	return pts, nil
}

// RunAppStudies runs the two-job interference point (data-parallel
// training vs stencil halo) under every policy of the sweep.
func RunAppStudies(sw AppSweep) ([]workload.StudyResult, error) {
	rpj := sw.StudyRanksPerJob
	ml, err := AppWorkload("ml-ring", rpj)
	if err != nil {
		return nil, err
	}
	grid, err := appGrid(rpj, 2)
	if err != nil {
		return nil, err
	}
	st := workload.Stencil{
		Procs: grid,
		Box:   []int{sw.StudyHaloBox, sw.StudyHaloBox},
		Iters: sw.StudyHaloIters,
	}
	var out []workload.StudyResult
	for _, policy := range sw.Policies {
		res, _, _, err := workload.RunStudy(workload.Study{
			Nodes: sw.StudyNodes, GPUsPerNode: sw.StudyRPN, RanksPerNode: sw.StudyRPN,
			Oversub: sw.StudyOversub, RanksPerJob: rpj, Policy: policy,
			Jobs: []workload.StudyJob{
				{Name: "train", W: ml, Seed: sw.Seed + 1},
				{Name: "halo", W: st, Seed: sw.Seed + 2},
			},
		})
		if err != nil {
			return nil, fmt.Errorf("bench: interference %s: %w", policy, err)
		}
		for _, j := range res.Jobs {
			if !j.DigestMatch {
				return nil, fmt.Errorf("bench: interference %s: job %q digest changed under contention", policy, j.Job)
			}
		}
		out = append(out, res)
	}
	return out, nil
}
