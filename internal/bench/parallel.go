package bench

import "sync"

// The figure runners are embarrassingly parallel: every sweep point
// builds its own simulation world with its own engine and virtual
// clock, so points can run on concurrent goroutines without sharing
// any mutable simulation state. Results are always merged by index,
// which keeps figures byte-identical at any parallelism setting.

var (
	parMu  sync.Mutex
	parSem chan struct{} // nil = serial
)

// SetParallelism sets the global concurrency budget for figure sweeps
// (the -parallel flag of cmd/ddtbench). n <= 1 restores fully serial
// execution. Do not change it while sweeps are running.
func SetParallelism(n int) {
	parMu.Lock()
	defer parMu.Unlock()
	if n <= 1 {
		parSem = nil
		return
	}
	parSem = make(chan struct{}, n)
}

// Parallelism returns the current concurrency budget.
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	if parSem == nil {
		return 1
	}
	return cap(parSem)
}

func sem() chan struct{} {
	parMu.Lock()
	defer parMu.Unlock()
	return parSem
}

// pmap computes out[i] = f(i) for i in [0, n), running tasks
// concurrently up to the configured budget. A task that cannot get a
// slot runs inline on the calling goroutine, which bounds total
// concurrency across nesting levels (a parallel figure runner whose
// sweep also calls pmap) and makes nested use deadlock-free.
func pmap[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	s := sem()
	if s == nil || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case s <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-s }()
				out[i] = f(i)
			}(i)
		default:
			out[i] = f(i)
		}
	}
	wg.Wait()
	return out
}
