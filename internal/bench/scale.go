package bench

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"runtime"
	"time"

	"gpuddt/internal/cluster"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/model"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// The scale-out sweep: every collective is run twice on the same
// fat-tree world — once with the topology-aware hierarchical algorithm,
// once forced onto the flat (topology-blind) algorithm — and the two
// runs must produce byte-identical buffers on every rank. The virtual
// completion times of the pair give the speedup the hierarchy buys at
// that world size and oversubscription.

// ScaleColls is the collective set the sweep covers.
var ScaleColls = []string{"bcast", "allgather", "alltoall", "reduce"}

// ScaleSweep configures the scale-out sweep.
type ScaleSweep struct {
	Colls        []string
	Ranks        []int // total world sizes
	RanksPerNode int   // ranks per node at full scale (small worlds shrink to one node)
	Oversubs     []int // fat-tree oversubscription ratios

	// MeasureHost additionally records host-side resource use per
	// point: wall-clock, Go HeapInuse and the world's real memory
	// footprint per rank. Off for CI smoke sweeps, whose output must
	// be byte-identical run to run.
	MeasureHost bool

	// Tune, if non-nil, adds a third arm per point: the tuning-table
	// lookup for (spec, message bytes, "coll:<name>") replayed on the
	// same world, digest-verified against the default arm. A table miss
	// leaves the point's tuned fields zero.
	Tune cluster.TuneFunc
}

// DefaultScaleSweep is the committed BENCH_scale.json sweep: 2 to 256
// ranks at 4 ranks per node, fully provisioned to 4:1 oversubscribed.
func DefaultScaleSweep() ScaleSweep {
	return ScaleSweep{
		Colls:        ScaleColls,
		Ranks:        []int{2, 8, 32, 128, 256},
		RanksPerNode: 4,
		Oversubs:     []int{1, 2, 4},
		MeasureHost:  true,
	}
}

// QuickScaleSweep is the CI smoke sweep.
func QuickScaleSweep() ScaleSweep {
	return ScaleSweep{
		Colls:        ScaleColls,
		Ranks:        []int{8, 32},
		RanksPerNode: 4,
		Oversubs:     []int{2},
	}
}

// ScalePoint is one (collective, world, oversubscription) measurement.
// Times are virtual (simulated) microseconds; Speedup is flat/hier.
type ScalePoint struct {
	Coll         string  `json:"coll"`
	Nodes        int     `json:"nodes"`
	RanksPerNode int     `json:"ranks_per_node"`
	Ranks        int     `json:"ranks"`
	Oversub      int     `json:"oversub"`
	BytesPerRank int64   `json:"bytes_per_rank"`
	FlatUs       float64 `json:"flat_us"`
	HierUs       float64 `json:"hier_us"`
	Speedup      float64 `json:"speedup"`

	// TunedUs and TunedSpeedup (default/tuned) are set when the sweep
	// carries a tuning table and it holds an entry for this point.
	TunedUs      float64 `json:"tuned_us,omitempty"`
	TunedSpeedup float64 `json:"tuned_speedup,omitempty"`

	// Mode is "" for real-payload worlds (full protocol stack, real
	// buffers) and "modelled" for flyweight modelled-payload worlds
	// (internal/model on the sharded event engine).
	Mode string `json:"mode,omitempty"`

	// Shards is the sharded-engine partition count of a modelled point.
	Shards int `json:"shards,omitempty"`

	// SerialIdentical records that the modelled point was re-run on the
	// serial (1-shard) engine and produced byte-identical virtual times
	// and payload digests.
	SerialIdentical bool `json:"serial_identical,omitempty"`

	// Events counts dispatched engine events of a modelled point
	// (hier + flat arms).
	Events int64 `json:"events,omitempty"`

	// MemPerRank is the per-rank memory of the world: the deterministic
	// structural state of a modelled world, or (with MeasureHost) the
	// real backing memory of a real-payload world.
	MemPerRank int64 `json:"mem_per_rank_bytes,omitempty"`

	// HeapInuse and WallMs are host-side measurements (MeasureHost
	// sweeps only): Go heap in use after the point, wall-clock to run
	// it.
	HeapInuse int64   `json:"heap_inuse_bytes,omitempty"`
	WallMs    float64 `json:"wall_ms,omitempty"`
}

// RunScale executes the sweep. Every point is verified: the
// hierarchical and flat runs must leave byte-identical packed buffers
// on every rank, or the point (and the whole sweep) is rejected.
func RunScale(sw ScaleSweep) ([]ScalePoint, error) {
	var pts []ScalePoint
	for _, coll := range sw.Colls {
		for _, ranks := range sw.Ranks {
			rpn := sw.RanksPerNode
			if ranks < rpn {
				rpn = ranks
			}
			if ranks%rpn != 0 {
				return nil, fmt.Errorf("scale: %d ranks not divisible by %d per node", ranks, rpn)
			}
			for _, ov := range sw.Oversubs {
				start := time.Now()
				pt, err := measureScaleOpt(coll, ranks/rpn, rpn, ov, sw.MeasureHost, sw.Tune)
				if err != nil {
					return nil, err
				}
				if sw.MeasureHost {
					pt.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
					var ms runtime.MemStats
					runtime.ReadMemStats(&ms)
					pt.HeapInuse = int64(ms.HeapInuse)
				}
				pts = append(pts, pt)
			}
		}
	}
	return pts, nil
}

// measureScale times one collective hier vs flat on the same world.
// It never records memory: backing-array sizes depend on slab-pool
// history, and the plain measurement must stay a pure function of its
// parameters.
func measureScale(coll string, nodes, rpn, oversub int) (ScalePoint, error) {
	return measureScaleOpt(coll, nodes, rpn, oversub, false, nil)
}

func measureScaleOpt(coll string, nodes, rpn, oversub int, withMem bool, tune cluster.TuneFunc) (ScalePoint, error) {
	hierT, hierSum, bytesPer, hierFoot := runScaleColl(coll, nodes, rpn, oversub, nil)
	flatT, flatSum, _, _ := runScaleColl(coll, nodes, rpn, oversub, &mpi.Tuning{Collectives: mpi.CollFlat})
	if !bytes.Equal(hierSum, flatSum) {
		return ScalePoint{}, fmt.Errorf("scale: %s %dx%d oversub %d: hierarchical payload differs from flat",
			coll, nodes, rpn, oversub)
	}
	pt := ScalePoint{
		Coll:         coll,
		Nodes:        nodes,
		RanksPerNode: rpn,
		Ranks:        nodes * rpn,
		Oversub:      oversub,
		BytesPerRank: bytesPer,
		FlatUs:       flatT.Micros(),
		HierUs:       hierT.Micros(),
		Speedup:      float64(flatT) / float64(hierT),
	}
	if withMem {
		pt.MemPerRank = hierFoot / int64(nodes*rpn)
	}
	if tune != nil {
		spec := cluster.Scale(nodes, rpn, rpn, oversub)
		if tun := tune(spec, bytesPer, "coll:"+coll); tun != nil {
			tunedT, tunedSum, _, _ := runScaleColl(coll, nodes, rpn, oversub, tun)
			if !bytes.Equal(tunedSum, hierSum) {
				return ScalePoint{}, fmt.Errorf("scale: %s %dx%d oversub %d: tuned payload differs from default",
					coll, nodes, rpn, oversub)
			}
			pt.TunedUs = tunedT.Micros()
			pt.TunedSpeedup = float64(hierT) / float64(tunedT)
		}
	}
	return pt, nil
}

// scaleBlock is the non-contiguous unit the datatype collectives move:
// a 16x8 double sub-matrix in a leading dimension of 12 (1 KiB packed)
// — small enough that per-message costs dominate the flat algorithms,
// which is exactly the regime collective aggregation targets.
func scaleBlock() *datatype.Datatype { return shapes.SubMatrix(16, 8, 12) }

// reduceElems is the Int64 vector length the reduce sweep combines.
const reduceElems = 4096

// runScaleColl runs one collective on a Scale world under the given
// tuning (nil = defaults) and returns its completion time plus a digest
// of every rank's packed result.
func runScaleColl(coll string, nodes, rpn, oversub int, tun *mpi.Tuning) (sim.Time, []byte, int64, int64) {
	spec := cluster.Scale(nodes, rpn, rpn, oversub)
	cfg := spec.Tuned(tun).Config()
	w := mpi.NewWorld(cfg)
	defer w.Close()
	size := spec.Size()
	root := size - 1 // a non-leader root exercises the leader election

	imgs := make([][]byte, size)
	starts := make([]sim.Time, size)
	ends := make([]sim.Time, size)
	w.Run(func(m *mpi.Rank) {
		var run func()
		var result func() []byte
		switch coll {
		case "bcast":
			dt, count := scaleBlock(), 8
			buf := m.Malloc(layoutSpan(dt, count))
			if m.Rank() == root {
				mem.FillSynthetic(buf, uint64(1000+root))
			}
			run = func() { m.Bcast(buf, dt, count, root) }
			result = func() []byte { return cpuPack(dt, count, buf.Bytes()) }
		case "allgather":
			dt, count := scaleBlock(), 1
			stride := int64(count) * dt.Extent()
			buf := m.Malloc(layoutSpan(dt, size*count))
			mem.FillSynthetic(buf.Slice(int64(m.Rank())*stride, layoutSpan(dt, count)), uint64(model.SeedAllgather+m.Rank()))
			run = func() { m.Allgather(buf, dt, count) }
			result = func() []byte { return cpuPack(dt, size*count, buf.Bytes()) }
		case "alltoall":
			dt, count := scaleBlock(), 1
			sendBuf := m.Malloc(layoutSpan(dt, size*count))
			recvBuf := m.Malloc(layoutSpan(dt, size*count))
			mem.FillSynthetic(sendBuf, uint64(model.SeedAlltoall+m.Rank()))
			run = func() { m.Alltoall(sendBuf, dt, count, recvBuf, dt, count) }
			result = func() []byte { return cpuPack(dt, size*count, recvBuf.Bytes()) }
		case "reduce":
			dt, count := datatype.Contiguous(reduceElems, datatype.Int64), 1
			sendBuf := m.Malloc(dt.Size())
			recvBuf := m.Malloc(dt.Size())
			mem.FillSynthetic(sendBuf, uint64(4000+m.Rank()))
			run = func() { m.Reduce(sendBuf, recvBuf, dt, count, mpi.OpSum, root) }
			result = func() []byte {
				if m.Rank() != root {
					return nil
				}
				return append([]byte(nil), recvBuf.Bytes()...)
			}
		default:
			panic("scale: unknown collective " + coll)
		}
		m.Barrier()
		starts[m.Rank()] = m.Now()
		run()
		ends[m.Rank()] = m.Now()
		imgs[m.Rank()] = result()
	})

	// Completion time of the whole operation: first entry to last exit.
	t0, t1 := starts[0], ends[0]
	for r := 1; r < size; r++ {
		if starts[r] < t0 {
			t0 = starts[r]
		}
		if ends[r] > t1 {
			t1 = ends[r]
		}
	}
	elapsed := t1 - t0

	h := sha256.New()
	var per int64
	for r, img := range imgs {
		if r == 0 && len(img) > 0 {
			per = int64(len(img))
		}
		h.Write(img)
	}
	if coll == "reduce" {
		per = reduceElems * 8
	}
	return elapsed, h.Sum(nil), per, w.FootprintBytes()
}

// cpuPack packs (dt, count) from src's bytes with the reference CPU
// converter — layout-independent ground truth for digests.
func cpuPack(dt *datatype.Datatype, count int, src []byte) []byte {
	c := datatype.NewConverter(dt, count)
	out := make([]byte, c.Total())
	c.Pack(out, src)
	return out
}
