package bench

import (
	"reflect"
	"testing"
)

func TestAppGrid(t *testing.T) {
	cases := []struct {
		ranks, nd int
		want      []int
	}{
		{8, 2, []int{4, 2}},
		{8, 3, []int{2, 2, 2}},
		{16, 2, []int{4, 4}},
		{16, 3, []int{4, 2, 2}},
		{32, 3, []int{4, 4, 2}},
	}
	for _, c := range cases {
		got, err := appGrid(c.ranks, c.nd)
		if err != nil || !reflect.DeepEqual(got, c.want) {
			t.Errorf("appGrid(%d, %d) = %v, %v; want %v", c.ranks, c.nd, got, err, c.want)
		}
	}
	for _, bad := range []struct{ ranks, nd int }{{12, 2}, {4, 3}} {
		if _, err := appGrid(bad.ranks, bad.nd); err == nil {
			t.Errorf("appGrid(%d, %d): no error", bad.ranks, bad.nd)
		}
	}
}

// TestQuickAppSweep runs the CI shape end-to-end: every family point
// verified and digest-stamped, stencil points carrying subarray span
// counts, and the interference study clean under all three policies.
func TestQuickAppSweep(t *testing.T) {
	sw := QuickAppSweep()
	pts, err := RunApps(sw)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(appFamilies) * len(sw.RankCounts) * len(sw.Oversubs); len(pts) != want {
		t.Fatalf("points = %d, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.Digest == "" || p.ElapsedUs <= 0 {
			t.Errorf("%s/%d: bad point %+v", p.Family, p.Ranks, p)
		}
	}
	studies, err := RunAppStudies(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != len(sw.Policies) {
		t.Fatalf("studies = %d, want %d", len(studies), len(sw.Policies))
	}
	for _, st := range studies {
		for _, j := range st.Jobs {
			if j.Slowdown < 0.999 {
				t.Errorf("%s/%s: slowdown %.3f", st.Policy, j.Job, j.Slowdown)
			}
		}
	}
}
