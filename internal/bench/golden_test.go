package bench_test

import (
	"flag"
	"path/filepath"
	"testing"

	"gpuddt/internal/bench"
	"gpuddt/internal/conformance"
)

var update = flag.Bool("update", false, "regenerate golden figure traces")

// TestGoldenFigures gates every figure runner on its recorded
// virtual-time trace. The simulator is deterministic, so any drift in a
// point is a real behavioural change: either a regression to fix, or an
// intended change to explain and re-record with
//
//	go test ./internal/bench -run TestGoldenFigures -update
func TestGoldenFigures(t *testing.T) {
	cases := []struct {
		name string
		run  func() *bench.Figure
	}{
		{"fig1", func() *bench.Figure { return bench.Fig1Solutions([]int{256}) }},
		{"fig6", func() *bench.Figure { return bench.Fig6([]int{512}) }},
		{"fig7", func() *bench.Figure { return bench.Fig7([]int{512}) }},
		{"fig8", func() *bench.Figure { return bench.Fig8([]int64{1024}, []int64{200, 1024, 4096}) }},
		{"fig9", func() *bench.Figure { return bench.Fig9([]int{512, 1024}) }},
		{"fig10a", func() *bench.Figure { return bench.Fig10(bench.OneGPU, []int{512, 1024}) }},
		{"fig10b", func() *bench.Figure { return bench.Fig10(bench.TwoGPU, []int{512, 1024}) }},
		{"fig10c", func() *bench.Figure { return bench.Fig10(bench.TwoNode, []int{512, 1024}) }},
		{"fig11", func() *bench.Figure { return bench.Fig11([]int{512, 1024}) }},
		{"fig12", func() *bench.Figure { return bench.Fig12([]int{256}) }},
		{"r1", func() *bench.Figure { return bench.Sec53(512, []int{1, 4, 16}) }},
		{"r2", func() *bench.Figure { return bench.Sec54(512, []float64{0, 0.5, 0.9}) }},
		{"a1", func() *bench.Figure { return bench.AblationUnitSize(512, []int64{256, 1024, 4096}) }},
		{"a2", func() *bench.Figure { return bench.AblationPipeline(512, []int64{256 << 10, 1 << 20}) }},
		{"a3", func() *bench.Figure { return bench.AblationRemoteUnpack([]int{512}) }},
		{"overlap", func() *bench.Figure { return bench.OverlapFigure([]int{256, 512}) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", c.name+".json")
			if err := conformance.CheckFigure(path, c.run(), *update); err != nil {
				t.Fatal(err)
			}
		})
	}
}
