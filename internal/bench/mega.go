package bench

import (
	"fmt"
	"runtime"
	"time"

	"gpuddt/internal/cluster"
	"gpuddt/internal/model"
)

// The mega-scale sweep: the modelled-payload counterpart of RunScale,
// producing the same hier-vs-flat ScalePoints for alltoall/allgather
// at world sizes (1k, 4k, 16k+ ranks) where building a real-payload
// world — goroutines, protocol stacks, device buffers — is off the
// table. Ranks are flyweight state machines on the sharded event
// engine; payloads are digest-checked synthetic generators. Every
// point still verifies hier-vs-flat payload identity (over the sampled
// ranks), and points small enough re-run on the serial engine to prove
// the sharded times byte-identical.

// MegaColls is the collective set the modelled sweep covers.
var MegaColls = []string{"alltoall", "allgather"}

// MegaShape is one (world size, oversubscription) sweep point.
type MegaShape struct {
	Ranks   int
	Oversub int
}

// MegaSweep configures the modelled mega-scale sweep.
type MegaSweep struct {
	Colls        []string
	Shapes       []MegaShape
	RanksPerNode int
	Shards       int // sharded-engine partitions (clamped to leaf count)
	SampleRanks  int // ranks with full content verification per point

	// SerialVerifyMax: points with at most this many ranks are re-run
	// on the serial 1-shard engine and must match byte-for-byte
	// (virtual time, digest, message and event counts).
	SerialVerifyMax int

	// MeasureHost records wall-clock and Go HeapInuse per point (off
	// for CI smoke sweeps, whose output must be byte-identical).
	MeasureHost bool
}

// DefaultMegaSweep is the committed BENCH_scale.json modelled sweep:
// the overlap sizes (32-256 ranks, where the real-payload sweep also
// runs) with full serial identity gating, then 1k/4k ranks across
// oversubscription ratios, and the 16384-rank headline point.
func DefaultMegaSweep() MegaSweep {
	var shapes []MegaShape
	for _, r := range []int{32, 128, 256, 1024, 4096} {
		for _, ov := range []int{1, 2, 4} {
			shapes = append(shapes, MegaShape{Ranks: r, Oversub: ov})
		}
	}
	shapes = append(shapes, MegaShape{Ranks: 16384, Oversub: 2})
	return MegaSweep{
		Colls:           MegaColls,
		Shapes:          shapes,
		RanksPerNode:    4,
		Shards:          8,
		SampleRanks:     64,
		SerialVerifyMax: 1024,
		MeasureHost:     true,
	}
}

// QuickMegaSweep is the CI smoke sweep: small enough to finish in
// seconds, still crossing the real sweep's ceiling (1024 > 256) and
// serially verifying every point.
func QuickMegaSweep() MegaSweep {
	return MegaSweep{
		Colls:           MegaColls,
		Shapes:          []MegaShape{{32, 2}, {128, 2}, {1024, 2}},
		RanksPerNode:    4,
		Shards:          4,
		SampleRanks:     16,
		SerialVerifyMax: 1024,
	}
}

// RunMega executes the modelled sweep. Every point runs the
// hierarchical and flat schedules on the same modelled fabric; their
// sampled payload digests must agree, and points under the serial
// gate must reproduce byte-identically on the 1-shard engine.
func RunMega(sw MegaSweep) ([]ScalePoint, error) {
	var pts []ScalePoint
	for _, coll := range sw.Colls {
		for _, shape := range sw.Shapes {
			rpn := sw.RanksPerNode
			if shape.Ranks < rpn {
				rpn = shape.Ranks
			}
			if shape.Ranks%rpn != 0 {
				return nil, fmt.Errorf("mega: %d ranks not divisible by %d per node", shape.Ranks, rpn)
			}
			start := time.Now()
			pt, err := measureMega(coll, shape.Ranks/rpn, rpn, shape.Oversub, sw)
			if err != nil {
				return nil, err
			}
			if sw.MeasureHost {
				pt.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				pt.HeapInuse = int64(ms.HeapInuse)
			}
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// measureMega measures one modelled point: hier and flat arms, digest
// identity between them, and (under the gate) serial identity.
func measureMega(coll string, nodes, rpn, oversub int, sw MegaSweep) (ScalePoint, error) {
	spec := cluster.ScaleModelled(nodes, rpn, rpn, oversub, sw.Shards)
	opt := model.Options{
		Spec:        spec,
		Coll:        coll,
		Dt:          scaleBlock(),
		Count:       1,
		SampleRanks: sw.SampleRanks,
	}

	opt.Flat = false
	hier, err := model.Run(opt)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("mega: %s %dx%d oversub %d hier: %w", coll, nodes, rpn, oversub, err)
	}
	opt.Flat = true
	flat, err := model.Run(opt)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("mega: %s %dx%d oversub %d flat: %w", coll, nodes, rpn, oversub, err)
	}
	if hier.Digest != flat.Digest {
		return ScalePoint{}, fmt.Errorf("mega: %s %dx%d oversub %d: hierarchical payload differs from flat",
			coll, nodes, rpn, oversub)
	}

	ranks := nodes * rpn
	pt := ScalePoint{
		Coll:         coll,
		Nodes:        nodes,
		RanksPerNode: rpn,
		Ranks:        ranks,
		Oversub:      oversub,
		BytesPerRank: int64(ranks) * scaleBlock().Size(),
		FlatUs:       flat.Time.Micros(),
		HierUs:       hier.Time.Micros(),
		Speedup:      float64(flat.Time) / float64(hier.Time),
		Mode:         "modelled",
		Shards:       hier.Shards,
		Events:       hier.Events + flat.Events,
		MemPerRank:   (hier.StateBytes + flat.StateBytes) / int64(2*ranks),
	}

	if ranks <= sw.SerialVerifyMax {
		serial := opt
		serial.Spec.Shards = 0
		serial.Shards = 1
		serial.Flat = false
		sh, err := model.Run(serial)
		if err != nil {
			return ScalePoint{}, err
		}
		serial.Flat = true
		sf, err := model.Run(serial)
		if err != nil {
			return ScalePoint{}, err
		}
		if sh.Time != hier.Time || sf.Time != flat.Time ||
			sh.Digest != hier.Digest || sf.Digest != flat.Digest ||
			sh.Messages != hier.Messages || sf.Messages != flat.Messages ||
			sh.Events != hier.Events || sf.Events != flat.Events {
			return ScalePoint{}, fmt.Errorf(
				"mega: %s %dx%d oversub %d: sharded run (x%d) diverged from serial engine (hier %v/%v, flat %v/%v)",
				coll, nodes, rpn, oversub, hier.Shards, hier.Time, sh.Time, flat.Time, sf.Time)
		}
		pt.SerialIdentical = true
	}
	return pt, nil
}
