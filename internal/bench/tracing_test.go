package bench_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"gpuddt/internal/bench"
	"gpuddt/internal/conformance"
	"gpuddt/internal/shapes"
)

// TestGoldenFiguresTraced re-runs a representative slice of the golden
// figure cases with trace collection enabled and checks the results
// against the same goldens (never updating them). Recording must be
// pure bookkeeping: any drift here means the recorder perturbed virtual
// time. Every collected recorder must also validate (all spans ended,
// properly nested).
func TestGoldenFiguresTraced(t *testing.T) {
	cases := []struct {
		name string
		run  func() *bench.Figure
	}{
		{"fig6", func() *bench.Figure { return bench.Fig6([]int{512}) }},
		{"fig9", func() *bench.Figure { return bench.Fig9([]int{512, 1024}) }},
		{"fig10b", func() *bench.Figure { return bench.Fig10(bench.TwoGPU, []int{512, 1024}) }},
		{"fig10c", func() *bench.Figure { return bench.Fig10(bench.TwoNode, []int{512, 1024}) }},
		{"a3", func() *bench.Figure { return bench.AblationRemoteUnpack([]int{512}) }},
	}
	runs, stop := bench.CollectTraces()
	defer stop()
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", c.name+".json")
			if err := conformance.CheckFigure(path, c.run(), false); err != nil {
				t.Fatal(err)
			}
		})
	}
	stop()
	if len(*runs) == 0 {
		t.Fatal("no runs collected")
	}
	for _, run := range *runs {
		if err := run.Rec.Validate(); err != nil {
			t.Errorf("run %q: %v", run.Name, err)
		}
		if run.Rec.SpanCount() == 0 {
			t.Errorf("run %q recorded no spans", run.Name)
		}
	}
}

// TestPingPongChromeTrace runs a traced ping-pong and schema-checks the
// emitted Chrome trace-event JSON: top-level traceEvents array, every
// event one of the phases we emit, complete events with non-negative
// timestamps and durations, and the expected metadata.
func TestPingPongChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	bench.PingPong(bench.PingPongSpec{
		Topo:      bench.TwoGPU,
		Dt0:       shapes.LowerTriangular(512),
		Count:     1,
		Iters:     1,
		TraceJSON: &buf,
	})

	var out struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	var complete, meta int
	names := map[string]bool{}
	for i, ev := range out.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Name == "" {
				t.Errorf("event %d: complete event without a name", i)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %d (%s): negative ts/dur %v/%v", i, ev.Name, ev.Ts, ev.Dur)
			}
			names[ev.Name] = true
		case "M":
			meta++
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Errorf("event %d: unexpected metadata %q", i, ev.Name)
			}
			if ev.Args["name"] == nil {
				t.Errorf("event %d: metadata without args.name", i)
			}
		case "C":
			if ev.Args["value"] == nil {
				t.Errorf("event %d: counter %q without args.value", i, ev.Name)
			}
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if complete == 0 || meta == 0 {
		t.Fatalf("want complete and metadata events, got X=%d M=%d", complete, meta)
	}
	// The protocol-level spans the tentpole promises must be present.
	for _, want := range []string{"mpi.recv", "mpi.rts", "frag.pack", "xfer"} {
		if !names[want] {
			t.Errorf("trace missing expected span %q (have %v)", want, names)
		}
	}
}
