package bench_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"gpuddt/internal/bench"
	"gpuddt/internal/conformance"
)

func figureCSV(f *bench.Figure) string {
	var buf bytes.Buffer
	f.PrintCSV(&buf)
	return buf.String()
}

// TestParallelMatchesSerial checks that figures are byte-identical with
// the sweep points fanned out over goroutines: parallelism only changes
// wall-clock, never virtual time or merge order.
func TestParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		run  func() *bench.Figure
	}{
		{"fig6", func() *bench.Figure { return bench.Fig6([]int{512, 1024}) }},
		{"fig9", func() *bench.Figure { return bench.Fig9([]int{512, 1024}) }},
		{"fig10b", func() *bench.Figure { return bench.Fig10(bench.TwoGPU, []int{512, 1024}) }},
		{"fig12", func() *bench.Figure { return bench.Fig12([]int{256}) }},
		{"a3", func() *bench.Figure { return bench.AblationRemoteUnpack([]int{512}) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			serial := figureCSV(c.run())
			for _, par := range []int{2, 8} {
				bench.SetParallelism(par)
				got := figureCSV(c.run())
				bench.SetParallelism(1)
				if got != serial {
					t.Fatalf("parallel=%d output differs from serial\nserial:\n%s\nparallel:\n%s", par, serial, got)
				}
			}
		})
	}
}

// TestGoldenFiguresParallel replays a slice of the golden gate with the
// parallel driver on: the recorded virtual-time traces must still match.
func TestGoldenFiguresParallel(t *testing.T) {
	cases := []struct {
		name string
		run  func() *bench.Figure
	}{
		{"fig1", func() *bench.Figure { return bench.Fig1Solutions([]int{256}) }},
		{"fig7", func() *bench.Figure { return bench.Fig7([]int{512}) }},
		{"fig8", func() *bench.Figure { return bench.Fig8([]int64{1024}, []int64{200, 1024, 4096}) }},
		{"fig10c", func() *bench.Figure { return bench.Fig10(bench.TwoNode, []int{512, 1024}) }},
		{"fig11", func() *bench.Figure { return bench.Fig11([]int{512, 1024}) }},
		{"r1", func() *bench.Figure { return bench.Sec53(512, []int{1, 4, 16}) }},
		{"r2", func() *bench.Figure { return bench.Sec54(512, []float64{0, 0.5, 0.9}) }},
		{"a1", func() *bench.Figure { return bench.AblationUnitSize(512, []int64{256, 1024, 4096}) }},
		{"a2", func() *bench.Figure { return bench.AblationPipeline(512, []int64{256 << 10, 1 << 20}) }},
	}
	bench.SetParallelism(4)
	defer bench.SetParallelism(1)
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", c.name+".json")
			if err := conformance.CheckFigure(path, c.run(), false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunAllOrderAndNesting runs several runners concurrently, each of
// which pmaps internally — the semaphore's inline fallback must keep the
// nested fan-out deadlock-free — and requires registry output order.
func TestRunAllOrderAndNesting(t *testing.T) {
	var selected []bench.Runner
	for _, r := range bench.Runners() {
		if r.ID == "fig6" || r.ID == "fig9" || r.ID == "ablation-remoteunpack" {
			selected = append(selected, r)
		}
	}
	if len(selected) != 3 {
		t.Fatalf("registry selection found %d runners, want 3", len(selected))
	}
	cfg := bench.SweepConfig{Sizes: []int{512}, TrSizes: []int{256}, BlockCounts: []int64{1024}}
	bench.SetParallelism(2)
	figs := bench.RunAll(selected, cfg)
	bench.SetParallelism(1)
	want := []string{"fig6", "fig9", "ablation-remoteunpack"}
	for i, f := range figs {
		if f.ID != want[i] {
			t.Fatalf("figure %d is %q, want %q", i, f.ID, want[i])
		}
	}
}

func TestParallelismAccessors(t *testing.T) {
	bench.SetParallelism(3)
	if got := bench.Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	bench.SetParallelism(0)
	if got := bench.Parallelism(); got != 1 {
		t.Fatalf("Parallelism() = %d after reset, want 1", got)
	}
}
