// Package cli holds the flag plumbing shared by the benchmark
// commands (cmd/ddtbench, cmd/pingpong, cmd/chaosbench, cmd/benchhost,
// cmd/kernels, cmd/scalebench): size-list parsing, CPU/heap profiling
// flags, the -trace Chrome-trace sink, and JSON report writing. Each of
// these used to be copy-pasted per command with the tool name baked
// into the error strings; here the tool name comes from the FlagSet.
package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"gpuddt/internal/trace"
)

// ParseSizes parses a comma-separated list of positive integers
// ("1024,4096"). On a bad element it prints "<tool>: bad size ..." to
// errOut and returns ok=false. Empty elements are skipped; an empty
// string yields a nil slice.
func ParseSizes(s, tool string, errOut io.Writer) ([]int, bool) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			fmt.Fprintf(errOut, "%s: bad size %q\n", tool, f)
			return nil, false
		}
		out = append(out, n)
	}
	return out, true
}

// Profile is the -cpuprofile/-memprofile flag pair.
type Profile struct {
	tool string
	cpu  *string
	mem  *string
}

// Profiles registers the profiling flags on fs. Call Start after
// fs.Parse.
func Profiles(fs *flag.FlagSet) *Profile {
	p := &Profile{tool: fs.Name()}
	p.cpu = fs.String("cpuprofile", "", "write a CPU profile to this file")
	p.mem = fs.String("memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling (if requested) and arranges for the heap
// profile. The returned stop func must be deferred — it stops the CPU
// profile and writes the heap profile. ok=false means a profile file
// could not be created (reported to errOut); the stop func is still
// safe to call.
func (p *Profile) Start(errOut io.Writer) (stop func(), ok bool) {
	var stops []func()
	stop = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			fmt.Fprintf(errOut, "%s: %v\n", p.tool, err)
			return stop, false
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(errOut, "%s: %v\n", p.tool, err)
			return stop, false
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *p.mem != "" {
		path := *p.mem
		stops = append(stops, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(errOut, "%s: %v\n", p.tool, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(errOut, "%s: %v\n", p.tool, err)
			}
			f.Close()
		})
	}
	return stop, true
}

// TraceFlag is the -trace flag: a buffered Chrome trace-event sink
// flushed to the named file after the run.
type TraceFlag struct {
	tool string
	path *string
	buf  bytes.Buffer
}

// Trace registers the -trace flag on fs.
func Trace(fs *flag.FlagSet) *TraceFlag {
	t := &TraceFlag{tool: fs.Name()}
	t.path = fs.String("trace", "", "write a Chrome trace-event JSON of the run (chrome://tracing, Perfetto) to this file")
	return t
}

// Enabled reports whether a trace file was requested.
func (t *TraceFlag) Enabled() bool { return *t.path != "" }

// Writer returns the buffered trace destination, or nil when -trace
// was not given (so it can be assigned to an optional io.Writer field
// directly).
func (t *TraceFlag) Writer() io.Writer {
	if !t.Enabled() {
		return nil
	}
	return &t.buf
}

// WriteRuns renders the runs into the trace buffer (for commands that
// collect recorders themselves rather than streaming during the run).
func (t *TraceFlag) WriteRuns(runs ...trace.Run) error {
	return trace.WriteChrome(&t.buf, runs...)
}

// Flush writes the buffered trace to the -trace file and prints
// "<what> written to <path>". No-op when -trace was not given.
func (t *TraceFlag) Flush(what string, out, errOut io.Writer) int {
	if !t.Enabled() {
		return 0
	}
	if err := os.WriteFile(*t.path, t.buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(errOut, "%s: %v\n", t.tool, err)
		return 1
	}
	fmt.Fprintf(out, "%s written to %s\n", what, *t.path)
	return 0
}

// WriteJSON marshals v (indented, trailing newline) and writes it to
// outPath, or to out when outPath is empty. what names the artifact in
// the confirmation line ("chaos benchmark report").
func WriteJSON(v any, outPath, what, tool string, out, errOut io.Writer) int {
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(errOut, "%s: %v\n", tool, err)
		return 1
	}
	enc = append(enc, '\n')
	if outPath == "" {
		if _, err := out.Write(enc); err != nil {
			fmt.Fprintf(errOut, "%s: %v\n", tool, err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		fmt.Fprintf(errOut, "%s: %v\n", tool, err)
		return 1
	}
	fmt.Fprintf(out, "%s written to %s\n", what, outPath)
	return 0
}
