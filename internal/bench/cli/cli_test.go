package cli

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSizes(t *testing.T) {
	var errOut bytes.Buffer
	sizes, ok := ParseSizes("1024, 4096,65536", "toolx", &errOut)
	if !ok {
		t.Fatalf("parse failed: %s", errOut.String())
	}
	if want := []int{1024, 4096, 65536}; len(sizes) != len(want) {
		t.Fatalf("sizes = %v, want %v", sizes, want)
	} else {
		for i := range want {
			if sizes[i] != want[i] {
				t.Fatalf("sizes = %v, want %v", sizes, want)
			}
		}
	}
	if _, ok := ParseSizes("12,zero", "toolx", &errOut); ok {
		t.Fatal("bad size accepted")
	}
	if !strings.Contains(errOut.String(), "toolx: bad size") {
		t.Errorf("error %q does not name the tool", errOut.String())
	}
	if _, ok := ParseSizes("-4", "toolx", &errOut); ok {
		t.Fatal("negative size accepted")
	}
}

func TestWriteJSONToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out, errOut bytes.Buffer
	if code := WriteJSON(map[string]int{"a": 1}, path, "report", "toolx", &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), path) {
		t.Errorf("confirmation %q does not name the file", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"a\": 1") {
		t.Errorf("file content %q", data)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Error("report does not end in a newline")
	}
}

func TestWriteJSONToStdout(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := WriteJSON([]int{1, 2}, "", "report", "toolx", &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Fatal("nothing written to stdout")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	fs := flag.NewFlagSet("toolx", flag.ContinueOnError)
	tf := Trace(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if tf.Enabled() {
		t.Fatal("trace enabled with no -trace flag")
	}
	if tf.Writer() != nil {
		t.Fatal("disabled trace has a writer")
	}
	var out, errOut bytes.Buffer
	if code := tf.Flush("trace", &out, &errOut); code != 0 {
		t.Fatalf("disabled flush: exit %d", code)
	}
	if out.Len() != 0 {
		t.Errorf("disabled flush printed %q", out.String())
	}
}

func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.json")
	fs := flag.NewFlagSet("toolx", flag.ContinueOnError)
	tf := Trace(fs)
	if err := fs.Parse([]string{"-trace", path}); err != nil {
		t.Fatal(err)
	}
	if !tf.Enabled() {
		t.Fatal("trace not enabled")
	}
	if err := tf.WriteRuns(); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := tf.Flush("trace", &out, &errOut); code != 0 {
		t.Fatalf("flush: exit %d: %s", code, errOut.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
}
