package bench

import (
	"fmt"
	"sync"

	"gpuddt/internal/sim"
	"gpuddt/internal/trace"
)

// traceMu guards traceRuns and rigSeq: with SetParallelism > 1 the
// figure runners build worlds from concurrent goroutines.
var traceMu sync.Mutex

// traceRuns, when non-nil, receives a timeline recorder for every
// simulation the figure runners build (see CollectTraces).
var traceRuns *[]trace.Run

// rigSeq numbers kernel rigs for trace labels.
var rigSeq int

// CollectTraces turns on timeline recording for every subsequently built
// benchmark world or kernel rig, so a whole figure sweep can be exported
// as one Chrome trace (one process per run). It returns the accumulating
// run list and a stop function; call stop before reading the runs.
// Recording is pure bookkeeping and does not change virtual time, so
// figure outputs are identical with collection on or off. Under
// SetParallelism > 1 the runs appear in world-creation (completion)
// order rather than the serial sweep order.
func CollectTraces() (runs *[]trace.Run, stop func()) {
	rs := &[]trace.Run{}
	traceMu.Lock()
	traceRuns = rs
	traceMu.Unlock()
	return rs, func() {
		traceMu.Lock()
		traceRuns = nil
		traceMu.Unlock()
	}
}

// attachTrace attaches a recorder to eng when collection is enabled.
func attachTrace(eng *sim.Engine, label string) *sim.Recorder {
	traceMu.Lock()
	defer traceMu.Unlock()
	return attachTraceLocked(eng, label)
}

func attachTraceLocked(eng *sim.Engine, label string) *sim.Recorder {
	if traceRuns == nil {
		return nil
	}
	rec := sim.NewRecorder(eng)
	*traceRuns = append(*traceRuns, trace.Run{Name: label, Rec: rec})
	return rec
}

// attachRigTrace labels a kernel rig's engine with a sequence number.
func attachRigTrace(eng *sim.Engine) {
	traceMu.Lock()
	defer traceMu.Unlock()
	attachTraceLocked(eng, fmt.Sprintf("rig%d", rigSeq))
	rigSeq++
}
