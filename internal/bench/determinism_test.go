package bench_test

import (
	"testing"

	"gpuddt/internal/bench"
)

// TestDeterministicVirtualTime runs the same figure twice in fresh
// simulations and requires bit-identical results. Virtual time must not
// depend on goroutine scheduling, map order or wall-clock — this test
// (run under -race in CI) is what makes the golden traces trustworthy.
func TestDeterministicVirtualTime(t *testing.T) {
	sizes := []int{512, 1024}
	a := bench.Fig9(sizes)
	b := bench.Fig9(sizes)
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series count differs between runs: %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		sa, sb := a.Series[i], b.Series[i]
		if sa.Name != sb.Name {
			t.Fatalf("series %d named %q then %q", i, sa.Name, sb.Name)
		}
		if len(sa.Points) != len(sb.Points) {
			t.Fatalf("series %q: %d points then %d", sa.Name, len(sa.Points), len(sb.Points))
		}
		for j := range sa.Points {
			if sa.Points[j] != sb.Points[j] {
				t.Errorf("series %q point %d: %+v then %+v — virtual time is nondeterministic",
					sa.Name, j, sa.Points[j], sb.Points[j])
			}
		}
	}
}
