package bench

import (
	"fmt"
	"io"

	"gpuddt/internal/baseline"
	"gpuddt/internal/cluster"
	"gpuddt/internal/core"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
	"gpuddt/internal/trace"
)

// Topology selects the ping-pong configuration of §5.2.
type Topology int

// The three configurations of Fig. 10.
const (
	OneGPU  Topology = iota // both ranks share one GPU (SM, CUDA IPC)
	TwoGPU                  // two GPUs on one node (SM, P2P)
	TwoNode                 // two nodes over InfiniBand
)

func (tp Topology) String() string {
	switch tp {
	case OneGPU:
		return "1GPU"
	case TwoGPU:
		return "2GPU"
	default:
		return "IB"
	}
}

// Spec maps the configuration to its cluster shape.
func (tp Topology) Spec() cluster.Spec {
	switch tp {
	case OneGPU:
		return cluster.OneGPU()
	case TwoGPU:
		return cluster.TwoGPU()
	default:
		return cluster.TwoNode()
	}
}

// PingPongSpec describes one ping-pong measurement.
type PingPongSpec struct {
	Topo     Topology
	Dt0      *datatype.Datatype // rank 0's datatype
	Dt1      *datatype.Datatype // rank 1's (defaults to Dt0)
	Count    int
	OnHost   bool // data in host memory instead of GPU (the CPU config)
	Iters    int
	Warmup   int
	Tuning   *mpi.Tuning // nil = the paper's pipelined protocols at defaults
	Engine   core.Options
	BlockCap int     // §5.3: restrict pack/unpack kernels to k blocks
	BGBlocks int     // §5.4: background app CUDA blocks
	BGDRAM   float64 // §5.4: background app DRAM fraction

	// Trace, if non-nil, receives a link-utilization report after the
	// run (internal/trace).
	Trace io.Writer

	// TraceJSON, if non-nil, receives a Chrome trace-event JSON of the
	// run (loadable in chrome://tracing or Perfetto).
	TraceJSON io.Writer

	// TraceTimeline, if non-nil, receives the plain-text timeline.
	TraceTimeline io.Writer

	// TracePhases, if non-nil, receives the per-message phase
	// attribution (time in pack vs wire vs unpack).
	TracePhases io.Writer
}

// traced reports whether the spec asks for a timeline of its own.
func (sp *PingPongSpec) traced() bool {
	return sp.TraceJSON != nil || sp.TraceTimeline != nil || sp.TracePhases != nil
}

// PingPong runs the benchmark and returns the average round-trip time.
func PingPong(sp PingPongSpec) sim.Time {
	if sp.Dt1 == nil {
		sp.Dt1 = sp.Dt0
	}
	if sp.Iters == 0 {
		sp.Iters = 3
	}
	if sp.Warmup == 0 {
		sp.Warmup = 1
	}
	cfg := sp.Topo.Spec().Tuned(sp.Tuning).Config()
	cfg.GPU = bigGPU()
	cfg.PCIe = bigPCIe()
	cfg.Engine = sp.Engine
	w := mpi.NewWorld(cfg)
	defer w.Close()
	label := fmt.Sprintf("pingpong %s %s", sp.Topo, sp.Dt0.Name())
	rec := attachTrace(w.Engine(), label)
	if rec == nil && sp.traced() {
		rec = sim.NewRecorder(w.Engine())
	}
	if sp.BlockCap > 0 || sp.BGBlocks > 0 || sp.BGDRAM > 0 {
		nodes := 1
		if sp.Topo == TwoNode {
			nodes = 2
		}
		for ni := 0; ni < nodes; ni++ {
			node := w.Node(ni)
			for g := 0; g < node.NumGPUs(); g++ {
				if sp.BlockCap > 0 {
					node.GPU(g).SetBlockCap(sp.BlockCap)
				}
				if sp.BGBlocks > 0 || sp.BGDRAM > 0 {
					node.GPU(g).SetBackgroundLoad(sp.BGBlocks, sp.BGDRAM)
				}
			}
		}
	}

	var rt sim.Time
	w.Run(func(m *mpi.Rank) {
		dt := sp.Dt0
		if m.Rank() == 1 {
			dt = sp.Dt1
		}
		span := layoutSpan(dt, sp.Count)
		var buf = m.Malloc(span)
		if sp.OnHost {
			buf = m.MallocHost(span)
		}
		m.Barrier()
		var t0 sim.Time
		for i := 0; i < sp.Warmup+sp.Iters; i++ {
			if i == sp.Warmup {
				t0 = m.Now()
			}
			if m.Rank() == 0 {
				m.Send(buf, dt, sp.Count, 1, i)
				m.Recv(buf, dt, sp.Count, 1, i+1000)
			} else {
				m.Recv(buf, dt, sp.Count, 0, i)
				m.Send(buf, dt, sp.Count, 0, i+1000)
			}
		}
		if m.Rank() == 0 {
			rt = (m.Now() - t0) / sim.Time(sp.Iters)
		}
	})
	if sp.Trace != nil {
		trace.Report(sp.Trace, w.Engine())
	}
	if rec != nil && sp.traced() {
		if err := rec.Validate(); err != nil {
			panic(err)
		}
		if sp.TraceJSON != nil {
			if err := trace.WriteChrome(sp.TraceJSON, trace.Run{Name: label, Rec: rec}); err != nil {
				panic(err)
			}
		}
		if sp.TraceTimeline != nil {
			trace.WriteTimeline(sp.TraceTimeline, rec)
		}
		if sp.TracePhases != nil {
			trace.WritePhases(sp.TracePhases, rec)
		}
	}
	return rt
}

// Fig9 reproduces "PCI-E bandwidth of ping-pong benchmark": achieved
// per-direction PCIe bandwidth of V, T and C datatypes between two GPUs
// on one node.
func Fig9(sizes []int) *Figure {
	f := &Figure{
		ID:     "fig9",
		Title:  "PCI-E bandwidth of ping-pong (2 GPUs, shared memory)",
		XLabel: "MatrixSize",
		YLabel: "GB/s",
		Note:   "Paper: ~90% (V) and ~78% (T) of the contiguous PCIe bandwidth.",
	}
	sV := f.NewSeries("V")
	sT := f.NewSeries("T")
	sC := f.NewSeries("C")
	mkDt := []func(n int) *datatype.Datatype{vMat, shapes.LowerTriangular, shapes.FullMatrix}
	vals := pmap(len(sizes)*len(mkDt), func(k int) float64 {
		dt := mkDt[k%len(mkDt)](sizes[k/len(mkDt)])
		rt := PingPong(PingPongSpec{Topo: TwoGPU, Dt0: dt, Count: 1})
		return sim.GBps(dt.Size(), rt/2)
	})
	for i, n := range sizes {
		x := float64(n)
		sV.Add(x, vals[i*3])
		sT.Add(x, vals[i*3+1])
		sC.Add(x, vals[i*3+2])
	}
	return f
}

// Fig10 reproduces the three ping-pong sub-figures: time vs matrix size
// for V and T, ours vs the MVAPICH-style baseline.
func Fig10(topo Topology, sizes []int) *Figure {
	f := &Figure{
		ID:     "fig10" + map[Topology]string{OneGPU: "a", TwoGPU: "b", TwoNode: "c"}[topo],
		Title:  fmt.Sprintf("Ping-pong with matrices, %s", topo),
		XLabel: "MatrixSize",
		YLabel: "ms",
		Note:   "Paper: ours wins everywhere; MVAPICH's indexed path leaves the chart.",
	}
	cases := []struct {
		label string
		dt    func(n int) *datatype.Datatype
	}{
		{"T", shapes.LowerTriangular},
		{"V", vMat},
	}
	pts := pmap(len(cases)*len(sizes), func(k int) [2]float64 {
		c, n := cases[k/len(sizes)], sizes[k%len(sizes)]
		dt := c.dt(n)
		return [2]float64{
			PingPong(PingPongSpec{Topo: topo, Dt0: dt, Count: 1}).Millis(),
			PingPong(PingPongSpec{
				Topo: topo, Dt0: dt, Count: 1, Tuning: &mpi.Tuning{Strategy: &baseline.MVAPICHStrategy{}},
			}).Millis(),
		}
	})
	for ci, c := range cases {
		ours := f.NewSeries(fmt.Sprintf("%s-%s", c.label, topo))
		mv := f.NewSeries(fmt.Sprintf("%s-%s-MVAPICH", c.label, topo))
		for si, n := range sizes {
			pt := pts[ci*len(sizes)+si]
			ours.Add(float64(n), pt[0])
			mv.Add(float64(n), pt[1])
		}
	}
	return f
}

// Fig11 reproduces the vector↔contiguous ping-pong (FFT-style reshape):
// rank 0 holds a sub-matrix view, rank 1 receives contiguous.
func Fig11(sizes []int) *Figure {
	f := &Figure{
		ID:     "fig11",
		Title:  "Vector-contiguous ping-pong (FFT reshape)",
		XLabel: "MatrixSize",
		YLabel: "ms",
		Note:   "Paper: the handshake lets the sender pack directly into the receiver buffer (RDMA + zero copy).",
	}
	topos := []Topology{TwoGPU, TwoNode}
	pts := pmap(len(topos)*len(sizes), func(k int) [2]float64 {
		topo, n := topos[k/len(sizes)], sizes[k%len(sizes)]
		vec := vMat(n)
		contig := shapes.FullMatrix(n)
		return [2]float64{
			PingPong(PingPongSpec{Topo: topo, Dt0: vec, Dt1: contig, Count: 1}).Millis(),
			PingPong(PingPongSpec{
				Topo: topo, Dt0: vec, Dt1: contig, Count: 1, Tuning: &mpi.Tuning{Strategy: &baseline.MVAPICHStrategy{}},
			}).Millis(),
		}
	})
	for ti, topo := range topos {
		ours := f.NewSeries(fmt.Sprintf("VC-%s", topo))
		mv := f.NewSeries(fmt.Sprintf("VC-%s-MVAPICH", topo))
		for si, n := range sizes {
			pt := pts[ti*len(sizes)+si]
			ours.Add(float64(n), pt[0])
			mv.Add(float64(n), pt[1])
		}
	}
	return f
}

// Fig12 reproduces the matrix-transpose ping-pong stress test: the
// sender transmits the transposed view (N vectors of blocklength 1); the
// receiver stores contiguous.
func Fig12(sizes []int) *Figure {
	f := &Figure{
		ID:     "fig12",
		Title:  "Matrix transpose ping-pong",
		XLabel: "MatrixSize",
		YLabel: "ms",
		Note:   "Stress test: 8-byte blocks defeat coalescing for us and explode call counts for MVAPICH.",
	}
	topos := []Topology{TwoGPU, TwoNode}
	pts := pmap(len(topos)*len(sizes), func(k int) [2]float64 {
		topo, n := topos[k/len(sizes)], sizes[k%len(sizes)]
		tr := shapes.Transpose(n)
		contig := shapes.FullMatrix(n)
		return [2]float64{
			PingPong(PingPongSpec{Topo: topo, Dt0: tr, Dt1: contig, Count: 1}).Millis(),
			PingPong(PingPongSpec{
				Topo: topo, Dt0: tr, Dt1: contig, Count: 1, Tuning: &mpi.Tuning{Strategy: &baseline.MVAPICHStrategy{}},
			}).Millis(),
		}
	})
	for ti, topo := range topos {
		ours := f.NewSeries(fmt.Sprintf("TR-%s", topo))
		mv := f.NewSeries(fmt.Sprintf("TR-%s-MVAPICH", topo))
		for si, n := range sizes {
			pt := pts[ti*len(sizes)+si]
			ours.Add(float64(n), pt[0])
			mv.Add(float64(n), pt[1])
		}
	}
	return f
}

// Sec53 reproduces §5.3: how many CUDA blocks the pack/unpack kernels
// need before communication stops improving (the PCIe bottleneck takes
// over).
func Sec53(n int, blockCaps []int) *Figure {
	f := &Figure{
		ID:     "sec5.3",
		Title:  fmt.Sprintf("Minimal GPU resources: ping-pong (2 GPUs) N=%d vs kernel grid size", n),
		XLabel: "CUDABlocks",
		YLabel: "ms",
		Note:   "Paper: a handful of blocks saturates PCIe; the rest of the GPU stays available.",
	}
	sV := f.NewSeries("V")
	sT := f.NewSeries("T")
	pts := pmap(len(blockCaps), func(i int) [2]float64 {
		k := blockCaps[i]
		return [2]float64{
			PingPong(PingPongSpec{
				Topo: TwoGPU, Dt0: vMat(n), Count: 1, BlockCap: k,
			}).Millis(),
			PingPong(PingPongSpec{
				Topo: TwoGPU, Dt0: shapes.LowerTriangular(n), Count: 1, BlockCap: k,
			}).Millis(),
		}
	})
	for i, k := range blockCaps {
		sV.Add(float64(k), pts[i][0])
		sT.Add(float64(k), pts[i][1])
	}
	return f
}

// Sec54 reproduces §5.4: ping-pong degradation when a co-resident
// GPU-intensive application consumes a growing share of the GPU.
func Sec54(n int, loads []float64) *Figure {
	f := &Figure{
		ID:     "sec5.4",
		Title:  fmt.Sprintf("Shared-GPU interference: ping-pong N=%d vs background load", n),
		XLabel: "BackgroundLoad",
		YLabel: "ms",
		Note:   "PCIe-bound inter-GPU transfers barely degrade (packing needs few resources); DRAM-bound intra-GPU transfers feel the background app's bandwidth share.",
	}
	sV := f.NewSeries("V-2GPU")
	sT := f.NewSeries("T-2GPU")
	sV1 := f.NewSeries("V-1GPU")
	sT1 := f.NewSeries("T-1GPU")
	total := bigGPU().DefaultBlocks
	pts := pmap(len(loads), func(i int) [4]float64 {
		load := loads[i]
		bg := int(float64(total) * load)
		dram := load * 0.9
		// Intra-GPU transfers are DRAM-bound, so the background app's
		// bandwidth share hits them much harder than the PCIe-bound
		// 2-GPU transfers.
		return [4]float64{
			PingPong(PingPongSpec{
				Topo: TwoGPU, Dt0: vMat(n), Count: 1, BGBlocks: bg, BGDRAM: dram,
			}).Millis(),
			PingPong(PingPongSpec{
				Topo: TwoGPU, Dt0: shapes.LowerTriangular(n), Count: 1, BGBlocks: bg, BGDRAM: dram,
			}).Millis(),
			PingPong(PingPongSpec{
				Topo: OneGPU, Dt0: vMat(n), Count: 1, BGBlocks: bg, BGDRAM: dram,
			}).Millis(),
			PingPong(PingPongSpec{
				Topo: OneGPU, Dt0: shapes.LowerTriangular(n), Count: 1, BGBlocks: bg, BGDRAM: dram,
			}).Millis(),
		}
	})
	for i, load := range loads {
		sV.Add(load, pts[i][0])
		sT.Add(load, pts[i][1])
		sV1.Add(load, pts[i][2])
		sT1.Add(load, pts[i][3])
	}
	return f
}

// AblationPipeline sweeps the BTL pipeline fragment size (DESIGN.md A2).
func AblationPipeline(n int, fragSizes []int64) *Figure {
	f := &Figure{
		ID:     "ablation-fragsize",
		Title:  fmt.Sprintf("Pipeline fragment size, 2-GPU ping-pong N=%d", n),
		XLabel: "FragBytes",
		YLabel: "ms",
	}
	sV := f.NewSeries("V")
	vals := pmap(len(fragSizes), func(i int) float64 {
		return PingPong(PingPongSpec{
			Topo: TwoGPU, Dt0: vMat(n), Count: 1,
			Tuning: &mpi.Tuning{FragBytes: fragSizes[i]},
		}).Millis()
	})
	for i, fb := range fragSizes {
		sV.Add(float64(fb), vals[i])
	}
	return f
}

// AblationRemoteUnpack compares staged vs direct remote unpacking
// (DESIGN.md A3, §5.2.1's 5-10% claim).
func AblationRemoteUnpack(sizes []int) *Figure {
	f := &Figure{
		ID:     "ablation-remoteunpack",
		Title:  "Receiver staging vs direct remote unpack (2-GPU ping-pong, T)",
		XLabel: "MatrixSize",
		YLabel: "ms",
	}
	staged := f.NewSeries("staged")
	direct := f.NewSeries("direct")
	pts := pmap(len(sizes), func(i int) [2]float64 {
		dt := shapes.LowerTriangular(sizes[i])
		return [2]float64{
			PingPong(PingPongSpec{Topo: TwoGPU, Dt0: dt, Count: 1}).Millis(),
			PingPong(PingPongSpec{
				Topo: TwoGPU, Dt0: dt, Count: 1,
				Tuning: &mpi.Tuning{DirectRemoteUnpack: true},
			}).Millis(),
		}
	})
	for i, n := range sizes {
		staged.Add(float64(n), pts[i][0])
		direct.Add(float64(n), pts[i][1])
	}
	return f
}

// Fig1Solutions benchmarks the four approaches of Fig. 1 on a triangular
// matrix pack to host (solutions a/b/c vs the GPU datatype engine).
func Fig1Solutions(sizes []int) *Figure {
	f := &Figure{
		ID:     "fig1",
		Title:  "Fig. 1 solutions: non-contiguous GPU data to contiguous host buffer (T)",
		XLabel: "MatrixSize",
		YLabel: "ms",
		Note:   "d (GPU pack + zero copy) wins; b collapses on per-block memcpy overhead.",
	}
	sA := f.NewSeries("a-copy-with-gaps")
	sB := f.NewSeries("b-per-block-d2h")
	sC := f.NewSeries("c-per-block-d2d")
	sD := f.NewSeries("d-gpu-pack")
	pts := pmap(len(sizes), func(i int) [4]float64 {
		dt := shapes.LowerTriangular(sizes[i])
		r := newKernelRig(core.Options{})
		span := layoutSpan(dt, 1)
		data := r.ctx.Malloc(0, span)
		host := r.ctx.MallocHost(dt.Size())
		devDst := r.ctx.Malloc(0, dt.Size())
		scratch := r.ctx.MallocHost(span)
		var ta, tb, tc, td sim.Time
		r.eng.Spawn("fig1", func(p *sim.Proc) {
			t0 := p.Now()
			baseline.SolutionA(p, r.ctx, data, dt, 1, host, scratch)
			ta = p.Now() - t0
			t0 = p.Now()
			baseline.SolutionB(p, r.ctx, data, dt, 1, host)
			tb = p.Now() - t0
			t0 = p.Now()
			baseline.SolutionC(p, r.ctx, data, dt, 1, devDst)
			tc = p.Now() - t0
			t0 = p.Now()
			r.e.Pack(p, data, dt, 1, host) // zero-copy pack to host
			td = p.Now() - t0
		})
		r.eng.Run()
		r.close()
		return [4]float64{ta.Millis(), tb.Millis(), tc.Millis(), td.Millis()}
	})
	for i, n := range sizes {
		x := float64(n)
		sA.Add(x, pts[i][0])
		sB.Add(x, pts[i][1])
		sC.Add(x, pts[i][2])
		sD.Add(x, pts[i][3])
	}
	return f
}
