// Package bench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: kernel-level studies
// (Figs. 6-8), MPI ping-pong studies (Figs. 9-12), the resource studies
// of §5.3 and §5.4, and the design ablations called out in DESIGN.md.
//
// Each experiment returns a Figure — named series over a shared x axis —
// that the cmd/ddtbench tool prints; bench_test.go wraps the same
// runners as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"
)

// Point is one measurement.
type Point struct {
	X, Y float64
}

// Series is one named curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a measurement.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Figure is the reproduction of one paper figure.
type Figure struct {
	ID     string // e.g. "fig6"
	Title  string
	XLabel string
	YLabel string
	Note   string // paper-vs-measured context for EXPERIMENTS.md
	Series []*Series
}

// NewSeries registers and returns a new series.
func (f *Figure) NewSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Print writes the figure as an aligned table: one row per x value, one
// column per series (missing points print as "-").
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title)
	if f.Note != "" {
		fmt.Fprintf(w, "# %s\n", f.Note)
	}
	// Collect the union of x values.
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	fmt.Fprintf(w, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %16s", s.Name)
	}
	fmt.Fprintf(w, "   [%s]\n", f.YLabel)
	for _, x := range xs {
		fmt.Fprintf(w, "%-14.6g", x)
		for _, s := range f.Series {
			y, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(w, " %16.4f", y)
			} else {
				fmt.Fprintf(w, " %16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// PrintCSV writes the figure as CSV: header row of series names, one
// row per x value (empty cells for missing points).
func (f *Figure) PrintCSV(w io.Writer) {
	xsSet := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	fmt.Fprintf(w, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, ",%s", s.Name)
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%g", x)
		for _, s := range f.Series {
			if y, ok := lookup(s, x); ok {
				fmt.Fprintf(w, ",%g", y)
			} else {
				fmt.Fprint(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
}

func lookup(s *Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}
