package bench

import "testing"

func TestAppsOursWins(t *testing.T) {
	f := Apps()
	ours, mv := f.Series[0], f.Series[1]
	for i := range ours.Points {
		if !(ours.Points[i].Y < mv.Points[i].Y) {
			t.Fatalf("app %v: ours %.3f not faster than MVAPICH %.3f",
				ours.Points[i].X, ours.Points[i].Y, mv.Points[i].Y)
		}
	}
	t.Logf("halo: %.3f vs %.3f; particles: %.3f vs %.3f; scalapack: %.3f vs %.3f ms",
		ours.Points[0].Y, mv.Points[0].Y, ours.Points[1].Y, mv.Points[1].Y, ours.Points[2].Y, mv.Points[2].Y)
}

func TestWhatIfGPUShape(t *testing.T) {
	f := WhatIfGPU(2048)
	y := map[string][2]float64{}
	for _, s := range f.Series {
		y[s.Name] = [2]float64{s.Points[0].Y, s.Points[1].Y}
	}
	// PCIe-bound inter-GPU transfers: within a few percent across gens.
	for _, name := range []string{"V-2GPU", "T-2GPU"} {
		k40, p100 := y[name][0], y[name][1]
		if p100 > k40 || p100 < 0.9*k40 {
			t.Fatalf("%s: K40 %.3f vs P100 %.3f, want ~equal (wire bound)", name, k40, p100)
		}
	}
	// DRAM-bound intra-GPU transfers: much faster on the P100.
	for _, name := range []string{"V-1GPU", "T-1GPU"} {
		k40, p100 := y[name][0], y[name][1]
		if p100 > 0.6*k40 {
			t.Fatalf("%s: K40 %.3f vs P100 %.3f, want big speedup", name, k40, p100)
		}
	}
}
