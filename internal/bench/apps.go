package bench

import (
	"fmt"

	"gpuddt/internal/baseline"
	"gpuddt/internal/cluster"
	"gpuddt/internal/datatype"
	"gpuddt/internal/gpu"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// Application-level benchmarks modeled on the workloads the paper's
// introduction motivates (§1, §3): the SHOC 2D stencil halo exchange,
// LAMMPS-style indexed particle migration, and a ScaLAPACK-style
// collection of a block-cyclic distributed matrix. Each is measured
// with the paper's engine and with the MVAPICH-style baseline.

// AppHalo runs a 2-rank, 2-GPU stencil halo exchange: per iteration each
// rank exchanges one contiguous row boundary and one non-contiguous
// column boundary (vector type), like SHOC's 2D stencil.
func AppHalo(n, iters int, strategy mpi.Strategy) sim.Time {
	// Force the DDT protocols even for one column.
	tun := &mpi.Tuning{Eager: mpi.Eager(1), Strategy: strategy}
	cfg := cluster.TwoGPU().Tuned(tun).Config()
	cfg.GPU = bigGPU()
	cfg.PCIe = bigPCIe()
	w := mpi.NewWorld(cfg)
	attachTrace(w.Engine(), "app:halo")
	defer w.Close()
	pitch := int64(n+2) * 8
	col := shapes.HaloColumn(n)
	row := datatype.Contiguous(n, datatype.Float64)
	var per sim.Time
	w.Run(func(m *mpi.Rank) {
		grid := m.Malloc(int64(n+2) * pitch)
		peer := 1 - m.Rank()
		m.Barrier()
		t0 := m.Now()
		for it := 0; it < iters; it++ {
			// Column (non-contiguous) exchange.
			m.SendRecv(
				grid.Slice(pitch+8, int64(n)*pitch), col, 1, peer, 2*it,
				grid.Slice(pitch, int64(n)*pitch), col, 1, peer, 2*it,
			)
			// Row (contiguous) exchange.
			m.SendRecv(
				grid.Slice(pitch+8, int64(n)*8), row, 1, peer, 2*it+1,
				grid.Slice(8, int64(n)*8), row, 1, peer, 2*it+1,
			)
		}
		if m.Rank() == 0 {
			per = (m.Now() - t0) / sim.Time(iters)
		}
	})
	return per
}

// AppParticles runs a LAMMPS-style migration: an indexed datatype
// gathers every 19th particle record from GPU memory and ships it to a
// neighbour over InfiniBand.
func AppParticles(nParticles, recordElems, iters int, strategy mpi.Strategy) sim.Time {
	var idx []int
	for i := 0; i < nParticles; i += 19 {
		idx = append(idx, i)
	}
	ddt := shapes.ParticleIndices(idx, recordElems)
	recv := datatype.Contiguous(len(idx)*recordElems, datatype.Float64)
	cfg := cluster.TwoNode().Config()
	cfg.GPU = bigGPU()
	cfg.PCIe = bigPCIe()
	cfg.Strategy = strategy
	w := mpi.NewWorld(cfg)
	attachTrace(w.Engine(), "app:particles")
	defer w.Close()
	var per sim.Time
	w.Run(func(m *mpi.Rank) {
		buf := m.Malloc(int64(nParticles*recordElems) * 8)
		m.Barrier()
		t0 := m.Now()
		for it := 0; it < iters; it++ {
			if m.Rank() == 0 {
				m.Send(buf, ddt, 1, 1, it)
			} else {
				m.Recv(buf.Slice(0, recv.Size()), recv, 1, 0, it)
			}
			m.Barrier()
		}
		if m.Rank() == 0 {
			per = (m.Now() - t0) / sim.Time(iters)
		}
	})
	return per
}

// AppScaLAPACK collects a 2D block-cyclic distributed matrix (Darray,
// the ScaLAPACK layout) from a 2x2 process grid onto rank 0, each piece
// arriving as packed contiguous data.
func AppScaLAPACK(n, nb int, strategy mpi.Strategy) sim.Time {
	cfg := cluster.Spec{Nodes: 2, GPUsPerNode: 2, RanksPerNode: 2}.Config()
	cfg.GPU = bigGPU()
	cfg.PCIe = bigPCIe()
	cfg.Strategy = strategy
	w := mpi.NewWorld(cfg)
	attachTrace(w.Engine(), "app:scalapack")
	defer w.Close()
	gs := []int{n, n}
	dist := []datatype.Distrib{datatype.DistribCyclic, datatype.DistribCyclic}
	dargs := []int{nb, nb}
	ps := []int{2, 2}
	var dur sim.Time
	w.Run(func(m *mpi.Rank) {
		piece := datatype.Darray(4, m.Rank(), gs, dist, dargs, ps, datatype.OrderFortran, datatype.Float64)
		local := m.Malloc(layoutSpan(piece, 1))
		m.Barrier()
		t0 := m.Now()
		if m.Rank() == 0 {
			sink := m.Malloc(shapes.MatrixBytes(n))
			reqs := make([]*mpi.Request, 0, 3)
			var off int64
			for r := 1; r < 4; r++ {
				rp := datatype.Darray(4, r, gs, dist, dargs, ps, datatype.OrderFortran, datatype.Float64)
				contig := datatype.Contiguous(int(rp.Size()/8), datatype.Float64)
				reqs = append(reqs, m.Irecv(sink.Slice(off, rp.Size()), contig, 1, r, r))
				off += rp.Size()
			}
			for _, rq := range reqs {
				rq.Wait(m.Proc())
			}
			dur = m.Now() - t0
		} else {
			m.Send(local, piece, 1, 0, m.Rank())
		}
	})
	return dur
}

// WhatIfGPU is a forward-looking study beyond the paper: rerun the
// ping-pong on a Pascal-class GPU (≈4x the memory bandwidth, same PCIe).
// Inter-GPU transfers barely change — the protocols are wire-bound, so
// the engine's efficiency story survives a GPU generation — while
// intra-GPU transfers scale with DRAM.
func WhatIfGPU(n int) *Figure {
	f := &Figure{
		ID:     "whatif-gpu",
		Title:  fmt.Sprintf("GPU generation study: ping-pong N=%d, K40 vs P100", n),
		XLabel: "Gen", // 1 = K40, 2 = P100
		YLabel: "ms",
		Note:   "Beyond the paper: a 4x faster GPU leaves PCIe-bound transfers unchanged; only intra-GPU (1GPU) transfers speed up.",
	}
	v2 := f.NewSeries("V-2GPU")
	t2 := f.NewSeries("T-2GPU")
	v1 := f.NewSeries("V-1GPU")
	t1 := f.NewSeries("T-1GPU")
	gens := []gpu.Params{bigGPU(), bigPascal()}
	pts := pmap(len(gens), func(gen int) [4]float64 {
		params := gens[gen]
		run := func(topo Topology, dt *datatype.Datatype) float64 {
			cfg := topo.Spec().Config()
			cfg.GPU = params
			cfg.PCIe = bigPCIe()
			w := mpi.NewWorld(cfg)
			attachTrace(w.Engine(), fmt.Sprintf("whatif %s %s", topo, dt.Name()))
			defer w.Close()
			return pingPongOn(w, dt).Millis()
		}
		return [4]float64{
			run(TwoGPU, vMat(n)),
			run(TwoGPU, shapes.LowerTriangular(n)),
			run(OneGPU, vMat(n)),
			run(OneGPU, shapes.LowerTriangular(n)),
		}
	})
	for gen := range gens {
		x := float64(gen + 1)
		v2.Add(x, pts[gen][0])
		t2.Add(x, pts[gen][1])
		v1.Add(x, pts[gen][2])
		t1.Add(x, pts[gen][3])
	}
	return f
}

func bigPascal() gpu.Params {
	p := gpu.PascalP100()
	p.MemBytes = 6 << 30
	return p
}

// pingPongOn runs the standard warm ping-pong loop on a prebuilt world.
func pingPongOn(w *mpi.World, dt *datatype.Datatype) sim.Time {
	const iters = 3
	var rt sim.Time
	w.Run(func(m *mpi.Rank) {
		buf := m.Malloc(layoutSpan(dt, 1))
		m.Barrier()
		var t0 sim.Time
		for i := 0; i < iters+1; i++ {
			if i == 1 {
				t0 = m.Now()
			}
			if m.Rank() == 0 {
				m.Send(buf, dt, 1, 1, i)
				m.Recv(buf, dt, 1, 1, i+1000)
			} else {
				m.Recv(buf, dt, 1, 0, i)
				m.Send(buf, dt, 1, 0, i+1000)
			}
		}
		if m.Rank() == 0 {
			rt = (m.Now() - t0) / iters
		}
	})
	return rt
}

// Apps produces the application benchmark table: ours vs MVAPICH.
func Apps() *Figure {
	f := &Figure{
		ID:     "apps",
		Title:  "Application benchmarks (per iteration / operation)",
		XLabel: "App#",
		YLabel: "ms",
		Note:   "1 = SHOC halo exchange (N=4096, 2 GPUs); 2 = LAMMPS particle migration (1M particles, IB); 3 = ScaLAPACK block-cyclic collect (N=4096, 4 ranks).",
	}
	ours := f.NewSeries("ours")
	mv := f.NewSeries("MVAPICH")
	apps := []func(s mpi.Strategy) sim.Time{
		func(s mpi.Strategy) sim.Time { return AppHalo(4096, 3, s) },
		func(s mpi.Strategy) sim.Time { return AppParticles(1_000_000, 8, 3, s) },
		func(s mpi.Strategy) sim.Time { return AppScaLAPACK(4096, 64, s) },
	}
	vals := pmap(len(apps)*2, func(k int) float64 {
		var s mpi.Strategy
		if k%2 == 1 {
			s = &baseline.MVAPICHStrategy{}
		}
		return apps[k/2](s).Millis()
	})
	for i := range apps {
		x := float64(i + 1)
		ours.Add(x, vals[i*2])
		mv.Add(x, vals[i*2+1])
	}
	return f
}
