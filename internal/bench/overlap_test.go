package bench_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gpuddt/internal/bench"
	"gpuddt/internal/trace"
)

// TestOverlapFractionPinned pins the acceptance criterion of the
// nonblocking-collective work: on the two-node world, at least 30% of
// the Iallgatherv's wire time must be hidden behind application compute
// kernels, as measured by trace-phase attribution (not by comparing
// makespans).
func TestOverlapFractionPinned(t *testing.T) {
	r := bench.OverlapColl(256, 4, 64<<20)
	if frac := r.Attr.HiddenFrac(); frac < 0.30 {
		t.Fatalf("hidden fraction = %.3f (wire %v, compute %v, hidden %v), want >= 0.30",
			frac, r.Attr.Wire, r.Attr.Compute, r.Attr.Hidden)
	}
	if r.Overlapped >= r.Blocking {
		t.Fatalf("overlapped makespan %v not faster than blocking %v", r.Overlapped, r.Blocking)
	}
	if r.Attr.Wire == 0 || r.Attr.Compute == 0 {
		t.Fatalf("attribution degenerate: %+v", r.Attr)
	}
}

// TestOverlapGoldenTrace records the kernel-overlapped Iallgatherv run
// as a Chrome trace and compares it byte-for-byte against the committed
// golden. The simulator and the trace writer are both deterministic, so
// any drift is a real behavioural change; re-record intended changes
// with -update.
func TestOverlapGoldenTrace(t *testing.T) {
	runs, stop := bench.CollectTraces()
	bench.OverlapColl(256, 4, 64<<20)
	stop()
	if len(*runs) != 2 {
		t.Fatalf("collected %d runs, want 2 (blocking + overlapped)", len(*runs))
	}
	for _, run := range *runs {
		if err := run.Rec.Validate(); err != nil {
			t.Fatalf("run %q: %v", run.Name, err)
		}
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, *runs...); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "overlap_trace.json")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("overlap Chrome trace drifted from golden %s (%d vs %d bytes); re-record with -update if intended",
			path, buf.Len(), len(want))
	}
}
