package cluster

import (
	"testing"

	"gpuddt/internal/mpi"
)

func TestPaperTopologies(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want []mpi.Placement
	}{
		{"1gpu", OneGPU(), []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 0}}},
		{"2gpu", TwoGPU(), []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}}},
		{"ib", TwoNode(), []mpi.Placement{{Node: 0, GPU: 0}, {Node: 1, GPU: 0}}},
	}
	for _, c := range cases {
		got := c.spec.Placements()
		if len(got) != len(c.want) {
			t.Fatalf("%s: %d placements, want %d", c.name, len(got), len(c.want))
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: placement %d = %+v, want %+v", c.name, i, got[i], c.want[i])
			}
		}
		if by := ByName(c.name); by != c.spec {
			t.Fatalf("ByName(%q) = %+v, want %+v", c.name, by, c.spec)
		}
	}
}

func TestScaleShape(t *testing.T) {
	s := Scale(16, 2, 4, 2)
	if s.Size() != 64 {
		t.Fatalf("Size = %d, want 64", s.Size())
	}
	pls := s.Placements()
	for r, pl := range pls {
		if pl.Node != r/4 {
			t.Fatalf("rank %d on node %d, want blocked layout", r, pl.Node)
		}
		if pl.GPU != (r%4)%2 {
			t.Fatalf("rank %d on GPU %d, want round-robin over 2 GPUs", r, pl.GPU)
		}
	}
	if !s.IB.Topo.Hierarchical() {
		t.Fatal("Scale spec is not hierarchical")
	}
	if got := s.IB.Topo.Oversubscription(); got != 2 {
		t.Fatalf("oversubscription = %v, want 2", got)
	}
}

// TestConfigBuildsTopologyAwareWorld: a Scale spec's config must yield
// a world the hierarchical collectives recognize, and the paper specs
// must not.
func TestConfigBuildsTopologyAwareWorld(t *testing.T) {
	if w := mpi.NewWorld(Scale(4, 1, 2, 1).Config()); !w.TopologyAware() {
		t.Fatal("Scale(4,1,2,1) world is not topology-aware")
	}
	for _, name := range []string{"1gpu", "2gpu", "ib"} {
		if w := mpi.NewWorld(ByName(name).Config()); w.TopologyAware() {
			t.Fatalf("%s world claims topology awareness", name)
		}
	}
}

func TestSpecString(t *testing.T) {
	if got := Scale(16, 1, 4, 2).String(); got != "16x4 (fat-tree 8:4)" {
		t.Fatalf("String = %q", got)
	}
	if got := TwoNode().String(); got != "2x1" {
		t.Fatalf("String = %q", got)
	}
}

// TestScaleModelled: the modelled-mode spec carries the engine shard
// count, names itself distinctly, and leaves the real-payload naming
// untouched.
func TestScaleModelled(t *testing.T) {
	s := ScaleModelled(4096, 1, 4, 2, 8)
	if !s.Modelled || s.Shards != 8 {
		t.Fatalf("ScaleModelled fields: %+v", s)
	}
	if s.Size() != 16384 {
		t.Fatalf("Size = %d, want 16384", s.Size())
	}
	if got := s.String(); got != "4096x4 (fat-tree 8:4) [modelled x8]" {
		t.Fatalf("String = %q", got)
	}
	if got := (Spec{Nodes: 2, GPUsPerNode: 1, Modelled: true}).String(); got != "2x1 [modelled x1]" {
		t.Fatalf("String = %q", got)
	}
}
