package cluster

import (
	"errors"
	"testing"

	"gpuddt/internal/ib"
)

// TestValidateCorners is the table test over inconsistent shapes: each
// invalid corner must come back as the right typed error, never a
// panic.
func TestValidateCorners(t *testing.T) {
	fat := func(leaf, spines int) ib.Params {
		p := ib.DefaultParams()
		p.Topo = ib.Topology{LeafRadix: leaf, Spines: spines}
		return p
	}
	cases := []struct {
		name string
		spec Spec
		want error
	}{
		{"zero value ok", Spec{}, nil},
		{"scale ok", Scale(16, 4, 4, 2), nil},
		{"negative nodes", Spec{Nodes: -1}, ErrShape},
		{"negative gpus", Spec{GPUsPerNode: -2}, ErrShape},
		{"negative ranks", Spec{RanksPerNode: -4}, ErrShape},
		{"negative shards", Spec{Modelled: true, Shards: -1}, ErrShape},
		{"shards without modelled", Spec{Shards: 4}, ErrShape},
		{"modelled shards ok", Spec{Modelled: true, Shards: 4}, nil},
		{"negative leaf radix", Spec{IB: fat(-8, 0)}, ErrShape},
		{"negative spines", Spec{IB: fat(8, -1)}, ErrShape},
		{"spines without leaves", Spec{IB: fat(0, 4)}, ErrShape},
		{"spines beyond radix", Spec{IB: fat(4, 8)}, ErrShape},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.want == nil {
			if err != nil {
				t.Errorf("%s: Validate = %v, want nil", c.name, err)
			}
			continue
		}
		if !errors.Is(err, c.want) {
			t.Errorf("%s: Validate = %v, want %v", c.name, err, c.want)
		}
	}
}

// TestCoScheduleCorners covers the invalid job/policy combinations.
func TestCoScheduleCorners(t *testing.T) {
	s := Scale(8, 4, 4, 2) // 8 nodes x 4 slots = 32 rank slots
	cases := []struct {
		name        string
		jobs, ranks int
		policy      Policy
		want        error
	}{
		{"zero jobs", 0, 8, PolicyPacked, ErrShape},
		{"zero ranks", 2, 0, PolicyPacked, ErrShape},
		{"over capacity", 2, 20, PolicyPacked, ErrCapacity},
		{"packed indivisible nodes", 3, 4, PolicyPacked, ErrPlacement},
		{"packed job too big", 2, 17, PolicyPacked, ErrCapacity},
		{"spread indivisible slots", 3, 4, PolicySpread, ErrPlacement},
		{"spread job too big", 2, 17, PolicySpread, ErrCapacity},
		{"striped indivisible nodes", 3, 4, PolicyStriped, ErrPlacement},
		{"unknown policy", 2, 8, Policy("random"), ErrPolicy},
		{"bad spec", 2, 8, PolicyPacked, ErrShape},
	}
	for _, c := range cases {
		spec := s
		if c.name == "bad spec" {
			spec.Nodes = -1
		}
		_, _, err := CoSchedule(spec, c.jobs, c.ranks, c.policy)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: CoSchedule err = %v, want %v", c.name, err, c.want)
		}
	}
}

// TestCoScheduleLayouts checks the three policies place every rank on a
// valid slot, jobs never share a slot, and each policy has its
// signature shape.
func TestCoScheduleLayouts(t *testing.T) {
	s := Scale(8, 4, 4, 2)
	const jobs, rpj = 2, 16
	for _, pol := range Policies {
		place, jobRanks, err := CoSchedule(s, jobs, rpj, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if len(place) != jobs*rpj || len(jobRanks) != jobs {
			t.Fatalf("%s: got %d placements, %d jobs", pol, len(place), len(jobRanks))
		}
		perNode := map[int]int{}
		for r, pl := range place {
			if pl.Node < 0 || pl.Node >= 8 || pl.GPU < 0 || pl.GPU >= 4 {
				t.Fatalf("%s: rank %d on node %d gpu %d out of range", pol, r, pl.Node, pl.GPU)
			}
			perNode[pl.Node]++
		}
		for node, cnt := range perNode {
			if cnt > 4 {
				t.Fatalf("%s: node %d hosts %d ranks > 4 slots", pol, node, cnt)
			}
		}
		nodesOf := func(j int) map[int]bool {
			ns := map[int]bool{}
			for _, r := range jobRanks[j] {
				ns[place[r].Node] = true
			}
			return ns
		}
		n0, n1 := nodesOf(0), nodesOf(1)
		share := 0
		for n := range n0 {
			if n1[n] {
				share++
			}
		}
		switch pol {
		case PolicyPacked:
			if share != 0 {
				t.Errorf("packed: jobs share %d nodes, want 0", share)
			}
			if len(n0) != 4 || len(n1) != 4 {
				t.Errorf("packed: job node counts %d/%d, want 4/4", len(n0), len(n1))
			}
		case PolicySpread:
			if share != 8 {
				t.Errorf("spread: jobs share %d nodes, want all 8", share)
			}
		case PolicyStriped:
			if share != 0 {
				t.Errorf("striped: jobs share %d nodes, want 0", share)
			}
			for n := range n0 {
				if n%2 != 0 {
					t.Errorf("striped: job 0 on node %d, want even nodes", n)
				}
			}
		}
	}
}
