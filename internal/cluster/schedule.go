package cluster

import (
	"errors"
	"fmt"

	"gpuddt/internal/mpi"
)

// Typed validation errors. Callers branch with errors.Is; every error
// returned by Validate and CoSchedule wraps exactly one of these.
var (
	// ErrShape marks a non-positive or internally inconsistent cluster
	// shape (node/GPU/rank counts, fat-tree radix, shard count).
	ErrShape = errors.New("cluster: invalid shape")

	// ErrCapacity marks a job mix that does not fit the cluster under
	// the requested placement policy.
	ErrCapacity = errors.New("cluster: insufficient capacity")

	// ErrPlacement marks a job/policy combination the policy cannot lay
	// out on this shape (e.g. a node or slot count not divisible by the
	// job count).
	ErrPlacement = errors.New("cluster: invalid placement")

	// ErrPolicy marks an unknown placement policy name.
	ErrPolicy = errors.New("cluster: unknown placement policy")
)

// Validate checks the spec shape and returns a typed error (wrapping
// ErrShape) instead of deferring to a panic deep inside world
// construction.
func (s Spec) Validate() error {
	if s.Nodes < 0 || s.GPUsPerNode < 0 || s.RanksPerNode < 0 {
		return fmt.Errorf("%w: negative dimension in %dx%dx%d (nodes x gpus x ranks)",
			ErrShape, s.Nodes, s.GPUsPerNode, s.RanksPerNode)
	}
	if s.Shards < 0 {
		return fmt.Errorf("%w: negative shard count %d", ErrShape, s.Shards)
	}
	if s.Shards > 0 && !s.Modelled {
		return fmt.Errorf("%w: %d engine shards require the modelled mode", ErrShape, s.Shards)
	}
	t := s.IB.Topo
	if t.LeafRadix < 0 || t.Spines < 0 {
		return fmt.Errorf("%w: negative fat-tree geometry %d:%d", ErrShape, t.LeafRadix, t.Spines)
	}
	if t.Spines > 0 && t.LeafRadix == 0 {
		return fmt.Errorf("%w: %d spines without a leaf radix", ErrShape, t.Spines)
	}
	if t.Spines > t.LeafRadix {
		return fmt.Errorf("%w: %d spines exceed the %d-port leaf radix", ErrShape, t.Spines, t.LeafRadix)
	}
	return nil
}

// Policy names a co-scheduling placement policy for multi-job runs.
type Policy string

// The placement policies the interference studies sweep:
//
//   - packed: each job gets a contiguous block of nodes — the best
//     locality a scheduler can give, jobs meet only on shared spines.
//   - spread: every node hosts an equal share of every job — maximal
//     locality for none, every link shared.
//   - striped: jobs alternate whole nodes round-robin — full nodes per
//     job but interleaved across leaves.
const (
	PolicyPacked  Policy = "packed"
	PolicySpread  Policy = "spread"
	PolicyStriped Policy = "striped"
)

// Policies lists every placement policy, in sweep order.
var Policies = []Policy{PolicyPacked, PolicySpread, PolicyStriped}

// CoSchedule lays out `jobs` jobs of ranksPerJob ranks each on s's
// nodes under the given policy. It returns the full placement list
// (global rank j*ranksPerJob+lr is job j's local rank lr) and, per job,
// the global ranks belonging to it. All shape and fit problems come
// back as typed errors (ErrShape / ErrPolicy / ErrPlacement /
// ErrCapacity) — never panics — so sweep drivers can skip impossible
// corners cleanly.
func CoSchedule(s Spec, jobs, ranksPerJob int, policy Policy) ([]mpi.Placement, [][]int, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if jobs <= 0 || ranksPerJob <= 0 {
		return nil, nil, fmt.Errorf("%w: %d jobs x %d ranks", ErrShape, jobs, ranksPerJob)
	}
	n := s.normalized()
	if jobs*ranksPerJob > n.Nodes*n.RanksPerNode {
		return nil, nil, fmt.Errorf("%w: %d jobs x %d ranks > %d slots",
			ErrCapacity, jobs, ranksPerJob, n.Nodes*n.RanksPerNode)
	}

	place := make([]mpi.Placement, jobs*ranksPerJob)
	jobRanks := make([][]int, jobs)
	at := func(j, lr, node, slot int) {
		place[j*ranksPerJob+lr] = mpi.Placement{Node: node, GPU: slot % n.GPUsPerNode}
		jobRanks[j] = append(jobRanks[j], j*ranksPerJob+lr)
	}

	switch policy {
	case PolicyPacked:
		if n.Nodes%jobs != 0 {
			return nil, nil, fmt.Errorf("%w: packed needs %d nodes divisible by %d jobs",
				ErrPlacement, n.Nodes, jobs)
		}
		npj := n.Nodes / jobs
		if ranksPerJob > npj*n.RanksPerNode {
			return nil, nil, fmt.Errorf("%w: packed job of %d ranks > %d nodes x %d slots",
				ErrCapacity, ranksPerJob, npj, n.RanksPerNode)
		}
		for j := 0; j < jobs; j++ {
			for lr := 0; lr < ranksPerJob; lr++ {
				at(j, lr, j*npj+lr/n.RanksPerNode, lr%n.RanksPerNode)
			}
		}
	case PolicySpread:
		if n.RanksPerNode%jobs != 0 {
			return nil, nil, fmt.Errorf("%w: spread needs %d slots per node divisible by %d jobs",
				ErrPlacement, n.RanksPerNode, jobs)
		}
		spj := n.RanksPerNode / jobs
		if ranksPerJob > n.Nodes*spj {
			return nil, nil, fmt.Errorf("%w: spread job of %d ranks > %d nodes x %d slots",
				ErrCapacity, ranksPerJob, n.Nodes, spj)
		}
		for j := 0; j < jobs; j++ {
			for lr := 0; lr < ranksPerJob; lr++ {
				at(j, lr, lr/spj, j*spj+lr%spj)
			}
		}
	case PolicyStriped:
		if n.Nodes%jobs != 0 {
			return nil, nil, fmt.Errorf("%w: striped needs %d nodes divisible by %d jobs",
				ErrPlacement, n.Nodes, jobs)
		}
		npj := n.Nodes / jobs
		if ranksPerJob > npj*n.RanksPerNode {
			return nil, nil, fmt.Errorf("%w: striped job of %d ranks > %d nodes x %d slots",
				ErrCapacity, ranksPerJob, npj, n.RanksPerNode)
		}
		for j := 0; j < jobs; j++ {
			for lr := 0; lr < ranksPerJob; lr++ {
				at(j, lr, j+(lr/n.RanksPerNode)*jobs, lr%n.RanksPerNode)
			}
		}
	default:
		return nil, nil, fmt.Errorf("%w: %q", ErrPolicy, policy)
	}
	return place, jobRanks, nil
}
