// Package cluster is the single API that names "the machine": a Spec
// describes the cluster shape (nodes × GPUs × ranks per node) and the
// hardware calibrations (GPU, PCIe, IB fabric tier) in one value, and
// builds from it the mpi.Config — substrates plus rank placements —
// that every benchmark, conformance harness and command constructs its
// world from. Before this package the same information was smeared
// across gpu.KeplerK40(), pcie.DefaultParams(), ib.DefaultParams() and
// hand-written mpi.Placement literals at every call site.
//
// Ranks are placed blocked — rank r on node r/RanksPerNode, on GPU
// (r mod RanksPerNode) mod GPUsPerNode — which is exactly the layout
// the topology-aware collectives in internal/mpi recognize.
package cluster

import (
	"fmt"

	"gpuddt/internal/gpu"
	"gpuddt/internal/ib"
	"gpuddt/internal/mpi"
	"gpuddt/internal/pcie"
)

// Spec names a cluster shape. The zero values of the hardware fields
// select the paper's PSG-cluster calibration (Kepler K40, Gen3 PCIe,
// flat FDR InfiniBand).
type Spec struct {
	// Nodes is the number of nodes (default 1).
	Nodes int

	// GPUsPerNode sizes each node (default 1).
	GPUsPerNode int

	// RanksPerNode is how many MPI ranks each node hosts (default
	// GPUsPerNode). Ranks beyond the GPU count share GPUs round-robin.
	RanksPerNode int

	// Hardware calibrations; zero values select defaults. IB.Topo picks
	// the fabric tier: the zero value is the flat single switch, a
	// LeafRadix turns on the two-tier fat tree.
	GPU  gpu.Params
	PCIe pcie.Params
	IB   ib.Params

	// Modelled selects the flyweight modelled-payload execution mode
	// (internal/model): ranks become state machines sharing compiled
	// datatype plans, payload bytes become digest-checked synthetic
	// generators, and the world runs on the sharded event engine. A
	// modelled Spec cannot build an mpi.World — it exists so sweeps
	// carry both modes through one description of "the machine".
	Modelled bool

	// Shards is the sharded-engine partition count for Modelled specs
	// (clamped to the fat-tree leaf count; 0 means 1, i.e. the serial
	// reference engine). Ignored for real-payload worlds.
	Shards int

	// Tuning overrides the world's protocol knobs — eager threshold,
	// pipeline geometry, collective algorithm family. Nil selects the
	// defaults. Set it explicitly (Tuned) or from a persisted tuning
	// table (internal/tune's Table.TuneFunc); it rides into the
	// mpi.Config that Config builds.
	Tuning *mpi.Tuning
}

// TuneFunc looks up the protocol tuning a world of shape s should run
// with when moving messages of msgBytes packed bytes of the given
// datatype class ("contig", "vector", "irregular", or an "app:" family
// for whole-application objectives). Nil means "use the defaults" — a
// miss in the tuning table, which is always safe.
type TuneFunc func(s Spec, msgBytes int64, dtClass string) *mpi.Tuning

// normalized fills the shape defaults (hardware defaults are filled by
// mpi.NewWorld, as before).
func (s Spec) normalized() Spec {
	if s.Nodes == 0 {
		s.Nodes = 1
	}
	if s.GPUsPerNode == 0 {
		s.GPUsPerNode = 1
	}
	if s.RanksPerNode == 0 {
		s.RanksPerNode = s.GPUsPerNode
	}
	return s
}

// Size returns the world size (total rank count).
func (s Spec) Size() int {
	s = s.normalized()
	return s.Nodes * s.RanksPerNode
}

// Placements returns the blocked rank placement: rank r on node
// r/RanksPerNode, GPUs shared round-robin within the node.
func (s Spec) Placements() []mpi.Placement {
	s = s.normalized()
	pls := make([]mpi.Placement, 0, s.Size())
	for r := 0; r < s.Size(); r++ {
		pls = append(pls, mpi.Placement{
			Node: r / s.RanksPerNode,
			GPU:  (r % s.RanksPerNode) % s.GPUsPerNode,
		})
	}
	return pls
}

// Config builds the mpi.Config for the spec, carrying the spec's
// Tuning. Callers customize the remaining runtime knobs (Engine,
// Faults) on the result before handing it to mpi.NewWorld.
func (s Spec) Config() mpi.Config {
	s = s.normalized()
	return mpi.Config{
		Ranks:       s.Placements(),
		Nodes:       s.Nodes,
		GPUsPerNode: s.GPUsPerNode,
		GPU:         s.GPU,
		PCIe:        s.PCIe,
		IB:          s.IB,
		Tuning:      s.Tuning,
	}
}

// Tuned returns a copy of the spec with the tuning override installed.
func (s Spec) Tuned(t *mpi.Tuning) Spec {
	s.Tuning = t
	return s
}

// TopoClass buckets the spec's fabric for tuning-table keys: "smp" for
// a single node, "flat" for the flat crossbar, "fatN" for a two-tier
// fat tree at N:1 oversubscription. Coarse on purpose — TEMPI-style
// canonical keys only pay off when distinct machines of the same class
// share entries.
func (s Spec) TopoClass() string {
	s = s.normalized()
	if s.Nodes == 1 {
		return "smp"
	}
	t := s.IB.Topo
	if !t.Hierarchical() {
		return "flat"
	}
	return fmt.Sprintf("fat%d", int(t.Oversubscription()+0.5))
}

// String names the shape, e.g. "4x2 (fat-tree 8:4)".
func (s Spec) String() string {
	s = s.normalized()
	out := fmt.Sprintf("%dx%d", s.Nodes, s.RanksPerNode)
	if t := s.IB.Topo; t.Hierarchical() {
		out += fmt.Sprintf(" (fat-tree %d:%d)", t.LeafRadix, t.Spines)
	}
	if s.Modelled {
		sh := s.Shards
		if sh < 1 {
			sh = 1
		}
		out += fmt.Sprintf(" [modelled x%d]", sh)
	}
	return out
}

// OneGPU is the paper's 1-GPU configuration: two ranks sharing one GPU
// on one node (CUDA IPC over the same device).
func OneGPU() Spec { return Spec{Nodes: 1, GPUsPerNode: 1, RanksPerNode: 2} }

// TwoGPU is the paper's 2-GPU configuration: two ranks on one node,
// one GPU each (P2P over PCIe).
func TwoGPU() Spec { return Spec{Nodes: 1, GPUsPerNode: 2, RanksPerNode: 2} }

// TwoNode is the paper's InfiniBand configuration: one rank on each of
// two nodes on the flat fabric.
func TwoNode() Spec { return Spec{Nodes: 2, GPUsPerNode: 1, RanksPerNode: 1} }

// ByName maps the conventional topology names ("1gpu", "2gpu", "ib")
// used by flags and test matrices to their Spec.
func ByName(name string) Spec {
	switch name {
	case "1gpu":
		return OneGPU()
	case "2gpu":
		return TwoGPU()
	case "ib":
		return TwoNode()
	default:
		panic(fmt.Sprintf("cluster: unknown topology %q", name))
	}
}

// scaleLeafRadix is the fat-tree leaf radix Scale uses: 8 nodes per
// leaf switch, a common production port split.
const scaleLeafRadix = 8

// Scale names a scaled-out cluster: nodes × gpusPerNode with
// ranksPerNode ranks each (0 = one per GPU) on a two-tier fat tree of
// 8-port leaves, oversub:1 oversubscribed (1 = fully provisioned,
// 2 = half the uplinks, ...). A single-leaf cluster (≤ 8 nodes) still
// instantiates the hierarchy so spine hops and uplink sharing are
// modeled consistently across sweep points.
func Scale(nodes, gpusPerNode, ranksPerNode, oversub int) Spec {
	if oversub < 1 {
		oversub = 1
	}
	spines := scaleLeafRadix / oversub
	if spines < 1 {
		spines = 1
	}
	ibp := ib.DefaultParams()
	ibp.Topo = ib.FatTree(scaleLeafRadix, spines)
	return Spec{
		Nodes:        nodes,
		GPUsPerNode:  gpusPerNode,
		RanksPerNode: ranksPerNode,
		IB:           ibp,
	}
}

// ScaleModelled is Scale in the flyweight modelled-payload mode with
// the given engine shard count — the shape mega-scale sweeps (1k-16k+
// ranks) run at, where building real buffers and goroutines per rank
// is off the table.
func ScaleModelled(nodes, gpusPerNode, ranksPerNode, oversub, shards int) Spec {
	s := Scale(nodes, gpusPerNode, ranksPerNode, oversub)
	s.Modelled = true
	s.Shards = shards
	return s
}
