package mem

import "testing"

func TestAllocAlignment(t *testing.T) {
	s := NewSpace("s", Device, 1<<20)
	a := s.Alloc(10, 0)
	if a.Addr()%256 != 0 {
		t.Fatalf("default alignment: addr %d", a.Addr())
	}
	b := s.Alloc(10, 1024)
	if b.Addr()%1024 != 0 {
		t.Fatalf("1KB alignment: addr %d", b.Addr())
	}
	if b.Addr() < a.Addr()+a.Len() {
		t.Fatalf("overlapping allocations: %v %v", a, b)
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s := NewSpace("s", Host, 100)
	s.Alloc(200, 1)
}

func TestSliceBounds(t *testing.T) {
	s := NewSpace("s", Host, 1000)
	b := s.Alloc(100, 1)
	sub := b.Slice(10, 20)
	if sub.Len() != 20 || sub.Addr() != b.Addr()+10 {
		t.Fatalf("slice = %v", sub)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range slice")
		}
	}()
	b.Slice(90, 20)
}

func TestBytesWritesAreVisible(t *testing.T) {
	s := NewSpace("s", Device, 1000)
	b := s.Alloc(16, 1)
	b.Bytes()[3] = 0xAB
	again := s.BufferAt(b.Addr(), b.Len())
	if again.Bytes()[3] != 0xAB {
		t.Fatal("write not visible through BufferAt")
	}
}

func TestBytesCapacityClamped(t *testing.T) {
	s := NewSpace("s", Host, 1000)
	a := s.Alloc(16, 1)
	bs := a.Bytes()
	if cap(bs) != 16 {
		t.Fatalf("cap = %d, want 16", cap(bs))
	}
}

func TestCopyAndEqual(t *testing.T) {
	s := NewSpace("s", Host, 1000)
	a := s.Alloc(64, 1)
	b := s.Alloc(64, 1)
	FillPattern(a, 7)
	if Equal(a, b) {
		t.Fatal("distinct buffers compare equal")
	}
	if n := Copy(b, a); n != 64 {
		t.Fatalf("copied %d", n)
	}
	if !Equal(a, b) {
		t.Fatal("copy not equal")
	}
}

func TestFillPatternDistinctSeeds(t *testing.T) {
	s := NewSpace("s", Host, 1000)
	a := s.Alloc(64, 1)
	b := s.Alloc(64, 1)
	FillPattern(a, 1)
	FillPattern(b, 2)
	if Equal(a, b) {
		t.Fatal("different seeds produced identical patterns")
	}
}

func TestBufferAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s := NewSpace("s", Host, 100)
	s.BufferAt(90, 20)
}

func TestFreeWrongSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s1 := NewSpace("a", Host, 100)
	s2 := NewSpace("b", Host, 100)
	b := s1.Alloc(10, 1)
	s2.Free(b)
}
