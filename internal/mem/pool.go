package mem

import "sync"

// Slab pool: backing arrays of Released Spaces are recycled into the
// next Space instead of being garbage-collected. A figure sweep builds
// hundreds of short-lived simulation worlds, each with a data buffer of
// up to several hundred MB; without recycling, every world pays for
// zeroing (or page-faulting) that much fresh memory, which dominates
// the host-side profile of cmd/ddtbench.
//
// Recycled slabs are NOT zeroed. Simulation correctness never depends
// on zero-initialized memory: every producer (FillPattern, pack
// kernels, DMA and network copies) writes a region before any consumer
// reads it, and the conformance suite passes unchanged when fresh
// memory is deliberately filled with garbage. Virtual time is likewise
// unaffected — addresses come from the bump allocator and timing from
// the event engine, neither of which observes buffer contents.
const (
	poolBudget   = 6 << 30 // max bytes parked in the pool
	poolMaxSlabs = 32      // max slab count parked in the pool
)

var (
	poolMu    sync.Mutex
	poolSlabs [][]byte // sorted by cap, ascending
	poolBytes int64

	poolGets    int64 // getSlab calls
	poolHits    int64 // getSlab calls satisfied from the pool
	poolPuts    int64 // putSlab calls that parked a slab
	poolEvicted int64 // slabs dropped to stay under budget
)

// PoolStats is a snapshot of the slab pool: what it holds and how well
// recycling works. HeldBytes/HeldSlabs bound the memory the pool pins
// between worlds; the hit rate is the fraction of backing-array
// requests served without a fresh allocation.
type PoolStats struct {
	HeldBytes int64
	HeldSlabs int
	Gets      int64
	Hits      int64
	Puts      int64
	Evicted   int64
}

// HitRate returns Hits/Gets (0 when no requests were made).
func (st PoolStats) HitRate() float64 {
	if st.Gets == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Gets)
}

// SlabPoolStats returns the current pool statistics.
func SlabPoolStats() PoolStats {
	poolMu.Lock()
	defer poolMu.Unlock()
	return PoolStats{
		HeldBytes: poolBytes,
		HeldSlabs: len(poolSlabs),
		Gets:      poolGets,
		Hits:      poolHits,
		Puts:      poolPuts,
		Evicted:   poolEvicted,
	}
}

// ResetSlabPoolStats zeroes the counters (not the pool contents), so
// tests can measure a single workload's recycle behaviour.
func ResetSlabPoolStats() {
	poolMu.Lock()
	defer poolMu.Unlock()
	poolGets, poolHits, poolPuts, poolEvicted = 0, 0, 0, 0
}

// getSlab returns a recycled slab with cap >= n (sliced to length n), or
// nil if none fits. A slab much larger than the request is left for a
// bigger Space: handing a multi-hundred-MB slab to a KB-sized staging
// space would force the next big allocation to start from scratch.
func getSlab(n int64) []byte {
	poolMu.Lock()
	defer poolMu.Unlock()
	poolGets++
	for i, s := range poolSlabs {
		c := int64(cap(s))
		if c < n {
			continue
		}
		if c > 8*n && c > n+(32<<20) {
			break // ascending order: every later slab is even larger
		}
		poolSlabs = append(poolSlabs[:i], poolSlabs[i+1:]...)
		poolBytes -= c
		poolHits++
		return s[:n]
	}
	return nil
}

// putSlab parks a slab for reuse, evicting the smallest slabs when the
// pool exceeds its byte or count budget.
func putSlab(s []byte) {
	c := int64(cap(s))
	if c == 0 {
		return
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	i := 0
	for i < len(poolSlabs) && int64(cap(poolSlabs[i])) < c {
		i++
	}
	poolSlabs = append(poolSlabs, nil)
	copy(poolSlabs[i+1:], poolSlabs[i:])
	poolSlabs[i] = s
	poolBytes += c
	poolPuts++
	for (poolBytes > poolBudget || len(poolSlabs) > poolMaxSlabs) && len(poolSlabs) > 0 {
		poolBytes -= int64(cap(poolSlabs[0]))
		poolSlabs = append(poolSlabs[:0], poolSlabs[1:]...)
		poolEvicted++
	}
}
