package mem

import (
	"bytes"
	"testing"
)

// TestSyntheticRandomAccess: windows generated at arbitrary offsets
// must be byte-identical to slices of the full stream — the property
// modelled payloads rely on to sign a message without the buffer.
func TestSyntheticRandomAccess(t *testing.T) {
	const n = 4096
	full := make([]byte, n)
	SyntheticAt(42, 0, full)
	for _, win := range []struct{ off, ln int64 }{
		{0, 1}, {1, 7}, {3, 17}, {8, 64}, {777, 1000}, {n - 5, 5},
	} {
		got := make([]byte, win.ln)
		SyntheticAt(42, win.off, got)
		if !bytes.Equal(got, full[win.off:win.off+win.ln]) {
			t.Fatalf("window [%d:+%d] differs from full stream", win.off, win.ln)
		}
	}
}

// TestSyntheticDistinctSeeds: different seeds must give different
// contents (same sanity bar FillPattern meets).
func TestSyntheticDistinctSeeds(t *testing.T) {
	s := NewSpace("t", Host, 1<<20)
	a, b := s.Alloc(512, 0), s.Alloc(512, 0)
	FillSynthetic(a, 1)
	FillSynthetic(b, 2)
	if Equal(a, b) {
		t.Fatal("seeds 1 and 2 produced identical contents")
	}
	c := s.Alloc(512, 0)
	FillSynthetic(c, 1)
	if !Equal(a, c) {
		t.Fatal("same seed not reproducible")
	}
}

// TestSyntheticPositionDependent: the pattern must differ when the same
// seed is read as if the data sat elsewhere — shifted copies of a
// buffer can't alias to a false verification match.
func TestSyntheticPositionDependent(t *testing.T) {
	a := make([]byte, 256)
	b := make([]byte, 256)
	SyntheticAt(7, 0, a)
	SyntheticAt(7, 8, b)
	if bytes.Equal(a[8:], b[:248]) == false {
		// b IS the stream at offset 8; a[8:] is the same stream region.
		t.Fatal("offset window disagrees with stream")
	}
	if bytes.Equal(a, b) {
		t.Fatal("offset 0 and 8 windows identical")
	}
}

// TestSpaceRetiredCeiling: no matter how many times a Space outgrows
// its backing, it retains at most spaceMaxRetired dead arrays, and the
// pinned retired bytes stay below ~2x the live backing.
func TestSpaceRetiredCeiling(t *testing.T) {
	s := NewSpace("grow", Host, 1<<30)
	for i := 0; i < 16; i++ {
		s.Alloc(4096<<i, 0)
	}
	if got := s.RetiredSlabs(); got > spaceMaxRetired {
		t.Fatalf("retired slabs %d, ceiling %d", got, spaceMaxRetired)
	}
	if rb, live := s.RetiredBytes(), int64(cap(s.data)); rb >= 2*live {
		t.Fatalf("retired bytes %d not bounded by live backing %d", rb, live)
	}
	if s.FootprintBytes() != int64(cap(s.data))+s.RetiredBytes() {
		t.Fatal("FootprintBytes inconsistent")
	}
	s.Release()
	if s.RetiredSlabs() != 0 || s.FootprintBytes() != 0 {
		t.Fatal("Release did not clear retired list")
	}
}
