// Package mem provides simulated address spaces backed by real bytes.
//
// Host memory and each GPU's device memory are separate Spaces. A Buffer
// is a bounds-checked window into a Space; packing kernels, DMA copies and
// network transfers all read and write real bytes through Buffers, so
// end-to-end data correctness is verifiable while the simulation charges
// virtual time for the movement.
package mem

import "fmt"

// Kind distinguishes where a Space physically lives.
type Kind int

const (
	// Host is CPU-attached DRAM.
	Host Kind = iota
	// Device is GPU-attached DRAM.
	Device
)

func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case Device:
		return "device"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Space is a flat simulated address space with a bump allocator. The
// backing storage grows on demand so that a large simulated memory (a
// 12 GB GPU) costs real memory only for the bytes actually allocated.
type Space struct {
	name  string
	kind  Kind
	size  int64 // capacity cap
	data  []byte
	brk   int64
	frees int64

	// retired holds outgrown backing arrays until Release. They cannot
	// go back to the slab pool mid-lifetime: a caller may still hold a
	// (stale, already-copied) Bytes() slice into one, and recycling it
	// into another Space would alias live traffic over that view. The
	// list is capped at spaceMaxRetired entries: beyond that the oldest
	// (smallest — growth doubles) arrays are dropped to the garbage
	// collector instead of being kept for pool recycling, so a Space
	// never pins more than ~2x its largest backing in dead arrays.
	retired [][]byte
}

// spaceMaxRetired caps Space.retired. Power-of-two growth means the
// newest retained arrays hold nearly all the retired bytes; anything
// older is worthless to the slab pool but would pin real memory for the
// Space's whole lifetime — at 16k-rank sweeps that defeats the
// flyweight memory win.
const spaceMaxRetired = 4

// NewSpace creates a space of the given size in bytes.
func NewSpace(name string, kind Kind, size int64) *Space {
	return &Space{name: name, kind: kind, size: size}
}

// ensure grows the backing array to cover [0, n). Backing arrays come
// from the slab pool when possible (see pool.go); recycled and
// in-place-extended memory is NOT zeroed, which the simulation never
// relies on.
func (s *Space) ensure(n int64) {
	if int64(len(s.data)) >= n {
		return
	}
	if int64(cap(s.data)) >= n {
		s.data = s.data[:n]
		return
	}
	// Round the backing size up to a power of two: requested sizes vary
	// slightly from world to world (they track the bump-allocator break),
	// and pooled slabs are only reusable when sizes recur. Power-of-two
	// classes make every similar-scale world land on the same slab.
	grow := int64(1) << 12
	for grow < n {
		grow <<= 1
	}
	if grow > s.size {
		grow = s.size
	}
	nd := getSlab(grow)
	if nd == nil {
		nd = make([]byte, grow)
	}
	copy(nd, s.data)
	if len(s.data) > 0 {
		if len(s.retired) >= spaceMaxRetired {
			n := copy(s.retired, s.retired[1:])
			s.retired[n] = nil
			s.retired = s.retired[:n]
		}
		s.retired = append(s.retired, s.data)
	}
	s.data = nd
}

// RetiredSlabs returns how many outgrown backing arrays the space still
// holds (bounded by spaceMaxRetired).
func (s *Space) RetiredSlabs() int { return len(s.retired) }

// RetiredBytes returns the bytes pinned by retired backing arrays.
func (s *Space) RetiredBytes() int64 {
	var n int64
	for _, r := range s.retired {
		n += int64(cap(r))
	}
	return n
}

// FootprintBytes returns the real memory backing the space: the live
// array plus everything retired. This is the deterministic measure the
// scale sweep reports as per-rank memory.
func (s *Space) FootprintBytes() int64 { return int64(cap(s.data)) + s.RetiredBytes() }

// Release returns the backing storage to the slab pool so a future
// Space can reuse it without re-zeroing. The Space and every Buffer
// into it must not be used afterwards; Release is the end of a
// simulation world's lifetime (see mpi.World.Close). Safe to call more
// than once.
func (s *Space) Release() {
	if s.data != nil {
		putSlab(s.data)
		s.data = nil
	}
	for _, r := range s.retired {
		putSlab(r)
	}
	s.retired = nil
}

// Name returns the space name (e.g. "host", "gpu0").
func (s *Space) Name() string { return s.name }

// Kind returns whether the space is host or device memory.
func (s *Space) Kind() Kind { return s.kind }

// Size returns the total capacity in bytes.
func (s *Space) Size() int64 { return s.size }

// Avail returns the bytes remaining for allocation.
func (s *Space) Avail() int64 { return s.Size() - s.brk }

// Alloc reserves n bytes aligned to align (a power of two; 0 means 256)
// and returns a Buffer covering them. It panics on exhaustion, which in a
// simulation indicates a sizing bug rather than a runtime condition.
func (s *Space) Alloc(n int64, align int64) Buffer {
	if n < 0 {
		panic(fmt.Sprintf("mem: negative alloc %d on %s", n, s.name))
	}
	if align == 0 {
		align = 256
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d not a power of two", align))
	}
	off := (s.brk + align - 1) &^ (align - 1)
	if off+n > s.Size() {
		panic(fmt.Sprintf("mem: %s out of memory: want %d at %d, size %d", s.name, n, off, s.Size()))
	}
	s.brk = off + n
	s.ensure(s.brk)
	return Buffer{space: s, off: off, n: n}
}

// Free releases a buffer. The bump allocator does not reclaim space, but
// Free validates double-free misuse and keeps statistics; simulations are
// sized so that total allocation fits.
func (s *Space) Free(b Buffer) {
	if b.space != s {
		panic("mem: freeing buffer from another space")
	}
	s.frees++
}

// Buffer is a bounds-checked window into a Space. The zero Buffer is
// invalid; IsValid reports usability.
type Buffer struct {
	space *Space
	off   int64
	n     int64
}

// IsValid reports whether the buffer references a space.
func (b Buffer) IsValid() bool { return b.space != nil }

// Space returns the owning space.
func (b Buffer) Space() *Space { return b.space }

// Kind returns the owning space's kind.
func (b Buffer) Kind() Kind { return b.space.kind }

// Addr returns the offset of the buffer within its space. Together with
// the space name it forms a simulated "device pointer" (used for IPC
// handles and RDMA descriptors).
func (b Buffer) Addr() int64 { return b.off }

// Len returns the buffer length in bytes.
func (b Buffer) Len() int64 { return b.n }

// Slice returns the sub-buffer [off, off+n).
func (b Buffer) Slice(off, n int64) Buffer {
	if off < 0 || n < 0 || off+n > b.n {
		panic(fmt.Sprintf("mem: slice [%d:%d) out of buffer of %d bytes", off, off+n, b.n))
	}
	return Buffer{space: b.space, off: b.off + off, n: n}
}

// Bytes exposes the underlying storage. Mutations are real: this is how
// kernels and DMA engines move data.
func (b Buffer) Bytes() []byte {
	return b.space.data[b.off : b.off+b.n : b.off+b.n]
}

// String describes the buffer for diagnostics.
func (b Buffer) String() string {
	if !b.IsValid() {
		return "mem.Buffer(nil)"
	}
	return fmt.Sprintf("%s[%d:+%d]", b.space.name, b.off, b.n)
}

// BufferAt reconstructs a buffer from a raw (addr, len) pair, as carried
// in IPC handles or RDMA descriptors. It panics if out of range.
func (s *Space) BufferAt(addr, n int64) Buffer {
	if addr < 0 || n < 0 || addr+n > s.Size() {
		panic(fmt.Sprintf("mem: BufferAt(%d, %d) out of %s (size %d)", addr, n, s.name, s.Size()))
	}
	return Buffer{space: s, off: addr, n: n}
}

// Copy moves min(len(dst), len(src)) bytes between buffers (the functional
// half of a DMA; the caller charges virtual time separately). It returns
// the byte count moved. Overlapping copies within one space follow Go copy
// semantics.
func Copy(dst, src Buffer) int64 {
	return int64(copy(dst.Bytes(), src.Bytes()))
}

// Fill sets every byte of b to v.
func Fill(b Buffer, v byte) {
	bs := b.Bytes()
	for i := range bs {
		bs[i] = v
	}
}

// FillPattern writes a deterministic position-dependent pattern, seeded so
// that distinct buffers get distinct contents. Used by tests and examples
// to verify end-to-end transfers byte-exactly.
func FillPattern(b Buffer, seed uint64) {
	bs := b.Bytes()
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range bs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		bs[i] = byte(x>>32) ^ byte(i)
	}
}

// patternWord returns 64-bit word w of seed's synthetic stream using a
// splitmix64-style finalizer. Unlike FillPattern's serial xorshift, any
// word is computable in O(1), which is what lets modelled-payload
// worlds generate the bytes of an arbitrary message window without
// materializing the buffer around it.
func patternWord(seed, w uint64) uint64 {
	x := seed + (w+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SyntheticAt writes len(dst) bytes of the random-access synthetic
// pattern for seed, starting at stream offset off. SyntheticAt(s, 0, b)
// followed by reads anywhere is byte-identical to generating windows
// directly: SyntheticAt(s, off, w) equals the slice [off, off+len(w))
// of the full stream.
func SyntheticAt(seed uint64, off int64, dst []byte) {
	if off < 0 {
		panic("mem: negative synthetic pattern offset")
	}
	i := 0
	for i < len(dst) {
		o := off + int64(i)
		w := patternWord(seed, uint64(o)>>3)
		for j := uint(o) & 7; j < 8 && i < len(dst); j++ {
			dst[i] = byte(w>>(8*j)) ^ byte(off+int64(i))
			i++
		}
	}
}

// FillSynthetic fills b with the synthetic pattern for seed (the
// random-access counterpart of FillPattern, used wherever a generator
// must later reproduce arbitrary windows of the contents).
func FillSynthetic(b Buffer, seed uint64) { SyntheticAt(seed, 0, b.Bytes()) }

// Equal reports whether two buffers have identical length and contents.
func Equal(a, b Buffer) bool {
	if a.n != b.n {
		return false
	}
	ab, bb := a.Bytes(), b.Bytes()
	for i := range ab {
		if ab[i] != bb[i] {
			return false
		}
	}
	return true
}
