package mem

import "testing"

// drainPool empties the global pool so tests see a known state.
func drainPool() {
	poolMu.Lock()
	poolSlabs = nil
	poolBytes = 0
	poolMu.Unlock()
}

func TestSlabPoolRoundTrip(t *testing.T) {
	drainPool()
	putSlab(make([]byte, 1<<16))
	got := getSlab(1 << 16)
	if got == nil || cap(got) != 1<<16 || len(got) != 1<<16 {
		t.Fatalf("getSlab(64K) = len %d cap %d, want recycled 64K slab", len(got), cap(got))
	}
	if getSlab(1<<16) != nil {
		t.Fatal("pool should be empty after the slab was taken")
	}
}

func TestSlabPoolRejectsOversizedHandout(t *testing.T) {
	drainPool()
	putSlab(make([]byte, 1<<30))
	if s := getSlab(1 << 12); s != nil {
		t.Fatalf("a 1 GB slab must not serve a 4 KB request (cap %d)", cap(s))
	}
	if s := getSlab(1 << 29); s == nil {
		t.Fatal("a 1 GB slab should serve a 512 MB request")
	}
}

func TestSlabPoolBudgetEvictsSmallest(t *testing.T) {
	drainPool()
	for i := 0; i < poolMaxSlabs+4; i++ {
		putSlab(make([]byte, 1<<12))
	}
	poolMu.Lock()
	n := len(poolSlabs)
	poolMu.Unlock()
	if n > poolMaxSlabs {
		t.Fatalf("pool holds %d slabs, budget is %d", n, poolMaxSlabs)
	}
}

func TestSpaceReleaseRecyclesBacking(t *testing.T) {
	drainPool()
	s := NewSpace("s", Host, 1<<20)
	b := s.Alloc(1<<14, 0)
	FillPattern(b, 7)
	// Grow past the first power-of-two class so a slab is retired.
	s.Alloc(1<<16, 0)
	s.Release()
	poolMu.Lock()
	n := len(poolSlabs)
	poolMu.Unlock()
	if n < 2 {
		t.Fatalf("Release parked %d slabs, want current + retired", n)
	}
	// A new space must be able to reuse the backing without zeroing;
	// contents are unspecified, the allocator only promises the length.
	s2 := NewSpace("s2", Host, 1<<20)
	b2 := s2.Alloc(1<<16, 0)
	if got := int64(len(b2.Bytes())); got != 1<<16 {
		t.Fatalf("recycled alloc len = %d", got)
	}
	s2.Release()
}

// TestPoolStats: the pool must report held bytes and a recycle hit
// rate that reflects actual traffic.
func TestPoolStats(t *testing.T) {
	drainPool()
	ResetSlabPoolStats()
	if miss := getSlab(1 << 16); miss != nil {
		t.Fatal("empty pool served a slab")
	}
	putSlab(make([]byte, 1<<16))
	st := SlabPoolStats()
	if st.HeldSlabs != 1 || st.HeldBytes != 1<<16 || st.Puts != 1 {
		t.Fatalf("after one put: %+v", st)
	}
	if hit := getSlab(1 << 16); hit == nil {
		t.Fatal("pool did not serve the parked slab")
	}
	st = SlabPoolStats()
	if st.Gets != 2 || st.Hits != 1 {
		t.Fatalf("gets/hits = %d/%d, want 2/1", st.Gets, st.Hits)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %.2f, want 0.50", got)
	}
	if st.HeldSlabs != 0 || st.HeldBytes != 0 {
		t.Fatalf("pool not empty after handout: %+v", st)
	}
}

// TestPoolStatsEviction: over-budget parks count as evictions.
func TestPoolStatsEviction(t *testing.T) {
	drainPool()
	ResetSlabPoolStats()
	for i := 0; i < poolMaxSlabs+3; i++ {
		putSlab(make([]byte, 1<<12))
	}
	st := SlabPoolStats()
	if st.Evicted != 3 {
		t.Fatalf("evicted %d, want 3", st.Evicted)
	}
	if st.HeldSlabs != poolMaxSlabs {
		t.Fatalf("held %d, want %d", st.HeldSlabs, poolMaxSlabs)
	}
}
