package mpi

import (
	"errors"
	"fmt"

	"gpuddt/internal/cuda"
	"gpuddt/internal/fault"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// withRetry runs fn until it succeeds or the fault plan's per-operation
// attempt budget is exhausted, charging capped exponential backoff
// between attempts (the PML's recovery timer). The fault injector has
// already charged the detection latency — the virtual time a real stack
// spends waiting for the timeout or the error CQE — by the time fn
// returns an error, so this loop only adds the deliberate backoff. A
// fault classified persistent (errors.Is fault.ErrPersistent) aborts
// the loop immediately: retrying a dead path would only burn backoff
// before the same failure. With a nil fault plan fn cannot fail and the
// loop costs nothing.
func (m *Rank) withRetry(p *sim.Proc, what string, fn func() error) error {
	max := m.w.faults.MaxAttempts()
	var err error
	for attempt := 0; attempt < max; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if errors.Is(err, fault.ErrPersistent) {
			break
		}
		if attempt+1 >= max {
			break
		}
		p.Count("mpi.retry", 1)
		h := p.Begin("mpi.retry.backoff")
		h.SetDetail(what)
		p.Sleep(m.w.faults.Backoff(attempt))
		h.End()
	}
	return err
}

// mustRetry is withRetry for call sites with no recovery protocol above
// them (eager puts, active messages, staged copies): exhausting the
// budget there means the transport itself is gone, which stays fatal.
func (m *Rank) mustRetry(p *sim.Proc, what string, fn func() error) {
	if err := m.withRetry(p, what, fn); err != nil {
		panic(fmt.Sprintf("mpi: rank %d: %s failed after %d attempts: %v",
			m.rank, what, m.w.faults.MaxAttempts(), err))
	}
}

// openIPC maps a peer allocation with bounded retries. A persistent
// fault surfaces as an error rather than a panic so the caller can
// downgrade a zero-copy protocol to staged copy-in/out.
func (m *Rank) openIPC(p *sim.Proc, h cuda.IpcHandle) (mem.Buffer, error) {
	var b mem.Buffer
	err := m.withRetry(p, "ipc.open", func() error {
		var e error
		b, e = m.ctx.IpcOpenMemHandle(p, h)
		return e
	})
	return b, err
}
