package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/fault"
	"gpuddt/internal/ib"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// hierChaosConfig is a 64-rank fat-tree world (16 nodes x 4 ranks, 2:1
// oversubscribed) with the rendezvous pipeline forced through small
// fragments so faults land mid-protocol across every tier.
func hierChaosConfig(plan *fault.Plan) Config {
	cfg := blockedConfig(16, 4, false)
	cfg.IB = ib.DefaultParams()
	cfg.IB.Topo = ib.FatTree(8, 4)
	cfg.Proto.EagerLimit = 1
	cfg.Proto.FragBytes = 8 << 10
	cfg.Faults = plan
	return cfg
}

// runHierColl runs one collective on the world and returns each rank's
// packed result (reduce: the root's accumulator).
func runHierColl(t *testing.T, cfg Config, coll string) ([][]byte, *World, *sim.Recorder) {
	t.Helper()
	size := len(cfg.Ranks)
	root := size - 1
	dt := shapes.SubMatrix(16, 8, 12)
	w := NewWorld(cfg)
	rec := sim.NewRecorder(w.Engine())
	imgs := make([][]byte, size)
	w.Run(func(m *Rank) {
		switch coll {
		case "bcast":
			buf := m.Malloc(spanOf(dt, 4))
			if m.Rank() == root {
				mem.FillPattern(buf, uint64(7000+root))
			}
			m.Bcast(buf, dt, 4, root)
			imgs[m.Rank()] = cpuPack(dt, 4, buf.Bytes())
		case "allgather":
			stride := dt.Extent()
			buf := m.Malloc(spanOf(dt, size))
			mem.FillPattern(buf.Slice(int64(m.Rank())*stride, spanOf(dt, 1)), uint64(7100+m.Rank()))
			m.Allgather(buf, dt, 1)
			imgs[m.Rank()] = cpuPack(dt, size, buf.Bytes())
		case "alltoall":
			sendBuf := m.Malloc(spanOf(dt, size))
			recvBuf := m.Malloc(spanOf(dt, size))
			mem.FillPattern(sendBuf, uint64(7200+m.Rank()))
			m.Alltoall(sendBuf, dt, 1, recvBuf, dt, 1)
			imgs[m.Rank()] = cpuPack(dt, size, recvBuf.Bytes())
		case "reduce":
			rdt := datatype.Contiguous(1024, datatype.Int64)
			sendBuf := m.Malloc(rdt.Size())
			recvBuf := m.Malloc(rdt.Size())
			mem.FillPattern(sendBuf, uint64(7300+m.Rank()))
			m.Reduce(sendBuf, recvBuf, rdt, 1, OpSum, root)
			if m.Rank() == root {
				imgs[root] = append([]byte(nil), recvBuf.Bytes()...)
			}
		}
	})
	return imgs, w, rec
}

// TestHierChaosSweep injects transient faults into every hierarchical
// collective at 64 ranks and requires full recovery: byte-identical
// results to the clean run, at least one fault actually injected, and
// zero scratch/ring slabs leaked on any rank.
func TestHierChaosSweep(t *testing.T) {
	for _, coll := range []string{"bcast", "allgather", "alltoall", "reduce"} {
		clean, cw, _ := runHierColl(t, hierChaosConfig(nil), coll)
		if n := cw.Faults().Total(); n != 0 {
			t.Fatalf("%s: clean run injected %d faults", coll, n)
		}
		cw.Close()
		for _, seed := range []uint64{3, 19} {
			plan := fault.NewPlan(seed, 0.03)
			got, w, rec := runHierColl(t, hierChaosConfig(plan), coll)
			if w.Faults().Total() == 0 {
				t.Fatalf("%s seed %d: no faults injected; chaos run is vacuous", coll, seed)
			}
			if rec.Counter("mpi.retry")+rec.Counter("gpu.launch.retry") == 0 {
				t.Errorf("%s seed %d: faults injected but no retry recorded", coll, seed)
			}
			for r := range got {
				if !bytes.Equal(got[r], clean[r]) {
					t.Fatalf("%s seed %d: rank %d result differs from clean run", coll, seed, r)
				}
			}
			checkQuiescent(t, w, fmt.Sprintf("%s chaos seed %d", coll, seed))
			w.Close()
		}
	}
}

// TestHierChaosPersistentIPC makes every IPC open fail permanently: the
// intra-node tier must fall back (host staging) yet the hierarchical
// alltoall still completes correctly and leak-free at 64 ranks.
func TestHierChaosPersistentIPC(t *testing.T) {
	clean, cw, _ := runHierColl(t, hierChaosConfig(nil), "alltoall")
	cw.Close()
	plan := fault.NewPlan(23, 0)
	plan.Persistent[fault.IPCOpen] = true
	got, w, _ := runHierColl(t, hierChaosConfig(plan), "alltoall")
	for r := range got {
		if !bytes.Equal(got[r], clean[r]) {
			t.Fatalf("rank %d result differs from clean run under persistent IPC failure", r)
		}
	}
	checkQuiescent(t, w, "alltoall persistent-ipc")
	w.Close()
}
