package mpi

import (
	"fmt"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Nonblocking collectives. Each I* call reserves its tag block
// synchronously — so every rank advances collSeq identically no matter
// how calls, kernels and waits interleave — and then hands the same
// schedule the blocking call would run to a per-collective progress
// process. The returned Request completes when the schedule finishes;
// the caller's process is free to launch kernels or further collectives
// in the meantime, which is exactly the overlap the paper's pipelined
// engine exists to serve.
//
// The progress engine advances a collective at channel granularity: the
// schedule process blocks in the next channel operation (send, receive,
// staging copy) and the simulator's cooperative scheduler interleaves
// it with the rank's main process between those operations. Fragments
// are not the progress unit — fragment pipelining belongs to the
// point-to-point strategies underneath (DESIGN decision 13).

// startColl spawns the schedule on a dedicated progress process and
// returns the request that completes when it finishes. The process is
// non-daemon, so an un-waited collective still runs to completion
// before the simulation ends.
func (m *Rank) startColl(name string, bytes int64, schedule func(p *sim.Proc)) *Request {
	req := &Request{done: m.w.eng.NewFuture()}
	m.collOut++
	m.icollSeq++
	m.w.eng.Spawn(fmt.Sprintf("rank%d.icoll.%s.%d", m.rank, name, m.icollSeq), func(p *sim.Proc) {
		h := p.BeginBytes("coll.async."+name, bytes)
		schedule(p)
		h.End()
		p.Count("mpi.icoll", 1)
		m.collOut--
		req.done.Complete(nil)
	})
	return req
}

// CollOutstanding reports nonblocking collectives started but not yet
// completed. Zero after a quiescent point (every request waited on).
func (m *Rank) CollOutstanding() int { return m.collOut }

// cloneInts snapshots a count/displacement vector at call time, so the
// caller may reuse its slices immediately after an I* call returns.
func cloneInts(v []int) []int {
	if v == nil {
		return nil
	}
	return append([]int(nil), v...)
}

// Ibcast is the nonblocking Bcast.
func (m *Rank) Ibcast(buf mem.Buffer, dt *datatype.Datatype, count, root int) *Request {
	tag := m.tagBlock(m.bcastTags())
	return m.startColl("bcast", int64(count)*dt.Size(), func(p *sim.Proc) {
		m.bcast(p, tag, buf, dt, count, root)
	})
}

// Ireduce is the nonblocking Reduce.
func (m *Rank) Ireduce(sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, op Op, root int) *Request {
	tag := m.tagBlock(m.reduceTags())
	return m.startColl("reduce", int64(count)*dt.Size(), func(p *sim.Proc) {
		m.reduce(p, tag, sendBuf, recvBuf, dt, count, op, root)
	})
}

// Iallreduce is the nonblocking Allreduce.
func (m *Rank) Iallreduce(sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, op Op) *Request {
	tagR := m.tagBlock(m.reduceTags())
	tagB := m.tagBlock(m.bcastTags())
	return m.startColl("allreduce", int64(count)*dt.Size(), func(p *sim.Proc) {
		m.allreduce(p, tagR, tagB, sendBuf, recvBuf, dt, count, op)
	})
}

// Iallgather is the nonblocking Allgather.
func (m *Rank) Iallgather(buf mem.Buffer, dt *datatype.Datatype, count int) *Request {
	tag := m.tagBlock(m.allgatherTags())
	return m.startColl("allgather", int64(m.Size())*int64(count)*dt.Size(), func(p *sim.Proc) {
		m.allgather(p, tag, buf, dt, count)
	})
}

// Iallgatherv is the nonblocking Allgatherv.
func (m *Rank) Iallgatherv(buf mem.Buffer, counts, displs []int, dt *datatype.Datatype) *Request {
	checkVArgs("Iallgatherv", m.Size(), counts, displs)
	tag := m.tagBlock(m.allgatherTags())
	counts, displs = cloneInts(counts), cloneInts(displs)
	var total int64
	for _, c := range counts {
		total += int64(c) * dt.Size()
	}
	return m.startColl("allgatherv", total, func(p *sim.Proc) {
		m.allgatherv(p, tag, buf, counts, displs, dt)
	})
}

// Ialltoall is the nonblocking Alltoall.
func (m *Rank) Ialltoall(sendBuf mem.Buffer, sdt *datatype.Datatype, scount int,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount int) *Request {
	tag := m.tagBlock(m.alltoallTags())
	return m.startColl("alltoall", int64(m.Size())*int64(scount)*sdt.Size(), func(p *sim.Proc) {
		m.alltoall(p, tag, sendBuf, sdt, scount, recvBuf, rdt, rcount)
	})
}

// Ialltoallv is the nonblocking Alltoallv.
func (m *Rank) Ialltoallv(sendBuf mem.Buffer, scounts, sdispls []int, sdt *datatype.Datatype,
	recvBuf mem.Buffer, rcounts, rdispls []int, rdt *datatype.Datatype) *Request {
	checkVArgs("Ialltoallv", m.Size(), scounts, sdispls)
	checkVArgs("Ialltoallv", m.Size(), rcounts, rdispls)
	tag := m.tagBlock(m.alltoallvTags())
	scounts, sdispls = cloneInts(scounts), cloneInts(sdispls)
	rcounts, rdispls = cloneInts(rcounts), cloneInts(rdispls)
	var total int64
	for _, c := range scounts {
		total += int64(c) * sdt.Size()
	}
	return m.startColl("alltoallv", total, func(p *sim.Proc) {
		m.alltoallv(p, tag, sendBuf, scounts, sdispls, sdt, recvBuf, rcounts, rdispls, rdt)
	})
}

// Ibarrier is the nonblocking Barrier: a dissemination schedule over
// reserved collective tags (the blocking Barrier's mailbox rendezvous
// cannot overlap with itself, reserved tags can).
func (m *Rank) Ibarrier() *Request {
	tag := m.tagBlock(m.barrierTags())
	return m.startColl("barrier", 0, func(p *sim.Proc) {
		m.dissemBarrier(p, tag)
	})
}

// dissemBarrier: round k exchanges a token with the ranks 2^k away; in
// ceil(log2 size) rounds every rank has transitively heard from every
// other.
func (m *Rank) dissemBarrier(p *sim.Proc, tag int) {
	size := m.Size()
	if size == 1 {
		return
	}
	buf := m.scratch(2)
	defer m.freeScratch(buf)
	round := 0
	for mask := 1; mask < size; mask <<= 1 {
		to := (m.rank + mask) % size
		from := (m.rank - mask + size) % size
		sreq := m.isendOn(p, buf.Slice(0, 1), datatype.Byte, 1, to, tag+round)
		rreq := m.Irecv(buf.Slice(1, 1), datatype.Byte, 1, from, tag+round)
		sreq.Wait(p)
		rreq.Wait(p)
		round++
	}
}
