package mpi

import (
	"gpuddt/internal/datatype"
	"gpuddt/internal/ib"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// In-network (SHARP-style) Reduce/Allreduce: instead of a second
// binomial tree over the per-node leaders on the IB tier, each leader
// hands its node's partial to the fat-tree switches, whose ALUs fold
// the partials on the way up and multicast the result back down
// (ib.Fabric.SwitchReduce). Selected by Tuning.Collectives ==
// CollSwitch — normally written by the auto-tuner (internal/tune) only
// where the measured switch path beats hierReduce. The combine
// association (node partials folded in node order at the switch)
// differs from both the flat and the hierarchical tree, with the same
// caveat hierReduce documents: exact for Int64 and OpMax; Float64 sums
// may round differently.

// switchOn reports whether this world's Reduce/Allreduce run at the
// switches: requested by the tuning, a blocked multi-node layout, and a
// fabric that actually has switch ALUs (a spine tier). Everything else
// falls back to the CollAuto dispatch.
func (m *Rank) switchOn() bool {
	return m.w.tun.coll == CollSwitch &&
		m.w.hier.nodes > 1 &&
		m.w.fabric.Params().Topo.Hierarchical()
}

// switchReduce: binomial reduction to each node's acting leader over
// shared memory, one in-network fold across the leaders' switches, and
// — for Allreduce (allTag >= 0) — an intra-node broadcast of the
// multicast result. allTag < 0 gives Reduce semantics: only root keeps
// the result (the switch still multicasts to every leader; non-root
// leaders drop the bytes without unpacking).
func (m *Rank) switchReduce(p *sim.Proc, tag int, sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, op Op, root, allTag int) {
	prim := reducePrim(dt)
	n := int64(count) * dt.Size()
	h := m.w.hier
	myNode := m.rank / h.rpn
	all := allTag >= 0
	lead := m.actingLeader(myNode, root)

	var acc mem.Buffer
	if all || m.rank == root {
		acc = recvBuf.Slice(0, n)
	} else if sendBuf.Kind() == mem.Device {
		acc = m.ringBuf(sendBuf.Space(), n).Slice(0, n)
	} else {
		acc = m.scratch(n).Slice(0, n)
	}
	m.localCopy(p, sendBuf, dt, count, acc, dt, count)

	g := m.nodeGroup(myNode)
	sp := p.BeginBytes("coll.reduce.intra", n)
	m.binomialReduce(p, g, groupIndex(g, lead), acc, dt, count, prim, op, tag)
	sp.End()

	if m.rank == lead {
		sp := p.BeginBytes("coll.reduce.sharp", n)
		host := m.scratch(n).Slice(0, n)
		m.packToHost(p, acc, dt, count, host)
		members := make([]*ib.HCA, h.nodes)
		for nd := range members {
			members[nd] = m.w.hcas[nd]
		}
		res := m.w.fabric.SwitchReduce(p, tag, members, myNode, host.Bytes(), func(a, b []byte) {
			combineBytes(a, b, prim, op)
		})
		if all || m.rank == root {
			copy(host.Bytes(), res)
			m.unpackFromHost(p, acc, dt, count, host)
		}
		m.freeScratch(host)
		sp.End()
	}
	if all {
		sp := p.BeginBytes("coll.bcast.intra", n)
		m.bcastBinomial(p, g, groupIndex(g, lead), acc, dt, count, allTag)
		sp.End()
	}
	if !all && m.rank != root {
		m.releaseAccum(acc)
	}
}
