package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"gpuddt/internal/fault"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
)

// vchaosConfig is a hierarchical world with the rendezvous pipeline
// forced through small fragments, so injected faults land mid-protocol
// inside v-variant staging and nonblocking schedules.
func vchaosConfig(plan *fault.Plan) Config {
	cfg := blockedConfig(2, 2, false)
	cfg.Proto.EagerLimit = 1
	cfg.Proto.FragBytes = 8 << 10
	cfg.Faults = plan
	return cfg
}

// runVChaos launches Iallgatherv + Ialltoallv + Ibarrier concurrently on
// every rank, waits on all of them, and returns each rank's packed
// results (allgatherv blocks then alltoallv blocks).
func runVChaos(t *testing.T, cfg Config) ([][]byte, *World) {
	t.Helper()
	dt := shapes.SubMatrix(16, 8, 12)
	size := len(cfg.Ranks)
	agc := make([]int, size)
	for r := range agc {
		agc[r] = (r + 1) % 3 // includes a zero block
	}
	agd, agspan := packedDispls(dt, agc)
	sc := irregularCounts(size)
	rc := transposeCounts(sc)
	w := NewWorld(cfg)
	imgs := make([][]byte, size)
	outstanding := make([]int, size)
	w.Run(func(m *Rank) {
		me := m.Rank()
		gbuf := m.Malloc(agspan)
		if agc[me] > 0 {
			mem.FillPattern(vslot(gbuf, dt, agc[me], agd[me]), uint64(8000+me))
		}
		sd, sspan := packedDispls(dt, sc[me])
		rd, rspan := packedDispls(dt, rc[me])
		vs, vr := m.Malloc(sspan), m.Malloc(rspan)
		for j := 0; j < size; j++ {
			if sc[me][j] > 0 {
				mem.FillPattern(vslot(vs, dt, sc[me][j], sd[j]), uint64(8100+me*size+j))
			}
		}
		r1 := m.Iallgatherv(gbuf, agc, agd, dt)
		r2 := m.Ialltoallv(vs, sc[me], sd, dt, vr, rc[me], rd, dt)
		r3 := m.Ibarrier()
		m.WaitAll(r1, r2, r3)
		outstanding[me] = m.CollOutstanding()
		for r := 0; r < size; r++ {
			if agc[r] > 0 {
				imgs[me] = append(imgs[me], cpuPack(dt, agc[r], vslot(gbuf, dt, agc[r], agd[r]).Bytes())...)
			}
			if rc[me][r] > 0 {
				imgs[me] = append(imgs[me], cpuPack(dt, rc[me][r], vslot(vr, dt, rc[me][r], rd[r]).Bytes())...)
			}
		}
	})
	for r := 0; r < size; r++ {
		if outstanding[r] != 0 {
			t.Fatalf("rank %d: %d collectives outstanding after WaitAll", r, outstanding[r])
		}
	}
	return imgs, w
}

// TestVCollChaosTransient injects transient faults into the concurrent
// nonblocking v-variant sweep and requires full recovery: results
// byte-identical to the clean run, at least one fault actually fired,
// and every staging pool quiescent after WaitAll.
func TestVCollChaosTransient(t *testing.T) {
	clean, cw := runVChaos(t, vchaosConfig(nil))
	if n := cw.Faults().Total(); n != 0 {
		t.Fatalf("clean run injected %d faults", n)
	}
	cw.Close()
	for _, seed := range []uint64{5, 23} {
		plan := fault.NewPlan(seed, 0.05)
		got, w := runVChaos(t, vchaosConfig(plan))
		if w.Faults().Total() == 0 {
			t.Fatalf("seed %d: no faults injected; chaos run is vacuous", seed)
		}
		for r := range got {
			if !bytes.Equal(got[r], clean[r]) {
				t.Fatalf("seed %d: rank %d result differs from clean run", seed, r)
			}
		}
		checkQuiescent(t, w, fmt.Sprintf("vcoll chaos seed %d", seed))
		w.Close()
	}
}

// TestVCollChaosPersistentIPC makes every CUDA IPC open fail
// permanently: the intra-node tier of the v-variant schedules must fall
// back to staged copies, yet the concurrent nonblocking sweep still
// completes byte-identically and leak-free.
func TestVCollChaosPersistentIPC(t *testing.T) {
	clean, cw := runVChaos(t, vchaosConfig(nil))
	cw.Close()
	plan := fault.NewPlan(29, 0)
	plan.Persistent[fault.IPCOpen] = true
	got, w := runVChaos(t, vchaosConfig(plan))
	for r := range got {
		if !bytes.Equal(got[r], clean[r]) {
			t.Fatalf("rank %d result differs from clean run under persistent IPC failure", r)
		}
	}
	checkQuiescent(t, w, "vcoll persistent-ipc")
	w.Close()
}
