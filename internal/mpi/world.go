// Package mpi implements a miniature MPI runtime over the simulated
// cluster, mirroring the Open MPI layering the paper integrates with
// (§4): a PML doing tag matching and protocol selection (eager vs
// rendezvous), BTL-level active-message channels (shared memory and
// InfiniBand), and pluggable data-transfer strategies. The default
// strategy implements the paper's pipelined RDMA and copy-in/out
// protocols on top of the core GPU datatype engine; the MVAPICH-style
// baseline lives in internal/baseline.
package mpi

import (
	"fmt"

	"gpuddt/internal/core"
	"gpuddt/internal/fault"
	"gpuddt/internal/gpu"
	"gpuddt/internal/ib"
	"gpuddt/internal/mem"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

// Placement locates one rank on the cluster.
type Placement struct {
	Node int
	GPU  int // default GPU for this rank
}

// Config describes the simulated cluster and runtime tuning.
type Config struct {
	// Ranks places each rank; len(Ranks) is the world size.
	Ranks []Placement

	// Nodes is the number of nodes; GPUsPerNode sizes each node.
	Nodes       int
	GPUsPerNode int

	// Hardware calibrations; zero values select defaults.
	GPU  gpu.Params
	PCIe pcie.Params
	IB   ib.Params

	// Engine configures the GPU datatype engine of every rank.
	Engine core.Options

	// Tuning bundles every protocol knob — eager threshold, pipeline
	// geometry, collective algorithm family, transfer strategy. Nil
	// selects the defaults, or the deprecated Proto/Strategy fields
	// below when those are set. Construct one via cluster.Spec (which
	// can load it from a persisted tuning table, see internal/tune).
	Tuning *Tuning

	// Proto tunes the PML/BTL protocols.
	//
	// Deprecated: set Tuning instead. Ignored when Tuning is non-nil.
	Proto ProtoOptions

	// Strategy overrides the rendezvous data-transfer strategy
	// (default: the paper's pipelined protocols).
	//
	// Deprecated: set Tuning.Strategy instead. Consulted as a fallback
	// when Tuning is nil or Tuning.Strategy is nil.
	Strategy Strategy

	// Faults installs a deterministic fault plan on every substrate
	// (IB fabric, PCIe nodes, GPUs). Nil — the default — keeps every
	// operation infallible and the simulated timeline byte-identical
	// to a build without the fault subsystem.
	Faults *fault.Plan
}

// ProtoOptions tune the communication protocols.
//
// Deprecated: use Tuning. ProtoOptions cannot distinguish an explicit
// EagerLimit of 0 from "unset" (Tuning.Eager's pointer can) and keeps
// the collective choice as a lone bool; it remains only so existing
// configs stay byte-identical.
type ProtoOptions struct {
	// EagerLimit is the largest packed size sent eagerly (default 64 KiB).
	EagerLimit int64

	// FragBytes is the pipeline fragment size (default 1 MiB).
	FragBytes int64

	// PipelineDepth is the number of ring slots (default 4).
	PipelineDepth int

	// DirectRemoteUnpack makes the receiver unpack straight out of the
	// sender's device memory instead of first copying each packed
	// fragment into local GPU memory. The default (false) is the staged
	// copy, which the paper measures as 5-10% faster (§5.2.1); the
	// direct mode exists for that ablation.
	DirectRemoteUnpack bool

	// AMLatency is the shared-memory active-message latency.
	AMLatency sim.Time

	// RemoteAccessEff derates PCIe efficiency when a kernel accesses
	// remote device memory directly (many small scattered reads).
	RemoteAccessEff float64

	// FlatCollectives forces the topology-blind collective algorithms
	// even when the rank layout supports the hierarchical ones. Used by
	// conformance (byte-identity against the flat baseline) and by the
	// scaling benchmark's flat arm.
	FlatCollectives bool
}

// World is a running simulated MPI job.
type World struct {
	eng    *sim.Engine
	cfg    Config
	tun    resolvedTuning // effective knobs; see resolveTuning
	nodes  []*pcie.Node
	fabric *ib.Fabric
	hcas   []*ib.HCA
	ranks  []*Rank
	hier   hierarchy
	faults *fault.Injector // nil when cfg.Faults is nil
	wins   [][]mem.Buffer  // RMA window registry: wins[id][rank]

	groupSeq int // next Group id; each group owns its own tag block
}

// hierarchy is the node grouping the topology-aware collectives run
// over. It is only recognized for a blocked uniform layout — rank r on
// node r/rpn — because the hierarchical algorithms aggregate each
// node's slots as one contiguous slab; any other layout (or a single
// node, or one rank per node) keeps the zero value and the collectives
// stay flat.
type hierarchy struct {
	nodes int // nodes hosting ranks
	rpn   int // ranks per node
}

func detectHierarchy(ranks []Placement) hierarchy {
	nodes := 0
	for _, pl := range ranks {
		if pl.Node >= nodes {
			nodes = pl.Node + 1
		}
	}
	if nodes == 0 || len(ranks)%nodes != 0 {
		return hierarchy{}
	}
	rpn := len(ranks) / nodes
	for r, pl := range ranks {
		if pl.Node != r/rpn {
			return hierarchy{}
		}
	}
	return hierarchy{nodes: nodes, rpn: rpn}
}

// TopologyAware reports whether the world's collectives run the
// hierarchical (leader-based) algorithms rather than the flat ones.
func (w *World) TopologyAware() bool {
	return w.hier.nodes > 1 && w.hier.rpn > 1 && w.tun.coll != CollFlat
}

// NewWorld builds the cluster and one Rank per placement.
func NewWorld(cfg Config) *World {
	if len(cfg.Ranks) == 0 {
		panic("mpi: no ranks")
	}
	if cfg.Nodes == 0 {
		for _, pl := range cfg.Ranks {
			if pl.Node >= cfg.Nodes {
				cfg.Nodes = pl.Node + 1
			}
		}
	}
	if cfg.GPUsPerNode == 0 {
		cfg.GPUsPerNode = 1
		for _, pl := range cfg.Ranks {
			if pl.GPU >= cfg.GPUsPerNode {
				cfg.GPUsPerNode = pl.GPU + 1
			}
		}
	}
	if cfg.GPU.Name == "" {
		cfg.GPU = gpu.KeplerK40()
	}
	if cfg.PCIe.RootGBps == 0 {
		cfg.PCIe = pcie.DefaultParams()
	}
	if cfg.IB.WireGBps == 0 {
		cfg.IB = ib.DefaultParams()
	}
	w := &World{eng: sim.NewEngine(), cfg: cfg}
	w.tun = resolveTuning(&cfg)
	w.hier = detectHierarchy(cfg.Ranks)
	w.faults = fault.NewInjector(cfg.Faults)
	w.fabric = ib.NewFabric(w.eng, cfg.IB)
	w.fabric.SetFaults(w.faults)
	for n := 0; n < cfg.Nodes; n++ {
		node := pcie.NewNode(w.eng, n, cfg.GPUsPerNode, cfg.GPU, cfg.PCIe)
		node.SetFaults(w.faults)
		w.nodes = append(w.nodes, node)
		w.hcas = append(w.hcas, w.fabric.Attach(node))
	}
	for r, pl := range cfg.Ranks {
		if pl.Node >= cfg.Nodes || pl.GPU >= cfg.GPUsPerNode {
			panic(fmt.Sprintf("mpi: rank %d placement out of range", r))
		}
		w.ranks = append(w.ranks, newRank(w, r, pl))
	}
	// Per-node routers deliver HCA arrivals to the addressed rank's
	// active-message inbox.
	for n := range w.nodes {
		hca := w.hcas[n]
		w.eng.SpawnDaemon(fmt.Sprintf("node%d.ibrouter", n), func(p *sim.Proc) {
			for {
				m := hca.Inbox().Get(p).(routed)
				m.dst.inbox.Put(m.am)
			}
		})
	}
	return w
}

// Engine returns the simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Faults returns the world's fault injector (nil without a plan), for
// post-run inspection of injected-fault counts.
func (w *World) Faults() *fault.Injector { return w.faults }

// Close recycles every node's memory backing into the slab pool (see
// mem.Space.Release). Call it when the world is finished — after Run
// has returned and results have been copied out — and do not touch the
// world, its ranks, or any Buffer afterwards. Benchmarks that churn
// through many short-lived worlds depend on this to avoid re-zeroing
// hundreds of MB of fresh memory per world.
func (w *World) Close() {
	for _, n := range w.nodes {
		n.Release()
	}
}

// FootprintBytes returns the real memory backing the world's simulated
// address spaces, summed over every node (host plus device). This is
// what the scale sweep reports as the per-rank memory of the
// real-payload arm, against which the modelled-payload flyweight
// worlds (internal/model, Result.StateBytes) are compared. Call before
// Close — a released world's backing has returned to the slab pool.
func (w *World) FootprintBytes() int64 {
	var total int64
	for _, n := range w.nodes {
		total += n.FootprintBytes()
	}
	return total
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Node returns node n.
func (w *World) Node(n int) *pcie.Node { return w.nodes[n] }

// RankHandle returns rank r's handle (for inspection after Run).
func (w *World) RankHandle(r int) *Rank { return w.ranks[r] }

// Run executes fn once per rank (as concurrent simulated processes) and
// drives the simulation to completion.
func (w *World) Run(fn func(m *Rank)) {
	for _, r := range w.ranks {
		r := r
		w.eng.Spawn(fmt.Sprintf("rank%d", r.rank), func(p *sim.Proc) {
			r.p = p
			fn(r)
		})
	}
	w.eng.Run()
}
