package mpi

import (
	"bytes"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
)

func TestPutGPUTriangularIntoWindow(t *testing.T) {
	for _, cfg := range []Config{twoRanksSameGPU(), twoRanksTwoGPUs(), twoNodes()} {
		dt := shapes.LowerTriangular(256)
		w := NewWorld(cfg)
		var sentImg, gotImg []byte
		w.Run(func(m *Rank) {
			win := m.WinCreate(m.Malloc(layoutSpan(dt, 1)))
			if m.Rank() == 0 {
				src := m.Malloc(layoutSpan(dt, 1))
				mem.FillPattern(src, 21)
				sentImg = cpuPack(dt, 1, src.Bytes())
				win.Put(src, dt, 1, 1, 0, dt, 1)
				win.Fence()
			} else {
				win.Fence()
				gotImg = cpuPack(dt, 1, win.Buffer().Bytes())
			}
		})
		if !bytes.Equal(sentImg, gotImg) {
			t.Fatalf("put data mismatch")
		}
	}
}

func TestPutReshapesLayout(t *testing.T) {
	// Origin sends a strided vector; the target window stores it
	// contiguously at a displacement.
	n := 256
	vec := shapes.SubMatrix(n, n/2, n)
	contig := datatype.Contiguous(n*n/2, datatype.Float64)
	w := NewWorld(twoRanksTwoGPUs())
	var sentImg, gotImg []byte
	const disp = 4096
	w.Run(func(m *Rank) {
		win := m.WinCreate(m.Malloc(disp + contig.Size()))
		if m.Rank() == 0 {
			src := m.Malloc(layoutSpan(vec, 1))
			mem.FillPattern(src, 8)
			sentImg = cpuPack(vec, 1, src.Bytes())
			win.Put(src, vec, 1, 1, disp, contig, 1)
			win.Fence()
		} else {
			win.Fence()
			gotImg = append([]byte(nil), win.Buffer().Slice(disp, contig.Size()).Bytes()...)
		}
	})
	if !bytes.Equal(sentImg, gotImg) {
		t.Fatal("reshaped put mismatch")
	}
}

func TestGetGPUVector(t *testing.T) {
	for _, cfg := range []Config{twoRanksTwoGPUs(), twoNodes()} {
		n := 256
		dt := shapes.SubMatrix(n, n/2, n)
		w := NewWorld(cfg)
		var wantImg, gotImg []byte
		w.Run(func(m *Rank) {
			winBuf := m.Malloc(layoutSpan(dt, 1))
			if m.Rank() == 1 {
				mem.FillPattern(winBuf, 77)
				wantImg = cpuPack(dt, 1, winBuf.Bytes())
			}
			win := m.WinCreate(winBuf)
			if m.Rank() == 0 {
				dst := m.Malloc(layoutSpan(dt, 1))
				win.Get(dst, dt, 1, 1, 0, dt, 1)
				win.Fence()
				gotImg = cpuPack(dt, 1, dst.Bytes())
			} else {
				win.Fence()
			}
		})
		if !bytes.Equal(wantImg, gotImg) {
			t.Fatal("get data mismatch")
		}
	}
}

func TestFenceEpochsSequence(t *testing.T) {
	// Two epochs: put in epoch 1, overwrite in epoch 2; reader sees the
	// final value after the second fence.
	dt := datatype.Contiguous(100000, datatype.Float64)
	w := NewWorld(twoRanksTwoGPUs())
	var got byte
	w.Run(func(m *Rank) {
		win := m.WinCreate(m.MallocHost(dt.Size()))
		if m.Rank() == 0 {
			a := m.MallocHost(dt.Size())
			mem.Fill(a, 0x11)
			win.Put(a, dt, 1, 1, 0, dt, 1)
			win.Fence()
			mem.Fill(a, 0x22)
			win.Put(a, dt, 1, 1, 0, dt, 1)
			win.Fence()
		} else {
			win.Fence()
			win.Fence()
			got = win.Buffer().Bytes()[0]
		}
	})
	if got != 0x22 {
		t.Fatalf("window byte = %x, want 22", got)
	}
}

func TestRMASignatureMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w := NewWorld(twoRanksSameGPU())
	w.Run(func(m *Rank) {
		win := m.WinCreate(m.MallocHost(1024))
		if m.Rank() == 0 {
			win.Put(m.MallocHost(1024), datatype.Contiguous(128, datatype.Float64), 1,
				1, 0, datatype.Contiguous(256, datatype.Float32), 1) // f64 vs f32
		}
		win.Fence()
	})
}

func TestConcurrentPutsToDistinctRegions(t *testing.T) {
	// Ranks 1..3 all put into disjoint regions of rank 0's window in the
	// same epoch.
	dt := datatype.Contiguous(100000, datatype.Byte)
	w := NewWorld(fourRanks())
	var final []byte
	w.Run(func(m *Rank) {
		win := m.WinCreate(m.MallocHost(3 * dt.Size()))
		if m.Rank() != 0 {
			src := m.MallocHost(dt.Size())
			mem.Fill(src, byte(0x30+m.Rank()))
			win.Put(src, dt, 1, 0, int64(m.Rank()-1)*dt.Size(), dt, 1)
		}
		win.Fence()
		if m.Rank() == 0 {
			final = append([]byte(nil), win.Buffer().Bytes()...)
		}
	})
	for r := 1; r < 4; r++ {
		seg := final[(r-1)*int(dt.Size()) : r*int(dt.Size())]
		for i, b := range seg {
			if b != byte(0x30+r) {
				t.Fatalf("rank %d region byte %d = %x", r, i, b)
			}
		}
	}
}
