package mpi

import (
	"bytes"
	"sync"
	"testing"

	"gpuddt/internal/fault"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// chaosProto forces the rendezvous pipeline through many small
// fragments so faults land mid-protocol, not just at the handshake.
func chaosProto() ProtoOptions {
	return ProtoOptions{EagerLimit: 1, FragBytes: 8 << 10}
}

// chaosXfer runs one non-contiguous GPU-to-GPU transfer under the given
// fault plan and returns the world (post-run) plus whether the payload
// arrived intact.
func chaosXfer(t *testing.T, cfg Config, rec **sim.Recorder) (*World, bool) {
	t.Helper()
	dt := shapes.SubMatrix(128, 128, 256) // 16 KiB packed, strided
	count := 4
	w := NewWorld(cfg)
	if rec != nil {
		*rec = sim.NewRecorder(w.Engine())
	}
	var sent, got []byte
	w.Run(func(m *Rank) {
		switch m.Rank() {
		case 0:
			buf := m.Malloc(layoutSpan(dt, count))
			mem.FillPattern(buf, 42)
			sent = cpuPack(dt, count, buf.Bytes())
			m.Send(buf, dt, count, 1, 9)
		case 1:
			buf := m.Malloc(layoutSpan(dt, count))
			m.Recv(buf, dt, count, 0, 9)
			got = cpuPack(dt, count, buf.Bytes())
		}
	})
	return w, bytes.Equal(sent, got)
}

func TestChaosTransientFaultsRecovered(t *testing.T) {
	cfg := twoRanksTwoGPUs()
	cfg.Proto = chaosProto()
	cfg.Faults = fault.NewPlan(7, 0.15)
	var rec *sim.Recorder
	w, ok := chaosXfer(t, cfg, &rec)
	if !ok {
		t.Fatal("payload corrupted under transient faults")
	}
	if w.Faults().Total() == 0 {
		t.Fatal("plan at rate 0.15 injected nothing; chaos run is vacuous")
	}
	if rec.Counter("mpi.retry") == 0 && rec.Counter("gpu.launch.retry") == 0 {
		t.Fatal("faults injected but no retry recorded")
	}
}

// TestChaosScratchNoLeak aborts a zero-copy attempt mid-protocol (the
// persistent P2P fault forces the ring handoff to fail) and asserts the
// abandoned attempt returned every scratch and ring slab to its pool.
func TestChaosScratchNoLeak(t *testing.T) {
	cfg := twoRanksTwoGPUs()
	cfg.Proto = chaosProto()
	cfg.Faults = fault.NewPlan(11, 0)
	cfg.Faults.Persistent[fault.IPCOpen] = true
	var rec *sim.Recorder
	w, ok := chaosXfer(t, cfg, &rec)
	if !ok {
		t.Fatal("payload corrupted across protocol fallback")
	}
	if rec.Counter("mpi.fallback") == 0 {
		t.Fatal("persistent P2P fault did not downgrade the protocol")
	}
	for r := 0; r < w.Size(); r++ {
		rk := w.RankHandle(r)
		if out := rk.ScratchOutstanding(); out != 0 {
			t.Errorf("rank %d: %d scratch buffers leaked", r, out)
		}
		if out := rk.RingOutstanding(); out != 0 {
			t.Errorf("rank %d: %d ring buffers leaked", r, out)
		}
	}
}

// TestChaosDeterminism pins the fault subsystem's core contract: the
// same plan seed yields a bit-identical run — same virtual end time,
// same per-site injection counts — no matter how often it repeats.
func TestChaosDeterminism(t *testing.T) {
	run := func(seed uint64) (sim.Time, map[fault.Site]int64) {
		cfg := twoRanksTwoGPUs()
		cfg.Proto = chaosProto()
		cfg.Faults = fault.NewPlan(seed, 0.12)
		w, ok := chaosXfer(t, cfg, nil)
		if !ok {
			t.Fatal("payload corrupted")
		}
		return w.Engine().Now(), w.Faults().Injected()
	}
	t1, c1 := run(3)
	t2, c2 := run(3)
	if t1 != t2 {
		t.Fatalf("same seed, different end times: %v vs %v", t1, t2)
	}
	if len(c1) != len(c2) {
		t.Fatalf("same seed, different injection sites: %v vs %v", c1, c2)
	}
	for s, n := range c1 {
		if c2[s] != n {
			t.Fatalf("same seed, site %s injected %d vs %d", s, n, c2[s])
		}
	}
}

// TestChaosConcurrentRetries runs chaotic worlds on parallel goroutines
// (the shape of the parallel bench driver) so the race detector can see
// any shared mutable state on the retry/fallback paths.
func TestChaosConcurrentRetries(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := twoRanksTwoGPUs()
			cfg.Proto = chaosProto()
			cfg.Faults = fault.NewPlan(uint64(100+i), 0.1)
			if i%2 == 1 {
				cfg.Faults.Persistent[fault.IPCOpen] = true
			}
			if _, ok := chaosXfer(t, cfg, nil); !ok {
				errs <- "payload corrupted"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
