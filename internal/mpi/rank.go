package mpi

import (
	"fmt"

	"gpuddt/internal/core"
	"gpuddt/internal/cuda"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Rank is one MPI process. The function passed to World.Run receives its
// Rank and calls the communication API on it; all API methods must be
// invoked from that function's process.
type Rank struct {
	w     *World
	rank  int
	place Placement
	ctx   *cuda.Ctx
	engs  []*core.Engine
	p     *sim.Proc // the rank's main process (set by Run)

	inbox          *sim.Mailbox // active-message delivery queue
	chans          []*Channel   // per-peer outgoing channels
	seq            int64        // message sequence for diagnostics
	posted         []*postedRecv
	unexp          []*rtsMsg // unexpected arrivals awaiting a recv
	scratchPool    []mem.Buffer
	scratchPooled  int64 // bytes currently retained in scratchPool
	scratchPeak    int64 // high-water mark of retained bytes
	scratchLargest int64 // largest single scratch request seen
	scratchOut     int64 // scratch buffers handed out, not yet returned
	ringPool       map[*mem.Space][]mem.Buffer
	ringOut        int64 // ring buffers handed out, not yet returned

	barrierSeq int
	collSeq    int
	winSeq     int
	barrierBox *sim.Mailbox

	collOut  int // nonblocking collectives in flight (see CollOutstanding)
	icollSeq int // nonblocking collectives started, for process names
}

func newRank(w *World, r int, pl Placement) *Rank {
	node := w.nodes[pl.Node]
	rk := &Rank{
		w:          w,
		rank:       r,
		place:      pl,
		ctx:        cuda.NewCtx(node),
		inbox:      w.eng.NewMailbox(fmt.Sprintf("rank%d.am", r)),
		barrierBox: w.eng.NewMailbox(fmt.Sprintf("rank%d.barrier", r)),
	}
	for g := 0; g < node.NumGPUs(); g++ {
		rk.engs = append(rk.engs, core.New(rk.ctx, g, w.cfg.Engine))
	}
	// Progress daemon: executes incoming active messages in order.
	w.eng.SpawnDaemon(fmt.Sprintf("rank%d.progress", r), func(p *sim.Proc) {
		for {
			am := rk.inbox.Get(p).(amsg)
			am.fn(p)
		}
	})
	return rk
}

// Rank returns the process's rank.
func (m *Rank) Rank() int { return m.rank }

// World returns the world this rank belongs to.
func (m *Rank) World() *World { return m.w }

// ScratchHost hands out a pooled host bounce buffer of at least n bytes
// (for alternative strategies' staging).
func (m *Rank) ScratchHost(n int64) mem.Buffer { return m.scratch(n) }

// FreeScratchHost returns a ScratchHost buffer to the pool.
func (m *Rank) FreeScratchHost(b mem.Buffer) { m.freeScratch(b) }

// ScratchStats reports the scratch pool's currently retained bytes and
// the high-water mark of retained bytes over the rank's lifetime.
func (m *Rank) ScratchStats() (pooled, peak int64) { return m.scratchPooled, m.scratchPeak }

// ScratchOutstanding reports scratch buffers handed out and not yet
// returned to the pool. After a quiescent point (all requests waited
// on) it must be zero — anything else is a leak, e.g. a protocol
// attempt abandoned on a fault without releasing its staging.
func (m *Rank) ScratchOutstanding() int64 { return m.scratchOut }

// RingOutstanding is ScratchOutstanding for the staging-ring pool.
func (m *Rank) RingOutstanding() int64 { return m.ringOut }

// CPUPack packs host-resident (buf, dt, count) into dst on the CPU,
// charging the host memory bus.
func (m *Rank) CPUPack(p *sim.Proc, buf mem.Buffer, dt *datatype.Datatype, count int, dst mem.Buffer) {
	c := datatype.NewConverter(dt, count)
	m.ctx.Node().HostBus().Transfer(p, 2*c.Total())
	c.Pack(dst.Bytes(), buf.Bytes())
}

// CPUUnpack is the inverse of CPUPack. src may hold fewer packed bytes
// than the full layout (a partial receive); the bus is charged for the
// bytes actually moved.
func (m *Rank) CPUUnpack(p *sim.Proc, buf mem.Buffer, dt *datatype.Datatype, count int, src mem.Buffer) {
	c := datatype.NewConverter(dt, count)
	n := src.Len()
	if t := c.Total(); n > t {
		n = t
	}
	m.ctx.Node().HostBus().Transfer(p, 2*n)
	c.Unpack(buf.Bytes(), src.Bytes())
}

// Size returns the world size.
func (m *Rank) Size() int { return len(m.w.ranks) }

// Proc returns the rank's main simulated process.
func (m *Rank) Proc() *sim.Proc { return m.p }

// Now returns the current virtual time.
func (m *Rank) Now() sim.Time { return m.p.Now() }

// Ctx returns the rank's CUDA context.
func (m *Rank) Ctx() *cuda.Ctx { return m.ctx }

// GPUEngine returns the GPU datatype engine for device dev on the
// rank's node.
func (m *Rank) GPUEngine(dev int) *core.Engine { return m.engs[dev] }

// Engine returns the datatype engine of the rank's default GPU.
func (m *Rank) Engine() *core.Engine { return m.engs[m.place.GPU] }

// Malloc allocates device memory on the rank's default GPU.
func (m *Rank) Malloc(n int64) mem.Buffer { return m.ctx.Malloc(m.place.GPU, n) }

// MallocHost allocates host memory on the rank's node.
func (m *Rank) MallocHost(n int64) mem.Buffer { return m.ctx.MallocHost(n) }

// channel returns (building lazily) the outgoing channel to peer.
func (m *Rank) channel(peer int) *Channel {
	for len(m.chans) < len(m.w.ranks) {
		m.chans = append(m.chans, nil)
	}
	if m.chans[peer] == nil {
		m.chans[peer] = newChannel(m.w, m, m.w.ranks[peer])
	}
	return m.chans[peer]
}

// Send performs a blocking standard-mode send of count elements of dt
// from buf (whose byte 0 is the datatype origin; device or host memory).
func (m *Rank) Send(buf mem.Buffer, dt *datatype.Datatype, count, dest, tag int) {
	m.Isend(buf, dt, count, dest, tag).Wait(m.p)
}

// Recv performs a blocking receive into buf.
func (m *Rank) Recv(buf mem.Buffer, dt *datatype.Datatype, count, source, tag int) {
	m.Irecv(buf, dt, count, source, tag).Wait(m.p)
}

// sendOn / recvOn are Send/Recv driven from an explicit process, for
// collective schedules that may run on a spawned progress process
// instead of the rank's main one.
func (m *Rank) sendOn(p *sim.Proc, buf mem.Buffer, dt *datatype.Datatype, count, dest, tag int) {
	m.isendOn(p, buf, dt, count, dest, tag).Wait(p)
}

func (m *Rank) recvOn(p *sim.Proc, buf mem.Buffer, dt *datatype.Datatype, count, source, tag int) {
	m.Irecv(buf, dt, count, source, tag).Wait(p)
}

// SendRecv exchanges messages with the two peers without deadlocking.
func (m *Rank) SendRecv(
	sendBuf mem.Buffer, sendType *datatype.Datatype, sendCount, dest, sendTag int,
	recvBuf mem.Buffer, recvType *datatype.Datatype, recvCount, source, recvTag int,
) {
	s := m.Isend(sendBuf, sendType, sendCount, dest, sendTag)
	r := m.Irecv(recvBuf, recvType, recvCount, source, recvTag)
	s.Wait(m.p)
	r.Wait(m.p)
}

// Barrier blocks until every rank has entered it (linear gather/release
// through rank 0; adequate for the benchmark harness).
func (m *Rank) Barrier() {
	m.barrierSeq++
	if m.Size() == 1 {
		return
	}
	if m.rank == 0 {
		for i := 1; i < m.Size(); i++ {
			m.barrierBox.Get(m.p)
		}
		for i := 1; i < m.Size(); i++ {
			peer := m.w.ranks[i]
			m.channel(i).AM(m.p, amHeaderBytes, func(p *sim.Proc) {
				peer.barrierBox.Put(struct{}{})
			})
		}
	} else {
		root := m.w.ranks[0]
		m.channel(0).AM(m.p, amHeaderBytes, func(p *sim.Proc) {
			root.barrierBox.Put(struct{}{})
		})
		m.barrierBox.Get(m.p)
	}
}
