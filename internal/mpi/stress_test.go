package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
)

// TestExtremeProtoOptions drives the protocols far from their defaults:
// one-slot pipelines, tiny fragments, zero eager limit.
func TestExtremeProtoOptions(t *testing.T) {
	dt := shapes.LowerTriangular(192)
	for _, proto := range []ProtoOptions{
		{PipelineDepth: 1},
		{FragBytes: 4096},
		{FragBytes: 4096, PipelineDepth: 1},
		{EagerLimit: 1},                      // everything rendezvous
		{EagerLimit: 1 << 30},                // everything eager
		{FragBytes: 1 << 26},                 // one fragment for the whole message
		{FragBytes: 4096, PipelineDepth: 16}, // deep, fine-grained
	} {
		proto := proto
		t.Run(fmt.Sprintf("%+v", proto), func(t *testing.T) {
			for _, cfg := range []Config{twoRanksSameGPU(), twoRanksTwoGPUs(), twoNodes()} {
				cfg.Proto = proto
				s, r, _ := runXfer(t, xferSpec{cfg: cfg, sendDt: dt, count: 1, sGPU: true, rGPU: true})
				if !bytes.Equal(s, r) {
					t.Fatal("payload mismatch")
				}
			}
		})
	}
}

// TestManyConcurrentMessages floods a pair of ranks with interleaved
// rendezvous and eager messages on distinct tags, completing out of
// issue order.
func TestManyConcurrentMessages(t *testing.T) {
	const nmsg = 12
	w := NewWorld(twoRanksTwoGPUs())
	sizes := make([]int64, nmsg)
	for i := range sizes {
		if i%2 == 0 {
			sizes[i] = 4 << 10 // eager
		} else {
			sizes[i] = int64(256<<10 + i*4096) // rendezvous
		}
	}
	var sent, got [nmsg][]byte
	w.Run(func(m *Rank) {
		bufs := make([]mem.Buffer, nmsg)
		reqs := make([]*Request, nmsg)
		for i := range bufs {
			bufs[i] = m.Malloc(sizes[i])
		}
		if m.Rank() == 0 {
			for i := range bufs {
				mem.FillPattern(bufs[i], uint64(i+1))
				sent[i] = append([]byte(nil), bufs[i].Bytes()...)
				reqs[i] = m.Isend(bufs[i], datatype.Contiguous(int(sizes[i]), datatype.Byte), 1, 1, i)
			}
		} else {
			// Post receives in reverse order: matching is by tag.
			for i := nmsg - 1; i >= 0; i-- {
				reqs[i] = m.Irecv(bufs[i], datatype.Contiguous(int(sizes[i]), datatype.Byte), 1, 0, i)
			}
		}
		for i := range reqs {
			reqs[i].Wait(m.Proc())
		}
		if m.Rank() == 1 {
			for i := range bufs {
				got[i] = append([]byte(nil), bufs[i].Bytes()...)
			}
		}
	})
	for i := range sent {
		if !bytes.Equal(sent[i], got[i]) {
			t.Fatalf("message %d corrupted", i)
		}
	}
}

// TestBidirectionalSimultaneousRendezvous exchanges large messages both
// ways at once (the ping-ping pattern), which stresses concurrent
// sender and receiver state machines on the same rank.
func TestBidirectionalSimultaneousRendezvous(t *testing.T) {
	dt := shapes.SubMatrix(512, 512, 600)
	for _, cfg := range []Config{twoRanksSameGPU(), twoRanksTwoGPUs(), twoNodes()} {
		w := NewWorld(cfg)
		var img [2][]byte
		var got [2][]byte
		w.Run(func(m *Rank) {
			span := layoutSpan(dt, 1)
			mine := m.Malloc(span)
			theirs := m.Malloc(span)
			mem.FillPattern(mine, uint64(m.Rank()+40))
			img[m.Rank()] = cpuPack(dt, 1, mine.Bytes())
			peer := 1 - m.Rank()
			s := m.Isend(mine, dt, 1, peer, 5)
			r := m.Irecv(theirs, dt, 1, peer, 5)
			s.Wait(m.Proc())
			r.Wait(m.Proc())
			got[peer] = cpuPack(dt, 1, theirs.Bytes())
		})
		for r := 0; r < 2; r++ {
			if !bytes.Equal(img[r], got[r]) {
				t.Fatalf("bidirectional exchange corrupted rank %d's data", r)
			}
		}
	}
}

// TestScratchPoolBounded churns the scratch pool with mixed request
// sizes, including bursts that would once have accumulated unboundedly,
// and asserts best-fit reuse plus a bounded retained-bytes peak.
func TestScratchPoolBounded(t *testing.T) {
	w := NewWorld(twoRanksTwoGPUs())
	w.Run(func(m *Rank) {
		if m.Rank() != 0 {
			return
		}
		const big = 32 << 20

		// Best-fit: a small request after freeing a big buffer must not
		// consume it; the next big request must reuse it.
		bigBuf := m.ScratchHost(big)
		m.FreeScratchHost(bigBuf)
		small := m.ScratchHost(4 << 10)
		if small.Len() >= big {
			t.Errorf("small request took the %d-byte buffer (first-fit behaviour)", big)
		}
		reuse := m.ScratchHost(big)
		if reuse.Space() != bigBuf.Space() || reuse.Addr() != bigBuf.Addr() {
			t.Error("big request did not reuse the pooled big buffer")
		}
		m.FreeScratchHost(small)
		m.FreeScratchHost(reuse)

		// Churn: repeated bursts of concurrent mixed-size requests.
		sizes := []int64{4 << 10, 64 << 10, 1 << 20, 8 << 20, big, 1 << 20, 64 << 10}
		for iter := 0; iter < 40; iter++ {
			var held []mem.Buffer
			for _, n := range sizes {
				held = append(held, m.ScratchHost(n))
			}
			for _, b := range held {
				m.FreeScratchHost(b)
			}
		}
		pooled, peak := m.ScratchStats()
		capBytes := int64(2 * big) // cap follows the largest request
		if peak > capBytes {
			t.Errorf("pooled peak %d exceeds cap %d", peak, capBytes)
		}
		if pooled > peak {
			t.Errorf("pooled %d exceeds recorded peak %d", pooled, peak)
		}
		if peak == 0 {
			t.Error("peak never recorded")
		}
	})
}

// TestSelfSend exercises rank-to-self messaging.
func TestSelfSend(t *testing.T) {
	w := NewWorld(Config{Ranks: []Placement{{Node: 0, GPU: 0}}})
	dt := datatype.Contiguous(200000, datatype.Float64)
	ok := false
	w.Run(func(m *Rank) {
		a := m.Malloc(dt.Size())
		b := m.Malloc(dt.Size())
		mem.FillPattern(a, 3)
		s := m.Isend(a, dt, 1, 0, 0)
		r := m.Irecv(b, dt, 1, 0, 0)
		s.Wait(m.Proc())
		r.Wait(m.Proc())
		ok = mem.Equal(a, b)
	})
	if !ok {
		t.Fatal("self send corrupted data")
	}
}
