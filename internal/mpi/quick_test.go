package mpi

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
)

// randDt builds a random non-overlapping datatype suitable for
// transfers (moderate size, positive displacements).
func randDt(r *rand.Rand) *datatype.Datatype {
	switch r.Intn(6) {
	case 0:
		return datatype.Contiguous(r.Intn(30000)+1000, datatype.Float64)
	case 1:
		cols := r.Intn(60) + 4
		rows := r.Intn(60) + 4
		return shapes.SubMatrix(rows, cols, rows+r.Intn(20))
	case 2:
		return shapes.LowerTriangular(r.Intn(150) + 16)
	case 3:
		n := r.Intn(40) + 4
		bls := make([]int, n)
		displs := make([]int, n)
		pos := 0
		for i := 0; i < n; i++ {
			pos += r.Intn(50)
			displs[i] = pos
			bls[i] = r.Intn(300) + 1
			pos += bls[i]
		}
		return datatype.Indexed(bls, displs, datatype.Float64)
	case 4:
		sz := r.Intn(20) + 8
		sub := r.Intn(sz-2) + 2
		start := r.Intn(sz - sub + 1)
		return datatype.Subarray([]int{sz, sz}, []int{sub, sub}, []int{start, start},
			datatype.OrderFortran, datatype.Float64)
	default:
		return shapes.Transpose(r.Intn(24) + 8)
	}
}

// TestQuickRandomTransfers fuzzes the whole stack: random datatypes,
// random placements (same GPU / two GPUs / two nodes / host memory),
// random protocol tuning — every transfer must be byte-exact.
func TestQuickRandomTransfers(t *testing.T) {
	cfgCount := 60
	if testing.Short() {
		cfgCount = 15
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dt := randDt(r)
		count := r.Intn(2) + 1
		if count > 1 && dt.TrueLB()+dt.TrueExtent() > dt.Extent() {
			count = 1 // avoid overlapping repetitions for sticking-out types
		}

		placements := [][]Placement{
			{{Node: 0, GPU: 0}, {Node: 0, GPU: 0}},
			{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}},
			{{Node: 0, GPU: 0}, {Node: 1, GPU: 0}},
		}[r.Intn(3)]

		proto := ProtoOptions{}
		switch r.Intn(4) {
		case 0:
			proto.FragBytes = int64(r.Intn(1<<19) + 4096)
		case 1:
			proto.PipelineDepth = r.Intn(3) + 1
		case 2:
			proto.EagerLimit = int64(r.Intn(1 << 18))
			proto.DirectRemoteUnpack = r.Intn(2) == 0
		}

		sGPU := r.Intn(2) == 0
		rGPU := r.Intn(2) == 0

		w := NewWorld(Config{Ranks: placements, Proto: proto})
		var sbuf, rbuf mem.Buffer
		w.Run(func(m *Rank) {
			span := layoutSpan(dt, count)
			alloc := func(gpu bool) mem.Buffer {
				if gpu {
					return m.Malloc(span)
				}
				return m.MallocHost(span)
			}
			if m.Rank() == 0 {
				sbuf = alloc(sGPU)
				mem.FillPattern(sbuf, uint64(seed))
				m.Barrier()
				m.Send(sbuf, dt, count, 1, 9)
			} else {
				rbuf = alloc(rGPU)
				m.Barrier()
				m.Recv(rbuf, dt, count, 0, 9)
			}
		})
		want := cpuPack(dt, count, sbuf.Bytes())
		got := cpuPack(dt, count, rbuf.Bytes())
		if !bytes.Equal(want, got) {
			t.Logf("seed %d: dt=%s count=%d placements=%v sGPU=%v rGPU=%v proto=%+v",
				seed, dt.Name(), count, placements, sGPU, rGPU, proto)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: cfgCount}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomReshapes fuzzes asymmetric transfers: the sender's
// datatype differs from the receiver's but the signatures match.
func TestQuickRandomReshapes(t *testing.T) {
	cfgCount := 40
	if testing.Short() {
		cfgCount = 10
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sdt := randDt(r)
		elems := sdt.Size() / 8
		// Receiver sees the same doubles either contiguously or as a
		// vector with a compatible element count.
		var rdt *datatype.Datatype
		if r.Intn(2) == 0 || elems%2 != 0 {
			rdt = datatype.Contiguous(int(elems), datatype.Float64)
		} else {
			rdt = datatype.Vector(int(elems)/2, 2, 2+r.Intn(3), datatype.Float64)
		}
		w := NewWorld(Config{Ranks: []Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}}})
		var sbuf, rbuf mem.Buffer
		w.Run(func(m *Rank) {
			if m.Rank() == 0 {
				sbuf = m.Malloc(layoutSpan(sdt, 1))
				mem.FillPattern(sbuf, uint64(seed)+3)
				m.Barrier()
				m.Send(sbuf, sdt, 1, 1, 0)
			} else {
				rbuf = m.Malloc(layoutSpan(rdt, 1))
				m.Barrier()
				m.Recv(rbuf, rdt, 1, 0, 0)
			}
		})
		if !bytes.Equal(cpuPack(sdt, 1, sbuf.Bytes()), cpuPack(rdt, 1, rbuf.Bytes())) {
			t.Logf("seed %d: %s -> %s", seed, sdt.Name(), rdt.Name())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: cfgCount}); err != nil {
		t.Fatal(err)
	}
}
