package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
)

// Reduce combines count primitives of dt from every rank's sendBuf into
// root's recvBuf. dt must be a contiguous layout of a single primitive
// type (Float64 or Int64). The combine runs as a memory-bound GPU
// kernel when the buffers live in device memory, and on the CPU
// (charging the host bus) otherwise. Topology-aware worlds reduce
// within each node first and then over one leader per node on the IB
// tier — note the different combine association order; exact for Int64
// and OpMax, and for Float64 values whose partial sums are exactly
// representable.
func (m *Rank) Reduce(sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, op Op, root int) {
	m.reduce(m.p, m.tagBlock(m.reduceTags()), sendBuf, recvBuf, dt, count, op, root)
}

func (m *Rank) reduce(p *sim.Proc, tag int, sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, op Op, root int) {
	if m.switchOn() && count > 0 {
		m.switchReduce(p, tag, sendBuf, recvBuf, dt, count, op, root, -1)
		return
	}
	if m.hierOn() && count > 0 {
		m.hierReduce(p, tag, sendBuf, recvBuf, dt, count, op, root)
		return
	}
	m.reduceFlat(p, tag, sendBuf, recvBuf, dt, count, op, root)
}

// reduceFlat is the topology-blind binomial reduction.
func (m *Rank) reduceFlat(p *sim.Proc, tag int, sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, op Op, root int) {
	prim := reducePrim(dt)
	n := int64(count) * dt.Size()
	size := m.Size()

	// Accumulator: root accumulates into recvBuf; interior nodes use a
	// scratch in the same location class as their send buffer.
	var acc mem.Buffer
	if m.rank == root {
		acc = recvBuf.Slice(0, n)
	} else if sendBuf.Kind() == mem.Device {
		acc = m.ringBuf(sendBuf.Space(), n).Slice(0, n)
	} else {
		acc = m.scratch(n).Slice(0, n)
	}
	m.localCopy(p, sendBuf, dt, count, acc, dt, count)
	m.binomialReduce(p, identityGroup(size), root, acc, dt, count, prim, op, tag)
	if m.rank != root {
		m.releaseAccum(acc)
	}
}

// identityGroup returns [0, 1, ..., size).
func identityGroup(size int) []int {
	g := make([]int, size)
	for i := range g {
		g[i] = i
	}
	return g
}

// binomialReduce combines every group member's acc — already holding
// its contribution — into group[rootIdx]'s acc, over a binomial tree
// rotated so the root is virtual rank 0. Per-child messages are tagged
// tag + sender's global rank. Only ranks in group may call it, and all
// of them must.
func (m *Rank) binomialReduce(p *sim.Proc, group []int, rootIdx int, acc mem.Buffer, dt *datatype.Datatype, count int, prim datatype.Primitive, op Op, tag int) {
	size := len(group)
	if size <= 1 {
		return
	}
	me := -1
	for i, r := range group {
		if r == m.rank {
			me = i
			break
		}
	}
	if me < 0 {
		panic("mpi: binomialReduce caller not in group")
	}
	n := acc.Len()
	var tmp mem.Buffer
	vrank := (me - rootIdx + size) % size
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			parent := group[((vrank&^mask)+rootIdx)%size]
			m.sendOn(p, acc, dt, count, parent, tag+m.rank)
			break
		}
		if peer := vrank | mask; peer < size {
			child := group[(peer+rootIdx)%size]
			if !tmp.IsValid() {
				if acc.Kind() == mem.Device {
					tmp = m.ringBuf(acc.Space(), n).Slice(0, n)
				} else {
					tmp = m.scratch(n).Slice(0, n)
				}
			}
			m.recvOn(p, tmp, dt, count, child, tag+child)
			m.combine(p, acc, tmp, prim, op)
		}
		mask <<= 1
	}
	if tmp.IsValid() {
		m.releaseAccum(tmp)
	}
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (m *Rank) Allreduce(sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, op Op) {
	tagR := m.tagBlock(m.reduceTags())
	tagB := m.tagBlock(m.bcastTags())
	m.allreduce(m.p, tagR, tagB, sendBuf, recvBuf, dt, count, op)
}

func (m *Rank) allreduce(p *sim.Proc, tagR, tagB int, sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, op Op) {
	if m.switchOn() && count > 0 {
		// The switch multicasts the result to every node's leader on the
		// way down, so only the intra-node broadcast remains.
		m.switchReduce(p, tagR, sendBuf, recvBuf, dt, count, op, 0, tagB)
		return
	}
	m.reduce(p, tagR, sendBuf, recvBuf, dt, count, op, 0)
	m.bcast(p, tagB, recvBuf, dt, count, 0)
}

func (m *Rank) releaseAccum(b mem.Buffer) {
	if b.Kind() == mem.Device {
		m.releaseRing(b)
	} else {
		m.freeScratch(b)
	}
}

// reducePrim validates the datatype for reduction and returns its
// primitive kind.
func reducePrim(dt *datatype.Datatype) datatype.Primitive {
	if !dt.IsContiguous() {
		panic("mpi: Reduce requires a contiguous datatype")
	}
	sig := dt.Signature()
	if len(sig) != 1 {
		panic("mpi: Reduce requires a single primitive type")
	}
	switch sig[0].Prim {
	case datatype.PrimFloat64, datatype.PrimInt64:
		return sig[0].Prim
	default:
		panic(fmt.Sprintf("mpi: Reduce does not support %v", sig[0].Prim))
	}
}

// combine executes acc = acc (op) other, charging a memory-bound kernel
// on the GPU (2 reads + 1 write per element) or the host bus.
func (m *Rank) combine(p *sim.Proc, acc, other mem.Buffer, prim datatype.Primitive, op Op) {
	n := acc.Len()
	if acc.Kind() == mem.Device {
		dev := m.ctx.Node().GPU(m.ctx.Node().DeviceOf(acc.Space()))
		eng := m.engs[dev.ID()]
		dev.Compute(eng.Stream(), 3*n, 0).Await(p)
	} else {
		m.ctx.Node().HostBus().Transfer(p, 3*n)
	}
	combineBytes(acc.Bytes(), other.Bytes(), prim, op)
}

// combineBytes is the pure byte math of combine: a = a (op) b over
// packed little-endian primitives. Shared with the in-network switch
// reduction, which folds contributions without a Rank in sight.
func combineBytes(a, b []byte, prim datatype.Primitive, op Op) {
	n := int64(len(a))
	for off := int64(0); off+8 <= n; off += 8 {
		switch prim {
		case datatype.PrimFloat64:
			x := math.Float64frombits(binary.LittleEndian.Uint64(a[off:]))
			y := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			binary.LittleEndian.PutUint64(a[off:], math.Float64bits(apply(x, y, op)))
		case datatype.PrimInt64:
			x := int64(binary.LittleEndian.Uint64(a[off:]))
			y := int64(binary.LittleEndian.Uint64(b[off:]))
			r := x + y
			if op == OpMax && y <= x {
				r = x
			} else if op == OpMax {
				r = y
			}
			binary.LittleEndian.PutUint64(a[off:], uint64(r))
		}
	}
}

func apply(x, y float64, op Op) float64 {
	switch op {
	case OpSum:
		return x + y
	case OpMax:
		return math.Max(x, y)
	default:
		panic("mpi: unknown op")
	}
}
