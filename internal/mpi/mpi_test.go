package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// layoutSpan is the memory footprint of (dt, count).
func layoutSpan(dt *datatype.Datatype, count int) int64 {
	if count == 0 {
		return 0
	}
	return int64(count-1)*dt.Extent() + dt.TrueLB() + dt.TrueExtent()
}

func cpuPack(dt *datatype.Datatype, count int, src []byte) []byte {
	c := datatype.NewConverter(dt, count)
	out := make([]byte, c.Total())
	c.Pack(out, src)
	return out
}

// xfer runs a single Send/Recv between rank 0 and rank 1 with the given
// buffers/types and returns the packed images of both sides.
type xferSpec struct {
	cfg    Config
	sendDt *datatype.Datatype
	recvDt *datatype.Datatype
	count  int
	rcount int
	sGPU   bool // sender data on GPU
	rGPU   bool
}

func runXfer(t *testing.T, sp xferSpec) (sentPacked, recvPacked []byte, elapsed sim.Time) {
	t.Helper()
	if sp.rcount == 0 {
		sp.rcount = sp.count
	}
	if sp.recvDt == nil {
		sp.recvDt = sp.sendDt
	}
	w := NewWorld(sp.cfg)
	var sbuf, rbuf mem.Buffer
	var dur sim.Time
	w.Run(func(m *Rank) {
		switch m.Rank() {
		case 0:
			if sp.sGPU {
				sbuf = m.Malloc(layoutSpan(sp.sendDt, sp.count))
			} else {
				sbuf = m.MallocHost(layoutSpan(sp.sendDt, sp.count))
			}
			mem.FillPattern(sbuf, 99)
			m.Barrier()
			t0 := m.Now()
			m.Send(sbuf, sp.sendDt, sp.count, 1, 7)
			dur = m.Now() - t0
		case 1:
			if sp.rGPU {
				rbuf = m.Malloc(layoutSpan(sp.recvDt, sp.rcount))
			} else {
				rbuf = m.MallocHost(layoutSpan(sp.recvDt, sp.rcount))
			}
			mem.Fill(rbuf, 0)
			m.Barrier()
			m.Recv(rbuf, sp.recvDt, sp.rcount, 0, 7)
		}
	})
	elapsed = dur
	return cpuPack(sp.sendDt, sp.count, sbuf.Bytes()), cpuPack(sp.recvDt, sp.rcount, rbuf.Bytes()), elapsed
}

func twoRanksSameGPU() Config {
	return Config{Ranks: []Placement{{0, 0}, {0, 0}}}
}
func twoRanksTwoGPUs() Config {
	return Config{Ranks: []Placement{{0, 0}, {0, 1}}}
}
func twoNodes() Config {
	return Config{Ranks: []Placement{{0, 0}, {1, 0}}}
}

func TestEagerHostToHost(t *testing.T) {
	s, r, _ := runXfer(t, xferSpec{
		cfg:    twoRanksSameGPU(),
		sendDt: datatype.Contiguous(1000, datatype.Float64), // 8 KB: eager
		count:  1,
	})
	if !bytes.Equal(s, r) {
		t.Fatal("eager payload mismatch")
	}
}

func TestEagerGPUToGPU(t *testing.T) {
	s, r, _ := runXfer(t, xferSpec{
		cfg:    twoRanksTwoGPUs(),
		sendDt: shapes.SubMatrix(16, 16, 32), // 2 KB packed
		count:  1, sGPU: true, rGPU: true,
	})
	if !bytes.Equal(s, r) {
		t.Fatal("eager GPU payload mismatch")
	}
}

func rendezvousMatrix(t *testing.T, cfg Config, name string) {
	n := 512 // 2 MB matrix: rendezvous
	layouts := []struct {
		label string
		dt    *datatype.Datatype
	}{
		{"vector", shapes.SubMatrix(n/2, n/2, n)},
		{"triangular", shapes.LowerTriangular(n)},
		{"contiguous", shapes.FullMatrix(n)},
	}
	for _, l := range layouts {
		for _, loc := range []struct {
			label      string
			sGPU, rGPU bool
		}{
			{"g2g", true, true},
			{"g2h", true, false},
			{"h2g", false, true},
			{"h2h", false, false},
		} {
			t.Run(fmt.Sprintf("%s/%s/%s", name, l.label, loc.label), func(t *testing.T) {
				s, r, _ := runXfer(t, xferSpec{cfg: cfg, sendDt: l.dt, count: 1, sGPU: loc.sGPU, rGPU: loc.rGPU})
				if !bytes.Equal(s, r) {
					t.Fatal("payload mismatch")
				}
			})
		}
	}
}

func TestRendezvousSameGPU(t *testing.T) { rendezvousMatrix(t, twoRanksSameGPU(), "1gpu") }
func TestRendezvousTwoGPUs(t *testing.T) { rendezvousMatrix(t, twoRanksTwoGPUs(), "2gpu") }
func TestRendezvousIB(t *testing.T)      { rendezvousMatrix(t, twoNodes(), "ib") }

func TestVectorToContiguousReshape(t *testing.T) {
	// Fig. 11: sender vector, receiver contiguous (and the reverse).
	n := 512
	vec := shapes.SubMatrix(n, n/2, n)
	contig := datatype.Contiguous(n*n/2, datatype.Float64)
	for _, cfg := range []Config{twoRanksSameGPU(), twoRanksTwoGPUs(), twoNodes()} {
		s, r, _ := runXfer(t, xferSpec{cfg: cfg, sendDt: vec, recvDt: contig, count: 1, sGPU: true, rGPU: true})
		if !bytes.Equal(s, r) {
			t.Fatal("vector->contiguous mismatch")
		}
		s, r, _ = runXfer(t, xferSpec{cfg: cfg, sendDt: contig, recvDt: vec, count: 1, sGPU: true, rGPU: true})
		if !bytes.Equal(s, r) {
			t.Fatal("contiguous->vector mismatch")
		}
	}
}

func TestTransposeTransfer(t *testing.T) {
	n := 96
	s, r, _ := runXfer(t, xferSpec{
		cfg:    twoRanksTwoGPUs(),
		sendDt: shapes.Transpose(n),
		recvDt: shapes.FullMatrix(n),
		count:  1, sGPU: true, rGPU: true,
	})
	if !bytes.Equal(s, r) {
		t.Fatal("transpose transfer mismatch")
	}
}

func TestUnexpectedMessageAndWildcards(t *testing.T) {
	w := NewWorld(twoRanksSameGPU())
	var got []byte
	var want []byte
	w.Run(func(m *Rank) {
		if m.Rank() == 0 {
			buf := m.MallocHost(4096)
			mem.FillPattern(buf, 5)
			want = append([]byte(nil), buf.Bytes()...)
			m.Send(buf, datatype.Contiguous(4096, datatype.Byte), 1, 1, 42)
		} else {
			// Delay so the message is unexpected, then wildcard-receive.
			m.Proc().Sleep(5 * sim.Millisecond)
			buf := m.MallocHost(4096)
			m.Recv(buf, datatype.Contiguous(4096, datatype.Byte), 1, AnySource, AnyTag)
			got = append([]byte(nil), buf.Bytes()...)
		}
	})
	if !bytes.Equal(got, want) {
		t.Fatal("unexpected-path payload mismatch")
	}
}

func TestMessageOrderingSameTag(t *testing.T) {
	w := NewWorld(twoRanksSameGPU())
	var first, second byte
	w.Run(func(m *Rank) {
		dt := datatype.Contiguous(1024, datatype.Byte)
		if m.Rank() == 0 {
			a := m.MallocHost(1024)
			b := m.MallocHost(1024)
			mem.Fill(a, 0xAA)
			mem.Fill(b, 0xBB)
			m.Send(a, dt, 1, 1, 3)
			m.Send(b, dt, 1, 1, 3)
		} else {
			a := m.MallocHost(1024)
			b := m.MallocHost(1024)
			m.Recv(a, dt, 1, 0, 3)
			m.Recv(b, dt, 1, 0, 3)
			first, second = a.Bytes()[0], b.Bytes()[0]
		}
	})
	if first != 0xAA || second != 0xBB {
		t.Fatalf("messages reordered: %x %x", first, second)
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	w := NewWorld(twoRanksTwoGPUs())
	dt := shapes.FullMatrix(512)
	ok := true
	w.Run(func(m *Rank) {
		buf := m.Malloc(layoutSpan(dt, 1))
		peer := 1 - m.Rank()
		s := m.Isend(buf, dt, 1, peer, 1)
		r := m.Irecv(m.Malloc(layoutSpan(dt, 1)), dt, 1, peer, 1)
		s.Wait(m.Proc())
		r.Wait(m.Proc())
		if !s.Done() || !r.Done() {
			ok = false
		}
	})
	if !ok {
		t.Fatal("requests not complete after Wait")
	}
}

func TestTruncationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no truncation panic")
		}
	}()
	w := NewWorld(twoRanksSameGPU())
	w.Run(func(m *Rank) {
		dt := datatype.Contiguous(1024, datatype.Byte)
		small := datatype.Contiguous(512, datatype.Byte)
		if m.Rank() == 0 {
			m.Send(m.MallocHost(1024), dt, 1, 1, 0)
		} else {
			m.Recv(m.MallocHost(512), small, 1, 0, 0)
		}
	})
}

func TestOneGPUFasterThanTwoGPUs(t *testing.T) {
	dt := shapes.SubMatrix(1024, 1024, 2048) // 8 MB packed
	_, _, one := runXfer(t, xferSpec{cfg: twoRanksSameGPU(), sendDt: dt, count: 1, sGPU: true, rGPU: true})
	_, _, two := runXfer(t, xferSpec{cfg: twoRanksTwoGPUs(), sendDt: dt, count: 1, sGPU: true, rGPU: true})
	if two < 2*one {
		t.Fatalf("1GPU (%v) should be at least 2x faster than 2GPU (%v)", one, two)
	}
}

func TestPipelineApproachesPCIeBandwidth(t *testing.T) {
	// Fig. 9's premise: the pipelined protocol should push a large vector
	// near the PCIe bandwidth between two GPUs. Run a few iterations so
	// the DEV cache and IPC mappings are warm.
	n := 2048
	dt := shapes.SubMatrix(n, n, n) // 32 MB
	w := NewWorld(twoRanksTwoGPUs())
	var per sim.Time
	iters := 4
	w.Run(func(m *Rank) {
		span := layoutSpan(dt, 1)
		buf := m.Malloc(span)
		if m.Rank() == 0 {
			m.Barrier()
			for i := 0; i < iters+1; i++ {
				if i == 1 {
					per = m.Now() // skip warmup iteration
				}
				m.Send(buf, dt, 1, 1, i)
			}
			per = (m.Now() - per) / sim.Time(iters)
		} else {
			m.Barrier()
			for i := 0; i < iters+1; i++ {
				m.Recv(buf, dt, 1, 0, i)
			}
		}
	})
	bw := sim.GBps(dt.Size(), per)
	peer := 10.5 * 10 / 10.5 // bottleneck is the slot link at 10.5, root not involved for P2P
	if bw < 0.80*peer {
		t.Fatalf("pipelined vector bandwidth %.2f GB/s, want >= 80%% of %v", bw, peer)
	}
	t.Logf("P2P pipelined vector bandwidth: %.2f GB/s (%.0f%% of peak)", bw, 100*bw/10.5)
}

func TestIBPipelineApproachesWire(t *testing.T) {
	n := 2048
	dt := shapes.SubMatrix(n, n, n)
	w := NewWorld(twoNodes())
	var per sim.Time
	iters := 4
	w.Run(func(m *Rank) {
		buf := m.Malloc(layoutSpan(dt, 1))
		if m.Rank() == 0 {
			m.Barrier()
			for i := 0; i < iters+1; i++ {
				if i == 1 {
					per = m.Now()
				}
				m.Send(buf, dt, 1, 1, i)
			}
			per = (m.Now() - per) / sim.Time(iters)
		} else {
			m.Barrier()
			for i := 0; i < iters+1; i++ {
				m.Recv(buf, dt, 1, 0, i)
			}
		}
	})
	bw := sim.GBps(dt.Size(), per)
	if bw < 0.80*6.0 {
		t.Fatalf("IB pipelined vector bandwidth %.2f GB/s, want >= 80%% of 6", bw)
	}
	t.Logf("IB pipelined vector bandwidth: %.2f GB/s", bw)
}

func TestDirectRemoteUnpackSlower(t *testing.T) {
	dt := shapes.LowerTriangular(1536)
	staged := xferSpec{cfg: twoRanksTwoGPUs(), sendDt: dt, count: 1, sGPU: true, rGPU: true}
	direct := staged
	direct.cfg.Proto.DirectRemoteUnpack = true
	_, _, ts := runXfer(t, staged)
	_, _, td := runXfer(t, direct)
	if td <= ts {
		t.Fatalf("direct remote unpack (%v) should be slower than staged (%v)", td, ts)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := NewWorld(Config{Ranks: []Placement{{0, 0}, {0, 0}, {0, 0}}})
	var times [3]sim.Time
	w.Run(func(m *Rank) {
		m.Proc().Sleep(sim.Time(m.Rank()) * sim.Millisecond)
		m.Barrier()
		times[m.Rank()] = m.Now()
	})
	for r := 1; r < 3; r++ {
		if times[r] < 2*sim.Millisecond {
			t.Fatalf("rank %d left barrier at %v before the slowest rank entered", r, times[r])
		}
	}
}
