package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// layoutSpan is the memory footprint of (dt, count).
func layoutSpan(dt *datatype.Datatype, count int) int64 {
	if count == 0 {
		return 0
	}
	return int64(count-1)*dt.Extent() + dt.TrueLB() + dt.TrueExtent()
}

func cpuPack(dt *datatype.Datatype, count int, src []byte) []byte {
	c := datatype.NewConverter(dt, count)
	out := make([]byte, c.Total())
	c.Pack(out, src)
	return out
}

// xfer runs a single Send/Recv between rank 0 and rank 1 with the given
// buffers/types and returns the packed images of both sides.
type xferSpec struct {
	cfg    Config
	sendDt *datatype.Datatype
	recvDt *datatype.Datatype
	count  int
	rcount int
	sGPU   bool // sender data on GPU
	rGPU   bool
}

func runXfer(t *testing.T, sp xferSpec) (sentPacked, recvPacked []byte, elapsed sim.Time) {
	t.Helper()
	if sp.rcount == 0 {
		sp.rcount = sp.count
	}
	if sp.recvDt == nil {
		sp.recvDt = sp.sendDt
	}
	w := NewWorld(sp.cfg)
	var sbuf, rbuf mem.Buffer
	var dur sim.Time
	w.Run(func(m *Rank) {
		switch m.Rank() {
		case 0:
			if sp.sGPU {
				sbuf = m.Malloc(layoutSpan(sp.sendDt, sp.count))
			} else {
				sbuf = m.MallocHost(layoutSpan(sp.sendDt, sp.count))
			}
			mem.FillPattern(sbuf, 99)
			m.Barrier()
			t0 := m.Now()
			m.Send(sbuf, sp.sendDt, sp.count, 1, 7)
			dur = m.Now() - t0
		case 1:
			if sp.rGPU {
				rbuf = m.Malloc(layoutSpan(sp.recvDt, sp.rcount))
			} else {
				rbuf = m.MallocHost(layoutSpan(sp.recvDt, sp.rcount))
			}
			mem.Fill(rbuf, 0)
			m.Barrier()
			m.Recv(rbuf, sp.recvDt, sp.rcount, 0, 7)
		}
	})
	elapsed = dur
	return cpuPack(sp.sendDt, sp.count, sbuf.Bytes()), cpuPack(sp.recvDt, sp.rcount, rbuf.Bytes()), elapsed
}

func twoRanksSameGPU() Config {
	return Config{Ranks: []Placement{{0, 0}, {0, 0}}}
}
func twoRanksTwoGPUs() Config {
	return Config{Ranks: []Placement{{0, 0}, {0, 1}}}
}
func twoNodes() Config {
	return Config{Ranks: []Placement{{0, 0}, {1, 0}}}
}

func TestEagerHostToHost(t *testing.T) {
	s, r, _ := runXfer(t, xferSpec{
		cfg:    twoRanksSameGPU(),
		sendDt: datatype.Contiguous(1000, datatype.Float64), // 8 KB: eager
		count:  1,
	})
	if !bytes.Equal(s, r) {
		t.Fatal("eager payload mismatch")
	}
}

func TestEagerGPUToGPU(t *testing.T) {
	s, r, _ := runXfer(t, xferSpec{
		cfg:    twoRanksTwoGPUs(),
		sendDt: shapes.SubMatrix(16, 16, 32), // 2 KB packed
		count:  1, sGPU: true, rGPU: true,
	})
	if !bytes.Equal(s, r) {
		t.Fatal("eager GPU payload mismatch")
	}
}

func rendezvousMatrix(t *testing.T, cfg Config, name string) {
	n := 512 // 2 MB matrix: rendezvous
	layouts := []struct {
		label string
		dt    *datatype.Datatype
	}{
		{"vector", shapes.SubMatrix(n/2, n/2, n)},
		{"triangular", shapes.LowerTriangular(n)},
		{"contiguous", shapes.FullMatrix(n)},
	}
	for _, l := range layouts {
		for _, loc := range []struct {
			label      string
			sGPU, rGPU bool
		}{
			{"g2g", true, true},
			{"g2h", true, false},
			{"h2g", false, true},
			{"h2h", false, false},
		} {
			t.Run(fmt.Sprintf("%s/%s/%s", name, l.label, loc.label), func(t *testing.T) {
				s, r, _ := runXfer(t, xferSpec{cfg: cfg, sendDt: l.dt, count: 1, sGPU: loc.sGPU, rGPU: loc.rGPU})
				if !bytes.Equal(s, r) {
					t.Fatal("payload mismatch")
				}
			})
		}
	}
}

func TestRendezvousSameGPU(t *testing.T) { rendezvousMatrix(t, twoRanksSameGPU(), "1gpu") }
func TestRendezvousTwoGPUs(t *testing.T) { rendezvousMatrix(t, twoRanksTwoGPUs(), "2gpu") }
func TestRendezvousIB(t *testing.T)      { rendezvousMatrix(t, twoNodes(), "ib") }

func TestVectorToContiguousReshape(t *testing.T) {
	// Fig. 11: sender vector, receiver contiguous (and the reverse).
	n := 512
	vec := shapes.SubMatrix(n, n/2, n)
	contig := datatype.Contiguous(n*n/2, datatype.Float64)
	for _, cfg := range []Config{twoRanksSameGPU(), twoRanksTwoGPUs(), twoNodes()} {
		s, r, _ := runXfer(t, xferSpec{cfg: cfg, sendDt: vec, recvDt: contig, count: 1, sGPU: true, rGPU: true})
		if !bytes.Equal(s, r) {
			t.Fatal("vector->contiguous mismatch")
		}
		s, r, _ = runXfer(t, xferSpec{cfg: cfg, sendDt: contig, recvDt: vec, count: 1, sGPU: true, rGPU: true})
		if !bytes.Equal(s, r) {
			t.Fatal("contiguous->vector mismatch")
		}
	}
}

func TestTransposeTransfer(t *testing.T) {
	n := 96
	s, r, _ := runXfer(t, xferSpec{
		cfg:    twoRanksTwoGPUs(),
		sendDt: shapes.Transpose(n),
		recvDt: shapes.FullMatrix(n),
		count:  1, sGPU: true, rGPU: true,
	})
	if !bytes.Equal(s, r) {
		t.Fatal("transpose transfer mismatch")
	}
}

func TestUnexpectedMessageAndWildcards(t *testing.T) {
	w := NewWorld(twoRanksSameGPU())
	var got []byte
	var want []byte
	w.Run(func(m *Rank) {
		if m.Rank() == 0 {
			buf := m.MallocHost(4096)
			mem.FillPattern(buf, 5)
			want = append([]byte(nil), buf.Bytes()...)
			m.Send(buf, datatype.Contiguous(4096, datatype.Byte), 1, 1, 42)
		} else {
			// Delay so the message is unexpected, then wildcard-receive.
			m.Proc().Sleep(5 * sim.Millisecond)
			buf := m.MallocHost(4096)
			m.Recv(buf, datatype.Contiguous(4096, datatype.Byte), 1, AnySource, AnyTag)
			got = append([]byte(nil), buf.Bytes()...)
		}
	})
	if !bytes.Equal(got, want) {
		t.Fatal("unexpected-path payload mismatch")
	}
}

func TestMessageOrderingSameTag(t *testing.T) {
	w := NewWorld(twoRanksSameGPU())
	var first, second byte
	w.Run(func(m *Rank) {
		dt := datatype.Contiguous(1024, datatype.Byte)
		if m.Rank() == 0 {
			a := m.MallocHost(1024)
			b := m.MallocHost(1024)
			mem.Fill(a, 0xAA)
			mem.Fill(b, 0xBB)
			m.Send(a, dt, 1, 1, 3)
			m.Send(b, dt, 1, 1, 3)
		} else {
			a := m.MallocHost(1024)
			b := m.MallocHost(1024)
			m.Recv(a, dt, 1, 0, 3)
			m.Recv(b, dt, 1, 0, 3)
			first, second = a.Bytes()[0], b.Bytes()[0]
		}
	})
	if first != 0xAA || second != 0xBB {
		t.Fatalf("messages reordered: %x %x", first, second)
	}
}

// TestPartialReceiveEager sends fewer bytes than the posted receive
// over the eager path: MPI permits it when the sender's signature is a
// prefix of the receiver's, and MPI_Get_count reports the true size.
func TestPartialReceiveEager(t *testing.T) {
	w := NewWorld(twoRanksSameGPU())
	var got, want []byte
	var recvd int64
	var count int
	w.Run(func(m *Rank) {
		full := datatype.Contiguous(1024, datatype.Byte)
		half := datatype.Contiguous(512, datatype.Byte)
		if m.Rank() == 0 {
			b := m.MallocHost(512)
			mem.FillPattern(b, 7)
			want = append([]byte(nil), b.Bytes()...)
			m.Send(b, half, 1, 1, 0)
		} else {
			b := m.MallocHost(1024)
			mem.Fill(b, 0xEE)
			r := m.Irecv(b, full, 1, 0, 0)
			r.Wait(m.Proc())
			got = append([]byte(nil), b.Bytes()...)
			recvd = r.ReceivedBytes()
			count = r.GetCount(datatype.Contiguous(1, datatype.Byte))
		}
	})
	if !bytes.Equal(got[:512], want) {
		t.Fatal("partial payload mismatch")
	}
	for i := 512; i < 1024; i++ {
		if got[i] != 0xEE {
			t.Fatalf("byte %d beyond the message was written", i)
		}
	}
	if recvd != 512 || count != 512 {
		t.Fatalf("ReceivedBytes/GetCount = %d/%d, want 512/512", recvd, count)
	}
}

// TestPartialReceiveRendezvous ends a rendezvous message mid-way through
// a non-contiguous GPU receive layout, exercising the incremental
// unpack paths on every topology.
func TestPartialReceiveRendezvous(t *testing.T) {
	const sentElems = 75_000 // 600 KB: rendezvous, ends mid-layout
	sendDt := datatype.Contiguous(sentElems, datatype.Float64)
	recvDt := shapes.SubMatrix(512, 256, 512) // 1 MB packed
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"1gpu", twoRanksSameGPU()},
		{"2gpu", twoRanksTwoGPUs()},
		{"ib", twoNodes()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWorld(tc.cfg)
			var sent, got []byte
			var recvd int64
			w.Run(func(m *Rank) {
				if m.Rank() == 0 {
					b := m.Malloc(sendDt.Size())
					mem.FillPattern(b, 31)
					sent = append([]byte(nil), b.Bytes()...)
					m.Send(b, sendDt, 1, 1, 0)
				} else {
					b := m.Malloc(layoutSpan(recvDt, 1))
					mem.Fill(b, 0)
					r := m.Irecv(b, recvDt, 1, 0, 0)
					r.Wait(m.Proc())
					recvd = r.ReceivedBytes()
					got = cpuPack(recvDt, 1, b.Bytes())
				}
			})
			if recvd != sendDt.Size() {
				t.Fatalf("ReceivedBytes = %d, want %d", recvd, sendDt.Size())
			}
			if !bytes.Equal(got[:len(sent)], sent) {
				t.Fatal("partial rendezvous payload mismatch")
			}
			for i := len(sent); i < len(got); i++ {
				if got[i] != 0 {
					t.Fatalf("packed byte %d beyond the message was written", i)
				}
			}
		})
	}
}

// TestSignatureMismatchPanics keeps the fatal path: a shorter message
// whose primitives do not prefix the receiver's signature is an error,
// not a partial receive.
func TestSignatureMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no signature-mismatch panic")
		}
	}()
	w := NewWorld(twoRanksSameGPU())
	w.Run(func(m *Rank) {
		if m.Rank() == 0 {
			m.Send(m.MallocHost(80), datatype.Contiguous(10, datatype.Float64), 1, 1, 0)
		} else {
			// 100 bytes posted: not the same packed size and float64 is
			// not a prefix of a byte sequence.
			m.Recv(m.MallocHost(100), datatype.Contiguous(100, datatype.Byte), 1, 0, 0)
		}
	})
}

// TestNonOvertakingWildcards checks MPI's non-overtaking rule under
// AnySource/AnyTag: matching must follow per-source send order even
// when message sizes make later messages complete faster, on both the
// unexpected-queue path (sends land first) and the posted-queue path
// (receives posted first).
func TestNonOvertakingWildcards(t *testing.T) {
	const big = 256 << 10 // rendezvous
	const small = 4 << 10 // eager
	dtBig := datatype.Contiguous(big, datatype.Byte)
	dtSmall := datatype.Contiguous(small, datatype.Byte)
	for _, tc := range []struct {
		name        string
		recvDelayed bool // receiver posts after arrivals queue as unexpected
	}{
		{"unexpected-queue", true},
		{"posted-queue", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWorld(Config{Ranks: []Placement{{0, 0}, {0, 0}, {0, 1}}})
			var order []byte
			var sizes []int64
			w.Run(func(m *Rank) {
				switch m.Rank() {
				case 1, 2:
					// Each sender: a slow rendezvous message then a fast
					// eager one, same tag.
					a := m.MallocHost(big)
					b := m.MallocHost(small)
					mem.Fill(a, byte(0xA0+m.Rank()))
					mem.Fill(b, byte(0xB0+m.Rank()))
					m.Send(a, dtBig, 1, 0, 9)
					m.Send(b, dtSmall, 1, 0, 9)
				case 0:
					if tc.recvDelayed {
						m.Proc().Sleep(50 * sim.Millisecond)
					}
					for i := 0; i < 4; i++ {
						buf := m.MallocHost(big)
						r := m.Irecv(buf, dtBig, 1, AnySource, AnyTag)
						r.Wait(m.Proc())
						order = append(order, buf.Bytes()[0])
						sizes = append(sizes, r.ReceivedBytes())
					}
				}
			})
			// Per source, the big message must match before the small one.
			seen := map[byte]int{}
			for i, b := range order {
				seen[b] = i
			}
			for _, src := range []byte{1, 2} {
				bigAt, bigOK := seen[0xA0+src]
				smallAt, smallOK := seen[0xB0+src]
				if !bigOK || !smallOK {
					t.Fatalf("missing messages from rank %d: order %x", src, order)
				}
				if bigAt > smallAt {
					t.Errorf("rank %d's messages overtook: order %x sizes %v", src, order, sizes)
				}
			}
		})
	}
}

func TestIsendIrecvOverlap(t *testing.T) {
	w := NewWorld(twoRanksTwoGPUs())
	dt := shapes.FullMatrix(512)
	ok := true
	w.Run(func(m *Rank) {
		buf := m.Malloc(layoutSpan(dt, 1))
		peer := 1 - m.Rank()
		s := m.Isend(buf, dt, 1, peer, 1)
		r := m.Irecv(m.Malloc(layoutSpan(dt, 1)), dt, 1, peer, 1)
		s.Wait(m.Proc())
		r.Wait(m.Proc())
		if !s.Done() || !r.Done() {
			ok = false
		}
	})
	if !ok {
		t.Fatal("requests not complete after Wait")
	}
}

func TestTruncationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no truncation panic")
		}
	}()
	w := NewWorld(twoRanksSameGPU())
	w.Run(func(m *Rank) {
		dt := datatype.Contiguous(1024, datatype.Byte)
		small := datatype.Contiguous(512, datatype.Byte)
		if m.Rank() == 0 {
			m.Send(m.MallocHost(1024), dt, 1, 1, 0)
		} else {
			m.Recv(m.MallocHost(512), small, 1, 0, 0)
		}
	})
}

func TestOneGPUFasterThanTwoGPUs(t *testing.T) {
	dt := shapes.SubMatrix(1024, 1024, 2048) // 8 MB packed
	_, _, one := runXfer(t, xferSpec{cfg: twoRanksSameGPU(), sendDt: dt, count: 1, sGPU: true, rGPU: true})
	_, _, two := runXfer(t, xferSpec{cfg: twoRanksTwoGPUs(), sendDt: dt, count: 1, sGPU: true, rGPU: true})
	if two < 2*one {
		t.Fatalf("1GPU (%v) should be at least 2x faster than 2GPU (%v)", one, two)
	}
}

func TestPipelineApproachesPCIeBandwidth(t *testing.T) {
	// Fig. 9's premise: the pipelined protocol should push a large vector
	// near the PCIe bandwidth between two GPUs. Run a few iterations so
	// the DEV cache and IPC mappings are warm.
	n := 2048
	dt := shapes.SubMatrix(n, n, n) // 32 MB
	w := NewWorld(twoRanksTwoGPUs())
	var per sim.Time
	iters := 4
	w.Run(func(m *Rank) {
		span := layoutSpan(dt, 1)
		buf := m.Malloc(span)
		if m.Rank() == 0 {
			m.Barrier()
			for i := 0; i < iters+1; i++ {
				if i == 1 {
					per = m.Now() // skip warmup iteration
				}
				m.Send(buf, dt, 1, 1, i)
			}
			per = (m.Now() - per) / sim.Time(iters)
		} else {
			m.Barrier()
			for i := 0; i < iters+1; i++ {
				m.Recv(buf, dt, 1, 0, i)
			}
		}
	})
	bw := sim.GBps(dt.Size(), per)
	peer := 10.5 * 10 / 10.5 // bottleneck is the slot link at 10.5, root not involved for P2P
	if bw < 0.80*peer {
		t.Fatalf("pipelined vector bandwidth %.2f GB/s, want >= 80%% of %v", bw, peer)
	}
	t.Logf("P2P pipelined vector bandwidth: %.2f GB/s (%.0f%% of peak)", bw, 100*bw/10.5)
}

func TestIBPipelineApproachesWire(t *testing.T) {
	n := 2048
	dt := shapes.SubMatrix(n, n, n)
	w := NewWorld(twoNodes())
	var per sim.Time
	iters := 4
	w.Run(func(m *Rank) {
		buf := m.Malloc(layoutSpan(dt, 1))
		if m.Rank() == 0 {
			m.Barrier()
			for i := 0; i < iters+1; i++ {
				if i == 1 {
					per = m.Now()
				}
				m.Send(buf, dt, 1, 1, i)
			}
			per = (m.Now() - per) / sim.Time(iters)
		} else {
			m.Barrier()
			for i := 0; i < iters+1; i++ {
				m.Recv(buf, dt, 1, 0, i)
			}
		}
	})
	bw := sim.GBps(dt.Size(), per)
	if bw < 0.80*6.0 {
		t.Fatalf("IB pipelined vector bandwidth %.2f GB/s, want >= 80%% of 6", bw)
	}
	t.Logf("IB pipelined vector bandwidth: %.2f GB/s", bw)
}

func TestDirectRemoteUnpackSlower(t *testing.T) {
	dt := shapes.LowerTriangular(1536)
	staged := xferSpec{cfg: twoRanksTwoGPUs(), sendDt: dt, count: 1, sGPU: true, rGPU: true}
	direct := staged
	direct.cfg.Proto.DirectRemoteUnpack = true
	_, _, ts := runXfer(t, staged)
	_, _, td := runXfer(t, direct)
	if td <= ts {
		t.Fatalf("direct remote unpack (%v) should be slower than staged (%v)", td, ts)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := NewWorld(Config{Ranks: []Placement{{0, 0}, {0, 0}, {0, 0}}})
	var times [3]sim.Time
	w.Run(func(m *Rank) {
		m.Proc().Sleep(sim.Time(m.Rank()) * sim.Millisecond)
		m.Barrier()
		times[m.Rank()] = m.Now()
	})
	for r := 1; r < 3; r++ {
		if times[r] < 2*sim.Millisecond {
			t.Fatalf("rank %d left barrier at %v before the slowest rank entered", r, times[r])
		}
	}
}
