package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// blockedConfig places nodes*rpn ranks in the blocked layout (rank r on
// node r/rpn) the hierarchical collectives recognize.
func blockedConfig(nodes, rpn int, flat bool) Config {
	var ranks []Placement
	for r := 0; r < nodes*rpn; r++ {
		ranks = append(ranks, Placement{Node: r / rpn, GPU: r % rpn})
	}
	return Config{Ranks: ranks, Proto: ProtoOptions{FlatCollectives: flat}}
}

func TestHierDispatchSelection(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"2x2 blocked", blockedConfig(2, 2, false), true},
		{"4x4 blocked", blockedConfig(4, 4, false), true},
		{"forced flat", blockedConfig(2, 2, true), false},
		{"single node", blockedConfig(1, 4, false), false},
		{"one rank per node", blockedConfig(4, 1, false), false},
		{"cyclic layout", Config{Ranks: []Placement{
			{Node: 0, GPU: 0}, {Node: 1, GPU: 0}, {Node: 0, GPU: 1}, {Node: 1, GPU: 1},
		}}, false},
		{"non-uniform", Config{Ranks: []Placement{
			{Node: 0, GPU: 0}, {Node: 0, GPU: 1}, {Node: 1, GPU: 0},
		}}, false},
	}
	for _, c := range cases {
		if got := NewWorld(c.cfg).TopologyAware(); got != c.want {
			t.Errorf("%s: TopologyAware = %v, want %v", c.name, got, c.want)
		}
	}
}

// checkQuiescent asserts no rank leaked staging after the collective.
func checkQuiescent(t *testing.T, w *World, what string) {
	t.Helper()
	for r := 0; r < w.Size(); r++ {
		rk := w.RankHandle(r)
		if out := rk.ScratchOutstanding(); out != 0 {
			t.Fatalf("%s: rank %d leaked %d scratch buffers", what, r, out)
		}
		if out := rk.RingOutstanding(); out != 0 {
			t.Fatalf("%s: rank %d leaked %d ring buffers", what, r, out)
		}
	}
}

// hierShapes are the node layouts the differential tests sweep: the
// smallest hierarchical world, a non-power-of-two node count, and a
// 32-rank tree.
var hierShapes = []struct{ nodes, rpn int }{{2, 2}, {3, 2}, {4, 4}, {8, 4}}

// TestHierBcastMatchesFlat runs the same broadcast through the
// hierarchical and flat algorithms and requires byte-identical buffers
// on every rank, for leader and non-leader roots.
func TestHierBcastMatchesFlat(t *testing.T) {
	dt := shapes.SubMatrix(32, 32, 48)
	for _, sh := range hierShapes {
		size := sh.nodes * sh.rpn
		for _, root := range []int{0, size - 1} {
			run := func(flat bool) [][]byte {
				w := NewWorld(blockedConfig(sh.nodes, sh.rpn, flat))
				if w.TopologyAware() == flat {
					t.Fatalf("%dx%d: dispatch wrong", sh.nodes, sh.rpn)
				}
				imgs := make([][]byte, size)
				w.Run(func(m *Rank) {
					buf := m.Malloc(spanOf(dt, 2))
					if m.Rank() == root {
						mem.FillPattern(buf, uint64(31+root))
					}
					m.Bcast(buf, dt, 2, root)
					imgs[m.Rank()] = cpuPack(dt, 2, buf.Bytes())
				})
				checkQuiescent(t, w, fmt.Sprintf("bcast %dx%d", sh.nodes, sh.rpn))
				w.Close()
				return imgs
			}
			hier, flat := run(false), run(true)
			for r := 0; r < size; r++ {
				if !bytes.Equal(hier[r], flat[r]) {
					t.Fatalf("%dx%d root %d: rank %d hier bcast differs from flat", sh.nodes, sh.rpn, root, r)
				}
				if !bytes.Equal(hier[r], hier[root]) {
					t.Fatalf("%dx%d root %d: rank %d did not receive root data", sh.nodes, sh.rpn, root, r)
				}
			}
		}
	}
}

func TestHierAllgatherMatchesFlat(t *testing.T) {
	dt := shapes.SubMatrix(16, 16, 24)
	const count = 3
	for _, sh := range hierShapes {
		size := sh.nodes * sh.rpn
		stride := int64(count) * dt.Extent()
		run := func(flat bool) [][]byte {
			w := NewWorld(blockedConfig(sh.nodes, sh.rpn, flat))
			imgs := make([][]byte, size)
			w.Run(func(m *Rank) {
				buf := m.Malloc(spanOf(dt, size*count))
				mem.FillPattern(buf.Slice(int64(m.Rank())*stride, spanOf(dt, count)), uint64(500+m.Rank()))
				m.Allgather(buf, dt, count)
				imgs[m.Rank()] = cpuPack(dt, size*count, buf.Bytes())
			})
			checkQuiescent(t, w, "allgather")
			w.Close()
			return imgs
		}
		hier, flat := run(false), run(true)
		for r := 0; r < size; r++ {
			if !bytes.Equal(hier[r], flat[r]) {
				t.Fatalf("%dx%d: rank %d hier allgather differs from flat", sh.nodes, sh.rpn, r)
			}
		}
	}
}

func TestHierAlltoallMatchesFlat(t *testing.T) {
	dt := shapes.SubMatrix(16, 16, 24)
	const count = 2
	for _, sh := range hierShapes {
		size := sh.nodes * sh.rpn
		stride := int64(count) * dt.Extent()
		run := func(flat bool) [][]byte {
			w := NewWorld(blockedConfig(sh.nodes, sh.rpn, flat))
			imgs := make([][]byte, size)
			w.Run(func(m *Rank) {
				sendBuf := m.Malloc(spanOf(dt, size*count))
				recvBuf := m.Malloc(spanOf(dt, size*count))
				for peer := 0; peer < size; peer++ {
					mem.FillPattern(sendBuf.Slice(int64(peer)*stride, spanOf(dt, count)),
						uint64(1000*m.Rank()+peer))
				}
				m.Alltoall(sendBuf, dt, count, recvBuf, dt, count)
				imgs[m.Rank()] = cpuPack(dt, size*count, recvBuf.Bytes())
			})
			checkQuiescent(t, w, "alltoall")
			w.Close()
			return imgs
		}
		hier, flat := run(false), run(true)
		for r := 0; r < size; r++ {
			if !bytes.Equal(hier[r], flat[r]) {
				t.Fatalf("%dx%d: rank %d hier alltoall differs from flat", sh.nodes, sh.rpn, r)
			}
		}
	}
}

// TestHierReduceMatchesFlat uses Int64 sums and maxima, which are
// exactly associative, so hier and flat must agree bit for bit even
// though the combine order differs.
func TestHierReduceMatchesFlat(t *testing.T) {
	const count = 2048
	dt := datatype.Contiguous(count, datatype.Int64)
	for _, sh := range hierShapes {
		size := sh.nodes * sh.rpn
		for _, op := range []Op{OpSum, OpMax} {
			root := size - 1
			run := func(flat bool) []byte {
				w := NewWorld(blockedConfig(sh.nodes, sh.rpn, flat))
				var img []byte
				w.Run(func(m *Rank) {
					sendBuf := m.Malloc(dt.Size())
					mem.FillPattern(sendBuf, uint64(71+m.Rank()))
					var recvBuf mem.Buffer
					if m.Rank() == root {
						recvBuf = m.Malloc(dt.Size())
					}
					m.Reduce(sendBuf, recvBuf, dt, 1, op, root)
					if m.Rank() == root {
						img = append([]byte(nil), recvBuf.Bytes()...)
					}
				})
				checkQuiescent(t, w, "reduce")
				w.Close()
				return img
			}
			if hier, flat := run(false), run(true); !bytes.Equal(hier, flat) {
				t.Fatalf("%dx%d op %d: hier reduce differs from flat", sh.nodes, sh.rpn, op)
			}
		}
	}
}

// TestHierAllreduce exercises the composed collective (hierarchical
// reduce followed by hierarchical bcast) across a 3x2 world.
func TestHierAllreduce(t *testing.T) {
	const count = 512
	dt := datatype.Contiguous(count, datatype.Int64)
	w := NewWorld(blockedConfig(3, 2, false))
	size := w.Size()
	imgs := make([][]byte, size)
	w.Run(func(m *Rank) {
		sendBuf := m.MallocHost(dt.Size())
		recvBuf := m.MallocHost(dt.Size())
		mem.FillPattern(sendBuf, uint64(7+m.Rank()))
		m.Allreduce(sendBuf, recvBuf, dt, 1, OpSum)
		imgs[m.Rank()] = append([]byte(nil), recvBuf.Bytes()...)
	})
	checkQuiescent(t, w, "allreduce")
	for r := 1; r < size; r++ {
		if !bytes.Equal(imgs[r], imgs[0]) {
			t.Fatalf("rank %d allreduce result differs from rank 0", r)
		}
	}
}

// TestHierPhaseSpans asserts the hierarchical collectives annotate
// their intra/inter phases on the trace timeline.
func TestHierPhaseSpans(t *testing.T) {
	dt := shapes.SubMatrix(16, 16, 24)
	w := NewWorld(blockedConfig(2, 2, false))
	rec := sim.NewRecorder(w.Engine())
	size := w.Size()
	stride := dt.Extent()
	w.Run(func(m *Rank) {
		sendBuf := m.Malloc(spanOf(dt, size))
		recvBuf := m.Malloc(spanOf(dt, size))
		mem.FillPattern(sendBuf, uint64(m.Rank()))
		m.Alltoall(sendBuf, dt, 1, recvBuf, dt, 1)
		_ = stride
	})
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tk := range rec.Tracks() {
		for _, sp := range tk.Spans {
			seen[sp.Name] = true
		}
	}
	for _, want := range []string{"coll.alltoall.intra", "coll.alltoall.inter"} {
		if !seen[want] {
			t.Fatalf("no %s span on the timeline", want)
		}
	}
}

// TestHierCollectivesOnFatTree runs the hierarchical collectives over an
// oversubscribed fat-tree fabric, proving correctness is independent of
// the switch hierarchy.
func TestHierCollectivesOnFatTree(t *testing.T) {
	dt := shapes.SubMatrix(16, 16, 24)
	cfg := blockedConfig(8, 2, false)
	cfg.IB.WireGBps = 6.0
	cfg.IB.Topo.LeafRadix = 4
	cfg.IB.Topo.Spines = 2
	w := NewWorld(cfg)
	size := w.Size()
	stride := dt.Extent()
	imgs := make([][]byte, size)
	w.Run(func(m *Rank) {
		sendBuf := m.Malloc(spanOf(dt, size))
		recvBuf := m.Malloc(spanOf(dt, size))
		for peer := 0; peer < size; peer++ {
			mem.FillPattern(sendBuf.Slice(int64(peer)*stride, spanOf(dt, 1)), uint64(300*m.Rank()+peer))
		}
		m.Alltoall(sendBuf, dt, 1, recvBuf, dt, 1)
		imgs[m.Rank()] = cpuPack(dt, size, recvBuf.Bytes())
	})
	checkQuiescent(t, w, "fat-tree alltoall")
	// Differential oracle: the flat algorithm on a flat fabric.
	ref := NewWorld(blockedConfig(8, 2, true))
	refImgs := make([][]byte, size)
	ref.Run(func(m *Rank) {
		sendBuf := m.Malloc(spanOf(dt, size))
		recvBuf := m.Malloc(spanOf(dt, size))
		for peer := 0; peer < size; peer++ {
			mem.FillPattern(sendBuf.Slice(int64(peer)*stride, spanOf(dt, 1)), uint64(300*m.Rank()+peer))
		}
		m.Alltoall(sendBuf, dt, 1, recvBuf, dt, 1)
		refImgs[m.Rank()] = cpuPack(dt, size, recvBuf.Bytes())
	})
	for r := 0; r < size; r++ {
		if !bytes.Equal(imgs[r], refImgs[r]) {
			t.Fatalf("rank %d: fat-tree hier alltoall differs from flat oracle", r)
		}
	}
}
