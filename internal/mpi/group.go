package mpi

import (
	"fmt"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Group is an ordered subset of the world's ranks with its own
// collective operations — the communicator-like handle the application
// workload layer (internal/workload) schedules jobs on. Two co-scheduled
// jobs on one cluster each get a Group over their own ranks, so a job's
// barriers and allreduces never synchronize (or cross-match) with the
// other job's: every group operation is built from point-to-point
// messages between group members only, tagged out of a per-group tag
// block.
//
// Group algorithms are deliberately *always* the group-local ones, even
// when the group spans the whole world — a job measured alone and the
// same job measured against a co-scheduled neighbour must run the exact
// same schedule, so the difference between the two runs is pure fabric
// contention (the per-job slowdown the interference studies report),
// never an algorithm switch.
type Group struct {
	w     *World
	id    int
	ranks []int // global ranks, group order
	local []int // global rank -> local index, -1 for non-members
	seq   []int64
}

// Group tag blocks sit above the world-collective tag space
// (collTagBase + collSeq): each group owns groupTagSpan tags starting at
// groupTagBase + id*groupTagSpan, and members advance the group's
// sequence identically per operation, exactly like collSeq.
const (
	groupTagBase = 1 << 24
	groupTagSpan = 1 << 20
)

// AllreduceAlg selects the group allreduce schedule.
type AllreduceAlg int

// Allreduce algorithms: the bandwidth-optimal ring
// (reduce-scatter + allgather, the schedule ML frameworks use for large
// fused gradient buckets) and the latency-optimal binomial tree
// (reduce to the group root + broadcast).
const (
	AllreduceRing AllreduceAlg = iota
	AllreduceTree
)

func (a AllreduceAlg) String() string {
	if a == AllreduceRing {
		return "ring"
	}
	return "tree"
}

// NewGroup builds a group over the given global ranks (in group order).
// Ranks must be in range and distinct. Call before Run, once per job,
// and share the handle across the group's ranks.
func (w *World) NewGroup(ranks []int) *Group {
	if len(ranks) == 0 {
		panic("mpi: empty group")
	}
	g := &Group{
		w:     w,
		id:    w.groupSeq,
		ranks: append([]int(nil), ranks...),
		local: make([]int, len(w.ranks)),
		seq:   make([]int64, len(ranks)),
	}
	w.groupSeq++
	for i := range g.local {
		g.local[i] = -1
	}
	for lr, r := range ranks {
		if r < 0 || r >= len(w.ranks) {
			panic(fmt.Sprintf("mpi: group rank %d out of range", r))
		}
		if g.local[r] >= 0 {
			panic(fmt.Sprintf("mpi: duplicate group rank %d", r))
		}
		g.local[r] = lr
	}
	return g
}

// Size returns the number of group members.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns the group's global ranks in group order.
func (g *Group) Ranks() []int { return append([]int(nil), g.ranks...) }

// Contains reports whether global rank r is a member.
func (g *Group) Contains(r int) bool { return r >= 0 && r < len(g.local) && g.local[r] >= 0 }

// LocalRank returns m's index within the group; m must be a member.
func (g *Group) LocalRank(m *Rank) int {
	lr := g.local[m.rank]
	if lr < 0 {
		panic(fmt.Sprintf("mpi: rank %d is not in the group", m.rank))
	}
	return lr
}

// tagBlock reserves n consecutive tags from the group's block. Every
// member must reserve the same budget per operation (budgets depend only
// on group and world size), mirroring the world collSeq discipline.
func (g *Group) tagBlock(lr, n int) int {
	t := groupTagBase + g.id*groupTagSpan + int(g.seq[lr])
	g.seq[lr] += int64(n)
	if g.seq[lr] > groupTagSpan {
		panic("mpi: group tag space exhausted")
	}
	return t
}

// tokenDT is the 8-byte barrier token.
var tokenDT = datatype.Contiguous(1, datatype.Int64)

// barrierRounds is ceil(log2(size)), the dissemination round count.
func barrierRounds(size int) int {
	n := 0
	for k := 1; k < size; k <<= 1 {
		n++
	}
	return n
}

// Barrier blocks until every group member has entered it
// (dissemination algorithm over point-to-point token messages; only
// group traffic, so two jobs' barriers are fully independent).
func (g *Group) Barrier(m *Rank) {
	size := len(g.ranks)
	lr := g.LocalRank(m)
	tag := g.tagBlock(lr, barrierRounds(size))
	if size == 1 {
		return
	}
	p := m.p
	tok := m.scratch(8)
	in := m.scratch(8)
	for s, k := 0, 1; k < size; s, k = s+1, k<<1 {
		to := g.ranks[(lr+k)%size]
		from := g.ranks[(lr-k+size)%size]
		sreq := m.isendOn(p, tok.Slice(0, 8), tokenDT, 1, to, tag+s)
		rreq := m.Irecv(in.Slice(0, 8), tokenDT, 1, from, tag+s)
		sreq.Wait(p)
		rreq.Wait(p)
	}
	m.freeScratch(in)
	m.freeScratch(tok)
}

// Allreduce combines count elements of dt (a contiguous single-primitive
// layout, as for Reduce) from every member's sendBuf into every member's
// recvBuf. The ring algorithm is reduce-scatter + allgather around the
// group ring; the tree algorithm is a binomial reduce to the group root
// followed by a binomial broadcast. Both run entirely on group-member
// point-to-point traffic.
func (g *Group) Allreduce(m *Rank, sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, op Op, alg AllreduceAlg) {
	prim := reducePrim(dt)
	lr := g.LocalRank(m)
	p := m.p
	switch alg {
	case AllreduceRing:
		tag := g.tagBlock(lr, 2*len(g.ranks))
		g.allreduceRing(m, p, tag, lr, sendBuf, recvBuf, dt, count, prim, op)
	case AllreduceTree:
		tag := g.tagBlock(lr, m.Size()+1)
		g.allreduceTree(m, p, tag, sendBuf, recvBuf, dt, count, prim, op)
	default:
		panic("mpi: unknown allreduce algorithm")
	}
}

// allreduceTree: binomial reduce into the group root's recvBuf, then
// binomial broadcast of the result. Every member accumulates in its own
// recvBuf (valid everywhere for an allreduce), so no extra staging is
// needed beyond binomialReduce's internal receive buffer.
func (g *Group) allreduceTree(m *Rank, p *sim.Proc, tag int, sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, prim datatype.Primitive, op Op) {
	n := int64(count) * dt.Size()
	acc := recvBuf.Slice(0, n)
	m.localCopy(p, sendBuf, dt, count, acc, dt, count)
	m.binomialReduce(p, g.ranks, 0, acc, dt, count, prim, op, tag)
	g.bcastLocal(m, p, tag+m.Size(), recvBuf.Slice(0, n), dt, count, 0)
}

// bcastLocal is the binomial broadcast over the group from group index
// rootIdx, using a single tag (every hop is a distinct rank pair).
func (g *Group) bcastLocal(m *Rank, p *sim.Proc, tag int, buf mem.Buffer, dt *datatype.Datatype, count, rootIdx int) {
	size := len(g.ranks)
	if size == 1 {
		return
	}
	lr := g.LocalRank(m)
	vrank := (lr - rootIdx + size) % size
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			parent := g.ranks[((vrank-mask)+rootIdx)%size]
			m.recvOn(p, buf, dt, count, parent, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < size && vrank&(mask-1) == 0 && vrank&mask == 0 {
			child := g.ranks[(vrank+mask+rootIdx)%size]
			m.sendOn(p, buf, dt, count, child, tag)
		}
		mask >>= 1
	}
}

// chunkOff returns the byte offset of ring chunk c when n bytes of
// 8-byte words are split into size near-equal chunks.
func chunkOff(n int64, size, c int) int64 {
	words := n / 8
	return (words * int64(c) / int64(size)) * 8
}

// allreduceRing: reduce-scatter around the ring (after size-1 steps,
// member lr owns the fully combined chunk (lr+1) mod size), then an
// allgather ring redistributes the combined chunks. Chunk boundaries
// are 8-byte aligned; empty chunks (count < group size) are elided
// symmetrically on both sides.
func (g *Group) allreduceRing(m *Rank, p *sim.Proc, tag, lr int, sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, prim datatype.Primitive, op Op) {
	size := len(g.ranks)
	n := int64(count) * dt.Size()
	m.localCopy(p, sendBuf, dt, count, recvBuf.Slice(0, n), dt, count)
	if size == 1 || n == 0 {
		return
	}
	right := g.ranks[(lr+1)%size]
	left := g.ranks[(lr-1+size)%size]

	chunk := func(c int) mem.Buffer {
		lo, hi := chunkOff(n, size, c), chunkOff(n, size, c+1)
		return recvBuf.Slice(lo, hi-lo)
	}
	chunkDT := func(c int) (*datatype.Datatype, int) {
		lo, hi := chunkOff(n, size, c), chunkOff(n, size, c+1)
		base := datatype.Float64
		if prim == datatype.PrimInt64 {
			base = datatype.Int64
		}
		return base, int((hi - lo) / 8)
	}

	// Receive staging for the combine phase, in the accumulator's
	// location class.
	maxChunk := int64(0)
	for c := 0; c < size; c++ {
		if w := chunkOff(n, size, c+1) - chunkOff(n, size, c); w > maxChunk {
			maxChunk = w
		}
	}
	var tmp mem.Buffer
	if maxChunk > 0 {
		if recvBuf.Kind() == mem.Device {
			tmp = m.ringBuf(recvBuf.Space(), maxChunk)
		} else {
			tmp = m.scratch(maxChunk)
		}
	}

	// Reduce-scatter.
	for s := 0; s < size-1; s++ {
		sc := (lr - s + size*2) % size
		rc := (lr - s - 1 + size*2) % size
		sdt, scount := chunkDT(sc)
		rdt, rcount := chunkDT(rc)
		var sreq, rreq *Request
		if scount > 0 {
			sreq = m.isendOn(p, chunk(sc), sdt, scount, right, tag+s)
		}
		if rcount > 0 {
			rreq = m.Irecv(tmp.Slice(0, int64(rcount)*8), rdt, rcount, left, tag+s)
		}
		if sreq != nil {
			sreq.Wait(p)
		}
		if rreq != nil {
			rreq.Wait(p)
			m.combine(p, chunk(rc), tmp.Slice(0, int64(rcount)*8), prim, op)
		}
	}

	// Allgather of the combined chunks.
	for s := 0; s < size-1; s++ {
		sc := (lr + 1 - s + size*2) % size
		rc := (lr - s + size*2) % size
		sdt, scount := chunkDT(sc)
		rdt, rcount := chunkDT(rc)
		var sreq, rreq *Request
		if scount > 0 {
			sreq = m.isendOn(p, chunk(sc), sdt, scount, right, tag+size-1+s)
		}
		if rcount > 0 {
			rreq = m.Irecv(chunk(rc), rdt, rcount, left, tag+size-1+s)
		}
		if sreq != nil {
			sreq.Wait(p)
		}
		if rreq != nil {
			rreq.Wait(p)
		}
	}

	if tmp.IsValid() {
		if tmp.Kind() == mem.Device {
			m.releaseRing(tmp)
		} else {
			m.freeScratch(tmp)
		}
	}
}

// Alltoallv exchanges scounts[j] elements of sdt (at sdispls[j], in
// extent units) with every group member j, receiving rcounts[i] at
// rdispls[i] from member i — the group-scoped counterpart of the world
// Alltoallv, indices in group order. Zero-count pairs move no bytes and
// post no messages; the count matrices are part of the collective's
// signature as in the world variant.
func (g *Group) Alltoallv(m *Rank, sendBuf mem.Buffer, scounts, sdispls []int, sdt *datatype.Datatype,
	recvBuf mem.Buffer, rcounts, rdispls []int, rdt *datatype.Datatype) {
	size := len(g.ranks)
	checkVArgs("group Alltoallv", size, scounts, sdispls)
	checkVArgs("group Alltoallv", size, rcounts, rdispls)
	lr := g.LocalRank(m)
	p := m.p
	tag := g.tagBlock(lr, 1)

	// Local block first.
	if int64(scounts[lr])*sdt.Size() > 0 {
		m.localCopy(p,
			vslot(sendBuf, sdt, scounts[lr], sdispls[lr]), sdt, scounts[lr],
			vslot(recvBuf, rdt, rcounts[lr], rdispls[lr]), rdt, rcounts[lr])
	}
	pow2 := size&(size-1) == 0
	for s := 1; s < size; s++ {
		var st, rf int
		if pow2 {
			st = lr ^ s
			rf = st
		} else {
			st = (lr + s) % size
			rf = (lr - s + size) % size
		}
		var sreq, rreq *Request
		if int64(scounts[st])*sdt.Size() > 0 {
			sreq = m.isendOn(p, vslot(sendBuf, sdt, scounts[st], sdispls[st]), sdt, scounts[st], g.ranks[st], tag)
		}
		if int64(rcounts[rf])*rdt.Size() > 0 {
			rreq = m.Irecv(vslot(recvBuf, rdt, rcounts[rf], rdispls[rf]), rdt, rcounts[rf], g.ranks[rf], tag)
		}
		if sreq != nil {
			sreq.Wait(p)
		}
		if rreq != nil {
			rreq.Wait(p)
		}
	}
}

// SendRecvLocal exchanges (count, dt) messages with two group members
// given by their local indices, drawing the tag from the group block so
// neighbouring phases never cross-match.
func (g *Group) SendRecvLocal(m *Rank, sendBuf mem.Buffer, sdt *datatype.Datatype, scount, destLocal int,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount, srcLocal int) {
	lr := g.LocalRank(m)
	tag := g.tagBlock(lr, 1)
	p := m.p
	var sreq, rreq *Request
	if scount > 0 && int64(scount)*sdt.Size() > 0 {
		sreq = m.isendOn(p, sendBuf, sdt, scount, g.ranks[destLocal], tag)
	}
	if rcount > 0 && int64(rcount)*rdt.Size() > 0 {
		rreq = m.Irecv(recvBuf, rdt, rcount, g.ranks[srcLocal], tag)
	}
	if sreq != nil {
		sreq.Wait(p)
	}
	if rreq != nil {
		rreq.Wait(p)
	}
}
