package mpi

import (
	"io"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
)

// Payload digest verification path.
//
// A SyntheticPayload names the contents of a (dt, count) buffer without
// materializing it: a seed plus the compiled datatype layout determine
// every byte, and any packed window of the elements can be regenerated
// in O(window) by walking the layout's flattened blocks over the
// random-access pattern (mem.SyntheticAt). Both operating modes of the
// scale sweep hang off this one definition:
//
//   - real-payload worlds Fill() device buffers with the pattern, run
//     the full protocol stack, and digest the packed results;
//   - modelled-payload worlds (internal/model) never allocate the
//     buffers at all — they regenerate the same packed windows on
//     demand to sign messages and to compute the same digest.
//
// A modelled run is accepted only if its digest equals the real run's,
// which is what keeps flyweight worlds honest about data movement.

// SyntheticPayload describes deterministic synthetic contents for
// count elements of Dt, seeded so distinct buffers differ.
type SyntheticPayload struct {
	Seed  uint64
	Dt    *datatype.Datatype
	Count int
}

// Span returns the memory footprint of the layout from its origin.
func (sp SyntheticPayload) Span() int64 { return spanOf(sp.Dt, sp.Count) }

// PackedBytes returns the packed size of the full payload.
func (sp SyntheticPayload) PackedBytes() int64 { return int64(sp.Count) * sp.Dt.Size() }

// Fill materializes the payload into a real buffer: every byte of the
// buffer's span gets the pattern (gaps included), exactly like
// mem.FillSynthetic of the whole region. Packed windows later read
// from the buffer therefore match WritePacked byte-for-byte.
func (sp SyntheticPayload) Fill(b mem.Buffer) { mem.FillSynthetic(b, sp.Seed) }

// WritePacked streams the packed bytes of elements [elem0, elem0+n)
// into w — the generator-side equivalent of packing those elements out
// of a Fill()ed buffer. w is a sha256 digest or a Sig64; neither
// returns errors.
func (sp SyntheticPayload) WritePacked(w io.Writer, elem0, n int) {
	flat := sp.Dt.Flat()
	ext := sp.Dt.Extent()
	var scratch [512]byte
	for e := elem0; e < elem0+n; e++ {
		base := int64(e) * ext
		for _, blk := range flat {
			off, ln := base+blk.Off, blk.Len
			for ln > 0 {
				c := ln
				if c > int64(len(scratch)) {
					c = int64(len(scratch))
				}
				mem.SyntheticAt(sp.Seed, off, scratch[:c])
				w.Write(scratch[:c])
				off += c
				ln -= c
			}
		}
	}
}

// PackedSig returns a 64-bit content signature of elements
// [elem0, elem0+n) — cheap enough to attach to individual modelled
// messages at 16k ranks.
func (sp SyntheticPayload) PackedSig(elem0, n int) uint64 {
	var s Sig64
	sp.WritePacked(&s, elem0, n)
	return s.Sum64()
}

// Sig64 is a streaming FNV-1a 64-bit signature implementing io.Writer,
// so the same WritePacked generator feeds both sha256 digests (world
// acceptance) and per-message signatures (in-flight verification).
type Sig64 struct{ h uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Write folds p into the signature. It never fails.
func (s *Sig64) Write(p []byte) (int, error) {
	h := s.h
	if h == 0 {
		h = fnvOffset64
	}
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	s.h = h
	return len(p), nil
}

// Sum64 returns the signature so far (never zero, so zero can mean
// "unsigned" in message fields).
func (s *Sig64) Sum64() uint64 {
	if s.h == 0 {
		return fnvOffset64
	}
	return s.h
}
