package mpi

import (
	"fmt"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Irregular ("v") collectives: per-peer counts and displacements, the
// building blocks of sparse alltoalls (MoE dispatch), variable-block
// gathers and ragged halo exchanges. Displacements are in units of the
// datatype extent (the MPI convention): block r of a buffer is
// buf.Slice(displs[r]*extent, spanOf(dt, counts[r])). A zero count
// moves no bytes and posts no message; both sides of a zero pair agree
// because the count vectors are part of the collective's signature
// (sender j and receiver i must satisfy scounts_j[i]*size(sdt) ==
// rcounts_i[j]*size(rdt), exactly as in MPI).

func checkVArgs(what string, size int, counts, displs []int) {
	if len(counts) != size || len(displs) != size {
		panic(fmt.Sprintf("mpi: %s wants %d counts and displacements, got %d and %d",
			what, size, len(counts), len(displs)))
	}
	for _, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("mpi: %s negative count", what))
		}
	}
}

// vslot returns block r of an irregular buffer: counts[r] elements of
// dt starting displs[r] extents from the buffer origin.
func vslot(buf mem.Buffer, dt *datatype.Datatype, count, displ int) mem.Buffer {
	return buf.Slice(int64(displ)*dt.Extent(), spanOf(dt, count))
}

// Alltoallv exchanges scounts[j] elements of sdt (at sdispls[j]) with
// every rank j, receiving rcounts[i] elements of rdt (at rdispls[i])
// from every rank i. Topology-aware worlds aggregate the irregular
// node-pair traffic at per-node leaders (hvcoll.go); otherwise the flat
// pairwise exchange runs, skipping zero-count pairs entirely.
func (m *Rank) Alltoallv(sendBuf mem.Buffer, scounts, sdispls []int, sdt *datatype.Datatype,
	recvBuf mem.Buffer, rcounts, rdispls []int, rdt *datatype.Datatype) {
	checkVArgs("Alltoallv", m.Size(), scounts, sdispls)
	checkVArgs("Alltoallv", m.Size(), rcounts, rdispls)
	m.alltoallv(m.p, m.tagBlock(m.alltoallvTags()), sendBuf, scounts, sdispls, sdt, recvBuf, rcounts, rdispls, rdt)
}

func (m *Rank) alltoallv(p *sim.Proc, tag int, sendBuf mem.Buffer, scounts, sdispls []int, sdt *datatype.Datatype,
	recvBuf mem.Buffer, rcounts, rdispls []int, rdt *datatype.Datatype) {
	if m.hierOn() {
		m.hierAlltoallv(p, tag, sendBuf, scounts, sdispls, sdt, recvBuf, rcounts, rdispls, rdt)
		return
	}
	m.alltoallvFlat(p, tag, sendBuf, scounts, sdispls, sdt, recvBuf, rcounts, rdispls, rdt)
}

// alltoallvFlat is the pairwise exchange with zero pairs elided.
func (m *Rank) alltoallvFlat(p *sim.Proc, tag int, sendBuf mem.Buffer, scounts, sdispls []int, sdt *datatype.Datatype,
	recvBuf mem.Buffer, rcounts, rdispls []int, rdt *datatype.Datatype) {
	size := m.Size()

	// Local block first.
	if int64(scounts[m.rank])*sdt.Size() > 0 {
		m.localCopy(p,
			vslot(sendBuf, sdt, scounts[m.rank], sdispls[m.rank]), sdt, scounts[m.rank],
			vslot(recvBuf, rdt, rcounts[m.rank], rdispls[m.rank]), rdt, rcounts[m.rank])
	}

	pow2 := size&(size-1) == 0
	for s := 1; s < size; s++ {
		var sendTo, recvFrom int
		if pow2 {
			sendTo = m.rank ^ s
			recvFrom = sendTo
		} else {
			sendTo = (m.rank + s) % size
			recvFrom = (m.rank - s + size) % size
		}
		var sreq, rreq *Request
		if int64(scounts[sendTo])*sdt.Size() > 0 {
			sreq = m.isendOn(p, vslot(sendBuf, sdt, scounts[sendTo], sdispls[sendTo]), sdt, scounts[sendTo], sendTo, tag)
		}
		if int64(rcounts[recvFrom])*rdt.Size() > 0 {
			rreq = m.Irecv(vslot(recvBuf, rdt, rcounts[recvFrom], rdispls[recvFrom]), rdt, rcounts[recvFrom], recvFrom, tag)
		}
		if sreq != nil {
			sreq.Wait(p)
		}
		if rreq != nil {
			rreq.Wait(p)
		}
	}
}

// Allgatherv gathers counts[r] elements of dt from every rank r (read
// from its own block of buf) into every rank's buf at displs[r]. The
// count and displacement vectors are global knowledge — every rank
// passes the same ones — so zero blocks are skipped symmetrically.
func (m *Rank) Allgatherv(buf mem.Buffer, counts, displs []int, dt *datatype.Datatype) {
	checkVArgs("Allgatherv", m.Size(), counts, displs)
	m.allgatherv(m.p, m.tagBlock(m.allgatherTags()), buf, counts, displs, dt)
}

func (m *Rank) allgatherv(p *sim.Proc, tag int, buf mem.Buffer, counts, displs []int, dt *datatype.Datatype) {
	if m.hierOn() {
		m.hierAllgatherv(p, tag, buf, counts, displs, dt)
		return
	}
	m.allgathervFlat(p, tag, buf, counts, displs, dt)
}

// allgathervFlat is the ring algorithm with zero blocks elided: in step
// s the rank forwards block (rank-s) to the right and receives block
// (rank-s-1) from the left; a zero block is simply not sent, and the
// neighbour — holding the same count vector — does not post for it.
func (m *Rank) allgathervFlat(p *sim.Proc, tag int, buf mem.Buffer, counts, displs []int, dt *datatype.Datatype) {
	size := m.Size()
	if size == 1 {
		return
	}
	right := (m.rank + 1) % size
	left := (m.rank - 1 + size) % size
	for s := 0; s < size-1; s++ {
		sendBlk := (m.rank - s + size) % size
		recvBlk := (m.rank - s - 1 + size) % size
		var sreq, rreq *Request
		if int64(counts[sendBlk])*dt.Size() > 0 {
			sreq = m.isendOn(p, vslot(buf, dt, counts[sendBlk], displs[sendBlk]), dt, counts[sendBlk], right, tag+s)
		}
		if int64(counts[recvBlk])*dt.Size() > 0 {
			rreq = m.Irecv(vslot(buf, dt, counts[recvBlk], displs[recvBlk]), dt, counts[recvBlk], left, tag+s)
		}
		if sreq != nil {
			sreq.Wait(p)
		}
		if rreq != nil {
			rreq.Wait(p)
		}
	}
}

// Gatherv collects each rank's (sendBuf, sdt, scount) into root's
// recvBuf at rdispls[r]. Only the root reads rcounts/rdispls (MPI
// semantics — non-root ranks may pass nil), so the algorithm is the
// linear flat one on every topology: the root is the only rank that
// knows the irregular layout, which rules out leader staging.
func (m *Rank) Gatherv(sendBuf mem.Buffer, sdt *datatype.Datatype, scount int,
	recvBuf mem.Buffer, rcounts, rdispls []int, rdt *datatype.Datatype, root int) {
	m.gatherv(m.p, m.tagBlock(m.gatherTags()), sendBuf, sdt, scount, recvBuf, rcounts, rdispls, rdt, root)
}

func (m *Rank) gatherv(p *sim.Proc, tag int, sendBuf mem.Buffer, sdt *datatype.Datatype, scount int,
	recvBuf mem.Buffer, rcounts, rdispls []int, rdt *datatype.Datatype, root int) {
	size := m.Size()
	if m.rank != root {
		if int64(scount)*sdt.Size() > 0 {
			m.sendOn(p, sendBuf, sdt, scount, root, tag+m.rank)
		}
		return
	}
	checkVArgs("Gatherv", size, rcounts, rdispls)
	reqs := make([]*Request, 0, size-1)
	for r := 0; r < size; r++ {
		if int64(rcounts[r])*rdt.Size() == 0 {
			continue
		}
		slot := vslot(recvBuf, rdt, rcounts[r], rdispls[r])
		if r == root {
			m.localCopy(p, sendBuf, sdt, scount, slot, rdt, rcounts[r])
			continue
		}
		reqs = append(reqs, m.Irecv(slot, rdt, rcounts[r], r, tag+r))
	}
	for _, rq := range reqs {
		rq.Wait(p)
	}
}

// Scatterv distributes scounts[r] elements of sdt from root's sendBuf
// at sdispls[r] to rank r's recvBuf. Only the root reads the vectors.
func (m *Rank) Scatterv(sendBuf mem.Buffer, scounts, sdispls []int, sdt *datatype.Datatype,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount, root int) {
	m.scatterv(m.p, m.tagBlock(m.gatherTags()), sendBuf, scounts, sdispls, sdt, recvBuf, rdt, rcount, root)
}

func (m *Rank) scatterv(p *sim.Proc, tag int, sendBuf mem.Buffer, scounts, sdispls []int, sdt *datatype.Datatype,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount, root int) {
	size := m.Size()
	if m.rank != root {
		if int64(rcount)*rdt.Size() > 0 {
			m.recvOn(p, recvBuf, rdt, rcount, root, tag+m.rank)
		}
		return
	}
	checkVArgs("Scatterv", size, scounts, sdispls)
	reqs := make([]*Request, 0, size-1)
	for r := 0; r < size; r++ {
		if int64(scounts[r])*sdt.Size() == 0 {
			continue
		}
		slot := vslot(sendBuf, sdt, scounts[r], sdispls[r])
		if r == root {
			m.localCopy(p, slot, sdt, scounts[r], recvBuf, rdt, rcount)
			continue
		}
		reqs = append(reqs, m.isendOn(p, slot, sdt, scounts[r], r, tag+r))
	}
	for _, rq := range reqs {
		rq.Wait(p)
	}
}
