package mpi

import (
	"encoding/binary"
	"math"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
)

func putF64(b mem.Buffer, i int, v float64) {
	binary.LittleEndian.PutUint64(b.Bytes()[i*8:], math.Float64bits(v))
}
func getF64(b mem.Buffer, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b.Bytes()[i*8:]))
}

func TestReduceSumGPU(t *testing.T) {
	const elems = 30000 // 240 KB: rendezvous
	dt := datatype.Contiguous(elems, datatype.Float64)
	for root := 0; root < 4; root++ {
		w := NewWorld(fourRanks())
		var result mem.Buffer
		w.Run(func(m *Rank) {
			send := m.Malloc(dt.Size())
			for i := 0; i < elems; i++ {
				putF64(send, i, float64((m.Rank()+1)*(i%7+1)))
			}
			var recv mem.Buffer
			if m.Rank() == root {
				recv = m.Malloc(dt.Size())
				result = recv
			}
			m.Reduce(send, recv, dt, 1, OpSum, root)
		})
		for i := 0; i < elems; i += 997 {
			want := float64((1 + 2 + 3 + 4) * (i%7 + 1))
			if got := getF64(result, i); got != want {
				t.Fatalf("root %d elem %d = %v, want %v", root, i, got, want)
			}
		}
	}
}

func TestReduceMaxHost(t *testing.T) {
	const elems = 20000
	dt := datatype.Contiguous(elems, datatype.Float64)
	w := NewWorld(fourRanks())
	var result mem.Buffer
	w.Run(func(m *Rank) {
		send := m.MallocHost(dt.Size())
		for i := 0; i < elems; i++ {
			// Rank (i mod 4) holds the max for element i.
			v := float64(10 * (m.Rank() + 1))
			if m.Rank() == i%4 {
				v = 1000 + float64(i)
			}
			putF64(send, i, v)
		}
		var recv mem.Buffer
		if m.Rank() == 0 {
			recv = m.MallocHost(dt.Size())
			result = recv
		}
		m.Reduce(send, recv, dt, 1, OpMax, 0)
	})
	for i := 0; i < elems; i += 501 {
		if got := getF64(result, i); got != 1000+float64(i) {
			t.Fatalf("elem %d = %v, want %v", i, got, 1000+float64(i))
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	const elems = 25000
	dt := datatype.Contiguous(elems, datatype.Float64)
	w := NewWorld(fourRanks())
	results := make([]mem.Buffer, 4)
	w.Run(func(m *Rank) {
		send := m.Malloc(dt.Size())
		for i := 0; i < elems; i++ {
			putF64(send, i, float64(m.Rank()+1))
		}
		recv := m.Malloc(dt.Size())
		m.Allreduce(send, recv, dt, 1, OpSum)
		results[m.Rank()] = recv
	})
	for r := 0; r < 4; r++ {
		for i := 0; i < elems; i += 1234 {
			if got := getF64(results[r], i); got != 10 {
				t.Fatalf("rank %d elem %d = %v, want 10", r, i, got)
			}
		}
	}
}

func TestReduceInt64Sum(t *testing.T) {
	const elems = 16000
	dt := datatype.Contiguous(elems, datatype.Int64)
	w := NewWorld(fourRanks())
	var result mem.Buffer
	w.Run(func(m *Rank) {
		send := m.MallocHost(dt.Size())
		for i := 0; i < elems; i++ {
			binary.LittleEndian.PutUint64(send.Bytes()[i*8:], uint64(m.Rank()+1))
		}
		var recv mem.Buffer
		if m.Rank() == 0 {
			recv = m.MallocHost(dt.Size())
			result = recv
		}
		m.Reduce(send, recv, dt, 1, OpSum, 0)
	})
	for i := 0; i < elems; i += 333 {
		if got := binary.LittleEndian.Uint64(result.Bytes()[i*8:]); got != 10 {
			t.Fatalf("elem %d = %d, want 10", i, got)
		}
	}
}

func TestReduceRejectsNonContiguous(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w := NewWorld(twoRanksSameGPU())
	w.Run(func(m *Rank) {
		vec := datatype.Vector(4, 1, 2, datatype.Float64)
		m.Reduce(m.MallocHost(1024), m.MallocHost(1024), vec, 1, OpSum, 0)
	})
}
