package mpi

import (
	"bytes"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
)

// fourRanks spreads four ranks over two nodes with two GPUs each, so
// collectives cross both the SM and IB BTLs.
func fourRanks() Config {
	return Config{Ranks: []Placement{
		{Node: 0, GPU: 0}, {Node: 0, GPU: 1}, {Node: 1, GPU: 0}, {Node: 1, GPU: 1},
	}}
}

func TestBcastGPUTriangular(t *testing.T) {
	dt := shapes.LowerTriangular(256) // ~260 KB: rendezvous
	root := 2
	w := NewWorld(fourRanks())
	imgs := make([][]byte, 4)
	w.Run(func(m *Rank) {
		buf := m.Malloc(layoutSpan(dt, 1))
		if m.Rank() == root {
			mem.FillPattern(buf, 17)
		}
		m.Bcast(buf, dt, 1, root)
		imgs[m.Rank()] = cpuPack(dt, 1, buf.Bytes())
	})
	for r := 0; r < 4; r++ {
		if !bytes.Equal(imgs[r], imgs[root]) {
			t.Fatalf("rank %d bcast data differs from root", r)
		}
	}
}

func TestBcastEveryRoot(t *testing.T) {
	dt := datatype.Contiguous(50000, datatype.Float64) // 400 KB
	for root := 0; root < 4; root++ {
		w := NewWorld(fourRanks())
		imgs := make([][]byte, 4)
		w.Run(func(m *Rank) {
			buf := m.MallocHost(dt.Size())
			if m.Rank() == root {
				mem.FillPattern(buf, uint64(root+5))
			}
			m.Bcast(buf, dt, 1, root)
			imgs[m.Rank()] = append([]byte(nil), buf.Bytes()...)
		})
		for r := 0; r < 4; r++ {
			if !bytes.Equal(imgs[r], imgs[root]) {
				t.Fatalf("root %d: rank %d differs", root, r)
			}
		}
	}
}

func TestAllgatherGPUVector(t *testing.T) {
	// Each rank contributes a strided sub-matrix slot; after Allgather
	// every rank holds all four slots.
	n := 128
	dt := shapes.SubMatrix(n, n, n+16) // strided: non-contiguous slots
	w := NewWorld(fourRanks())
	imgs := make([][]byte, 4)
	w.Run(func(m *Rank) {
		stride := dt.Extent()
		buf := m.Malloc(4 * stride)
		// Fill only my slot.
		mem.FillPattern(buf.Slice(int64(m.Rank())*stride, spanOf(dt, 1)), uint64(100+m.Rank()))
		m.Allgather(buf, dt, 1)
		// Pack all four slots for comparison.
		var all []byte
		for r := 0; r < 4; r++ {
			all = append(all, cpuPack(dt, 1, buf.Slice(int64(r)*stride, spanOf(dt, 1)).Bytes())...)
		}
		imgs[m.Rank()] = all
	})
	for r := 1; r < 4; r++ {
		if !bytes.Equal(imgs[r], imgs[0]) {
			t.Fatalf("rank %d allgather result differs from rank 0", r)
		}
	}
	// Each slot must carry its contributor's pattern (non-zero).
	zero := make([]byte, len(imgs[0]))
	if bytes.Equal(imgs[0], zero) {
		t.Fatal("allgather produced zero data")
	}
}

func TestCollectivesBackToBack(t *testing.T) {
	// Tag management: consecutive collectives must not cross-match.
	dt := datatype.Contiguous(100000, datatype.Float64)
	w := NewWorld(fourRanks())
	ok := true
	w.Run(func(m *Rank) {
		buf := m.MallocHost(dt.Size())
		for iter := 0; iter < 3; iter++ {
			if m.Rank() == 0 {
				mem.FillPattern(buf, uint64(iter))
			}
			m.Bcast(buf, dt, 1, 0)
			m.Barrier()
			ref := m.MallocHost(dt.Size())
			mem.FillPattern(ref, uint64(iter))
			if !mem.Equal(ref, buf) {
				ok = false
			}
		}
	})
	if !ok {
		t.Fatal("back-to-back collectives corrupted data")
	}
}
