package mpi

import (
	"bytes"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
)

func TestGatherGPUVectors(t *testing.T) {
	n := 128
	sdt := shapes.SubMatrix(n, n, n+16) // each rank contributes a strided piece
	rdt := datatype.Contiguous(n*n, datatype.Float64)
	root := 1
	w := NewWorld(fourRanks())
	var want [4][]byte
	var got []byte
	w.Run(func(m *Rank) {
		src := m.Malloc(layoutSpan(sdt, 1))
		mem.FillPattern(src, uint64(m.Rank()+1))
		want[m.Rank()] = cpuPack(sdt, 1, src.Bytes())
		var recv mem.Buffer
		if m.Rank() == root {
			recv = m.Malloc(4 * rdt.Size())
		}
		m.Gather(src, sdt, 1, recv, rdt, 1, root)
		if m.Rank() == root {
			got = append([]byte(nil), recv.Bytes()...)
		}
	})
	for r := 0; r < 4; r++ {
		seg := got[r*len(want[r]) : (r+1)*len(want[r])]
		if !bytes.Equal(seg, want[r]) {
			t.Fatalf("gathered slot %d differs", r)
		}
	}
}

func TestScatterInvertsGather(t *testing.T) {
	n := 96
	dt := datatype.Contiguous(n*n, datatype.Float64)
	root := 0
	w := NewWorld(fourRanks())
	var slotImgs [4][]byte
	var gotImgs [4][]byte
	w.Run(func(m *Rank) {
		var send mem.Buffer
		if m.Rank() == root {
			send = m.Malloc(4 * dt.Size())
			mem.FillPattern(send, 31)
			for r := 0; r < 4; r++ {
				slotImgs[r] = append([]byte(nil), send.Slice(int64(r)*dt.Size(), dt.Size()).Bytes()...)
			}
		}
		recv := m.Malloc(dt.Size())
		m.Scatter(send, dt, 1, recv, dt, 1, root)
		gotImgs[m.Rank()] = append([]byte(nil), recv.Bytes()...)
	})
	for r := 0; r < 4; r++ {
		if !bytes.Equal(gotImgs[r], slotImgs[r]) {
			t.Fatalf("scatter slot %d differs", r)
		}
	}
}

func TestAlltoallGPU(t *testing.T) {
	for _, ranks := range [][]Placement{
		fourRanks().Ranks,
		{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}, {Node: 1, GPU: 0}}, // non power of two
	} {
		size := len(ranks)
		slotElems := 20000 // 160 KB per slot: rendezvous
		dt := datatype.Contiguous(slotElems, datatype.Float64)
		w := NewWorld(Config{Ranks: ranks})
		got := make([][]byte, size)
		w.Run(func(m *Rank) {
			send := m.Malloc(int64(size) * dt.Size())
			recv := m.Malloc(int64(size) * dt.Size())
			// Slot j gets a pattern identifying (sender, receiver).
			for j := 0; j < size; j++ {
				mem.FillPattern(send.Slice(int64(j)*dt.Size(), dt.Size()), uint64(m.Rank()*100+j))
			}
			m.Alltoall(send, dt, 1, recv, dt, 1)
			got[m.Rank()] = append([]byte(nil), recv.Bytes()...)
		})
		// recv slot i at rank j must equal pattern (i*100 + j).
		ref := mem.NewSpace("ref", mem.Host, dt.Size())
		rb := ref.Alloc(dt.Size(), 1)
		for j := 0; j < size; j++ {
			for i := 0; i < size; i++ {
				mem.FillPattern(rb, uint64(i*100+j))
				seg := got[j][i*int(dt.Size()) : (i+1)*int(dt.Size())]
				if !bytes.Equal(seg, rb.Bytes()) {
					t.Fatalf("size %d: rank %d slot %d corrupted", size, j, i)
				}
			}
		}
	}
}

func TestAlltoallDatatypeReshape(t *testing.T) {
	// Send slots as strided vectors, receive contiguous: the distributed
	// transpose building block.
	n := 64
	sdt := shapes.SubMatrix(n, n, n+8)
	rdt := datatype.Contiguous(n*n, datatype.Float64)
	w := NewWorld(fourRanks())
	var ok = true
	w.Run(func(m *Rank) {
		sstride := sdt.Extent()
		send := m.Malloc(4 * sstride)
		recv := m.Malloc(4 * rdt.Size())
		for j := 0; j < 4; j++ {
			mem.FillPattern(send.Slice(int64(j)*sstride, layoutSpan(sdt, 1)), uint64(m.Rank()*10+j))
		}
		m.Alltoall(send, sdt, 1, recv, rdt, 1)
		// Verify slot m.Rank() (self copy) survived the reshape.
		self := cpuPack(sdt, 1, send.Slice(int64(m.Rank())*sstride, layoutSpan(sdt, 1)).Bytes())
		gotSelf := recv.Slice(int64(m.Rank())*rdt.Size(), rdt.Size()).Bytes()
		if !bytes.Equal(self, gotSelf) {
			ok = false
		}
	})
	if !ok {
		t.Fatal("alltoall reshape corrupted the local slot")
	}
}
