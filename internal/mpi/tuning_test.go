package mpi

import (
	"bytes"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// twoRankConfig is a minimal two-node world.
func twoRankConfig() Config {
	return Config{Ranks: []Placement{{Node: 0}, {Node: 1}}}
}

// protoSpans runs one 1 KiB host send and returns which protocol spans
// it produced.
func protoSpans(t *testing.T, cfg Config) map[string]bool {
	t.Helper()
	dt := datatype.Contiguous(128, datatype.Int64)
	w := NewWorld(cfg)
	rec := sim.NewRecorder(w.Engine())
	w.Run(func(m *Rank) {
		buf := m.MallocHost(dt.Size())
		if m.Rank() == 0 {
			mem.FillPattern(buf, 3)
			m.Send(buf, dt, 1, 1, 9)
		} else {
			m.Recv(buf, dt, 1, 0, 9)
		}
	})
	seen := map[string]bool{}
	for _, tk := range rec.Tracks() {
		for _, sp := range tk.Spans {
			seen[sp.Name] = true
		}
	}
	return seen
}

// TestEagerZeroSentinel is the regression test for the setDefaults
// zero-value ambiguity: under the legacy ProtoOptions an explicit
// EagerLimit of 0 silently became the 64 KiB default (chaos tests wrote
// 1 to approximate "always rendezvous"); Tuning.Eager's pointer makes 0
// a real setting.
func TestEagerZeroSentinel(t *testing.T) {
	// nil Eager: the default, so a 1 KiB message goes eagerly.
	cfg := twoRankConfig()
	cfg.Tuning = &Tuning{}
	if seen := protoSpans(t, cfg); !seen["mpi.eager.send"] || seen["mpi.rts"] {
		t.Fatal("default tuning did not send a 1 KiB message eagerly")
	}
	// Eager(0): genuinely forces rendezvous for every message.
	cfg = twoRankConfig()
	cfg.Tuning = &Tuning{Eager: Eager(0)}
	if seen := protoSpans(t, cfg); seen["mpi.eager.send"] || !seen["mpi.rts"] {
		t.Fatal("Eager(0) did not force the rendezvous protocol")
	}
	// The legacy field cannot express that: EagerLimit 0 resolves to the
	// default — pinned here so the shim's behavior stays documented.
	cfg = twoRankConfig()
	cfg.Proto = ProtoOptions{EagerLimit: 0}
	if seen := protoSpans(t, cfg); !seen["mpi.eager.send"] {
		t.Fatal("legacy EagerLimit 0 should still mean the 64 KiB default")
	}
}

// TestTuningResolvesLikeProtoOptions proves the deprecation shim: a
// world built from legacy ProtoOptions/Strategy fields and one built
// from the equivalent Tuning resolve to identical knobs and identical
// virtual timelines.
func TestTuningResolvesLikeProtoOptions(t *testing.T) {
	run := func(cfg Config) (Tuning, sim.Time, []byte) {
		dt := datatype.Contiguous(1<<14, datatype.Int64) // 128 KiB: rendezvous
		w := NewWorld(cfg)
		var img []byte
		w.Run(func(m *Rank) {
			buf := m.MallocHost(dt.Size())
			if m.Rank() == 0 {
				mem.FillPattern(buf, 77)
				m.Send(buf, dt, 1, 1, 5)
			} else {
				m.Recv(buf, dt, 1, 0, 5)
				img = append([]byte(nil), buf.Bytes()...)
			}
		})
		return w.Tuning(), w.Engine().Now(), img
	}

	legacy := twoRankConfig()
	legacy.Proto = ProtoOptions{EagerLimit: 1, FragBytes: 8 << 10, PipelineDepth: 2}
	lt, ltime, limg := run(legacy)

	modern := twoRankConfig()
	modern.Tuning = &Tuning{Eager: Eager(1), FragBytes: 8 << 10, PipelineDepth: 2}
	mt, mtime, mimg := run(modern)

	if *lt.Eager != *mt.Eager || lt.FragBytes != mt.FragBytes || lt.PipelineDepth != mt.PipelineDepth ||
		lt.AMLatency != mt.AMLatency || lt.RemoteAccessEff != mt.RemoteAccessEff || lt.Collectives != mt.Collectives {
		t.Fatalf("resolved knobs differ: legacy %+v vs tuning %+v", lt, mt)
	}
	if ltime != mtime {
		t.Fatalf("virtual time differs: legacy %v vs tuning %v", ltime, mtime)
	}
	if !bytes.Equal(limg, mimg) {
		t.Fatal("payload differs between legacy and tuning worlds")
	}
}

// TestTuningDefaults pins the resolved default knob set — the values
// every committed golden trace was recorded under.
func TestTuningDefaults(t *testing.T) {
	w := NewWorld(twoRankConfig())
	tun := w.Tuning()
	if *tun.Eager != 64<<10 || tun.FragBytes != 1<<20 || tun.PipelineDepth != 4 ||
		tun.AMLatency != 500*sim.Nanosecond || tun.RemoteAccessEff != 0.7 ||
		tun.Collectives != CollAuto || tun.DirectRemoteUnpack {
		t.Fatalf("unexpected default tuning: %+v", tun)
	}
	if tun.Strategy == nil || tun.Strategy.Name() != (&PipelinedStrategy{}).Name() {
		t.Fatal("default strategy is not the pipelined one")
	}
}

// TestCollModeRoundTrip: the table encoding parses back to itself.
func TestCollModeRoundTrip(t *testing.T) {
	for _, c := range []CollMode{CollAuto, CollFlat, CollHier, CollSwitch} {
		got, ok := ParseCollMode(c.String())
		if !ok || got != c {
			t.Fatalf("CollMode %v does not round-trip (got %v, ok %v)", c, got, ok)
		}
	}
	if _, ok := ParseCollMode("bogus"); ok {
		t.Fatal("bogus mode parsed")
	}
}
