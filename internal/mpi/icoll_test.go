package mpi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
)

// TestIcollCompletesAndCounts pins the request lifecycle: not done at
// call time (the schedule has not run), done after Wait, and the
// progress-engine counter back to zero at the quiescent point.
func TestIcollCompletesAndCounts(t *testing.T) {
	dt := shapes.SubMatrix(16, 16, 24)
	w := NewWorld(blockedConfig(1, 4, false))
	size := w.Size()
	stride := int64(2) * dt.Extent()
	var doneEarly, outstandingWrong bool
	imgs := make([][]byte, size)
	w.Run(func(m *Rank) {
		buf := m.Malloc(spanOf(dt, 2*size))
		mem.FillPattern(buf.Slice(int64(m.Rank())*stride, spanOf(dt, 2)), uint64(300+m.Rank()))
		req := m.Iallgather(buf, dt, 2)
		if req.Done() {
			doneEarly = true
		}
		if m.CollOutstanding() != 1 {
			outstandingWrong = true
		}
		req.Wait(m.Proc())
		if !req.Done() || m.CollOutstanding() != 0 {
			outstandingWrong = true
		}
		imgs[m.Rank()] = cpuPack(dt, 2*size, buf.Bytes())
	})
	checkQuiescent(t, w, "iallgather")
	w.Close()
	if doneEarly {
		t.Error("request done before the schedule could have run")
	}
	if outstandingWrong {
		t.Error("CollOutstanding did not track the request lifecycle")
	}
	for r := 1; r < size; r++ {
		if !bytes.Equal(imgs[r], imgs[0]) {
			t.Fatalf("rank %d Iallgather result differs from rank 0", r)
		}
	}
}

// TestIcollConcurrentInFlight launches four different collectives
// before waiting on any of them — on a flat and on a hierarchical
// world — and checks every result against its blocking equivalent.
func TestIcollConcurrentInFlight(t *testing.T) {
	dt := shapes.SubMatrix(8, 8, 12)
	rdt := datatype.Contiguous(512, datatype.Int64)
	for _, sh := range []struct{ nodes, rpn int }{{1, 4}, {2, 2}, {3, 2}} {
		size := sh.nodes * sh.rpn
		sc := irregularCounts(size)
		rc := transposeCounts(sc)
		bImgs := make([][]byte, size)  // bcast results
		vImgs := make([][][]byte, size) // alltoallv results
		sums := make([]int64, size)
		w := NewWorld(blockedConfig(sh.nodes, sh.rpn, false))
		w.Run(func(m *Rank) {
			me := m.Rank()
			bbuf := m.Malloc(spanOf(dt, 3))
			if me == 0 {
				mem.FillPattern(bbuf, 91)
			}
			send := m.MallocHost(rdt.Size())
			recv := m.MallocHost(rdt.Size())
			for i := 0; i < 512; i++ {
				binary64Put(send, i, int64(me+1))
			}
			sd, sspan := packedDispls(dt, sc[me])
			rd, rspan := packedDispls(dt, rc[me])
			vs, vr := m.Malloc(sspan), m.Malloc(rspan)
			for j := 0; j < size; j++ {
				if sc[me][j] > 0 {
					mem.FillPattern(vslot(vs, dt, sc[me][j], sd[j]), uint64(5000+me*size+j))
				}
			}

			r1 := m.Ibcast(bbuf, dt, 3, 0)
			r2 := m.Iallreduce(send, recv, rdt, 1, OpSum)
			r3 := m.Ialltoallv(vs, sc[me], sd, dt, vr, rc[me], rd, dt)
			r4 := m.Ibarrier()
			m.WaitAll(r1, r2, r3, r4)

			bImgs[me] = cpuPack(dt, 3, bbuf.Bytes())
			sums[me] = binary64Get(recv, 17)
			vImgs[me] = make([][]byte, size)
			for j := 0; j < size; j++ {
				if rc[me][j] > 0 {
					vImgs[me][j] = cpuPack(dt, rc[me][j], vslot(vr, dt, rc[me][j], rd[j]).Bytes())
				}
			}
		})
		checkQuiescent(t, w, fmt.Sprintf("icoll concurrent %dx%d", sh.nodes, sh.rpn))
		for r := 0; r < size; r++ {
			if m := w.RankHandle(r); m.CollOutstanding() != 0 {
				t.Fatalf("%dx%d: rank %d still has %d collectives outstanding", sh.nodes, sh.rpn, r, m.CollOutstanding())
			}
		}
		w.Close()

		wantSum := int64(size * (size + 1) / 2)
		for r := 0; r < size; r++ {
			if !bytes.Equal(bImgs[r], bImgs[0]) {
				t.Fatalf("%dx%d: rank %d Ibcast result differs", sh.nodes, sh.rpn, r)
			}
			if sums[r] != wantSum {
				t.Fatalf("%dx%d: rank %d Iallreduce sum = %d, want %d", sh.nodes, sh.rpn, r, sums[r], wantSum)
			}
		}
		// Cross-check the alltoallv payloads against a blocking run.
		blocking := make([][][]byte, size)
		w2 := NewWorld(blockedConfig(sh.nodes, sh.rpn, false))
		w2.Run(func(m *Rank) {
			me := m.Rank()
			sd, sspan := packedDispls(dt, sc[me])
			rd, rspan := packedDispls(dt, rc[me])
			vs, vr := m.Malloc(sspan), m.Malloc(rspan)
			for j := 0; j < size; j++ {
				if sc[me][j] > 0 {
					mem.FillPattern(vslot(vs, dt, sc[me][j], sd[j]), uint64(5000+me*size+j))
				}
			}
			m.Alltoallv(vs, sc[me], sd, dt, vr, rc[me], rd, dt)
			blocking[me] = make([][]byte, size)
			for j := 0; j < size; j++ {
				if rc[me][j] > 0 {
					blocking[me][j] = cpuPack(dt, rc[me][j], vslot(vr, dt, rc[me][j], rd[j]).Bytes())
				}
			}
		})
		w2.Close()
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				if !bytes.Equal(vImgs[i][j], blocking[i][j]) {
					t.Fatalf("%dx%d: rank %d block %d: Ialltoallv differs from Alltoallv", sh.nodes, sh.rpn, i, j)
				}
			}
		}
	}
}

func binary64Put(b mem.Buffer, i int, v int64) {
	bs := b.Bytes()
	for k := 0; k < 8; k++ {
		bs[i*8+k] = byte(uint64(v) >> (8 * k))
	}
}

func binary64Get(b mem.Buffer, i int) int64 {
	bs := b.Bytes()
	var u uint64
	for k := 0; k < 8; k++ {
		u |= uint64(bs[i*8+k]) << (8 * k)
	}
	return int64(u)
}

// TestIcollOverlapsKernel drives the headline scenario: an Iallgatherv
// in flight while the rank's GPU runs compute kernels, then Wait. The
// result must be exactly the blocking result, and the kernels must not
// have serialized behind the collective (the overlapped run must be
// cheaper than collective-then-kernels would be).
func TestIcollOverlapsKernel(t *testing.T) {
	dt := shapes.SubMatrix(64, 64, 96)
	counts := []int{3, 5}
	displs, span := packedDispls(dt, counts)
	const kernels = 4
	const kernelBytes = 8 << 20

	run := func(overlap bool) (imgs [][]byte, elapsed int64) {
		w := NewWorld(blockedConfig(2, 1, false)) // two nodes, IB tier
		size := w.Size()
		imgs = make([][]byte, size)
		w.Run(func(m *Rank) {
			me := m.Rank()
			buf := m.Malloc(span)
			mem.FillPattern(vslot(buf, dt, counts[me], displs[me]), uint64(40+me))
			dev := m.Ctx().Node().GPU(m.place.GPU)
			if overlap {
				req := m.Iallgatherv(buf, counts, displs, dt)
				for k := 0; k < kernels; k++ {
					dev.Compute(m.Engine().Stream(), kernelBytes, 0).Await(m.Proc())
				}
				req.Wait(m.Proc())
			} else {
				m.Allgatherv(buf, counts, displs, dt)
				for k := 0; k < kernels; k++ {
					dev.Compute(m.Engine().Stream(), kernelBytes, 0).Await(m.Proc())
				}
			}
			imgs[me] = make([]byte, 0)
			for r := 0; r < size; r++ {
				imgs[me] = append(imgs[me], cpuPack(dt, counts[r], vslot(buf, dt, counts[r], displs[r]).Bytes())...)
			}
		})
		checkQuiescent(t, w, "iallgatherv overlap")
		end := int64(w.Engine().Now())
		w.Close()
		return imgs, end
	}

	oImgs, oTime := run(true)
	bImgs, bTime := run(false)
	for r := range oImgs {
		if !bytes.Equal(oImgs[r], bImgs[r]) {
			t.Fatalf("rank %d: overlapped Iallgatherv result differs from blocking", r)
		}
	}
	if oTime >= bTime {
		t.Fatalf("overlapped run (%d) not faster than blocking run (%d): no overlap happened", oTime, bTime)
	}
}

// TestIcollWaitallRace runs worlds with several in-flight collectives
// on parallel goroutines so `go test -race` can see any shared state
// touched by the progress engine.
func TestIcollWaitallRace(t *testing.T) {
	dt := shapes.SubMatrix(8, 8, 12)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := []struct{ nodes, rpn int }{{1, 4}, {2, 2}}[i%2]
			size := sh.nodes * sh.rpn
			sc := irregularCounts(size)
			rc := transposeCounts(sc)
			w := NewWorld(blockedConfig(sh.nodes, sh.rpn, i%3 == 0))
			ok := make([]bool, size)
			w.Run(func(m *Rank) {
				me := m.Rank()
				sd, sspan := packedDispls(dt, sc[me])
				rd, rspan := packedDispls(dt, rc[me])
				vs, vr := m.Malloc(sspan), m.Malloc(rspan)
				sent := make([][]byte, size)
				for j := 0; j < size; j++ {
					if sc[me][j] > 0 {
						blk := vslot(vs, dt, sc[me][j], sd[j])
						mem.FillPattern(blk, uint64(i*1000+me*size+j))
						sent[j] = cpuPack(dt, sc[me][j], blk.Bytes())
					}
				}
				reqs := []*Request{
					m.Ialltoallv(vs, sc[me], sd, dt, vr, rc[me], rd, dt),
					m.Ibarrier(),
				}
				m.WaitAll(reqs...)
				ok[me] = m.CollOutstanding() == 0
			})
			w.Close()
			for r := 0; r < size; r++ {
				if !ok[r] {
					errs <- fmt.Sprintf("worker %d rank %d: outstanding collectives after Waitall", i, r)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
