package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// fillF64 writes f(k) into element k of a float64 buffer.
func fillF64(b mem.Buffer, n int, f func(k int) float64) {
	raw := b.Bytes()
	for k := 0; k < n; k++ {
		binary.LittleEndian.PutUint64(raw[8*k:], math.Float64bits(f(k)))
	}
}

// readF64 returns element k of a float64 buffer.
func readF64(b mem.Buffer, k int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b.Bytes()[8*k:]))
}

// contrib is the per-rank allreduce contribution: integer-valued
// float64s, so the sum is exact under any association order and every
// algorithm must produce byte-identical results.
func contrib(rank, k int) float64 { return float64((k%17 + 1) * (rank + 1)) }

// TestGroupAllreduceOracle checks ring, tree, and the native world
// Allreduce against a reference elementwise sum, on a hierarchical
// (blocked multi-node) world and on the forced-flat fallback, for
// group sizes that exercise uneven and empty ring chunks.
func TestGroupAllreduceOracle(t *testing.T) {
	shapes := []struct {
		nodes, rpn int
		flat       bool
	}{{4, 4, false}, {4, 4, true}, {3, 2, false}, {2, 2, true}}
	counts := []int{1037, 64, 3, 1} // uneven chunks, even, fewer than ranks, single
	for _, sh := range shapes {
		size := sh.nodes * sh.rpn
		groups := [][]int{identityGroup(size)}
		odd := []int{}
		for r := 1; r < size; r += 2 {
			odd = append(odd, r)
		}
		groups = append(groups, odd)
		for gi, members := range groups {
			for _, n := range counts {
				for _, alg := range []AllreduceAlg{AllreduceRing, AllreduceTree} {
					name := fmt.Sprintf("%dx%d flat=%v group%d n=%d %s", sh.nodes, sh.rpn, sh.flat, gi, n, alg)
					w := NewWorld(blockedConfig(sh.nodes, sh.rpn, sh.flat))
					g := w.NewGroup(members)
					dt := datatype.Float64
					sum := 0
					for _, r := range members {
						sum += r + 1
					}
					w.Run(func(m *Rank) {
						if !g.Contains(m.Rank()) {
							return
						}
						sb := m.Malloc(int64(n) * 8)
						rb := m.Malloc(int64(n) * 8)
						fillF64(sb, n, func(k int) float64 { return contrib(m.Rank(), k) })
						g.Allreduce(m, sb, rb, dt, n, OpSum, alg)
						for k := 0; k < n; k++ {
							want := float64((k%17 + 1) * sum)
							if got := readF64(rb, k); got != want {
								t.Errorf("%s: rank %d elem %d = %v, want %v", name, m.Rank(), k, got, want)
								return
							}
						}
					})
					checkQuiescent(t, w, name)
					w.Close()
				}
			}
		}

		// Native world Allreduce against the same reference sum:
		// the hier/flat dispatch is inside Reduce+Bcast.
		n := 513
		dt := datatype.Float64
		w := NewWorld(blockedConfig(sh.nodes, sh.rpn, sh.flat))
		w.Run(func(m *Rank) {
			sb := m.Malloc(int64(n) * 8)
			rb := m.Malloc(int64(n) * 8)
			fillF64(sb, n, func(k int) float64 { return contrib(m.Rank(), k) })
			m.Allreduce(sb, rb, dt, n, OpSum)
			for k := 0; k < n; k++ {
				want := float64((k%17 + 1) * size * (size + 1) / 2)
				if got := readF64(rb, k); got != want {
					t.Errorf("native %dx%d flat=%v: rank %d elem %d = %v, want %v",
						sh.nodes, sh.rpn, sh.flat, m.Rank(), k, got, want)
					return
				}
			}
		})
		checkQuiescent(t, w, "native allreduce")
		w.Close()
	}
}

// TestGroupIndependentJobs co-runs two disjoint groups in one world,
// each iterating its own barriers and allreduces a different number of
// times, and checks both oracles: group traffic must never cross-match
// between jobs.
func TestGroupIndependentJobs(t *testing.T) {
	const nodes, rpn = 4, 2
	size := nodes * rpn
	w := NewWorld(blockedConfig(nodes, rpn, false))
	a := w.NewGroup([]int{0, 2, 4, 6})
	b := w.NewGroup([]int{1, 3, 5, 7})
	const n = 129
	dt := datatype.Float64
	run := func(m *Rank, g *Group, iters int) {
		sb := m.Malloc(n * 8)
		rb := m.Malloc(n * 8)
		sum := 0
		for _, r := range g.Ranks() {
			sum += r + 1
		}
		for it := 0; it < iters; it++ {
			alg := AllreduceRing
			if it%2 == 1 {
				alg = AllreduceTree
			}
			fillF64(sb, n, func(k int) float64 { return contrib(m.Rank(), k+it) })
			g.Allreduce(m, sb, rb, dt, n, OpSum, alg)
			g.Barrier(m)
			for k := 0; k < n; k++ {
				want := float64(((k+it)%17 + 1) * sum)
				if got := readF64(rb, k); got != want {
					t.Errorf("iter %d rank %d elem %d = %v, want %v", it, m.Rank(), k, got, want)
					return
				}
			}
		}
	}
	w.Run(func(m *Rank) {
		if a.Contains(m.Rank()) {
			run(m, a, 3)
		} else {
			run(m, b, 5)
		}
	})
	checkQuiescent(t, w, "independent jobs")
	if size != w.Size() {
		t.Fatalf("world size = %d, want %d", w.Size(), size)
	}
	w.Close()
}

// TestGroupBarrier makes members arrive at skewed virtual times and
// asserts nobody leaves the barrier before the last arrival.
func TestGroupBarrier(t *testing.T) {
	w := NewWorld(blockedConfig(2, 3, false))
	g := w.NewGroup([]int{0, 1, 2, 3, 4})
	arrive := make([]sim.Time, g.Size())
	leave := make([]sim.Time, g.Size())
	w.Run(func(m *Rank) {
		if !g.Contains(m.Rank()) {
			return
		}
		lr := g.LocalRank(m)
		m.Proc().Sleep(sim.Time(lr) * 1e9) // 1ms per local rank
		arrive[lr] = m.Now()
		g.Barrier(m)
		leave[lr] = m.Now()
	})
	var last sim.Time
	for _, a := range arrive {
		if a > last {
			last = a
		}
	}
	for lr, l := range leave {
		if l < last {
			t.Errorf("local rank %d left the barrier at %d, before last arrival %d", lr, l, last)
		}
	}
	checkQuiescent(t, w, "group barrier")
	w.Close()
}

// TestGroupAlltoallv drives the group-scoped Alltoallv with a skewed
// count matrix that includes zero rows and columns, and verifies every
// received block against the sender's generator.
func TestGroupAlltoallv(t *testing.T) {
	w := NewWorld(blockedConfig(3, 2, false))
	members := []int{0, 1, 3, 4, 5}
	g := w.NewGroup(members)
	size := g.Size()
	// counts[i][j]: sender i -> receiver j, in float64 elements.
	counts := make([][]int, size)
	for i := range counts {
		counts[i] = make([]int, size)
		for j := range counts[i] {
			if i == 2 { // silent sender
				continue
			}
			counts[i][j] = (i*3+j*5)%7 + 1
			if j == 1 && i != 0 {
				counts[i][j] = 0 // nearly-silent receiver column
			}
		}
	}
	w.Run(func(m *Rank) {
		if !g.Contains(m.Rank()) {
			return
		}
		lr := g.LocalRank(m)
		scounts, rcounts := counts[lr], make([]int, size)
		sdispls, rdispls := make([]int, size), make([]int, size)
		stot, rtot := 0, 0
		for j := 0; j < size; j++ {
			sdispls[j] = stot
			stot += scounts[j]
			rcounts[j] = counts[j][lr]
			rdispls[j] = rtot
			rtot += rcounts[j]
		}
		sb := m.Malloc(int64(stot+1) * 8)
		rb := m.Malloc(int64(rtot+1) * 8)
		fillF64(sb, stot, func(k int) float64 { return float64(lr*1000 + k) })
		g.Alltoallv(m, sb, scounts, sdispls, datatype.Float64, rb, rcounts, rdispls, datatype.Float64)
		for j := 0; j < size; j++ {
			// Sender j's block for me started at its sdispl for my column.
			base := 0
			for jj := 0; jj < lr; jj++ {
				base += counts[j][jj]
			}
			for k := 0; k < rcounts[j]; k++ {
				want := float64(j*1000 + base + k)
				if got := readF64(rb, rdispls[j]+k); got != want {
					t.Errorf("recv lr=%d from %d elem %d = %v, want %v", lr, j, k, got, want)
					return
				}
			}
		}
	})
	checkQuiescent(t, w, "group alltoallv")
	w.Close()
}

// TestNewGroupValidation covers the misuse panics.
func TestNewGroupValidation(t *testing.T) {
	w := NewWorld(blockedConfig(2, 2, false))
	defer w.Close()
	for name, ranks := range map[string][]int{
		"empty":        {},
		"out of range": {0, 4},
		"negative":     {-1, 0},
		"duplicate":    {0, 1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewGroup did not panic", name)
				}
			}()
			w.NewGroup(ranks)
		}()
	}
}
