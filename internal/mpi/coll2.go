package mpi

import (
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Gather collects each rank's (sendBuf, sdt, scount) into rank root's
// recvBuf, where slot r starts at r*rcount*extent(rdt). Linear
// algorithm; non-root ranks pass an invalid recvBuf.
func (m *Rank) Gather(sendBuf mem.Buffer, sdt *datatype.Datatype, scount int,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount, root int) {
	m.gather(m.p, m.tagBlock(m.gatherTags()), sendBuf, sdt, scount, recvBuf, rdt, rcount, root)
}

func (m *Rank) gather(p *sim.Proc, tag int, sendBuf mem.Buffer, sdt *datatype.Datatype, scount int,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount, root int) {
	size := m.Size()
	if m.rank != root {
		m.sendOn(p, sendBuf, sdt, scount, root, tag+m.rank)
		return
	}
	stride := int64(rcount) * rdt.Extent()
	sliceLen := spanOf(rdt, rcount)
	reqs := make([]*Request, 0, size-1)
	for r := 0; r < size; r++ {
		slot := recvBuf.Slice(int64(r)*stride, sliceLen)
		if r == root {
			// Local copy through the datatype engines.
			m.localCopy(p, sendBuf, sdt, scount, slot, rdt, rcount)
			continue
		}
		reqs = append(reqs, m.Irecv(slot, rdt, rcount, r, tag+r))
	}
	for _, rq := range reqs {
		rq.Wait(p)
	}
}

// Scatter distributes slot r of root's sendBuf (r*scount*extent(sdt))
// to rank r's recvBuf. Linear algorithm.
func (m *Rank) Scatter(sendBuf mem.Buffer, sdt *datatype.Datatype, scount int,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount, root int) {
	m.scatter(m.p, m.tagBlock(m.gatherTags()), sendBuf, sdt, scount, recvBuf, rdt, rcount, root)
}

func (m *Rank) scatter(p *sim.Proc, tag int, sendBuf mem.Buffer, sdt *datatype.Datatype, scount int,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount, root int) {
	size := m.Size()
	if m.rank != root {
		m.recvOn(p, recvBuf, rdt, rcount, root, tag+m.rank)
		return
	}
	stride := int64(scount) * sdt.Extent()
	sliceLen := spanOf(sdt, scount)
	reqs := make([]*Request, 0, size-1)
	for r := 0; r < size; r++ {
		slot := sendBuf.Slice(int64(r)*stride, sliceLen)
		if r == root {
			m.localCopy(p, slot, sdt, scount, recvBuf, rdt, rcount)
			continue
		}
		reqs = append(reqs, m.isendOn(p, slot, sdt, scount, r, tag+r))
	}
	for _, rq := range reqs {
		rq.Wait(p)
	}
}

// Alltoall exchanges slot j of every rank's sendBuf with slot i of rank
// j's recvBuf (the building block of distributed transposes and FFTs).
// Topology-aware worlds aggregate each node's traffic at its leader and
// exchange one large message per node pair over the IB tier instead of
// ranks-squared small ones; otherwise the flat pairwise exchange runs:
// step s pairs rank with rank^s when the size is a power of two, and
// (rank+s, rank-s) otherwise.
func (m *Rank) Alltoall(sendBuf mem.Buffer, sdt *datatype.Datatype, scount int,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount int) {
	m.alltoall(m.p, m.tagBlock(m.alltoallTags()), sendBuf, sdt, scount, recvBuf, rdt, rcount)
}

func (m *Rank) alltoall(p *sim.Proc, tag int, sendBuf mem.Buffer, sdt *datatype.Datatype, scount int,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount int) {
	if m.hierOn() && scount > 0 && int64(scount)*sdt.Size() == int64(rcount)*rdt.Size() {
		m.hierAlltoall(p, tag, sendBuf, sdt, scount, recvBuf, rdt, rcount)
		return
	}
	m.alltoallFlat(p, tag, sendBuf, sdt, scount, recvBuf, rdt, rcount)
}

// alltoallFlat is the topology-blind pairwise exchange.
func (m *Rank) alltoallFlat(p *sim.Proc, tag int, sendBuf mem.Buffer, sdt *datatype.Datatype, scount int,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount int) {
	size := m.Size()
	sstride := int64(scount) * sdt.Extent()
	rstride := int64(rcount) * rdt.Extent()
	sLen := spanOf(sdt, scount)
	rLen := spanOf(rdt, rcount)

	// Local slot first.
	m.localCopy(p,
		sendBuf.Slice(int64(m.rank)*sstride, sLen), sdt, scount,
		recvBuf.Slice(int64(m.rank)*rstride, rLen), rdt, rcount)

	pow2 := size&(size-1) == 0
	for s := 1; s < size; s++ {
		var sendTo, recvFrom int
		if pow2 {
			sendTo = m.rank ^ s
			recvFrom = sendTo
		} else {
			sendTo = (m.rank + s) % size
			recvFrom = (m.rank - s + size) % size
		}
		sreq := m.isendOn(p, sendBuf.Slice(int64(sendTo)*sstride, sLen), sdt, scount, sendTo, tag)
		rreq := m.Irecv(recvBuf.Slice(int64(recvFrom)*rstride, rLen), rdt, rcount, recvFrom, tag)
		sreq.Wait(p)
		rreq.Wait(p)
	}
}

// localCopy moves (src, sdt, scount) into (dst, rdt, rcount) within the
// rank, through packed form: GPU layouts use the datatype engine (pack
// to a device scratch, unpack from it); host layouts use the CPU
// converter.
func (m *Rank) localCopy(p *sim.Proc, src mem.Buffer, sdt *datatype.Datatype, scount int,
	dst mem.Buffer, rdt *datatype.Datatype, rcount int) {
	packed := int64(scount) * sdt.Size()
	if capacity := int64(rcount) * rdt.Size(); packed > capacity {
		panic("mpi: local copy truncation")
	}
	if packed == 0 {
		return
	}
	// Contiguous-to-contiguous short cut.
	sw, sok := contigWindow(src, sdt, scount)
	dw, dok := contigWindow(dst, rdt, rcount)
	if sok && dok {
		m.mustRetry(p, "local.copy", func() error {
			return m.ctx.Memcpy(p, dw.Slice(0, packed), sw.Slice(0, packed))
		})
		return
	}
	var stage mem.Buffer
	if src.Kind() == mem.Device || dst.Kind() == mem.Device {
		// Stage in device memory on the rank's GPU.
		stage = m.ringBuf(m.ctx.Node().GPU(m.place.GPU).Mem(), packed)
	} else {
		stage = m.scratch(packed)
	}
	window := stage.Slice(0, packed)
	if src.Kind() == mem.Device {
		m.engineFor(src).Pack(p, src, sdt, scount, window)
	} else if window.Kind() == mem.Device {
		// Host source into device stage: copy then treat as packed.
		hs := m.scratch(packed)
		m.CPUPack(p, src, sdt, scount, hs.Slice(0, packed))
		m.mustRetry(p, "local.copy", func() error {
			return m.ctx.Memcpy(p, window, hs.Slice(0, packed))
		})
		m.freeScratch(hs)
	} else {
		m.CPUPack(p, src, sdt, scount, window)
	}
	if dst.Kind() == mem.Device {
		m.engineFor(dst).Unpack(p, dst, rdt, rcount, window)
	} else if window.Kind() == mem.Device {
		hs := m.scratch(packed)
		m.mustRetry(p, "local.copy", func() error {
			return m.ctx.Memcpy(p, hs.Slice(0, packed), window)
		})
		m.CPUUnpack(p, dst, rdt, rcount, hs.Slice(0, packed))
		m.freeScratch(hs)
	} else {
		m.CPUUnpack(p, dst, rdt, rcount, window)
	}
	if stage.Kind() == mem.Device {
		m.releaseRing(stage)
	} else {
		m.freeScratch(stage)
	}
}
