package mpi

import (
	"fmt"

	"gpuddt/internal/core"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// fragProducer packs a message fragment-at-a-time from the send buffer:
// GPU data goes through the rank's datatype engine (kernels, pipeline,
// DEV cache); host data through the CPU converter, charging the host bus.
type fragProducer struct {
	m    *Rank
	gpu  *core.Packer
	conv *datatype.Converter
	buf  mem.Buffer
}

func (m *Rank) newProducer(buf mem.Buffer, dt *datatype.Datatype, count int) *fragProducer {
	fp := &fragProducer{m: m, buf: buf}
	if buf.Kind() == mem.Device {
		fp.gpu = m.engineFor(buf).NewPacker(buf, dt, count)
	} else {
		fp.conv = datatype.NewConverter(dt, count)
	}
	return fp
}

// packInto fills frag with the next len(frag) packed bytes, blocking
// until frag holds the data.
func (fp *fragProducer) packInto(p *sim.Proc, frag mem.Buffer) {
	if fp.gpu != nil {
		_, fut := fp.gpu.PackInto(p, frag)
		fut.Await(p)
		return
	}
	fp.m.ctx.Node().HostBus().Transfer(p, 2*frag.Len())
	fp.conv.Pack(frag.Bytes(), fp.buf.Bytes())
}

// seekTo repositions the producer at packed offset pos, so a protocol
// attempt abandoned on a fault can replay the message from the start
// through the same worker (idempotent fragment replay: packing writes
// the same bytes again).
func (fp *fragProducer) seekTo(pos int64) {
	if fp.gpu != nil {
		fp.gpu.SeekTo(pos)
		return
	}
	fp.conv.SeekTo(pos)
}

// fragConsumer scatters arriving packed fragments into the receive
// buffer. Fragments must arrive in packed order. For GPU receivers with
// a remote (peer-GPU) source it stages fragments in local device memory
// before unpacking — the option the paper measures as 5-10% faster —
// double-buffered so the staging copy of fragment i+1 overlaps the
// unpack kernel of fragment i.
type fragConsumer struct {
	m      *Rank
	op     *RecvOp
	gpu    *core.Packer
	conv   *datatype.Converter
	contig mem.Buffer // receiver contiguous window (fast path)

	stage    mem.Buffer
	stageFut [2]*sim.Future
	scratch  mem.Buffer // host staging for device source -> host layout
	i        int
	lastFut  *sim.Future
}

func (m *Rank) newConsumer(op *RecvOp) *fragConsumer {
	fc := &fragConsumer{m: m, op: op}
	if w, ok := contigWindow(op.Buf, op.Dt, op.Count); ok {
		fc.contig = w
		return fc
	}
	if op.Buf.Kind() == mem.Device {
		fc.gpu = m.engineFor(op.Buf).NewUnpacker(op.Buf, op.Dt, op.Count)
	} else {
		fc.conv = datatype.NewConverter(op.Dt, op.Count)
	}
	return fc
}

// consume processes one packed fragment located at src (a sender ring
// slot, a receiver host ring slot, or a window of the sender's data) and
// calls ack — if non-nil — as soon as src may be reused. An injected
// copy fault is retried in place: every fallible step runs before the
// consumer's cursors advance (fc.i, the converter position), so a retry
// replays exactly the same fragment into the same bytes.
func (fc *fragConsumer) consume(p *sim.Proc, src mem.Buffer, off, n int64, ack func(pp *sim.Proc)) {
	h := p.BeginBytes("frag.consume", n)
	defer h.End()
	m := fc.m
	switch {
	case fc.contig.IsValid():
		m.mustRetry(p, "frag.copy", func() error {
			return m.ctx.Memcpy(p, fc.contig.Slice(off, n), src)
		})
		ackNow(p, ack)

	case fc.conv != nil: // host layout
		if src.Kind() == mem.Device {
			if !fc.scratch.IsValid() {
				fc.scratch = m.scratch(src.Len())
			}
			stage := fc.scratch.Slice(0, n)
			m.mustRetry(p, "frag.stage", func() error {
				return m.ctx.Memcpy(p, stage, src)
			})
			ackNow(p, ack)
			src = stage
		} else {
			defer ackNow(p, ack)
		}
		m.ctx.Node().HostBus().Transfer(p, 2*n)
		fc.conv.Unpack(fc.op.Buf.Bytes(), src.Bytes())

	default: // GPU layout
		dev := m.engineFor(fc.op.Buf).Device()
		direct := src.Kind() == mem.Host ||
			src.Space() == dev.Mem() ||
			m.w.tun.directRemoteUnpack
		if direct {
			_, fut := fc.gpu.UnpackFrom(p, src)
			fc.lastFut = fut
			ackWhen(m, fut, ack)
			return
		}
		// Staged: copy the packed fragment into local device memory
		// first, then unpack locally (§5.2.1).
		if !fc.stage.IsValid() {
			fc.stage = m.ringBuf(dev.Mem(), 2*m.w.tun.frag)
		}
		slot := fc.i % 2
		if f := fc.stageFut[slot]; f != nil {
			f.Await(p) // previous unpack from this staging slot
		}
		stage := fc.stage.Slice(int64(slot)*m.w.tun.frag, n)
		m.mustRetry(p, "frag.stage", func() error {
			return m.ctx.Memcpy(p, stage, src)
		})
		fc.i++
		ackNow(p, ack)
		_, fut := fc.gpu.UnpackFrom(p, stage)
		fc.stageFut[slot] = fut
		fc.lastFut = fut
	}
}

// finish waits for outstanding asynchronous unpacks and releases
// staging resources.
func (fc *fragConsumer) finish(p *sim.Proc) {
	h := p.Begin("unpack.drain")
	if fc.lastFut != nil {
		fc.lastFut.Await(p)
	}
	for _, f := range fc.stageFut {
		if f != nil {
			f.Await(p)
		}
	}
	h.End()
	if fc.stage.IsValid() {
		fc.m.releaseRing(fc.stage)
		fc.stage = mem.Buffer{}
	}
	if fc.scratch.IsValid() {
		fc.m.freeScratch(fc.scratch)
		fc.scratch = mem.Buffer{}
	}
}

// abandon releases a consumer whose protocol attempt was aborted by a
// fault before completing: outstanding unpacks are drained and the
// staging slabs go back to their pools so the fallback protocol (and
// every transfer after it) reuses them instead of leaking them.
func (fc *fragConsumer) abandon(p *sim.Proc) {
	p.Count("mpi.consumer.abandon", 1)
	fc.finish(p)
}

func ackNow(p *sim.Proc, ack func(pp *sim.Proc)) {
	if ack != nil {
		ack(p)
	}
}

// ackWhen sends the ACK once fut completes, without blocking the caller.
func ackWhen(m *Rank, fut *sim.Future, ack func(pp *sim.Proc)) {
	if ack == nil {
		return
	}
	m.w.eng.Spawn(fmt.Sprintf("rank%d.ack", m.rank), func(pp *sim.Proc) {
		fut.Await(pp)
		ack(pp)
	})
}

// ringBuf hands out a staging ring of at least n bytes in the given
// space, reusing released rings (rings are hot: every rendezvous message
// needs one, and the bump allocator does not reclaim).
func (m *Rank) ringBuf(space *mem.Space, n int64) mem.Buffer {
	m.ringOut++
	pool := m.ringPool[space]
	for i, b := range pool {
		if b.Len() >= n {
			m.ringPool[space] = append(pool[:i], pool[i+1:]...)
			return b
		}
	}
	return space.Alloc(n, 256)
}

func (m *Rank) releaseRing(b mem.Buffer) {
	m.ringOut--
	if m.ringPool == nil {
		m.ringPool = make(map[*mem.Space][]mem.Buffer)
	}
	m.ringPool[b.Space()] = append(m.ringPool[b.Space()], b)
}
