package mpi

import (
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
)

// Collectives built on the datatype-aware point-to-point layer. The
// paper's conclusion positions the GPU datatype engine as the substrate
// for "any point-to-point, collective, I/O and one-sided" operation;
// these two collectives demonstrate that the engine composes: every hop
// packs/unpacks GPU-resident non-contiguous data through the same
// pipelined protocols.

// collTagBase keeps collective traffic out of the user's tag space.
const collTagBase = 1 << 20

// Bcast broadcasts count elements of dt from root. Every rank's buf
// must describe the same signature. On a multi-node world with several
// ranks per node (blocked layout) the broadcast is hierarchical —
// binomial over one leader per node on the IB tier, then binomial
// within each node over the shared-memory tier; otherwise it is the
// flat binomial tree.
func (m *Rank) Bcast(buf mem.Buffer, dt *datatype.Datatype, count, root int) {
	if m.hierOn() && count > 0 {
		m.hierBcast(buf, dt, count, root)
		return
	}
	m.bcastFlat(buf, dt, count, root)
}

// bcastFlat is the topology-blind binomial broadcast.
func (m *Rank) bcastFlat(buf mem.Buffer, dt *datatype.Datatype, count, root int) {
	size := m.Size()
	if size == 1 {
		return
	}
	// Rotate ranks so the root is virtual rank 0.
	vrank := (m.rank - root + size) % size
	tag := collTagBase + m.collSeq
	m.collSeq++

	// Receive from the parent (highest set bit), then forward to
	// children in decreasing mask order — the classic binomial tree.
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			parent := ((vrank - mask) + root) % size
			m.Recv(buf, dt, count, parent, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < size && vrank&(mask-1) == 0 && vrank&mask == 0 {
			child := (vrank + mask + root) % size
			m.Send(buf, dt, count, child, tag)
		}
		mask >>= 1
	}
}

// Allgather gathers each rank's count elements of dt (read from its slot
// of buf) into every rank's buf: buf must hold Size() consecutive
// (dt, count) slots, each starting at rank*count*extent. GPU-resident
// non-contiguous slots are packed and unpacked by the datatype engine on
// every hop. Topology-aware worlds gather each node's slots to its
// leader first, ring the aggregated node slabs over the IB tier, and
// broadcast the result within each node; otherwise the flat ring runs.
func (m *Rank) Allgather(buf mem.Buffer, dt *datatype.Datatype, count int) {
	if m.hierOn() && count > 0 {
		m.hierAllgather(buf, dt, count)
		return
	}
	m.allgatherFlat(buf, dt, count)
}

// allgatherFlat is the topology-blind ring algorithm.
func (m *Rank) allgatherFlat(buf mem.Buffer, dt *datatype.Datatype, count int) {
	size := m.Size()
	if size == 1 {
		return
	}
	tag := collTagBase + m.collSeq
	m.collSeq += size
	stride := int64(count) * dt.Extent()
	sliceLen := spanOf(dt, count)
	slot := func(r int) mem.Buffer {
		return buf.Slice(int64(r)*stride, sliceLen)
	}
	right := (m.rank + 1) % size
	left := (m.rank - 1 + size) % size
	// In step s, send the block originally owned by (rank-s) to the
	// right neighbour and receive block (rank-s-1) from the left.
	for s := 0; s < size-1; s++ {
		sendBlk := (m.rank - s + size) % size
		recvBlk := (m.rank - s - 1 + size) % size
		sreq := m.Isend(slot(sendBlk), dt, count, right, tag+s)
		rreq := m.Irecv(slot(recvBlk), dt, count, left, tag+s)
		sreq.Wait(m.p)
		rreq.Wait(m.p)
	}
}

// spanOf is the memory footprint of (dt, count) from the origin.
func spanOf(dt *datatype.Datatype, count int) int64 {
	if count == 0 {
		return 0
	}
	return int64(count-1)*dt.Extent() + dt.TrueLB() + dt.TrueExtent()
}
