package mpi

import (
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Collectives built on the datatype-aware point-to-point layer. The
// paper's conclusion positions the GPU datatype engine as the substrate
// for "any point-to-point, collective, I/O and one-sided" operation;
// these collectives demonstrate that the engine composes: every hop
// packs/unpacks GPU-resident non-contiguous data through the same
// pipelined protocols.
//
// Every algorithm takes an explicit *sim.Proc and a pre-reserved tag
// block: the public blocking entry points pass the rank's main process,
// while the nonblocking I* variants (icoll.go) reserve tags at call
// time and run the same schedule on a spawned progress process.

// collTagBase keeps collective traffic out of the user's tag space.
const collTagBase = 1 << 20

// tagBlock reserves n consecutive collective tags and returns the
// first. Reservation happens at call time — before any nonblocking
// schedule is spawned — so concurrent collectives draw disjoint tag
// ranges and every rank advances collSeq identically. Budgets depend
// only on the world size, never on the data or topology path taken, so
// the reservation is symmetric across ranks by construction.
func (m *Rank) tagBlock(n int) int {
	t := collTagBase + m.collSeq
	m.collSeq += n
	return t
}

// Per-collective tag budgets (see tagBlock). Each is the worst case of
// the flat and hierarchical schedules for that operation.
func (m *Rank) bcastTags() int     { return 2 }
func (m *Rank) allgatherTags() int { return 2 * m.Size() }
func (m *Rank) alltoallTags() int  { return 2 * m.Size() }
func (m *Rank) gatherTags() int    { return m.Size() }
func (m *Rank) reduceTags() int    { return 2 * m.Size() }
func (m *Rank) barrierTags() int   { return m.Size() }
func (m *Rank) alltoallvTags() int { return 4 * m.Size() }

// Bcast broadcasts count elements of dt from root. Every rank's buf
// must describe the same signature. On a multi-node world with several
// ranks per node (blocked layout) the broadcast is hierarchical —
// binomial over one leader per node on the IB tier, then binomial
// within each node over the shared-memory tier; otherwise it is the
// flat binomial tree.
func (m *Rank) Bcast(buf mem.Buffer, dt *datatype.Datatype, count, root int) {
	m.bcast(m.p, m.tagBlock(m.bcastTags()), buf, dt, count, root)
}

func (m *Rank) bcast(p *sim.Proc, tag int, buf mem.Buffer, dt *datatype.Datatype, count, root int) {
	if m.hierOn() && count > 0 {
		m.hierBcast(p, tag, buf, dt, count, root)
		return
	}
	m.bcastFlat(p, tag, buf, dt, count, root)
}

// bcastFlat is the topology-blind binomial broadcast.
func (m *Rank) bcastFlat(p *sim.Proc, tag int, buf mem.Buffer, dt *datatype.Datatype, count, root int) {
	size := m.Size()
	if size == 1 {
		return
	}
	// Rotate ranks so the root is virtual rank 0.
	vrank := (m.rank - root + size) % size

	// Receive from the parent (highest set bit), then forward to
	// children in decreasing mask order — the classic binomial tree.
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			parent := ((vrank - mask) + root) % size
			m.recvOn(p, buf, dt, count, parent, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < size && vrank&(mask-1) == 0 && vrank&mask == 0 {
			child := (vrank + mask + root) % size
			m.sendOn(p, buf, dt, count, child, tag)
		}
		mask >>= 1
	}
}

// Allgather gathers each rank's count elements of dt (read from its slot
// of buf) into every rank's buf: buf must hold Size() consecutive
// (dt, count) slots, each starting at rank*count*extent. GPU-resident
// non-contiguous slots are packed and unpacked by the datatype engine on
// every hop. Topology-aware worlds gather each node's slots to its
// leader first, ring the aggregated node slabs over the IB tier, and
// broadcast the result within each node; otherwise the flat ring runs.
func (m *Rank) Allgather(buf mem.Buffer, dt *datatype.Datatype, count int) {
	m.allgather(m.p, m.tagBlock(m.allgatherTags()), buf, dt, count)
}

func (m *Rank) allgather(p *sim.Proc, tag int, buf mem.Buffer, dt *datatype.Datatype, count int) {
	if m.hierOn() && count > 0 {
		m.hierAllgather(p, tag, buf, dt, count)
		return
	}
	m.allgatherFlat(p, tag, buf, dt, count)
}

// allgatherFlat is the topology-blind ring algorithm.
func (m *Rank) allgatherFlat(p *sim.Proc, tag int, buf mem.Buffer, dt *datatype.Datatype, count int) {
	size := m.Size()
	if size == 1 {
		return
	}
	stride := int64(count) * dt.Extent()
	sliceLen := spanOf(dt, count)
	slot := func(r int) mem.Buffer {
		return buf.Slice(int64(r)*stride, sliceLen)
	}
	right := (m.rank + 1) % size
	left := (m.rank - 1 + size) % size
	// In step s, send the block originally owned by (rank-s) to the
	// right neighbour and receive block (rank-s-1) from the left.
	for s := 0; s < size-1; s++ {
		sendBlk := (m.rank - s + size) % size
		recvBlk := (m.rank - s - 1 + size) % size
		sreq := m.isendOn(p, slot(sendBlk), dt, count, right, tag+s)
		rreq := m.Irecv(slot(recvBlk), dt, count, left, tag+s)
		sreq.Wait(p)
		rreq.Wait(p)
	}
}

// spanOf is the memory footprint of (dt, count) from the origin.
func spanOf(dt *datatype.Datatype, count int) int64 {
	if count == 0 {
		return 0
	}
	return int64(count-1)*dt.Extent() + dt.TrueLB() + dt.TrueExtent()
}
