package mpi

import (
	"encoding/binary"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Hierarchical irregular collectives. The node-pair aggregation of
// hcoll.go extends to per-peer counts by staging packed wire-format
// bytes through leader host scratch: blocks are irregular, so the
// stage layout is driven by prefix sums of the packed block sizes
// instead of the fixed strides of the regular algorithms, and the
// node-pair messages become Hindexed views over the stage. Leader
// election and the coll.*.intra/inter span discipline are unchanged.

// hierAllgatherv: every rank knows the full count vector (the MPI
// signature), so no metadata has to move. The node's blocks are packed
// into the leader's wire-format stage (prefix-sum offsets, rank order),
// leaders ring whole node aggregates of that stage over the IB tier,
// each leader broadcasts the assembled stage within its node, and every
// rank unpacks the remote blocks into its own buffer at displs[r].
func (m *Rank) hierAllgatherv(p *sim.Proc, tag int, buf mem.Buffer, counts, displs []int, dt *datatype.Datatype) {
	size := m.Size()
	h := m.w.hier
	rpn, nnodes := h.rpn, h.nodes
	myNode := m.rank / rpn
	li := m.rank % rpn
	lead := myNode * rpn

	// Packed bytes and stage offset per rank block; node aggregates are
	// contiguous in the stage because ranks are blocked onto nodes.
	B := make([]int64, size)
	off := make([]int64, size)
	var total int64
	for r := 0; r < size; r++ {
		B[r] = int64(counts[r]) * dt.Size()
		off[r] = total
		total += B[r]
	}
	if total == 0 {
		return
	}
	nodeOff := make([]int64, nnodes)
	nodeBytes := make([]int64, nnodes)
	for nd := 0; nd < nnodes; nd++ {
		nodeOff[nd] = off[nd*rpn]
		for i := 0; i < rpn; i++ {
			nodeBytes[nd] += B[nd*rpn+i]
		}
	}

	tagIn := tag
	tagRing := tag + rpn
	tagOut := tagRing + nnodes

	slot := func(r int) mem.Buffer { return vslot(buf, dt, counts[r], displs[r]) }
	stage := m.scratch(total)
	blk := func(r int) mem.Buffer { return stage.Slice(off[r], B[r]) }

	// Phase 1: assemble the node's blocks, already packed, at the
	// leader. Members send (dt, count); the leader receives straight
	// into wire format under the equal-packed-bytes signature rule.
	sp := p.BeginBytes("coll.allgatherv.intra", nodeBytes[myNode])
	if li != 0 {
		if B[m.rank] > 0 {
			m.sendOn(p, slot(m.rank), dt, counts[m.rank], lead, tagIn+li)
		}
	} else {
		reqs := make([]*Request, 0, rpn-1)
		for i := 1; i < rpn; i++ {
			if B[lead+i] == 0 {
				continue
			}
			reqs = append(reqs, m.Irecv(blk(lead+i), datatype.Byte, int(B[lead+i]), lead+i, tagIn+i))
		}
		if B[m.rank] > 0 {
			m.localCopy(p, slot(m.rank), dt, counts[m.rank], blk(m.rank), datatype.Byte, int(B[m.rank]))
		}
		for _, rq := range reqs {
			rq.Wait(p)
		}
	}
	sp.End()

	// Phase 2: leaders ring whole node aggregates of the packed stage;
	// an all-zero node simply sits the step out on both sides.
	if li == 0 && nnodes > 1 {
		sp := p.BeginBytes("coll.allgatherv.inter", total-nodeBytes[myNode])
		right := (myNode + 1) % nnodes
		left := (myNode - 1 + nnodes) % nnodes
		for s := 0; s < nnodes-1; s++ {
			sendBlk := (myNode - s + nnodes) % nnodes
			recvBlk := (myNode - s - 1 + nnodes) % nnodes
			var sreq, rreq *Request
			if nodeBytes[sendBlk] > 0 {
				sreq = m.isendOn(p, stage.Slice(nodeOff[sendBlk], nodeBytes[sendBlk]),
					datatype.Byte, int(nodeBytes[sendBlk]), right*rpn, tagRing+s)
			}
			if nodeBytes[recvBlk] > 0 {
				rreq = m.Irecv(stage.Slice(nodeOff[recvBlk], nodeBytes[recvBlk]),
					datatype.Byte, int(nodeBytes[recvBlk]), left*rpn, tagRing+s)
			}
			if sreq != nil {
				sreq.Wait(p)
			}
			if rreq != nil {
				rreq.Wait(p)
			}
		}
		sp.End()
	}

	// Phase 3: broadcast the assembled wire-format stage within the
	// node; every rank unpacks the remote blocks into place (its own
	// block is already there).
	sp = p.BeginBytes("coll.allgatherv.intra", total)
	m.bcastBinomial(p, m.nodeGroup(myNode), 0, stage.Slice(0, total), datatype.Byte, int(total), tagOut)
	for r := 0; r < size; r++ {
		if r == m.rank || B[r] == 0 {
			continue
		}
		m.localCopy(p, blk(r), datatype.Byte, int(B[r]), slot(r), dt, counts[r])
	}
	sp.End()
	m.freeScratch(stage)
}

// hierAlltoallv aggregates irregular node-pair traffic at the leaders.
// Unlike Allgatherv, each rank only knows its own count vectors, so the
// schedule opens with a metadata phase: every member hands its per-peer
// send/recv byte vectors to the leader, which assembles the node's
// send-byte matrix SB[member][dest] and recv-byte matrix
// RB[member][src]. Members then pack their outgoing blocks into one
// wire-format stream each; the leader concatenates the streams, carves
// the per-destination-node message out of them as an Hindexed view (one
// run per member — a member's blocks for one node are consecutive in
// its stream), and exchanges node pairs over the IB tier. Inbound node
// blocks land source-major; each destination member's column is again
// an Hindexed view (one block per source rank), handed back as a single
// packed stream the member unpacks at its own displacements.
func (m *Rank) hierAlltoallv(p *sim.Proc, tag int, sendBuf mem.Buffer, scounts, sdispls []int, sdt *datatype.Datatype,
	recvBuf mem.Buffer, rcounts, rdispls []int, rdt *datatype.Datatype) {
	size := m.Size()
	h := m.w.hier
	rpn, nnodes := h.rpn, h.nodes
	myNode := m.rank / rpn
	li := m.rank % rpn
	lead := myNode * rpn

	// This rank's packed byte vectors and their prefix sums.
	sB := make([]int64, size)
	rB := make([]int64, size)
	sOff := make([]int64, size)
	rOff := make([]int64, size)
	var sTot, rTot int64
	for r := 0; r < size; r++ {
		sB[r] = int64(scounts[r]) * sdt.Size()
		rB[r] = int64(rcounts[r]) * rdt.Size()
		sOff[r] = sTot
		rOff[r] = rTot
		sTot += sB[r]
		rTot += rB[r]
	}

	tagMeta := tag
	tagIn := tag + rpn
	tagInter := tag + 2*rpn
	tagOut := tag + 2*rpn + 1

	sslot := func(d int) mem.Buffer { return vslot(sendBuf, sdt, scounts[d], sdispls[d]) }
	rslot := func(s int) mem.Buffer { return vslot(recvBuf, rdt, rcounts[s], rdispls[s]) }

	if li != 0 {
		sp := p.BeginBytes("coll.alltoallv.intra", sTot+rTot)
		// Metadata: 2*size little-endian int64s (send bytes, recv bytes).
		meta := m.scratch(16 * int64(size))
		mb := meta.Bytes()
		for r := 0; r < size; r++ {
			binary.LittleEndian.PutUint64(mb[8*r:], uint64(sB[r]))
			binary.LittleEndian.PutUint64(mb[8*(size+r):], uint64(rB[r]))
		}
		m.sendOn(p, meta.Slice(0, 16*int64(size)), datatype.Byte, 16*size, lead, tagMeta+li)
		m.freeScratch(meta)

		// Pack the outgoing blocks into one wire-format stream and hand
		// it to the leader.
		if sTot > 0 {
			pack := m.scratch(sTot)
			for d := 0; d < size; d++ {
				if sB[d] == 0 {
					continue
				}
				m.localCopy(p, sslot(d), sdt, scounts[d], pack.Slice(sOff[d], sB[d]), datatype.Byte, int(sB[d]))
			}
			m.sendOn(p, pack.Slice(0, sTot), datatype.Byte, int(sTot), lead, tagIn+li)
			m.freeScratch(pack)
		}
		sp.End()

		// Receive the inbound stream (source-rank order) and unpack it.
		if rTot > 0 {
			sp := p.BeginBytes("coll.alltoallv.intra", rTot)
			rstage := m.scratch(rTot)
			m.recvOn(p, rstage.Slice(0, rTot), datatype.Byte, int(rTot), lead, tagOut+li)
			for s := 0; s < size; s++ {
				if rB[s] == 0 {
					continue
				}
				m.localCopy(p, rstage.Slice(rOff[s], rB[s]), datatype.Byte, int(rB[s]), rslot(s), rdt, rcounts[s])
			}
			m.freeScratch(rstage)
			sp.End()
		}
		return
	}

	// Leader. Phase 0: collect the members' byte vectors.
	SB := make([][]int64, rpn) // SB[i][d]: bytes member i sends to rank d
	RB := make([][]int64, rpn) // RB[i][s]: bytes member i receives from rank s
	SB[0], RB[0] = sB, rB
	sp := p.BeginBytes("coll.alltoallv.intra", 0)
	if rpn > 1 {
		metaIn := m.scratch(16 * int64(size) * int64(rpn-1))
		reqs := make([]*Request, 0, rpn-1)
		for i := 1; i < rpn; i++ {
			reqs = append(reqs, m.Irecv(metaIn.Slice(int64(i-1)*16*int64(size), 16*int64(size)),
				datatype.Byte, 16*size, lead+i, tagMeta+i))
		}
		for _, rq := range reqs {
			rq.Wait(p)
		}
		for i := 1; i < rpn; i++ {
			mb := metaIn.Slice(int64(i-1)*16*int64(size), 16*int64(size)).Bytes()
			SB[i] = make([]int64, size)
			RB[i] = make([]int64, size)
			for r := 0; r < size; r++ {
				SB[i][r] = int64(binary.LittleEndian.Uint64(mb[8*r:]))
				RB[i][r] = int64(binary.LittleEndian.Uint64(mb[8*(size+r):]))
			}
		}
		m.freeScratch(metaIn)
	}

	// Stage geometry from the matrices. Send side: member i's stream at
	// memOff[i], inside it rank d's block at prefS[i][d]. Recv side:
	// source node S's aggregate at inNodeOff[S]; inside it source rank
	// s's row (its blocks for members 0..rpn-1, in member order) at
	// rowOff[s], block (s -> member di) at rowOff[s] + prefix of RB.
	prefS := make([][]int64, rpn)
	memOff := make([]int64, rpn+1)
	for i := 0; i < rpn; i++ {
		prefS[i] = make([]int64, size+1)
		for d := 0; d < size; d++ {
			prefS[i][d+1] = prefS[i][d] + SB[i][d]
		}
		memOff[i+1] = memOff[i] + prefS[i][size]
	}
	nodeSendTot := memOff[rpn]

	rowTot := make([]int64, size) // bytes rank s sends into this node
	for s := 0; s < size; s++ {
		for di := 0; di < rpn; di++ {
			rowTot[s] += RB[di][s]
		}
	}
	inNodeOff := make([]int64, nnodes+1)
	rowOff := make([]int64, size)
	for nd := 0; nd < nnodes; nd++ {
		cur := inNodeOff[nd]
		for i := 0; i < rpn; i++ {
			rowOff[nd*rpn+i] = cur
			cur += rowTot[nd*rpn+i]
		}
		inNodeOff[nd+1] = cur
	}
	nodeRecvTot := inNodeOff[nnodes]
	nodeIn := func(nd int) int64 { return inNodeOff[nd+1] - inNodeOff[nd] }
	// inOff returns the recv-stage offset of block (src rank s -> dest
	// member di).
	inOff := func(s, di int) int64 {
		o := rowOff[s]
		for d := 0; d < di; d++ {
			o += RB[d][s]
		}
		return o
	}

	var sendStage, recvStage mem.Buffer
	if nodeSendTot > 0 {
		sendStage = m.scratch(nodeSendTot)
	}
	if nodeRecvTot > 0 {
		recvStage = m.scratch(nodeRecvTot)
	}

	// Phase 1: concatenate the members' packed streams; the leader's own
	// blocks are packed locally.
	reqs := make([]*Request, 0, rpn-1)
	for i := 1; i < rpn; i++ {
		if n := memOff[i+1] - memOff[i]; n > 0 {
			reqs = append(reqs, m.Irecv(sendStage.Slice(memOff[i], n), datatype.Byte, int(n), lead+i, tagIn+i))
		}
	}
	for d := 0; d < size; d++ {
		if sB[d] == 0 {
			continue
		}
		m.localCopy(p, sslot(d), sdt, scounts[d], sendStage.Slice(prefS[0][d], sB[d]), datatype.Byte, int(sB[d]))
	}
	for _, rq := range reqs {
		rq.Wait(p)
	}
	sp.End()

	// outView carves the node-pair message for destination node nd out
	// of the send stage: one run per member (its consecutive blocks for
	// nd's ranks), zero runs elided.
	outView := func(nd int) (mem.Buffer, *datatype.Datatype, int64) {
		var bls []int
		var displs []int64
		var total int64
		for i := 0; i < rpn; i++ {
			start := memOff[i] + prefS[i][nd*rpn]
			n := prefS[i][(nd+1)*rpn] - prefS[i][nd*rpn]
			if n == 0 {
				continue
			}
			bls = append(bls, int(n))
			displs = append(displs, start)
			total += n
		}
		if total == 0 {
			return mem.Buffer{}, nil, 0
		}
		return sendStage, datatype.Hindexed(bls, displs, datatype.Byte), total
	}

	// Phase 2: node-pair exchange. Own node first, then the pairwise
	// schedule over the IB tier; zero-byte node pairs are skipped on
	// both sides (the sender knows from SB, the receiver from RB).
	if src, hv, n := outView(myNode); n > 0 {
		m.localCopy(p, src, hv, 1, recvStage.Slice(inNodeOff[myNode], n), datatype.Byte, int(n))
	}
	if nnodes > 1 {
		var interBytes int64
		for nd := 0; nd < nnodes; nd++ {
			if nd != myNode {
				interBytes += nodeIn(nd)
			}
		}
		sp := p.BeginBytes("coll.alltoallv.inter", interBytes)
		pow2 := nnodes&(nnodes-1) == 0
		for s := 1; s < nnodes; s++ {
			var dNode, sNode int
			if pow2 {
				dNode = myNode ^ s
				sNode = dNode
			} else {
				dNode = (myNode + s) % nnodes
				sNode = (myNode - s + nnodes) % nnodes
			}
			var sreq, rreq *Request
			if src, hv, n := outView(dNode); n > 0 {
				sreq = m.isendOn(p, src, hv, 1, dNode*rpn, tagInter)
			}
			if n := nodeIn(sNode); n > 0 {
				rreq = m.Irecv(recvStage.Slice(inNodeOff[sNode], n), datatype.Byte, int(n), sNode*rpn, tagInter)
			}
			if sreq != nil {
				sreq.Wait(p)
			}
			if rreq != nil {
				rreq.Wait(p)
			}
		}
		sp.End()
	}

	// Phase 3: hand each member its column — one block per source rank,
	// in rank order, which is exactly the member's unpack order.
	sp = p.BeginBytes("coll.alltoallv.intra", nodeRecvTot)
	for di := 1; di < rpn; di++ {
		var bls []int
		var displs []int64
		var total int64
		for s := 0; s < size; s++ {
			if RB[di][s] == 0 {
				continue
			}
			bls = append(bls, int(RB[di][s]))
			displs = append(displs, inOff(s, di))
			total += RB[di][s]
		}
		if total == 0 {
			continue
		}
		m.sendOn(p, recvStage, datatype.Hindexed(bls, displs, datatype.Byte), 1, lead+di, tagOut+di)
	}
	// The leader's own column unpacks straight into recvBuf.
	for s := 0; s < size; s++ {
		if rB[s] == 0 {
			continue
		}
		m.localCopy(p, recvStage.Slice(inOff(s, 0), rB[s]), datatype.Byte, int(rB[s]), rslot(s), rdt, rcounts[s])
	}
	sp.End()

	if recvStage.IsValid() {
		m.freeScratch(recvStage)
	}
	if sendStage.IsValid() {
		m.freeScratch(sendStage)
	}
}
