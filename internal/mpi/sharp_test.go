package mpi

import (
	"bytes"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// switchConfig places nodes*rpn ranks blocked on a fat-tree fabric and
// requests in-network reduction.
func switchConfig(nodes, rpn, leafRadix, spines int) Config {
	var ranks []Placement
	for r := 0; r < nodes*rpn; r++ {
		ranks = append(ranks, Placement{Node: r / rpn, GPU: r % rpn})
	}
	cfg := Config{Ranks: ranks, Tuning: &Tuning{Collectives: CollSwitch}}
	cfg.IB.WireGBps = 6.0 // zero IB params would be replaced wholesale, Topo included
	cfg.IB.Topo.LeafRadix = leafRadix
	cfg.IB.Topo.Spines = spines
	return cfg
}

func TestSwitchDispatchSelection(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"fat tree, switch requested", switchConfig(4, 2, 2, 1), true},
		{"one rank per node still reduces in-network", switchConfig(4, 1, 2, 1), true},
		{"flat fabric falls back", func() Config {
			cfg := switchConfig(4, 2, 0, 0)
			return cfg
		}(), false},
		{"single node falls back", switchConfig(1, 4, 2, 1), false},
		{"auto tuning never goes in-network", func() Config {
			cfg := switchConfig(4, 2, 2, 1)
			cfg.Tuning = &Tuning{}
			return cfg
		}(), false},
	}
	for _, c := range cases {
		w := NewWorld(c.cfg)
		if got := w.ranks[0].switchOn(); got != c.want {
			t.Errorf("%s: switchOn = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSwitchReduceMatchesFlat is the bit-identity gate: the in-network
// reduction must agree with the flat host-side oracle bit for bit on
// exactly-associative operators (Int64 sum and max).
func TestSwitchReduceMatchesFlat(t *testing.T) {
	const count = 2048
	dt := datatype.Contiguous(count, datatype.Int64)
	shapes := []struct{ nodes, rpn, radix, spines int }{
		{2, 2, 2, 1}, {4, 2, 2, 2}, {8, 4, 4, 2},
	}
	for _, sh := range shapes {
		size := sh.nodes * sh.rpn
		for _, op := range []Op{OpSum, OpMax} {
			for _, root := range []int{0, size - 1} {
				run := func(cfg Config) []byte {
					w := NewWorld(cfg)
					var img []byte
					w.Run(func(m *Rank) {
						sendBuf := m.Malloc(dt.Size())
						mem.FillPattern(sendBuf, uint64(71+m.Rank()))
						var recvBuf mem.Buffer
						if m.Rank() == root {
							recvBuf = m.Malloc(dt.Size())
						}
						m.Reduce(sendBuf, recvBuf, dt, 1, op, root)
						if m.Rank() == root {
							img = append([]byte(nil), recvBuf.Bytes()...)
						}
					})
					checkQuiescent(t, w, "switch reduce")
					w.Close()
					return img
				}
				sw := run(switchConfig(sh.nodes, sh.rpn, sh.radix, sh.spines))
				flat := run(blockedConfig(sh.nodes, sh.rpn, true))
				if !bytes.Equal(sw, flat) {
					t.Fatalf("%dx%d op %d root %d: switch reduce differs from flat oracle",
						sh.nodes, sh.rpn, op, root)
				}
			}
		}
	}
}

// TestSwitchAllreduceMatchesFlat: every rank's Allreduce result must
// match the flat oracle bit for bit.
func TestSwitchAllreduceMatchesFlat(t *testing.T) {
	const count = 1024
	dt := datatype.Contiguous(count, datatype.Int64)
	shapes := []struct{ nodes, rpn, radix, spines int }{
		{2, 2, 2, 1}, {3, 2, 2, 1}, {8, 4, 4, 1},
	}
	for _, sh := range shapes {
		size := sh.nodes * sh.rpn
		run := func(cfg Config) [][]byte {
			w := NewWorld(cfg)
			imgs := make([][]byte, size)
			w.Run(func(m *Rank) {
				sendBuf := m.Malloc(dt.Size())
				recvBuf := m.Malloc(dt.Size())
				mem.FillPattern(sendBuf, uint64(7+m.Rank()))
				m.Allreduce(sendBuf, recvBuf, dt, 1, OpSum)
				imgs[m.Rank()] = append([]byte(nil), recvBuf.Bytes()...)
			})
			checkQuiescent(t, w, "switch allreduce")
			w.Close()
			return imgs
		}
		sw := run(switchConfig(sh.nodes, sh.rpn, sh.radix, sh.spines))
		flat := run(blockedConfig(sh.nodes, sh.rpn, true))
		for r := 0; r < size; r++ {
			if !bytes.Equal(sw[r], flat[r]) {
				t.Fatalf("%dx%d: rank %d switch allreduce differs from flat oracle", sh.nodes, sh.rpn, r)
			}
		}
	}
}

// TestSwitchReduceSpans asserts the in-network phase appears on the
// trace timeline (both the MPI-level span and the fabric's ALU spans),
// proving the dispatch actually took the switch path.
func TestSwitchReduceSpans(t *testing.T) {
	const count = 512
	dt := datatype.Contiguous(count, datatype.Int64)
	w := NewWorld(switchConfig(4, 2, 2, 1))
	rec := sim.NewRecorder(w.Engine())
	w.Run(func(m *Rank) {
		sendBuf := m.MallocHost(dt.Size())
		recvBuf := m.MallocHost(dt.Size())
		mem.FillPattern(sendBuf, uint64(m.Rank()))
		m.Allreduce(sendBuf, recvBuf, dt, 1, OpSum)
	})
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tk := range rec.Tracks() {
		for _, sp := range tk.Spans {
			seen[sp.Name] = true
		}
	}
	for _, want := range []string{"coll.reduce.sharp", "sharp.contrib", "sharp.leaf"} {
		if !seen[want] {
			t.Fatalf("no %s span on the timeline", want)
		}
	}
}

// TestSwitchBeatsHierOversubscribed pins the performance claim the
// tuner exploits: on an oversubscribed fat tree the in-network
// reduction finishes earlier in virtual time than the host-side
// hierarchical tree, because one partial per leaf crosses the starved
// uplinks instead of log2(nodes) full binomial rounds.
func TestSwitchBeatsHierOversubscribed(t *testing.T) {
	const count = 1 << 15 // 256 KiB of Int64 per rank
	dt := datatype.Contiguous(count, datatype.Int64)
	run := func(coll CollMode) sim.Time {
		cfg := switchConfig(8, 4, 4, 1) // 4:1 oversubscribed, two leaves
		cfg.Tuning = &Tuning{Collectives: coll}
		w := NewWorld(cfg)
		w.Run(func(m *Rank) {
			sendBuf := m.MallocHost(dt.Size())
			recvBuf := m.MallocHost(dt.Size())
			mem.FillPattern(sendBuf, uint64(m.Rank()))
			m.Allreduce(sendBuf, recvBuf, dt, 1, OpSum)
		})
		now := w.Engine().Now()
		w.Close()
		return now
	}
	hier, sw := run(CollHier), run(CollSwitch)
	if sw >= hier {
		t.Fatalf("switch allreduce (%v) not faster than hier (%v) on oversubscribed tree", sw, hier)
	}
	t.Logf("hier %v, switch %v (%.2fx)", hier, sw, float64(hier)/float64(sw))
}

// TestSwitchReduceConcurrentOps drives two nonblocking Allreduces at
// once, exercising concurrent in-flight ops keyed by distinct tags.
func TestSwitchReduceConcurrentOps(t *testing.T) {
	const count = 256
	dt := datatype.Contiguous(count, datatype.Int64)
	w := NewWorld(switchConfig(4, 2, 2, 1))
	size := w.Size()
	imgs := make([][][]byte, 2)
	for i := range imgs {
		imgs[i] = make([][]byte, size)
	}
	w.Run(func(m *Rank) {
		a := m.MallocHost(dt.Size())
		b := m.MallocHost(dt.Size())
		ra := m.MallocHost(dt.Size())
		rb := m.MallocHost(dt.Size())
		mem.FillPattern(a, uint64(11+m.Rank()))
		mem.FillPattern(b, uint64(1700+m.Rank()))
		r1 := m.Iallreduce(a, ra, dt, 1, OpSum)
		r2 := m.Iallreduce(b, rb, dt, 1, OpMax)
		r1.Wait(m.Proc())
		r2.Wait(m.Proc())
		imgs[0][m.Rank()] = append([]byte(nil), ra.Bytes()...)
		imgs[1][m.Rank()] = append([]byte(nil), rb.Bytes()...)
	})
	w.Close()
	for i := range imgs {
		for r := 1; r < size; r++ {
			if !bytes.Equal(imgs[i][r], imgs[i][0]) {
				t.Fatalf("op %d: rank %d result differs from rank 0", i, r)
			}
		}
	}
}
