package mpi

import (
	"fmt"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// One-sided communication (MPI-2 RMA) over the same datatype-aware
// transfer strategies as point-to-point: the paper notes that a
// committed datatype is usable by "point-to-point, collective, I/O and
// one-sided functions", and the GPU datatype engine composes unchanged —
// a Put packs GPU-resident non-contiguous data at the origin and
// scatters it into the target window's layout through the pipelined
// protocols, with the target's progress engine (not its application
// code) running the receiver side.
//
// Synchronization model: Put and Get return Requests that complete only
// after the remote side has fully completed (a slightly stronger
// guarantee than MPI's), so Fence is Wait-all + Barrier.

// Win is a window of locally exposed memory (host or device).
type Win struct {
	m     *Rank
	id    int
	buf   mem.Buffer
	local []*Request // operations this rank originated in the open epoch
}

// winBufs returns the registry row for window id, sized on demand.
func (w *World) winBufs(id int) []mem.Buffer {
	for len(w.wins) <= id {
		w.wins = append(w.wins, make([]mem.Buffer, len(w.ranks)))
	}
	return w.wins[id]
}

// WinCreate exposes buf to all ranks. Collective: every rank must call
// it in the same order.
func (m *Rank) WinCreate(buf mem.Buffer) *Win {
	id := m.winSeq
	m.winSeq++
	m.w.winBufs(id)[m.rank] = buf
	m.Barrier() // all ranks registered
	return &Win{m: m, id: id, buf: buf}
}

// Buffer returns the locally exposed window memory.
func (w *Win) Buffer() mem.Buffer { return w.buf }

// multiFuture completes its request after n sub-completions.
type multiFuture struct {
	req *Request
	n   int
}

func (mf *multiFuture) done() {
	mf.n--
	if mf.n == 0 {
		mf.req.done.Complete(nil)
	}
}

// Put transfers (origin, odt, ocount) into the target rank's window at
// byte displacement tdisp with layout (tdt, tcount). It returns a
// request that completes once the data is in place at the target.
func (w *Win) Put(origin mem.Buffer, odt *datatype.Datatype, ocount, target int, tdisp int64, tdt *datatype.Datatype, tcount int) *Request {
	m := w.m
	checkRMAArgs(odt, ocount, tdt, tcount)
	req := &Request{done: m.w.eng.NewFuture()}
	w.local = append(w.local, req)
	mf := &multiFuture{req: req, n: 2}

	packed := int64(ocount) * odt.Size()
	ch := m.channel(target)
	internal := &Request{done: m.w.eng.NewFuture()}
	op := &SendOp{M: m, Buf: origin, Dt: odt, Count: ocount, Dest: target, Tag: -1, Packed: packed, Ch: ch, Req: internal}
	info := m.w.tun.strategy.StartSend(op)
	m.w.eng.Spawn(fmt.Sprintf("rank%d.put.origin", m.rank), func(p *sim.Proc) {
		internal.Wait(p)
		mf.done()
	})

	tRank := m.w.ranks[target]
	tbuf := m.w.winBufs(w.id)[target].Slice(tdisp, spanOf(tdt, tcount))
	src := m.rank
	ch.AM(m.p, amHeaderBytes, func(_ *sim.Proc) {
		tReq := &Request{done: tRank.w.eng.NewFuture()}
		rop := &RecvOp{M: tRank, Buf: tbuf, Dt: tdt, Count: tcount, Src: src, Tag: -1,
			Packed: packed, Ch: tRank.channel(src), Req: tReq}
		tRank.w.eng.Spawn(fmt.Sprintf("rank%d.put.target", tRank.rank), func(p *sim.Proc) {
			tRank.w.tun.strategy.RunRecv(p, rop, info)
			// Remote completion notification back to the origin.
			tRank.channel(src).AM(p, amHeaderBytes, func(*sim.Proc) { mf.done() })
		})
	})
	return req
}

// Get transfers (tdt, tcount) at byte displacement tdisp of the target
// rank's window into (origin, odt, ocount). The target's progress
// engine runs the sender side; the application there is not involved.
func (w *Win) Get(origin mem.Buffer, odt *datatype.Datatype, ocount, target int, tdisp int64, tdt *datatype.Datatype, tcount int) *Request {
	m := w.m
	checkRMAArgs(odt, ocount, tdt, tcount)
	req := &Request{done: m.w.eng.NewFuture()}
	w.local = append(w.local, req)

	packed := int64(tcount) * tdt.Size()
	tRank := m.w.ranks[target]
	tbuf := m.w.winBufs(w.id)[target].Slice(tdisp, spanOf(tdt, tcount))
	src := m.rank
	// Ask the target to start a sender for its window region; it ships
	// the strategy info back, and we run the receiver locally.
	m.channel(target).AM(m.p, amHeaderBytes, func(tp *sim.Proc) {
		internal := &Request{done: tRank.w.eng.NewFuture()}
		sop := &SendOp{M: tRank, Buf: tbuf, Dt: tdt, Count: tcount, Dest: src, Tag: -1,
			Packed: packed, Ch: tRank.channel(src), Req: internal}
		info := tRank.w.tun.strategy.StartSend(sop)
		tRank.channel(src).AM(tp, amHeaderBytes, func(*sim.Proc) {
			rop := &RecvOp{M: m, Buf: origin, Dt: odt, Count: ocount, Src: target, Tag: -1,
				Packed: packed, Ch: m.channel(target), Req: req}
			m.w.eng.Spawn(fmt.Sprintf("rank%d.get.origin", m.rank), func(p *sim.Proc) {
				m.w.tun.strategy.RunRecv(p, rop, info)
			})
		})
	})
	return req
}

// Fence completes the access epoch: waits for every locally originated
// operation (which, by construction, implies remote completion), then
// synchronizes all ranks.
func (w *Win) Fence() {
	for _, r := range w.local {
		r.Wait(w.m.p)
	}
	w.local = w.local[:0]
	w.m.Barrier()
}

func checkRMAArgs(odt *datatype.Datatype, ocount int, tdt *datatype.Datatype, tcount int) {
	if !datatype.SignaturesMatch(odt, ocount, tdt, tcount) {
		panic(fmt.Sprintf("mpi: RMA signature mismatch: %s x%d vs %s x%d", odt.Name(), ocount, tdt.Name(), tcount))
	}
}
