package mpi

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
)

// TestPayloadGeneratorMatchesPack: packing a Fill()ed buffer with the
// reference CPU converter must give exactly the bytes WritePacked
// generates — the equivalence the modelled-payload mode rests on.
func TestPayloadGeneratorMatchesPack(t *testing.T) {
	dt := shapes.SubMatrix(16, 8, 12)
	const count = 6
	sp := SyntheticPayload{Seed: 3017, Dt: dt, Count: count}

	s := mem.NewSpace("host", mem.Host, 1<<22)
	buf := s.Alloc(sp.Span(), 0)
	sp.Fill(buf)

	c := datatype.NewConverter(dt, count)
	packed := make([]byte, c.Total())
	c.Pack(packed, buf.Bytes())

	var gen bytes.Buffer
	sp.WritePacked(&gen, 0, count)
	if !bytes.Equal(gen.Bytes(), packed) {
		t.Fatal("generated packed bytes differ from converter-packed buffer")
	}

	// Sub-ranges must match the corresponding packed window.
	var win bytes.Buffer
	sp.WritePacked(&win, 2, 3)
	lo, hi := 2*dt.Size(), 5*dt.Size()
	if !bytes.Equal(win.Bytes(), packed[lo:hi]) {
		t.Fatal("element window [2,5) differs from packed window")
	}
}

// TestPayloadSigProperties: signatures are deterministic, content- and
// range-sensitive, and never zero.
func TestPayloadSigProperties(t *testing.T) {
	dt := shapes.SubMatrix(16, 8, 12)
	sp := SyntheticPayload{Seed: 9, Dt: dt, Count: 8}
	a := sp.PackedSig(0, 4)
	if a != sp.PackedSig(0, 4) {
		t.Fatal("signature not deterministic")
	}
	if a == sp.PackedSig(4, 4) {
		t.Fatal("disjoint ranges collide")
	}
	if a == (SyntheticPayload{Seed: 10, Dt: dt, Count: 8}).PackedSig(0, 4) {
		t.Fatal("seeds collide")
	}
	if a == 0 {
		t.Fatal("signature must never be zero (zero means unsigned)")
	}
	var empty Sig64
	if empty.Sum64() == 0 {
		t.Fatal("empty signature must not be zero")
	}
}

// TestPayloadSigMatchesSha: WritePacked must feed any io.Writer the
// same stream (sha256 for digests, Sig64 for messages).
func TestPayloadSigMatchesSha(t *testing.T) {
	dt := shapes.SubMatrix(4, 4, 6)
	sp := SyntheticPayload{Seed: 77, Dt: dt, Count: 3}
	h1, h2 := sha256.New(), sha256.New()
	sp.WritePacked(h1, 0, 3)
	sp.WritePacked(h2, 0, 3)
	if !bytes.Equal(h1.Sum(nil), h2.Sum(nil)) {
		t.Fatal("two identical streams hashed differently")
	}
}
