package mpi

import "gpuddt/internal/sim"

// Tuning is the one typed bundle of protocol knobs a world runs under.
// It replaces the scattered surface of ProtoOptions, Config.Strategy
// and FlatCollectives: benchmarks and tools construct a Tuning (by
// hand, or by loading a persisted tuning table through cluster.Spec)
// and install it as Config.Tuning; everything else reads the resolved
// values. Zero fields select the same defaults the legacy ProtoOptions
// resolved to, so a nil or empty Tuning is byte-identical to the seed
// behavior.
type Tuning struct {
	// Eager bounds the packed size sent eagerly. nil means the default
	// (64 KiB); Eager(0) genuinely forces rendezvous for every message.
	// The pointer removes the legacy setDefaults ambiguity where an
	// explicit 0 was indistinguishable from "unset" (chaos tests had to
	// write EagerLimit: 1 to approximate force-rendezvous).
	Eager *int64

	// FragBytes is the pipeline fragment size (0 = 1 MiB).
	FragBytes int64

	// PipelineDepth is the number of ring slots (0 = 4).
	PipelineDepth int

	// DirectRemoteUnpack unpacks straight out of the sender's device
	// memory instead of staging fragments (the paper's §5.2.1 ablation).
	DirectRemoteUnpack bool

	// AMLatency is the shared-memory active-message latency (0 = 500ns).
	AMLatency sim.Time

	// RemoteAccessEff derates PCIe efficiency for direct remote reads
	// (0 = 0.7).
	RemoteAccessEff float64

	// Collectives selects the collective algorithm family; see CollMode.
	Collectives CollMode

	// Strategy overrides the rendezvous data-transfer strategy
	// (nil = the paper's pipelined protocols).
	Strategy Strategy
}

// Eager returns a pointer to n for use as Tuning.Eager. Eager(0) is the
// explicit force-rendezvous setting.
func Eager(n int64) *int64 { return &n }

// CollMode selects the collective algorithm family.
type CollMode int

const (
	// CollAuto runs the hierarchical algorithms wherever the rank
	// layout supports them (the default, identical to the legacy
	// behavior without FlatCollectives).
	CollAuto CollMode = iota

	// CollFlat forces the topology-blind algorithms everywhere; the
	// differential-testing oracle and the scaling benchmark's flat arm.
	CollFlat

	// CollHier forces the host-side hierarchical algorithms (alias of
	// CollAuto today; named so tuning tables can pin the choice).
	CollHier

	// CollSwitch executes Reduce/Allreduce in-network at the fat-tree
	// leaf/spine switches (SHARP-style); every other collective runs as
	// under CollAuto. Worlds without a hierarchical fabric fall back to
	// CollAuto dispatch.
	CollSwitch
)

// String returns the table encoding of the mode.
func (c CollMode) String() string {
	switch c {
	case CollFlat:
		return "flat"
	case CollHier:
		return "hier"
	case CollSwitch:
		return "switch"
	default:
		return "auto"
	}
}

// ParseCollMode is the inverse of CollMode.String; unknown strings
// report ok=false.
func ParseCollMode(s string) (CollMode, bool) {
	switch s {
	case "auto", "":
		return CollAuto, true
	case "flat":
		return CollFlat, true
	case "hier":
		return CollHier, true
	case "switch":
		return CollSwitch, true
	}
	return CollAuto, false
}

// resolvedTuning is the world's effective knob set: every field
// concrete, defaults applied once at NewWorld.
type resolvedTuning struct {
	eager              int64
	frag               int64
	depth              int
	directRemoteUnpack bool
	amLatency          sim.Time
	remoteAccessEff    float64
	coll               CollMode
	strategy           Strategy
}

// resolveTuning folds Config.Tuning — or, when that is nil, the
// deprecated ProtoOptions/Strategy/FlatCollectives shim — into the
// concrete knob set. The defaults here are the exact values the legacy
// setDefaults produced, so worlds built either way are byte-identical.
func resolveTuning(cfg *Config) resolvedTuning {
	r := resolvedTuning{
		eager:           64 << 10,
		frag:            1 << 20,
		depth:           4,
		amLatency:       500 * sim.Nanosecond,
		remoteAccessEff: 0.7,
	}
	if t := cfg.Tuning; t != nil {
		if t.Eager != nil {
			r.eager = *t.Eager
		}
		if t.FragBytes != 0 {
			r.frag = t.FragBytes
		}
		if t.PipelineDepth != 0 {
			r.depth = t.PipelineDepth
		}
		r.directRemoteUnpack = t.DirectRemoteUnpack
		if t.AMLatency != 0 {
			r.amLatency = t.AMLatency
		}
		if t.RemoteAccessEff != 0 {
			r.remoteAccessEff = t.RemoteAccessEff
		}
		r.coll = t.Collectives
		r.strategy = t.Strategy
		if r.strategy == nil {
			r.strategy = cfg.Strategy
		}
	} else {
		o := cfg.Proto
		if o.EagerLimit != 0 {
			r.eager = o.EagerLimit
		}
		if o.FragBytes != 0 {
			r.frag = o.FragBytes
		}
		if o.PipelineDepth != 0 {
			r.depth = o.PipelineDepth
		}
		r.directRemoteUnpack = o.DirectRemoteUnpack
		if o.AMLatency != 0 {
			r.amLatency = o.AMLatency
		}
		if o.RemoteAccessEff != 0 {
			r.remoteAccessEff = o.RemoteAccessEff
		}
		if o.FlatCollectives {
			r.coll = CollFlat
		}
		r.strategy = cfg.Strategy
	}
	if r.strategy == nil {
		r.strategy = &PipelinedStrategy{}
	}
	return r
}

// Tuning returns the world's effective knob set as a fully-populated
// Tuning value (Eager always non-nil), for reporting and tests.
func (w *World) Tuning() Tuning {
	return Tuning{
		Eager:              Eager(w.tun.eager),
		FragBytes:          w.tun.frag,
		PipelineDepth:      w.tun.depth,
		DirectRemoteUnpack: w.tun.directRemoteUnpack,
		AMLatency:          w.tun.amLatency,
		RemoteAccessEff:    w.tun.remoteAccessEff,
		Collectives:        w.tun.coll,
		Strategy:           w.tun.strategy,
	}
}
