package mpi

import (
	"fmt"

	"gpuddt/internal/core"
	"gpuddt/internal/cuda"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// PipelinedStrategy implements the paper's protocols (§4): a
// receiver-driven pipelined RDMA protocol over the shared-memory BTL
// (CUDA IPC, fragment ring, ACK-based slot reuse, handshake fast paths
// for contiguous endpoints) and a pipelined copy-in/out protocol over
// the InfiniBand BTL (zero-copy host staging on both sides).
//
// Under fault injection the receiver-driven design doubles as the
// recovery protocol: transient faults are retried per fragment with
// backoff, and when a peer-access (CUDA IPC) fault persists, the
// receiver cancels the zero-copy attempt and re-commands the sender to
// run the staged copy-in/out protocol over the same channel — the
// degradation path real GPU-aware MPI stacks take when P2P mappings
// are unavailable.
type PipelinedStrategy struct{}

// Name implements Strategy.
func (s *PipelinedStrategy) Name() string { return "pipelined" }

// rendInfo is the RTS payload: the handshake information the receiver
// uses to pick a transfer plan (§4.1).
type rendInfo struct {
	op *SendOp
	st *senderState

	// contig is the sender's packed data window when the send datatype
	// is contiguous; over SM the receiver consumes it in place.
	contig    mem.Buffer
	contigIPC cuda.IpcHandle // valid when contig is device memory
}

// senderState is the sender half of a rendezvous transfer, driven by
// commands from the receiver. The worker process runs one command per
// protocol attempt and exits when an attempt completes; an aborted
// attempt loops back for the receiver's fallback command. On the SM
// contiguous fast path the worker is not spawned at all unless the
// receiver's zero-copy attempt fails and it commands a staged send.
type senderState struct {
	op      *SendOp
	cmds    *sim.Mailbox
	spawned bool
	prod    *fragProducer // reused (rewound) across protocol attempts
}

// Receiver-to-sender commands. Each command that needs ACK flow control
// carries its own acks mailbox, so an aborted attempt's stale ACKs (in
// flight or preloaded) land in a mailbox no longer read by anyone
// instead of corrupting the next attempt's slot accounting.
type cmdPackToRing struct {
	events *sim.Mailbox // receiver's fragment-event queue
	acks   *sim.Mailbox // freed slot indices; abortMsg cancels
}
type cmdPackDirect struct {
	dst    cuda.IpcHandle // receiver's contiguous region (device)
	dstBuf mem.Buffer     // or host region (valid if not device)
	isDev  bool
	events *sim.Mailbox
}
type cmdSendStaged struct {
	ring   []mem.Buffer // receiver host ring slots (Put targets)
	direct mem.Buffer   // receiver contiguous host window (skip ring)
	events *sim.Mailbox
	acks   *sim.Mailbox
}

// abortMsg, put into a command's acks mailbox by the receiver, cancels
// the protocol attempt: the sender worker unwinds and awaits the
// fallback command. It is delivered through the ACK stream because that
// is where an in-progress sender provably blocks: the receiver aborts
// only before acknowledging the fragment it failed on, so the sender is
// short at least one ACK and must consume the abort.
type abortMsg struct{}

// getAck returns the next freed slot index, or ok=false on abortMsg.
func getAck(p *sim.Proc, acks *sim.Mailbox) (int, bool) {
	switch v := acks.Get(p).(type) {
	case abortMsg:
		return 0, false
	case int:
		return v, true
	default:
		panic(fmt.Sprintf("mpi: unexpected ack %T", v))
	}
}

// fragEvt is a sender-to-receiver fragment notification. failed reports
// that the sender could not run the commanded protocol (a persistent
// peer-access fault); the receiver falls back to a staged command.
type fragEvt struct {
	slot    int
	off, n  int64
	ring    mem.Buffer     // SM ring (host) — valid on first event
	ringIPC cuda.IpcHandle // SM ring (device)
	ringDev bool
	last    bool
	failed  bool
}

// contigWindow returns the packed window of (buf, dt, count) when the
// layout is a single gap-free block.
func contigWindow(buf mem.Buffer, dt *datatype.Datatype, count int) (mem.Buffer, bool) {
	v := datatype.VectorViewN(dt, count)
	if v == nil || v.Count != 1 {
		return mem.Buffer{}, false
	}
	return buf.Slice(v.Off, v.BlockLen), true
}

// deviceOf returns the GPU index of a buffer on the rank's node, or -1.
func (m *Rank) deviceOf(b mem.Buffer) int {
	if b.Kind() == mem.Host {
		return -1
	}
	return m.ctx.Node().DeviceOf(b.Space())
}

// engineFor returns the rank's datatype engine for the GPU owning buf.
func (m *Rank) engineFor(b mem.Buffer) *core.Engine {
	return m.engs[m.deviceOf(b)]
}

// StartSend implements Strategy: publish handshake info and, unless the
// SM contiguous fast path applies, start the command-driven sender
// worker. The fast path leaves the worker unspawned — §4.1: "if the
// sender datatype is contiguous, the receiver can use the sender buffer
// directly", no sender-side work at all — but still publishes the
// command mailbox so the receiver can demote to a staged send if its
// IPC mapping of the window fails.
func (s *PipelinedStrategy) StartSend(op *SendOp) interface{} {
	ri := &rendInfo{op: op}
	ri.st = &senderState{
		op:   op,
		cmds: op.M.w.eng.NewMailbox(fmt.Sprintf("rank%d.sendcmds", op.M.rank)),
	}
	if w, ok := contigWindow(op.Buf, op.Dt, op.Count); ok && op.Ch.Kind() == SM {
		ri.contig = w
		if w.Kind() == mem.Device {
			ri.contigIPC = op.M.ctx.IpcGetMemHandle(w)
		}
		return ri
	}
	ri.st.start(op.M.w.eng)
	return ri
}

// start spawns the sender worker once; receivers call it from their
// command AMs (running on the sender's progress process) so the lazy
// fast-path sender only materializes when a fallback needs it.
func (st *senderState) start(eng *sim.Engine) {
	if st.spawned {
		return
	}
	st.spawned = true
	eng.Spawn(fmt.Sprintf("rank%d.sendpipe", st.op.M.rank), func(p *sim.Proc) {
		for {
			var ok bool
			switch cmd := st.cmds.Get(p).(type) {
			case cmdPackToRing:
				ok = st.runPackToRing(p, cmd)
			case cmdPackDirect:
				ok = st.runPackDirect(p, cmd)
			case cmdSendStaged:
				ok = st.runSendStaged(p, cmd)
			default:
				panic(fmt.Sprintf("mpi: unexpected sender command %T", cmd))
			}
			if ok {
				st.op.Req.done.Complete(nil)
				return
			}
			// Aborted. The receiver cancels an attempt only en route to
			// issuing a fallback command, so waiting here cannot deadlock.
			p.Count("mpi.protocol.abort", 1)
		}
	})
}

// producer returns the sender's fragment producer, rewound to packed
// offset zero: a fallback attempt replays the whole message through the
// same compiled plan (Packer.SeekTo) rather than rebuilding the worker.
func (st *senderState) producer() *fragProducer {
	if st.prod == nil {
		st.prod = st.op.M.newProducer(st.op.Buf, st.op.Dt, st.op.Count)
	} else {
		st.prod.seekTo(0)
	}
	return st.prod
}

// notifyFrag sends the fragment AM to the receiver.
func (st *senderState) notifyFrag(p *sim.Proc, events *sim.Mailbox, ev fragEvt) {
	st.op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { events.Put(ev) })
}

// fragPlan iterates the message in pipeline fragments.
func fragPlan(total, frag int64) []int64 {
	var out []int64
	for off := int64(0); off < total; off += frag {
		n := frag
		if rem := total - off; n > rem {
			n = rem
		}
		out = append(out, n)
	}
	return out
}

// runPackToRing is the SM sender of the pipelined RDMA protocol: pack
// fragments into a ring exposed over CUDA IPC, reusing slots as ACKs
// arrive (§4.1, Fig. 4). Returns false if the receiver aborted the
// attempt (it could not map the ring).
func (st *senderState) runPackToRing(p *sim.Proc, cmd cmdPackToRing) bool {
	op := st.op
	m := op.M
	h := p.BeginBytes("mpi.send.ring", op.Packed)
	defer h.End()
	tun := &m.w.tun
	frag := tun.frag
	depth := tun.depth
	onGPU := op.Buf.Kind() == mem.Device

	var ring mem.Buffer
	if onGPU {
		ring = m.ringBuf(op.Buf.Space(), frag*int64(depth))
	} else {
		ring = m.ringBuf(m.ctx.Node().Host(), frag*int64(depth))
	}
	prod := st.producer()

	// cmd.acks doubles as the free-slot queue: preloaded with every slot,
	// refilled by the receiver's ACK active messages.
	for i := 0; i < depth; i++ {
		cmd.acks.Put(i)
	}
	frags := fragPlan(op.Packed, frag)
	var off int64
	for i, n := range frags {
		slot, ok := getAck(p, cmd.acks)
		if !ok {
			m.releaseRing(ring)
			return false
		}
		fh := p.BeginBytes("frag.pack", n)
		prod.packInto(p, ring.Slice(int64(slot)*frag, n))
		fh.End()
		p.Count("mpi.frag", 1)
		ev := fragEvt{slot: slot, off: off, n: n, last: i == len(frags)-1}
		if i == 0 {
			if onGPU {
				ev.ringDev = true
				ev.ringIPC = m.ctx.IpcGetMemHandle(ring)
			} else {
				ev.ring = ring
			}
		}
		st.notifyFrag(p, cmd.events, ev)
		off += n
	}
	// Wait until every slot has come home before reusing the ring.
	for i := 0; i < depth; i++ {
		if _, ok := getAck(p, cmd.acks); !ok {
			m.releaseRing(ring)
			return false
		}
	}
	m.releaseRing(ring)
	return true
}

// runPackDirect is the SM fast path when the receiver datatype is
// contiguous: the sender packs straight into the receiver's memory
// (same GPU: plain kernels; peer GPU: IPC-mapped zero-copy writes over
// PCIe; host: UMA zero copy) — no unpack, no staging (§4.1). Returns
// false if the receiver's window cannot be mapped (persistent IPC
// fault); the failure event tells the receiver to fall back.
func (st *senderState) runPackDirect(p *sim.Proc, cmd cmdPackDirect) bool {
	op := st.op
	m := op.M
	h := p.BeginBytes("mpi.send.direct", op.Packed)
	defer h.End()
	dst := cmd.dstBuf
	if cmd.isDev {
		mapped, err := m.openIPC(p, cmd.dst)
		if err != nil {
			st.notifyFrag(p, cmd.events, fragEvt{failed: true})
			return false
		}
		dst = mapped
	}
	prod := st.producer()
	frag := m.w.tun.frag
	var off int64
	for _, n := range fragPlan(op.Packed, frag) {
		fh := p.BeginBytes("frag.pack", n)
		prod.packInto(p, dst.Slice(off, n))
		fh.End()
		p.Count("mpi.frag", 1)
		off += n
	}
	st.notifyFrag(p, cmd.events, fragEvt{off: 0, n: op.Packed, last: true})
	return true
}

// runSendStaged is the copy-in/out sender (§4.2): pack fragments into
// pinned host memory with zero-copy kernels, Put them into the
// receiver's host ring (RDMA over IB, a host copy over SM) — or
// straight into a contiguous host receive buffer — overlapping packing
// with wire transfer via a producer process. It is both the regular IB
// protocol and the fallback every SM zero-copy protocol degrades to,
// which is why it never aborts: there is nothing further to fall back
// to, so unrecoverable faults here are fatal (inside Channel.Put).
func (st *senderState) runSendStaged(p *sim.Proc, cmd cmdSendStaged) bool {
	op := st.op
	m := op.M
	h := p.BeginBytes("mpi.send.ib", op.Packed)
	defer h.End()
	frag := m.w.tun.frag
	frags := fragPlan(op.Packed, frag)

	// Host-contiguous data needs no staging: Put from the user buffer.
	if w, ok := contigWindow(op.Buf, op.Dt, op.Count); ok && w.Kind() == mem.Host {
		var off int64
		for i, n := range frags {
			st.sendStagedFrag(p, cmd, i, off, n, w.Slice(off, n))
			off += n
		}
		return true
	}

	// Producer fills local host staging slots; this process drains them
	// onto the wire, so pack(i+1) overlaps transfer(i).
	local := m.ringBuf(m.ctx.Node().Host(), 2*frag)
	prod := st.producer()
	type filledSlot struct {
		ls int
		n  int64
	}
	freeLocal := m.w.eng.NewMailbox("ib.freeLocal")
	filled := m.w.eng.NewMailbox("ib.filled")
	freeLocal.Put(0)
	freeLocal.Put(1)
	m.w.eng.Spawn(fmt.Sprintf("rank%d.ibpack", m.rank), func(pp *sim.Proc) {
		for _, n := range frags {
			ls := freeLocal.Get(pp).(int)
			fh := pp.BeginBytes("frag.pack", n)
			prod.packInto(pp, local.Slice(int64(ls)*frag, n))
			fh.End()
			pp.Count("mpi.frag", 1)
			filled.Put(filledSlot{ls: ls, n: n})
		}
	})
	var off int64
	for i := range frags {
		f := filled.Get(p).(filledSlot)
		st.sendStagedFrag(p, cmd, i, off, f.n, local.Slice(int64(f.ls)*frag, f.n))
		freeLocal.Put(f.ls)
		off += f.n
	}
	m.releaseRing(local)
	return true
}

// sendStagedFrag Puts one packed fragment and notifies the receiver.
// Ring mode waits for the target slot's ACK window.
func (st *senderState) sendStagedFrag(p *sim.Proc, cmd cmdSendStaged, i int, off, n int64, src mem.Buffer) {
	if cmd.direct.IsValid() {
		st.op.Ch.Put(p, cmd.direct.Slice(off, n), src)
		st.notifyFrag(p, cmd.events, fragEvt{slot: -1, off: off, n: n, last: off+n == st.op.Packed})
		return
	}
	depth := len(cmd.ring)
	slot := i % depth
	if i >= depth {
		if _, ok := getAck(p, cmd.acks); !ok {
			panic("mpi: staged protocol aborted — no further fallback exists")
		}
	}
	st.op.Ch.Put(p, cmd.ring[slot].Slice(0, n), src)
	st.notifyFrag(p, cmd.events, fragEvt{slot: slot, off: off, n: n, last: off+n == st.op.Packed})
}

// RunRecv implements Strategy: the receiver-driven side.
func (s *PipelinedStrategy) RunRecv(p *sim.Proc, op *RecvOp, info interface{}) {
	ri := info.(*rendInfo)
	if op.Ch.Kind() == SM {
		if ri.contig.IsValid() {
			s.recvFromSenderWindow(p, op, ri)
			return
		}
		if w, ok := contigWindow(op.Buf, op.Dt, op.Count); ok {
			s.recvPackDirect(p, op, ri, w)
			return
		}
		s.recvFromRing(p, op, ri)
		return
	}
	s.recvStaged(p, op, ri)
}

// fallbackStaged downgrades a zero-copy SM protocol to the pipelined
// copy-in/out protocol after a persistent peer-access fault: the sender
// is (re-)commanded to pack through host staging and Put fragments into
// the receiver's host memory — exactly the IB protocol, run over the
// shared-memory BTL. The downgrade is marked on the timeline so tests
// (and operators) can assert it happened.
func (s *PipelinedStrategy) fallbackStaged(p *sim.Proc, op *RecvOp, ri *rendInfo) {
	h := p.Begin("mpi.fallback")
	h.SetDetail("zero-copy->copy-in/out")
	h.End()
	p.Count("mpi.fallback", 1)
	s.recvStaged(p, op, ri)
}

// recvFromSenderWindow consumes the sender's contiguous data in place
// (SM): a single copy when the receiver is contiguous too, otherwise
// fragment-wise unpacking with optional local staging. If the sender's
// device window cannot be IPC-mapped, the receiver falls back to
// commanding a staged send (the fast-path sender has no worker running
// yet, so nothing needs to be aborted).
func (s *PipelinedStrategy) recvFromSenderWindow(p *sim.Proc, op *RecvOp, ri *rendInfo) {
	m := op.M
	src := ri.contig
	if src.Kind() == mem.Device {
		mapped, err := m.openIPC(p, ri.contigIPC) // map cost (cached)
		if err != nil {
			s.fallbackStaged(p, op, ri)
			return
		}
		src = mapped
	}
	if w, ok := contigWindow(op.Buf, op.Dt, op.Count); ok {
		m.mustRetry(p, "frag.copy", func() error {
			return m.ctx.Memcpy(p, w.Slice(0, op.Packed), src)
		})
	} else {
		fc := m.newConsumer(op)
		var off int64
		for _, n := range fragPlan(op.Packed, m.w.tun.frag) {
			fc.consume(p, src.Slice(off, n), off, n, nil)
			off += n
		}
		fc.finish(p)
	}
	done := ri.op.Req.done
	op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { done.Complete(nil) })
	op.Req.done.Complete(nil)
}

// recvPackDirect tells the sender to pack straight into the receiver's
// contiguous buffer and waits for completion. A failure event (the
// sender could not map our window) triggers the staged fallback.
func (s *PipelinedStrategy) recvPackDirect(p *sim.Proc, op *RecvOp, ri *rendInfo, w mem.Buffer) {
	m := op.M
	events := m.w.eng.NewMailbox("recv.direct")
	cmd := cmdPackDirect{events: events}
	if w.Kind() == mem.Device {
		cmd.isDev = true
		cmd.dst = m.ctx.IpcGetMemHandle(w.Slice(0, op.Packed))
	} else {
		cmd.dstBuf = w.Slice(0, op.Packed)
	}
	st := ri.st
	ch := p.Begin("mpi.cts")
	op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { st.start(m.w.eng); st.cmds.Put(cmd) })
	ch.End()
	for {
		ev := events.Get(p).(fragEvt)
		if ev.failed {
			s.fallbackStaged(p, op, ri)
			return
		}
		if ev.last {
			break
		}
	}
	op.Req.done.Complete(nil)
}

// recvFromRing is the receiver of the SM pipelined RDMA protocol. If
// the sender's device ring cannot be IPC-mapped, the attempt is aborted
// through the ACK stream and the transfer falls back to staging.
func (s *PipelinedStrategy) recvFromRing(p *sim.Proc, op *RecvOp, ri *rendInfo) {
	m := op.M
	events := m.w.eng.NewMailbox("recv.ring")
	acks := m.w.eng.NewMailbox("recv.ring.acks")
	st := ri.st
	ch := p.Begin("mpi.cts")
	op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { st.start(m.w.eng); st.cmds.Put(cmdPackToRing{events: events, acks: acks}) })
	ch.End()

	fc := m.newConsumer(op)
	var ring mem.Buffer
	var got int64
	for got < op.Packed {
		ev := events.Get(p).(fragEvt)
		if !ring.IsValid() {
			if ev.ringDev {
				mapped, err := m.openIPC(p, ev.ringIPC)
				if err != nil {
					// Cancel the attempt before acking anything: the
					// sender is short every ACK, so it must consume the
					// abort, unwind, and await the staged command.
					acks.Put(abortMsg{})
					fc.abandon(p)
					s.fallbackStaged(p, op, ri)
					return
				}
				ring = mapped
			} else {
				ring = ev.ring
			}
		}
		frag := m.w.tun.frag
		src := ring.Slice(int64(ev.slot)*frag, ev.n)
		slot := ev.slot
		fc.consume(p, src, ev.off, ev.n, func(pp *sim.Proc) {
			pp.Count("mpi.ack", 1)
			op.Ch.AM(pp, amHeaderBytes, func(*sim.Proc) { acks.Put(slot) })
		})
		got += ev.n
	}
	fc.finish(p)
	op.Req.done.Complete(nil)
}

// recvStaged drives the copy-in/out receiver: set up a host ring (or
// expose the contiguous host window), command the sender, and unpack
// arrivals. It serves both the IB path and the SM fallback path — the
// protocol only needs Channel.Put semantics, which both BTLs provide.
func (s *PipelinedStrategy) recvStaged(p *sim.Proc, op *RecvOp, ri *rendInfo) {
	m := op.M
	tun := &m.w.tun
	events := m.w.eng.NewMailbox("recv.ib")
	st := ri.st

	// Contiguous host receiver: Put straight into the user buffer.
	if w, ok := contigWindow(op.Buf, op.Dt, op.Count); ok && w.Kind() == mem.Host {
		cmd := cmdSendStaged{direct: w.Slice(0, op.Packed), events: events}
		ch := p.Begin("mpi.cts")
		op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { st.start(m.w.eng); st.cmds.Put(cmd) })
		ch.End()
		for {
			if events.Get(p).(fragEvt).last {
				break
			}
		}
		op.Req.done.Complete(nil)
		return
	}

	frag := tun.frag
	depth := tun.depth
	ringBuf := m.ringBuf(m.ctx.Node().Host(), frag*int64(depth))
	ring := make([]mem.Buffer, depth)
	for i := range ring {
		ring[i] = ringBuf.Slice(int64(i)*frag, frag)
	}
	acks := m.w.eng.NewMailbox("recv.ib.acks")
	cmd := cmdSendStaged{ring: ring, events: events, acks: acks}
	ch := p.Begin("mpi.cts")
	op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { st.start(m.w.eng); st.cmds.Put(cmd) })
	ch.End()

	fc := m.newConsumer(op)
	var got int64
	for got < op.Packed {
		ev := events.Get(p).(fragEvt)
		src := ring[ev.slot].Slice(0, ev.n)
		slot := ev.slot
		fc.consume(p, src, ev.off, ev.n, func(pp *sim.Proc) {
			pp.Count("mpi.ack", 1)
			op.Ch.AM(pp, amHeaderBytes, func(*sim.Proc) { acks.Put(slot) })
		})
		got += ev.n
	}
	fc.finish(p)
	m.releaseRing(ringBuf)
	op.Req.done.Complete(nil)
}
