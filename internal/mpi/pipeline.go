package mpi

import (
	"fmt"

	"gpuddt/internal/core"
	"gpuddt/internal/cuda"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// PipelinedStrategy implements the paper's protocols (§4): a
// receiver-driven pipelined RDMA protocol over the shared-memory BTL
// (CUDA IPC, fragment ring, ACK-based slot reuse, handshake fast paths
// for contiguous endpoints) and a pipelined copy-in/out protocol over
// the InfiniBand BTL (zero-copy host staging on both sides).
type PipelinedStrategy struct{}

// Name implements Strategy.
func (s *PipelinedStrategy) Name() string { return "pipelined" }

// rendInfo is the RTS payload: the handshake information the receiver
// uses to pick a transfer plan (§4.1).
type rendInfo struct {
	op *SendOp
	st *senderState // nil when the sender has nothing to do (SM contiguous)

	// contig is the sender's packed data window when the send datatype
	// is contiguous; over SM the receiver consumes it in place.
	contig    mem.Buffer
	contigIPC cuda.IpcHandle // valid when contig is device memory
}

// senderState is the sender half of a rendezvous transfer, driven by
// commands from the receiver.
type senderState struct {
	op   *SendOp
	cmds *sim.Mailbox // the receiver's transfer-plan command
	acks *sim.Mailbox // freed slot indices (ACK flow control)
}

// Receiver-to-sender commands.
type cmdPackToRing struct {
	events *sim.Mailbox // receiver's fragment-event queue
}
type cmdPackDirect struct {
	dst    cuda.IpcHandle // receiver's contiguous region (device)
	dstBuf mem.Buffer     // or host region (valid if not device)
	isDev  bool
	events *sim.Mailbox
}
type cmdSendIB struct {
	ring   []mem.Buffer // receiver host ring slots (RDMA targets)
	direct mem.Buffer   // receiver contiguous host window (skip ring)
	events *sim.Mailbox
}

// fragEvt is a sender-to-receiver fragment notification.
type fragEvt struct {
	slot    int
	off, n  int64
	ring    mem.Buffer     // SM ring (host) — valid on first event
	ringIPC cuda.IpcHandle // SM ring (device)
	ringDev bool
	last    bool
}

// contigWindow returns the packed window of (buf, dt, count) when the
// layout is a single gap-free block.
func contigWindow(buf mem.Buffer, dt *datatype.Datatype, count int) (mem.Buffer, bool) {
	v := datatype.VectorViewN(dt, count)
	if v == nil || v.Count != 1 {
		return mem.Buffer{}, false
	}
	return buf.Slice(v.Off, v.BlockLen), true
}

// deviceOf returns the GPU index of a buffer on the rank's node, or -1.
func (m *Rank) deviceOf(b mem.Buffer) int {
	if b.Kind() == mem.Host {
		return -1
	}
	return m.ctx.Node().DeviceOf(b.Space())
}

// engineFor returns the rank's datatype engine for the GPU owning buf.
func (m *Rank) engineFor(b mem.Buffer) *core.Engine {
	return m.engs[m.deviceOf(b)]
}

// StartSend implements Strategy: publish handshake info and, unless the
// SM contiguous fast path applies, start a command-driven sender process.
func (s *PipelinedStrategy) StartSend(op *SendOp) interface{} {
	ri := &rendInfo{op: op}
	if w, ok := contigWindow(op.Buf, op.Dt, op.Count); ok && op.Ch.Kind() == SM {
		// §4.1: "if the sender datatype is contiguous, the receiver can
		// use the sender buffer directly" — no sender-side work at all.
		ri.contig = w
		if w.Kind() == mem.Device {
			ri.contigIPC = op.M.ctx.IpcGetMemHandle(w)
		}
		return ri
	}
	st := &senderState{
		op:   op,
		cmds: op.M.w.eng.NewMailbox(fmt.Sprintf("rank%d.sendcmds", op.M.rank)),
		acks: op.M.w.eng.NewMailbox(fmt.Sprintf("rank%d.sendacks", op.M.rank)),
	}
	ri.st = st
	op.M.w.eng.Spawn(fmt.Sprintf("rank%d.sendpipe", op.M.rank), func(p *sim.Proc) {
		switch cmd := st.cmds.Get(p).(type) {
		case cmdPackToRing:
			st.runPackToRing(p, cmd)
		case cmdPackDirect:
			st.runPackDirect(p, cmd)
		case cmdSendIB:
			st.runSendIB(p, cmd)
		default:
			panic(fmt.Sprintf("mpi: unexpected sender command %T", cmd))
		}
	})
	return ri
}

// notifyFrag sends the fragment AM to the receiver.
func (st *senderState) notifyFrag(p *sim.Proc, events *sim.Mailbox, ev fragEvt) {
	st.op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { events.Put(ev) })
}

// fragPlan iterates the message in pipeline fragments.
func fragPlan(total, frag int64) []int64 {
	var out []int64
	for off := int64(0); off < total; off += frag {
		n := frag
		if rem := total - off; n > rem {
			n = rem
		}
		out = append(out, n)
	}
	return out
}

// runPackToRing is the SM sender of the pipelined RDMA protocol: pack
// fragments into a ring exposed over CUDA IPC, reusing slots as ACKs
// arrive (§4.1, Fig. 4).
func (st *senderState) runPackToRing(p *sim.Proc, cmd cmdPackToRing) {
	op := st.op
	m := op.M
	h := p.BeginBytes("mpi.send.ring", op.Packed)
	defer h.End()
	proto := &m.w.cfg.Proto
	frag := proto.FragBytes
	depth := proto.PipelineDepth
	onGPU := op.Buf.Kind() == mem.Device

	var ring mem.Buffer
	if onGPU {
		ring = m.ringBuf(op.Buf.Space(), frag*int64(depth))
	} else {
		ring = m.ringBuf(m.ctx.Node().Host(), frag*int64(depth))
	}
	prod := m.newProducer(op.Buf, op.Dt, op.Count)

	// st.acks doubles as the free-slot queue: preloaded with every slot,
	// refilled by the receiver's ACK active messages.
	for i := 0; i < depth; i++ {
		st.acks.Put(i)
	}
	frags := fragPlan(op.Packed, frag)
	var off int64
	for i, n := range frags {
		slot := st.acks.Get(p).(int)
		fh := p.BeginBytes("frag.pack", n)
		prod.packInto(p, ring.Slice(int64(slot)*frag, n))
		fh.End()
		p.Count("mpi.frag", 1)
		ev := fragEvt{slot: slot, off: off, n: n, last: i == len(frags)-1}
		if i == 0 {
			if onGPU {
				ev.ringDev = true
				ev.ringIPC = m.ctx.IpcGetMemHandle(ring)
			} else {
				ev.ring = ring
			}
		}
		st.notifyFrag(p, cmd.events, ev)
		off += n
	}
	// Wait until every slot has come home before reusing the ring.
	for i := 0; i < depth; i++ {
		st.acks.Get(p)
	}
	m.releaseRing(ring)
	op.Req.done.Complete(nil)
}

// runPackDirect is the SM fast path when the receiver datatype is
// contiguous: the sender packs straight into the receiver's memory
// (same GPU: plain kernels; peer GPU: IPC-mapped zero-copy writes over
// PCIe; host: UMA zero copy) — no unpack, no staging (§4.1).
func (st *senderState) runPackDirect(p *sim.Proc, cmd cmdPackDirect) {
	op := st.op
	m := op.M
	h := p.BeginBytes("mpi.send.direct", op.Packed)
	defer h.End()
	dst := cmd.dstBuf
	if cmd.isDev {
		dst = m.ctx.IpcOpenMemHandle(p, cmd.dst)
	}
	prod := m.newProducer(op.Buf, op.Dt, op.Count)
	frag := m.w.cfg.Proto.FragBytes
	var off int64
	for _, n := range fragPlan(op.Packed, frag) {
		fh := p.BeginBytes("frag.pack", n)
		prod.packInto(p, dst.Slice(off, n))
		fh.End()
		p.Count("mpi.frag", 1)
		off += n
	}
	st.notifyFrag(p, cmd.events, fragEvt{off: 0, n: op.Packed, last: true})
	op.Req.done.Complete(nil)
}

// runSendIB is the copy-in/out sender (§4.2): pack fragments into pinned
// host memory with zero-copy kernels, RDMA them to the receiver's host
// ring (or straight into a contiguous host receive buffer), overlapping
// packing with wire transfer via a producer process.
func (st *senderState) runSendIB(p *sim.Proc, cmd cmdSendIB) {
	op := st.op
	m := op.M
	h := p.BeginBytes("mpi.send.ib", op.Packed)
	defer h.End()
	proto := &m.w.cfg.Proto
	frag := proto.FragBytes
	frags := fragPlan(op.Packed, frag)

	// Host-contiguous data needs no staging: RDMA from the user buffer.
	if w, ok := contigWindow(op.Buf, op.Dt, op.Count); ok && w.Kind() == mem.Host {
		var off int64
		for i, n := range frags {
			st.sendIBFrag(p, cmd, i, off, n, w.Slice(off, n))
			off += n
		}
		op.Req.done.Complete(nil)
		return
	}

	// Producer fills local host staging slots; this process drains them
	// onto the wire, so pack(i+1) overlaps RDMA(i).
	local := m.ringBuf(m.ctx.Node().Host(), 2*frag)
	prod := m.newProducer(op.Buf, op.Dt, op.Count)
	type filledSlot struct {
		ls int
		n  int64
	}
	freeLocal := m.w.eng.NewMailbox("ib.freeLocal")
	filled := m.w.eng.NewMailbox("ib.filled")
	freeLocal.Put(0)
	freeLocal.Put(1)
	m.w.eng.Spawn(fmt.Sprintf("rank%d.ibpack", m.rank), func(pp *sim.Proc) {
		for _, n := range frags {
			ls := freeLocal.Get(pp).(int)
			fh := pp.BeginBytes("frag.pack", n)
			prod.packInto(pp, local.Slice(int64(ls)*frag, n))
			fh.End()
			pp.Count("mpi.frag", 1)
			filled.Put(filledSlot{ls: ls, n: n})
		}
	})
	var off int64
	for i := range frags {
		f := filled.Get(p).(filledSlot)
		st.sendIBFrag(p, cmd, i, off, f.n, local.Slice(int64(f.ls)*frag, f.n))
		freeLocal.Put(f.ls)
		off += f.n
	}
	m.releaseRing(local)
	op.Req.done.Complete(nil)
}

// sendIBFrag RDMA-writes one packed fragment and notifies the receiver.
// Ring mode waits for the target slot's ACK window.
func (st *senderState) sendIBFrag(p *sim.Proc, cmd cmdSendIB, i int, off, n int64, src mem.Buffer) {
	m := st.op.M
	if cmd.direct.IsValid() {
		st.op.Ch.Put(p, cmd.direct.Slice(off, n), src)
		st.notifyFrag(p, cmd.events, fragEvt{slot: -1, off: off, n: n, last: off+n == st.op.Packed})
		return
	}
	depth := len(cmd.ring)
	slot := i % depth
	if i >= depth {
		st.acks.Get(p) // wait for the ACK freeing a slot (in order)
	}
	st.op.Ch.Put(p, cmd.ring[slot].Slice(0, n), src)
	st.notifyFrag(p, cmd.events, fragEvt{slot: slot, off: off, n: n, last: off+n == st.op.Packed})
	_ = m
}

// RunRecv implements Strategy: the receiver-driven side.
func (s *PipelinedStrategy) RunRecv(p *sim.Proc, op *RecvOp, info interface{}) {
	ri := info.(*rendInfo)
	m := op.M
	if op.Ch.Kind() == SM {
		if ri.contig.IsValid() {
			s.recvFromSenderWindow(p, op, ri)
			return
		}
		if w, ok := contigWindow(op.Buf, op.Dt, op.Count); ok {
			s.recvPackDirect(p, op, ri, w)
			return
		}
		s.recvFromRing(p, op, ri)
		return
	}
	s.recvIB(p, op, ri)
	_ = m
}

// recvFromSenderWindow consumes the sender's contiguous data in place
// (SM): a single copy when the receiver is contiguous too, otherwise
// fragment-wise unpacking with optional local staging.
func (s *PipelinedStrategy) recvFromSenderWindow(p *sim.Proc, op *RecvOp, ri *rendInfo) {
	m := op.M
	src := ri.contig
	if src.Kind() == mem.Device {
		src = m.ctx.IpcOpenMemHandle(p, ri.contigIPC) // map cost (cached)
	}
	if w, ok := contigWindow(op.Buf, op.Dt, op.Count); ok {
		m.ctx.Memcpy(p, w.Slice(0, op.Packed), src)
	} else {
		fc := m.newConsumer(op)
		var off int64
		for _, n := range fragPlan(op.Packed, m.w.cfg.Proto.FragBytes) {
			fc.consume(p, src.Slice(off, n), off, n, nil)
			off += n
		}
		fc.finish(p)
	}
	done := ri.op.Req.done
	op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { done.Complete(nil) })
	op.Req.done.Complete(nil)
}

// recvPackDirect tells the sender to pack straight into the receiver's
// contiguous buffer and waits for completion.
func (s *PipelinedStrategy) recvPackDirect(p *sim.Proc, op *RecvOp, ri *rendInfo, w mem.Buffer) {
	m := op.M
	events := m.w.eng.NewMailbox("recv.direct")
	cmd := cmdPackDirect{events: events}
	if w.Kind() == mem.Device {
		cmd.isDev = true
		cmd.dst = m.ctx.IpcGetMemHandle(w.Slice(0, op.Packed))
	} else {
		cmd.dstBuf = w.Slice(0, op.Packed)
	}
	st := ri.st
	ch := p.Begin("mpi.cts")
	op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { st.cmds.Put(cmd) })
	ch.End()
	for {
		if events.Get(p).(fragEvt).last {
			break
		}
	}
	op.Req.done.Complete(nil)
}

// recvFromRing is the receiver of the SM pipelined RDMA protocol.
func (s *PipelinedStrategy) recvFromRing(p *sim.Proc, op *RecvOp, ri *rendInfo) {
	m := op.M
	events := m.w.eng.NewMailbox("recv.ring")
	st := ri.st
	ch := p.Begin("mpi.cts")
	op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { st.cmds.Put(cmdPackToRing{events: events}) })
	ch.End()

	fc := m.newConsumer(op)
	var ring mem.Buffer
	var got int64
	for got < op.Packed {
		ev := events.Get(p).(fragEvt)
		if !ring.IsValid() {
			if ev.ringDev {
				ring = m.ctx.IpcOpenMemHandle(p, ev.ringIPC)
			} else {
				ring = ev.ring
			}
		}
		frag := m.w.cfg.Proto.FragBytes
		src := ring.Slice(int64(ev.slot)*frag, ev.n)
		slot := ev.slot
		fc.consume(p, src, ev.off, ev.n, func(pp *sim.Proc) {
			pp.Count("mpi.ack", 1)
			op.Ch.AM(pp, amHeaderBytes, func(*sim.Proc) { st.acks.Put(slot) })
		})
		got += ev.n
	}
	fc.finish(p)
	op.Req.done.Complete(nil)
}

// recvIB drives the copy-in/out receiver: set up a host ring (or expose
// the contiguous host window), command the sender, and unpack arrivals.
func (s *PipelinedStrategy) recvIB(p *sim.Proc, op *RecvOp, ri *rendInfo) {
	m := op.M
	proto := &m.w.cfg.Proto
	events := m.w.eng.NewMailbox("recv.ib")
	st := ri.st

	// Contiguous host receiver: RDMA straight into the user buffer.
	if w, ok := contigWindow(op.Buf, op.Dt, op.Count); ok && w.Kind() == mem.Host {
		cmd := cmdSendIB{direct: w.Slice(0, op.Packed), events: events}
		ch := p.Begin("mpi.cts")
		op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { st.cmds.Put(cmd) })
		ch.End()
		for {
			if events.Get(p).(fragEvt).last {
				break
			}
		}
		op.Req.done.Complete(nil)
		return
	}

	frag := proto.FragBytes
	depth := proto.PipelineDepth
	ringBuf := m.ringBuf(m.ctx.Node().Host(), frag*int64(depth))
	ring := make([]mem.Buffer, depth)
	for i := range ring {
		ring[i] = ringBuf.Slice(int64(i)*frag, frag)
	}
	cmd := cmdSendIB{ring: ring, events: events}
	ch := p.Begin("mpi.cts")
	op.Ch.AM(p, amHeaderBytes, func(*sim.Proc) { st.cmds.Put(cmd) })
	ch.End()

	fc := m.newConsumer(op)
	var got int64
	for got < op.Packed {
		ev := events.Get(p).(fragEvt)
		src := ring[ev.slot].Slice(0, ev.n)
		slot := ev.slot
		fc.consume(p, src, ev.off, ev.n, func(pp *sim.Proc) {
			pp.Count("mpi.ack", 1)
			op.Ch.AM(pp, amHeaderBytes, func(*sim.Proc) { st.acks.Put(slot) })
		})
		got += ev.n
	}
	fc.finish(p)
	m.releaseRing(ringBuf)
	op.Req.done.Complete(nil)
}
