package mpi

import (
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Topology-aware collectives. On a blocked multi-node layout (see
// detectHierarchy) each collective runs in phases: an intra-node phase
// over the shared-memory/PCIe channels, and an inter-node phase in
// which one leader per node (the node's first rank, or the collective
// root acting for its own node) carries the aggregated traffic over
// the IB tier. The flat algorithms in coll.go/coll2.go/reduce.go are
// the fallback for every other layout and produce byte-identical
// buffers; Proto.FlatCollectives forces them for differential testing.
//
// Tag discipline: every hierarchical phase draws its tags from the
// block the caller reserved with tagBlock, and every rank reserves the
// same amount at call time (the dispatch decision is a world-level
// property), so collective and point-to-point traffic can interleave
// freely — including several nonblocking collectives in flight at once.

// hierOn reports whether this world's collectives run the hierarchical
// algorithms.
func (m *Rank) hierOn() bool { return m.w.TopologyAware() }

// nodeGroup returns the ranks placed on the given node, in rank order.
func (m *Rank) nodeGroup(node int) []int {
	rpn := m.w.hier.rpn
	g := make([]int, rpn)
	for i := range g {
		g[i] = node*rpn + i
	}
	return g
}

func groupIndex(group []int, rank int) int {
	for i, r := range group {
		if r == rank {
			return i
		}
	}
	panic("mpi: rank not in collective group")
}

// bcastBinomial broadcasts (buf, dt, count) from group[rootIdx] to the
// other members of group over a binomial tree (the flat Bcast schedule
// restricted to the group) on the given tag. Every member must call it.
func (m *Rank) bcastBinomial(p *sim.Proc, group []int, rootIdx int, buf mem.Buffer, dt *datatype.Datatype, count, tag int) {
	size := len(group)
	if size <= 1 {
		return
	}
	vrank := (groupIndex(group, m.rank) - rootIdx + size) % size
	mask := 1
	for mask < size {
		if vrank&mask != 0 {
			m.recvOn(p, buf, dt, count, group[((vrank-mask)+rootIdx)%size], tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < size && vrank&(mask-1) == 0 && vrank&mask == 0 {
			m.sendOn(p, buf, dt, count, group[(vrank+mask+rootIdx)%size], tag)
		}
		mask >>= 1
	}
}

// actingLeader returns the rank speaking for node on the IB tier: the
// node's first rank, except on the root's node where the root itself
// leads (saving an intra-node forward of the root's data).
func (m *Rank) actingLeader(node, root int) int {
	if node == root/m.w.hier.rpn {
		return root
	}
	return node * m.w.hier.rpn
}

// leaderGroup returns every node's acting leader, in node order.
func (m *Rank) leaderGroup(root int) []int {
	g := make([]int, m.w.hier.nodes)
	for nd := range g {
		g[nd] = m.actingLeader(nd, root)
	}
	return g
}

// hierBcast: binomial over the per-node leaders on the IB tier, then
// binomial within each node over shared memory.
func (m *Rank) hierBcast(p *sim.Proc, tag int, buf mem.Buffer, dt *datatype.Datatype, count, root int) {
	h := m.w.hier
	myNode := m.rank / h.rpn
	lead := m.actingLeader(myNode, root)
	if m.rank == lead {
		sp := p.BeginBytes("coll.bcast.inter", int64(count)*dt.Size())
		m.bcastBinomial(p, m.leaderGroup(root), root/h.rpn, buf, dt, count, tag)
		sp.End()
	}
	sp := p.BeginBytes("coll.bcast.intra", int64(count)*dt.Size())
	g := m.nodeGroup(myNode)
	m.bcastBinomial(p, g, groupIndex(g, lead), buf, dt, count, tag+1)
	sp.End()
}

// hierAllgather: each node's slots are gathered to its leader in place,
// the leaders ring whole node slabs over the IB tier (one message per
// step carrying rpn slots, instead of the flat ring's size-1 slot-sized
// hops per rank), and each leader broadcasts the assembled buffer to
// its node. Slot r starts at r*count*extent, so a node's rpn
// consecutive slots — and the whole buffer — are themselves valid
// (dt, k*count) views, which keeps every wire hop inside the datatype
// engine.
func (m *Rank) hierAllgather(p *sim.Proc, tag int, buf mem.Buffer, dt *datatype.Datatype, count int) {
	size := m.Size()
	h := m.w.hier
	rpn, nnodes := h.rpn, h.nodes
	myNode := m.rank / rpn
	li := m.rank % rpn
	lead := myNode * rpn
	stride := int64(count) * dt.Extent()
	packed := int64(count) * dt.Size()

	tagIn := tag
	tagRing := tag + rpn
	tagOut := tag + rpn + nnodes

	slot := func(r int) mem.Buffer {
		return buf.Slice(int64(r)*stride, spanOf(dt, count))
	}

	// Phase 1: gather the node's slots at the leader, in place.
	sp := p.BeginBytes("coll.allgather.intra", packed)
	if li != 0 {
		m.sendOn(p, slot(m.rank), dt, count, lead, tagIn+li)
	} else {
		reqs := make([]*Request, 0, rpn-1)
		for i := 1; i < rpn; i++ {
			reqs = append(reqs, m.Irecv(slot(lead+i), dt, count, lead+i, tagIn+i))
		}
		for _, rq := range reqs {
			rq.Wait(p)
		}
	}
	sp.End()

	// Phase 2: leaders ring aggregated node slabs over the IB tier.
	if li == 0 && nnodes > 1 {
		slab := func(node int) mem.Buffer {
			return buf.Slice(int64(node)*int64(rpn)*stride, spanOf(dt, rpn*count))
		}
		sp := p.BeginBytes("coll.allgather.inter", packed*int64(rpn)*int64(nnodes-1))
		right := (myNode + 1) % nnodes
		left := (myNode - 1 + nnodes) % nnodes
		for s := 0; s < nnodes-1; s++ {
			sendBlk := (myNode - s + nnodes) % nnodes
			recvBlk := (myNode - s - 1 + nnodes) % nnodes
			sreq := m.isendOn(p, slab(sendBlk), dt, rpn*count, right*rpn, tagRing+s)
			rreq := m.Irecv(slab(recvBlk), dt, rpn*count, left*rpn, tagRing+s)
			sreq.Wait(p)
			rreq.Wait(p)
		}
		sp.End()
	}

	// Phase 3: broadcast the assembled buffer within each node.
	sp = p.BeginBytes("coll.allgather.intra", packed*int64(size))
	m.bcastBinomial(p, m.nodeGroup(myNode), 0, buf, dt, size*count, tagOut)
	sp.End()
}

// hierAlltoall aggregates each node's outgoing traffic at its leader
// and exchanges one large message per node pair over the IB tier —
// nodes² wire messages instead of the flat algorithm's ranks² — at the
// cost of staging the node's traffic through leader host scratch.
//
// With P ranks, R ranks per node and B packed bytes per (src, dst)
// pair, the leader's send stage holds its members' packed send buffers
// back to back (member li at offset li*P*B); the block member li sends
// to global rank d*R+di sits at li*P*B + (d*R+di)*B, so the traffic
// bound for node d is an Hvector of R blocks of R*B bytes with stride
// P*B. The receive stage is source-major — src node s's block at
// s*R*R*B, inside it src member li at li*R*B, dest member di at di*B —
// so dest member di's column is an Hvector of P blocks of B bytes with
// stride R*B, which unpacks straight into (rdt, rcount*P) in rank
// order.
func (m *Rank) hierAlltoall(p *sim.Proc, tag int, sendBuf mem.Buffer, sdt *datatype.Datatype, scount int,
	recvBuf mem.Buffer, rdt *datatype.Datatype, rcount int) {
	size := m.Size()
	h := m.w.hier
	rpn, nnodes := h.rpn, h.nodes
	myNode := m.rank / rpn
	li := m.rank % rpn
	lead := myNode * rpn
	B := int64(scount) * sdt.Size()
	P := int64(size)

	tagIn := tag
	tagInter := tag + rpn
	tagOut := tag + rpn + 1

	if li != 0 {
		// Members hand their whole send buffer to the leader and receive
		// their column of the node's inbound traffic back; both transfers
		// ride the signature rule that any layout may be received as the
		// same number of packed bytes.
		sp := p.BeginBytes("coll.alltoall.intra", B*P)
		m.sendOn(p, sendBuf, sdt, scount*size, lead, tagIn+li)
		m.recvOn(p, recvBuf, rdt, rcount*size, lead, tagOut+li)
		sp.End()
		return
	}

	sendStage := m.scratch(int64(rpn) * P * B)
	recvStage := m.scratch(P * int64(rpn) * B)

	// Phase 1: collect the members' packed send buffers.
	sp := p.BeginBytes("coll.alltoall.intra", B*P*int64(rpn))
	reqs := make([]*Request, 0, rpn-1)
	for i := 1; i < rpn; i++ {
		reqs = append(reqs, m.Irecv(sendStage.Slice(int64(i)*P*B, P*B), datatype.Byte, int(P*B), lead+i, tagIn+i))
	}
	m.localCopy(p, sendBuf, sdt, scount*size, sendStage.Slice(0, P*B), datatype.Byte, int(P*B))
	for _, rq := range reqs {
		rq.Wait(p)
	}
	sp.End()

	// Phase 2: pairwise exchange of per-node aggregates.
	nodeBlk := int64(rpn) * int64(rpn) * B
	sendTo := func(d int) (mem.Buffer, *datatype.Datatype) {
		base := int64(d) * int64(rpn) * B
		span := int64(rpn-1)*P*B + int64(rpn)*B
		return sendStage.Slice(base, span), datatype.Hvector(rpn, int(int64(rpn)*B), P*B, datatype.Byte)
	}
	inbound := func(s int) mem.Buffer {
		return recvStage.Slice(int64(s)*nodeBlk, nodeBlk)
	}
	{
		src, hv := sendTo(myNode)
		m.localCopy(p, src, hv, 1, inbound(myNode), datatype.Byte, int(nodeBlk))
	}
	if nnodes > 1 {
		sp := p.BeginBytes("coll.alltoall.inter", nodeBlk*int64(nnodes-1))
		pow2 := nnodes&(nnodes-1) == 0
		for s := 1; s < nnodes; s++ {
			var dNode, sNode int
			if pow2 {
				dNode = myNode ^ s
				sNode = dNode
			} else {
				dNode = (myNode + s) % nnodes
				sNode = (myNode - s + nnodes) % nnodes
			}
			src, hv := sendTo(dNode)
			sreq := m.isendOn(p, src, hv, 1, dNode*rpn, tagInter)
			rreq := m.Irecv(inbound(sNode), datatype.Byte, int(nodeBlk), sNode*rpn, tagInter)
			sreq.Wait(p)
			rreq.Wait(p)
		}
		sp.End()
	}

	// Phase 3: hand each member its column of the receive stage.
	colSpan := (P-1)*int64(rpn)*B + B
	col := func(di int) (mem.Buffer, *datatype.Datatype) {
		return recvStage.Slice(int64(di)*B, colSpan), datatype.Hvector(int(P), int(B), int64(rpn)*B, datatype.Byte)
	}
	sp = p.BeginBytes("coll.alltoall.intra", B*P*int64(rpn))
	for di := 1; di < rpn; di++ {
		src, hv := col(di)
		m.sendOn(p, src, hv, 1, lead+di, tagOut+di)
	}
	{
		src, hv := col(0)
		m.localCopy(p, src, hv, 1, recvBuf, rdt, rcount*size)
	}
	sp.End()

	m.freeScratch(recvStage)
	m.freeScratch(sendStage)
}

// hierReduce: binomial reduction to the leader within each node, then
// binomial over the acting leaders to the root. The combine association
// differs from the flat tree — exact for Int64 and OpMax; Float64 sums
// may round differently, as on any real topology-aware MPI.
func (m *Rank) hierReduce(p *sim.Proc, tag int, sendBuf, recvBuf mem.Buffer, dt *datatype.Datatype, count int, op Op, root int) {
	prim := reducePrim(dt)
	n := int64(count) * dt.Size()
	size := m.Size()
	h := m.w.hier
	myNode := m.rank / h.rpn
	lead := m.actingLeader(myNode, root)

	var acc mem.Buffer
	if m.rank == root {
		acc = recvBuf.Slice(0, n)
	} else if sendBuf.Kind() == mem.Device {
		acc = m.ringBuf(sendBuf.Space(), n).Slice(0, n)
	} else {
		acc = m.scratch(n).Slice(0, n)
	}
	m.localCopy(p, sendBuf, dt, count, acc, dt, count)

	g := m.nodeGroup(myNode)
	sp := p.BeginBytes("coll.reduce.intra", n)
	m.binomialReduce(p, g, groupIndex(g, lead), acc, dt, count, prim, op, tag)
	sp.End()
	if m.rank == lead {
		sp := p.BeginBytes("coll.reduce.inter", n)
		m.binomialReduce(p, m.leaderGroup(root), root/h.rpn, acc, dt, count, prim, op, tag+size)
		sp.End()
	}
	if m.rank != root {
		m.releaseAccum(acc)
	}
}
