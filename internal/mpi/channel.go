package mpi

import (
	"gpuddt/internal/ib"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Kind identifies the BTL a channel uses.
type Kind int

// Channel kinds.
const (
	SM Kind = iota // shared-memory BTL (smcuda): same node
	IB             // openib BTL: across nodes
)

func (k Kind) String() string {
	if k == SM {
		return "smcuda"
	}
	return "openib"
}

// amHeaderBytes is the wire size of an active-message header (callback
// reference plus fragment control fields, §4.1).
const amHeaderBytes = 64

// amsg is a delivered active message: the callback runs on the
// receiving rank's progress process.
type amsg struct {
	fn func(p *sim.Proc)
}

// Channel is the unidirectional BTL connection from one rank to another.
// Active messages arrive in order; payload-bearing operations charge the
// appropriate interconnect.
type Channel struct {
	w    *World
	kind Kind
	src  *Rank
	dst  *Rank

	// IB endpoints (nil for SM).
	srcHCA, dstHCA *ib.HCA
}

func newChannel(w *World, src, dst *Rank) *Channel {
	c := &Channel{w: w, src: src, dst: dst}
	if src.place.Node == dst.place.Node {
		c.kind = SM
		return c
	}
	c.kind = IB
	c.srcHCA = w.hcas[src.place.Node]
	c.dstHCA = w.hcas[dst.place.Node]
	return c
}

// routed wraps an active message with its destination rank so the
// per-node HCA router (started by NewWorld) can deliver it.
type routed struct {
	dst *Rank
	am  amsg
}

// Kind returns the BTL kind.
func (c *Channel) Kind() Kind { return c.kind }

// Peer returns the destination rank handle.
func (c *Channel) Peer() *Rank { return c.dst }

// SameDevice reports whether both endpoints use the same GPU of the
// same node (the 1GPU configuration).
func (c *Channel) SameDevice() bool {
	return c.kind == SM && c.src.place.GPU == c.dst.place.GPU
}

// AM sends an active message of wireBytes whose callback fn executes on
// the destination rank's progress process, in order with other AMs on
// this channel. Control messages must get through for any protocol to
// make progress, so an injected send fault (timeout, link flap) is
// retried with backoff and exhaustion is fatal.
func (c *Channel) AM(p *sim.Proc, wireBytes int64, fn func(p *sim.Proc)) {
	switch c.kind {
	case SM:
		// Shared-memory FIFO: fixed injection cost, tiny latency.
		c.dst.inbox.PutAfter(c.w.tun.amLatency, amsg{fn: fn})
	default:
		c.src.mustRetry(p, "am.send", func() error {
			return c.srcHCA.Send(p, c.dstHCA, wireBytes, routed{dst: c.dst, am: amsg{fn: fn}})
		})
	}
}

// Put transfers payload bytes from a sender-side host buffer into a
// receiver-side host buffer (RDMA write for IB; a shared-memory copy via
// the host bus for SM), blocking the caller until remote completion.
// Injected faults — failed registrations, send timeouts, dropped RDMA
// completions — are retried with backoff. The retry is idempotent: a
// lost operation moved no bytes, and a dropped completion landed the
// payload in the same bytes the retransmission writes again.
func (c *Channel) Put(p *sim.Proc, dst, src mem.Buffer) {
	switch c.kind {
	case SM:
		c.src.mustRetry(p, "put.copy", func() error {
			return c.src.ctx.Node().HostCopy(p, dst, src)
		})
	default:
		c.src.mustRetry(p, "put.register", func() error {
			return c.srcHCA.Register(p, src)
		})
		c.src.mustRetry(p, "put.register", func() error {
			return c.dstHCA.Register(p, dst)
		})
		c.src.mustRetry(p, "put.rdma", func() error {
			return c.srcHCA.Write(p, c.dstHCA, dst, src)
		})
	}
}
