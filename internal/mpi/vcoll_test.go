package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/shapes"
	"gpuddt/internal/sim"
)

// irregularCounts builds a deterministic size x size count matrix
// (entry [i][j] = elements i sends to j) with zeros sprinkled in and,
// when the world is big enough, one fully empty rank.
func irregularCounts(size int) [][]int {
	c := make([][]int, size)
	empty := -1
	if size > 2 {
		empty = size / 2
	}
	for i := range c {
		c[i] = make([]int, size)
		for j := range c[i] {
			if i == empty || j == empty {
				continue
			}
			c[i][j] = (i + 2*j) % 4
		}
	}
	return c
}

// transposeCounts derives the receive matrix from the send matrix.
func transposeCounts(c [][]int) [][]int {
	r := make([][]int, len(c))
	for i := range r {
		r[i] = make([]int, len(c))
		for j := range r[i] {
			r[i][j] = c[j][i]
		}
	}
	return r
}

// packedDispls lays the blocks out back to back in extent units with
// small deterministic gaps, returning the displacements and a buffer
// span covering them all.
func packedDispls(dt *datatype.Datatype, counts []int) ([]int, int64) {
	displs := make([]int, len(counts))
	ext := dt.Extent()
	cur := 0
	for r, n := range counts {
		displs[r] = cur
		blocks := int((spanOf(dt, n) + ext - 1) / ext)
		cur += blocks + r%2
	}
	return displs, int64(cur+1) * ext
}

// TestAlltoallvHierMatchesFlat exchanges an irregular matrix (zero
// pairs, one empty rank) through the hierarchical and flat paths and
// requires every received block to match the sender's packed bytes —
// which also makes the two paths byte-identical to each other.
func TestAlltoallvHierMatchesFlat(t *testing.T) {
	sdt := shapes.SubMatrix(8, 8, 12)
	rdt := shapes.SubMatrix(4, 16, 6)
	for _, sh := range hierShapes {
		size := sh.nodes * sh.rpn
		sc := irregularCounts(size)
		rc := transposeCounts(sc)
		sd := make([][]int, size)
		rd := make([][]int, size)
		sspan := make([]int64, size)
		rspan := make([]int64, size)
		for r := 0; r < size; r++ {
			sd[r], sspan[r] = packedDispls(sdt, sc[r])
			rd[r], rspan[r] = packedDispls(rdt, rc[r])
		}
		run := func(flat bool) (sent, got [][][]byte) {
			w := NewWorld(blockedConfig(sh.nodes, sh.rpn, flat))
			if w.TopologyAware() == flat {
				t.Fatalf("%dx%d: dispatch wrong", sh.nodes, sh.rpn)
			}
			sent = make([][][]byte, size)
			got = make([][][]byte, size)
			w.Run(func(m *Rank) {
				me := m.Rank()
				send := m.Malloc(sspan[me])
				recv := m.Malloc(rspan[me])
				sent[me] = make([][]byte, size)
				for j := 0; j < size; j++ {
					if sc[me][j] == 0 {
						continue
					}
					blk := vslot(send, sdt, sc[me][j], sd[me][j])
					mem.FillPattern(blk, uint64(1000+me*size+j))
					sent[me][j] = cpuPack(sdt, sc[me][j], blk.Bytes())
				}
				m.Alltoallv(send, sc[me], sd[me], sdt, recv, rc[me], rd[me], rdt)
				got[me] = make([][]byte, size)
				for j := 0; j < size; j++ {
					if rc[me][j] == 0 {
						continue
					}
					blk := vslot(recv, rdt, rc[me][j], rd[me][j])
					got[me][j] = cpuPack(rdt, rc[me][j], blk.Bytes())
				}
			})
			checkQuiescent(t, w, fmt.Sprintf("alltoallv %dx%d flat=%v", sh.nodes, sh.rpn, flat))
			w.Close()
			return sent, got
		}
		hSent, hGot := run(false)
		_, fGot := run(true)
		for i := 0; i < size; i++ {
			for j := 0; j < size; j++ {
				if !bytes.Equal(hGot[i][j], hSent[j][i]) {
					t.Fatalf("%dx%d: hier rank %d block from %d differs from sent bytes", sh.nodes, sh.rpn, i, j)
				}
				if !bytes.Equal(hGot[i][j], fGot[i][j]) {
					t.Fatalf("%dx%d: rank %d block from %d: hier differs from flat", sh.nodes, sh.rpn, i, j)
				}
			}
		}
	}
}

// TestAllgathervHierMatchesFlat gathers irregular per-rank blocks
// (including zero blocks) and checks both paths reproduce every
// sender's packed bytes at every rank.
func TestAllgathervHierMatchesFlat(t *testing.T) {
	dt := shapes.SubMatrix(16, 16, 24)
	for _, sh := range hierShapes {
		size := sh.nodes * sh.rpn
		counts := make([]int, size)
		for r := range counts {
			counts[r] = r % 4 // includes zero blocks
		}
		displs, span := packedDispls(dt, counts)
		run := func(flat bool) (sent, got [][][]byte) {
			w := NewWorld(blockedConfig(sh.nodes, sh.rpn, flat))
			sent = make([][][]byte, size)
			got = make([][][]byte, size)
			w.Run(func(m *Rank) {
				me := m.Rank()
				buf := m.Malloc(span)
				if counts[me] > 0 {
					blk := vslot(buf, dt, counts[me], displs[me])
					mem.FillPattern(blk, uint64(600+me))
					sent[me] = [][]byte{cpuPack(dt, counts[me], blk.Bytes())}
				}
				m.Allgatherv(buf, counts, displs, dt)
				got[me] = make([][]byte, size)
				for r := 0; r < size; r++ {
					if counts[r] == 0 {
						continue
					}
					got[me][r] = cpuPack(dt, counts[r], vslot(buf, dt, counts[r], displs[r]).Bytes())
				}
			})
			checkQuiescent(t, w, fmt.Sprintf("allgatherv %dx%d flat=%v", sh.nodes, sh.rpn, flat))
			w.Close()
			return sent, got
		}
		hSent, hGot := run(false)
		_, fGot := run(true)
		for i := 0; i < size; i++ {
			for r := 0; r < size; r++ {
				if counts[r] == 0 {
					continue
				}
				if !bytes.Equal(hGot[i][r], hSent[r][0]) {
					t.Fatalf("%dx%d: hier rank %d block %d differs from sender bytes", sh.nodes, sh.rpn, i, r)
				}
				if !bytes.Equal(hGot[i][r], fGot[i][r]) {
					t.Fatalf("%dx%d: rank %d block %d: hier differs from flat", sh.nodes, sh.rpn, i, r)
				}
			}
		}
	}
}

// TestVCollAllZero pins the degenerate case: every count zero must be
// a clean no-op on both paths (no message, no leak, no hang).
func TestVCollAllZero(t *testing.T) {
	dt := shapes.SubMatrix(8, 8, 12)
	for _, flat := range []bool{false, true} {
		w := NewWorld(blockedConfig(2, 2, flat))
		size := w.Size()
		zero := make([]int, size)
		w.Run(func(m *Rank) {
			buf := m.Malloc(dt.Extent() * int64(size))
			m.Allgatherv(buf, zero, zero, dt)
			m.Alltoallv(buf, zero, zero, dt, buf, zero, zero, dt)
		})
		checkQuiescent(t, w, fmt.Sprintf("all-zero flat=%v", flat))
		w.Close()
	}
}

// TestGathervScatterv round-trips irregular blocks through a root:
// Gatherv assembles them, Scatterv hands them back out.
func TestGathervScatterv(t *testing.T) {
	dt := shapes.SubMatrix(8, 8, 12)
	const size, root = 4, 1
	counts := []int{2, 0, 3, 1}
	displs, span := packedDispls(dt, counts)
	w := NewWorld(blockedConfig(1, size, false))
	sent := make([][]byte, size)
	backOK := make([]bool, size)
	gathered := make([][][]byte, size)
	w.Run(func(m *Rank) {
		me := m.Rank()
		mine := m.Malloc(spanOf(dt, counts[me]))
		if counts[me] > 0 {
			mem.FillPattern(mine, uint64(70+me))
			sent[me] = cpuPack(dt, counts[me], mine.Bytes())
		}
		var all mem.Buffer
		if me == root {
			all = m.Malloc(span)
		}
		m.Gatherv(mine, dt, counts[me], all, counts, displs, dt, root)
		if me == root {
			gathered[me] = make([][]byte, size)
			for r := 0; r < size; r++ {
				if counts[r] == 0 {
					continue
				}
				gathered[me][r] = cpuPack(dt, counts[r], vslot(all, dt, counts[r], displs[r]).Bytes())
			}
		}
		back := m.Malloc(spanOf(dt, counts[me]))
		m.Scatterv(all, counts, displs, dt, back, dt, counts[me], root)
		backOK[me] = counts[me] == 0 ||
			bytes.Equal(cpuPack(dt, counts[me], back.Bytes()), sent[me])
	})
	checkQuiescent(t, w, "gatherv/scatterv")
	w.Close()
	for r := 0; r < size; r++ {
		if counts[r] == 0 {
			continue
		}
		if !bytes.Equal(gathered[root][r], sent[r]) {
			t.Fatalf("root holds wrong bytes for rank %d after Gatherv", r)
		}
		if !backOK[r] {
			t.Fatalf("rank %d got wrong bytes back from Scatterv", r)
		}
	}
}

// TestVCollPhaseSpans asserts the hierarchical v-variants keep the
// coll.*.intra/inter span discipline of the regular collectives.
func TestVCollPhaseSpans(t *testing.T) {
	dt := shapes.SubMatrix(8, 8, 12)
	w := NewWorld(blockedConfig(2, 2, false))
	rec := sim.NewRecorder(w.Engine())
	size := w.Size()
	counts := []int{1, 2, 1, 3}
	displs, span := packedDispls(dt, counts)
	sc := irregularCounts(size)
	rc := transposeCounts(sc)
	w.Run(func(m *Rank) {
		me := m.Rank()
		buf := m.Malloc(span)
		if counts[me] > 0 {
			mem.FillPattern(vslot(buf, dt, counts[me], displs[me]), uint64(80+me))
		}
		m.Allgatherv(buf, counts, displs, dt)
		sd, sspan := packedDispls(dt, sc[me])
		rd, rspan := packedDispls(dt, rc[me])
		send, recv := m.Malloc(sspan), m.Malloc(rspan)
		m.Alltoallv(send, sc[me], sd, dt, recv, rc[me], rd, dt)
	})
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tk := range rec.Tracks() {
		for i := range tk.Spans {
			seen[tk.Spans[i].Name] = true
		}
	}
	for _, want := range []string{
		"coll.allgatherv.intra", "coll.allgatherv.inter",
		"coll.alltoallv.intra", "coll.alltoallv.inter",
	} {
		if !seen[want] {
			t.Errorf("span %q not recorded by hierarchical v-collectives", want)
		}
	}
	w.Close()
}
