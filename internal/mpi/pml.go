package mpi

import (
	"fmt"

	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/sim"
)

// Request tracks an outstanding Isend/Irecv.
type Request struct {
	done  *sim.Future
	recvd int64 // packed bytes of the matched message (receives)
}

// Wait blocks the calling process until the operation completes.
func (r *Request) Wait(p *sim.Proc) { r.done.Await(p) }

// ReceivedBytes reports the packed byte count of the matched message,
// valid once a receive request completes. A partial receive reports
// fewer bytes than the posted capacity.
func (r *Request) ReceivedBytes() int64 { return r.recvd }

// GetCount reports how many whole elements of dt arrived, the
// MPI_Get_count semantics.
func (r *Request) GetCount(dt *datatype.Datatype) int {
	if dt.Size() == 0 {
		return 0
	}
	return int(r.recvd / dt.Size())
}

// Done reports (non-blocking) whether the operation has completed
// (MPI_Test).
func (r *Request) Done() bool { return r.done.Done() }

// Complete marks the request finished; for use by Strategy
// implementations outside this package.
func (r *Request) Complete() { r.done.Complete(nil) }

// WaitAll blocks the rank's process until every request completes
// (MPI_Waitall).
func (m *Rank) WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait(m.p)
	}
}

// postedRecv is a receive awaiting a matching arrival.
type postedRecv struct {
	op  *RecvOp
	src int
	tag int
}

// rtsMsg is an arrived send: either an eager message whose packed
// payload already sits in a receiver-side host scratch buffer, or a
// rendezvous ready-to-send carrying the sender strategy's info.
type rtsMsg struct {
	src, tag int
	packed   int64
	sdt      *datatype.Datatype
	scount   int
	eager    mem.Buffer // valid if eager
	isEager  bool
	info     interface{} // rendezvous strategy info
}

// SendOp carries everything a strategy needs on the sender side.
type SendOp struct {
	M      *Rank
	Buf    mem.Buffer
	Dt     *datatype.Datatype
	Count  int
	Dest   int
	Tag    int
	Packed int64
	Ch     *Channel // sender -> receiver
	Req    *Request
}

// RecvOp carries everything a strategy needs on the receiver side.
type RecvOp struct {
	M      *Rank
	Buf    mem.Buffer
	Dt     *datatype.Datatype
	Count  int
	Src    int
	Tag    int
	Packed int64    // sender's packed size (set at match time)
	Ch     *Channel // receiver -> sender (for ACKs and pack requests)
	Req    *Request
}

// Strategy is the rendezvous data-movement policy: the default
// PipelinedStrategy implements the paper's protocols; the MVAPICH-style
// comparator implements §2.2's vectorization approach.
type Strategy interface {
	Name() string
	// StartSend runs on the sender's process; the returned info is
	// delivered to the receiver with the RTS. The strategy must
	// eventually complete op.Req.
	StartSend(op *SendOp) interface{}
	// RunRecv runs on a dedicated receiver process once the message is
	// matched, and must complete op.Req.
	RunRecv(p *sim.Proc, op *RecvOp, info interface{})
}

// Isend starts a send and returns its request.
func (m *Rank) Isend(buf mem.Buffer, dt *datatype.Datatype, count, dest, tag int) *Request {
	return m.isendOn(m.p, buf, dt, count, dest, tag)
}

// isendOn is Isend issued from an explicit process: the rank's main
// process for the public API, or a spawned schedule process for
// nonblocking collectives. The cooperative engine runs exactly one
// process at a time, so the rank's matching lists and pools stay
// race-free whichever process drives the send.
func (m *Rank) isendOn(sp *sim.Proc, buf mem.Buffer, dt *datatype.Datatype, count, dest, tag int) *Request {
	req := &Request{done: m.w.eng.NewFuture()}
	packed := int64(count) * dt.Size()
	ch := m.channel(dest)
	op := &SendOp{M: m, Buf: buf, Dt: dt, Count: count, Dest: dest, Tag: tag, Packed: packed, Ch: ch, Req: req}
	if packed <= m.w.tun.eager {
		m.eagerSend(sp, op)
		return req
	}
	h := sp.BeginBytes("mpi.rts", packed)
	info := m.w.tun.strategy.StartSend(op)
	peer := m.w.ranks[dest]
	src := m.rank
	m.seq++
	ch.AM(sp, amHeaderBytes, func(p *sim.Proc) {
		peer.arrived(p, &rtsMsg{src: src, tag: tag, packed: packed, sdt: dt, scount: count, info: info})
	})
	h.End()
	return req
}

// eagerSend packs the whole message into a receiver-side host bounce
// buffer and notifies the receiver: the short/eager protocol.
func (m *Rank) eagerSend(sp *sim.Proc, op *SendOp) {
	h := sp.BeginBytes("mpi.eager.send", op.Packed)
	defer h.End()
	local := m.scratch(op.Packed)
	m.packToHost(sp, op.Buf, op.Dt, op.Count, local.Slice(0, op.Packed))
	peer := m.w.ranks[op.Dest]
	remote := peer.scratch(op.Packed)
	op.Ch.Put(sp, remote.Slice(0, op.Packed), local.Slice(0, op.Packed))
	m.freeScratch(local)
	src, tag, packed := m.rank, op.Tag, op.Packed
	sdt, scount := op.Dt, op.Count
	op.Ch.AM(sp, amHeaderBytes, func(p *sim.Proc) {
		peer.arrived(p, &rtsMsg{src: src, tag: tag, packed: packed, sdt: sdt, scount: scount, eager: remote, isEager: true})
	})
	op.Req.done.Complete(nil) // eager: locally complete once injected
}

// Irecv posts a receive and returns its request.
func (m *Rank) Irecv(buf mem.Buffer, dt *datatype.Datatype, count, source, tag int) *Request {
	req := &Request{done: m.w.eng.NewFuture()}
	op := &RecvOp{M: m, Buf: buf, Dt: dt, Count: count, Src: source, Tag: tag, Req: req}
	// Match against unexpected arrivals in order.
	for i, u := range m.unexp {
		if matches(source, tag, u.src, u.tag) {
			m.unexp = append(m.unexp[:i], m.unexp[i+1:]...)
			m.startRecv(op, u)
			return req
		}
	}
	m.posted = append(m.posted, &postedRecv{op: op, src: source, tag: tag})
	return req
}

func matches(wantSrc, wantTag, src, tag int) bool {
	return (wantSrc == AnySource || wantSrc == src) && (wantTag == AnyTag || wantTag == tag)
}

// arrived handles an incoming RTS (on the progress process).
func (m *Rank) arrived(p *sim.Proc, msg *rtsMsg) {
	for i, pr := range m.posted {
		if matches(pr.src, pr.tag, msg.src, msg.tag) {
			m.posted = append(m.posted[:i], m.posted[i+1:]...)
			m.startRecv(pr.op, msg)
			return
		}
	}
	m.unexp = append(m.unexp, msg)
}

// startRecv launches delivery of a matched message. A message shorter
// than the posted receive is legal when the sender's signature is a
// prefix of the receiver's (partial receive, MPI_Get_count semantics);
// a longer message is truncation and a non-prefix mismatch is an error,
// both of which stay fatal.
func (m *Rank) startRecv(op *RecvOp, msg *rtsMsg) {
	if cap := int64(op.Count) * op.Dt.Size(); msg.packed > cap {
		panic(fmt.Sprintf("mpi: truncation: rank %d recv capacity %d < message %d (src %d tag %d)",
			m.rank, cap, msg.packed, msg.src, msg.tag))
	}
	switch {
	case datatype.SignaturesMatch(msg.sdt, msg.scount, op.Dt, op.Count):
	case int64(op.Count)*op.Dt.Size() == msg.packed:
		// Same packed bytes, different element shape: the Fig. 11 reshape.
	case datatype.SignaturePrefix(msg.sdt, msg.scount, op.Dt, op.Count):
		// Shorter message with a signature-compatible prefix.
	default:
		panic(fmt.Sprintf("mpi: datatype signature mismatch: %s x%d vs %s x%d",
			msg.sdt.Name(), msg.scount, op.Dt.Name(), op.Count))
	}
	op.Req.recvd = msg.packed
	op.Packed = msg.packed
	op.Src = msg.src
	op.Tag = msg.tag
	op.Ch = m.channel(msg.src)
	if msg.isEager {
		buf := msg.eager
		m.w.eng.Spawn(fmt.Sprintf("rank%d.eagerRecv", m.rank), func(p *sim.Proc) {
			h := p.BeginBytes("mpi.recv", op.Packed)
			h.SetDetail("eager")
			m.unpackFromHost(p, op.Buf, op.Dt, op.Count, buf.Slice(0, op.Packed))
			m.freeScratch(buf)
			h.End()
			op.Req.done.Complete(nil)
		})
		return
	}
	info := msg.info
	m.w.eng.Spawn(fmt.Sprintf("rank%d.recv.%d", m.rank, msg.src), func(p *sim.Proc) {
		h := p.BeginBytes("mpi.recv", op.Packed)
		h.SetDetail(m.w.tun.strategy.Name())
		m.w.tun.strategy.RunRecv(p, op, info)
		h.End()
	})
}

// scratchPoolFloor is the least freeScratch will ever cap retained
// bytes at, so small-message workloads still amortize allocation.
const scratchPoolFloor = 16 << 20

// scratch hands out a host bounce buffer of at least n bytes from the
// rank's pool (eager protocol and staging). Small requests are rounded
// up (to the eager limit, capped at 1 MiB) so the pool stays reusable.
// Selection is best-fit with a waste bound: the smallest pooled buffer
// that satisfies the request wins, and a buffer more than 2x the
// request is left pooled, so a small eager message cannot consume a
// multi-megabyte staging buffer and force its re-allocation.
func (m *Rank) scratch(n int64) mem.Buffer {
	floor := m.w.tun.eager
	if floor > 1<<20 {
		floor = 1 << 20
	}
	if n < floor {
		n = floor
	}
	if n > m.scratchLargest {
		m.scratchLargest = n
	}
	best := -1
	for i, b := range m.scratchPool {
		if b.Len() >= n && b.Len() <= 2*n && (best < 0 || b.Len() < m.scratchPool[best].Len()) {
			best = i
		}
	}
	m.scratchOut++
	if best >= 0 {
		b := m.scratchPool[best]
		m.scratchPool = append(m.scratchPool[:best], m.scratchPool[best+1:]...)
		m.scratchPooled -= b.Len()
		return b
	}
	return m.ctx.MallocHost(n)
}

// scratchCap bounds the bytes freeScratch retains: twice the largest
// request seen (a working set of one in-flight plus one spare), with a
// floor for small-message workloads.
func (m *Rank) scratchCap() int64 {
	c := 2 * m.scratchLargest
	if c < scratchPoolFloor {
		c = scratchPoolFloor
	}
	return c
}

// freeScratch returns a buffer to the pool, evicting the largest pooled
// buffers whenever retained bytes exceed the cap so a burst of large
// messages cannot pin its staging memory forever.
func (m *Rank) freeScratch(b mem.Buffer) {
	m.scratchOut--
	m.scratchPool = append(m.scratchPool, b)
	m.scratchPooled += b.Len()
	for m.scratchPooled > m.scratchCap() && len(m.scratchPool) > 1 {
		big := 0
		for i, pb := range m.scratchPool {
			if pb.Len() > m.scratchPool[big].Len() {
				big = i
			}
		}
		drop := m.scratchPool[big]
		m.scratchPool = append(m.scratchPool[:big], m.scratchPool[big+1:]...)
		m.scratchPooled -= drop.Len()
		drop.Space().Free(drop)
	}
	if m.scratchPooled > m.scratchPeak {
		m.scratchPeak = m.scratchPooled
	}
}

// packToHost packs (buf, dt, count) into the host buffer dst: a
// zero-copy GPU kernel when the data lives in device memory, or a CPU
// pack charging the host bus otherwise.
func (m *Rank) packToHost(p *sim.Proc, buf mem.Buffer, dt *datatype.Datatype, count int, dst mem.Buffer) {
	h := p.BeginBytes("pack", dst.Len())
	defer h.End()
	if buf.Kind() == mem.Device {
		eng := m.engs[m.ctx.Node().DeviceOf(buf.Space())]
		eng.Pack(p, buf, dt, count, dst)
		return
	}
	c := datatype.NewConverter(dt, count)
	m.ctx.Node().HostBus().Transfer(p, 2*c.Total())
	c.Pack(dst.Bytes(), buf.Bytes())
}

// unpackFromHost is the inverse of packToHost.
func (m *Rank) unpackFromHost(p *sim.Proc, buf mem.Buffer, dt *datatype.Datatype, count int, src mem.Buffer) {
	h := p.BeginBytes("unpack", src.Len())
	defer h.End()
	if buf.Kind() == mem.Device {
		// Incremental unpack: src may hold fewer packed bytes than the
		// full layout (a partial receive), which Engine.Unpack rejects.
		eng := m.engs[m.ctx.Node().DeviceOf(buf.Space())]
		pk := eng.NewUnpacker(buf, dt, count)
		if src.Len() > pk.Total() {
			src = src.Slice(0, pk.Total())
		}
		_, fut := pk.UnpackFrom(p, src)
		fut.Await(p)
		return
	}
	c := datatype.NewConverter(dt, count)
	m.ctx.Node().HostBus().Transfer(p, 2*src.Len())
	c.Unpack(buf.Bytes(), src.Bytes())
}
