package mpi_test

import (
	"fmt"

	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/shapes"
)

// Two ranks on one node, each with its own GPU, exchange a strided
// sub-matrix with a derived datatype; the virtual timings are
// deterministic, so this example's output is reproducible anywhere.
func Example() {
	world := mpi.NewWorld(mpi.Config{
		Ranks: []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}},
	})
	sub := shapes.SubMatrix(1024, 1024, 1056) // 8 MiB packed, strided
	world.Run(func(m *mpi.Rank) {
		buf := m.Malloc(int64(1056*1024) * 8)
		if m.Rank() == 0 {
			mem.FillPattern(buf, 1)
			m.Send(buf, sub, 1, 1, 0)
		} else {
			m.Recv(buf, sub, 1, 0, 0)
			fmt.Printf("received %d KiB at %v\n", sub.Size()>>10, m.Now())
		}
	})
	// Output:
	// received 8192 KiB at 950.16us
}
