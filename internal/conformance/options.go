package conformance

import "gpuddt/internal/core"

// gpuOpts returns engine options with the given DEV unit size and a
// small conversion chunk so even modest trees exercise the
// conversion/execution pipeline.
func gpuOpts(unitSize int64) core.Options {
	return core.Options{UnitSize: unitSize, ChunkBytes: 16 << 10}
}
