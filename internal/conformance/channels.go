package conformance

import (
	"fmt"

	"gpuddt/internal/baseline"
	"gpuddt/internal/datatype"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
)

// RTConfig selects one end-to-end round-trip configuration: the channel
// (smcuda within a node, openib across nodes), the protocol regime
// (eager vs rendezvous), the rendezvous strategy (the paper's pipelined
// protocols or the MVAPICH baseline), data placement, and the
// receive-side layout.
type RTConfig struct {
	// Topo is "1gpu" (both ranks one GPU, CUDA IPC), "2gpu" (two GPUs,
	// P2P over PCIe) or "ib" (two nodes over InfiniBand).
	Topo string

	// MVAPICH swaps the rendezvous strategy for the baseline.
	MVAPICH bool

	// OnHost places both buffers in host memory (CPU datatype engine).
	OnHost bool

	// ForceEager drives the message through the eager bounce-buffer
	// protocol regardless of size; otherwise the eager limit is dropped
	// to force the rendezvous pipeline.
	ForceEager bool

	// RecvContig receives into a contiguous byte buffer instead of the
	// mirrored non-contiguous layout (pack-side-only check).
	RecvContig bool

	// DirectRemoteUnpack enables the §5.2.1 ablation: unpack kernels
	// read straight from the peer GPU's memory.
	DirectRemoteUnpack bool

	// FragBytes overrides the pipeline fragment size (0 = default);
	// small values force many fragments through the ring.
	FragBytes int64
}

func (c RTConfig) String() string {
	proto := "rendezvous"
	if c.ForceEager {
		proto = "eager"
	}
	impl := "pipelined"
	if c.MVAPICH {
		impl = "mvapich"
	}
	place := "gpu"
	if c.OnHost {
		place = "host"
	}
	recv := "mirror"
	if c.RecvContig {
		recv = "contig"
	}
	return fmt.Sprintf("%s/%s/%s/%s/%s", c.Topo, proto, impl, place, recv)
}

func (c RTConfig) placements() []mpi.Placement {
	switch c.Topo {
	case "1gpu":
		return []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 0}}
	case "2gpu":
		return []mpi.Placement{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}}
	case "ib":
		return []mpi.Placement{{Node: 0, GPU: 0}, {Node: 1, GPU: 0}}
	default:
		panic(fmt.Sprintf("conformance: unknown topology %q", c.Topo))
	}
}

// RoundTrip sends (tree, count) from rank 0 to rank 1 over the selected
// channel and verifies the receiver's memory byte-for-byte against the
// reference walker: scattered bytes must match the sender's data, gap
// bytes must be untouched. It returns nil when the transfer conforms.
//
// Overlapping layouts are rejected by the caller (unpack into an
// overlapped layout is undefined); zero-size layouts are skipped.
func RoundTrip(tr *Tree, cfg RTConfig) error {
	total := tr.Total()
	if total == 0 {
		return nil
	}
	if !cfg.RecvContig && HasOverlap(tr.Map) {
		return fmt.Errorf("seed %d: RoundTrip on overlapping layout", tr.Seed)
	}

	proto := mpi.ProtoOptions{
		FragBytes:          cfg.FragBytes,
		DirectRemoteUnpack: cfg.DirectRemoteUnpack,
	}
	if cfg.ForceEager {
		proto.EagerLimit = total + 1
	} else {
		proto.EagerLimit = 1
		if total <= 1 {
			return nil // cannot force rendezvous below the minimum limit
		}
	}
	var strategy mpi.Strategy
	if cfg.MVAPICH {
		strategy = &baseline.MVAPICHStrategy{}
	}

	w := mpi.NewWorld(mpi.Config{
		Ranks:    cfg.placements(),
		Proto:    proto,
		Strategy: strategy,
	})

	srcData := pattern(tr.Span, tr.Seed)
	want := ReferencePack(tr.Map, srcData)
	recvBase := pattern(tr.Span, tr.Seed+1313)

	alloc := func(m *mpi.Rank, n int64) mem.Buffer {
		if cfg.OnHost {
			return m.MallocHost(n)
		}
		return m.Malloc(n)
	}

	var got []byte
	w.Run(func(m *mpi.Rank) {
		switch m.Rank() {
		case 0:
			buf := alloc(m, tr.Span)
			copy(buf.Bytes(), srcData)
			m.Send(buf, tr.Dt, tr.Count, 1, 7)
		case 1:
			if cfg.RecvContig {
				buf := alloc(m, total)
				m.Recv(buf, datatype.Contiguous(int(total), datatype.Byte), 1, 0, 7)
				got = append([]byte(nil), buf.Bytes()...)
			} else {
				buf := alloc(m, tr.Span)
				copy(buf.Bytes(), recvBase)
				m.Recv(buf, tr.Dt, tr.Count, 0, 7)
				got = append([]byte(nil), buf.Bytes()...)
			}
		}
	})

	if cfg.RecvContig {
		if i := firstDiff(want, got); i >= 0 {
			return tr.errf("channel "+cfg.String(), "packed byte %d differs: got %#x want %#x", i, got[i], want[i])
		}
		return nil
	}
	wantImg := append([]byte(nil), recvBase...)
	ReferenceUnpack(tr.Map, wantImg, want)
	if i := firstDiff(wantImg, got); i >= 0 {
		inGap := true
		for _, off := range tr.Map {
			if off == int64(i) {
				inGap = false
				break
			}
		}
		where := "data"
		if inGap {
			where = "gap"
		}
		return tr.errf("channel "+cfg.String(), "%s byte %d differs: got %#x want %#x", where, i, got[i], wantImg[i])
	}
	return nil
}
