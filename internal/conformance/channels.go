package conformance

import (
	"fmt"

	"gpuddt/internal/baseline"
	"gpuddt/internal/cluster"
	"gpuddt/internal/datatype"
	"gpuddt/internal/fault"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
	"gpuddt/internal/sim"
)

// RTConfig selects one end-to-end round-trip configuration: the channel
// (smcuda within a node, openib across nodes), the protocol regime
// (eager vs rendezvous), the rendezvous strategy (the paper's pipelined
// protocols or the MVAPICH baseline), data placement, and the
// receive-side layout.
type RTConfig struct {
	// Topo is "1gpu" (both ranks one GPU, CUDA IPC), "2gpu" (two GPUs,
	// P2P over PCIe) or "ib" (two nodes over InfiniBand).
	Topo string

	// MVAPICH swaps the rendezvous strategy for the baseline.
	MVAPICH bool

	// OnHost places both buffers in host memory (CPU datatype engine).
	OnHost bool

	// ForceEager drives the message through the eager bounce-buffer
	// protocol regardless of size; otherwise the eager limit is dropped
	// to force the rendezvous pipeline.
	ForceEager bool

	// RecvContig receives into a contiguous byte buffer instead of the
	// mirrored non-contiguous layout (pack-side-only check).
	RecvContig bool

	// DirectRemoteUnpack enables the §5.2.1 ablation: unpack kernels
	// read straight from the peer GPU's memory.
	DirectRemoteUnpack bool

	// FragBytes overrides the pipeline fragment size (0 = default);
	// small values force many fragments through the ring.
	FragBytes int64

	// Traced attaches a span recorder to the run and asserts the
	// timeline is well-formed: every span ended in nesting order with a
	// non-negative duration, and the top-level receive spans account for
	// exactly the oracle's packed byte count.
	Traced bool

	// FaultRate, with FaultSeed, installs a deterministic fault plan
	// injecting transient faults at the given per-operation rate on
	// every site (chaos mode). The pack∘unpack identity must hold
	// regardless: recovery may change the timeline but never the bytes.
	FaultRate float64
	FaultSeed uint64

	// PersistentP2P marks the CUDA IPC peer-mapping site permanently
	// faulted, forcing every SM zero-copy protocol to degrade to the
	// staged copy-in/out fallback.
	PersistentP2P bool
}

// chaotic reports whether the configuration installs a fault plan.
func (c RTConfig) chaotic() bool { return c.FaultRate > 0 || c.PersistentP2P }

func (c RTConfig) String() string {
	proto := "rendezvous"
	if c.ForceEager {
		proto = "eager"
	}
	impl := "pipelined"
	if c.MVAPICH {
		impl = "mvapich"
	}
	place := "gpu"
	if c.OnHost {
		place = "host"
	}
	recv := "mirror"
	if c.RecvContig {
		recv = "contig"
	}
	s := fmt.Sprintf("%s/%s/%s/%s/%s", c.Topo, proto, impl, place, recv)
	if c.Traced {
		s += "/traced"
	}
	if c.FaultRate > 0 {
		s += fmt.Sprintf("/chaos@%g#%d", c.FaultRate, c.FaultSeed)
	}
	if c.PersistentP2P {
		s += "/nop2p"
	}
	return s
}

// RoundTrip sends (tree, count) from rank 0 to rank 1 over the selected
// channel and verifies the receiver's memory byte-for-byte against the
// reference walker: scattered bytes must match the sender's data, gap
// bytes must be untouched. It returns nil when the transfer conforms.
//
// Overlapping layouts are rejected by the caller (unpack into an
// overlapped layout is undefined); zero-size layouts are skipped.
func RoundTrip(tr *Tree, cfg RTConfig) error {
	total := tr.Total()
	if total == 0 {
		return nil
	}
	if !cfg.RecvContig && HasOverlap(tr.Map) {
		return fmt.Errorf("seed %d: RoundTrip on overlapping layout", tr.Seed)
	}

	tun := &mpi.Tuning{
		FragBytes:          cfg.FragBytes,
		DirectRemoteUnpack: cfg.DirectRemoteUnpack,
	}
	if cfg.ForceEager {
		tun.Eager = mpi.Eager(total + 1)
	} else {
		tun.Eager = mpi.Eager(1)
		if total <= 1 {
			return nil // cannot force rendezvous below the minimum limit
		}
	}
	if cfg.MVAPICH {
		tun.Strategy = &baseline.MVAPICHStrategy{}
	}
	var plan *fault.Plan
	if cfg.chaotic() {
		plan = fault.NewPlan(cfg.FaultSeed, cfg.FaultRate)
		if cfg.PersistentP2P {
			plan.Persistent[fault.IPCOpen] = true
		}
	}

	wcfg := cluster.ByName(cfg.Topo).Tuned(tun).Config()
	wcfg.Faults = plan
	w := mpi.NewWorld(wcfg)
	var rec *sim.Recorder
	if cfg.Traced {
		rec = sim.NewRecorder(w.Engine())
	}

	srcData := pattern(tr.Span, tr.Seed)
	want := ReferencePack(tr.Map, srcData)
	recvBase := pattern(tr.Span, tr.Seed+1313)

	alloc := func(m *mpi.Rank, n int64) mem.Buffer {
		if cfg.OnHost {
			return m.MallocHost(n)
		}
		return m.Malloc(n)
	}

	var got []byte
	w.Run(func(m *mpi.Rank) {
		switch m.Rank() {
		case 0:
			buf := alloc(m, tr.Span)
			copy(buf.Bytes(), srcData)
			m.Send(buf, tr.Dt, tr.Count, 1, 7)
		case 1:
			if cfg.RecvContig {
				buf := alloc(m, total)
				m.Recv(buf, datatype.Contiguous(int(total), datatype.Byte), 1, 0, 7)
				got = append([]byte(nil), buf.Bytes()...)
			} else {
				buf := alloc(m, tr.Span)
				copy(buf.Bytes(), recvBase)
				m.Recv(buf, tr.Dt, tr.Count, 0, 7)
				got = append([]byte(nil), buf.Bytes()...)
			}
		}
	})

	// Staging pools must be quiescent after every transfer completed:
	// an abandoned protocol attempt that kept its scratch or ring slab
	// would show up here as a leak.
	for r := 0; r < w.Size(); r++ {
		rk := w.RankHandle(r)
		if out := rk.ScratchOutstanding(); out != 0 {
			return tr.errf("channel "+cfg.String(), "rank %d leaked %d scratch buffers", r, out)
		}
		if out := rk.RingOutstanding(); out != 0 {
			return tr.errf("channel "+cfg.String(), "rank %d leaked %d ring buffers", r, out)
		}
	}

	if rec != nil {
		if err := checkTimeline(rec, tr, cfg, total); err != nil {
			return err
		}
	}

	if cfg.RecvContig {
		if i := firstDiff(want, got); i >= 0 {
			return tr.errf("channel "+cfg.String(), "packed byte %d differs: got %#x want %#x", i, got[i], want[i])
		}
		return nil
	}
	wantImg := append([]byte(nil), recvBase...)
	ReferenceUnpack(tr.Map, wantImg, want)
	if i := firstDiff(wantImg, got); i >= 0 {
		inGap := true
		for _, off := range tr.Map {
			if off == int64(i) {
				inGap = false
				break
			}
		}
		where := "data"
		if inGap {
			where = "gap"
		}
		return tr.errf("channel "+cfg.String(), "%s byte %d differs: got %#x want %#x", where, i, got[i], wantImg[i])
	}
	return nil
}

// checkTimeline asserts the recorded span timeline is well-formed and
// that its top-level receive spans account for exactly the oracle's
// packed byte count.
func checkTimeline(rec *sim.Recorder, tr *Tree, cfg RTConfig, total int64) error {
	if err := rec.Validate(); err != nil {
		return tr.errf("channel "+cfg.String(), "trace: %v", err)
	}
	var recvBytes int64
	var recvSpans int
	for _, tk := range rec.Tracks() {
		for _, sp := range tk.Spans {
			if sp.Duration() < 0 {
				return tr.errf("channel "+cfg.String(), "trace: span %q has negative duration %v", sp.Name, sp.Duration())
			}
			if sp.Name == "mpi.recv" && sp.Depth == 0 {
				recvSpans++
				recvBytes += sp.Bytes
			}
		}
	}
	if recvSpans == 0 {
		return tr.errf("channel "+cfg.String(), "trace: no top-level mpi.recv span recorded")
	}
	if recvBytes != total {
		return tr.errf("channel "+cfg.String(), "trace: mpi.recv spans carry %d bytes, oracle packed %d", recvBytes, total)
	}
	// A permanently faulted P2P path must provably demote the SM
	// zero-copy protocols: a rendezvous transfer whose chosen protocol
	// would map peer memory has to record the downgrade span/counter.
	if cfg.PersistentP2P && !cfg.ForceEager && !cfg.MVAPICH && !cfg.OnHost && cfg.Topo != "ib" {
		if rec.Counter("mpi.fallback") == 0 {
			return tr.errf("channel "+cfg.String(), "trace: persistent P2P fault did not trigger a zero-copy downgrade")
		}
	}
	return nil
}
