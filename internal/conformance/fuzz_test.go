package conformance

import (
	"testing"
)

// fuzzTree builds a conformance case from fuzzer-chosen inputs under
// tighter bounds than the seeded sweep, so each execution stays cheap
// while the fuzzer explores the generator's space.
func fuzzTree(seed uint64, countSel uint16) *Tree {
	opt := TreeOptions{MaxElems: 512, MaxSpan: 64 << 10, MaxDepth: 4}
	sp := GenSpecOpts(seed, opt)
	count := 1 + int(countSel%4)
	return &Tree{
		Seed:  seed,
		Spec:  sp,
		Dt:    sp.Build().Commit(),
		Count: count,
		Map:   ReferenceMap(sp, count),
		Span:  Span(sp, count),
	}
}

// fuzzFrags derives a fragment-size schedule from one fuzzer word: two
// sizes, both at least 1 byte and at most 8 KiB, so the converter
// windows land on arbitrary boundaries.
func fuzzFrags(frag uint32) []int64 {
	a := int64(frag&0x1fff) + 1
	b := int64(frag>>13&0x1fff) + 1
	return []int64{a, b}
}

// FuzzPackUnpack drives the CPU datatype converter differentially
// against the naive reference walker: structure metadata, whole-message
// pack, fragmented pack under fuzzer-chosen fragment sizes, seek-resumed
// pack, and (for overlap-free layouts) the unpack identity.
func FuzzPackUnpack(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint32(977))
	f.Add(uint64(7), uint16(1), uint32(0))
	f.Add(uint64(42), uint16(2), uint32(1<<13|4096))
	f.Add(uint64(300), uint16(3), uint32(0xffffffff))
	f.Add(uint64(123456789), uint16(0), uint32(1021))
	f.Fuzz(func(t *testing.T, seed uint64, countSel uint16, frag uint32) {
		tr := fuzzTree(seed, countSel)
		if err := tr.CheckStructure(); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckCPU(fuzzFrags(frag)); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckMVAPICH(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzDEVSplit drives the GPU DEV engine — unit splitting, descriptor
// caching, vector fast path and generic fallback — against the
// reference walker under fuzzer-chosen unit sizes and fragment
// schedules.
func FuzzDEVSplit(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint8(0), uint32(977))
	f.Add(uint64(7), uint16(1), uint8(3), uint32(4096))
	f.Add(uint64(42), uint16(2), uint8(16), uint32(1<<13|512))
	f.Add(uint64(300), uint16(3), uint8(129), uint32(0xffffffff))
	f.Fuzz(func(t *testing.T, seed uint64, countSel uint16, unitSel uint8, frag uint32) {
		tr := fuzzTree(seed, countSel)
		opts := gpuOpts(256 * (1 + int64(unitSel%16)))
		opts.DisableVectorKernel = unitSel >= 128
		if err := tr.CheckGPU(DriverD2D, opts, fuzzFrags(frag)); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckGPU(DriverZeroCopy, opts, fuzzFrags(frag)); err != nil {
			t.Fatal(err)
		}
	})
}
