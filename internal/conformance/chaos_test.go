package conformance

import (
	"testing"
)

// chaosConfigs is the channel sweep the chaos gate runs: every topology
// and protocol regime the paper's pipelined strategy supports, with
// small fragments so faults land mid-pipeline. The MVAPICH baseline is
// deliberately absent — it predates the recovery layer and treats any
// substrate error as fatal, which is the behaviour the fault subsystem
// exists to fix.
func chaosConfigs() []RTConfig {
	var out []RTConfig
	for _, topo := range []string{"1gpu", "2gpu", "ib"} {
		for _, eager := range []bool{false, true} {
			for _, host := range []bool{false, true} {
				out = append(out, RTConfig{
					Topo:       topo,
					ForceEager: eager,
					OnHost:     host,
					FragBytes:  4 << 10,
				})
			}
		}
	}
	return out
}

// chaosTrees picks a handful of conformance trees that exercise the
// rendezvous pipeline (big enough for several fragments) without
// overlap, so both mirror and contiguous receives are legal.
func chaosTrees(t *testing.T) []*Tree {
	t.Helper()
	var trees []*Tree
	for seed := uint64(2000); len(trees) < 4 && seed < 2400; seed++ {
		tr := NewTree(seed)
		if tr.Total() < 8<<10 || tr.Total() > 96<<10 || HasOverlap(tr.Map) {
			continue
		}
		trees = append(trees, tr)
	}
	if len(trees) < 4 {
		t.Fatalf("found only %d chaos trees", len(trees))
	}
	return trees
}

// TestChaosRoundTrips sweeps fault seeds and rates over every channel
// configuration and asserts the pack∘unpack identity survives: faults
// reshape the timeline (retries, backoff, fallbacks) but never the
// bytes, never leak a staging slab, and never deadlock the engine.
func TestChaosRoundTrips(t *testing.T) {
	trees := chaosTrees(t)
	seeds := []uint64{1, 2, 3}
	rates := []float64{0.05, 0.2}
	if testing.Short() {
		seeds = seeds[:1]
		rates = rates[1:]
	}
	for _, base := range chaosConfigs() {
		for _, seed := range seeds {
			for _, rate := range rates {
				cfg := base
				cfg.FaultSeed = seed
				cfg.FaultRate = rate
				t.Run(cfg.String(), func(t *testing.T) {
					for _, tr := range trees {
						if err := RoundTrip(tr, cfg); err != nil {
							t.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// TestChaosPersistentP2PDowngrade pins the graceful-degradation path:
// with the CUDA IPC mapping site permanently faulted, every SM
// zero-copy rendezvous must demote itself to the staged copy-in/out
// protocol — asserted structurally via the mpi.fallback span recorded
// on the trace (checkTimeline), not just by the bytes arriving.
func TestChaosPersistentP2PDowngrade(t *testing.T) {
	trees := chaosTrees(t)
	for _, topo := range []string{"1gpu", "2gpu"} {
		for _, contig := range []bool{false, true} {
			cfg := RTConfig{
				Topo:          topo,
				RecvContig:    contig,
				FragBytes:     4 << 10,
				Traced:        true,
				PersistentP2P: true,
			}
			t.Run(cfg.String(), func(t *testing.T) {
				for _, tr := range trees {
					if err := RoundTrip(tr, cfg); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}

// TestChaosNilPlanUntouched guards the zero-cost contract from the
// other side: a config whose fault knobs are all zero must not install
// a plan at all (chaotic() == false), keeping the golden virtual-time
// figures byte-identical to the pre-fault-subsystem simulator.
func TestChaosNilPlanUntouched(t *testing.T) {
	if (RTConfig{Topo: "1gpu"}).chaotic() {
		t.Fatal("zero-valued fault knobs must not install a plan")
	}
	if !(RTConfig{Topo: "1gpu", FaultRate: 0.01}).chaotic() {
		t.Fatal("non-zero rate must install a plan")
	}
	if !(RTConfig{Topo: "1gpu", PersistentP2P: true}).chaotic() {
		t.Fatal("persistent P2P fault must install a plan")
	}
}

// FuzzChaosPackUnpack fuzzes the chaos dimension jointly with the
// datatype dimension: an arbitrary tree layout crossed with an
// arbitrary fault seed and a bounded fault rate must still satisfy the
// pack∘unpack identity on the hardest channel (2gpu rendezvous with
// tiny fragments). The rate is capped near 0.25 so the probability of
// exhausting the 10-attempt retry budget stays negligible and every
// fuzz input is expected to complete.
func FuzzChaosPackUnpack(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint64(1), uint8(0))
	f.Add(uint64(42), uint16(3), uint64(7), uint8(255))
	f.Add(uint64(1234), uint16(17), uint64(99), uint8(128))
	f.Add(uint64(77), uint16(200), uint64(3), uint8(64))
	f.Fuzz(func(t *testing.T, seed uint64, countSel uint16, faultSeed uint64, rateSel uint8) {
		tr := fuzzTree(seed, countSel)
		if tr.Total() == 0 || tr.Total() > 256<<10 {
			t.Skip()
		}
		cfg := RTConfig{
			Topo:      "2gpu",
			FragBytes: 4 << 10,
			FaultSeed: faultSeed,
			FaultRate: float64(rateSel) / 1024, // 0 .. ~0.25
		}
		// Overlapping layouts only support the contiguous receive.
		cfg.RecvContig = HasOverlap(tr.Map)
		if err := RoundTrip(tr, cfg); err != nil {
			t.Fatal(err)
		}
	})
}
