// Package conformance is the differential conformance harness for the
// datatype engines: it generates seeded random derived-datatype trees,
// computes their packed-byte -> memory-offset map with an independent
// naive reference walker, and cross-checks every packing engine in the
// repository — the CPU converter, the GPU DEV engine (device-to-device,
// device-to-device-to-host and zero-copy drivers), and the
// MVAPICH-style vectorizer — for byte-identical results, including full
// MPI round trips over the smcuda and openib channel protocols.
//
// The package also hosts the golden virtual-time machinery: since the
// simulator's clock is deterministic, every figure runner's output can
// be recorded to testdata/golden/*.json and gated against unexplained
// drift (go test ./internal/bench -update regenerates after an
// intentional performance change).
//
// Two native fuzz targets (FuzzPackUnpack, FuzzDEVSplit) extend the
// seeded sweep with coverage-guided exploration of the tree space; the
// checked-in corpus under testdata/fuzz seeds them.
package conformance
