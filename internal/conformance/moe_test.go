package conformance

import (
	"testing"

	"gpuddt/internal/workload"
)

// FuzzMoECounts replays the workload generator's expert-routing count
// matrices — the skewed shapes real MoE layers emit, with single-hot
// experts absorbing most tokens and whole ranks silent for a step —
// through the v-variant oracle on both the hierarchical and the flat
// Alltoallv path. Raw token counts are clamped per pair to the oracle's
// element bound so payloads stay small while the matrix *shape* (zero
// rows, hot columns) is preserved exactly.
func FuzzMoECounts(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(0))
	f.Add(uint64(3), uint8(8), uint8(0))  // three of four ranks route nothing
	f.Add(uint64(26), uint8(8), uint8(1)) // one expert absorbs 21/26 tokens
	f.Fuzz(func(t *testing.T, seed uint64, mean, step uint8) {
		const size = 4
		counts := workload.MoECounts(seed, size, int(mean%32), int(step))
		sc := make([][]int, size)
		for i := range sc {
			sc[i] = make([]int, size)
			for j := range sc[i] {
				c := counts[i][j]
				if c > vcollMaxCount {
					// Keep hot cells hot relative to the rest without
					// blowing the payload bound.
					c = vcollMaxCount
				}
				sc[i][j] = c
			}
		}
		vc := NewVCaseCounts(seed%1024, sc)
		for _, cfg := range []VConfig{
			{Nodes: 2, RPN: 2},
			{Nodes: 2, RPN: 2, Flat: true, OnHost: true},
		} {
			if err := vc.CheckAlltoallv(cfg); err != nil {
				t.Fatal(err)
			}
		}
	})
}
