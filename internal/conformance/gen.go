package conformance

import (
	"math/rand"

	"gpuddt/internal/datatype"
)

// TreeOptions bound a generated datatype tree so the harness stays fast
// no matter what the seed (or the fuzzer) asks for.
type TreeOptions struct {
	// MaxElems caps the number of primitive instances in one element.
	MaxElems int64
	// MaxSpan caps the data span in bytes of one element.
	MaxSpan int64
	// MaxDepth caps the nesting depth.
	MaxDepth int
}

// DefaultTreeOptions keeps one element under a few thousand primitives
// and a quarter megabyte of span — large enough to exercise multi-block
// DEV splits and MVAPICH segment explosions, small enough for hundreds
// of trees per test run.
func DefaultTreeOptions() TreeOptions {
	return TreeOptions{MaxElems: 2048, MaxSpan: 256 << 10, MaxDepth: 4}
}

// GenSpec derives a random datatype tree from seed using the default
// bounds. Equal seeds produce equal trees.
func GenSpec(seed uint64) Spec {
	return GenSpecOpts(seed, DefaultTreeOptions())
}

// GenSpecOpts derives a random datatype tree from seed under the given
// bounds.
func GenSpecOpts(seed uint64, opt TreeOptions) Spec {
	if opt.MaxElems <= 0 {
		opt.MaxElems = DefaultTreeOptions().MaxElems
	}
	if opt.MaxSpan <= 0 {
		opt.MaxSpan = DefaultTreeOptions().MaxSpan
	}
	if opt.MaxDepth <= 0 {
		opt.MaxDepth = DefaultTreeOptions().MaxDepth
	}
	g := &gen{rng: rand.New(rand.NewSource(int64(seed)))}
	return g.node(opt.MaxDepth, opt.MaxElems, opt.MaxSpan)
}

type gen struct {
	rng *rand.Rand
}

func (g *gen) intn(n int) int { return g.rng.Intn(n) }

// pick returns 1 + a geometric-ish value in [1, max].
func (g *gen) count(max int) int {
	if max <= 1 {
		return 1
	}
	return 1 + g.intn(max)
}

// dataBounds walks one element and returns the [lo, hi) byte range its
// data occupies; empty reports a zero-size layout.
func dataBounds(s Spec) (lo, hi int64, empty bool) {
	first := true
	s.Walk(0, func(memOff, n int64) {
		if first || memOff < lo {
			lo = memOff
		}
		if e := memOff + n; first || e > hi {
			hi = e
		}
		first = false
	})
	return lo, hi, first
}

// node generates a tree of at most the given depth whose element stays
// within the elems/span budgets.
func (g *gen) node(depth int, elems, span int64) Spec {
	if depth <= 1 || elems <= 2 || span <= 64 {
		return g.leaf()
	}
	switch g.intn(10) {
	case 0:
		return g.contig(depth, elems, span)
	case 1, 2:
		return g.vector(depth, elems, span, false)
	case 3:
		return g.vector(depth, elems, span, true)
	case 4, 5:
		return g.indexed(depth, elems, span)
	case 6:
		return g.strct(depth, elems, span)
	case 7:
		return g.subarray(depth, elems, span)
	case 8:
		return g.resized(depth, elems, span)
	default:
		return g.darray(depth, elems, span)
	}
}

func (g *gen) leaf() Spec {
	p := primSpec{which: g.intn(len(prims))}
	if g.intn(3) == 0 {
		return contigSpec{count: g.count(4), base: p}
	}
	return p
}

func (g *gen) contig(depth int, elems, span int64) Spec {
	c := g.count(4)
	base := g.node(depth-1, elems/int64(c), span/int64(c))
	return contigSpec{count: c, base: base}
}

func (g *gen) vector(depth int, elems, span int64, byBytes bool) Spec {
	c := g.count(6)
	bl := g.count(3)
	base := g.node(depth-1, elems/int64(c*bl), span/int64(c*bl))
	ext := extentOf(base)
	if ext <= 0 {
		ext = 1
	}
	blockSpan := int64(bl) * ext
	if byBytes {
		// Byte stride: at least the block span (no overlap), plus an
		// arbitrary, possibly odd, gap to stress alignment handling.
		stride := blockSpan + int64(g.intn(33))
		if g.intn(8) == 0 && blockSpan > 1 {
			// Occasionally overlap the blocks (pack-only legal).
			stride = 1 + int64(g.intn(int(blockSpan)))
		}
		return vectorSpec{count: c, blocklen: bl, strideB: stride, byBytes: true, base: base}
	}
	// Element stride, in units of the base extent.
	stride := bl + g.intn(3)
	return vectorSpec{count: c, blocklen: bl, strideElems: stride, base: base}
}

func (g *gen) indexed(depth int, elems, span int64) Spec {
	nb := g.count(6)
	byBytes := g.intn(3) == 0
	uniform := !byBytes && g.intn(3) == 0
	base := g.node(depth-1, elems/int64(2*nb), span/int64(2*nb))
	ext := extentOf(base)
	if ext <= 0 {
		ext = 1
	}
	_, hi, empty := dataBounds(base)
	if empty {
		hi = 1
	}

	blocklens := make([]int, nb)
	displs := make([]int64, nb)
	ubl := g.count(2) // shared blocklen for the IndexedBlock variant
	var cursor int64  // element index (indexed) or byte offset (hindexed)
	for i := range blocklens {
		bl := g.count(3)
		if uniform {
			bl = ubl
		} else if g.intn(10) == 0 {
			bl = 0 // empty blocks are legal and a known engine edge case
		}
		blocklens[i] = bl
		if byBytes {
			displs[i] = cursor
			// Advance past the block's data plus an odd gap.
			if bl > 0 {
				cursor = displs[i] + int64(bl-1)*ext + hi
			}
			cursor += int64(g.intn(19))
		} else {
			displs[i] = cursor
			cursor += int64(bl) + int64(g.intn(4))
		}
	}
	// Shuffle so the packed traversal visits memory out of order.
	g.rng.Shuffle(nb, func(i, j int) {
		blocklens[i], blocklens[j] = blocklens[j], blocklens[i]
		displs[i], displs[j] = displs[j], displs[i]
	})
	return indexedSpec{blocklens: blocklens, displs: displs, byBytes: byBytes, uniform: uniform, base: base}
}

func (g *gen) strct(depth int, elems, span int64) Spec {
	n := g.count(4)
	blocklens := make([]int, n)
	displs := make([]int64, n)
	types := make([]Spec, n)
	var cursor int64
	for i := 0; i < n; i++ {
		types[i] = g.node(depth-1, elems/int64(2*n), span/int64(2*n))
		bl := 1
		ext := extentOf(types[i])
		_, hi, empty := dataBounds(types[i])
		if empty {
			hi = 0
		}
		if ext >= hi && ext > 0 && g.intn(2) == 0 {
			bl = g.count(2) // repetitions tile without overlapping
		}
		blocklens[i] = bl
		displs[i] = cursor + int64(g.intn(13))
		cursor = displs[i] + int64(bl-1)*ext + hi
	}
	return structSpec{blocklens: blocklens, displs: displs, types: types}
}

func (g *gen) subarray(depth int, elems, span int64) Spec {
	nd := 1 + g.intn(3)
	sizes := make([]int, nd)
	subsizes := make([]int, nd)
	starts := make([]int, nd)
	total := int64(1)
	for d := 0; d < nd; d++ {
		sizes[d] = 1 + g.intn(6)
		subsizes[d] = 1 + g.intn(sizes[d])
		starts[d] = g.intn(sizes[d] - subsizes[d] + 1)
		total *= int64(sizes[d])
	}
	base := g.node(depth-1, elems/total, span/total)
	order := datatype.OrderC
	if g.intn(2) == 0 {
		order = datatype.OrderFortran
	}
	return subarraySpec{sizes: sizes, subsizes: subsizes, starts: starts, order: order, base: base}
}

func (g *gen) resized(depth int, elems, span int64) Spec {
	base := g.node(depth-1, elems, span)
	_, hi, empty := dataBounds(base)
	if empty {
		hi = 1
	}
	lb := int64(g.intn(9))
	extent := hi + int64(g.intn(17))
	if g.intn(4) == 0 && hi > 1 {
		// Shrink the extent below the data span: consecutive elements
		// interleave (pack-only legal, defeats contiguity detection).
		extent = 1 + int64(g.intn(int(hi)))
	}
	return resizedSpec{base: base, lb: lb, extent: extent}
}

func (g *gen) darray(depth int, elems, span int64) Spec {
	nd := 1 + g.intn(2)
	psizes := make([]int, nd)
	size := 1
	for d := 0; d < nd; d++ {
		psizes[d] = 1 + g.intn(2)
		size *= psizes[d]
	}
	gsizes := make([]int, nd)
	distribs := make([]datatype.Distrib, nd)
	dargs := make([]int, nd)
	total := int64(1)
	for d := 0; d < nd; d++ {
		gsizes[d] = 2 + g.intn(7)
		total *= int64(gsizes[d])
		switch g.intn(3) {
		case 0:
			if psizes[d] == 1 {
				distribs[d] = datatype.DistribNone
				dargs[d] = datatype.DargDefault
				continue
			}
			fallthrough
		case 1:
			distribs[d] = datatype.DistribBlock
			if g.intn(2) == 0 {
				dargs[d] = datatype.DargDefault
			} else {
				dargs[d] = (gsizes[d]+psizes[d]-1)/psizes[d] + g.intn(2)
			}
		default:
			distribs[d] = datatype.DistribCyclic
			if g.intn(2) == 0 {
				dargs[d] = datatype.DargDefault
			} else {
				dargs[d] = 1 + g.intn(3)
			}
		}
	}
	base := g.node(depth-1, elems/total, span/total)
	order := datatype.OrderC
	if g.intn(2) == 0 {
		order = datatype.OrderFortran
	}
	return darraySpec{
		size: size, rank: g.intn(size),
		gsizes: gsizes, distribs: distribs, dargs: dargs, psizes: psizes,
		order: order, base: base,
	}
}
