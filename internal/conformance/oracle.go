package conformance

import (
	"bytes"
	"fmt"

	"gpuddt/internal/baseline"
	"gpuddt/internal/core"
	"gpuddt/internal/cuda"
	"gpuddt/internal/datatype"
	"gpuddt/internal/gpu"
	"gpuddt/internal/mem"
	"gpuddt/internal/pcie"
	"gpuddt/internal/sim"
)

// Tree is one generated conformance case: the spec, the datatype built
// through the engine's constructors, the repetition count, and the
// reference packed-byte -> memory-offset map computed by the naive
// walker.
type Tree struct {
	Seed  uint64
	Spec  Spec
	Dt    *datatype.Datatype
	Count int
	Map   []int64
	Span  int64
}

// NewTree derives a conformance case from seed: the tree from GenSpec,
// the count from the seed's low bits.
func NewTree(seed uint64) *Tree {
	return NewTreeOpts(seed, DefaultTreeOptions())
}

// NewTreeOpts is NewTree under explicit bounds.
func NewTreeOpts(seed uint64, opt TreeOptions) *Tree {
	sp := GenSpecOpts(seed, opt)
	count := 1 + int(seed%3)
	return &Tree{
		Seed:  seed,
		Spec:  sp,
		Dt:    sp.Build().Commit(),
		Count: count,
		Map:   ReferenceMap(sp, count),
		Span:  Span(sp, count),
	}
}

// Total returns the packed byte count of the case.
func (tr *Tree) Total() int64 { return int64(len(tr.Map)) }

func (tr *Tree) errf(engine, format string, args ...interface{}) error {
	return fmt.Errorf("seed %d (%s x%d, %d packed bytes) [%s]: %s",
		tr.Seed, tr.Dt.Name(), tr.Count, tr.Total(), engine, fmt.Sprintf(format, args...))
}

// pattern fills a deterministic position-dependent byte pattern, seeded
// so distinct buffers differ.
func pattern(n int64, seed uint64) []byte {
	out := make([]byte, n)
	x := seed*0x9e3779b97f4a7c15 + 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x>>32) ^ byte(i)
	}
	return out
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// CheckStructure cross-checks the engine-built datatype's metadata
// against the spec's independent computation of the MPI rules.
func (tr *Tree) CheckStructure() error {
	sp, dt := tr.Spec, tr.Dt
	if dt.Size() != sp.Size() {
		return tr.errf("structure", "size: engine %d, reference %d", dt.Size(), sp.Size())
	}
	if dt.LB() != sp.LB() || dt.UB() != sp.UB() {
		return tr.errf("structure", "bounds: engine [%d,%d), reference [%d,%d)",
			dt.LB(), dt.UB(), sp.LB(), sp.UB())
	}
	var flatBytes int64
	for _, b := range dt.Flat() {
		flatBytes += b.Len
	}
	if flatBytes != dt.Size() {
		return tr.errf("structure", "flattened blocks cover %d bytes, size is %d", flatBytes, dt.Size())
	}
	var sigBytes int64
	for _, r := range dt.Signature() {
		sigBytes += r.Count * prims[primIndex(r.Prim)].size
	}
	if sigBytes != dt.Size() {
		return tr.errf("structure", "signature covers %d bytes, size is %d", sigBytes, dt.Size())
	}
	if int64(len(tr.Map)) != int64(tr.Count)*dt.Size() {
		return tr.errf("structure", "reference map has %d entries, want %d", len(tr.Map), int64(tr.Count)*dt.Size())
	}
	return nil
}

func primIndex(p datatype.Primitive) int {
	for i, pr := range prims {
		if pr.dt.Signature()[0].Prim == p {
			return i
		}
	}
	panic(fmt.Sprintf("conformance: unknown primitive %v", p))
}

// CheckCPU runs the CPU converter — whole-message, fragmented, and
// seek-resumed — against the reference walker, in both directions.
func (tr *Tree) CheckCPU(fragSizes []int64) error {
	data := pattern(tr.Span, tr.Seed)
	want := ReferencePack(tr.Map, data)
	total := tr.Total()

	// Whole-message pack.
	c := datatype.NewConverter(tr.Dt, tr.Count)
	if c.Total() != total {
		return tr.errf("cpu", "converter total %d, reference %d", c.Total(), total)
	}
	got := make([]byte, total)
	c.Pack(got, data)
	if i := firstDiff(want, got); i >= 0 {
		return tr.errf("cpu", "whole pack differs at packed byte %d: got %#x want %#x", i, got[i], want[i])
	}

	// Fragment-at-a-time pack.
	if len(fragSizes) > 0 && total > 0 {
		c.Rewind()
		got2 := make([]byte, total)
		var pos int64
		for i := 0; !c.Done(); i++ {
			k := fragSizes[i%len(fragSizes)]
			if k < 1 {
				k = 1
			}
			if rem := total - pos; k > rem {
				k = rem
			}
			n := c.Pack(got2[pos:pos+k], data)
			if n != k {
				return tr.errf("cpu", "fragmented pack consumed %d of %d at %d", n, k, pos)
			}
			pos += n
		}
		if i := firstDiff(want, got2); i >= 0 {
			return tr.errf("cpu", "fragmented pack differs at packed byte %d", i)
		}

		// Seek-resumed pack of an interior window (MPI_Pack position).
		mid := total / 2
		c.SeekTo(mid)
		win := total - mid
		got3 := make([]byte, win)
		c.Pack(got3, data)
		if i := firstDiff(want[mid:], got3); i >= 0 {
			return tr.errf("cpu", "seek-resumed pack differs at packed byte %d", mid+int64(i))
		}
	}

	// Unpack identity (skipped for overlapping layouts, where scatter
	// order is undefined).
	if !HasOverlap(tr.Map) {
		base := pattern(tr.Span, tr.Seed+77)
		wantImg := append([]byte(nil), base...)
		ReferenceUnpack(tr.Map, wantImg, want)

		gotImg := append([]byte(nil), base...)
		u := datatype.NewConverter(tr.Dt, tr.Count)
		u.Unpack(gotImg, want)
		if i := firstDiff(wantImg, gotImg); i >= 0 {
			return tr.errf("cpu", "unpack differs at data byte %d", i)
		}
	}
	return nil
}

// CheckMVAPICH validates the baseline vectorizer: applying its segment
// list as cudaMemcpy2D would must reproduce the reference packed stream
// exactly, and the segments must tile the packed size.
func (tr *Tree) CheckMVAPICH() error {
	data := pattern(tr.Span, tr.Seed)
	want := ReferencePack(tr.Map, data)
	segs := baseline.Vectorize(tr.Dt, tr.Count)

	var covered int64
	for _, s := range segs {
		covered += s.PackedLen()
	}
	if covered != tr.Total() {
		return tr.errf("mvapich", "%d segments cover %d packed bytes, want %d", len(segs), covered, tr.Total())
	}

	got := make([]byte, 0, tr.Total())
	for si, s := range segs {
		if s.Len <= 0 || s.Count <= 0 {
			return tr.errf("mvapich", "segment %d degenerate: %+v", si, s)
		}
		for i := int64(0); i < s.Count; i++ {
			off := s.Off + i*s.Stride
			if off < 0 || off+s.Len > tr.Span {
				return tr.errf("mvapich", "segment %d row %d reads [%d,%d) outside span %d",
					si, i, off, off+s.Len, tr.Span)
			}
			got = append(got, data[off:off+s.Len]...)
		}
	}
	if i := firstDiff(want, got); i >= 0 {
		return tr.errf("mvapich", "segment pack differs at packed byte %d", i)
	}
	return nil
}

// GPUDriver selects how the contiguous side of a GPU pack/unpack is
// placed, covering the engine's three kernel launch paths.
type GPUDriver int

const (
	// DriverD2D keeps the packed stream in the same GPU's memory.
	DriverD2D GPUDriver = iota
	// DriverD2D2H packs into device memory, then copies the packed
	// stream to the host (and the reverse for unpack).
	DriverD2D2H
	// DriverZeroCopy packs straight into mapped host memory (and
	// unpacks straight out of it), the paper's zero-copy path.
	DriverZeroCopy
)

func (d GPUDriver) String() string {
	switch d {
	case DriverD2D:
		return "d2d"
	case DriverD2D2H:
		return "d2d2h"
	default:
		return "zerocopy"
	}
}

// gpuRig is a fresh one-GPU simulation for a GPU-engine check.
type gpuRig struct {
	eng *sim.Engine
	ctx *cuda.Ctx
	e   *core.Engine
}

func newGPURig(opts core.Options) *gpuRig {
	eng := sim.NewEngine()
	node := pcie.NewNode(eng, 0, 1, gpu.KeplerK40(), pcie.DefaultParams())
	ctx := cuda.NewCtx(node)
	return &gpuRig{eng: eng, ctx: ctx, e: core.New(ctx, 0, opts)}
}

// CheckGPU runs the GPU DEV engine through one driver against the
// reference walker: fragmented pack, a second pack served from the
// cached DEV descriptor list, and a fragmented unpack (when the layout
// is overlap-free). All phases run sequentially inside one simulated
// process, since an engine's Run may only be called once.
func (tr *Tree) CheckGPU(driver GPUDriver, opts core.Options, fragSizes []int64) error {
	if len(fragSizes) == 0 {
		fragSizes = []int64{1 << 20}
	}
	r := newGPURig(opts)
	total := tr.Total()
	data := r.ctx.Malloc(0, tr.Span)
	copy(data.Bytes(), pattern(tr.Span, tr.Seed))
	want := ReferencePack(tr.Map, data.Bytes())

	newPacked := func() mem.Buffer {
		if driver == DriverZeroCopy {
			return r.ctx.MallocHost(total)
		}
		return r.ctx.Malloc(0, total)
	}
	engine := "gpu-" + driver.String()

	doUnpack := !HasOverlap(tr.Map) && total > 0
	base := pattern(tr.Span, tr.Seed+77)
	var wantImg []byte
	var layout mem.Buffer
	if doUnpack {
		wantImg = append([]byte(nil), base...)
		ReferenceUnpack(tr.Map, wantImg, want)
		layout = r.ctx.Malloc(0, tr.Span)
		copy(layout.Bytes(), base)
	}

	var checkErr error
	r.eng.Spawn("conformance", func(p *sim.Proc) {
		// Pack twice: the first pass converts on the CPU (and, with
		// caching enabled, stores the DEV descriptor list); the second
		// pass is served from the cache and windows the stored list.
		for pass, label := range []string{"first", "cached"} {
			dst := newPacked()
			host := dst
			if driver == DriverD2D2H {
				host = r.ctx.MallocHost(total)
			}
			pk := r.e.NewPacker(data, tr.Dt, tr.Count)
			var pos int64
			for i := pass; !pk.Done(); i++ {
				k := fragSizes[i%len(fragSizes)]
				if k < 1 {
					k = 1
				}
				if rem := total - pos; k > rem {
					k = rem
				}
				n, fut := pk.PackInto(p, dst.Slice(pos, k))
				fut.Await(p)
				pos += n
			}
			if driver == DriverD2D2H {
				r.ctx.Memcpy(p, host, dst)
			}
			if i := firstDiff(want, host.Bytes()); i >= 0 {
				checkErr = tr.errf(engine, "%s pack differs at packed byte %d", label, i)
				return
			}
		}

		if !doUnpack {
			return
		}
		// Unpack: scatter the reference packed stream into a layout
		// buffer holding a different pattern; gaps must stay untouched.
		src := newPacked()
		if driver == DriverD2D2H {
			hostSrc := r.ctx.MallocHost(total)
			copy(hostSrc.Bytes(), want)
			r.ctx.Memcpy(p, src, hostSrc)
		} else {
			copy(src.Bytes(), want)
		}
		pk := r.e.NewUnpacker(layout, tr.Dt, tr.Count)
		var pos int64
		for i := 0; !pk.Done(); i++ {
			k := fragSizes[(i+1)%len(fragSizes)]
			if k < 1 {
				k = 1
			}
			if rem := total - pos; k > rem {
				k = rem
			}
			n, fut := pk.UnpackFrom(p, src.Slice(pos, k))
			fut.Await(p)
			pos += n
		}
	})
	r.eng.Run()
	if checkErr != nil {
		return checkErr
	}
	if doUnpack && !bytes.Equal(wantImg, layout.Bytes()) {
		i := firstDiff(wantImg, layout.Bytes())
		return tr.errf(engine, "unpack differs at data byte %d", i)
	}
	return nil
}

// CheckAll runs one tree through all four engines: the naive reference
// (implicitly, as the oracle), the CPU converter, the MVAPICH baseline
// vectorizer, and the GPU DEV engine under every driver.
func (tr *Tree) CheckAll(fragSizes []int64) error {
	if err := tr.CheckStructure(); err != nil {
		return err
	}
	if err := tr.CheckCPU(fragSizes); err != nil {
		return err
	}
	if err := tr.CheckMVAPICH(); err != nil {
		return err
	}
	for _, drv := range []GPUDriver{DriverD2D, DriverD2D2H, DriverZeroCopy} {
		if err := tr.CheckGPU(drv, core.Options{}, fragSizes); err != nil {
			return err
		}
	}
	// The generic-DEV ablation must agree with the vector fast path.
	return tr.CheckGPU(DriverD2D, core.Options{DisableVectorKernel: true}, fragSizes)
}
