package conformance

import (
	"fmt"

	"gpuddt/internal/datatype"
)

// Spec is an independent description of a derived datatype tree. It can
// build the corresponding *datatype.Datatype through the engine's
// constructors, but its Size/LB/UB/Walk methods reimplement the MPI
// semantics directly from the standard's definitions, without touching
// the engine's flattening — Walk is the "naive reference walker" of the
// differential oracle: it visits every primitive byte run of one
// element in packed order.
type Spec interface {
	// Build constructs the datatype through the engine under test.
	Build() *datatype.Datatype
	// Walk emits (memory byte offset, length) for each primitive of one
	// element, in packed order, relative to the given origin.
	Walk(origin int64, emit func(memOff, n int64))
	// Size is the packed bytes of one element.
	Size() int64
	// LB and UB are the extent bounds per the MPI rules.
	LB() int64
	UB() int64
	String() string
}

func extentOf(s Spec) int64 { return s.UB() - s.LB() }

// ReferenceMap computes the packed-byte -> memory-offset map of
// (spec, count) with the naive walker: entry k is the memory offset
// (from the data origin) holding packed byte k. Consecutive elements
// are spaced by the spec extent, as MPI requires.
func ReferenceMap(sp Spec, count int) []int64 {
	m := make([]int64, 0, sp.Size()*int64(count))
	ext := extentOf(sp)
	for r := 0; r < count; r++ {
		sp.Walk(int64(r)*ext, func(memOff, n int64) {
			for b := int64(0); b < n; b++ {
				m = append(m, memOff+b)
			}
		})
	}
	return m
}

// ReferencePack packs data through the map: out[k] = data[map[k]].
func ReferencePack(m []int64, data []byte) []byte {
	out := make([]byte, len(m))
	for k, off := range m {
		out[k] = data[off]
	}
	return out
}

// ReferenceUnpack scatters packed into data through the map.
func ReferenceUnpack(m []int64, data, packed []byte) {
	for k, off := range m {
		data[off] = packed[k]
	}
}

// HasOverlap reports whether the map touches any memory byte more than
// once (legal for packing, undefined for unpacking).
func HasOverlap(m []int64) bool {
	seen := make(map[int64]bool, len(m))
	for _, off := range m {
		if seen[off] {
			return true
		}
		seen[off] = true
	}
	return false
}

// Span returns the number of data bytes a buffer must hold for
// (spec, count): one past the highest memory offset any repetition
// touches. Zero-size layouts span zero bytes.
func Span(sp Spec, count int) int64 {
	var max int64
	ext := extentOf(sp)
	found := false
	sp.Walk(0, func(memOff, n int64) {
		if e := memOff + n; e > max {
			max = e
		}
		found = true
	})
	if !found {
		return 0
	}
	if count > 1 {
		max += int64(count-1) * ext
	}
	return max
}

// ---------------------------------------------------------------------
// Primitive

type primSpec struct{ which int }

var prims = []struct {
	name string
	size int64
	dt   *datatype.Datatype
}{
	{"byte", 1, datatype.Byte},
	{"char", 1, datatype.Char},
	{"int32", 4, datatype.Int32},
	{"int64", 8, datatype.Int64},
	{"float32", 4, datatype.Float32},
	{"float64", 8, datatype.Float64},
}

func (s primSpec) Build() *datatype.Datatype { return prims[s.which].dt }
func (s primSpec) Size() int64               { return prims[s.which].size }
func (s primSpec) LB() int64                 { return 0 }
func (s primSpec) UB() int64                 { return prims[s.which].size }
func (s primSpec) String() string            { return prims[s.which].name }

func (s primSpec) Walk(origin int64, emit func(memOff, n int64)) {
	emit(origin, prims[s.which].size)
}

// ---------------------------------------------------------------------
// Contiguous

type contigSpec struct {
	count int
	base  Spec
}

func (s contigSpec) Build() *datatype.Datatype {
	return datatype.Contiguous(s.count, s.base.Build())
}
func (s contigSpec) Size() int64 { return int64(s.count) * s.base.Size() }
func (s contigSpec) LB() int64 {
	if s.count == 0 {
		return 0
	}
	return s.base.LB()
}
func (s contigSpec) UB() int64 {
	if s.count == 0 {
		return 0
	}
	return s.base.LB() + int64(s.count)*extentOf(s.base)
}
func (s contigSpec) String() string { return fmt.Sprintf("contig(%d,%s)", s.count, s.base) }

func (s contigSpec) Walk(origin int64, emit func(memOff, n int64)) {
	ext := extentOf(s.base)
	for i := 0; i < s.count; i++ {
		s.base.Walk(origin+int64(i)*ext, emit)
	}
}

// ---------------------------------------------------------------------
// Vector / Hvector

// vectorSpec covers both MPI_Type_vector (strideB = strideElems *
// base extent) and MPI_Type_create_hvector (byte stride); byStride
// records which constructor to exercise.
type vectorSpec struct {
	count, blocklen int
	strideElems     int   // used when !byBytes
	strideB         int64 // used when byBytes
	byBytes         bool
	base            Spec
}

func (s vectorSpec) strideBytes() int64 {
	if s.byBytes {
		return s.strideB
	}
	return int64(s.strideElems) * extentOf(s.base)
}

func (s vectorSpec) Build() *datatype.Datatype {
	if s.byBytes {
		return datatype.Hvector(s.count, s.blocklen, s.strideB, s.base.Build())
	}
	return datatype.Vector(s.count, s.blocklen, s.strideElems, s.base.Build())
}
func (s vectorSpec) Size() int64 { return int64(s.count) * int64(s.blocklen) * s.base.Size() }

func (s vectorSpec) bounds() (lb, ub int64) {
	span := int64(s.blocklen) * extentOf(s.base)
	for i := 0; i < s.count; i++ {
		st := int64(i)*s.strideBytes() + s.base.LB()
		en := st + span
		if i == 0 || st < lb {
			lb = st
		}
		if i == 0 || en > ub {
			ub = en
		}
	}
	return lb, ub
}
func (s vectorSpec) LB() int64 { lb, _ := s.bounds(); return lb }
func (s vectorSpec) UB() int64 { _, ub := s.bounds(); return ub }
func (s vectorSpec) String() string {
	if s.byBytes {
		return fmt.Sprintf("hvector(%d,%d,%dB,%s)", s.count, s.blocklen, s.strideB, s.base)
	}
	return fmt.Sprintf("vector(%d,%d,%d,%s)", s.count, s.blocklen, s.strideElems, s.base)
}

func (s vectorSpec) Walk(origin int64, emit func(memOff, n int64)) {
	ext := extentOf(s.base)
	for i := 0; i < s.count; i++ {
		blockOrigin := origin + int64(i)*s.strideBytes()
		for j := 0; j < s.blocklen; j++ {
			s.base.Walk(blockOrigin+int64(j)*ext, emit)
		}
	}
}

// ---------------------------------------------------------------------
// Indexed family

// indexedSpec covers MPI_Type_indexed (element displacements),
// MPI_Type_create_hindexed (byte displacements) and
// MPI_Type_create_indexed_block (uniform block length).
type indexedSpec struct {
	blocklens []int
	displs    []int64 // bytes when byBytes, else elements
	byBytes   bool
	uniform   bool // build through IndexedBlock (blocklens all equal)
	base      Spec
}

func (s indexedSpec) displBytes(i int) int64 {
	if s.byBytes {
		return s.displs[i]
	}
	return s.displs[i] * extentOf(s.base)
}

func (s indexedSpec) Build() *datatype.Datatype {
	base := s.base.Build()
	if s.byBytes {
		return datatype.Hindexed(s.blocklens, s.displs, base)
	}
	di := make([]int, len(s.displs))
	for i, d := range s.displs {
		di[i] = int(d)
	}
	if s.uniform {
		bl := 0
		if len(s.blocklens) > 0 {
			bl = s.blocklens[0]
		}
		return datatype.IndexedBlock(bl, di, base)
	}
	return datatype.Indexed(s.blocklens, di, base)
}

func (s indexedSpec) Size() int64 {
	var total int64
	for _, bl := range s.blocklens {
		total += int64(bl)
	}
	return total * s.base.Size()
}

func (s indexedSpec) bounds() (lb, ub int64) {
	first := true
	for i, bl := range s.blocklens {
		if bl == 0 {
			continue
		}
		st := s.displBytes(i) + s.base.LB()
		en := st + int64(bl)*extentOf(s.base)
		if first || st < lb {
			lb = st
		}
		if first || en > ub {
			ub = en
		}
		first = false
	}
	return lb, ub
}
func (s indexedSpec) LB() int64 { lb, _ := s.bounds(); return lb }
func (s indexedSpec) UB() int64 { _, ub := s.bounds(); return ub }
func (s indexedSpec) String() string {
	k := "indexed"
	if s.byBytes {
		k = "hindexed"
	} else if s.uniform {
		k = "indexedBlock"
	}
	return fmt.Sprintf("%s(%d blocks,%s)", k, len(s.blocklens), s.base)
}

func (s indexedSpec) Walk(origin int64, emit func(memOff, n int64)) {
	ext := extentOf(s.base)
	for i, bl := range s.blocklens {
		blockOrigin := origin + s.displBytes(i)
		for j := 0; j < bl; j++ {
			s.base.Walk(blockOrigin+int64(j)*ext, emit)
		}
	}
}

// ---------------------------------------------------------------------
// Struct

type structSpec struct {
	blocklens []int
	displs    []int64
	types     []Spec
}

func (s structSpec) Build() *datatype.Datatype {
	types := make([]*datatype.Datatype, len(s.types))
	for i, t := range s.types {
		types[i] = t.Build()
	}
	return datatype.Struct(s.blocklens, s.displs, types)
}

func (s structSpec) Size() int64 {
	var total int64
	for i, bl := range s.blocklens {
		total += int64(bl) * s.types[i].Size()
	}
	return total
}

func (s structSpec) bounds() (lb, ub int64) {
	first := true
	for i, bl := range s.blocklens {
		if bl == 0 {
			continue
		}
		st := s.displs[i] + s.types[i].LB()
		en := st + int64(bl)*extentOf(s.types[i])
		if first || st < lb {
			lb = st
		}
		if first || en > ub {
			ub = en
		}
		first = false
	}
	return lb, ub
}
func (s structSpec) LB() int64      { lb, _ := s.bounds(); return lb }
func (s structSpec) UB() int64      { _, ub := s.bounds(); return ub }
func (s structSpec) String() string { return fmt.Sprintf("struct(%d members)", len(s.types)) }

func (s structSpec) Walk(origin int64, emit func(memOff, n int64)) {
	for i, bl := range s.blocklens {
		ext := extentOf(s.types[i])
		for j := 0; j < bl; j++ {
			s.types[i].Walk(origin+s.displs[i]+int64(j)*ext, emit)
		}
	}
}

// ---------------------------------------------------------------------
// Subarray

type subarraySpec struct {
	sizes, subsizes, starts []int
	order                   datatype.Order
	base                    Spec
}

func (s subarraySpec) Build() *datatype.Datatype {
	return datatype.Subarray(s.sizes, s.subsizes, s.starts, s.order, s.base.Build())
}

func (s subarraySpec) Size() int64 {
	sub := int64(1)
	for _, v := range s.subsizes {
		sub *= int64(v)
	}
	return sub * s.base.Size()
}
func (s subarraySpec) LB() int64 { return 0 }
func (s subarraySpec) UB() int64 {
	total := int64(1)
	for _, v := range s.sizes {
		total *= int64(v)
	}
	return total * extentOf(s.base)
}
func (s subarraySpec) String() string {
	return fmt.Sprintf("subarray(%v of %v,%s)", s.subsizes, s.sizes, s.base)
}

// elemStrides returns per-dimension element strides of the full array
// under the storage order: the linear index of coordinate c is
// sum_d c[d]*stride[d].
func elemStrides(sizes []int, order datatype.Order) []int64 {
	n := len(sizes)
	strides := make([]int64, n)
	st := int64(1)
	if order == datatype.OrderC {
		for d := n - 1; d >= 0; d-- {
			strides[d] = st
			st *= int64(sizes[d])
		}
	} else {
		for d := 0; d < n; d++ {
			strides[d] = st
			st *= int64(sizes[d])
		}
	}
	return strides
}

func (s subarraySpec) Walk(origin int64, emit func(memOff, n int64)) {
	n := len(s.sizes)
	strides := elemStrides(s.sizes, s.order)
	ext := extentOf(s.base)
	// Iterate sub-block coordinates with the fastest-varying storage
	// dimension innermost so the emission order matches packed order.
	dims := make([]int, n) // slowest .. fastest
	for i := range dims {
		if s.order == datatype.OrderC {
			dims[i] = i
		} else {
			dims[i] = n - 1 - i
		}
	}
	idx := make([]int, n)
	var rec func(level int)
	rec = func(level int) {
		if level == n {
			var linear int64
			for d := 0; d < n; d++ {
				linear += int64(s.starts[d]+idx[d]) * strides[d]
			}
			s.base.Walk(origin+linear*ext, emit)
			return
		}
		d := dims[level]
		for idx[d] = 0; idx[d] < s.subsizes[d]; idx[d]++ {
			rec(level + 1)
		}
		idx[d] = 0
	}
	for _, v := range s.subsizes {
		if v == 0 {
			return
		}
	}
	rec(0)
}

// ---------------------------------------------------------------------
// Resized

type resizedSpec struct {
	base       Spec
	lb, extent int64
}

func (s resizedSpec) Build() *datatype.Datatype {
	return datatype.Resized(s.base.Build(), s.lb, s.extent)
}
func (s resizedSpec) Size() int64 { return s.base.Size() }
func (s resizedSpec) LB() int64   { return s.lb }
func (s resizedSpec) UB() int64   { return s.lb + s.extent }
func (s resizedSpec) String() string {
	return fmt.Sprintf("resized(%s,lb=%d,extent=%d)", s.base, s.lb, s.extent)
}

func (s resizedSpec) Walk(origin int64, emit func(memOff, n int64)) {
	s.base.Walk(origin, emit)
}

// ---------------------------------------------------------------------
// Darray

type darraySpec struct {
	size, rank int
	gsizes     []int
	distribs   []datatype.Distrib
	dargs      []int
	psizes     []int
	order      datatype.Order
	base       Spec
}

func (s darraySpec) Build() *datatype.Datatype {
	return datatype.Darray(s.size, s.rank, s.gsizes, s.distribs, s.dargs, s.psizes, s.order, s.base.Build())
}

// coords returns the rank's process-grid coordinates, row-major over
// psizes (the MPI convention).
func (s darraySpec) coords() []int {
	n := len(s.psizes)
	c := make([]int, n)
	r := s.rank
	for i := n - 1; i >= 0; i-- {
		c[i] = r % s.psizes[i]
		r /= s.psizes[i]
	}
	return c
}

// dimRuns lists the (start, len) global-index runs dimension d assigns
// to this rank, reimplementing the MPI distribution rules.
func (s darraySpec) dimRuns(d int) [][2]int {
	gsize, np, p := s.gsizes[d], s.psizes[d], s.coords()[d]
	switch s.distribs[d] {
	case datatype.DistribNone:
		return [][2]int{{0, gsize}}
	case datatype.DistribBlock:
		b := s.dargs[d]
		if b == datatype.DargDefault {
			b = (gsize + np - 1) / np
		}
		start := p * b
		if start >= gsize {
			return nil
		}
		n := b
		if start+n > gsize {
			n = gsize - start
		}
		return [][2]int{{start, n}}
	default: // DistribCyclic
		b := s.dargs[d]
		if b == datatype.DargDefault {
			b = 1
		}
		var runs [][2]int
		for start := p * b; start < gsize; start += np * b {
			n := b
			if start+n > gsize {
				n = gsize - start
			}
			runs = append(runs, [2]int{start, n})
		}
		return runs
	}
}

func (s darraySpec) Size() int64 {
	local := int64(1)
	for d := range s.gsizes {
		var owned int64
		for _, rn := range s.dimRuns(d) {
			owned += int64(rn[1])
		}
		local *= owned
	}
	return local * s.base.Size()
}
func (s darraySpec) LB() int64 { return 0 }
func (s darraySpec) UB() int64 {
	total := int64(1)
	for _, v := range s.gsizes {
		total *= int64(v)
	}
	return total * extentOf(s.base)
}
func (s darraySpec) String() string {
	return fmt.Sprintf("darray(rank %d of %d, %v over %v,%s)", s.rank, s.size, s.gsizes, s.psizes, s.base)
}

func (s darraySpec) Walk(origin int64, emit func(memOff, n int64)) {
	n := len(s.gsizes)
	strides := elemStrides(s.gsizes, s.order)
	ext := extentOf(s.base)
	dims := make([]int, n)
	for i := range dims {
		if s.order == datatype.OrderC {
			dims[i] = i
		} else {
			dims[i] = n - 1 - i
		}
	}
	idxOff := make([]int64, n) // current global index per dimension
	var rec func(level int)
	rec = func(level int) {
		if level == n {
			var linear int64
			for d := 0; d < n; d++ {
				linear += idxOff[d] * strides[d]
			}
			s.base.Walk(origin+linear*ext, emit)
			return
		}
		d := dims[level]
		for _, rn := range s.dimRuns(d) {
			for j := 0; j < rn[1]; j++ {
				idxOff[d] = int64(rn[0] + j)
				rec(level + 1)
			}
		}
	}
	rec(0)
}
