package conformance

import (
	"flag"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden tree fingerprints")

// oracleTrees is the seeded sweep size; the acceptance bar is 200.
const oracleTrees = 224

// oracleFrags cycles odd fragment sizes so converter windows straddle
// block, unit and chunk boundaries.
var oracleFrags = []int64{977, 3 << 10, 1021}

// TestOracleSeededTrees is the differential oracle: every seeded tree
// is packed and unpacked through the four engines — naive reference
// walker, CPU converter, MVAPICH vectorizer, GPU DEV engine (d2d,
// d2d2h and zero-copy drivers, vector fast path and generic-DEV
// ablation, cold and cached) — and every engine must produce
// byte-identical results.
func TestOracleSeededTrees(t *testing.T) {
	n := oracleTrees
	if testing.Short() {
		n = 48
	}
	var overlapped, zero int
	for seed := uint64(1); seed <= uint64(n); seed++ {
		tr := NewTree(seed)
		if err := tr.CheckAll(oracleFrags); err != nil {
			t.Fatal(err)
		}
		if HasOverlap(tr.Map) {
			overlapped++
		}
		if tr.Total() == 0 {
			zero++
		}
	}
	t.Logf("%d trees conform (%d with overlapping layouts, %d zero-size)", n, overlapped, zero)
	if zero > n/4 {
		t.Errorf("%d of %d generated trees are zero-size; generator is degenerate", zero, n)
	}
}

// TestOracleLargeUnits widens the DEV split size and narrows it to the
// paper's bounds, checking the split logic is size-independent.
func TestOracleLargeUnits(t *testing.T) {
	for _, unit := range []int64{256, 2048, 4096} {
		for seed := uint64(300); seed < 310; seed++ {
			tr := NewTree(seed)
			if err := tr.CheckGPU(DriverD2D, gpuOpts(unit), oracleFrags); err != nil {
				t.Errorf("unit %d: %v", unit, err)
			}
		}
	}
}

// TestChannelRoundTrips sends suitable trees over every MPI channel
// configuration: smcuda (same GPU via IPC, two GPUs via P2P) and openib
// (two nodes), eager and rendezvous regimes, the paper's pipelined
// strategy and the MVAPICH baseline, GPU and host data, mirrored and
// contiguous receive layouts, staged and direct remote unpack.
func TestChannelRoundTrips(t *testing.T) {
	want := 12
	if testing.Short() {
		want = 4
	}
	var trees []*Tree
	for seed := uint64(1000); len(trees) < want && seed < 1400; seed++ {
		tr := NewTree(seed)
		if tr.Total() < 16 || tr.Total() > 192<<10 || HasOverlap(tr.Map) {
			continue
		}
		trees = append(trees, tr)
	}
	if len(trees) < want {
		t.Fatalf("only %d suitable trees found", len(trees))
	}

	configs := []RTConfig{
		{Topo: "1gpu"},
		{Topo: "1gpu", ForceEager: true},
		{Topo: "2gpu"},
		{Topo: "2gpu", FragBytes: 32 << 10},
		{Topo: "2gpu", RecvContig: true},
		{Topo: "2gpu", MVAPICH: true},
		{Topo: "2gpu", ForceEager: true},
		{Topo: "2gpu", OnHost: true},
		{Topo: "2gpu", DirectRemoteUnpack: true},
		{Topo: "ib"},
		{Topo: "ib", FragBytes: 64 << 10},
		{Topo: "ib", MVAPICH: true},
		{Topo: "ib", RecvContig: true},
		{Topo: "ib", ForceEager: true, OnHost: true},
		{Topo: "1gpu", Traced: true},
		{Topo: "2gpu", Traced: true},
		{Topo: "2gpu", ForceEager: true, Traced: true},
		{Topo: "ib", Traced: true},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			for _, tr := range trees {
				if err := RoundTrip(tr, cfg); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestGoldenTrees gates datatype flattening, DEV splitting and baseline
// vectorization on recorded layout fingerprints: packed byte counts,
// block/segment/unit decomposition counts and a content hash per seed.
// Drift fails until explained and re-recorded with
//
//	go test ./internal/conformance -run TestGoldenTrees -update
func TestGoldenTrees(t *testing.T) {
	seeds := make([]uint64, 32)
	for i := range seeds {
		seeds[i] = uint64(1 + i*7)
	}
	path := filepath.Join("testdata", "golden", "trees.json")
	if err := CheckTrees(path, seeds, *update); err != nil {
		t.Fatal(err)
	}
}

// TestReferenceWalkerSelfChecks pins the walker's own semantics on
// hand-computed cases, so a bug can't hide in both the walker and the
// engine at once.
func TestReferenceWalkerSelfChecks(t *testing.T) {
	// vector(3 blocks of 2 int32, stride 4 elements): blocks at element
	// offsets 0, 4, 8.
	sp := vectorSpec{count: 3, blocklen: 2, strideElems: 4, base: primSpec{which: 2}}
	m := ReferenceMap(sp, 1)
	if len(m) != 24 {
		t.Fatalf("map has %d entries, want 24", len(m))
	}
	wantStarts := []int64{0, 16, 32}
	for b := 0; b < 3; b++ {
		for i := 0; i < 8; i++ {
			if got := m[b*8+i]; got != wantStarts[b]+int64(i) {
				t.Fatalf("packed byte %d maps to %d, want %d", b*8+i, got, wantStarts[b]+int64(i))
			}
		}
	}
	if sp.Size() != 24 {
		t.Errorf("size %d, want 24", sp.Size())
	}
	if extentOf(sp) != (2*4+2)*4 {
		t.Errorf("extent %d, want %d", extentOf(sp), (2*4+2)*4)
	}

	// struct{int32 at 0, 2 float64 at 8}: packed order int32 then doubles.
	st := structSpec{
		blocklens: []int{1, 2},
		displs:    []int64{0, 8},
		types:     []Spec{primSpec{which: 2}, primSpec{which: 5}},
	}
	m2 := ReferenceMap(st, 1)
	want := []int64{0, 1, 2, 3, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23}
	if len(m2) != len(want) {
		t.Fatalf("struct map %d entries, want %d", len(m2), len(want))
	}
	for i := range want {
		if m2[i] != want[i] {
			t.Fatalf("struct packed byte %d maps to %d, want %d", i, m2[i], want[i])
		}
	}

	// Overlap detection: resized with extent 4 under count 2 re-reads
	// the first bytes.
	rs := resizedSpec{base: primSpec{which: 5}, lb: 0, extent: 4}
	if !HasOverlap(ReferenceMap(rs, 2)) {
		t.Error("interleaved resized repetitions not flagged as overlapping")
	}
	if HasOverlap(ReferenceMap(sp, 2)) {
		t.Error("disjoint vector flagged as overlapping")
	}
}
