package conformance

import (
	"fmt"
	"math/rand"

	"gpuddt/internal/cluster"
	"gpuddt/internal/mem"
	"gpuddt/internal/mpi"
)

// The v-variant oracle: seeded irregular count/displacement
// configurations for Alltoallv and Allgatherv, executed on a real world
// and verified byte-for-byte against the independent reference walker.
// The generator deliberately produces the awkward inputs — zero counts,
// fully empty ranks, displacement permutations (blocks laid out in
// shuffled order), datatype-tree payloads — and the checker compares
// whole memory images, so gap bytes are proven untouched and both the
// hierarchical and the flat path are held to the same reference (which
// makes them byte-identical to each other).

// vcollMaxCount bounds per-peer element counts (small: a world exchanges
// size² blocks per case).
const vcollMaxCount = 3

// vcollTreeOptions keeps one element small enough for size² blocks to
// stay cheap while still exercising real datatype trees.
func vcollTreeOptions() TreeOptions {
	return TreeOptions{MaxElems: 128, MaxSpan: 2 << 10, MaxDepth: 3}
}

// vcollTree derives the element datatype for a case: a generated tree
// that is usable as a v-collective element — non-empty, non-negative
// offsets (buffers start at the datatype origin), positive extent, and
// overlap-free up to the maximum per-peer count (unpack into an
// overlapping layout is undefined).
func vcollTree(seed uint64) *Tree {
	for s := seed; ; s += 7919 {
		sp := GenSpecOpts(s, vcollTreeOptions())
		if sp.Size() == 0 || extentOf(sp) <= 0 {
			continue
		}
		m := ReferenceMap(sp, vcollMaxCount)
		neg := false
		for _, off := range m {
			if off < 0 {
				neg = true
				break
			}
		}
		if neg || HasOverlap(m) {
			continue
		}
		return &Tree{
			Seed:  s,
			Spec:  sp,
			Dt:    sp.Build().Commit(),
			Count: vcollMaxCount,
			Map:   m,
			Span:  Span(sp, vcollMaxCount),
		}
	}
}

// VCase is one seeded irregular-collective configuration for a world of
// Size ranks: the element datatype, the Alltoallv send/recv matrices
// with permuted displacements, and an Allgatherv distribution.
type VCase struct {
	Seed uint64
	Size int
	Tree *Tree

	SCounts, SDispls [][]int // [src][dst], displs in extent units
	RCounts, RDispls [][]int // [dst][src]
	AGCounts         []int   // per-rank allgatherv contribution
	AGDispls         []int

	sspan, rspan []int64 // per-rank buffer spans in bytes
	agspan       int64
}

// permLayout assigns each block a displacement slot in a shuffled order,
// so displacements are non-monotonic but provably overlap-free, with
// occasional one-extent gaps.
func permLayout(rng *rand.Rand, tr *Tree, counts []int) (displs []int, span int64) {
	ext := extentOf(tr.Spec)
	displs = make([]int, len(counts))
	var cur int64
	for _, j := range rng.Perm(len(counts)) {
		displs[j] = int(cur)
		if counts[j] == 0 {
			continue
		}
		blocks := (Span(tr.Spec, counts[j]) + ext - 1) / ext
		cur += blocks + int64(rng.Intn(2))
	}
	return displs, (cur + 1) * ext
}

// GenVCase derives a case from (seed, size): the tree, an irregular
// count matrix with zeros and (when size > 2) one fully empty rank, and
// permuted displacement layouts.
func GenVCase(seed uint64, size int) *VCase {
	sc := make([][]int, size)
	rng := rand.New(rand.NewSource(int64(seed)*0x9e37 + 17))
	empty := -1
	if size > 2 {
		empty = rng.Intn(size)
	}
	for i := range sc {
		sc[i] = make([]int, size)
		for j := range sc[i] {
			if i == empty || j == empty {
				continue
			}
			sc[i][j] = rng.Intn(vcollMaxCount + 1)
		}
	}
	vc := NewVCaseCounts(seed, sc)
	if empty >= 0 {
		vc.AGCounts[empty] = 0
	}
	return vc
}

// NewVCaseCounts builds a case from an explicit send matrix (the fuzzer
// entry point); layouts and the Allgatherv distribution stay seeded.
func NewVCaseCounts(seed uint64, scounts [][]int) *VCase {
	size := len(scounts)
	vc := &VCase{
		Seed:    seed,
		Size:    size,
		Tree:    vcollTree(seed),
		SCounts: scounts,
		SDispls: make([][]int, size),
		RCounts: make([][]int, size),
		RDispls: make([][]int, size),
		sspan:   make([]int64, size),
		rspan:   make([]int64, size),
	}
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x5bd1e995))
	for i := 0; i < size; i++ {
		vc.RCounts[i] = make([]int, size)
		for j := 0; j < size; j++ {
			vc.RCounts[i][j] = scounts[j][i]
		}
	}
	for i := 0; i < size; i++ {
		vc.SDispls[i], vc.sspan[i] = permLayout(rng, vc.Tree, vc.SCounts[i])
		vc.RDispls[i], vc.rspan[i] = permLayout(rng, vc.Tree, vc.RCounts[i])
	}
	vc.AGCounts = make([]int, size)
	for r := range vc.AGCounts {
		vc.AGCounts[r] = rng.Intn(vcollMaxCount + 1)
	}
	vc.AGDispls, vc.agspan = permLayout(rng, vc.Tree, vc.AGCounts)
	return vc
}

// VConfig selects the world a case runs on: shape, hierarchical or flat
// collectives, data placement, and protocol regime.
type VConfig struct {
	Nodes, RPN int
	Flat       bool // force the flat fallback
	OnHost     bool // host buffers (CPU datatype engine) instead of GPU
	Eager      bool // eager bounce-buffer protocol instead of rendezvous
}

func (c VConfig) String() string {
	path := "hier"
	if c.Flat {
		path = "flat"
	}
	place := "gpu"
	if c.OnHost {
		place = "host"
	}
	proto := "rendezvous"
	if c.Eager {
		proto = "eager"
	}
	return fmt.Sprintf("%dx%d/%s/%s/%s", c.Nodes, c.RPN, path, place, proto)
}

func (c VConfig) world() *mpi.World {
	tun := &mpi.Tuning{Eager: mpi.Eager(1)}
	if c.Eager {
		tun.Eager = mpi.Eager(1 << 30)
	}
	if c.Flat {
		tun.Collectives = mpi.CollFlat
	}
	spec := cluster.Spec{Nodes: c.Nodes, GPUsPerNode: c.RPN, RanksPerNode: c.RPN}
	return mpi.NewWorld(spec.Tuned(tun).Config())
}

// shiftMap returns the reference map of (spec, count) displaced by
// displ extent units.
func (vc *VCase) shiftMap(count, displ int) []int64 {
	m := ReferenceMap(vc.Tree.Spec, count)
	delta := int64(displ) * extentOf(vc.Tree.Spec)
	out := make([]int64, len(m))
	for k, off := range m {
		out[k] = off + delta
	}
	return out
}

func (vc *VCase) errf(what string, cfg VConfig, format string, args ...interface{}) error {
	return fmt.Errorf("seed %d (%s, size %d) [%s %s]: %s",
		vc.Seed, vc.Tree.Dt.Name(), vc.Size, what, cfg, fmt.Sprintf(format, args...))
}

// checkQuiescent asserts no staging buffer leaked out of the run.
func (vc *VCase) checkQuiescent(w *mpi.World, what string, cfg VConfig) error {
	for r := 0; r < w.Size(); r++ {
		rk := w.RankHandle(r)
		if out := rk.ScratchOutstanding(); out != 0 {
			return vc.errf(what, cfg, "rank %d leaked %d scratch buffers", r, out)
		}
		if out := rk.RingOutstanding(); out != 0 {
			return vc.errf(what, cfg, "rank %d leaked %d ring buffers", r, out)
		}
	}
	return nil
}

// CheckAlltoallv runs the case's Alltoallv on the configured world and
// verifies every rank's full receive image — scattered block bytes and
// untouched gaps alike — against the reference walker.
func (vc *VCase) CheckAlltoallv(cfg VConfig) error {
	size := cfg.Nodes * cfg.RPN
	if size != vc.Size {
		return fmt.Errorf("VCase for %d ranks run on %d", vc.Size, size)
	}
	srcs := make([][]byte, size)
	wants := make([][]byte, size)
	for i := 0; i < size; i++ {
		srcs[i] = pattern(vc.sspan[i], vc.Seed+uint64(i))
		wants[i] = pattern(vc.rspan[i], vc.Seed+uint64(1000+i))
	}
	for i := 0; i < size; i++ { // expected image of receiver i
		for s := 0; s < size; s++ {
			c := vc.RCounts[i][s]
			if c == 0 {
				continue
			}
			packed := ReferencePack(vc.shiftMap(c, vc.SDispls[s][i]), srcs[s])
			ReferenceUnpack(vc.shiftMap(c, vc.RDispls[i][s]), wants[i], packed)
		}
	}

	w := cfg.world()
	defer w.Close()
	dt := vc.Tree.Dt
	got := make([][]byte, size)
	w.Run(func(m *mpi.Rank) {
		me := m.Rank()
		alloc := m.Malloc
		if cfg.OnHost {
			alloc = m.MallocHost
		}
		send, recv := alloc(vc.sspan[me]), alloc(vc.rspan[me])
		copy(send.Bytes(), srcs[me])
		copy(recv.Bytes(), pattern(vc.rspan[me], vc.Seed+uint64(1000+me)))
		m.Alltoallv(send, vc.SCounts[me], vc.SDispls[me], dt,
			recv, vc.RCounts[me], vc.RDispls[me], dt)
		got[me] = append([]byte(nil), recv.Bytes()...)
	})
	if err := vc.checkQuiescent(w, "alltoallv", cfg); err != nil {
		return err
	}
	for i := 0; i < size; i++ {
		if d := firstDiff(wants[i], got[i]); d >= 0 {
			return vc.errf("alltoallv", cfg, "rank %d image byte %d differs: got %#x want %#x",
				i, d, got[i][d], wants[i][d])
		}
	}
	return nil
}

// CheckAllgatherv runs the case's Allgatherv in place and verifies every
// rank's full buffer image against the reference walker. Each rank's
// contribution is whatever its seeded initial image holds in its own
// block, per MPI in-place semantics.
func (vc *VCase) CheckAllgatherv(cfg VConfig) error {
	size := cfg.Nodes * cfg.RPN
	if size != vc.Size {
		return fmt.Errorf("VCase for %d ranks run on %d", vc.Size, size)
	}
	bases := make([][]byte, size)
	for r := 0; r < size; r++ {
		bases[r] = pattern(vc.agspan, vc.Seed+uint64(2000+r))
	}
	wants := make([][]byte, size)
	for r := 0; r < size; r++ {
		wants[r] = append([]byte(nil), bases[r]...)
		for s := 0; s < size; s++ {
			c := vc.AGCounts[s]
			if c == 0 {
				continue
			}
			m := vc.shiftMap(c, vc.AGDispls[s])
			ReferenceUnpack(m, wants[r], ReferencePack(m, bases[s]))
		}
	}

	w := cfg.world()
	defer w.Close()
	got := make([][]byte, size)
	w.Run(func(m *mpi.Rank) {
		me := m.Rank()
		var buf mem.Buffer
		if cfg.OnHost {
			buf = m.MallocHost(vc.agspan)
		} else {
			buf = m.Malloc(vc.agspan)
		}
		copy(buf.Bytes(), bases[me])
		m.Allgatherv(buf, vc.AGCounts, vc.AGDispls, vc.Tree.Dt)
		got[me] = append([]byte(nil), buf.Bytes()...)
	})
	if err := vc.checkQuiescent(w, "allgatherv", cfg); err != nil {
		return err
	}
	for r := 0; r < size; r++ {
		if d := firstDiff(wants[r], got[r]); d >= 0 {
			return vc.errf("allgatherv", cfg, "rank %d image byte %d differs: got %#x want %#x",
				r, d, got[r][d], wants[r][d])
		}
	}
	return nil
}
