package conformance

import (
	"testing"
)

// vcollConfigs covers every axis the v-variant oracle promises — CPU
// and GPU engines, hierarchical and flat dispatch, eager and rendezvous
// protocols — pairing each hier shape with its forced-flat twin so both
// paths answer to the same reference on identical inputs.
func vcollConfigs() []VConfig {
	return []VConfig{
		{Nodes: 2, RPN: 2},
		{Nodes: 2, RPN: 2, Flat: true},
		{Nodes: 2, RPN: 2, OnHost: true, Eager: true},
		{Nodes: 2, RPN: 2, Flat: true, OnHost: true, Eager: true},
		{Nodes: 3, RPN: 2, Eager: true},
		{Nodes: 3, RPN: 2, Flat: true, Eager: true},
		{Nodes: 3, RPN: 2, OnHost: true},
		{Nodes: 3, RPN: 2, Flat: true, OnHost: true},
		{Nodes: 1, RPN: 4}, // single node: flat by construction
	}
}

// TestVCollOracle sweeps seeded irregular cases — zero counts, an empty
// rank, permuted displacements, datatype-tree payloads — through
// Alltoallv and Allgatherv on every configuration and verifies the full
// receive images against the reference walker.
func TestVCollOracle(t *testing.T) {
	seeds := []uint64{3, 17, 42}
	for _, cfg := range vcollConfigs() {
		for _, seed := range seeds {
			vc := GenVCase(seed, cfg.Nodes*cfg.RPN)
			if err := vc.CheckAlltoallv(cfg); err != nil {
				t.Error(err)
			}
			if err := vc.CheckAllgatherv(cfg); err != nil {
				t.Error(err)
			}
		}
	}
}

// TestVCollOracleAllZero pins the degenerate distribution on both
// dispatch paths.
func TestVCollOracleAllZero(t *testing.T) {
	for _, cfg := range []VConfig{{Nodes: 2, RPN: 2}, {Nodes: 2, RPN: 2, Flat: true}} {
		sc := make([][]int, 4)
		for i := range sc {
			sc[i] = make([]int, 4)
		}
		vc := NewVCaseCounts(5, sc)
		for r := range vc.AGCounts {
			vc.AGCounts[r] = 0
		}
		if err := vc.CheckAlltoallv(cfg); err != nil {
			t.Error(err)
		}
		if err := vc.CheckAllgatherv(cfg); err != nil {
			t.Error(err)
		}
	}
}

// FuzzAlltoallvCounts lets the fuzzer pick the send matrix of a 4-rank
// world (one byte per pair, mod 4) and the tree seed, then holds the
// exchange to the reference walker on both the hierarchical and the
// flat path.
func FuzzAlltoallvCounts(f *testing.F) {
	f.Add(uint64(1), []byte{
		1, 0, 2, 3,
		0, 0, 0, 0,
		3, 1, 0, 2,
		2, 2, 1, 0,
	})
	f.Add(uint64(7), make([]byte, 16)) // all-zero: every pair empty
	hot := make([]byte, 16)            // single hot peer: only 2 -> 1 sends
	hot[2*4+1] = 3
	f.Add(uint64(9), hot)
	f.Fuzz(func(t *testing.T, seed uint64, cbytes []byte) {
		const size = 4
		sc := make([][]int, size)
		for i := range sc {
			sc[i] = make([]int, size)
			for j := range sc[i] {
				k := i*size + j
				if k < len(cbytes) {
					sc[i][j] = int(cbytes[k] % (vcollMaxCount + 1))
				}
			}
		}
		vc := NewVCaseCounts(seed%1024, sc)
		for _, cfg := range []VConfig{
			{Nodes: 2, RPN: 2},
			{Nodes: 2, RPN: 2, Flat: true, OnHost: true},
		} {
			if err := vc.CheckAlltoallv(cfg); err != nil {
				t.Fatal(err)
			}
		}
	})
}
