package conformance

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"gpuddt/internal/baseline"
	"gpuddt/internal/bench"
	"gpuddt/internal/sim"
)

// GoldenPoint is one recorded (x, y) measurement. Virtual time is
// deterministic and encoding/json round-trips float64 exactly, so
// comparisons are exact — any difference is real drift.
type GoldenPoint struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// GoldenSeries is one recorded curve.
type GoldenSeries struct {
	Name   string        `json:"name"`
	Points []GoldenPoint `json:"points"`
}

// GoldenFigure is the checked-in expected result of one figure runner.
type GoldenFigure struct {
	ID     string         `json:"id"`
	YLabel string         `json:"ylabel"`
	Series []GoldenSeries `json:"series"`
}

// GoldenFromFigure flattens a bench figure into its golden form.
func GoldenFromFigure(f *bench.Figure) GoldenFigure {
	g := GoldenFigure{ID: f.ID, YLabel: f.YLabel}
	for _, s := range f.Series {
		gs := GoldenSeries{Name: s.Name}
		for _, p := range s.Points {
			gs.Points = append(gs.Points, GoldenPoint{X: p.X, Y: p.Y})
		}
		g.Series = append(g.Series, gs)
	}
	return g
}

func writeJSON(path string, v interface{}) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckFigure compares a figure runner's result against the golden file
// at path. With update set it regenerates the file instead (go test
// ./internal/bench -run TestGoldenFigures -update). A missing golden is
// an error unless updating, so new runners must record expectations.
func CheckFigure(path string, f *bench.Figure, update bool) error {
	got := GoldenFromFigure(f)
	if update {
		return writeJSON(path, got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("golden %s missing (run with -update to record): %w", path, err)
	}
	var want GoldenFigure
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("golden %s unreadable: %w", path, err)
	}
	if got.ID != want.ID {
		return fmt.Errorf("%s: figure ID %q, golden %q", path, got.ID, want.ID)
	}
	if len(got.Series) != len(want.Series) {
		return fmt.Errorf("%s: %d series, golden has %d", path, len(got.Series), len(want.Series))
	}
	for i, ws := range want.Series {
		gs := got.Series[i]
		if gs.Name != ws.Name {
			return fmt.Errorf("%s: series %d named %q, golden %q", path, i, gs.Name, ws.Name)
		}
		if len(gs.Points) != len(ws.Points) {
			return fmt.Errorf("%s: series %q has %d points, golden %d", path, ws.Name, len(gs.Points), len(ws.Points))
		}
		for j, wp := range ws.Points {
			gp := gs.Points[j]
			if gp.X != wp.X {
				return fmt.Errorf("%s: series %q point %d at x=%v, golden x=%v", path, ws.Name, j, gp.X, wp.X)
			}
			if gp.Y != wp.Y {
				return fmt.Errorf("%s: series %q x=%v drifted: y=%v, golden y=%v (%s) — "+
					"explain the timing change and refresh with -update, or fix the regression",
					path, ws.Name, wp.X, gp.Y, wp.Y, f.YLabel)
			}
		}
	}
	return nil
}

// GoldenTree is the layout fingerprint of one generated conformance
// case: byte counts, engine decompositions, and a content hash of the
// reference mapping. Drift means datatype flattening, DEV splitting or
// baseline vectorization changed behaviour.
type GoldenTree struct {
	Seed    uint64 `json:"seed"`
	Name    string `json:"name"`
	Count   int    `json:"count"`
	Packed  int64  `json:"packed"`
	Span    int64  `json:"span"`
	Blocks  int    `json:"blocks"`
	Segs    int    `json:"segs"`
	Units   int64  `json:"units"`
	Overlap bool   `json:"overlap"`
	Hash    string `json:"hash"`
}

// DEVUnits packs the tree once through the GPU engine and reports how
// many CUDA-DEV units the converter emitted at the given split size
// (zero when the vector fast path or zero size bypasses DEV entirely).
func (tr *Tree) DEVUnits(unitSize int64) int64 {
	total := tr.Total()
	if total == 0 {
		return 0
	}
	r := newGPURig(gpuOpts(unitSize))
	data := r.ctx.Malloc(0, tr.Span)
	dst := r.ctx.Malloc(0, total)
	r.eng.Spawn("pack", func(p *sim.Proc) {
		pk := r.e.NewPacker(data, tr.Dt, tr.Count)
		var pos int64
		for !pk.Done() {
			n, fut := pk.PackInto(p, dst.Slice(pos, total-pos))
			fut.Await(p)
			pos += n
		}
	})
	r.eng.Run()
	return r.e.ConvertedUnits()
}

// GoldenTreeFor computes the fingerprint of one seed.
func GoldenTreeFor(seed uint64) GoldenTree {
	tr := NewTree(seed)
	h := fnv.New64a()
	var b [8]byte
	for _, off := range tr.Map {
		binary.LittleEndian.PutUint64(b[:], uint64(off))
		h.Write(b[:])
	}
	h.Write(ReferencePack(tr.Map, pattern(tr.Span, tr.Seed)))
	return GoldenTree{
		Seed:    seed,
		Name:    tr.Dt.Name(),
		Count:   tr.Count,
		Packed:  tr.Total(),
		Span:    tr.Span,
		Blocks:  tr.Dt.NumBlocks(),
		Segs:    len(baseline.Vectorize(tr.Dt, tr.Count)),
		Units:   tr.DEVUnits(1024),
		Overlap: HasOverlap(tr.Map),
		Hash:    fmt.Sprintf("%016x", h.Sum64()),
	}
}

// CheckTrees compares the fingerprints of the given seeds against the
// golden file at path, or regenerates it with update set.
func CheckTrees(path string, seeds []uint64, update bool) error {
	got := make([]GoldenTree, len(seeds))
	for i, s := range seeds {
		got[i] = GoldenTreeFor(s)
	}
	if update {
		return writeJSON(path, got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("golden %s missing (run with -update to record): %w", path, err)
	}
	var want []GoldenTree
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("golden %s unreadable: %w", path, err)
	}
	if len(got) != len(want) {
		return fmt.Errorf("%s: %d trees, golden has %d", path, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: seed %d fingerprint drifted:\n  got  %+v\n  want %+v\n"+
				"datatype flattening, DEV splitting or vectorization changed — "+
				"explain the change and refresh with -update, or fix the regression",
				path, want[i].Seed, got[i], want[i])
		}
	}
	return nil
}
