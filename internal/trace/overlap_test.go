package trace

import (
	"strings"
	"testing"

	"gpuddt/internal/sim"
)

// TestComputeOverlap builds a synthetic timeline with known wire and
// compute intervals and checks the interval arithmetic:
//
//	wire:    [0,100) [200,300)   (plus a duplicate on a second track,
//	                              which the union must not double-count,
//	                              and a hostbus span that must be ignored)
//	compute: [50,250)
//	hidden:  [50,100) + [200,250) = 100
func TestComputeOverlap(t *testing.T) {
	e := sim.NewEngine()
	rec := sim.NewRecorder(e)
	wireProc := func(name string) {
		e.Spawn(name, func(p *sim.Proc) {
			h := p.Begin("xfer")
			p.Sleep(100)
			h.End()
			p.Sleep(100)
			h = p.Begin("xfer")
			p.Sleep(100)
			h.End()
		})
	}
	wireProc("link.ib")
	wireProc("link.ib.dup") // same intervals again: union, not sum
	e.Spawn("node0.hostbus", func(p *sim.Proc) {
		h := p.Begin("xfer") // hostbus occupancy is not wire time
		p.Sleep(1000)
		h.End()
	})
	e.Spawn("gpu0", func(p *sim.Proc) {
		p.Sleep(50)
		h := p.Begin("kernel.compute")
		p.Sleep(200)
		h.End()
	})
	e.Run()

	ov := ComputeOverlap(rec)
	if ov.Wire != 200 {
		t.Errorf("Wire = %v, want 200", ov.Wire)
	}
	if ov.Compute != 200 {
		t.Errorf("Compute = %v, want 200", ov.Compute)
	}
	if ov.Hidden != 100 {
		t.Errorf("Hidden = %v, want 100", ov.Hidden)
	}
	if f := ov.HiddenFrac(); f != 0.5 {
		t.Errorf("HiddenFrac = %v, want 0.5", f)
	}

	var sb strings.Builder
	WritePhases(&sb, rec)
	if !strings.Contains(sb.String(), "50% of wire time behind compute") {
		t.Errorf("WritePhases missing overlap line:\n%s", sb.String())
	}
}

// TestComputeOverlapEmpty: no wire spans at all must yield a zero
// fraction, not a division by zero.
func TestComputeOverlapEmpty(t *testing.T) {
	e := sim.NewEngine()
	rec := sim.NewRecorder(e)
	e.Run()
	ov := ComputeOverlap(rec)
	if ov.Wire != 0 || ov.Compute != 0 || ov.Hidden != 0 || ov.HiddenFrac() != 0 {
		t.Errorf("empty recorder gave %+v frac=%v", ov, ov.HiddenFrac())
	}
}
