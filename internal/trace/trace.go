// Package trace reports resource utilization of a finished (or paused)
// simulation: per-link bytes moved, busy time and utilization over the
// elapsed virtual time. It answers the questions the paper's evaluation
// keeps asking — "is PCIe the bottleneck?", "how idle is the GPU?" —
// directly from the model's own accounting.
package trace

import (
	"fmt"
	"io"
	"sort"

	"gpuddt/internal/sim"
)

// LinkStat is one row of the utilization report.
type LinkStat struct {
	Name        string
	Bytes       int64
	Busy        sim.Time
	Utilization float64 // busy / elapsed
	AvgGBps     float64 // achieved bytes over elapsed time
}

// Collect gathers statistics for every link on the engine, sorted by
// descending utilization. Links that never moved a byte are skipped.
func Collect(e *sim.Engine) []LinkStat {
	elapsed := e.Now()
	var out []LinkStat
	for _, l := range e.Links() {
		if l.BytesMoved() == 0 {
			continue
		}
		st := LinkStat{
			Name:  l.Name(),
			Bytes: l.BytesMoved(),
			Busy:  l.BusyTime(),
		}
		if elapsed > 0 {
			st.Utilization = float64(l.BusyTime()) / float64(elapsed)
			st.AvgGBps = sim.GBps(l.BytesMoved(), elapsed)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utilization != out[j].Utilization {
			return out[i].Utilization > out[j].Utilization
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Report writes the utilization table.
func Report(w io.Writer, e *sim.Engine) {
	fmt.Fprintf(w, "link utilization over %v of virtual time:\n", e.Now())
	fmt.Fprintf(w, "  %-22s %12s %12s %8s %10s\n", "link", "bytes", "busy", "util", "avg GB/s")
	for _, st := range Collect(e) {
		fmt.Fprintf(w, "  %-22s %12d %12v %7.1f%% %10.2f\n",
			st.Name, st.Bytes, st.Busy, 100*st.Utilization, st.AvgGBps)
	}
}
