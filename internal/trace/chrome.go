package trace

import (
	"encoding/json"
	"io"

	"gpuddt/internal/sim"
)

// Run pairs a recorded timeline with a display name. Each run becomes one
// "process" in the exported trace, so several simulations (e.g. every
// message size of a benchmark sweep) can share a single file.
type Run struct {
	Name string
	Rec  *sim.Recorder
}

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// consumed by chrome://tracing and Perfetto). Timestamps and durations
// are in microseconds.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeTrace is the file-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the given runs as Chrome trace-event JSON. Every
// run is a process (pid = run index) and every recorder track a named
// thread; spans become complete ("X") events carrying byte counts and
// details in args, and counters become a final counter ("C") sample.
// Output is deterministic for a deterministic simulation.
func WriteChrome(w io.Writer, runs ...Run) error {
	var evs []chromeEvent
	for pid, run := range runs {
		evs = append(evs, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]interface{}{"name": run.Name},
		})
		for _, t := range run.Rec.Tracks() {
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: t.ID,
				Args: map[string]interface{}{"name": t.Name},
			})
			for i := range t.Spans {
				sp := &t.Spans[i]
				var args map[string]interface{}
				if sp.Bytes > 0 || sp.Detail != "" {
					args = make(map[string]interface{}, 2)
					if sp.Bytes > 0 {
						args["bytes"] = sp.Bytes
					}
					if sp.Detail != "" {
						args["detail"] = sp.Detail
					}
				}
				evs = append(evs, chromeEvent{
					Name: sp.Name, Ph: "X", Pid: pid, Tid: t.ID,
					Ts: sp.Begin.Micros(), Dur: sp.Duration().Micros(),
					Args: args,
				})
			}
		}
		for _, name := range run.Rec.CounterNames() {
			evs = append(evs, chromeEvent{
				Name: name, Ph: "C", Pid: pid,
				Ts:   run.Rec.Now().Micros(),
				Args: map[string]interface{}{"value": run.Rec.Counter(name)},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"})
}
