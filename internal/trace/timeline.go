package trace

import (
	"fmt"
	"io"

	"gpuddt/internal/sim"
)

// WriteTimeline renders the recorded timeline as indented plain text, one
// section per track, one line per span in begin order (nesting shown by
// indentation). It is the quick-look companion to the Chrome export.
func WriteTimeline(w io.Writer, r *sim.Recorder) {
	fmt.Fprintf(w, "timeline over %v of virtual time (%d spans):\n", r.Now(), r.SpanCount())
	for _, t := range r.Tracks() {
		if len(t.Spans) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s:\n", t.Name)
		for i := range t.Spans {
			sp := &t.Spans[i]
			fmt.Fprintf(w, "  %*s%-24s %12v +%-12v", 2*sp.Depth, "", sp.Name, sp.Begin, sp.Duration())
			if sp.Bytes > 0 {
				fmt.Fprintf(w, " %12d B", sp.Bytes)
			}
			if sp.Detail != "" {
				fmt.Fprintf(w, "  (%s)", sp.Detail)
			}
			fmt.Fprintln(w)
		}
	}
	if names := r.CounterNames(); len(names) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range names {
			fmt.Fprintf(w, "  %-24s %12d\n", name, r.Counter(name))
		}
	}
}
