package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gpuddt/internal/sim"
)

// record builds a small two-track timeline shaped like one pipelined
// message: an mpi.recv window overlapping pack, wire and unpack spans.
func record(t *testing.T) *sim.Recorder {
	t.Helper()
	e := sim.NewEngine()
	r := sim.NewRecorder(e)
	l := e.NewLink("wire0", 1, 0)
	e.Spawn("recv", func(p *sim.Proc) {
		h := p.BeginBytes("mpi.recv", 1000)
		h.SetDetail("pipelined")
		p.Sleep(10 * sim.Nanosecond)
		u := p.BeginBytes("frag.consume", 1000)
		p.Sleep(20 * sim.Nanosecond)
		u.End()
		h.End()
		p.Count("mpi.ack", 1)
	})
	e.Spawn("send", func(p *sim.Proc) {
		h := p.BeginBytes("frag.pack", 1000)
		p.Sleep(8 * sim.Nanosecond)
		h.End()
		l.Transfer(p, 12)
	})
	e.Run()
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return r
}

func TestWriteChrome(t *testing.T) {
	r := record(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, Run{Name: "test", Rec: r}); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var out struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	var xs, ms, cs int
	for _, ev := range out.TraceEvents {
		switch ev["ph"] {
		case "X":
			xs++
			if ev["name"] == "" || ev["ts"] == nil {
				t.Errorf("bad X event: %v", ev)
			}
		case "M":
			ms++
		case "C":
			cs++
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if xs != r.SpanCount() {
		t.Errorf("X events = %d, want %d", xs, r.SpanCount())
	}
	if ms == 0 || cs == 0 {
		t.Errorf("want metadata and counter events, got M=%d C=%d", ms, cs)
	}
}

func TestWriteTimeline(t *testing.T) {
	r := record(t)
	var buf bytes.Buffer
	WriteTimeline(&buf, r)
	out := buf.String()
	for _, want := range []string{"recv:", "send:", "wire0:", "mpi.recv", "frag.pack", "mpi.ack"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q in:\n%s", want, out)
		}
	}
}

func TestPhasesAndTransfers(t *testing.T) {
	r := record(t)
	stats := Phases(r)
	byName := map[string]PhaseStat{}
	for _, st := range stats {
		byName[st.Name] = st
	}
	if st := byName["frag.consume"]; st.Count != 1 || st.Total != 20*sim.Nanosecond {
		t.Errorf("frag.consume stat = %+v", st)
	}

	trs := Transfers(r)
	if len(trs) != 1 {
		t.Fatalf("Transfers = %d, want 1", len(trs))
	}
	tr := trs[0]
	if tr.Bytes != 1000 || tr.Label != "pipelined" {
		t.Errorf("transfer = %+v", tr)
	}
	if tr.Unpack != 20*sim.Nanosecond {
		t.Errorf("unpack = %v, want 20ns", tr.Unpack)
	}
	// The sender's pack span overlaps the first 8ns of the window.
	if tr.Pack != 8*sim.Nanosecond {
		t.Errorf("pack = %v, want 8ns", tr.Pack)
	}
	if tr.Wire != 12*sim.Nanosecond {
		t.Errorf("wire = %v, want 12ns", tr.Wire)
	}
	if tr.Idle < 0 || tr.Idle > tr.Duration() {
		t.Errorf("idle = %v out of range (duration %v)", tr.Idle, tr.Duration())
	}

	var buf bytes.Buffer
	WritePhases(&buf, r)
	if !strings.Contains(buf.String(), "phase attribution") {
		t.Errorf("WritePhases output missing header:\n%s", buf.String())
	}
}

func TestCoverageMergesOverlaps(t *testing.T) {
	iv := [][2]sim.Time{{0, 10}, {5, 15}, {20, 30}, {22, 25}}
	if got := coverage(iv); got != 25 {
		t.Fatalf("coverage = %v, want 25", got)
	}
	if got := coverage(nil); got != 0 {
		t.Fatalf("coverage(nil) = %v, want 0", got)
	}
}
