package trace

import (
	"encoding/json"
	"io"

	"gpuddt/internal/sim"
)

// WriteChromeGrouped exports one recorder with its tracks partitioned
// into named process groups: groupOf maps a track name to its group
// label (e.g. a co-scheduled job's name for that rank's tracks, or
// "fabric" for links and switches), and every distinct label becomes
// its own Chrome process — so a two-job interference run renders as two
// labeled job groups side by side instead of one flat pile of rank
// tracks. Pids are assigned in first-appearance order over the
// recorder's deterministic track order; counters land on the first
// group's pid. An empty label ("") is exported as "other".
func WriteChromeGrouped(w io.Writer, rec *sim.Recorder, groupOf func(track string) string) error {
	var evs []chromeEvent
	pids := map[string]int{}
	for _, t := range rec.Tracks() {
		label := groupOf(t.Name)
		if label == "" {
			label = "other"
		}
		pid, ok := pids[label]
		if !ok {
			pid = len(pids)
			pids[label] = pid
			evs = append(evs, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]interface{}{"name": label},
			})
		}
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: t.ID,
			Args: map[string]interface{}{"name": t.Name},
		})
		for i := range t.Spans {
			sp := &t.Spans[i]
			var args map[string]interface{}
			if sp.Bytes > 0 || sp.Detail != "" {
				args = make(map[string]interface{}, 2)
				if sp.Bytes > 0 {
					args["bytes"] = sp.Bytes
				}
				if sp.Detail != "" {
					args["detail"] = sp.Detail
				}
			}
			evs = append(evs, chromeEvent{
				Name: sp.Name, Ph: "X", Pid: pid, Tid: t.ID,
				Ts: sp.Begin.Micros(), Dur: sp.Duration().Micros(),
				Args: args,
			})
		}
	}
	for _, name := range rec.CounterNames() {
		evs = append(evs, chromeEvent{
			Name: name, Ph: "C", Pid: 0,
			Ts:   rec.Now().Micros(),
			Args: map[string]interface{}{"value": rec.Counter(name)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ns"})
}
