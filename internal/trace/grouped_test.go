package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gpuddt/internal/sim"
)

// TestWriteChromeGrouped builds a timeline shaped like a two-job
// interference run (rank tracks for each job plus fabric links) and
// checks the schema: one process per group label, every track's spans
// under its group's pid, thread and process name metadata present.
func TestWriteChromeGrouped(t *testing.T) {
	e := sim.NewEngine()
	rec := sim.NewRecorder(e)
	work := func(name string) {
		e.Spawn(name, func(p *sim.Proc) {
			h := p.BeginBytes("phase", 64)
			p.Sleep(10)
			h.End()
		})
	}
	work("rank0")
	work("rank1")
	work("rank2")
	work("rank3")
	work("link.ib.0")
	e.Run()
	if err := rec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	groupOf := func(track string) string {
		switch track {
		case "rank0", "rank1":
			return "job:ml"
		case "rank2", "rank3":
			return "job:stencil"
		default:
			return "fabric"
		}
	}
	var buf bytes.Buffer
	if err := WriteChromeGrouped(&buf, rec, groupOf); err != nil {
		t.Fatalf("WriteChromeGrouped: %v", err)
	}

	var out struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}

	procName := map[int]string{} // pid -> group label
	trackPid := map[string]int{} // track name -> pid
	spans := map[string]int{}    // track name (via tid+pid) -> span count
	tidName := map[[2]int]string{}
	for _, ev := range out.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procName[ev.Pid] = ev.Args["name"].(string)
		case ev.Ph == "M" && ev.Name == "thread_name":
			name := ev.Args["name"].(string)
			trackPid[name] = ev.Pid
			tidName[[2]int{ev.Pid, ev.Tid}] = name
		case ev.Ph == "X":
			spans[tidName[[2]int{ev.Pid, ev.Tid}]]++
		}
	}

	if len(procName) != 3 {
		t.Fatalf("got %d process groups %v, want 3", len(procName), procName)
	}
	labels := map[string]bool{}
	for _, l := range procName {
		labels[l] = true
	}
	for _, want := range []string{"job:ml", "job:stencil", "fabric"} {
		if !labels[want] {
			t.Errorf("missing process group %q (have %v)", want, procName)
		}
	}
	for track, wantGroup := range map[string]string{
		"rank0": "job:ml", "rank1": "job:ml",
		"rank2": "job:stencil", "rank3": "job:stencil",
	} {
		pid, ok := trackPid[track]
		if !ok {
			t.Fatalf("track %q has no thread_name metadata", track)
		}
		if procName[pid] != wantGroup {
			t.Errorf("track %q under group %q, want %q", track, procName[pid], wantGroup)
		}
		if spans[track] == 0 {
			t.Errorf("track %q has no spans", track)
		}
	}
	if pid, ok := trackPid["link.ib.0"]; !ok || !strings.Contains(procName[pid], "fabric") {
		t.Errorf("fabric track not grouped under fabric: %v", procName)
	}
}
