package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"gpuddt/internal/sim"
)

// PhaseStat aggregates every span of one name across all tracks.
type PhaseStat struct {
	Name  string
	Count int
	Bytes int64
	Total sim.Time
}

// Phases aggregates the recorded spans by name, sorted by descending
// total time (ties by name).
func Phases(r *sim.Recorder) []PhaseStat {
	agg := make(map[string]*PhaseStat)
	var order []string
	for _, t := range r.Tracks() {
		for i := range t.Spans {
			sp := &t.Spans[i]
			st, ok := agg[sp.Name]
			if !ok {
				st = &PhaseStat{Name: sp.Name}
				agg[sp.Name] = st
				order = append(order, sp.Name)
			}
			st.Count++
			st.Bytes += sp.Bytes
			st.Total += sp.Duration()
		}
	}
	out := make([]PhaseStat, 0, len(order))
	for _, name := range order {
		out = append(out, *agg[name])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Transfer is the phase attribution of one received message: how much of
// its lifetime overlapped pack activity, wire occupancy, and unpack
// activity anywhere in the simulation. In a pipelined protocol the three
// overlap each other by design, so they need not sum to the duration;
// Idle is the portion covered by none of them.
type Transfer struct {
	Label      string // strategy or "eager"
	Bytes      int64
	Start, End sim.Time
	Pack       sim.Time
	Wire       sim.Time
	Unpack     sim.Time
	Idle       sim.Time
}

// Duration returns the message lifetime (match to delivery).
func (t *Transfer) Duration() sim.Time { return t.End - t.Start }

// phaseOf classifies a span into a pipeline phase, or "" for spans that
// either belong to no phase or would double-count one (e.g. "ib.send"
// wraps the link's own "xfer" occupancy; the host bus is charged inside
// CPU pack/unpack spans).
func phaseOf(trackName, spanName string) string {
	switch spanName {
	case "pack", "frag.pack":
		return "pack"
	case "unpack", "frag.consume", "unpack.drain":
		return "unpack"
	// The MVAPICH baseline realizes pack/unpack as staging memcpy2Ds:
	// device->host gathers to wire format, host->device scatters from it.
	case "cuda.memcpy2d.d2h":
		return "pack"
	case "cuda.memcpy2d.h2d":
		return "unpack"
	case "xfer", "hold":
		if strings.Contains(trackName, "hostbus") {
			return ""
		}
		return "wire"
	}
	return ""
}

// Transfers computes the per-message phase attribution: one entry per
// top-level "mpi.recv" span, in start order.
func Transfers(r *sim.Recorder) []Transfer {
	var out []Transfer
	for _, t := range r.Tracks() {
		for i := range t.Spans {
			sp := &t.Spans[i]
			if sp.Name == "mpi.recv" && sp.Depth == 0 {
				out = append(out, Transfer{
					Label: sp.Detail,
					Bytes: sp.Bytes,
					Start: sp.Begin,
					End:   sp.End,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	for ti := range out {
		tr := &out[ti]
		// Per-phase busy intervals overlapping this message's window,
		// merged so concurrent same-phase spans (several links, several
		// procs) do not count twice.
		busy := map[string][][2]sim.Time{}
		for _, tk := range r.Tracks() {
			for i := range tk.Spans {
				sp := &tk.Spans[i]
				ph := phaseOf(tk.Name, sp.Name)
				if ph == "" {
					continue
				}
				b, e := sp.Begin, sp.End
				if b < tr.Start {
					b = tr.Start
				}
				if e > tr.End {
					e = tr.End
				}
				if e > b {
					busy[ph] = append(busy[ph], [2]sim.Time{b, e})
				}
			}
		}
		tr.Pack = coverage(busy["pack"])
		tr.Wire = coverage(busy["wire"])
		tr.Unpack = coverage(busy["unpack"])
		all := append(append(append([][2]sim.Time{}, busy["pack"]...), busy["wire"]...), busy["unpack"]...)
		tr.Idle = tr.Duration() - coverage(all)
	}
	return out
}

// coverage returns the total time covered by the union of the intervals.
func coverage(iv [][2]sim.Time) sim.Time {
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	var total sim.Time
	cur := iv[0]
	for _, x := range iv[1:] {
		if x[0] > cur[1] {
			total += cur[1] - cur[0]
			cur = x
			continue
		}
		if x[1] > cur[1] {
			cur[1] = x[1]
		}
	}
	total += cur[1] - cur[0]
	return total
}

// WritePhases prints the per-message phase attribution followed by the
// aggregate per-phase table and counters.
func WritePhases(w io.Writer, r *sim.Recorder) {
	trs := Transfers(r)
	if len(trs) > 0 {
		fmt.Fprintln(w, "per-message phase attribution (phases overlap when pipelined):")
		fmt.Fprintf(w, "  %-10s %12s %12s %12s %12s %12s %12s\n",
			"message", "bytes", "duration", "pack", "wire", "unpack", "idle")
		for i, tr := range trs {
			label := tr.Label
			if label == "" {
				label = "msg"
			}
			fmt.Fprintf(w, "  %-10s %12d %12v %12v %12v %12v %12v\n",
				fmt.Sprintf("#%d %s", i, label), tr.Bytes, tr.Duration(), tr.Pack, tr.Wire, tr.Unpack, tr.Idle)
		}
	}
	if ov := ComputeOverlap(r); ov.Compute > 0 && ov.Wire > 0 {
		fmt.Fprintf(w, "overlap: wire %v, compute %v, hidden %v (%.0f%% of wire time behind compute)\n",
			ov.Wire, ov.Compute, ov.Hidden, 100*ov.HiddenFrac())
	}
	fmt.Fprintln(w, "time per span name:")
	fmt.Fprintf(w, "  %-24s %8s %14s %12s\n", "span", "count", "bytes", "total")
	for _, st := range Phases(r) {
		fmt.Fprintf(w, "  %-24s %8d %14d %12v\n", st.Name, st.Count, st.Bytes, st.Total)
	}
	if names := r.CounterNames(); len(names) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range names {
			fmt.Fprintf(w, "  %-24s %12d\n", name, r.Counter(name))
		}
	}
}
