package trace

import (
	"sort"

	"gpuddt/internal/sim"
)

// Overlap quantifies communication/computation overlap over a whole
// timeline: how much wire occupancy there was, how much application
// compute ("kernel.compute" spans — pack/unpack kernels belong to
// communication and are excluded), and how much of the wire time was
// hidden underneath compute. This is the quantity the paper's pipelined
// engine exists to maximize: data can be on the wire while the GPU is
// busy with the application's own kernels.
type Overlap struct {
	Wire    sim.Time // union of wire occupancy
	Compute sim.Time // union of application kernel execution
	Hidden  sim.Time // wire time covered by compute
}

// HiddenFrac reports the fraction of wire time hidden behind compute
// (0 when nothing was on the wire).
func (o Overlap) HiddenFrac() float64 {
	if o.Wire == 0 {
		return 0
	}
	return float64(o.Hidden) / float64(o.Wire)
}

// ComputeOverlap scans the recorded timeline for wire and compute
// intervals (classified exactly like the per-message phase attribution)
// and intersects their coverage.
func ComputeOverlap(r *sim.Recorder) Overlap {
	var wire, comp [][2]sim.Time
	for _, tk := range r.Tracks() {
		for i := range tk.Spans {
			sp := &tk.Spans[i]
			iv := [2]sim.Time{sp.Begin, sp.End}
			if iv[1] <= iv[0] {
				continue
			}
			if sp.Name == "kernel.compute" {
				comp = append(comp, iv)
			} else if phaseOf(tk.Name, sp.Name) == "wire" {
				wire = append(wire, iv)
			}
		}
	}
	wire, comp = mergeIntervals(wire), mergeIntervals(comp)
	return Overlap{
		Wire:    sumIntervals(wire),
		Compute: sumIntervals(comp),
		Hidden:  sumIntervals(intersectIntervals(wire, comp)),
	}
}

// mergeIntervals sorts and unions the intervals into a disjoint
// ascending list.
func mergeIntervals(iv [][2]sim.Time) [][2]sim.Time {
	if len(iv) == 0 {
		return nil
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	out := [][2]sim.Time{iv[0]}
	for _, x := range iv[1:] {
		last := &out[len(out)-1]
		if x[0] > last[1] {
			out = append(out, x)
			continue
		}
		if x[1] > last[1] {
			last[1] = x[1]
		}
	}
	return out
}

// intersectIntervals walks two disjoint ascending lists and returns
// their pairwise intersections.
func intersectIntervals(a, b [][2]sim.Time) [][2]sim.Time {
	var out [][2]sim.Time
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := a[i][0], a[i][1]
		if b[j][0] > lo {
			lo = b[j][0]
		}
		if b[j][1] < hi {
			hi = b[j][1]
		}
		if hi > lo {
			out = append(out, [2]sim.Time{lo, hi})
		}
		if a[i][1] < b[j][1] {
			i++
		} else {
			j++
		}
	}
	return out
}

func sumIntervals(iv [][2]sim.Time) sim.Time {
	var total sim.Time
	for _, x := range iv {
		total += x[1] - x[0]
	}
	return total
}
