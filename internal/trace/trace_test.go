package trace

import (
	"strings"
	"testing"

	"gpuddt/internal/sim"
)

func TestCollectAndReport(t *testing.T) {
	e := sim.NewEngine()
	busy := e.NewLink("busy", 1, 0)  // 1 GB/s
	idle := e.NewLink("idle", 10, 0) // never used
	half := e.NewLink("half", 2, 0)
	e.Spawn("load", func(p *sim.Proc) {
		busy.Transfer(p, 1000*1000) // 1 ms at 1 GB/s
	})
	e.Spawn("load2", func(p *sim.Proc) {
		half.Transfer(p, 1000*1000) // 0.5 ms at 2 GB/s
	})
	e.Run()
	_ = idle

	stats := Collect(e)
	if len(stats) != 2 {
		t.Fatalf("stats = %d rows, want 2 (idle link skipped)", len(stats))
	}
	if stats[0].Name != "busy" {
		t.Fatalf("rows not sorted by utilization: %+v", stats)
	}
	if stats[0].Utilization < 0.99 || stats[0].Utilization > 1.01 {
		t.Fatalf("busy utilization = %v", stats[0].Utilization)
	}
	if stats[1].Utilization < 0.49 || stats[1].Utilization > 0.51 {
		t.Fatalf("half utilization = %v", stats[1].Utilization)
	}

	var sb strings.Builder
	Report(&sb, e)
	out := sb.String()
	if !strings.Contains(out, "busy") || strings.Contains(out, "idle") {
		t.Fatalf("report content wrong:\n%s", out)
	}
}
