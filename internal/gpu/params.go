// Package gpu models an NVIDIA-class GPU at the granularity the HPDC'16
// paper's experiments depend on: streams that serialize work, DMA copy
// engines that overlap with kernels, a finite DRAM bandwidth shared by
// everything on the device, SM-limited kernel throughput, warp-granular
// memory coalescing, and per-call launch overheads.
//
// Kernels move real bytes between mem.Buffers; the timing model charges
// virtual time on the owning sim.Engine. Calibration constants live in
// Params and are documented against the paper's reported numbers.
package gpu

import "gpuddt/internal/sim"

// Params is the calibrated performance model of one GPU.
//
// The default profile, KeplerK40, is tuned so that the relations the paper
// reports emerge from the model:
//
//   - cudaMemcpy D2D is the "practical peak" of device memory bandwidth
//     (Fig. 6's C-cudaMemcpy curve);
//   - the specialized vector pack kernel reaches ~94% of that peak;
//   - the generic DEV kernel on a ragged (triangular) layout reaches ~80%,
//     the loss coming from per-unit penalties on partial and misaligned
//     work units — so a stair-shaped triangle whose units are full and
//     aligned recovers the vector bandwidth (Fig. 6's T-stair);
//   - a handful of CUDA blocks saturate PCIe, so communication needs only
//     a small fraction of the GPU (§5.3).
type Params struct {
	// Name identifies the profile in topology dumps.
	Name string

	// SMCount is the number of streaming multiprocessors (K40: 15).
	SMCount int

	// WarpBytes is the number of bytes one warp moves per coalesced
	// iteration: 32 threads x 8 bytes (the paper forces 8-byte accesses).
	WarpBytes int64

	// DRAMRawGBps is raw device-memory port bandwidth in GB/s, counting
	// reads and writes separately. A device-to-device copy of n bytes
	// consumes 2n raw bytes, so 380 raw GB/s yields the ~190 GB/s
	// cudaMemcpy D2D figure measured on a K40.
	DRAMRawGBps float64

	// PerBlockRawGBps is the raw bandwidth one resident CUDA block can
	// sustain. blocks*PerBlockRawGBps caps kernel throughput below the
	// DRAM peak when the grid is small (used by §5.3 and §5.4).
	PerBlockRawGBps float64

	// DefaultBlocks is the grid size pack/unpack kernels use when the
	// caller does not restrict it (2 blocks per SM).
	DefaultBlocks int

	// KernelLaunch is the host-side cost of launching one kernel.
	KernelLaunch sim.Time

	// MemcpyOverhead is the per-call cost of cudaMemcpy/cudaMemcpy2D.
	MemcpyOverhead sim.Time

	// VectorKernelEff is the efficiency of the specialized vector kernel
	// relative to raw DRAM bandwidth (paper: 94% of cudaMemcpy).
	VectorKernelEff float64

	// DEVKernelEff is the base efficiency of the generic DEV kernel loop
	// before per-unit penalties (descriptor fetch amortized, unrolled).
	DEVKernelEff float64

	// MisalignPenaltyRaw is the extra raw bytes charged for a DEV work
	// unit whose source or destination is not warp-aligned (extra memory
	// transactions on the ragged edge).
	MisalignPenaltyRaw int64

	// PartialPenaltyRaw is the extra raw bytes charged for a DEV work
	// unit shorter than the full unit size S (idle threads in the last
	// warp iterations plus branch divergence).
	PartialPenaltyRaw int64

	// MemcpyD2DEff derates the D2D copy engine from the raw port rate.
	MemcpyD2DEff float64

	// Memcpy2DAlignedEff is cudaMemcpy2D efficiency (relative to the path
	// peak) when the row width is a multiple of 64 bytes; Memcpy2DMisalignedEff
	// applies otherwise (the paper's Fig. 8 cliff).
	Memcpy2DAlignedEff    float64
	Memcpy2DMisalignedEff float64

	// Memcpy2DPerRow is the per-row descriptor cost of cudaMemcpy2D
	// crossing PCIe; it dominates for very narrow rows (e.g. the
	// transpose datatype) and is why MVAPICH's per-vector memcpy2d
	// approach collapses on indexed layouts.
	Memcpy2DPerRow sim.Time

	// MemBytes is the size of device memory.
	MemBytes int64
}

// PascalP100 returns a Pascal-generation profile (HBM2 memory, more
// SMs, cheaper launches) for the forward-looking study in
// bench.WhatIfGPU: the paper's protocols should remain PCIe-bound even
// when the GPU gets ~4x faster.
func PascalP100() Params {
	p := KeplerK40()
	p.Name = "Pascal-P100"
	p.SMCount = 56
	p.DRAMRawGBps = 1400
	p.PerBlockRawGBps = 48
	p.DefaultBlocks = 112
	p.KernelLaunch = 5 * sim.Microsecond
	p.MemcpyOverhead = 7 * sim.Microsecond
	return p
}

// KeplerK40 returns the calibration used throughout the reproduction:
// one NVIDIA Kepler K40 as in the paper's PSG-cluster nodes.
func KeplerK40() Params {
	return Params{
		Name:                  "Kepler-K40",
		SMCount:               15,
		WarpBytes:             256,
		DRAMRawGBps:           380,
		PerBlockRawGBps:       48,
		DefaultBlocks:         30,
		KernelLaunch:          6 * sim.Microsecond,
		MemcpyOverhead:        8 * sim.Microsecond,
		VectorKernelEff:       0.94,
		DEVKernelEff:          0.94,
		MisalignPenaltyRaw:    384,
		PartialPenaltyRaw:     512,
		MemcpyD2DEff:          1.0,
		Memcpy2DAlignedEff:    0.90,
		Memcpy2DMisalignedEff: 0.22,
		Memcpy2DPerRow:        40 * sim.Nanosecond,
		MemBytes:              1 << 30, // 1 GiB simulated (K40 has 12; tests need far less)
	}
}
